package msrp

// One testing.B benchmark per experiment of DESIGN.md §5 / EXPERIMENTS.md.
// These benchmark the hot solver paths at fixed, laptop-friendly sizes;
// the full parameter sweeps with printed tables live in cmd/msrp-bench
// (and internal/bench), which shares the same code.

import (
	"testing"

	"msrp/internal/bmm"
	"msrp/internal/classic"
	"msrp/internal/graph"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/naive"
	"msrp/internal/sample"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

func benchParams(seed uint64) ssrp.Params {
	p := ssrp.DefaultParams()
	p.Seed = seed
	return p
}

// BenchmarkE1_SSRPScaling times the SSRP solver (Theorem 14 shape:
// m√n + n²) on sparse and denser random graphs.
func BenchmarkE1_SSRPScaling(b *testing.B) {
	for _, cfg := range []struct {
		name string
		n, m int
	}{
		{"n400_m2n", 400, 800},
		{"n800_m2n", 800, 1600},
		{"n800_m8n", 800, 6400},
	} {
		g := graph.RandomConnected(xrand.New(uint64(cfg.n)), cfg.n, cfg.m)
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ssrp.Solve(g, 0, benchParams(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE1_Baselines times the two Õ(nm) baselines on the same
// workload for the E1 comparison columns.
func BenchmarkE1_Baselines(b *testing.B) {
	g := graph.RandomConnected(xrand.New(800), 800, 1600)
	b.Run("naive_deleteBFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = naive.SSRP(g, 0)
		}
	})
	b.Run("classic_perPair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = classic.SSRPByPairs(g, 0)
		}
	})
}

// BenchmarkE2_MSRPSigmaScaling times the MSRP solver as σ grows
// (Theorem 1 shape: m√(nσ) + σn²).
func BenchmarkE2_MSRPSigmaScaling(b *testing.B) {
	const n, m = 400, 1600
	g := graph.RandomConnected(xrand.New(42), n, m)
	for _, sigma := range []int{1, 2, 4} {
		sources := make([]int32, sigma)
		for i := range sources {
			sources[i] = int32(i * (n / sigma))
		}
		b.Run(map[int]string{1: "sigma1", 2: "sigma2", 4: "sigma4"}[sigma], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := msrpcore.Solve(g, sources, benchParams(2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE3_LandmarkSampling times the Lemma 4 leveled sampler.
func BenchmarkE3_LandmarkSampling(b *testing.B) {
	rng := xrand.New(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = sample.New(rng, 10000, 4, 1, nil)
	}
}

// BenchmarkE4_PaperConstantsSSRP is the E4 hot path: paper-faithful
// constants on a cycle (the workload with genuine far edges).
func BenchmarkE4_PaperConstantsSSRP(b *testing.B) {
	g := graph.Cycle(1200)
	for i := 0; i < b.N; i++ {
		if _, _, err := ssrp.Solve(g, 0, benchParams(3)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5_ExactnessWorkload times the boosted-constants
// configuration used by the correctness table.
func BenchmarkE5_ExactnessWorkload(b *testing.B) {
	g := graph.CycleWithChords(xrand.New(17), 200, 8)
	p := benchParams(4)
	p.SampleBoost = 8
	p.SuffixScale = 0.5
	sources := []int32{0, 66, 133}
	for i := 0; i < b.N; i++ {
		if _, err := msrpcore.Solve(g, sources, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6_BMMReduction times the Theorem 28 gadget pipeline, and
// BenchmarkE6_DirectBMM the combinatorial baseline it reduces to.
func BenchmarkE6_BMMReduction(b *testing.B) {
	rng := xrand.New(5)
	a := bmm.Random(rng, 24, 0.2)
	c := bmm.Random(rng, 24, 0.2)
	p := benchParams(5)
	p.SampleBoost = 8
	p.SuffixScale = 0.5
	for i := 0; i < b.N; i++ {
		if _, _, err := bmm.MultiplyViaMSRP(a, c, 2, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6_DirectBMM(b *testing.B) {
	rng := xrand.New(6)
	a := bmm.Random(rng, 256, 0.2)
	c := bmm.Random(rng, 256, 0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bmm.Multiply(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7_ScalingTrick benchmarks the far-edge stage with the
// paper's leveled landmark sets versus the flat ablation.
func BenchmarkE7_ScalingTrick(b *testing.B) {
	g := graph.Cycle(800)
	base := benchParams(7)
	base.SampleBoost = 2
	base.SuffixScale = 0.1
	for _, flat := range []bool{false, true} {
		p := base
		p.FlatLandmarks = flat
		name := "leveled"
		if flat {
			name = "flat"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := ssrp.Solve(g, 0, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8_CrossoverCell times all three contenders on one (n, σ)
// cell of the crossover map.
func BenchmarkE8_CrossoverCell(b *testing.B) {
	const n = 300
	g := graph.RandomConnected(xrand.New(uint64(n)), n, 4*n)
	sources := []int32{0, 75, 150, 225}
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = naive.MSRP(g, sources)
		}
	})
	b.Run("ssrp_x_sigma", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range sources {
				if _, _, err := ssrp.Solve(g, s, benchParams(8)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("msrp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := msrpcore.Solve(g, sources, benchParams(8)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9_AuxGraphConstruction isolates the §7.1 auxiliary graph
// build + Dijkstra, the piece whose size E9 tabulates.
func BenchmarkE9_AuxGraphConstruction(b *testing.B) {
	g := graph.CycleWithChords(xrand.New(3), 600, 30)
	sh, err := ssrp.NewShared(g, []int32{0}, benchParams(9))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ps := sh.NewPerSource(0)
		ps.BuildSmallNear()
	}
}
