// Package msrp is a Go implementation of the replacement-path
// algorithms from "Multiple Source Replacement Path Problem"
// (Gupta, Jain, Modi — PODC 2020 / arXiv:2005.09262).
//
// Given an undirected unweighted graph G, a source s and a target t,
// the replacement path for an edge e on the shortest s→t path is the
// shortest s→t path that avoids e. This package computes the lengths
// of all replacement paths:
//
//   - SingleSource: from one source to every target, avoiding every
//     edge of each shortest path — Õ(m√n + n²) (the paper's Theorem 14).
//   - MultiSource: from σ sources — Õ(m√(nσ) + σn²) (Theorem 1).
//
// Both are randomized: results are always *sound* (every reported
// length is achievable by a real path avoiding the edge, and NoPath is
// reported only when provably no candidate was found), and they are
// exact with probability ≥ 1 − 1/n. The Options let callers trade
// constants for certainty; Options.ExhaustiveNear is a deterministic
// (slower) mode.
//
// # Quick start
//
//	g := msrp.GenerateCycle(5) // pentagon 0-1-2-3-4-0
//	res, _ := msrp.SingleSource(g, 0, msrp.DefaultOptions())
//	// res.Lengths(2) == [3, 3]: avoiding either edge of the canonical
//	// 0→2 path (0-1-2) forces the detour 0-4-3-2.
package msrp

import (
	"errors"
	"fmt"

	"msrp/internal/graph"
	"msrp/internal/lca"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// NoPath is returned for queries where no replacement path exists (the
// avoided edge is a bridge between source and target).
const NoPath = int32(rp.Inf)

// Graph is an immutable simple undirected unweighted graph.
type Graph struct {
	g *graph.Graph
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool { return g.g.HasEdge(u, v) }

// EdgeEndpoints returns the endpoints of edge id e (u < v).
func (g *Graph) EdgeEndpoints(e int) (u, v int) {
	a, b := g.g.EdgeEndpoints(e)
	return int(a), int(b)
}

// Internal unwraps the graph for intra-module callers (cmd/, examples
// needing generators); it is not part of the stable API.
func (g *Graph) Internal() *graph.Graph { return g.g }

// WrapGraph adopts an internally built graph; used by the generator
// helpers and the CLI tools.
func WrapGraph(ig *graph.Graph) *Graph { return &Graph{g: ig} }

// GraphBuilder accumulates edges for an immutable Graph.
type GraphBuilder struct {
	b *graph.Builder
}

// NewGraphBuilder returns a builder for a graph on n vertices.
func NewGraphBuilder(n int) *GraphBuilder {
	return &GraphBuilder{b: graph.NewBuilder(n)}
}

// AddEdge records the undirected edge {u, v}. Self-loops and
// out-of-range endpoints are rejected immediately; duplicate edges are
// rejected at Build time.
func (b *GraphBuilder) AddEdge(u, v int) error { return b.b.AddEdge(u, v) }

// Build finalizes the graph.
func (b *GraphBuilder) Build() (*Graph, error) {
	g, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Options controls the randomized machinery. Zero value is invalid;
// start from DefaultOptions.
type Options struct {
	// Seed drives all sampling; fixed seed ⇒ reproducible output.
	Seed uint64

	// SampleBoost multiplies the landmark/center sampling
	// probabilities (paper constant: 1). Raise it on small graphs to
	// push the failure probability of the w.h.p. guarantees toward
	// zero at a proportional cost in time.
	SampleBoost float64

	// SuffixScale multiplies the near/far distance unit
	// X = √(n/σ)·log₂n. Keep SampleBoost·SuffixScale ≥ 1.
	SuffixScale float64

	// Parallelism bounds the execution engine's worker goroutines
	// across every parallel stage: landmark/center BFS forests, the
	// per-landmark classical runs, the per-source and per-center MSRP
	// pipeline stages, and the Oracle's batched builds. 1 means
	// sequential; values <= 0 select GOMAXPROCS. Output is identical
	// for every value.
	Parallelism int

	// MaxCachedSources bounds how many materialized per-source results
	// an Oracle retains at once (least-recently-used eviction), so σ can
	// exceed what fits in memory all at once. 0 means unlimited. Evicted
	// sources are rebuilt on demand with identical answers.
	MaxCachedSources int

	// ExhaustiveNear switches to the deterministic-exact (but slower)
	// mode that routes every query through the §7.1 auxiliary graph.
	ExhaustiveNear bool

	// FlatLandmarks disables the paper's landmark scaling trick
	// (ablation switch; output unchanged, far-edge stage slower).
	FlatLandmarks bool

	// TrackPaths records provenance during the solve so
	// Result.ReplacementPath can expand answers into concrete vertex
	// sequences. Supported by SingleSource, MultiSource, and the Oracle
	// (both its lazy builds and Warm). Lengths are bit-identical with
	// tracking on or off; the cost is the retained provenance plane,
	// reported by OracleStats.ProvenanceBytes on the serving path.
	TrackPaths bool

	// MaxProvenanceBytes bounds the total provenance the Oracle retains
	// across cached sources (the ProvenanceBytes gauge), in bytes; 0
	// means unlimited. When the budget is exceeded the least recently
	// path-queried sources drop their provenance but keep their cached
	// lengths; a later path query against such a source triggers an
	// on-demand tracked rebuild through the Oracle's single-flight path
	// (counted by OracleStats.ProvenanceEvictions / ProvenanceRebuilds).
	// Only meaningful with TrackPaths; ignored by the one-shot solvers.
	MaxProvenanceBytes int64

	// MaxProvenanceRebuilds bounds how many on-demand tracked rebuilds
	// (path queries against budget-stripped sources) the Oracle runs
	// concurrently. A path-query storm against stripped sources is a
	// thundering herd of full solves that the serving tier's in-flight
	// budget does not model — each rebuild costs a whole per-source
	// build, not a cache lookup. Over-limit rebuild attempts fail fast
	// with ErrRebuildSaturated (never queue), which serving front-ends
	// map to 429 + a derived Retry-After. 0 derives a small default from
	// the build parallelism (max(1, Parallelism/2), with Parallelism ≤ 0
	// resolved to GOMAXPROCS); negative means unbounded. Only meaningful
	// with TrackPaths and a finite MaxProvenanceBytes — without strips
	// there is nothing to rebuild.
	MaxProvenanceRebuilds int
}

// DefaultOptions returns the paper-faithful configuration.
func DefaultOptions() Options {
	p := ssrp.DefaultParams()
	return Options{
		Seed:        p.Seed,
		SampleBoost: p.SampleBoost,
		SuffixScale: p.SuffixScale,
		Parallelism: p.Parallelism,
	}
}

func (o Options) params() ssrp.Params {
	return ssrp.Params{
		Seed:           o.Seed,
		SampleBoost:    o.SampleBoost,
		SuffixScale:    o.SuffixScale,
		Parallelism:    o.Parallelism,
		ExhaustiveNear: o.ExhaustiveNear,
		FlatLandmarks:  o.FlatLandmarks,
		TrackPaths:     o.TrackPaths,
	}
}

// Result holds all replacement path lengths from one source.
type Result struct {
	res *rp.Result
	g   *graph.Graph
	anc *lca.Ancestry
	ps  *ssrp.PerSource // non-nil only with Options.TrackPaths
}

// Source returns the source vertex.
func (r *Result) Source() int { return int(r.res.Source) }

// Dist returns the shortest-path distance from the source to t, or -1
// if unreachable.
func (r *Result) Dist(t int) int { return int(r.res.Tree.Dist[t]) }

// PathTo returns the canonical shortest path from the source to t as a
// vertex sequence (source first), or nil if t is unreachable. The
// replacement lengths returned by Lengths are indexed by this path's
// edges.
func (r *Result) PathTo(t int) []int32 { return r.res.Tree.PathTo(int32(t)) }

// Lengths returns the replacement path lengths for target t: entry i is
// the length of the shortest source→t path avoiding the i-th edge of
// the canonical path (NoPath if none exists). The returned slice aliases
// the result; callers must not modify it.
func (r *Result) Lengths(t int) []int32 { return r.res.Len[t] }

// AvoidEdge answers a single query: the length of the shortest
// source→t path avoiding the edge {u, v}. It returns an error when the
// edge does not exist or is not on the canonical source→t path, and
// NoPath when no replacement path exists.
func (r *Result) AvoidEdge(t, u, v int) (int32, error) {
	i, err := r.pathEdgeIndex(t, u, v)
	if err != nil {
		return 0, err
	}
	return r.res.Len[t][i], nil
}

// NumAnswers returns the total number of (target, edge) pairs answered.
func (r *Result) NumAnswers() int { return r.res.NumQueries() }

// ErrPathsNotTracked is the sentinel returned when a path expansion is
// requested from a result (or oracle) that was built without
// Options.TrackPaths. SingleSource, MultiSource, and the Oracle all
// support tracking; set the option before solving. Serving front-ends
// should test with errors.Is and map it to a client error (the request
// asked for something this deployment was configured not to record).
var ErrPathsNotTracked = errors.New(
	"msrp: replacement paths were not tracked; set Options.TrackPaths before solving (supported by SingleSource, MultiSource, and the Oracle)")

// ReplacementPath expands the answer for target t and path-edge index i
// into its vertex sequence (source first, t last). It returns nil when
// no replacement path exists, and ErrPathsNotTracked unless the result
// was computed with Options.TrackPaths.
//
// Every returned path is validated first — a real walk in the graph
// from source to t, avoiding the i-th canonical edge, of exactly the
// reported length — so a non-nil path is a machine-checked certificate
// of its answer, never a guess; a reconstruction that fails validation
// surfaces as an error instead.
func (r *Result) ReplacementPath(t, i int) ([]int32, error) {
	if r.ps == nil {
		return nil, ErrPathsNotTracked
	}
	path, err := r.ps.ReconstructPath(int32(t), i)
	if err != nil || path == nil {
		return nil, err
	}
	e := r.ps.EdgeAt(int32(t), i)
	if err := rp.CheckReplacementPath(r.g, path, r.res.Source, int32(t), e, r.res.Len[t][i]); err != nil {
		return nil, fmt.Errorf("msrp: reconstruction for t=%d i=%d failed validation (bug): %w", t, i, err)
	}
	return path, nil
}

// ReplacementPathForEdge is ReplacementPath addressed the way queries
// arrive on the wire: by the avoided edge {u, v} on the canonical path
// to t rather than by path-edge index.
func (r *Result) ReplacementPathForEdge(t, u, v int) ([]int32, error) {
	i, err := r.pathEdgeIndex(t, u, v)
	if err != nil {
		return nil, err
	}
	return r.ReplacementPath(t, i)
}

// ProvenanceBytes returns the retained footprint of this result's
// per-source provenance state (0 when paths were not tracked). The
// Oracle aggregates it across cached entries into
// OracleStats.ProvenanceBytes.
func (r *Result) ProvenanceBytes() int64 {
	if r.ps == nil {
		return 0
	}
	return r.ps.ProvenanceBytes()
}

// pathEdgeIndex resolves the avoided edge {u, v} to its index on the
// canonical path to t — the shared addressing step of AvoidEdge and
// ReplacementPathForEdge. The target is bounds-checked here: these
// entry points are wired to the network (the /v1/query body), so an
// out-of-range target must be a per-query error, not an index panic.
func (r *Result) pathEdgeIndex(t, u, v int) (int, error) {
	if t < 0 || t >= r.g.NumVertices() {
		return 0, fmt.Errorf("msrp: target %d out of range [0,%d)", t, r.g.NumVertices())
	}
	e, ok := r.g.EdgeID(u, v)
	if !ok {
		return 0, fmt.Errorf("msrp: no edge {%d,%d}", u, v)
	}
	if !r.anc.EdgeOnRootPath(r.g, e, int32(t)) {
		return 0, fmt.Errorf("msrp: edge {%d,%d} is not on the canonical %d→%d path",
			u, v, r.res.Source, t)
	}
	child, _ := r.res.Tree.ChildEndpoint(r.g, e)
	return int(r.res.Tree.Dist[child]) - 1, nil
}

func wrapResult(g *graph.Graph, res *rp.Result) *Result {
	return &Result{res: res, g: g, anc: lca.NewAncestry(g, res.Tree)}
}

// ErrNilGraph is returned when a nil graph is passed in.
var ErrNilGraph = errors.New("msrp: nil graph")

// SingleSource computes all replacement path lengths from one source
// (the paper's SSRP algorithm, Theorem 14).
func SingleSource(g *Graph, source int, opts Options) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	if opts.TrackPaths {
		res, ps, _, err := ssrp.SolvePaths(g.g, int32(source), opts.params())
		if err != nil {
			return nil, err
		}
		out := wrapResult(g.g, res)
		out.ps = ps
		return out, nil
	}
	res, _, err := ssrp.Solve(g.g, int32(source), opts.params())
	if err != nil {
		return nil, err
	}
	return wrapResult(g.g, res), nil
}

// MultiSource computes all replacement path lengths from every source
// (the paper's MSRP algorithm, Theorem 1). Results are in source order.
// With Options.TrackPaths each Result supports ReplacementPath exactly
// as a SingleSource result does, expanded through the §8 provenance
// plane.
func MultiSource(g *Graph, sources []int, opts Options) ([]*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	srcs := make([]int32, len(sources))
	for i, s := range sources {
		srcs[i] = int32(s)
	}
	sol, err := msrpcore.Solve(g.g, srcs, opts.params())
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(sol.Results))
	for i, res := range sol.Results {
		out[i] = wrapResult(g.g, res)
		// Gate on the per-source flag, not the option: the solver may
		// downgrade tracking (e.g. the bottleneck assembly has no
		// provenance), in which case path queries must fail per query
		// with ErrPathsNotTracked rather than panic on absent state.
		if sol.PerSource[i].TrackPaths {
			out[i].ps = sol.PerSource[i]
		}
	}
	return out, nil
}

// The Oracle — the concurrency-safe, batch-oriented serving layer over
// these solvers — lives in oracle.go.
