package msrp

import (
	"errors"
	"sync"
	"testing"
	"time"

	"msrp/internal/graph"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

// provOracle builds a warmed path-tracking oracle (6 sources on a
// chorded cycle) under the given provenance byte budget.
func provOracle(t *testing.T, budget int64) (*graph.Graph, *Oracle, []int) {
	t.Helper()
	ig := graph.CycleWithChords(xrand.New(3), 96, 10)
	n := ig.NumVertices()
	sources := make([]int, 6)
	for i := range sources {
		sources[i] = i * n / 6
	}
	opts := testOptions(6)
	opts.SampleBoost = 4 // these tests exercise the tier, not w.h.p. exactness
	opts.TrackPaths = true
	opts.MaxProvenanceBytes = budget
	o, err := NewOracle(WrapGraph(ig), sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Warm(); err != nil {
		t.Fatal(err)
	}
	return ig, o, sources
}

var fullProvOnce struct {
	sync.Once
	bytes int64
}

// fullProvBytes measures the compacted provenance plane of an
// unbudgeted warm — the reference the budgeted tests size against
// (measured once; the warm is the expensive part of these tests).
func fullProvBytes(t *testing.T) int64 {
	t.Helper()
	fullProvOnce.Do(func() {
		_, free, _ := provOracle(t, 0)
		st := free.Stats()
		if st.ProvenanceBytes == 0 {
			t.Fatal("unlimited warm retained no provenance")
		}
		if st.ProvenanceEvictions != 0 {
			t.Fatalf("unlimited warm evicted provenance %d times", st.ProvenanceEvictions)
		}
		if st.ProvenanceRawBytes < 5*st.ProvenanceCompactedBytes {
			t.Fatalf("compaction ratio collapsed: raw %d, compacted %d",
				st.ProvenanceRawBytes, st.ProvenanceCompactedBytes)
		}
		fullProvOnce.bytes = st.ProvenanceBytes
	})
	if fullProvOnce.bytes == 0 {
		t.Fatal("reference measurement failed in an earlier test")
	}
	return fullProvOnce.bytes
}

// provQuery synthesizes a valid on-canonical-path query for the source.
func provQuery(t *testing.T, ig *graph.Graph, o *Oracle, s, target int) Query {
	t.Helper()
	path := o.Result(s).PathTo(target)
	if len(path) < 2 {
		t.Fatalf("no canonical path %d→%d", s, target)
	}
	return Query{Source: s, Target: target, U: int(path[0]), V: int(path[1])}
}

// checkServedPath machine-validates a served path against the graph.
func checkServedPath(t *testing.T, ig *graph.Graph, q Query, path []int32, length int32) {
	t.Helper()
	e, ok := ig.EdgeID(q.U, q.V)
	if !ok {
		t.Fatalf("avoided edge {%d,%d} missing from graph", q.U, q.V)
	}
	if err := rp.CheckReplacementPath(ig, path, int32(q.Source), int32(q.Target), e, length); err != nil {
		t.Fatalf("served path failed validation: %v", err)
	}
}

// TestProvenanceBudgetBoundedAndRebuilds: a warm under a budget strips
// cold sources without ever letting the gauge exceed the budget; path
// queries against stripped sources rebuild on demand and still serve
// machine-validated paths whose lengths agree with the cached ones.
func TestProvenanceBudgetBoundedAndRebuilds(t *testing.T) {
	full := fullProvBytes(t)
	budget := full / 3
	ig, o, sources := provOracle(t, budget)

	st := o.Stats()
	if st.ProvenanceBytes > budget {
		t.Fatalf("post-warm gauge %d exceeds budget %d", st.ProvenanceBytes, budget)
	}
	if st.ProvenanceEvictions == 0 {
		t.Fatalf("budget %d of %d stripped nothing", budget, full)
	}

	n := ig.NumVertices()
	for _, s := range sources {
		q := provQuery(t, ig, o, s, (s+40)%n)
		ans := o.QueryBatch([]Query{q})[0]
		if ans.Err != nil {
			t.Fatalf("length query %+v: %v", q, ans.Err)
		}
		path, err := o.QueryPath(q.Source, q.Target, q.U, q.V)
		if err != nil {
			t.Fatalf("path query %+v: %v", q, err)
		}
		if ans.Length == NoPath {
			continue
		}
		checkServedPath(t, ig, q, path, ans.Length)
		if st := o.Stats(); st.ProvenanceBytes > budget {
			t.Fatalf("gauge %d exceeded budget %d mid-serve", st.ProvenanceBytes, budget)
		}
	}
	if st := o.Stats(); st.ProvenanceRebuilds == 0 {
		t.Fatal("path queries against stripped sources triggered no rebuilds")
	}
}

// TestProvenanceRebuildSingleFlight: concurrent path queries against
// the same stripped source share one rebuild — the single-flight
// contract extends to the provenance tier.
func TestProvenanceRebuildSingleFlight(t *testing.T) {
	full := fullProvBytes(t)
	ig, o, sources := provOracle(t, full/3)

	// The first-warmed source is the provenance LRU's coldest entry, so
	// the budget provably stripped it.
	s := sources[0]
	q := provQuery(t, ig, o, s, (s+40)%ig.NumVertices())
	length := o.QueryBatch([]Query{q})[0].Length

	const goroutines = 16
	paths := make([][]int32, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			paths[i], errs[i] = o.QueryPath(q.Source, q.Target, q.U, q.V)
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		checkServedPath(t, ig, q, paths[i], length)
		for j := range paths[i] {
			if paths[i][j] != paths[0][j] {
				t.Fatalf("goroutine %d served a different path than goroutine 0", i)
			}
		}
	}
	if st := o.Stats(); st.ProvenanceRebuilds != 1 {
		t.Fatalf("%d concurrent path queries caused %d rebuilds, want exactly 1",
			goroutines, st.ProvenanceRebuilds)
	}
}

// TestProvenanceEvictionRaceChurn hammers a tight budget from many
// goroutines so path queries race the provenance LRU's strip/rebuild
// cycle (run under -race); every served path must stay valid and the
// gauge must stay bounded throughout.
func TestProvenanceEvictionRaceChurn(t *testing.T) {
	full := fullProvBytes(t)
	budget := full / 4
	ig, o, sources := provOracle(t, budget)
	n := ig.NumVertices()

	// Pre-derive one valid query per source (materializes nothing new —
	// every source is warm).
	queries := make([]Query, len(sources))
	lengths := make([]int32, len(sources))
	for i, s := range sources {
		queries[i] = provQuery(t, ig, o, s, (s+n/3)%n)
		lengths[i] = o.QueryBatch([]Query{queries[i]})[0].Length
	}

	const goroutines = 8
	var wg sync.WaitGroup
	failures := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			for it := 0; it < 12; it++ {
				qi := rng.Intn(len(queries))
				q := queries[qi]
				path, err := queryPathRetry(o, q)
				if err != nil {
					failures <- err.Error()
					return
				}
				if lengths[qi] != NoPath && (len(path) == 0 || int32(len(path)-1) != lengths[qi]) {
					failures <- "served path length diverged from cached length"
					return
				}
				if st := o.Stats(); st.ProvenanceBytes > budget {
					failures <- "gauge exceeded budget under churn"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Fatal(f)
	}
	st := o.Stats()
	if st.ProvenanceRebuilds == 0 {
		t.Fatal("churn run triggered no rebuilds; budget too loose to exercise the race")
	}
	t.Logf("churn: %d evictions, %d rebuilds, gauge %d ≤ budget %d",
		st.ProvenanceEvictions, st.ProvenanceRebuilds, st.ProvenanceBytes, budget)
}

// queryPathRetry is the documented client contract for a saturated
// rebuild tier: back off briefly and retry. Every other error is final.
func queryPathRetry(o *Oracle, q Query) ([]int32, error) {
	for {
		path, err := o.QueryPath(q.Source, q.Target, q.U, q.V)
		if !errors.Is(err, ErrRebuildSaturated) {
			return path, err
		}
		time.Sleep(time.Millisecond)
	}
}

// TestProvenanceRebuildAdmissionStorm: with the rebuild semaphore
// clamped to one slot and a budget that strips every plane, a storm of
// path queries against distinct sources never runs two tracked
// rebuilds at once — over-limit leaders fail fast with
// ErrRebuildSaturated instead of queueing, and succeed on retry.
// Single-flight joiners of an in-flight build are not admission
// checked, so only cross-source concurrency contends (run under -race).
func TestProvenanceRebuildAdmissionStorm(t *testing.T) {
	ig := graph.CycleWithChords(xrand.New(3), 96, 10)
	n := ig.NumVertices()
	sources := make([]int, 6)
	for i := range sources {
		sources[i] = i * n / 6
	}
	opts := testOptions(6)
	opts.SampleBoost = 4
	opts.TrackPaths = true
	opts.MaxProvenanceBytes = 1 // strips every plane: all path queries rebuild
	opts.MaxProvenanceRebuilds = 1
	o, err := NewOracle(WrapGraph(ig), sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Warm(); err != nil {
		t.Fatal(err)
	}

	queries := make([]Query, len(sources))
	lengths := make([]int32, len(sources))
	for i, s := range sources {
		queries[i] = provQuery(t, ig, o, s, (s+n/3)%n)
		lengths[i] = o.QueryBatch([]Query{queries[i]})[0].Length
	}

	const goroutines = 16
	var wg sync.WaitGroup
	failures := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 101)
			for it := 0; it < 8; it++ {
				qi := rng.Intn(len(queries))
				q := queries[qi]
				path, err := queryPathRetry(o, q)
				if err != nil {
					failures <- err.Error()
					return
				}
				if lengths[qi] != NoPath && (len(path) == 0 || int32(len(path)-1) != lengths[qi]) {
					failures <- "served path length diverged from cached length"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(failures)
	for f := range failures {
		t.Fatal(f)
	}
	if peak := o.rebuildPeak.Load(); peak > 1 {
		t.Fatalf("rebuild concurrency peaked at %d with a 1-slot semaphore", peak)
	}
	st := o.Stats()
	if st.ProvenanceRebuildRejects == 0 {
		t.Fatal("storm never contended the 1-slot semaphore; admission was not exercised")
	}
	t.Logf("storm: %d rebuilds, %d admission rejects, peak concurrency %d",
		st.ProvenanceRebuilds, st.ProvenanceRebuildRejects, o.rebuildPeak.Load())
}
