package msrp

// Determinism under concurrency: the engine's core contract is that
// Options.Parallelism shards work without changing output. These tests
// run the full pipelines at Parallelism ∈ {1, 2, 8} on identical seeds
// and demand bit-identical results; CI executes them under -race, so
// they double as the data-race proof for the sharded stages and the
// concurrent Oracle.

import (
	"sync"
	"testing"

	"msrp/internal/rp"
)

var determinismWorkerCounts = []int{1, 2, 8}

func TestMultiSourceDeterminismAcrossParallelism(t *testing.T) {
	g := GenerateCycleWithChords(5, 72, 8)
	sources := []int{0, 17, 48}

	var baseline []*Result
	for _, workers := range determinismWorkerCounts {
		opts := testOptions(6)
		opts.Parallelism = workers
		results, err := MultiSource(g, sources, opts)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = results
			continue
		}
		for i := range results {
			if d := rp.Diff(resultOf(baseline[i]), resultOf(results[i])); d != "" {
				t.Fatalf("Parallelism=%d: source %d differs from sequential: %s",
					workers, sources[i], d)
			}
		}
	}
}

// TestMultiSourceDeterminismSkewedWorkload is the work-stealing
// determinism proof: a path+star mix gives some sources Θ(n)-deep
// canonical paths and others depth-1 star hops, so per-item work in
// every sharded stage differs by orders of magnitude and idle workers
// must steal. Output must still be bit-identical at every worker count
// (CI runs this under -race, so it doubles as the data-race proof for
// the stealing scheduler and the sharded seed-table build).
func TestMultiSourceDeterminismSkewedWorkload(t *testing.T) {
	g := GeneratePathStarMix(21, 110, 36, 30)
	// Heavy path-tail sources, light star-leaf sources, interleaved so
	// contiguous initial ranges mix both kinds.
	sources := []int{109, 110, 82, 118, 55, 126, 27, 134}

	var baseline []*Result
	for _, workers := range determinismWorkerCounts {
		opts := testOptions(22)
		opts.Parallelism = workers
		results, err := MultiSource(g, sources, opts)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = results
			continue
		}
		for i := range results {
			if d := rp.Diff(resultOf(baseline[i]), resultOf(results[i])); d != "" {
				t.Fatalf("Parallelism=%d: source %d differs from sequential: %s",
					workers, sources[i], d)
			}
		}
	}
}

func TestSingleSourceDeterminismAcrossParallelism(t *testing.T) {
	g := GenerateRandomConnected(8, 90, 260)
	var baseline *Result
	for _, workers := range determinismWorkerCounts {
		opts := testOptions(7)
		opts.Parallelism = workers
		res, err := SingleSource(g, 0, opts)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = res
			continue
		}
		if d := rp.Diff(resultOf(baseline), resultOf(res)); d != "" {
			t.Fatalf("Parallelism=%d differs from sequential: %s", workers, d)
		}
	}
}

// TestOracleDeterminismUnderConcurrentBatches hammers one Oracle with
// concurrent QueryBatch callers at every worker count (plus an LRU
// small enough to force rebuild-after-eviction) and checks that every
// caller always receives the sequential oracle's answers.
func TestOracleDeterminismUnderConcurrentBatches(t *testing.T) {
	g := GenerateRandomConnected(11, 100, 300)
	sources := []int{0, 25, 50, 75}

	buildQueries := func(o *Oracle) []Query {
		var queries []Query
		for _, s := range sources {
			res := o.Result(s)
			for target := 0; target < g.NumVertices(); target += 3 {
				path := res.PathTo(target)
				for i := 0; i+1 < len(path); i++ {
					queries = append(queries, Query{
						Source: s, Target: target,
						U: int(path[i]), V: int(path[i+1]),
					})
				}
			}
		}
		return queries
	}

	seqOpts := testOptions(13)
	seqOpts.Parallelism = 1
	seq, err := NewOracle(g, sources, seqOpts)
	if err != nil {
		t.Fatal(err)
	}
	queries := buildQueries(seq)
	want := seq.QueryBatch(queries)

	for _, workers := range determinismWorkerCounts {
		opts := testOptions(13)
		opts.Parallelism = workers
		opts.MaxCachedSources = 2 // half the sources: force evict+rebuild
		oracle, err := NewOracle(g, sources, opts)
		if err != nil {
			t.Fatal(err)
		}
		const callers = 6
		got := make([][]Answer, callers)
		var wg sync.WaitGroup
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				got[c] = oracle.QueryBatch(queries)
			}(c)
		}
		wg.Wait()
		for c := 0; c < callers; c++ {
			if len(got[c]) != len(want) {
				t.Fatalf("Parallelism=%d caller %d: %d answers, want %d",
					workers, c, len(got[c]), len(want))
			}
			for i := range want {
				if (want[i].Err == nil) != (got[c][i].Err == nil) {
					t.Fatalf("Parallelism=%d caller %d query %d: err %v vs %v",
						workers, c, i, got[c][i].Err, want[i].Err)
				}
				if want[i].Err == nil && got[c][i].Length != want[i].Length {
					t.Fatalf("Parallelism=%d caller %d query %+v: %d, want %d",
						workers, c, queries[i], got[c][i].Length, want[i].Length)
				}
			}
		}
		if cap, cached := 2, oracle.CachedSources(); cached > cap {
			t.Fatalf("LRU holds %d sources, bound %d", cached, cap)
		}
	}
}
