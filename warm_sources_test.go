package msrp

import (
	"context"
	"errors"
	"testing"
)

// TestWarmSourcesSubset covers the slice-warm oracle API the router
// tier uses to pre-build each replica's hash slice: only the requested
// sources materialize, the cache introspection reflects them, and
// answers match a fully lazy oracle bit-for-bit.
func TestWarmSourcesSubset(t *testing.T) {
	g := GenerateRandomConnected(5, 80, 240)
	sources := []int{0, 20, 40, 60}
	opts := DefaultOptions()
	opts.Parallelism = 2
	warmed, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}

	slice := []int{40, 0}
	if err := warmed.WarmSources(context.Background(), slice); err != nil {
		t.Fatal(err)
	}
	if got := warmed.CachedSources(); got != 2 {
		t.Fatalf("CachedSources = %d, want 2", got)
	}
	ids := warmed.CachedSourceIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 40 {
		t.Fatalf("CachedSourceIDs = %v, want [0 40]", ids)
	}
	if !warmed.IsSource(20) || warmed.IsSource(1) {
		t.Fatal("IsSource membership wrong")
	}

	// Repeat warm is a no-op (hits, not rebuilds).
	before := warmed.Stats().Builds
	if err := warmed.WarmSources(context.Background(), slice); err != nil {
		t.Fatal(err)
	}
	if after := warmed.Stats().Builds; after != before {
		t.Fatalf("repeat WarmSources rebuilt: builds %d -> %d", before, after)
	}

	for _, s := range sources {
		res := lazy.Result(s)
		for tgt := 0; tgt < 80; tgt++ {
			path := res.PathTo(tgt)
			if len(path) < 2 {
				continue
			}
			want, err := lazy.Query(s, tgt, int(path[0]), int(path[1]))
			if err != nil {
				t.Fatal(err)
			}
			got, err := warmed.Query(s, tgt, int(path[0]), int(path[1]))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("source %d target %d: slice-warmed %d != lazy %d", s, tgt, got, want)
			}
			break
		}
	}

	if err := warmed.WarmSources(context.Background(), []int{7}); !errors.Is(err, ErrNotSource) {
		t.Fatalf("WarmSources(non-source) = %v, want ErrNotSource", err)
	}
}
