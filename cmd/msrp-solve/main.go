// Command msrp-solve reads a graph in the text format and prints
// replacement path lengths from the given sources.
//
// Usage:
//
//	msrp-gen -family chords -n 200 | msrp-solve -sources 0,50,100
//	msrp-solve -graph g.msrp -sources 0 -target 42
//
// Output is one line per (source, target, edge):
//
//	s=0 t=42 edge={7,42} d=5 replacement=9
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"msrp/internal/graph"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msrp-solve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		path    = flag.String("graph", "-", "graph file in msrp text format ('-' = stdin)")
		sources = flag.String("sources", "0", "comma-separated source vertices")
		target  = flag.Int("target", -1, "restrict output to one target (-1 = all)")
		seed    = flag.Uint64("seed", 1, "rng seed")
		boost   = flag.Float64("boost", 4, "sampling boost (1 = paper constants)")
		exact   = flag.Bool("exact", false, "deterministic exhaustive-near mode")
		par     = flag.Int("parallelism", 0, "engine workers (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
		paths   = flag.Bool("paths", false, "track provenance and print each replacement path (validated: a real edge-avoiding walk of the reported length)")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *path != "-" {
		f, err := os.Open(*path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, err := graph.Decode(in)
	if err != nil {
		return err
	}

	var srcs []int32
	for _, part := range strings.Split(*sources, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad source %q: %w", part, err)
		}
		srcs = append(srcs, int32(v))
	}

	p := ssrp.DefaultParams()
	p.Seed = *seed
	p.SampleBoost = *boost
	p.ExhaustiveNear = *exact
	p.Parallelism = *par
	p.TrackPaths = *paths

	sol, err := msrpcore.Solve(g, srcs, p)
	if err != nil {
		return err
	}
	out := os.Stdout
	for si, res := range sol.Results {
		for t := int32(0); t < int32(g.NumVertices()); t++ {
			if *target >= 0 && t != int32(*target) {
				continue
			}
			if len(res.Len[t]) == 0 {
				continue
			}
			edges := res.Tree.PathEdgesTo(t)
			for i, e := range edges {
				u, v := g.EdgeEndpoints(int(e))
				repl := "inf"
				if l := res.Len[t][i]; l != rp.Inf {
					repl = strconv.Itoa(int(l))
				}
				suffix := ""
				if *paths && res.Len[t][i] != rp.Inf {
					path, err := sol.PerSource[si].ReconstructPath(t, i)
					if err != nil {
						return fmt.Errorf("reconstruct s=%d t=%d i=%d: %w", res.Source, t, i, err)
					}
					if err := rp.CheckReplacementPath(g, path, res.Source, t, e, res.Len[t][i]); err != nil {
						return fmt.Errorf("invalid path s=%d t=%d i=%d: %w", res.Source, t, i, err)
					}
					suffix = " path=" + fmtPath(path)
				}
				fmt.Fprintf(out, "s=%d t=%d edge={%d,%d} d=%d replacement=%s%s\n",
					res.Source, t, u, v, res.Tree.Dist[t], repl, suffix)
			}
		}
	}
	return nil
}

// fmtPath renders a vertex sequence as 0-4-3-2.
func fmtPath(path []int32) string {
	var b strings.Builder
	for i, v := range path {
		if i > 0 {
			b.WriteByte('-')
		}
		b.WriteString(strconv.Itoa(int(v)))
	}
	return b.String()
}
