// Command msrp-serve exposes a replacement-path Oracle over HTTP: the
// JSON batch endpoint /v1/query, the batch-pipeline trigger /v1/warm,
// the metrics scrape /v1/stats, and the liveness probe /healthz (see
// internal/server for schemas and admission-control semantics).
//
// Usage:
//
//	msrp-gen -family chords -n 200 | msrp-serve -sources 0,50,100
//	msrp-serve -graph g.msrp -auto-sources 16 -addr :8080
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/query \
//	  -d '{"queries":[{"source":0,"target":42,"u":7,"v":42}]}'
//
// The process drains gracefully on SIGINT/SIGTERM: in-flight batches
// get a shutdown window, new connections are refused immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"msrp"
	"msrp/internal/graph"
	"msrp/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msrp-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		path     = flag.String("graph", "-", "graph file in msrp text format ('-' = stdin)")
		sources  = flag.String("sources", "", "comma-separated source vertices")
		autoSrcs = flag.Int("auto-sources", 0, "pick this many evenly spread sources (alternative to -sources)")
		seed     = flag.Uint64("seed", 1, "rng seed")
		boost    = flag.Float64("boost", 4, "sampling boost (1 = paper constants)")
		par      = flag.Int("parallelism", 0, "engine workers (0 = GOMAXPROCS); output is identical for every value")
		maxCache = flag.Int("max-cached", 0, "LRU bound on materialized per-source results (0 = unlimited)")
		inflight = flag.Int("max-inflight", 0, "concurrent /v1/query budget (0 = derive from -max-cached, <0 = unlimited)")
		warms    = flag.Int("max-warms", 0, "concurrent /v1/warm budget (0 = 1, <0 = unlimited)")
		retry    = flag.Duration("retry-after", 0, "backoff advertised on 429 responses (0 = derive from measured build latencies)")
		track    = flag.Bool("track-paths", false, "record path provenance so \"paths\": true queries return concrete replacement paths")
		provCap  = flag.Int64("max-provenance-bytes", 0, "byte budget for retained path provenance (0 = unlimited); over-budget sources keep serving lengths and rebuild provenance on demand")
		rebuilds = flag.Int("max-provenance-rebuilds", 0, "concurrent on-demand provenance rebuild budget (0 = derive from -parallelism, <0 = unlimited); saturated rebuilds answer 429")
		pathCap  = flag.Int("max-path-vertices", 0, "per-response budget of path vertices (0 = 131072, <0 = unlimited)")
		shutdown = flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
		lameduck = flag.Duration("drain-lameduck", 0, "on SIGINT/SIGTERM, keep serving (with /healthz reporting 503) this long before closing the listener, so load balancers stop routing first")
		warmup   = flag.Bool("warm", false, "run the batch pipeline over every source before accepting traffic")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *path != "-" {
		f, err := os.Open(*path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	ig, err := graph.Decode(in)
	if err != nil {
		return err
	}
	g := msrp.WrapGraph(ig)

	srcs, err := pickSources(g, *sources, *autoSrcs)
	if err != nil {
		return err
	}

	opts := msrp.DefaultOptions()
	opts.Seed = *seed
	opts.SampleBoost = *boost
	opts.Parallelism = *par
	opts.MaxCachedSources = *maxCache
	opts.TrackPaths = *track
	opts.MaxProvenanceBytes = *provCap
	opts.MaxProvenanceRebuilds = *rebuilds

	oracle, err := msrp.NewOracle(g, srcs, opts)
	if err != nil {
		return err
	}
	if *warmup {
		fmt.Fprintf(os.Stderr, "msrp-serve: warming %d sources…\n", len(srcs))
		if err := oracle.Warm(); err != nil {
			return fmt.Errorf("warm: %w", err)
		}
	}

	handler := server.New(oracle, server.Config{
		MaxInFlight:     *inflight,
		MaxWarms:        *warms,
		RetryAfter:      *retry,
		MaxPathVertices: *pathCap,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		// Bounds body trickle too (no WriteTimeout: big batches may
		// legitimately compute for longer than any fixed bound).
		ReadTimeout: 30 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "msrp-serve: |V|=%d |E|=%d σ=%d, listening on %s\n",
		g.NumVertices(), g.NumEdges(), len(srcs), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "msrp-serve: %v, draining (%v lameduck, %v grace)…\n", s, *lameduck, *shutdown)
		// Flip /healthz to 503 the moment drain starts — before the
		// listener dies — so a load balancer stops routing to this
		// replica while its in-flight requests complete. The lameduck
		// window keeps the listener open long enough for health checks
		// to observe the flip and for already-routed requests to land.
		handler.SetDraining(true)
		if *lameduck > 0 {
			select {
			case <-time.After(*lameduck):
			case <-sig: // second signal skips the lameduck wait
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), *shutdown)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// pickSources resolves the -sources / -auto-sources flags: an explicit
// comma list wins; otherwise k evenly spread vertices.
func pickSources(g *msrp.Graph, list string, k int) ([]int, error) {
	if list != "" {
		var srcs []int
		for _, part := range strings.Split(list, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad source %q: %w", part, err)
			}
			srcs = append(srcs, v)
		}
		return srcs, nil
	}
	n := g.NumVertices()
	if k <= 0 {
		return nil, errors.New("need -sources or -auto-sources")
	}
	if k > n {
		k = n
	}
	srcs := make([]int, k)
	for i := range srcs {
		srcs[i] = i * n / k
	}
	return srcs, nil
}
