// Command msrp-verify cross-checks the SSRP/MSRP solvers against the
// brute-force oracle on randomized instances — a standalone fuzzer for
// the repository's core claim.
//
// Usage:
//
//	msrp-verify -trials 50 -n 80 -sigma 3 -seed 7
//
// Exit status is non-zero if any instance mismatches.
package main

import (
	"flag"
	"fmt"
	"os"

	"msrp/internal/graph"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msrp-verify:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		trials = flag.Int("trials", 20, "number of random instances")
		n      = flag.Int("n", 60, "vertices per instance")
		sigma  = flag.Int("sigma", 2, "sources per instance")
		seed   = flag.Uint64("seed", 1, "rng seed")
		boost  = flag.Float64("boost", 12, "sampling boost")
		scale  = flag.Float64("scale", 0.25, "suffix scale")
		paths  = flag.Bool("paths", true, "also reconstruct every replacement path and machine-verify it (valid in G−e, avoids e, exact length)")
	)
	flag.Parse()

	rng := xrand.New(*seed)
	failures := 0
	for trial := 0; trial < *trials; trial++ {
		m := *n + rng.Intn(3**n)
		g := graph.RandomConnected(rng, *n, m)
		seen := map[int32]struct{}{}
		var sources []int32
		for len(sources) < *sigma {
			s := int32(rng.Intn(*n))
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				sources = append(sources, s)
			}
		}
		p := ssrp.DefaultParams()
		p.Seed = rng.Uint64()
		p.SampleBoost = *boost
		p.SuffixScale = *scale
		p.TrackPaths = *paths

		sol, err := msrpcore.Solve(g, sources, p)
		if err != nil {
			return err
		}
		results := sol.Results
		mism, total, badPaths, pathsChecked := 0, 0, 0, 0
		for i, s := range sources {
			want := naive.SSRP(g, s)
			mm, tt := rp.CountMismatches(want, results[i])
			mism += mm
			total += tt
			if mm > 0 {
				fmt.Printf("trial %d source %d: %s\n", trial, s, rp.Diff(want, results[i]))
			}
			if *paths {
				good, bad := verifyPaths(g, sol.PerSource[i], results[i])
				pathsChecked += good
				badPaths += bad
			}
		}
		status := "ok"
		if mism > 0 || badPaths > 0 {
			status = "MISMATCH"
			failures++
		}
		fmt.Printf("trial %2d: n=%d m=%d sigma=%d entries=%d mismatches=%d paths=%d bad_paths=%d %s\n",
			trial, *n, m, *sigma, total, mism, pathsChecked, badPaths, status)
	}
	if failures > 0 {
		return fmt.Errorf("%d/%d trials mismatched", failures, *trials)
	}
	fmt.Printf("all %d trials exact\n", *trials)
	return nil
}

// verifyPaths reconstructs every answer of one source and
// machine-verifies it: a real walk in G−e, avoiding e, of exactly the
// reported length. Returns (paths verified, failures); failures are
// printed.
func verifyPaths(g *graph.Graph, ps *ssrp.PerSource, res *rp.Result) (good, bad int) {
	verified, failures := rp.VerifyReconstructions(g, res, 1, ps.ReconstructPath)
	for _, f := range failures {
		fmt.Printf("  bad path %s\n", f)
	}
	return verified, len(failures)
}
