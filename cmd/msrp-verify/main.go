// Command msrp-verify cross-checks the SSRP/MSRP solvers against the
// brute-force oracle on randomized instances — a standalone fuzzer for
// the repository's core claim.
//
// Usage:
//
//	msrp-verify -trials 50 -n 80 -sigma 3 -seed 7
//
// Exit status is non-zero if any instance mismatches.
package main

import (
	"flag"
	"fmt"
	"os"

	"msrp/internal/graph"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msrp-verify:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		trials = flag.Int("trials", 20, "number of random instances")
		n      = flag.Int("n", 60, "vertices per instance")
		sigma  = flag.Int("sigma", 2, "sources per instance")
		seed   = flag.Uint64("seed", 1, "rng seed")
		boost  = flag.Float64("boost", 12, "sampling boost")
		scale  = flag.Float64("scale", 0.25, "suffix scale")
	)
	flag.Parse()

	rng := xrand.New(*seed)
	failures := 0
	for trial := 0; trial < *trials; trial++ {
		m := *n + rng.Intn(3**n)
		g := graph.RandomConnected(rng, *n, m)
		seen := map[int32]struct{}{}
		var sources []int32
		for len(sources) < *sigma {
			s := int32(rng.Intn(*n))
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				sources = append(sources, s)
			}
		}
		p := ssrp.DefaultParams()
		p.Seed = rng.Uint64()
		p.SampleBoost = *boost
		p.SuffixScale = *scale

		results, _, err := msrpcore.Solve(g, sources, p)
		if err != nil {
			return err
		}
		mism, total := 0, 0
		for i, s := range sources {
			want := naive.SSRP(g, s)
			mm, tt := rp.CountMismatches(want, results[i])
			mism += mm
			total += tt
			if mm > 0 {
				fmt.Printf("trial %d source %d: %s\n", trial, s, rp.Diff(want, results[i]))
			}
		}
		status := "ok"
		if mism > 0 {
			status = "MISMATCH"
			failures++
		}
		fmt.Printf("trial %2d: n=%d m=%d sigma=%d entries=%d mismatches=%d %s\n",
			trial, *n, m, *sigma, total, mism, status)
	}
	if failures > 0 {
		return fmt.Errorf("%d/%d trials mismatched", failures, *trials)
	}
	fmt.Printf("all %d trials exact\n", *trials)
	return nil
}
