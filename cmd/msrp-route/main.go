// Command msrp-route fronts a fleet of msrp-serve replicas with the
// replica-sharded router (internal/router): source ids consistent-hash
// across the fleet so each replica warms and caches only its slice of
// the σ·n² oracle state, mixed-source batches scatter-gather into
// per-replica sub-batches, and the client-facing surface — /v1/query,
// /v1/warm, /v1/sources, /v1/stats (fleet-aggregated), /healthz — is
// the same as a single msrp-serve, so existing clients (including
// cmd/msrp-load) work unmodified.
//
// Two ways to get a fleet:
//
//	# Route over replicas you run yourself:
//	msrp-route -replicas http://10.0.0.1:8080,http://10.0.0.2:8080
//
//	# Spawn a local fleet (and optionally a chaos control endpoint):
//	msrp-route -spawn 3 -serve-bin ./msrp-serve -graph g.msrp \
//	    -replica-args '-auto-sources 8 -max-cached 4' -chaos
//
// With -chaos, POST /v1/chaos {"op":"kill|term|stall|resume|restart",
// "replica":N} injects faults into the spawned fleet — the harness the
// E17 failover experiment drives. Two membership ops ride the same
// endpoint for spawned fleets: {"op":"add"} spawns a fresh replica and
// joins it warm-before-serve, and {"op":"drain","replica":N} warms the
// departing slice onto its successors, flips the epoch, terminates the
// process, and removes the slot — the E19 membership-churn harness.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"msrp/internal/router"

	"context"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msrp-route:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		replicas = flag.String("replicas", "", "comma-separated replica base URLs (alternative to -spawn)")

		spawn       = flag.Int("spawn", 0, "spawn this many local msrp-serve replicas instead of -replicas")
		serveBin    = flag.String("serve-bin", "msrp-serve", "msrp-serve binary for -spawn")
		graphPath   = flag.String("graph", "", "graph file for spawned replicas (required with -spawn)")
		replicaArgs = flag.String("replica-args", "", "extra args for each spawned replica, space-separated (e.g. '-auto-sources 8 -max-cached 4')")
		chaos       = flag.Bool("chaos", false, "expose POST /v1/chaos fault injection over the spawned fleet")

		itemDeadline  = flag.Duration("item-deadline", 5*time.Second, "per-item budget across all retries and failovers")
		batchDeadline = flag.Duration("batch-deadline", 30*time.Second, "whole-batch budget")
		maxAttempts   = flag.Int("max-attempts", 3, "HTTP attempts per item across replicas")
		retryBase     = flag.Duration("retry-base", 25*time.Millisecond, "full-jitter backoff base")
		probeInterval = flag.Duration("probe-interval", 250*time.Millisecond, "/healthz probe period per replica")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "per-probe timeout")
		failAfter     = flag.Int("fail-after", 2, "consecutive failures that demote a replica to down")
		upAfter       = flag.Int("up-after", 2, "consecutive probe successes that promote it back")
		vnodes        = flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		inflight      = flag.Int("max-inflight", 0, "concurrent routed batches (0 = 16 x replicas, <0 = unlimited)")

		shutdown = flag.Duration("shutdown-grace", 10*time.Second, "drain window for in-flight requests on SIGINT/SIGTERM")
		lameduck = flag.Duration("drain-lameduck", 0, "keep serving (with /healthz at 503) this long before closing the listener")
	)
	flag.Parse()

	var (
		urls []string
		mgr  *router.Manager
	)
	switch {
	case *spawn > 0:
		if *graphPath == "" {
			return errors.New("-spawn needs -graph")
		}
		var extra []string
		if strings.TrimSpace(*replicaArgs) != "" {
			extra = strings.Fields(*replicaArgs)
		}
		var err error
		mgr, err = router.NewManager(router.ManagerConfig{
			ServeBin:  *serveBin,
			GraphPath: *graphPath,
			Replicas:  *spawn,
			ExtraArgs: extra,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "msrp-route: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		defer mgr.StopAll()
		urls = mgr.URLs()
	case *replicas != "":
		for _, part := range strings.Split(*replicas, ",") {
			u := strings.TrimSuffix(strings.TrimSpace(part), "/")
			if u == "" {
				continue
			}
			urls = append(urls, u)
		}
		if len(urls) == 0 {
			return errors.New("-replicas is empty")
		}
	default:
		return errors.New("need -replicas or -spawn")
	}
	if *chaos && mgr == nil {
		return errors.New("-chaos needs -spawn (there is no process to signal in -replicas mode)")
	}

	rt, err := router.New(router.Config{
		Replicas:      urls,
		VNodes:        *vnodes,
		ItemDeadline:  *itemDeadline,
		BatchDeadline: *batchDeadline,
		MaxAttempts:   *maxAttempts,
		RetryBase:     *retryBase,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     *failAfter,
		UpAfter:       *upAfter,
		MaxInFlight:   *inflight,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "msrp-route: "+format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	rt.Start()
	defer rt.Close()

	mux := http.NewServeMux()
	mux.Handle("/", rt)
	if *chaos {
		mux.HandleFunc("POST /v1/chaos", chaosHandler(mgr, rt))
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "msrp-route: routing %d replicas, listening on %s\n", len(urls), *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "msrp-route: %v, draining (%v lameduck, %v grace)…\n", s, *lameduck, *shutdown)
		rt.SetDraining(true)
		if *lameduck > 0 {
			select {
			case <-time.After(*lameduck):
			case <-sig:
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), *shutdown)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		if mgr != nil {
			mgr.TermAll()
		}
		return nil
	}
}

// chaosHandler exposes the fleet manager's fault injection plus the
// membership ops over the spawned fleet: POST /v1/chaos
// {"op":"kill|term|stall|resume|restart|add|drain","replica":N}.
// "add" ignores replica (the new slot id is allocated and returned);
// "drain" warms successors before the epoch flips, then terminates and
// removes the replica.
func chaosHandler(mgr *router.Manager, rt *router.Router) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Op      string `json:"op"`
			Replica int    `json:"replica"`
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeErr(w, http.StatusBadRequest, "bad chaos body: "+err.Error())
			return
		}
		switch req.Op {
		case "add":
			i, url, err := mgr.Add()
			if err != nil {
				writeErr(w, http.StatusBadGateway, "add: "+err.Error())
				return
			}
			slot, warmed, err := rt.Join(r.Context(), url)
			if err != nil {
				// The process is up but never joined the ring; tear it
				// back down so it does not leak.
				_ = mgr.Kill(i)
				writeErr(w, http.StatusBadGateway, "join: "+err.Error())
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"ok": true, "op": req.Op, "replica": slot, "warmed": warmed, "epoch": rt.Ring().Epoch()})
			return
		case "drain":
			moved, err := rt.Drain(r.Context(), req.Replica)
			if err != nil {
				writeErr(w, http.StatusBadGateway, "drain: "+err.Error())
				return
			}
			// Epoch already flipped — the replica takes no new traffic.
			// Let it lame-duck its in-flight sub-batches, then drop the
			// slot from the health table.
			if err := mgr.Term(req.Replica); err != nil {
				writeErr(w, http.StatusBadGateway, "term: "+err.Error())
				return
			}
			if err := rt.Remove(req.Replica); err != nil {
				writeErr(w, http.StatusBadGateway, "remove: "+err.Error())
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"ok": true, "op": req.Op, "replica": req.Replica, "moved": moved, "epoch": rt.Ring().Epoch()})
			return
		}
		if err := mgr.Apply(req.Op, req.Replica); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"ok": true, "op": req.Op, "replica": req.Replica})
	}
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
