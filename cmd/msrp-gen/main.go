// Command msrp-gen generates workload graphs in the repository's text
// format (see internal/graph/io.go) on stdout.
//
// Usage:
//
//	msrp-gen -family random -n 1000 -m 4000 -seed 7 > g.msrp
//	msrp-gen -family grid -rows 20 -cols 50
//	msrp-gen -family cycle -n 500
//	msrp-gen -family chords -n 500 -chords 20
//	msrp-gen -family pa -n 1000 -k 3
package main

import (
	"flag"
	"fmt"
	"os"

	"msrp/internal/graph"
	"msrp/internal/xrand"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msrp-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family = flag.String("family", "random", "random|grid|cycle|path|chords|pa|barbell")
		n      = flag.Int("n", 100, "vertices")
		m      = flag.Int("m", 0, "edges (random family; default 4n)")
		rows   = flag.Int("rows", 10, "grid rows")
		cols   = flag.Int("cols", 10, "grid cols")
		chords = flag.Int("chords", 10, "chord count (chords family)")
		k      = flag.Int("k", 3, "edges per arrival (pa family)")
		bridge = flag.Int("bridge", 3, "bridge length (barbell family)")
		seed   = flag.Uint64("seed", 1, "rng seed")
	)
	flag.Parse()

	rng := xrand.New(*seed)
	var g *graph.Graph
	switch *family {
	case "random":
		edges := *m
		if edges == 0 {
			edges = 4 * *n
		}
		g = graph.RandomConnected(rng, *n, edges)
	case "grid":
		g = graph.Grid(*rows, *cols)
	case "cycle":
		g = graph.Cycle(*n)
	case "path":
		g = graph.Path(*n)
	case "chords":
		g = graph.CycleWithChords(rng, *n, *chords)
	case "pa":
		g = graph.PreferentialAttachment(rng, *n, *k)
	case "barbell":
		g = graph.Barbell(*n, *bridge)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	return graph.Encode(g, os.Stdout)
}
