// Command msrp-load executes a declarative load plan (internal/load)
// against an msrp-serve endpoint and records a machine-readable result.
//
// Three modes:
//
//   - spawn (default): regenerate the plan's graph, boot a private
//     msrp-serve on a free port with the plan's server knobs, run the
//     waves, then drain it. The full lifecycle — including a mid-wave
//     SIGTERM for drain waves — is owned by the harness.
//   - router (plan.router set): spawn a fleet of msrp-serve replicas
//     plus an in-process replica-sharded router (internal/router), run
//     the waves through the router, and wire the plan's chaos stages
//     (kill/term/stall/restart a replica, or addReplica/drainReplica
//     membership churn, mid-wave) to the fleet. The E17 failover and
//     E19 membership-churn experiments run this way.
//   - external (-target): drive an already-running endpoint. Drain
//     waves then need -drain-pid so the harness can deliver SIGTERM
//     (which also enables peak-RSS sampling from /proc).
//
// Usage:
//
//	msrp-load -plan plans/micro.json -out BENCH_E16.json
//	msrp-load -plan plans/router-chaos.json -out BENCH_E17.json -v
//	msrp-load -plan plans/micro.json -target http://127.0.0.1:8080
//
// Exit status is non-zero when the harness itself fails, when any wave
// observed a 5xx (unless -fail-on-5xx=false), when a drain wave never
// saw /healthz flip to 503, or when a disruptive chaos stage (kill,
// term, restart) produced zero failovers — a chaos run that didn't
// actually exercise failover proves nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"time"

	"msrp/internal/bench"
	"msrp/internal/graph"
	"msrp/internal/load"
	"msrp/internal/router"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msrp-load:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		planPath = flag.String("plan", "", "load plan JSON (required; see internal/load)")
		target   = flag.String("target", "", "existing msrp-serve base URL (default: spawn a private server)")
		serveBin = flag.String("serve-bin", "msrp-serve", "msrp-serve binary for spawn mode (looked up in PATH)")
		drainPid = flag.Int("drain-pid", 0, "server pid for drain waves / RSS sampling in -target mode")
		out      = flag.String("out", "", "write the run record as a BENCH envelope to this file")
		expName  = flag.String("experiment", "", "envelope experiment id (default: E16, or E17 for router plans)")
		compare  = flag.String("compare", "", "committed BENCH envelope to diff this run against (the bench-regression gate)")
		latTol   = flag.Float64("tolerance", 0, "latency tolerance factor for -compare (0 = default band)")
		failOn5s = flag.Bool("fail-on-5xx", true, "exit non-zero when any wave observed a 5xx")
		verbose  = flag.Bool("v", false, "log wave progress to stderr")
	)
	flag.Parse()
	if *planPath == "" {
		return fmt.Errorf("need -plan (a load plan JSON; see internal/load)")
	}
	plan, err := load.LoadPlan(*planPath)
	if err != nil {
		return err
	}

	opt := load.Options{}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "msrp-load: "+format+"\n", args...)
		}
	}

	var (
		tgt     *load.Target
		spawned *serveProc
		fleet   *routerFleet
	)
	switch {
	case *target != "":
		tgt = &load.Target{BaseURL: *target, Pid: *drainPid}
	case plan.Router != nil:
		fleet, err = spawnFleet(plan, *serveBin, opt)
		if err != nil {
			return err
		}
		defer fleet.cleanup()
		tgt = &load.Target{
			BaseURL: fleet.baseURL,
			ChaosFn: fleet.chaos,
			DrainFn: fleet.drain,
		}
	default:
		spawned, err = spawnServe(plan, *serveBin, opt)
		if err != nil {
			return err
		}
		defer spawned.cleanup()
		tgt = &load.Target{BaseURL: spawned.baseURL, Pid: spawned.cmd.Process.Pid}
	}

	res, err := load.Run(context.Background(), plan, tgt, opt)
	if err != nil {
		return err
	}

	// A spawned server that was drained mid-wave is already exiting;
	// collect it (and its exit status) before judging the run. Otherwise
	// shut it down now.
	drained := false
	for _, w := range plan.Waves {
		drained = drained || w.Drain
	}
	if spawned != nil {
		if err := spawned.stop(drained); err != nil {
			return err
		}
	}

	if *out != "" {
		exp := *expName
		if exp == "" {
			exp = "E16"
			if plan.Router != nil {
				exp = "E17"
			}
		}
		env := bench.NewEnvelope(exp, "Load-plan scenario run: "+plan.Name, res)
		if err := env.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "msrp-load: wrote %s\n", *out)
	}

	summarize(res)

	if *failOn5s && res.ServerErrors > 0 {
		return fmt.Errorf("run observed %d server errors (5xx)", res.ServerErrors)
	}
	for _, w := range res.Waves {
		if w.Drain != nil && !w.Drain.Healthz503Observed {
			return fmt.Errorf("wave %q drained but /healthz never reported 503", w.Name)
		}
		if w.PathInvalid > 0 {
			return fmt.Errorf("wave %q served %d invalid paths (first: %s)", w.Name, w.PathInvalid, w.PathInvalidFirst)
		}
	}
	if err := judgeChaos(res); err != nil {
		return err
	}

	if *compare != "" {
		base, err := load.LoadBaseline(*compare)
		if err != nil {
			return err
		}
		tol := load.DefaultTolerance()
		if *latTol > 0 {
			tol.LatencyFactor = *latTol
		}
		if violations := load.Compare(res, base, tol); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, "msrp-load: regression:", v)
			}
			return fmt.Errorf("run regressed against %s (%d violations)", *compare, len(violations))
		}
		fmt.Fprintf(os.Stderr, "msrp-load: inside the tolerance band of %s\n", *compare)
	}
	return nil
}

// judgeChaos turns a chaos run that didn't actually exercise the
// failure machinery into a failure: an injection error is the harness
// breaking, a disruptive fault (kill/term/restart) that produced zero
// failovers means the wave finished without the router ever re-routing
// an orphaned item, and a membership wave that didn't move the ring —
// or moved it without warm-before-serve — means the churn scenario
// proved nothing.
func judgeChaos(res *load.Result) error {
	var disruptive []string
	var failovers, handbacks int64
	sawRestartRecovery := false
	var lastEpoch uint64
	for _, w := range res.Waves {
		if w.Router != nil {
			failovers += w.Router.Failovers
			handbacks += w.Router.Handbacks
			// The ring epoch only ever advances; a regression means the
			// router published a stale ring.
			if w.Router.Epoch < lastEpoch {
				return fmt.Errorf("wave %q: ring epoch went backwards (%d after %d)", w.Name, w.Router.Epoch, lastEpoch)
			}
			lastEpoch = w.Router.Epoch
			if w.Router.WarmBeforeServeViolations > 0 {
				return fmt.Errorf("wave %q: %d replica(s) served items without a warmed slice (warm-before-serve violated)",
					w.Name, w.Router.WarmBeforeServeViolations)
			}
		}
		c := w.Chaos
		if c == nil {
			continue
		}
		if c.Error != "" {
			return fmt.Errorf("wave %q chaos injection failed: %s", w.Name, c.Error)
		}
		switch c.Action {
		case load.ChaosKill, load.ChaosTerm, load.ChaosRestart:
			disruptive = append(disruptive, w.Name)
		case load.ChaosAddReplica:
			if w.Router == nil || w.Router.Joins == 0 {
				return fmt.Errorf("wave %q ran addReplica but the router recorded zero joins", w.Name)
			}
		case load.ChaosDrainReplica:
			if w.Router == nil || w.Router.Drains == 0 {
				return fmt.Errorf("wave %q ran drainReplica but the router recorded zero drains", w.Name)
			}
		}
		if c.Action == load.ChaosRestart && c.Recovered {
			sawRestartRecovery = true
		}
	}
	if len(disruptive) > 0 && failovers == 0 {
		return fmt.Errorf("disruptive chaos in wave(s) %v but the router recorded zero failovers", disruptive)
	}
	// A recovered restart must eventually hand the slice back. The
	// hand-back can land in the wave after the recovery, which is why
	// this sums across the whole run.
	if sawRestartRecovery && handbacks == 0 {
		return fmt.Errorf("a replica restarted and rejoined but the router recorded zero hand-backs")
	}
	return nil
}

func summarize(res *load.Result) {
	for _, w := range res.Waves {
		fmt.Printf("wave %-12s offered=%-6d completed=%-6d rejected=%-5d (%4.1f%%) 5xx=%d  p50=%.2fms p95=%.2fms p99=%.2fms  %.0f rps\n",
			w.Name, w.OfferedBatches, w.Completed, w.Rejected, 100*w.RejectionRate,
			w.ServerErrors, w.Latency.P50, w.Latency.P95, w.Latency.P99, w.ThroughputRPS)
		if w.Drain != nil {
			fmt.Printf("wave %-12s drain: healthz503=%v after %.0fms, completedAfterDrain=%d, 5xxAfterDrain=%d\n",
				w.Name, w.Drain.Healthz503Observed, w.Drain.Healthz503Millis,
				w.Drain.CompletedAfterDrain, w.Drain.ServerErrorsAfterDrain)
		}
		if c := w.Chaos; c != nil {
			line := fmt.Sprintf("wave %-12s chaos: %s replica %d at %.0fms",
				w.Name, c.Action, c.Replica, c.TriggeredAtMillis)
			if c.Recovered {
				line += fmt.Sprintf(", recovered at %.0fms", c.RecoveredAtMillis)
			}
			if c.Error != "" {
				line += ", INJECTION FAILED: " + c.Error
			}
			fmt.Println(line)
		}
		if rd := w.Router; rd != nil {
			fmt.Printf("wave %-12s router: failovers=%d failoverWarms=%d retries=%d routeErrors=%d handbacks=%d replicasUp=%d\n",
				w.Name, rd.Failovers, rd.FailoverWarms, rd.Retries,
				rd.RouteErrors, rd.Handbacks, rd.ReplicasUp)
			if rd.Joins+rd.Drains+rd.Removes > 0 {
				fmt.Printf("wave %-12s membership: epoch=%d joins=%d drains=%d removes=%d warms=%d wbsViolations=%d\n",
					w.Name, rd.Epoch, rd.Joins, rd.Drains, rd.Removes,
					rd.MembershipWarms, rd.WarmBeforeServeViolations)
			}
		}
		if w.PathsValidated+w.PathInvalid+w.PathBudgetErrors > 0 {
			fmt.Printf("wave %-12s paths: validated=%d invalid=%d budgetErrors=%d\n",
				w.Name, w.PathsValidated, w.PathInvalid, w.PathBudgetErrors)
		}
		if st := w.Stats; st != nil && st.ProvenanceEvictions+st.ProvenanceRebuilds > 0 {
			fmt.Printf("wave %-12s provenance: evictions=%d rebuilds=%d\n",
				w.Name, st.ProvenanceEvictions, st.ProvenanceRebuilds)
		}
	}
	if res.PeakRSSBytes > 0 {
		fmt.Printf("server peak RSS: %.1f MiB\n", float64(res.PeakRSSBytes)/(1<<20))
	}
	if s := res.Server; s != nil && s.PeakProvenanceBytes > 0 {
		fmt.Printf("provenance: peak=%d bytes (raw=%d compacted=%d)\n",
			s.PeakProvenanceBytes, s.ProvenanceRawBytes, s.ProvenanceCompactedBytes)
	}
}

// serveProc is a spawned msrp-serve and everything needed to reap it.
type serveProc struct {
	cmd       *exec.Cmd
	baseURL   string
	graphFile string
	waited    bool
}

// spawnServe regenerates the plan's graph, writes it to a temp file,
// and boots msrp-serve on a loopback port with the plan's server knobs.
// Returns once /healthz answers 200.
func spawnServe(plan *load.Plan, bin string, opt load.Options) (*serveProc, error) {
	graphFile, err := writeGraphFile(plan)
	if err != nil {
		return nil, err
	}

	port, err := freePort()
	if err != nil {
		os.Remove(graphFile)
		return nil, err
	}
	addr := net.JoinHostPort("127.0.0.1", strconv.Itoa(port))

	args := append([]string{"-graph", graphFile, "-addr", addr}, serveArgs(plan)...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		os.Remove(graphFile)
		return nil, fmt.Errorf("spawn %s: %w", bin, err)
	}
	if opt.Logf != nil {
		opt.Logf("spawned %s (pid %d) on %s", bin, cmd.Process.Pid, addr)
	}

	p := &serveProc{cmd: cmd, baseURL: "http://" + addr, graphFile: graphFile}
	if err := p.waitHealthy(30 * time.Second); err != nil {
		p.cleanup()
		return nil, err
	}
	return p, nil
}

// writeGraphFile regenerates the plan's graph into a temp file the
// spawned server(s) can load. The caller owns (and removes) the file.
func writeGraphFile(plan *load.Plan) (string, error) {
	g, err := load.BuildGraph(plan.Graph)
	if err != nil {
		return "", err
	}
	f, err := os.CreateTemp("", "msrp-load-*.graph")
	if err != nil {
		return "", err
	}
	if err := graph.Encode(g, f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	return f.Name(), nil
}

// serveArgs translates the plan's server knobs into msrp-serve flags
// (everything except -graph and -addr, which are per-process).
func serveArgs(plan *load.Plan) []string {
	args := []string{"-auto-sources", strconv.Itoa(plan.Sources)}
	if plan.TrackPaths {
		args = append(args, "-track-paths")
	}
	if s := plan.Server; s != nil {
		if s.MaxCached != 0 {
			args = append(args, "-max-cached", strconv.Itoa(s.MaxCached))
		}
		if s.MaxProvenanceBytes != 0 {
			args = append(args, "-max-provenance-bytes", strconv.FormatInt(s.MaxProvenanceBytes, 10))
		}
		if s.MaxInFlight != 0 {
			args = append(args, "-max-inflight", strconv.Itoa(s.MaxInFlight))
		}
		if s.Parallelism != 0 {
			args = append(args, "-parallelism", strconv.Itoa(s.Parallelism))
		}
		if d := time.Duration(s.Lameduck); d > 0 {
			args = append(args, "-drain-lameduck", d.String())
		}
		if d := time.Duration(s.Grace); d > 0 {
			args = append(args, "-shutdown-grace", d.String())
		}
	}
	return args
}

func (p *serveProc) waitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(p.baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		// A dead child never becomes healthy; fail fast with its status.
		if p.cmd.ProcessState != nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("spawned server never became healthy on %s", p.baseURL)
}

// stop reaps the child: a drained server is already exiting (the
// harness SIGTERMed it mid-wave), so just wait; otherwise deliver the
// SIGTERM first. Either way a stuck child is killed after a bound.
func (p *serveProc) stop(alreadyDraining bool) error {
	if !alreadyDraining {
		_ = p.cmd.Process.Signal(os.Interrupt)
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		p.waited = true
		if err != nil {
			return fmt.Errorf("spawned server exited uncleanly: %w", err)
		}
		return nil
	case <-time.After(60 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
		p.waited = true
		return fmt.Errorf("spawned server did not exit within 60s of drain; killed")
	}
}

func (p *serveProc) cleanup() {
	if !p.waited {
		_ = p.cmd.Process.Kill()
		done := make(chan error, 1)
		go func() { done <- p.cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
		}
		p.waited = true
	}
	os.Remove(p.graphFile)
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// routerFleet is a spawned msrp-serve fleet fronted by an in-process
// replica-sharded router — the target of a plan with a router section.
// Running the router in-process (instead of spawning msrp-route) keeps
// the chaos hook a direct method call on the fleet manager.
type routerFleet struct {
	mgr       *router.Manager
	rt        *router.Router
	srv       *http.Server
	baseURL   string
	graphFile string
	stopped   bool
}

// spawnFleet regenerates the plan's graph, boots plan.Router.Replicas
// msrp-serve processes with the plan's server knobs, and serves a
// router over them on a loopback port. Returns once every replica and
// the router answer /healthz.
func spawnFleet(plan *load.Plan, bin string, opt load.Options) (*routerFleet, error) {
	graphFile, err := writeGraphFile(plan)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*routerFleet, error) {
		os.Remove(graphFile)
		return nil, err
	}

	mgr, err := router.NewManager(router.ManagerConfig{
		ServeBin:  bin,
		GraphPath: graphFile,
		Replicas:  plan.Router.Replicas,
		ExtraArgs: serveArgs(plan),
		Logf:      opt.Logf,
	})
	if err != nil {
		return fail(err)
	}

	spec := plan.Router
	rt, err := router.New(router.Config{
		Replicas:      mgr.URLs(),
		ItemDeadline:  time.Duration(spec.ItemDeadline),
		BatchDeadline: time.Duration(spec.BatchDeadline),
		MaxAttempts:   spec.MaxAttempts,
		ProbeInterval: time.Duration(spec.ProbeInterval),
		FailAfter:     spec.FailAfter,
		UpAfter:       spec.UpAfter,
		Logf:          opt.Logf,
	})
	if err != nil {
		mgr.StopAll()
		return fail(err)
	}
	rt.Start()

	port, err := freePort()
	if err != nil {
		rt.Close()
		mgr.StopAll()
		return fail(err)
	}
	addr := net.JoinHostPort("127.0.0.1", strconv.Itoa(port))
	srv := &http.Server{Addr: addr, Handler: rt}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		rt.Close()
		mgr.StopAll()
		return fail(err)
	}
	go func() { _ = srv.Serve(ln) }()

	f := &routerFleet{
		mgr:       mgr,
		rt:        rt,
		srv:       srv,
		baseURL:   "http://" + addr,
		graphFile: graphFile,
	}
	if err := f.waitHealthy(30 * time.Second); err != nil {
		f.cleanup()
		return nil, err
	}
	if opt.Logf != nil {
		opt.Logf("router fleet up: %d replicas behind %s", plan.Router.Replicas, f.baseURL)
	}
	return f, nil
}

func (f *routerFleet) waitHealthy(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	client := &http.Client{Timeout: 2 * time.Second}
	for time.Now().Before(deadline) {
		resp, err := client.Get(f.baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("router never became healthy on %s", f.baseURL)
}

// chaos dispatches a plan chaos op. The membership actions drive both
// halves of the fleet — the process side (spawn/terminate) through the
// manager and the routing side (warm-before-serve join, drain hand-off)
// through the router; everything else is a process-level fault via the
// manager alone.
func (f *routerFleet) chaos(op string, replica int) error {
	switch op {
	case load.ChaosAddReplica:
		i, url, err := f.mgr.Add()
		if err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if _, _, err := f.rt.Join(ctx, url); err != nil {
			_ = f.mgr.Kill(i)
			return fmt.Errorf("join replica %d: %w", i, err)
		}
		return nil
	case load.ChaosDrainReplica:
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
		defer cancel()
		if _, err := f.rt.Drain(ctx, replica); err != nil {
			return err
		}
		if err := f.mgr.Term(replica); err != nil {
			return err
		}
		return f.rt.Remove(replica)
	default:
		return f.mgr.Apply(op, replica)
	}
}

// drain flips the router into lameduck (healthz 503, requests still
// served) and terminates the fleet in the background — the router-mode
// analogue of SIGTERMing a single spawned server.
func (f *routerFleet) drain() error {
	f.rt.SetDraining(true)
	go f.mgr.TermAll()
	return nil
}

func (f *routerFleet) cleanup() {
	if f.stopped {
		return
	}
	f.stopped = true
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = f.srv.Shutdown(ctx)
	cancel()
	f.rt.Close()
	f.mgr.StopAll()
	os.Remove(f.graphFile)
}
