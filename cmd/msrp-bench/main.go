// Command msrp-bench runs the reproduction experiments (DESIGN.md §5,
// EXPERIMENTS.md) and prints their tables.
//
// Usage:
//
//	msrp-bench                 # run every experiment at full size
//	msrp-bench -quick          # test-suite sizes (seconds each)
//	msrp-bench -experiment E3  # one experiment
//	msrp-bench -list           # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"msrp/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "msrp-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		experiment = flag.String("experiment", "all", "experiment id (E1..E9) or 'all'")
		quick      = flag.Bool("quick", false, "shrink sweeps to test sizes")
		list       = flag.Bool("list", false, "list experiments and exit")
		record     = flag.String("record", "", "write the experiment's machine-readable record (bench.Envelope JSON) to this path; supported by E20")
	)
	flag.Parse()

	all := bench.All()
	if *list {
		for _, ex := range all {
			fmt.Printf("%-4s %-32s %s\n", ex.ID, ex.Name, ex.Claim)
		}
		return nil
	}
	cfg := bench.Config{Quick: *quick, RecordPath: *record}
	want := strings.ToUpper(*experiment)
	ran := 0
	for _, ex := range all {
		if want != "ALL" && ex.ID != want {
			continue
		}
		fmt.Printf("\n### %s — %s\n    claim: %s\n", ex.ID, ex.Name, ex.Claim)
		start := time.Now()
		if err := ex.Run(os.Stdout, cfg); err != nil {
			return fmt.Errorf("%s: %w", ex.ID, err)
		}
		fmt.Printf("  (%s completed in %v)\n", ex.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("unknown experiment %q (use -list)", *experiment)
	}
	return nil
}
