module msrp

go 1.24
