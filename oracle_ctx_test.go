package msrp

// Serving-layer tests for the context plumbing (QueryBatchContext /
// WarmContext), the warm single-flight, the ErrNotSource sentinel,
// LRU edge cases, and cross-batch scratch reuse. The cancellation
// acceptance test lives here: a batch cancelled mid-flight must
// return promptly and leave the oracle bit-identical to one that was
// never cancelled.

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"msrp/internal/naive"
	"msrp/internal/rp"
)

// batchFor builds one well-formed query per source: the first canonical
// path edge toward the lowest reachable target at distance >= 1.
func batchFor(t *testing.T, ref *Oracle, sources []int, n int) []Query {
	t.Helper()
	var queries []Query
	for _, s := range sources {
		res := ref.Result(s)
		if res == nil {
			t.Fatalf("Result(%d) = nil", s)
		}
		for target := 0; target < n; target++ {
			path := res.PathTo(target)
			if len(path) < 2 {
				continue
			}
			queries = append(queries, Query{
				Source: s, Target: target,
				U: int(path[0]), V: int(path[1]),
			})
			break
		}
	}
	if len(queries) != len(sources) {
		t.Fatalf("built %d queries for %d sources", len(queries), len(sources))
	}
	return queries
}

// sameAnswers asserts two answer slices are bit-identical (lengths and
// error-ness).
func sameAnswers(t *testing.T, got, want []Answer, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d answers, want %d", label, len(got), len(want))
	}
	for i := range got {
		if (got[i].Err != nil) != (want[i].Err != nil) {
			t.Fatalf("%s: answer %d err = %v, want %v", label, i, got[i].Err, want[i].Err)
		}
		if got[i].Length != want[i].Length {
			t.Fatalf("%s: answer %d length = %d, want %d", label, i, got[i].Length, want[i].Length)
		}
	}
}

// TestQueryBatchContextCancelledMidBatch is the acceptance test: a
// batch cancelled after its first per-source build returns promptly —
// a strict prefix of the builds ran, not the full batch — and the
// oracle afterwards answers bit-identically to one never cancelled.
func TestQueryBatchContextCancelledMidBatch(t *testing.T) {
	const n = 240
	g := GenerateRandomConnected(55, n, 720)
	sources := make([]int, 12)
	for i := range sources {
		sources[i] = i * (n / len(sources))
	}
	opts := testOptions(56)
	opts.Parallelism = 1 // sequential outer fan-out: cancellation is observed between builds
	opts.MaxCachedSources = 4

	ref, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	queries := batchFor(t, ref, sources, n)
	want := ref.QueryBatch(queries)

	oracle, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		for oracle.Stats().Builds == 0 {
			runtime.Gosched()
		}
		cancel()
	}()
	answers, err := oracle.QueryBatchContext(ctx, queries)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch: err = %v, want context.Canceled", err)
	}
	if answers != nil {
		t.Fatalf("cancelled batch returned %d answers", len(answers))
	}
	if builds := oracle.Stats().Builds; builds >= int64(len(sources)) {
		t.Fatalf("cancelled batch ran all %d builds — cancellation not observed between items", builds)
	}
	if got := oracle.Stats().Cancellations; got < 1 {
		t.Fatalf("Cancellations = %d, want >= 1", got)
	}
	if got := oracle.CachedSources(); got > opts.MaxCachedSources {
		t.Fatalf("cache holds %d sources after cancel, bound %d", got, opts.MaxCachedSources)
	}

	// The same oracle must now serve the full batch bit-identically to
	// the never-cancelled reference.
	got, err := oracle.QueryBatchContext(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	sameAnswers(t, got, want, "after cancel")
}

// TestQueryBatchContextPreCancelled: a context dead on arrival runs
// nothing and is counted.
func TestQueryBatchContextPreCancelled(t *testing.T) {
	g := GenerateRandomConnected(57, 40, 100)
	oracle, err := NewOracle(g, []int{0, 20}, testOptions(58))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	answers, err := oracle.QueryBatchContext(ctx, []Query{{Source: 0, Target: 20, U: 0, V: 1}})
	if !errors.Is(err, context.Canceled) || answers != nil {
		t.Fatalf("pre-cancelled batch: answers=%v err=%v", answers, err)
	}
	s := oracle.Stats()
	if s.Builds != 0 || s.Cancellations != 1 {
		t.Fatalf("pre-cancelled batch stats: %+v", s)
	}
}

// TestWarmContextPreCancelled: nothing from a cancelled warm enters the
// cache and the success counter stays put.
func TestWarmContextPreCancelled(t *testing.T) {
	g := GenerateRandomConnected(59, 40, 100)
	oracle, err := NewOracle(g, []int{0, 20}, testOptions(60))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := oracle.WarmContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s := oracle.Stats(); s.Warms != 0 || s.Cancellations != 1 {
		t.Fatalf("stats after cancelled warm: %+v", s)
	}
	if got := oracle.CachedSources(); got != 0 {
		t.Fatalf("cancelled warm cached %d sources", got)
	}
}

// TestWarmContextCancelMidRun cancels while the §8 pipeline runs. The
// race can land either way; both outcomes must leave the oracle
// consistent: a cancelled warm caches nothing and counts no Warm, and
// a subsequent uncancelled Warm succeeds with exact answers.
func TestWarmContextCancelMidRun(t *testing.T) {
	const n = 200
	g := GenerateRandomConnected(61, n, 600)
	sources := []int{0, 40, 80, 120, 160}
	oracle, err := NewOracle(g, sources, testOptions(62))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go cancel() // lands somewhere inside the pipeline (or before it)
	err = oracle.WarmContext(ctx)
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if s := oracle.Stats(); s.Warms != 0 {
			t.Fatalf("cancelled warm counted: %+v", s)
		}
		if got := oracle.CachedSources(); got != 0 {
			t.Fatalf("cancelled warm cached %d sources", got)
		}
	}
	if err := oracle.Warm(); err != nil {
		t.Fatal(err)
	}
	for _, s := range sources {
		wantRes := naive.SSRP(g.Internal(), int32(s))
		if d := rp.Diff(wantRes, resultOf(oracle.Result(s))); d != "" {
			t.Fatalf("source %d after cancel-then-warm: %s", s, d)
		}
	}
}

// TestWarmSingleFlight: concurrent Warms run the σn² pipeline once.
// Regression: the check-then-act race let two concurrent Warms both
// run the full pipeline (and the counter ticked even on error paths).
func TestWarmSingleFlight(t *testing.T) {
	g := GenerateRandomConnected(63, 80, 240)
	sources := []int{0, 20, 40, 60}
	opts := testOptions(64) // unbounded cache: after one warm, all sources stay resident
	oracle, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := oracle.Warm(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	// Concurrent callers joined one in-flight run; later callers saw a
	// fully-cached oracle. Either way, exactly one pipeline ran.
	if got := oracle.Stats().Warms; got != 1 {
		t.Fatalf("Warms = %d after 8 concurrent calls, want 1 (single-flight)", got)
	}
	if got := oracle.CachedSources(); got != len(sources) {
		t.Fatalf("cached %d sources, want %d", got, len(sources))
	}
}

// TestWarmRepeatNoOp: once a warm pipeline has completed, further
// Warms are no-ops even when the LRU bound keeps the cache below σ —
// re-running would only churn hot entries out for results the bound
// evicts again.
func TestWarmRepeatNoOp(t *testing.T) {
	g := GenerateRandomConnected(75, 60, 180)
	sources := []int{0, 15, 30, 45}
	opts := testOptions(76)
	opts.MaxCachedSources = 2 // < len(sources): the cache can never look "all warmed"
	oracle, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := oracle.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := oracle.Stats().Warms; got != 1 {
		t.Fatalf("Warms = %d, want 1", got)
	}
	evictions := oracle.Stats().Evictions
	for i := 0; i < 3; i++ {
		if err := oracle.Warm(); err != nil {
			t.Fatal(err)
		}
	}
	if s := oracle.Stats(); s.Warms != 1 || s.Evictions != evictions {
		t.Fatalf("repeat Warm re-ran the pipeline: %+v (want warms=1, evictions=%d)", s, evictions)
	}
}

// TestErrNotSourceSentinel: every "not an oracle source" surface wraps
// the sentinel so callers use errors.Is, not string matching.
func TestErrNotSourceSentinel(t *testing.T) {
	g := GenerateRandomConnected(65, 30, 80)
	oracle, err := NewOracle(g, []int{0, 15}, testOptions(66))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.Query(7, 0, 0, 1); !errors.Is(err, ErrNotSource) {
		t.Fatalf("Query: err = %v, want ErrNotSource", err)
	}
	answers := oracle.QueryBatch([]Query{
		{Source: 7, Target: 0, U: 0, V: 1},
		{Source: 0, Target: 15, U: 0, V: 1},
	})
	if !errors.Is(answers[0].Err, ErrNotSource) {
		t.Fatalf("QueryBatch: err = %v, want ErrNotSource", answers[0].Err)
	}
	if errors.Is(answers[1].Err, ErrNotSource) {
		t.Fatalf("valid-source answer wrongly tagged: %v", answers[1].Err)
	}
	if res := oracle.Result(7); res != nil {
		t.Fatal("Result on a non-source returned a result")
	}
	// The message still carries the offending id for humans.
	if _, err := oracle.Query(7, 0, 0, 1); err == nil || !errors.Is(err, ErrNotSource) {
		t.Fatalf("err = %v", err)
	}
}

// TestOracleLRUSingleSlotChurn: MaxCachedSources = 1 under round-robin
// insert/evict churn stays exact, bounded, and counts every eviction.
func TestOracleLRUSingleSlotChurn(t *testing.T) {
	g := GenerateRandomConnected(67, 50, 150)
	sources := []int{0, 10, 20, 30}
	opts := testOptions(68)
	opts.MaxCachedSources = 1
	oracle, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 3
	for r := 0; r < rounds; r++ {
		for _, s := range sources {
			res := oracle.Result(s)
			if res == nil {
				t.Fatalf("Result(%d) = nil", s)
			}
			if got := oracle.CachedSources(); got != 1 {
				t.Fatalf("cache holds %d sources, want exactly 1", got)
			}
			wantRes := naive.SSRP(g.Internal(), int32(s))
			if d := rp.Diff(wantRes, resultOf(res)); d != "" {
				t.Fatalf("round %d source %d: %s", r, s, d)
			}
		}
	}
	s := oracle.Stats()
	wantBuilds := int64(rounds * len(sources)) // every touch evicts the previous source
	if s.Builds != wantBuilds || s.Evictions != wantBuilds-1 || s.Hits != 0 {
		t.Fatalf("churn stats: %+v (want builds=%d evictions=%d hits=0)", s, wantBuilds, wantBuilds-1)
	}
}

// TestOracleLRUTailTouch: touching the tail entry must move it off the
// eviction seat — the next insert evicts the other entry, and the
// touched source stays served from cache.
func TestOracleLRUTailTouch(t *testing.T) {
	g := GenerateRandomConnected(69, 50, 150)
	a, b, c := 0, 10, 20
	opts := testOptions(70)
	opts.MaxCachedSources = 2
	oracle, err := NewOracle(g, []int{a, b, c}, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle.Result(a) // cache: [a]
	oracle.Result(b) // cache: [b, a] — a is the tail
	oracle.Result(a) // touch the tail: [a, b]
	if s := oracle.Stats(); s.Builds != 2 || s.Hits != 1 {
		t.Fatalf("after tail touch: %+v", s)
	}
	oracle.Result(c) // evicts b (the tail now), not a
	if s := oracle.Stats(); s.Builds != 3 || s.Evictions != 1 {
		t.Fatalf("after insert over full cache: %+v", s)
	}
	oracle.Result(a) // must still be a hit
	if s := oracle.Stats(); s.Builds != 3 || s.Hits != 2 {
		t.Fatalf("tail-touched source was evicted: %+v", s)
	}
	oracle.Result(b) // b was the eviction victim: rebuild
	if s := oracle.Stats(); s.Builds != 4 {
		t.Fatalf("victim not rebuilt: %+v", s)
	}
}

// TestOracleLRUEvictionRacesInflightBuild: a tight LRU thrashing under
// concurrent callers — evictions race in-flight single-flight builds —
// must stay bounded and exact (run under -race in CI).
func TestOracleLRUEvictionRacesInflightBuild(t *testing.T) {
	g := GenerateRandomConnected(71, 60, 180)
	sources := []int{0, 10, 20, 30, 40, 50}
	opts := testOptions(72)
	opts.MaxCachedSources = 1
	oracle, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 3; r++ {
				for i := range sources {
					s := sources[(i+w)%len(sources)] // offset walks: constant cross-eviction
					if oracle.Result(s) == nil {
						t.Errorf("Result(%d) = nil", s)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := oracle.CachedSources(); got > 1 {
		t.Fatalf("cache holds %d sources, bound 1", got)
	}
	for _, s := range sources {
		wantRes := naive.SSRP(g.Internal(), int32(s))
		if d := rp.Diff(wantRes, resultOf(oracle.Result(s))); d != "" {
			t.Fatalf("source %d after eviction race: %s", s, d)
		}
	}
}

// TestQueryBatchScratchReuse: the per-batch inner pool is gone —
// batched lazy builds run on one long-lived sequential pool whose
// free list carries build scratch from batch to batch. Regression:
// QueryBatch allocated engine.New(1) per batch, so every batched
// build regrew its scratch from nothing.
func TestQueryBatchScratchReuse(t *testing.T) {
	const n = 60
	g := GenerateRandomConnected(73, n, 180)
	sources := []int{0, 20, 40}
	opts := testOptions(74)
	opts.Parallelism = 1      // deterministic: exactly one worker, one scratch
	opts.MaxCachedSources = 1 // every batch rebuilds every source (maximum churn)
	oracle, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewOracle(g, sources, testOptions(74))
	if err != nil {
		t.Fatal(err)
	}
	queries := batchFor(t, ref, sources, n)

	// Two warm-up batches grow the inner pool's arena to steady state.
	oracle.QueryBatch(queries)
	oracle.QueryBatch(queries)
	allocs, bytes := oracle.seq.ScratchAllocs(), oracle.seq.ScratchBytes()
	if allocs != 1 {
		t.Fatalf("inner pool allocated %d scratches with Parallelism=1, want 1", allocs)
	}
	if bytes == 0 {
		t.Fatal("inner pool arena empty after builds — builds are not using it")
	}
	for i := 0; i < 5; i++ {
		oracle.QueryBatch(queries)
	}
	if got := oracle.seq.ScratchAllocs(); got != allocs {
		t.Fatalf("scratch allocations grew %d → %d across batches; inner pool not reused", allocs, got)
	}
	if got := oracle.seq.ScratchBytes(); got != bytes {
		t.Fatalf("scratch footprint changed %d → %d bytes across identical batches", bytes, got)
	}
}
