package msrp

// Cross-cutting seed sweep: the whole public pipeline (multi-source,
// varying σ, both assembly modes) against the brute-force oracle over
// many independently seeded instances. This is the in-repo version of
// cmd/msrp-verify, kept small enough for CI.

import (
	"testing"

	"msrp/internal/graph"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

func TestFuzzSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep runs dozens of full solves")
	}
	const trials = 24
	rng := xrand.New(20200519)
	for trial := 0; trial < trials; trial++ {
		n := 24 + rng.Intn(56)
		m := n + rng.Intn(3*n)
		g := graph.RandomConnected(rng, n, m)
		sigma := 1 + rng.Intn(3)
		seen := map[int32]bool{}
		var sources []int32
		for len(sources) < sigma {
			s := int32(rng.Intn(n))
			if !seen[s] {
				seen[s] = true
				sources = append(sources, s)
			}
		}
		p := ssrp.DefaultParams()
		p.Seed = rng.Uint64()
		p.SampleBoost = 12
		p.SuffixScale = 0.25
		p.PaperBottleneck = trial%2 == 1 // alternate assembly modes
		results, _, err := msrpcore.Solve(g, sources, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, s := range sources {
			want := naive.SSRP(g, s)
			if d := rp.Diff(want, results[i]); d != "" {
				t.Fatalf("trial %d (n=%d m=%d σ=%d mode=%v) source %d: %s",
					trial, n, m, sigma, p.PaperBottleneck, s, d)
			}
		}
	}
}
