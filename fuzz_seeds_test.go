package msrp

// Cross-cutting randomized coverage, two tiers:
//
//   - TestFuzzSeedSweep: the whole public pipeline (multi-source,
//     varying σ, both assembly modes) against the brute-force oracle
//     over many independently seeded instances — the in-repo version
//     of cmd/msrp-verify, kept small enough for CI.
//   - FuzzOracleQuery: a native `go test -fuzz` target that decodes
//     arbitrary bytes into a graph plus a query tuple and asserts the
//     Oracle's soundness invariants against the brute force. CI runs a
//     short -fuzz smoke on every push; run it longer locally with
//     `go test -fuzz=FuzzOracleQuery -fuzztime=5m .`
//
// Soundness — unlike w.h.p. exactness — must hold on every input, so
// the fuzz target is the right tool for hunting the corner cases the
// seeded sweeps would only hit by luck.

import (
	"testing"

	"msrp/internal/graph"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

func TestFuzzSeedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep runs dozens of full solves")
	}
	const trials = 24
	rng := xrand.New(20200519)
	for trial := 0; trial < trials; trial++ {
		n := 24 + rng.Intn(56)
		m := n + rng.Intn(3*n)
		g := graph.RandomConnected(rng, n, m)
		sigma := 1 + rng.Intn(3)
		seen := map[int32]bool{}
		var sources []int32
		for len(sources) < sigma {
			s := int32(rng.Intn(n))
			if !seen[s] {
				seen[s] = true
				sources = append(sources, s)
			}
		}
		p := ssrp.DefaultParams()
		p.Seed = rng.Uint64()
		p.SampleBoost = 12
		p.SuffixScale = 0.25
		p.PaperBottleneck = trial%2 == 1 // alternate assembly modes
		sol, err := msrpcore.Solve(g, sources, p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i, s := range sources {
			want := naive.SSRP(g, s)
			if d := rp.Diff(want, sol.Results[i]); d != "" {
				t.Fatalf("trial %d (n=%d m=%d σ=%d mode=%v) source %d: %s",
					trial, n, m, sigma, p.PaperBottleneck, s, d)
			}
		}
	}
}

// graphFromFuzzBytes deterministically decodes fuzz bytes into a small
// simple graph: the first byte picks n ∈ [4, 16], each following byte
// pair proposes an edge (self-loops and duplicates skipped). Returns
// nil when no edge survives.
func graphFromFuzzBytes(data []byte) *graph.Graph {
	if len(data) < 3 {
		return nil
	}
	n := 4 + int(data[0]%13)
	b := graph.NewBuilder(n)
	seen := make(map[[2]int]bool)
	edges := 0
	for i := 1; i+1 < len(data) && edges < 4*n; i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		if err := b.AddEdge(u, v); err != nil {
			return nil
		}
		edges++
	}
	if edges == 0 {
		return nil
	}
	g, err := b.Build()
	if err != nil {
		return nil
	}
	return g
}

// FuzzOracleQuery fuzzes graph bytes plus a (source, target, edge,
// seed) tuple through the batched Oracle and asserts the soundness
// invariants that must hold on EVERY input, independent of the w.h.p.
// analysis:
//
//   - a reported length is at least the original distance (removing an
//     edge cannot shorten a shortest path);
//   - a reported length is achievable, i.e. at least the brute-force
//     optimum for the same (s, t, e);
//   - NoPath is reported iff the brute force also finds no path.
//
// Every query also requests the concrete path (the oracle runs with
// TrackPaths) and asserts the path/length invariant: the answer's path
// is a real walk in G−e from s to t with exactly Length edges — the
// reconstruction is a certificate, never a guess — and NoPath answers
// carry no path.
func FuzzOracleQuery(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0}, uint8(0), uint8(2), uint8(0), uint64(1))
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3}, uint8(0), uint8(3), uint8(1), uint64(7)) // path: bridges
	f.Add([]byte{12, 0, 1, 0, 2, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 2, 6}, uint8(1), uint8(6), uint8(2), uint64(3))
	f.Fuzz(func(t *testing.T, data []byte, sByte, tgtByte, eiByte uint8, seed uint64) {
		ig := graphFromFuzzBytes(data)
		if ig == nil {
			t.Skip()
		}
		n := ig.NumVertices()
		s := int(sByte) % n

		opts := testOptions(seed)
		opts.TrackPaths = true
		oracle, err := NewOracle(WrapGraph(ig), []int{s}, opts)
		if err != nil {
			t.Fatalf("oracle construction failed on a valid graph: %v", err)
		}
		res := oracle.Result(s)
		if res == nil {
			t.Fatal("Result(source) returned nil")
		}
		target := int(tgtByte) % n
		path := res.PathTo(target)
		if len(path) < 2 {
			t.Skip() // target unreachable or equal to source
		}
		i := int(eiByte) % (len(path) - 1)
		u, v := int(path[i]), int(path[i+1])

		answers := oracle.QueryBatch([]Query{{Source: s, Target: target, U: u, V: v, Paths: true}})
		if answers[0].Err != nil {
			t.Fatalf("on-path query rejected: %v", answers[0].Err)
		}
		got := answers[0].Length

		e, ok := ig.EdgeID(int(path[i]), int(path[i+1]))
		if !ok {
			t.Fatalf("canonical path edge {%d,%d} missing from graph", u, v)
		}
		want := naive.OnePair(ig, int32(s), int32(target), e)

		if got == NoPath {
			if answers[0].Path != nil {
				t.Fatalf("d(%d,%d,{%d,%d}): NoPath answer carries a path", s, target, u, v)
			}
			if want != rp.Inf {
				t.Fatalf("d(%d,%d,{%d,%d}): reported NoPath, brute force found %d",
					s, target, u, v, want)
			}
			return
		}
		if err := rp.CheckReplacementPath(ig, answers[0].Path, int32(s), int32(target), e, got); err != nil {
			t.Fatalf("d(%d,%d,{%d,%d}): path/length invariant violated: %v", s, target, u, v, err)
		}
		if want == rp.Inf {
			t.Fatalf("d(%d,%d,{%d,%d}): reported %d, but no replacement path exists",
				s, target, u, v, got)
		}
		if int(got) < res.Dist(target) {
			t.Fatalf("d(%d,%d,{%d,%d}): reported %d below original distance %d",
				s, target, u, v, got, res.Dist(target))
		}
		if got < want {
			t.Fatalf("d(%d,%d,{%d,%d}): reported %d below brute-force optimum %d (unachievable)",
				s, target, u, v, got, want)
		}
	})
}
