// Oracle-serve: the batched replacement-path Oracle under concurrent
// load. Several client goroutines fire QueryBatch calls at one shared
// Oracle; the Oracle materializes each source lazily (exactly once,
// across all clients, via single-flight), keeps only a bounded LRU of
// per-source results, and stays deterministic — every client sees the
// same answers, which the demo cross-checks against a brute-force BFS.
//
//	go run ./examples/oracle-serve
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"msrp"
)

const (
	numVertices = 600
	numEdges    = 2400
	numSources  = 12
	numClients  = 8
	batchSize   = 64
	rounds      = 25
)

func main() {
	g := msrp.GenerateRandomConnected(42, numVertices, numEdges)

	sources := make([]int, numSources)
	for i := range sources {
		sources[i] = i * (numVertices / numSources)
	}

	opts := msrp.DefaultOptions()
	opts.SampleBoost = 8 // near-certain exactness at demo sizes
	opts.Parallelism = 0 // engine-wide: as parallel as the hardware allows
	// Keep at most half the sources materialized: evicted sources are
	// rebuilt on demand with identical answers, trading memory for time.
	opts.MaxCachedSources = numSources / 2

	oracle, err := msrp.NewOracle(g, sources, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Each client walks its own slice of the query space: canonical
	// paths from a source to a spread of targets, avoiding each path
	// edge in turn.
	queriesFor := func(client int) []msrp.Query {
		var queries []msrp.Query
		s := sources[client%numSources]
		res := oracle.Result(s) // also demonstrates lazy materialization
		for t := (client * 37) % numVertices; len(queries) < batchSize; t = (t + 13) % numVertices {
			path := res.PathTo(t)
			for i := 0; i+1 < len(path) && len(queries) < batchSize; i++ {
				queries = append(queries, msrp.Query{
					Source: s, Target: t,
					U: int(path[i]), V: int(path[i+1]),
				})
			}
		}
		return queries
	}

	fmt.Printf("oracle over %d sources on |V|=%d |E|=%d, LRU bound %d\n",
		numSources, g.NumVertices(), g.NumEdges(), opts.MaxCachedSources)

	start := time.Now()
	var wg sync.WaitGroup
	var served int64
	var mu sync.Mutex
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			queries := queriesFor(client)
			for round := 0; round < rounds; round++ {
				answers := oracle.QueryBatch(queries)
				for i, a := range answers {
					if a.Err != nil {
						log.Fatalf("client %d query %d: %v", client, i, a.Err)
					}
				}
				mu.Lock()
				served += int64(len(answers))
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("%d clients served %d batched queries in %v (%.0f q/s)\n",
		numClients, served, elapsed.Round(time.Millisecond),
		float64(served)/elapsed.Seconds())
	fmt.Printf("materialized sources resident: %d (bound %d)\n",
		oracle.CachedSources(), opts.MaxCachedSources)

	// Cross-check a sample against the brute-force answer: delete the
	// avoided edge and rerun the shortest-path computation from scratch.
	sample := queriesFor(3)[:8]
	answers := oracle.QueryBatch(sample)
	fmt.Println("\nspot checks vs brute force:")
	for i, q := range sample {
		want := bruteForce(g, q)
		status := "ok"
		if answers[i].Length != want {
			status = fmt.Sprintf("MISMATCH (brute force says %s)", fmtLen(want))
		}
		fmt.Printf("  d(%d, %d, {%d,%d}) = %s  %s\n",
			q.Source, q.Target, q.U, q.V, fmtLen(answers[i].Length), status)
	}
}

// bruteForce BFSes from q.Source with the avoided edge removed.
func bruteForce(g *msrp.Graph, q msrp.Query) int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[q.Source] = 0
	queue := []int{q.Source}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for w := 0; w < n; w++ {
			if dist[w] >= 0 || !g.HasEdge(v, w) {
				continue
			}
			if (v == q.U && w == q.V) || (v == q.V && w == q.U) {
				continue
			}
			dist[w] = dist[v] + 1
			queue = append(queue, w)
		}
	}
	if dist[q.Target] < 0 {
		return msrp.NoPath
	}
	return dist[q.Target]
}

func fmtLen(l int32) string {
	if l == msrp.NoPath {
		return "inf"
	}
	return fmt.Sprintf("%d", l)
}
