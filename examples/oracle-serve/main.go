// Oracle-serve: the replacement-path Oracle behind its HTTP front-end
// (internal/server) under concurrent load. The demo starts the same
// handler cmd/msrp-serve exposes on an in-process listener, then fires
// several HTTP clients at the JSON batch endpoint. The Oracle
// materializes each source lazily (exactly once across all clients,
// via single-flight), keeps only a bounded LRU of per-source results,
// and stays deterministic — every client sees the same answers, which
// the demo cross-checks against a brute-force BFS. At the end it
// scrapes /v1/stats, the same snapshot a metrics collector would.
//
//	go run ./examples/oracle-serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"msrp"
	"msrp/internal/server"
)

const (
	numVertices = 600
	numEdges    = 2400
	numSources  = 12
	numClients  = 8
	batchSize   = 64
	rounds      = 25
)

func main() {
	g := msrp.GenerateRandomConnected(42, numVertices, numEdges)

	sources := make([]int, numSources)
	for i := range sources {
		sources[i] = i * (numVertices / numSources)
	}

	opts := msrp.DefaultOptions()
	opts.SampleBoost = 8 // near-certain exactness at demo sizes
	opts.Parallelism = 0 // engine-wide: as parallel as the hardware allows
	// Keep at most half the sources materialized: evicted sources are
	// rebuilt on demand with identical answers, trading memory for time.
	opts.MaxCachedSources = numSources / 2

	oracle, err := msrp.NewOracle(g, sources, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The HTTP face: same handler as `msrp-serve`, on a loopback
	// listener. Admission control derives its in-flight budget from the
	// LRU bound (2×MaxCachedSources); over-budget requests get 429.
	ts := httptest.NewServer(server.New(oracle, server.Config{}))
	defer ts.Close()

	// Each client walks its own slice of the query space: canonical
	// paths from a source to a spread of targets, avoiding each path
	// edge in turn.
	queriesFor := func(client int) []server.QueryItem {
		var queries []server.QueryItem
		s := sources[client%numSources]
		res := oracle.Result(s) // also demonstrates lazy materialization
		for t := (client * 37) % numVertices; len(queries) < batchSize; t = (t + 13) % numVertices {
			path := res.PathTo(t)
			for i := 0; i+1 < len(path) && len(queries) < batchSize; i++ {
				queries = append(queries, server.QueryItem{
					Source: s, Target: t,
					U: int(path[i]), V: int(path[i+1]),
				})
			}
		}
		return queries
	}

	// postBatch drives POST /v1/query exactly as a remote client would;
	// a 429 is retried after the server-advertised backoff.
	postBatch := func(queries []server.QueryItem) server.QueryResponse {
		body, err := json.Marshal(server.QueryRequest{Queries: queries})
		if err != nil {
			log.Fatal(err)
		}
		for {
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				log.Fatal(err)
			}
			if resp.StatusCode == http.StatusTooManyRequests {
				resp.Body.Close()
				time.Sleep(50 * time.Millisecond) // demo-sized Retry-After
				continue
			}
			if resp.StatusCode != http.StatusOK {
				log.Fatalf("POST /v1/query: %s", resp.Status)
			}
			var out server.QueryResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				log.Fatal(err)
			}
			resp.Body.Close()
			return out
		}
	}

	fmt.Printf("oracle over %d sources on |V|=%d |E|=%d, LRU bound %d, serving at %s\n",
		numSources, g.NumVertices(), g.NumEdges(), opts.MaxCachedSources, ts.URL)

	start := time.Now()
	var wg sync.WaitGroup
	var served atomic.Int64
	for c := 0; c < numClients; c++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			queries := queriesFor(client)
			for round := 0; round < rounds; round++ {
				resp := postBatch(queries)
				for i, a := range resp.Answers {
					if a.Error != "" {
						log.Fatalf("client %d query %d: %s", client, i, a.Error)
					}
				}
				served.Add(int64(len(resp.Answers)))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("%d HTTP clients served %d batched queries in %v (%.0f q/s)\n",
		numClients, served.Load(), elapsed.Round(time.Millisecond),
		float64(served.Load())/elapsed.Seconds())

	// Cross-check a sample against the brute-force answer: delete the
	// avoided edge and rerun the shortest-path computation from scratch.
	sample := queriesFor(3)[:8]
	answers := postBatch(sample).Answers
	fmt.Println("\nspot checks vs brute force:")
	for i, q := range sample {
		want := bruteForce(g, q)
		got := answers[i].Length
		if answers[i].NoPath {
			got = msrp.NoPath
		}
		status := "ok"
		if got != want {
			status = fmt.Sprintf("MISMATCH (brute force says %s)", fmtLen(want))
		}
		fmt.Printf("  d(%d, %d, {%d,%d}) = %s  %s\n",
			q.Source, q.Target, q.U, q.V, fmtLen(got), status)
	}

	// The same snapshot a metrics scraper would take.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats server.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/v1/stats: hitRate=%.3f builds=%d evictions=%d batches=%d rejections=%d cached=%d/%d\n",
		stats.HitRate, stats.Builds, stats.Evictions, stats.Batches,
		stats.Rejections, stats.CachedSources, stats.MaxCachedSources)
}

// bruteForce BFSes from q.Source with the avoided edge removed.
func bruteForce(g *msrp.Graph, q server.QueryItem) int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[q.Source] = 0
	queue := []int{q.Source}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for w := 0; w < n; w++ {
			if dist[w] >= 0 || !g.HasEdge(v, w) {
				continue
			}
			if (v == q.U && w == q.V) || (v == q.V && w == q.U) {
				continue
			}
			dist[w] = dist[v] + 1
			queue = append(queue, w)
		}
	}
	if dist[q.Target] < 0 {
		return msrp.NoPath
	}
	return dist[q.Target]
}

func fmtLen(l int32) string {
	if l == msrp.NoPath {
		return "inf"
	}
	return fmt.Sprintf("%d", l)
}
