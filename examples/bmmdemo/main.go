// BMM demo: Boolean matrix multiplication through the paper's
// Theorem 28 reduction — the construction behind the conditional lower
// bound Ω(m√(nσ)) for MSRP.
//
// The demo multiplies two random Boolean matrices twice: directly with
// the combinatorial word-packed algorithm, and via ⌈√(n/σ)⌉ gadget
// graphs solved by the MSRP algorithm, then verifies the two products
// agree. (The reduction is a complexity-theoretic equivalence, not a
// fast multiplier: the direct product wins by orders of magnitude, and
// that is the point — a fast-enough MSRP would imply a fast BMM.)
//
//	go run ./examples/bmmdemo
package main

import (
	"fmt"
	"log"
	"time"

	"msrp/internal/bmm"
	"msrp/internal/msrp"
	"msrp/internal/xrand"
)

func main() {
	const n, density, sigma = 32, 0.15, 2

	p := msrp.DefaultParams()
	p.SampleBoost = 8
	p.SuffixScale = 0.5

	rng := xrand.New(20200519) // the paper's arXiv date
	a := bmm.Random(rng, n, density)
	b := bmm.Random(rng, n, density)
	fmt.Printf("A, B: %d×%d Boolean matrices, %d and %d ones\n", n, n, a.Ones(), b.Ones())

	start := time.Now()
	direct, err := bmm.Multiply(a, b)
	if err != nil {
		log.Fatal(err)
	}
	tDirect := time.Since(start)

	start = time.Now()
	viaMSRP, stats, err := bmm.MultiplyViaMSRP(a, b, sigma, p)
	if err != nil {
		log.Fatal(err)
	}
	tReduce := time.Since(start)

	fmt.Printf("gadgets: %d graphs, chain length q=%d, %d rows per graph\n",
		stats.NumGraphs, stats.ChainLen, stats.RowsPerGraph)
	fmt.Printf("         %d total gadget vertices, %d edges, %d MSRP answers consumed\n",
		stats.GadgetVerts, stats.GadgetEdges, stats.MSRPQueries)
	fmt.Printf("direct combinatorial product: %v\n", tDirect)
	fmt.Printf("product via MSRP reduction:   %v\n", tReduce)

	if bmm.Equal(direct, viaMSRP) {
		fmt.Printf("products AGREE: %d ones in C = A×B\n", direct.Ones())
	} else {
		log.Fatal("products DISAGREE — reduction bug")
	}
}
