// Vickrey pricing of network links — the application that motivated
// replacement paths in the first place (Nisan–Ronen; Hershberger–Suri,
// both cited in the paper's introduction).
//
// Setting: each edge of a routing network is owned by a selfish agent.
// A VCG auction for carrying traffic from s to t pays the owner of each
// edge e on the winning (shortest) path its *marginal value*:
//
//	payment(e) = d(s,t ⋄ e) − (d(s,t) − 1)
//
// i.e. how much the network would lose if e defected. Computing all
// payments needs exactly the replacement path lengths this library
// produces in one shot.
//
//	go run ./examples/vickrey
package main

import (
	"fmt"
	"log"
	"sort"

	"msrp"
)

func main() {
	// A 12×18 grid "road network": every interior link has parallel
	// detours, so payments stay small — except where the route is
	// forced.
	const rows, cols = 12, 18
	g := msrp.GenerateGrid(rows, cols)
	source := 0             // depot at the north-west corner
	target := rows*cols - 1 // customer at the south-east corner

	opts := msrp.DefaultOptions()
	opts.SampleBoost = 6 // small network: make the w.h.p. guarantee near-certain
	res, err := msrp.SingleSource(g, source, opts)
	if err != nil {
		log.Fatal(err)
	}

	path := res.PathTo(target)
	base := res.Dist(target)
	fmt.Printf("shortest %d→%d route: %d hops\n", source, target, base)

	type priced struct {
		u, v    int32
		payment int32
	}
	var payments []priced
	for i, l := range res.Lengths(target) {
		u, v := path[i], path[i+1]
		if l == msrp.NoPath {
			// A bridge owner could demand anything: flag it.
			fmt.Printf("  edge {%d,%d} is a BRIDGE — monopoly link, no finite price\n", u, v)
			continue
		}
		payments = append(payments, priced{u, v, l - (int32(base) - 1)})
	}
	sort.Slice(payments, func(i, j int) bool { return payments[i].payment > payments[j].payment })

	fmt.Println("Vickrey payments along the route (highest first):")
	for i, p := range payments {
		if i >= 8 {
			fmt.Printf("  ... and %d more edges at payment %d\n", len(payments)-i, p.payment)
			break
		}
		fmt.Printf("  edge {%3d,%3d}: payment %d (replacement detour %d vs %d)\n",
			p.u, p.v, p.payment, int32(base-1)+p.payment, base)
	}

	// Grid interior edges always have cheap parallel detours, so most
	// payments are 1 (the replacement is two hops longer... paying the
	// marginal hop). Try deleting columns to create expensive edges.
	total := int32(0)
	for _, p := range payments {
		total += p.payment
	}
	fmt.Printf("total payments: %d (vs %d true path cost — the VCG overpayment)\n", total, base)
}
