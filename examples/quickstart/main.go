// Quickstart: build a small graph, run the single-source replacement
// path solver, and inspect the answers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"msrp"
)

func main() {
	// A pentagon with one shortcut:
	//
	//	0 — 1 — 2
	//	|    \  |
	//	4 ———— 3
	b := msrp.NewGraphBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := msrp.SingleSource(g, 0, msrp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("replacement path lengths from source 0:")
	for t := 0; t < g.NumVertices(); t++ {
		if t == 0 {
			continue
		}
		path := res.PathTo(t)
		fmt.Printf("  target %d: shortest path %v (length %d)\n", t, path, res.Dist(t))
		for i, l := range res.Lengths(t) {
			u, v := path[i], path[i+1]
			if l == msrp.NoPath {
				fmt.Printf("    avoiding {%d,%d}: no replacement path\n", u, v)
			} else {
				fmt.Printf("    avoiding {%d,%d}: length %d\n", u, v, l)
			}
		}
	}

	// Single queries go through AvoidEdge.
	l, err := res.AvoidEdge(2, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nd(0, 2, {0,1}) = %d (the detour 0-4-3-2)\n", l)
}
