// Fault-tolerance scan: a multi-source "most vital edges" audit of a
// network, the σ-source scenario the paper's MSRP problem models.
//
// Setting: an operator runs σ ingress points (data centers). For every
// ingress s, every service t, and every link e on the s→t route, the
// replacement length d(s,t ⋄ e) says how much latency a failure of e
// would add — or that it would disconnect the pair (NoPath). One MSRP
// run answers all of it; this example aggregates the output into the
// operator's risk report.
//
//	go run ./examples/faultscan
package main

import (
	"fmt"
	"log"
	"sort"

	"msrp"
)

func main() {
	// A 260-vertex ring-and-chords backbone: high diameter, a few
	// express links — the topology where replacement paths are long
	// and the paper's far-edge machinery earns its keep.
	g := msrp.GenerateCycleWithChords(7, 260, 9)
	ingress := []int{0, 87, 173}

	opts := msrp.DefaultOptions()
	opts.SampleBoost = 8
	opts.SuffixScale = 0.5
	results, err := msrp.MultiSource(g, ingress, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate per-link worst-case stretch over all (ingress, target)
	// pairs whose route crosses the link.
	type linkKey struct{ u, v int32 }
	type linkStat struct {
		worstStretch int32
		pairs        int
		cuts         int // pairs this link disconnects
	}
	stats := make(map[linkKey]*linkStat)

	for _, res := range results {
		for t := 0; t < g.NumVertices(); t++ {
			lens := res.Lengths(t)
			if len(lens) == 0 {
				continue
			}
			path := res.PathTo(t)
			base := int32(res.Dist(t))
			for i, l := range lens {
				u, v := path[i], path[i+1]
				if u > v {
					u, v = v, u
				}
				st, ok := stats[linkKey{u, v}]
				if !ok {
					st = &linkStat{}
					stats[linkKey{u, v}] = st
				}
				st.pairs++
				if l == msrp.NoPath {
					st.cuts++
					continue
				}
				if stretch := l - base; stretch > st.worstStretch {
					st.worstStretch = stretch
				}
			}
		}
	}

	type ranked struct {
		k linkKey
		s *linkStat
	}
	var links []ranked
	for k, s := range stats {
		links = append(links, ranked{k, s})
	}
	sort.Slice(links, func(i, j int) bool {
		a, b := links[i], links[j]
		if a.s.cuts != b.s.cuts {
			return a.s.cuts > b.s.cuts
		}
		if a.s.worstStretch != b.s.worstStretch {
			return a.s.worstStretch > b.s.worstStretch
		}
		return a.s.pairs > b.s.pairs
	})

	fmt.Printf("scanned %d links carrying traffic for %d ingress points\n",
		len(links), len(ingress))
	fmt.Println("most vital links (by pairs cut, then worst added latency):")
	for i, l := range links {
		if i >= 10 {
			break
		}
		fmt.Printf("  {%3d,%3d}: on %4d routes, worst stretch +%d hops, disconnects %d pairs\n",
			l.k.u, l.k.v, l.s.pairs, l.s.worstStretch, l.s.cuts)
	}

	// Spot queries through the oracle interface.
	oracle, err := msrp.NewOracle(g, ingress, opts)
	if err != nil {
		log.Fatal(err)
	}
	res := oracle.Result(ingress[0])
	t := 130
	path := res.PathTo(t)
	if len(path) >= 2 {
		u, v := int(path[0]), int(path[1])
		l, err := oracle.Query(ingress[0], t, u, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nspot check: route %d→%d is %d hops; losing its first link {%d,%d} makes it %d\n",
			ingress[0], t, res.Dist(t), u, v, l)
	}
}
