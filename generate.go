package msrp

import (
	"msrp/internal/graph"
	"msrp/internal/xrand"
)

// Workload generators re-exported for examples, CLI tools, and
// downstream users who want ready-made graph families. All randomized
// generators are deterministic in the seed.

// GenerateGrid returns the rows×cols grid graph (vertex r*cols+c at
// row r, column c).
func GenerateGrid(rows, cols int) *Graph {
	return &Graph{g: graph.Grid(rows, cols)}
}

// GenerateCycle returns the cycle on n ≥ 3 vertices.
func GenerateCycle(n int) *Graph { return &Graph{g: graph.Cycle(n)} }

// GeneratePath returns the path graph on n vertices.
func GeneratePath(n int) *Graph { return &Graph{g: graph.Path(n)} }

// GenerateRandomConnected returns a connected random graph with n
// vertices and exactly m ≥ n−1 edges.
func GenerateRandomConnected(seed uint64, n, m int) *Graph {
	return &Graph{g: graph.RandomConnected(xrand.New(seed), n, m)}
}

// GenerateCycleWithChords returns an n-cycle plus `chords` uniformly
// random chords — the high-diameter family where the paper's far-edge
// machinery does the most work.
func GenerateCycleWithChords(seed uint64, n, chords int) *Graph {
	return &Graph{g: graph.CycleWithChords(xrand.New(seed), n, chords)}
}

// GeneratePathWithChords returns the n-path plus `chords` uniformly
// random chords — bridge edges at the ends exercise the NoPath cases
// while the chords keep interior replacement paths interesting.
func GeneratePathWithChords(seed uint64, n, chords int) *Graph {
	return &Graph{g: graph.PathWithChords(xrand.New(seed), n, chords)}
}

// GeneratePathStarMix returns the chorded path on pathN vertices whose
// head doubles as the hub of a star with `leaves` extra leaves. Sources
// placed deep on the path and on leaves see wildly different amounts of
// replacement-path work, making this the reference family for skewed
// parallel workloads (bench experiment E13).
func GeneratePathStarMix(seed uint64, pathN, chords, leaves int) *Graph {
	return &Graph{g: graph.PathStarMix(xrand.New(seed), pathN, chords, leaves)}
}

// GeneratePreferentialAttachment returns a Barabási–Albert style graph
// (heavy-tailed degrees), n vertices with k edges per arrival.
func GeneratePreferentialAttachment(seed uint64, n, k int) *Graph {
	return &Graph{g: graph.PreferentialAttachment(xrand.New(seed), n, k)}
}
