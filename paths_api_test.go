package msrp

// Public-API coverage of the provenance plane: the ErrPathsNotTracked
// contract, Oracle.QueryPath over both construction paths (lazy
// single-source builds and the Warm §8 pipeline), and the
// ProvenanceBytes gauge across LRU churn.

import (
	"errors"
	"testing"

	"msrp/internal/rp"
)

func trackedOptions(seed uint64) Options {
	o := testOptions(seed)
	o.TrackPaths = true
	return o
}

// checkAPIPath validates a public-API path against the reported length
// and the avoided edge.
func checkAPIPath(t *testing.T, g *Graph, path []int32, s, target, u, v int, want int32) {
	t.Helper()
	e, ok := g.g.EdgeID(u, v)
	if !ok {
		t.Fatalf("edge {%d,%d} missing", u, v)
	}
	if err := rp.CheckReplacementPath(g.g, path, int32(s), int32(target), e, want); err != nil {
		t.Fatalf("path s=%d t=%d avoid {%d,%d}: %v", s, target, u, v, err)
	}
}

func TestReplacementPathNotTracked(t *testing.T) {
	g := GenerateCycle(8)
	res, err := SingleSource(g, 0, testOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.ReplacementPath(3, 0); !errors.Is(err, ErrPathsNotTracked) {
		t.Fatalf("untracked SingleSource: err = %v, want ErrPathsNotTracked", err)
	}
	multi, err := MultiSource(g, []int{0, 4}, testOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi[0].ReplacementPath(3, 0); !errors.Is(err, ErrPathsNotTracked) {
		t.Fatalf("untracked MultiSource: err = %v, want ErrPathsNotTracked", err)
	}
	oracle, err := NewOracle(g, []int{0}, testOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oracle.QueryPath(0, 3, 0, 1); !errors.Is(err, ErrPathsNotTracked) {
		t.Fatalf("untracked QueryPath: err = %v, want ErrPathsNotTracked", err)
	}
	a := oracle.QueryBatch([]Query{{Source: 0, Target: 3, U: 0, V: 1, Paths: true}})
	if !errors.Is(a[0].Err, ErrPathsNotTracked) {
		t.Fatalf("untracked batch with Paths: err = %v, want ErrPathsNotTracked", a[0].Err)
	}
	if st := oracle.Stats(); st.ProvenanceBytes != 0 {
		t.Fatalf("untracked oracle reports ProvenanceBytes = %d", st.ProvenanceBytes)
	}
}

// TestOracleQueryPathLazyAndWarm exercises both materialization routes
// of a tracked oracle and validates every expanded path.
func TestOracleQueryPathLazyAndWarm(t *testing.T) {
	g := GenerateRandomConnected(11, 40, 90)
	sources := []int{0, 13, 26}
	for _, warm := range []bool{false, true} {
		oracle, err := NewOracle(g, sources, trackedOptions(6))
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			if err := oracle.Warm(); err != nil {
				t.Fatal(err)
			}
		}
		checked := 0
		for _, s := range sources {
			res := oracle.Result(s)
			for target := 0; target < g.NumVertices(); target++ {
				path := res.PathTo(target)
				for i := 0; i+1 < len(path); i++ {
					u, v := int(path[i]), int(path[i+1])
					length, err := oracle.Query(s, target, u, v)
					if err != nil {
						t.Fatal(err)
					}
					rpath, err := oracle.QueryPath(s, target, u, v)
					if err != nil {
						t.Fatalf("warm=%v QueryPath(%d,%d,%d,%d): %v", warm, s, target, u, v, err)
					}
					if length == NoPath {
						if rpath != nil {
							t.Fatalf("warm=%v: path for a NoPath answer", warm)
						}
						continue
					}
					checkAPIPath(t, g, rpath, s, target, u, v, length)
					checked++
				}
			}
		}
		if checked == 0 {
			t.Fatal("no paths checked")
		}
		if st := oracle.Stats(); st.ProvenanceBytes <= 0 {
			t.Fatalf("warm=%v: tracked oracle reports ProvenanceBytes = %d", warm, st.ProvenanceBytes)
		}
	}
}

// TestOracleProvenanceBytesFollowsLRU pins the gauge semantics: after
// an eviction the gauge drops back to exactly the surviving entry's
// footprint.
func TestOracleProvenanceBytesFollowsLRU(t *testing.T) {
	g := GenerateRandomConnected(12, 40, 90)
	opts := trackedOptions(7)
	opts.MaxCachedSources = 1
	oracle, err := NewOracle(g, []int{0, 20}, opts)
	if err != nil {
		t.Fatal(err)
	}
	r0 := oracle.Result(0)
	if got, want := oracle.Stats().ProvenanceBytes, r0.ProvenanceBytes(); got != want {
		t.Fatalf("after first build: gauge %d, cached entry holds %d", got, want)
	}
	r1 := oracle.Result(20) // evicts source 0
	if got := oracle.CachedSources(); got != 1 {
		t.Fatalf("CachedSources = %d, want 1", got)
	}
	if got, want := oracle.Stats().ProvenanceBytes, r1.ProvenanceBytes(); got != want {
		t.Fatalf("after eviction: gauge %d, surviving entry holds %d", got, want)
	}
	// The evicted result object keeps working: its provenance rides on
	// the Result, not the cache slot.
	path := r0.PathTo(20)
	if len(path) >= 2 {
		if _, err := r0.ReplacementPath(20, 0); err != nil {
			t.Fatalf("evicted result lost its provenance: %v", err)
		}
	}
}
