package msrp

// Oracle-specific regression tests for the serving-layer machinery:
// the Warm/lazy-build race, LRU bookkeeping under eviction pressure,
// and repeat-Warm determinism. The broader cross-checks live in
// crosscheck_test.go and determinism_test.go.

import (
	"sync"
	"testing"

	"msrp/internal/naive"
	"msrp/internal/rp"
)

// TestOracleWarmConcurrentWithLazyBuilds races Warm against lazy
// per-source builds on a tightly bounded LRU. Regression: a Warm
// landing while a lazy build was in flight used to insert a duplicate
// LRU entry for the same source, desynchronizing the cache map from
// the eviction list.
func TestOracleWarmConcurrentWithLazyBuilds(t *testing.T) {
	g := GenerateRandomConnected(21, 80, 240)
	sources := []int{0, 10, 20, 30, 40, 50}
	opts := testOptions(22)
	opts.MaxCachedSources = 3
	oracle, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := oracle.Warm(); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		for _, s := range sources {
			if oracle.Result(s) == nil {
				t.Errorf("Result(%d) = nil", s)
			}
		}
	}()
	wg.Wait()

	if got := oracle.CachedSources(); got > opts.MaxCachedSources {
		t.Fatalf("cache holds %d sources, bound %d", got, opts.MaxCachedSources)
	}

	// Every source must still answer exactly (thrashing the small LRU
	// the whole way — each Result call may evict and rebuild).
	for _, s := range sources {
		res := oracle.Result(s)
		want := naive.SSRP(g.Internal(), int32(s))
		if d := rp.Diff(want, resultOf(res)); d != "" {
			t.Fatalf("source %d after warm/lazy race: %s", s, d)
		}
	}

	// Repeat Warm after evictions: must succeed and stay exact (the
	// center-family RNG derivation is idempotent per Shared).
	if err := oracle.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := oracle.CachedSources(); got > opts.MaxCachedSources {
		t.Fatalf("cache holds %d sources after re-Warm, bound %d", got, opts.MaxCachedSources)
	}
	for _, s := range sources {
		want := naive.SSRP(g.Internal(), int32(s))
		if d := rp.Diff(want, resultOf(oracle.Result(s))); d != "" {
			t.Fatalf("source %d after second Warm: %s", s, d)
		}
	}
}

// TestOracleUnboundedCacheKeepsAllSources: with MaxCachedSources = 0
// nothing is ever evicted.
func TestOracleUnboundedCacheKeepsAllSources(t *testing.T) {
	g := GenerateRandomConnected(23, 50, 140)
	sources := []int{0, 10, 20, 30}
	oracle, err := NewOracle(g, sources, testOptions(23))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeated touches must not evict
		for _, s := range sources {
			if oracle.Result(s) == nil {
				t.Fatalf("Result(%d) = nil", s)
			}
		}
	}
	if got := oracle.CachedSources(); got != len(sources) {
		t.Fatalf("cache holds %d sources, want %d", got, len(sources))
	}
}

// TestOracleStats exercises every serving counter: misses and builds
// on first touch, hits on repeat, batch accounting, warm, and LRU
// evictions under a tight cache bound.
func TestOracleStats(t *testing.T) {
	g := GenerateRandomConnected(31, 60, 150)
	sources := []int{0, 15, 30, 45}

	opts := testOptions(32)
	oracle, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s := oracle.Stats(); s != (OracleStats{}) {
		t.Fatalf("fresh oracle has nonzero stats: %+v", s)
	}

	if _, err := oracle.Query(0, 30, 0, g.firstPathStep(t, 0, 30)); err != nil {
		t.Fatal(err)
	}
	s := oracle.Stats()
	if s.Misses != 1 || s.Builds != 1 || s.Hits != 0 {
		t.Fatalf("after first query: %+v", s)
	}
	if s.BuildTime <= 0 || s.AvgBuildLatency() <= 0 {
		t.Fatalf("build latency not recorded: %+v", s)
	}

	if _, err := oracle.Query(0, 30, 0, g.firstPathStep(t, 0, 30)); err != nil {
		t.Fatal(err)
	}
	s = oracle.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("after repeat query: %+v", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %v, want 0.5", got)
	}

	queries := []Query{
		{Source: 15, Target: 45, U: 15, V: int(oracle.Result(15).PathTo(45)[1])},
		{Source: 15, Target: 45, U: 15, V: int(oracle.Result(15).PathTo(45)[1])},
	}
	oracle.QueryBatch(queries)
	s = oracle.Stats()
	if s.Batches != 1 || s.BatchQueries != 2 || s.AvgBatchSize() != 2 {
		t.Fatalf("after batch: %+v", s)
	}

	if s = oracle.Stats(); s.WarmStages != (StageTimes{}) || s.WarmPeakSeedPathBytes != 0 {
		t.Fatalf("warm-stage stats set before any Warm: %+v", s)
	}
	if err := oracle.Warm(); err != nil {
		t.Fatal(err)
	}
	if s = oracle.Stats(); s.Warms != 1 {
		t.Fatalf("after Warm: %+v", s)
	}
	// The Warm pipeline must leave its stage-latency breakdown and
	// peak path-state high-water behind (the load-shedding inputs).
	if s.WarmStages.PerSourceBuild <= 0 || s.WarmStages.SeedEnumerate <= 0 ||
		s.WarmStages.CenterLandmark <= 0 || s.WarmStages.Assembly <= 0 {
		t.Fatalf("warm stage breakdown not recorded: %+v", s.WarmStages)
	}
	if s.WarmPeakSeedPathBytes <= 0 {
		t.Fatalf("warm peak seed-path bytes not recorded: %+v", s)
	}

	// Tight LRU: touching all sources in turn must evict.
	opts.MaxCachedSources = 1
	small, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range sources {
		if small.Result(src) == nil {
			t.Fatalf("Result(%d) = nil", src)
		}
	}
	if s = small.Stats(); s.Evictions != int64(len(sources)-1) {
		t.Fatalf("evictions = %d, want %d (%+v)", s.Evictions, len(sources)-1, s)
	}
}

// firstPathStep returns the second vertex of the canonical s→t path —
// the far endpoint of the path's first edge (test helper).
func (g *Graph) firstPathStep(t *testing.T, s, target int) int {
	t.Helper()
	res, err := SingleSource(g, s, testOptions(32))
	if err != nil {
		t.Fatal(err)
	}
	path := res.PathTo(target)
	if len(path) < 2 {
		t.Fatalf("no path %d→%d", s, target)
	}
	return int(path[1])
}
