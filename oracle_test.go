package msrp

// Oracle-specific regression tests for the serving-layer machinery:
// the Warm/lazy-build race, LRU bookkeeping under eviction pressure,
// and repeat-Warm determinism. The broader cross-checks live in
// crosscheck_test.go and determinism_test.go.

import (
	"sync"
	"testing"

	"msrp/internal/naive"
	"msrp/internal/rp"
)

// TestOracleWarmConcurrentWithLazyBuilds races Warm against lazy
// per-source builds on a tightly bounded LRU. Regression: a Warm
// landing while a lazy build was in flight used to insert a duplicate
// LRU entry for the same source, desynchronizing the cache map from
// the eviction list.
func TestOracleWarmConcurrentWithLazyBuilds(t *testing.T) {
	g := GenerateRandomConnected(21, 80, 240)
	sources := []int{0, 10, 20, 30, 40, 50}
	opts := testOptions(22)
	opts.MaxCachedSources = 3
	oracle, err := NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := oracle.Warm(); err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		for _, s := range sources {
			if oracle.Result(s) == nil {
				t.Errorf("Result(%d) = nil", s)
			}
		}
	}()
	wg.Wait()

	if got := oracle.CachedSources(); got > opts.MaxCachedSources {
		t.Fatalf("cache holds %d sources, bound %d", got, opts.MaxCachedSources)
	}

	// Every source must still answer exactly (thrashing the small LRU
	// the whole way — each Result call may evict and rebuild).
	for _, s := range sources {
		res := oracle.Result(s)
		want := naive.SSRP(g.Internal(), int32(s))
		if d := rp.Diff(want, resultOf(res)); d != "" {
			t.Fatalf("source %d after warm/lazy race: %s", s, d)
		}
	}

	// Repeat Warm after evictions: must succeed and stay exact (the
	// center-family RNG derivation is idempotent per Shared).
	if err := oracle.Warm(); err != nil {
		t.Fatal(err)
	}
	if got := oracle.CachedSources(); got > opts.MaxCachedSources {
		t.Fatalf("cache holds %d sources after re-Warm, bound %d", got, opts.MaxCachedSources)
	}
	for _, s := range sources {
		want := naive.SSRP(g.Internal(), int32(s))
		if d := rp.Diff(want, resultOf(oracle.Result(s))); d != "" {
			t.Fatalf("source %d after second Warm: %s", s, d)
		}
	}
}

// TestOracleUnboundedCacheKeepsAllSources: with MaxCachedSources = 0
// nothing is ever evicted.
func TestOracleUnboundedCacheKeepsAllSources(t *testing.T) {
	g := GenerateRandomConnected(23, 50, 140)
	sources := []int{0, 10, 20, 30}
	oracle, err := NewOracle(g, sources, testOptions(23))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // repeated touches must not evict
		for _, s := range sources {
			if oracle.Result(s) == nil {
				t.Fatalf("Result(%d) = nil", s)
			}
		}
	}
	if got := oracle.CachedSources(); got != len(sources) {
		t.Fatalf("cache holds %d sources, want %d", got, len(sources))
	}
}
