package msrp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"msrp/internal/engine"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/ssrp"
)

// ErrNotSource is the sentinel wrapped by every "queried vertex is not
// one of this oracle's sources" error (Query, QueryBatch, Answer.Err).
// Callers — in particular serving front-ends mapping oracle errors to
// HTTP status codes — should test with errors.Is(err, ErrNotSource)
// rather than matching the message, which also carries the offending
// vertex id.
var ErrNotSource = errors.New("msrp: not an oracle source")

// notSourceError wraps ErrNotSource with the offending vertex.
func notSourceError(s int) error {
	return fmt.Errorf("%w: %d", ErrNotSource, s)
}

// ErrRebuildSaturated is the sentinel wrapped by every "on-demand
// provenance rebuild capacity exhausted" error: a path query hit a
// budget-stripped source while Options.MaxProvenanceRebuilds rebuilds
// were already solving. The query was not queued — admission here
// mirrors the serving tier's never-queue stance — and retrying after a
// short backoff will find either the rebuilt provenance (a cache hit)
// or a free rebuild slot. Serving front-ends should test with errors.Is
// and map it to 429 + a derived Retry-After.
var ErrRebuildSaturated = errors.New("msrp: provenance rebuild capacity exhausted")

// rebuildSaturatedError wraps ErrRebuildSaturated with the source.
func rebuildSaturatedError(s int) error {
	return fmt.Errorf("%w: source %d", ErrRebuildSaturated, s)
}

// Query is one replacement-path question for Oracle.QueryBatch: the
// length of the shortest Source→Target path avoiding the edge {U, V}.
// Paths additionally requests the concrete replacement path in
// Answer.Path (the oracle must have been built with
// Options.TrackPaths, else the answer carries ErrPathsNotTracked).
type Query struct {
	Source, Target int
	U, V           int
	Paths          bool
}

// Answer is the result of one Query. Err is non-nil when the query was
// malformed (unknown source, missing edge, edge off the canonical
// path) or when paths were requested from an untracked oracle; Length
// is NoPath when the avoided edge is a bridge. Path holds the
// replacement path's vertex sequence (source first, target last) when
// the query requested it and a replacement path exists; it is a
// machine-checkable certificate — a real walk in G−e of exactly Length
// edges.
type Answer struct {
	Length int32
	Path   []int32
	Err    error
}

// Oracle is a concurrency-safe, batch-oriented replacement-path server
// over a fixed graph and source set, in the spirit of the
// fault-tolerant distance oracles the paper's related-work section
// surveys (Bernstein–Karger, Demetrescu et al.).
//
// Construction is lazy: NewOracle performs only the source-independent
// preprocessing (the landmark family and its BFS forest, shared by
// every source — Õ(m√(nσ))). A source's full result materializes the
// first time a query needs it, deduplicated across concurrent callers
// by single-flight, and is retained in an LRU bounded by
// Options.MaxCachedSources — so σ can exceed what fits in memory for
// all-at-once construction. Warm forces the all-sources batch build
// (the paper's Theorem 1 pipeline), which is the faster route when
// every source will be queried and memory allows.
//
// Answers are deterministic: a given oracle configuration (graph,
// source set, options) yields the same answer for the same query
// regardless of Parallelism, query order, cache evictions, or
// concurrent callers. Every answer is sound (achievable by a real
// path, NoPath only when provably no candidate exists) and exact with
// probability ≥ 1 − 1/n per the paper's lemmas. The one fine print:
// lazy builds use the single-source pipeline while Warm uses the
// multi-source §8 pipeline; on the ≤ 1/n-probability entries where the
// sampling misses, the two (individually deterministic, always sound)
// paths may disagree, so an answer served before a Warm can differ
// from one served after an eviction-then-Warm rebuild.
type Oracle struct {
	g        *Graph
	opts     Options
	sources  []int
	isSource map[int]bool
	sh       *ssrp.Shared
	pool     *engine.Pool
	// seq is the long-lived sequential inner pool handed to per-source
	// builds triggered by QueryBatch, whose fan-out is already across
	// sources. One pool for the oracle's lifetime means its scratch free
	// list carries build buffers from batch to batch; allocating a fresh
	// pool per batch made every batched lazy build regrow its scratch
	// from nothing.
	seq *engine.Pool

	mu       sync.Mutex
	cache    map[int]*lruEntry
	lruHead  *lruEntry // most recently used
	lruTail  *lruEntry // least recently used; next eviction
	inflight map[int]*oracleCall
	warming  *warmCall // in-flight Warm, nil when idle (single-flight)
	warmed   bool      // a Warm pipeline has completed; repeats are no-ops

	// rebuildSem bounds concurrent on-demand tracked rebuilds (path
	// queries against budget-stripped sources); nil = unbounded. Slots
	// are acquired non-blocking under mu — an over-limit rebuild fails
	// fast with ErrRebuildSaturated instead of piling another full solve
	// behind the ones already running. rebuildActive/rebuildPeak observe
	// the bound (the storm test asserts peak ≤ limit under -race).
	rebuildSem    chan struct{}
	rebuildActive atomic.Int64
	rebuildPeak   atomic.Int64

	// Serving counters (Stats). Plain atomics so the query hot path
	// never takes an extra lock and concurrent batches never contend on
	// observability.
	hits          atomic.Int64
	misses        atomic.Int64
	builds        atomic.Int64
	buildNanos    atomic.Int64
	evictions     atomic.Int64
	batches       atomic.Int64
	batchQueries  atomic.Int64
	warms         atomic.Int64
	rejections    atomic.Int64
	cancellations atomic.Int64

	// Stage breakdown of the most recent completed Warm pipeline,
	// guarded by mu (written once per warm, far off the query path).
	warmStages        StageTimes
	warmPeakSeedBytes int64
	// Streaming-overlap counters of that same warm (guarded by mu,
	// zero under the barrier schedules).
	warmCentersReady      int64
	warmCentersOverlapped int64

	// provBytes tracks the retained provenance plane (guarded by mu):
	// per-entry snapshot/provenance bytes move with LRU inserts,
	// evictions, and budget strips.
	provBytes int64
	// The provenance tier (guarded by mu): a second LRU over the cache
	// entries that carry individually-freeable provenance, ordered by
	// path-query recency. When provBytes exceeds
	// Options.MaxProvenanceBytes the tail entries are stripped — their
	// provenance dropped, their cached lengths kept — and a later path
	// query rebuilds tracked state through the single-flight path.
	provHead *lruEntry // most recently path-queried
	provTail *lruEntry // least recently path-queried; next strip
	// Tier counters and the compaction before/after record of the most
	// recent Warm (all guarded by mu; they are only written under it).
	provenanceEvictions int64
	provenanceRebuilds  int64
	provRawBytes        int64
	provCompactedBytes  int64
	// rebuildRejects counts rebuild attempts turned away by rebuildSem
	// (an atomic: it is bumped after mu is released).
	rebuildRejects atomic.Int64
	// warmProv pins the warm provenance plane (guarded by mu) — but only
	// on the fallback path where post-solve compaction failed and the
	// full shared §8 plane (parent chains, seed table, center forest)
	// must stay alive as one immortal unit. The normal path compacts the
	// plane into self-contained per-source records that live and die
	// with their cache entries, so nothing needs pinning and the byte
	// budget can actually free memory.
	warmProv *msrpcore.Solution
}

// StageTimes is the per-stage latency breakdown of one §8 batch solve
// (the pipeline Warm runs). Every stage is wall time summed over its
// items — sources for build/enumeration/assembly, scatter+fold slices
// for the seed merge, centers for the §8.2.2 stage — the measure that
// stays comparable when the streaming schedule overlaps all of them.
// Serving front-ends use the build-side numbers to inform load
// shedding with measured latency rather than a static cap.
type StageTimes struct {
	// PerSourceBuild covers the §7.1 small-near and §8.1 source–center
	// builds.
	PerSourceBuild time.Duration
	// SeedEnumerate covers the §8.2.1 per-source shard enumeration.
	SeedEnumerate time.Duration
	// SeedMerge covers folding the shards into the seed table.
	SeedMerge time.Duration
	// CenterLandmark covers the §8.2.2 per-center solves.
	CenterLandmark time.Duration
	// Assembly covers the per-source assembly, sweeps, and combine.
	Assembly time.Duration
}

// OracleStats is a point-in-time snapshot of an Oracle's serving
// counters. Snapshots are monotone: every field only grows over the
// oracle's lifetime.
type OracleStats struct {
	// Hits and Misses count per-source cache lookups on the query path.
	// A miss either triggers a build or joins one already in flight.
	Hits, Misses int64
	// Builds counts lazy per-source materializations; BuildTime is
	// their summed wall clock (divide for the mean per-source build
	// latency).
	Builds    int64
	BuildTime time.Duration
	// Evictions counts sources dropped by the MaxCachedSources LRU.
	Evictions int64
	// Batches and BatchQueries describe QueryBatch traffic (divide for
	// the mean batch size).
	Batches, BatchQueries int64
	// Warms counts Warm calls that ran the batch §8 pipeline to
	// successful completion (joiners of an in-flight warm and warms that
	// errored or were cancelled do not count).
	Warms int64
	// Rejections counts requests turned away by admission control (a
	// serving front-end reporting 429 via RecordRejection).
	Rejections int64
	// Cancellations counts QueryBatchContext/WarmContext calls that
	// returned early because their context was cancelled.
	Cancellations int64
	// ProvenanceBytes is the retained footprint of the path-provenance
	// plane under Options.TrackPaths — what tracking keeps alive that a
	// length-only oracle would have dropped. Lazy builds contribute per
	// cached entry (witness snapshot + Value-lookup plane + answer
	// provenance + witnesses); a completed Warm compacts its shared §8
	// plane into self-contained per-source records and contributes those
	// per entry too. Either way an entry's provenance is freed by LRU
	// eviction or by a MaxProvenanceBytes budget strip, so the gauge
	// tracks memory that can actually be reclaimed. (Fallback fine
	// print: if post-warm compaction fails, the full plane is pinned for
	// the oracle's lifetime and counted once — recognizable by
	// ProvenanceCompactedBytes staying 0 after a tracked warm.) 0 on
	// untracked oracles. Unlike the other counters it is a gauge, not a
	// monotone counter.
	ProvenanceBytes int64
	// ProvenanceEvictions counts sources whose provenance was dropped by
	// the MaxProvenanceBytes budget. The source's lengths stay cached
	// and keep serving; only path expansion requires a rebuild.
	ProvenanceEvictions int64
	// ProvenanceRebuilds counts on-demand tracked rebuilds triggered by
	// a path query against a source whose provenance had been evicted.
	ProvenanceRebuilds int64
	// ProvenanceRebuildRejects counts rebuild attempts turned away by
	// Options.MaxProvenanceRebuilds admission (ErrRebuildSaturated) —
	// the thundering herd the bound absorbed.
	ProvenanceRebuildRejects int64
	// ProvenanceRawBytes and ProvenanceCompactedBytes record the most
	// recent completed Warm's provenance plane before and after
	// post-solve compaction (zero before any tracked warm; compacted
	// stays zero if compaction fell back to pinning the raw plane).
	ProvenanceRawBytes       int64
	ProvenanceCompactedBytes int64
	// WarmStages is the stage-latency breakdown of the most recent
	// completed Warm pipeline (zero before any warm completes).
	WarmStages StageTimes
	// WarmPeakSeedPathBytes is that pipeline's high-water mark of live
	// §7.1 path-expansion state — Θ(Parallelism·aux) on the default
	// pipelined schedule (each source's state is released as soon as
	// its seed shard is enumerated).
	WarmPeakSeedPathBytes int64
	// WarmCentersReady counts the §8.2.2 center solves of the most
	// recent completed Warm that the streaming schedule released while
	// at least one source was still building or enumerating — overlap
	// the seed-merge barrier used to forbid. WarmCentersOverlapped
	// counts center solves that actually started before every source
	// finished; it is scheduling-dependent (workers prefer source
	// stages), so neither counter bounds the other. Both are zero
	// under the barrier schedules.
	WarmCentersReady      int64
	WarmCentersOverlapped int64
}

// HitRate returns the fraction of cache lookups served without
// building, or 0 before any lookup.
func (s OracleStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// AvgBuildLatency returns the mean per-source build time, or 0 before
// any build.
func (s OracleStats) AvgBuildLatency() time.Duration {
	if s.Builds == 0 {
		return 0
	}
	return s.BuildTime / time.Duration(s.Builds)
}

// AvgBatchSize returns the mean QueryBatch size, or 0 before any batch.
func (s OracleStats) AvgBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchQueries) / float64(s.Batches)
}

// Stats snapshots the serving counters. Safe for concurrent use; the
// counter fields are read individually (plain atomics, no lock on the
// query path), so a snapshot taken while queries are in flight may be
// torn by at most the in-flight operations. The warm-stage fields are
// read under the oracle lock (they are written once per completed
// Warm).
func (o *Oracle) Stats() OracleStats {
	o.mu.Lock()
	warmStages := o.warmStages
	warmPeak := o.warmPeakSeedBytes
	warmReady := o.warmCentersReady
	warmOverlap := o.warmCentersOverlapped
	provBytes := o.provBytes
	provEvictions := o.provenanceEvictions
	provRebuilds := o.provenanceRebuilds
	provRaw := o.provRawBytes
	provCompacted := o.provCompactedBytes
	o.mu.Unlock()
	return OracleStats{
		ProvenanceBytes:          provBytes,
		ProvenanceEvictions:      provEvictions,
		ProvenanceRebuilds:       provRebuilds,
		ProvenanceRebuildRejects: o.rebuildRejects.Load(),
		ProvenanceRawBytes:       provRaw,
		ProvenanceCompactedBytes: provCompacted,
		Hits:                  o.hits.Load(),
		Misses:                o.misses.Load(),
		Builds:                o.builds.Load(),
		BuildTime:             time.Duration(o.buildNanos.Load()),
		Evictions:             o.evictions.Load(),
		Batches:               o.batches.Load(),
		BatchQueries:          o.batchQueries.Load(),
		Warms:                 o.warms.Load(),
		Rejections:            o.rejections.Load(),
		Cancellations:         o.cancellations.Load(),
		WarmStages:            warmStages,
		WarmPeakSeedPathBytes: warmPeak,
		WarmCentersReady:      warmReady,
		WarmCentersOverlapped: warmOverlap,
	}
}

// RecordRejection counts one admission-control rejection. The Oracle
// never rejects work itself; this is the hook a serving front-end
// (internal/server) calls when it turns a request away over capacity,
// so rejected traffic shows up in the same Stats() snapshot as the
// served traffic.
func (o *Oracle) RecordRejection() { o.rejections.Add(1) }

// Options returns the options the oracle was constructed with (a copy;
// mutating it does not affect the oracle). Serving front-ends use it to
// derive admission-control defaults from MaxCachedSources.
func (o *Oracle) Options() Options { return o.opts }

type lruEntry struct {
	s          int
	res        *Result
	provBytes  int64 // per-entry provenance footprint, for the gauge
	prev, next *lruEntry
	// Provenance-tier links: a second LRU (ordered by path-query
	// recency) over the entries whose provenance is individually
	// freeable. inProv marks membership; stripped and zero-weight
	// entries are not linked.
	provPrev, provNext *lruEntry
	inProv             bool
}

type oracleCall struct {
	done chan struct{}
	res  *Result
}

// warmCall is one in-flight Warm shared by every concurrent caller
// (single-flight): joiners wait on done and share err.
type warmCall struct {
	done chan struct{}
	err  error
}

// NewOracle prepares an oracle over the given sources. Only the shared
// preprocessing runs here; per-source results are built on first use
// (or all at once by Warm).
func NewOracle(g *Graph, sources []int, opts Options) (*Oracle, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	srcs := make([]int32, len(sources))
	for i, s := range sources {
		srcs[i] = int32(s)
	}
	sh, err := ssrp.NewShared(g.g, srcs, opts.params())
	if err != nil {
		return nil, err
	}
	o := &Oracle{
		g:        g,
		opts:     opts,
		sources:  append([]int(nil), sources...),
		isSource: make(map[int]bool, len(sources)),
		sh:       sh,
		pool:     sh.Pool,
		seq:      engine.New(1),
		cache:    make(map[int]*lruEntry, len(sources)),
		inflight: make(map[int]*oracleCall),
	}
	for _, s := range sources {
		o.isSource[s] = true
	}
	if limit := opts.rebuildLimit(); limit > 0 {
		o.rebuildSem = make(chan struct{}, limit)
	}
	return o, nil
}

// rebuildLimit resolves Options.MaxProvenanceRebuilds: explicit
// positive values pass through, negative means unbounded (0 — no
// semaphore), and 0 derives max(1, Parallelism/2) with Parallelism ≤ 0
// resolved to GOMAXPROCS, mirroring how the engine sizes its pool.
func (o Options) rebuildLimit() int {
	switch {
	case o.MaxProvenanceRebuilds > 0:
		return o.MaxProvenanceRebuilds
	case o.MaxProvenanceRebuilds < 0:
		return 0
	}
	p := o.Parallelism
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p /= 2; p < 1 {
		p = 1
	}
	return p
}

// Sources returns the oracle's source set in construction order.
func (o *Oracle) Sources() []int { return append([]int(nil), o.sources...) }

// IsSource reports whether v is one of the oracle's sources — the
// membership test a routing tier needs for placement decisions without
// copying the whole source set per check.
func (o *Oracle) IsSource(v int) bool { return o.isSource[v] }

// CachedSourceIDs returns the source ids whose per-source results are
// currently materialized, in ascending order. This is the cache's
// *contents* (CachedSources is just its size): a router deciding where
// a source's queries should land — or whether handing a hash slice back
// to a rejoined replica will hit warm state — reads this instead of
// guessing.
func (o *Oracle) CachedSourceIDs() []int {
	o.mu.Lock()
	ids := make([]int, 0, len(o.cache))
	for s := range o.cache {
		ids = append(ids, s)
	}
	o.mu.Unlock()
	sort.Ints(ids)
	return ids
}

// WarmSources materializes the given subset of sources (each must be an
// oracle source), sharding the builds across the engine pool. Unlike
// Warm it uses the per-source lazy build path rather than the §8 batch
// pipeline, so the cached results are bit-identical to what on-demand
// queries would have built — the property a replica fleet needs when a
// router warms each replica's hash slice and expects every replica to
// agree with a lazily-built single process. Already-cached sources are
// no-ops (touched, not rebuilt); concurrent callers share in-flight
// builds via the usual single-flight path.
func (o *Oracle) WarmSources(ctx context.Context, sources []int) error {
	for _, s := range sources {
		if !o.isSource[s] {
			return notSourceError(s)
		}
	}
	err := o.pool.RunCtx(ctx, len(sources), func(i int) {
		_, _ = o.result(ctx, sources[i], o.seq) // validated above; err is only ctx
	})
	if err != nil {
		o.cancellations.Add(1)
	}
	return err
}

// Query answers a single replacement-path question; s must be one of
// the oracle's sources. Safe for concurrent use.
func (o *Oracle) Query(s, t, u, v int) (int32, error) {
	res, err := o.result(context.Background(), s, o.pool)
	if err != nil {
		return 0, err
	}
	return res.AvoidEdge(t, u, v)
}

// QueryBatch answers a batch of queries, one Answer per Query in
// order. Sources that are not yet materialized are built concurrently
// (sharded across the engine pool), each exactly once even under
// concurrent batches. Safe for concurrent use.
func (o *Oracle) QueryBatch(queries []Query) []Answer {
	answers, _ := o.QueryBatchContext(context.Background(), queries)
	return answers
}

// QueryBatchContext is QueryBatch with cancellation. Workers observe
// ctx between per-source builds, so a cancelled batch returns promptly
// — bounded by the builds already in flight, not by the batch — with a
// nil answer slice and ctx.Err(). Builds that were in flight when the
// cancel landed run to completion and stay cached (the LRU is never
// left with partial state), so subsequent queries on the same oracle
// return exactly what an uncancelled run would have.
func (o *Oracle) QueryBatchContext(ctx context.Context, queries []Query) ([]Answer, error) {
	if err := ctx.Err(); err != nil {
		o.cancellations.Add(1)
		return nil, err
	}
	o.batches.Add(1)
	o.batchQueries.Add(int64(len(queries)))
	answers := make([]Answer, len(queries))

	// Group query indices by source, keeping first-seen order, and note
	// which sources need provenance present (a path query against a
	// budget-stripped source must go through the rebuilding path).
	bySource := make(map[int][]int)
	needPaths := make(map[int]bool)
	var order []int
	for i, q := range queries {
		if !o.isSource[q.Source] {
			answers[i].Err = notSourceError(q.Source)
			continue
		}
		if _, seen := bySource[q.Source]; !seen {
			order = append(order, q.Source)
		}
		bySource[q.Source] = append(bySource[q.Source], i)
		if q.Paths {
			needPaths[q.Source] = true
		}
	}

	// Materialize the batch's sources in parallel. The fan-out is
	// across sources here, so each per-source build runs its landmark
	// stage sequentially (single-level parallelism) on the oracle's
	// long-lived inner pool, whose free list reuses build scratch
	// across batches.
	results := make([]*Result, len(order))
	errs := make([]error, len(order))
	err := o.pool.RunCtx(ctx, len(order), func(i int) {
		if needPaths[order[i]] {
			results[i], errs[i] = o.resultWithPaths(ctx, order[i], o.seq)
		} else {
			results[i], errs[i] = o.result(ctx, order[i], o.seq) // source validated above
		}
	})
	if err != nil {
		o.cancellations.Add(1)
		return nil, err
	}

	for i, s := range order {
		res := results[i]
		if res == nil {
			// The source failed to materialize — rebuild admission
			// (ErrRebuildSaturated) or a per-source cancellation race.
			// Per-item verdicts, never a lost answer.
			serr := errs[i]
			if serr == nil {
				serr = fmt.Errorf("msrp: source %d failed to materialize", s)
			}
			for _, qi := range bySource[s] {
				answers[qi].Err = serr
			}
			continue
		}
		for _, qi := range bySource[s] {
			q := queries[qi]
			// One edge resolution serves both the length lookup and the
			// optional path expansion.
			idx, err := res.pathEdgeIndex(q.Target, q.U, q.V)
			if err != nil {
				answers[qi].Err = err
				continue
			}
			answers[qi].Length = res.res.Len[q.Target][idx]
			if q.Paths && answers[qi].Length != NoPath {
				answers[qi].Path, answers[qi].Err = res.ReplacementPath(q.Target, idx)
			}
		}
	}
	return answers, nil
}

// QueryPath answers a single replacement-path question with the
// concrete path: the shortest s→t walk avoiding the edge {u, v}
// (source first, t last), or nil when the edge is a bridge (the NoPath
// case). The oracle must have been built with Options.TrackPaths, else
// ErrPathsNotTracked. Safe for concurrent use.
func (o *Oracle) QueryPath(s, t, u, v int) ([]int32, error) {
	res, err := o.resultWithPaths(context.Background(), s, o.pool)
	if err != nil {
		return nil, err
	}
	return res.ReplacementPathForEdge(t, u, v)
}

// Result returns the full per-source result, materializing it if
// needed, or nil when s is not an oracle source. Safe for concurrent
// use. The result stays valid even after the LRU evicts it.
func (o *Oracle) Result(s int) *Result {
	res, err := o.result(context.Background(), s, o.pool)
	if err != nil {
		return nil
	}
	return res
}

// Warm builds the results of every source in one batch via the MSRP
// pipeline over the oracle's existing shared preprocessing (Theorem 1:
// Õ(m√(nσ) + σn²) — cheaper than σ lazy builds, and the landmark
// stage is not repeated) and caches them, subject to the LRU bound.
// Sources already materialized are kept as-is; repeated calls are
// deterministic, and once a warm has completed further calls are
// no-ops (with a bounded LRU the σn² pipeline would only recompute
// results the bound is going to evict again, churning the genuinely
// hot entries out on the way).
//
// Warms are single-flight: concurrent callers join the pipeline run
// already in flight and share its outcome rather than racing a second
// σn² build.
func (o *Oracle) Warm() error { return o.WarmContext(context.Background()) }

// WarmContext is Warm with cancellation. The §8 pipeline observes ctx
// between its per-source stage items, so a cancelled warm returns
// promptly; nothing from a cancelled run enters the cache. The
// pipeline runs on the initiating caller's context, so that caller
// cancelling aborts the shared run; a joiner that inherits such an
// abort retries with its own context rather than surfacing someone
// else's cancellation.
func (o *Oracle) WarmContext(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			o.cancellations.Add(1)
			return err
		}
		o.mu.Lock()
		if o.warmed || len(o.cache) == len(o.sources) {
			o.mu.Unlock()
			return nil
		}
		if c := o.warming; c != nil {
			o.mu.Unlock()
			select {
			case <-c.done:
				if c.err == nil {
					return nil
				}
				// The leader's run failed. If it died of its *own*
				// context (not ours — ours is checked at the top of the
				// loop), the failure says nothing about our request:
				// retry, becoming the leader if the slot is still free.
				if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
					continue
				}
				return c.err
			case <-ctx.Done():
				o.cancellations.Add(1)
				return ctx.Err()
			}
		}
		c := &warmCall{done: make(chan struct{})}
		o.warming = c
		o.mu.Unlock()

		sol, err := msrpcore.SolveSharedContext(ctx, o.sh)

		// Compact the provenance plane before anything is published: the
		// solution is still private to this goroutine (outside the
		// oracle lock, so queries keep flowing during the re-walk).
		// Compaction replaces the shared §8 plane — parent chains, seed
		// table, center forest, whose explain reach made warm provenance
		// one immortal unit — with self-contained per-source records
		// that the LRU and the byte budget can free individually.
		var rawProvBytes int64
		if err == nil && sol.Prov != nil {
			rawProvBytes = sol.Stats.ProvenanceBytes
			// On error the full plane stays installed and functional;
			// the fallback below pins it exactly as pre-compaction
			// oracles did.
			_ = sol.CompactProvenance()
		}

		o.mu.Lock()
		if err == nil {
			solveStats := sol.Stats
			o.warms.Add(1) // count only pipeline runs that completed
			o.warmed = true
			o.warmStages = StageTimes{
				PerSourceBuild: solveStats.StagePerSourceBuild,
				SeedEnumerate:  solveStats.StageSeedEnumerate,
				SeedMerge:      solveStats.StageSeedMerge,
				CenterLandmark: solveStats.StageCenterLandmark,
				Assembly:       solveStats.StageAssembly,
			}
			o.warmPeakSeedBytes = solveStats.PeakSeedPathBytes
		o.warmCentersReady = int64(solveStats.CentersReady)
		o.warmCentersOverlapped = int64(solveStats.CentersOverlapped)
			switch {
			case sol.Compact != nil:
				o.provRawBytes = rawProvBytes
				o.provCompactedBytes = solveStats.ProvenanceBytes
			case sol.Prov != nil:
				// Compaction failed: pin the raw plane for the oracle's
				// lifetime and count it once (zero per-entry weight
				// below — evicting an entry frees nothing of it).
				// ProvenanceCompactedBytes staying 0 flags this mode.
				o.warmProv = sol
				o.provBytes += rawProvBytes
				o.provRawBytes = rawProvBytes
			}
			for i, s := range o.sources {
				if _, ok := o.cache[s]; !ok {
					res := wrapResult(o.g.g, sol.Results[i])
					var pb int64
					if sol.PerSource[i].TrackPaths {
						res.ps = sol.PerSource[i]
						if sol.Compact != nil {
							pb = sol.PerSource[i].ProvenanceBytes() + sol.Compact[i].Bytes()
						}
					}
					o.insertLocked(s, res, pb)
				}
			}
		}
		o.warming = nil
		o.mu.Unlock()
		if err != nil && ctx.Err() != nil {
			o.cancellations.Add(1)
		}
		c.err = err
		close(c.done)
		return err
	}
}

// CachedSources returns how many per-source results are currently
// materialized (for observability and tests).
func (o *Oracle) CachedSources() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.cache)
}

// result returns the materialized result for s, building it at most
// once across concurrent callers (single-flight). pool bounds the
// landmark fan-out of a build triggered by this call.
//
// Cancellation boundary: ctx is observed before starting or joining a
// build — never during one. A build that has started always runs to
// completion and is cached, so the LRU can never hold partial state
// and single-flight joiners always receive a complete result; a joiner
// whose ctx cancels mid-wait detaches with ctx.Err() while the build
// continues for everyone else.
func (o *Oracle) result(ctx context.Context, s int, pool *engine.Pool) (*Result, error) {
	if !o.isSource[s] {
		return nil, notSourceError(s)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	o.mu.Lock()
	if e, ok := o.cache[s]; ok {
		o.touchLocked(e)
		res := e.res
		o.mu.Unlock()
		o.hits.Add(1)
		return res, nil
	}
	if c, ok := o.inflight[s]; ok {
		o.mu.Unlock()
		o.misses.Add(1)
		if done := ctx.Done(); done != nil {
			select {
			case <-c.done:
			case <-done:
				return nil, ctx.Err()
			}
		} else {
			<-c.done
		}
		return c.res, nil
	}
	c := &oracleCall{done: make(chan struct{})}
	o.inflight[s] = c
	o.mu.Unlock()
	o.misses.Add(1)

	built := o.build(int32(s), pool)

	o.mu.Lock()
	if e, ok := o.cache[s]; ok {
		// A concurrent Warm landed while we were building: its entry is
		// already linked, so serve it and drop our build — inserting a
		// second entry for s would desynchronize the LRU list from the
		// cache map.
		o.touchLocked(e)
		c.res = e.res
	} else {
		c.res = built
		o.insertLocked(s, built, built.ProvenanceBytes())
	}
	delete(o.inflight, s)
	o.mu.Unlock()
	close(c.done)
	return c.res, nil
}

// resultWithPaths is result for path queries: it returns a Result
// whose provenance is present, rebuilding it when the byte budget had
// stripped it. A cache hit whose entry still carries provenance is
// served directly (and touched in the provenance tier — the tier's
// recency is path-query recency). A stripped entry keeps serving
// lengths through result(); here it triggers a tracked rebuild through
// the same single-flight path a cold miss uses, and the rebuilt state
// replaces the stripped entry's Result wholesale, so an entry's lengths
// and paths always come from one build. On an untracked oracle this is
// just result() — the ErrPathsNotTracked surface is unchanged.
//
// Rebuilds use the lazy single-source pipeline even when the stripped
// entry came from a Warm; the two pipelines agree except on
// ≤ 1/n-probability sampling misses (the documented eviction-then-
// rebuild fine print, which budget strips share).
func (o *Oracle) resultWithPaths(ctx context.Context, s int, pool *engine.Pool) (*Result, error) {
	if !o.opts.TrackPaths {
		return o.result(ctx, s, pool)
	}
	if !o.isSource[s] {
		return nil, notSourceError(s)
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o.mu.Lock()
		if e, ok := o.cache[s]; ok && e.res.ps != nil {
			o.touchLocked(e)
			o.provTouchLocked(e)
			res := e.res
			o.mu.Unlock()
			o.hits.Add(1)
			return res, nil
		}
		_, rebuilding := o.cache[s] // present but stripped
		if c, ok := o.inflight[s]; ok {
			o.mu.Unlock()
			o.misses.Add(1)
			if done := ctx.Done(); done != nil {
				select {
				case <-c.done:
				case <-done:
					return nil, ctx.Err()
				}
			} else {
				<-c.done
			}
			if c.res != nil && c.res.ps != nil {
				return c.res, nil
			}
			// The joined flight resolved to a stripped result (a race
			// with the budget); retry as leader.
			continue
		}
		if rebuilding && o.rebuildSem != nil {
			// Admission for on-demand rebuilds: each one is a full
			// per-source solve that only exists because the byte budget
			// stripped this source, so a storm of them must not stack
			// unbounded solves behind the serving tier's back. The
			// acquire is non-blocking (never queue): over the limit the
			// query fails fast with ErrRebuildSaturated and the caller
			// backs off with a derived Retry-After.
			select {
			case o.rebuildSem <- struct{}{}:
			default:
				o.mu.Unlock()
				o.rebuildRejects.Add(1)
				return nil, rebuildSaturatedError(s)
			}
		}
		c := &oracleCall{done: make(chan struct{})}
		o.inflight[s] = c
		o.mu.Unlock()
		o.misses.Add(1)
		if rebuilding {
			n := o.rebuildActive.Add(1)
			for {
				p := o.rebuildPeak.Load()
				if n <= p || o.rebuildPeak.CompareAndSwap(p, n) {
					break
				}
			}
		}

		built := o.build(int32(s), pool)

		if rebuilding {
			o.rebuildActive.Add(-1)
			if o.rebuildSem != nil {
				<-o.rebuildSem
			}
		}

		o.mu.Lock()
		if e, ok := o.cache[s]; ok {
			if e.res.ps != nil {
				// A concurrent Warm (or rebuild) landed with provenance;
				// serve it and drop our build.
				o.touchLocked(e)
				o.provTouchLocked(e)
				c.res = e.res
			} else {
				// Replace the stripped entry's Result with the rebuilt
				// one and re-admit its bytes to the tier and the budget.
				e.res = built
				e.provBytes = built.ProvenanceBytes()
				o.provBytes += e.provBytes
				if e.provBytes > 0 {
					o.provLinkLocked(e)
				}
				o.touchLocked(e)
				o.enforceProvBudgetLocked()
				c.res = built
			}
		} else {
			c.res = built
			o.insertLocked(s, built, built.ProvenanceBytes())
		}
		if rebuilding {
			o.provenanceRebuilds++
		}
		delete(o.inflight, s)
		o.mu.Unlock()
		close(c.done)
		return c.res, nil
	}
}

// build materializes one source against the shared preprocessing: the
// §7.1 small-near graph, exact landmark replacement lengths via the
// classical algorithm (sharded over pool), and the per-target combine.
// Deterministic in (graph, source set, options) alone. Under
// Options.TrackPaths the build also records the provenance plane (the
// witness snapshot and the classic crossing-edge witnesses), so the
// result expands paths; lengths are unchanged.
func (o *Oracle) build(s int32, pool *engine.Pool) *Result {
	start := time.Now()
	ps := o.sh.NewPerSource(s)
	ps.TrackPaths = o.opts.TrackPaths
	ps.BuildSmallNear()
	if ps.TrackPaths {
		ps.Snap = ps.Small.SnapshotProvenance()
	}
	ps.ComputeLenSRClassicPool(pool)
	res := wrapResult(o.g.g, ps.Combine(nil))
	if ps.TrackPaths {
		res.ps = ps
	}
	o.builds.Add(1)
	o.buildNanos.Add(int64(time.Since(start)))
	return res
}

// insertLocked adds s at the LRU head and evicts beyond the bound.
// provBytes is the provenance footprint an eviction of this entry
// actually frees: the per-result bytes for a lazy build or a compacted
// warm entry, 0 for a fallback warm entry (its state belongs to the
// pinned raw plane, accounted once at warm time). Entries with a
// nonzero footprint also join the provenance tier, and the byte budget
// is enforced on the way out — so the gauge never exceeds
// MaxProvenanceBytes, even transiently. Callers hold o.mu.
func (o *Oracle) insertLocked(s int, res *Result, provBytes int64) {
	e := &lruEntry{s: s, res: res, provBytes: provBytes}
	o.provBytes += e.provBytes
	o.cache[s] = e
	e.next = o.lruHead
	if o.lruHead != nil {
		o.lruHead.prev = e
	}
	o.lruHead = e
	if o.lruTail == nil {
		o.lruTail = e
	}
	if e.provBytes > 0 {
		o.provLinkLocked(e)
	}
	if max := o.opts.MaxCachedSources; max > 0 {
		for len(o.cache) > max {
			victim := o.lruTail
			o.removeLocked(victim)
			o.provUnlinkLocked(victim)
			delete(o.cache, victim.s)
			o.provBytes -= victim.provBytes
			o.evictions.Add(1)
		}
	}
	o.enforceProvBudgetLocked()
}

// stripLocked drops e's provenance but keeps its cached lengths: the
// entry's Result is replaced by a ps-free copy — never mutated in
// place, because concurrent query callers may hold the original, whose
// path expansion must keep working — and its bytes leave the gauge.
// Callers hold o.mu.
func (o *Oracle) stripLocked(e *lruEntry) {
	o.provUnlinkLocked(e)
	stripped := *e.res
	stripped.ps = nil
	e.res = &stripped
	o.provBytes -= e.provBytes
	e.provBytes = 0
	o.provenanceEvictions++
}

// enforceProvBudgetLocked strips least-recently-path-queried entries
// until the gauge fits MaxProvenanceBytes (0 = unlimited). A single
// over-budget entry is stripped too — the budget is a hard bound, not
// advisory; the caller that triggered the insert still holds the
// unstripped Result and serves its paths. Only per-entry bytes are
// strippable: on the compaction-fallback path the pinned raw plane can
// keep the gauge above budget with nothing left to strip. Callers hold
// o.mu.
func (o *Oracle) enforceProvBudgetLocked() {
	max := o.opts.MaxProvenanceBytes
	if max <= 0 {
		return
	}
	for o.provBytes > max && o.provTail != nil {
		o.stripLocked(o.provTail)
	}
}

// provLinkLocked adds e at the provenance tier's head. Callers hold
// o.mu; e must not already be linked.
func (o *Oracle) provLinkLocked(e *lruEntry) {
	e.inProv = true
	e.provPrev = nil
	e.provNext = o.provHead
	if o.provHead != nil {
		o.provHead.provPrev = e
	}
	o.provHead = e
	if o.provTail == nil {
		o.provTail = e
	}
}

// provUnlinkLocked removes e from the provenance tier (no-op when not a
// member). Callers hold o.mu.
func (o *Oracle) provUnlinkLocked(e *lruEntry) {
	if !e.inProv {
		return
	}
	if e.provPrev != nil {
		e.provPrev.provNext = e.provNext
	} else {
		o.provHead = e.provNext
	}
	if e.provNext != nil {
		e.provNext.provPrev = e.provPrev
	} else {
		o.provTail = e.provPrev
	}
	e.provPrev, e.provNext = nil, nil
	e.inProv = false
}

// provTouchLocked moves e to the provenance tier's head (path-query
// recency). Callers hold o.mu.
func (o *Oracle) provTouchLocked(e *lruEntry) {
	if !e.inProv || o.provHead == e {
		return
	}
	o.provUnlinkLocked(e)
	o.provLinkLocked(e)
}

// touchLocked moves e to the LRU head. Callers hold o.mu.
func (o *Oracle) touchLocked(e *lruEntry) {
	if o.lruHead == e {
		return
	}
	o.removeLocked(e)
	e.prev = nil
	e.next = o.lruHead
	if o.lruHead != nil {
		o.lruHead.prev = e
	}
	o.lruHead = e
	if o.lruTail == nil {
		o.lruTail = e
	}
}

// removeLocked unlinks e from the LRU list. Callers hold o.mu.
func (o *Oracle) removeLocked(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		o.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		o.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}
