package msrp

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"msrp/internal/engine"
	msrpcore "msrp/internal/msrp"
	"msrp/internal/ssrp"
)

// Query is one replacement-path question for Oracle.QueryBatch: the
// length of the shortest Source→Target path avoiding the edge {U, V}.
type Query struct {
	Source, Target int
	U, V           int
}

// Answer is the result of one Query. Err is non-nil when the query was
// malformed (unknown source, missing edge, edge off the canonical
// path); Length is NoPath when the avoided edge is a bridge.
type Answer struct {
	Length int32
	Err    error
}

// Oracle is a concurrency-safe, batch-oriented replacement-path server
// over a fixed graph and source set, in the spirit of the
// fault-tolerant distance oracles the paper's related-work section
// surveys (Bernstein–Karger, Demetrescu et al.).
//
// Construction is lazy: NewOracle performs only the source-independent
// preprocessing (the landmark family and its BFS forest, shared by
// every source — Õ(m√(nσ))). A source's full result materializes the
// first time a query needs it, deduplicated across concurrent callers
// by single-flight, and is retained in an LRU bounded by
// Options.MaxCachedSources — so σ can exceed what fits in memory for
// all-at-once construction. Warm forces the all-sources batch build
// (the paper's Theorem 1 pipeline), which is the faster route when
// every source will be queried and memory allows.
//
// Answers are deterministic: a given oracle configuration (graph,
// source set, options) yields the same answer for the same query
// regardless of Parallelism, query order, cache evictions, or
// concurrent callers. Every answer is sound (achievable by a real
// path, NoPath only when provably no candidate exists) and exact with
// probability ≥ 1 − 1/n per the paper's lemmas. The one fine print:
// lazy builds use the single-source pipeline while Warm uses the
// multi-source §8 pipeline; on the ≤ 1/n-probability entries where the
// sampling misses, the two (individually deterministic, always sound)
// paths may disagree, so an answer served before a Warm can differ
// from one served after an eviction-then-Warm rebuild.
type Oracle struct {
	g        *Graph
	opts     Options
	sources  []int
	isSource map[int]bool
	sh       *ssrp.Shared
	pool     *engine.Pool

	mu       sync.Mutex
	cache    map[int]*lruEntry
	lruHead  *lruEntry // most recently used
	lruTail  *lruEntry // least recently used; next eviction
	inflight map[int]*oracleCall

	// Serving counters (Stats). Plain atomics so the query hot path
	// never takes an extra lock and concurrent batches never contend on
	// observability.
	hits         atomic.Int64
	misses       atomic.Int64
	builds       atomic.Int64
	buildNanos   atomic.Int64
	evictions    atomic.Int64
	batches      atomic.Int64
	batchQueries atomic.Int64
	warms        atomic.Int64
}

// OracleStats is a point-in-time snapshot of an Oracle's serving
// counters. Snapshots are monotone: every field only grows over the
// oracle's lifetime.
type OracleStats struct {
	// Hits and Misses count per-source cache lookups on the query path.
	// A miss either triggers a build or joins one already in flight.
	Hits, Misses int64
	// Builds counts lazy per-source materializations; BuildTime is
	// their summed wall clock (divide for the mean per-source build
	// latency).
	Builds    int64
	BuildTime time.Duration
	// Evictions counts sources dropped by the MaxCachedSources LRU.
	Evictions int64
	// Batches and BatchQueries describe QueryBatch traffic (divide for
	// the mean batch size).
	Batches, BatchQueries int64
	// Warms counts Warm calls that ran the batch §8 pipeline.
	Warms int64
}

// HitRate returns the fraction of cache lookups served without
// building, or 0 before any lookup.
func (s OracleStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// AvgBuildLatency returns the mean per-source build time, or 0 before
// any build.
func (s OracleStats) AvgBuildLatency() time.Duration {
	if s.Builds == 0 {
		return 0
	}
	return s.BuildTime / time.Duration(s.Builds)
}

// AvgBatchSize returns the mean QueryBatch size, or 0 before any batch.
func (s OracleStats) AvgBatchSize() float64 {
	if s.Batches == 0 {
		return 0
	}
	return float64(s.BatchQueries) / float64(s.Batches)
}

// Stats snapshots the serving counters. Safe for concurrent use; the
// fields are read individually, so a snapshot taken while queries are
// in flight may be torn by at most the in-flight operations.
func (o *Oracle) Stats() OracleStats {
	return OracleStats{
		Hits:         o.hits.Load(),
		Misses:       o.misses.Load(),
		Builds:       o.builds.Load(),
		BuildTime:    time.Duration(o.buildNanos.Load()),
		Evictions:    o.evictions.Load(),
		Batches:      o.batches.Load(),
		BatchQueries: o.batchQueries.Load(),
		Warms:        o.warms.Load(),
	}
}

type lruEntry struct {
	s          int
	res        *Result
	prev, next *lruEntry
}

type oracleCall struct {
	done chan struct{}
	res  *Result
}

// NewOracle prepares an oracle over the given sources. Only the shared
// preprocessing runs here; per-source results are built on first use
// (or all at once by Warm).
func NewOracle(g *Graph, sources []int, opts Options) (*Oracle, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	srcs := make([]int32, len(sources))
	for i, s := range sources {
		srcs[i] = int32(s)
	}
	sh, err := ssrp.NewShared(g.g, srcs, opts.params())
	if err != nil {
		return nil, err
	}
	o := &Oracle{
		g:        g,
		opts:     opts,
		sources:  append([]int(nil), sources...),
		isSource: make(map[int]bool, len(sources)),
		sh:       sh,
		pool:     sh.Pool,
		cache:    make(map[int]*lruEntry, len(sources)),
		inflight: make(map[int]*oracleCall),
	}
	for _, s := range sources {
		o.isSource[s] = true
	}
	return o, nil
}

// Sources returns the oracle's source set in construction order.
func (o *Oracle) Sources() []int { return append([]int(nil), o.sources...) }

// Query answers a single replacement-path question; s must be one of
// the oracle's sources. Safe for concurrent use.
func (o *Oracle) Query(s, t, u, v int) (int32, error) {
	res, err := o.result(s, o.pool)
	if err != nil {
		return 0, err
	}
	return res.AvoidEdge(t, u, v)
}

// QueryBatch answers a batch of queries, one Answer per Query in
// order. Sources that are not yet materialized are built concurrently
// (sharded across the engine pool), each exactly once even under
// concurrent batches. Safe for concurrent use.
func (o *Oracle) QueryBatch(queries []Query) []Answer {
	o.batches.Add(1)
	o.batchQueries.Add(int64(len(queries)))
	answers := make([]Answer, len(queries))

	// Group query indices by source, keeping first-seen order.
	bySource := make(map[int][]int)
	var order []int
	for i, q := range queries {
		if !o.isSource[q.Source] {
			answers[i].Err = fmt.Errorf("msrp: %d is not an oracle source", q.Source)
			continue
		}
		if _, seen := bySource[q.Source]; !seen {
			order = append(order, q.Source)
		}
		bySource[q.Source] = append(bySource[q.Source], i)
	}

	// Materialize the batch's sources in parallel. The fan-out is
	// across sources here, so each per-source build runs its landmark
	// stage sequentially (single-level parallelism).
	results := make([]*Result, len(order))
	inner := engine.New(1)
	o.pool.Run(len(order), func(i int) {
		results[i], _ = o.result(order[i], inner) // source validated above
	})

	for i, s := range order {
		res := results[i]
		for _, qi := range bySource[s] {
			q := queries[qi]
			answers[qi].Length, answers[qi].Err = res.AvoidEdge(q.Target, q.U, q.V)
		}
	}
	return answers
}

// Result returns the full per-source result, materializing it if
// needed, or nil when s is not an oracle source. Safe for concurrent
// use. The result stays valid even after the LRU evicts it.
func (o *Oracle) Result(s int) *Result {
	res, err := o.result(s, o.pool)
	if err != nil {
		return nil
	}
	return res
}

// Warm builds the results of every source in one batch via the MSRP
// pipeline over the oracle's existing shared preprocessing (Theorem 1:
// Õ(m√(nσ) + σn²) — cheaper than σ lazy builds, and the landmark
// stage is not repeated) and caches them, subject to the LRU bound.
// Sources already materialized are kept as-is; repeated calls are
// deterministic.
func (o *Oracle) Warm() error {
	o.mu.Lock()
	allCached := len(o.cache) == len(o.sources)
	o.mu.Unlock()
	if allCached {
		return nil
	}
	o.warms.Add(1)
	results, _, err := msrpcore.SolveShared(o.sh)
	if err != nil {
		return err
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for i, s := range o.sources {
		if _, ok := o.cache[s]; !ok {
			o.insertLocked(s, wrapResult(o.g.g, results[i]))
		}
	}
	return nil
}

// CachedSources returns how many per-source results are currently
// materialized (for observability and tests).
func (o *Oracle) CachedSources() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.cache)
}

// result returns the materialized result for s, building it at most
// once across concurrent callers (single-flight). pool bounds the
// landmark fan-out of a build triggered by this call.
func (o *Oracle) result(s int, pool *engine.Pool) (*Result, error) {
	if !o.isSource[s] {
		return nil, fmt.Errorf("msrp: %d is not an oracle source", s)
	}
	o.mu.Lock()
	if e, ok := o.cache[s]; ok {
		o.touchLocked(e)
		res := e.res
		o.mu.Unlock()
		o.hits.Add(1)
		return res, nil
	}
	if c, ok := o.inflight[s]; ok {
		o.mu.Unlock()
		o.misses.Add(1)
		<-c.done
		return c.res, nil
	}
	c := &oracleCall{done: make(chan struct{})}
	o.inflight[s] = c
	o.mu.Unlock()
	o.misses.Add(1)

	built := o.build(int32(s), pool)

	o.mu.Lock()
	if e, ok := o.cache[s]; ok {
		// A concurrent Warm landed while we were building: its entry is
		// already linked, so serve it and drop our build — inserting a
		// second entry for s would desynchronize the LRU list from the
		// cache map.
		o.touchLocked(e)
		c.res = e.res
	} else {
		c.res = built
		o.insertLocked(s, built)
	}
	delete(o.inflight, s)
	o.mu.Unlock()
	close(c.done)
	return c.res, nil
}

// build materializes one source against the shared preprocessing: the
// §7.1 small-near graph, exact landmark replacement lengths via the
// classical algorithm (sharded over pool), and the per-target combine.
// Deterministic in (graph, source set, options) alone.
func (o *Oracle) build(s int32, pool *engine.Pool) *Result {
	start := time.Now()
	ps := o.sh.NewPerSource(s)
	ps.BuildSmallNear()
	ps.ComputeLenSRClassicPool(pool)
	res := wrapResult(o.g.g, ps.Combine(nil))
	o.builds.Add(1)
	o.buildNanos.Add(int64(time.Since(start)))
	return res
}

// insertLocked adds s at the LRU head and evicts beyond the bound.
// Callers hold o.mu.
func (o *Oracle) insertLocked(s int, res *Result) {
	e := &lruEntry{s: s, res: res}
	o.cache[s] = e
	e.next = o.lruHead
	if o.lruHead != nil {
		o.lruHead.prev = e
	}
	o.lruHead = e
	if o.lruTail == nil {
		o.lruTail = e
	}
	if max := o.opts.MaxCachedSources; max > 0 {
		for len(o.cache) > max {
			victim := o.lruTail
			o.removeLocked(victim)
			delete(o.cache, victim.s)
			o.evictions.Add(1)
		}
	}
}

// touchLocked moves e to the LRU head. Callers hold o.mu.
func (o *Oracle) touchLocked(e *lruEntry) {
	if o.lruHead == e {
		return
	}
	o.removeLocked(e)
	e.prev = nil
	e.next = o.lruHead
	if o.lruHead != nil {
		o.lruHead.prev = e
	}
	o.lruHead = e
	if o.lruTail == nil {
		o.lruTail = e
	}
}

// removeLocked unlinks e from the LRU list. Callers hold o.mu.
func (o *Oracle) removeLocked(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		o.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		o.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}
