package msrp

import (
	"testing"
)

func testOptions(seed uint64) Options {
	o := DefaultOptions()
	o.Seed = seed
	o.SampleBoost = 12
	o.SuffixScale = 0.25
	return o
}

func TestQuickstartCycle(t *testing.T) {
	b := NewGraphBuilder(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := SingleSource(g, 0, testOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	// Canonical 0→2 path is 0-1-2; avoiding either edge forces the
	// 3-edge detour 0-4-3-2.
	lens := res.Lengths(2)
	if len(lens) != 2 || lens[0] != 3 || lens[1] != 3 {
		t.Fatalf("Lengths(2) = %v, want [3 3]", lens)
	}
	if res.Dist(2) != 2 || res.Source() != 0 {
		t.Fatal("basic accessors wrong")
	}
}

func TestAvoidEdgeQueries(t *testing.T) {
	g := GenerateCycle(8)
	res, err := SingleSource(g, 0, testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	path := res.PathTo(3)
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
	for i := 0; i+1 < len(path); i++ {
		got, err := res.AvoidEdge(3, int(path[i]), int(path[i+1]))
		if err != nil {
			t.Fatal(err)
		}
		if got != 5 { // the other way around C8
			t.Fatalf("AvoidEdge = %d, want 5", got)
		}
	}
	// Edge not on the path.
	if _, err := res.AvoidEdge(3, 5, 6); err == nil {
		t.Fatal("off-path edge accepted")
	}
	// Non-existent edge.
	if _, err := res.AvoidEdge(3, 0, 4); err == nil {
		t.Fatal("missing edge accepted")
	}
}

func TestMultiSourceAndOracle(t *testing.T) {
	g := GenerateRandomConnected(7, 40, 90)
	sources := []int{0, 10, 20}
	oracle, err := NewOracle(g, sources, testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sources {
		res := oracle.Result(s)
		if res == nil || res.Source() != s {
			t.Fatalf("missing result for source %d", s)
		}
		// Spot-check oracle answers against the Result API.
		path := res.PathTo(35)
		for i := 0; i+1 < len(path); i++ {
			fromRes := res.Lengths(35)[i]
			fromOracle, err := oracle.Query(s, 35, int(path[i]), int(path[i+1]))
			if err != nil {
				t.Fatal(err)
			}
			if fromRes != fromOracle {
				t.Fatalf("oracle disagrees with result: %d vs %d", fromOracle, fromRes)
			}
		}
	}
	if _, err := oracle.Query(5, 0, 0, 1); err == nil {
		t.Fatal("non-source query accepted")
	}
}

func TestNoPathSentinel(t *testing.T) {
	g := GeneratePath(5)
	res, err := SingleSource(g, 0, testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Lengths(4) {
		if v != NoPath {
			t.Fatalf("path graph must report NoPath, got %d", v)
		}
	}
}

func TestNilAndInvalidInputs(t *testing.T) {
	if _, err := SingleSource(nil, 0, DefaultOptions()); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := MultiSource(nil, []int{0}, DefaultOptions()); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := GenerateCycle(5)
	if _, err := SingleSource(g, 99, DefaultOptions()); err == nil {
		t.Fatal("bad source accepted")
	}
	bad := DefaultOptions()
	bad.SampleBoost = -1
	if _, err := SingleSource(g, 0, bad); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestGenerators(t *testing.T) {
	if g := GenerateGrid(3, 4); g.NumVertices() != 12 || g.NumEdges() != 17 {
		t.Fatal("grid wrong")
	}
	if g := GenerateCycleWithChords(1, 20, 5); g.NumEdges() != 25 {
		t.Fatal("chords wrong")
	}
	if g := GeneratePreferentialAttachment(1, 50, 2); !g.Internal().IsConnected() {
		t.Fatal("PA graph disconnected")
	}
	g := GenerateRandomConnected(9, 30, 60)
	if g.NumVertices() != 30 || g.NumEdges() != 60 {
		t.Fatal("random connected wrong")
	}
	u, v := g.EdgeEndpoints(0)
	if !g.HasEdge(u, v) {
		t.Fatal("edge endpoints inconsistent")
	}
}

func TestExhaustiveNearMode(t *testing.T) {
	g := GenerateRandomConnected(11, 35, 70)
	det := DefaultOptions()
	det.ExhaustiveNear = true
	a, err := SingleSource(g, 0, det)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := SingleSource(g, 0, testOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 35; tt++ {
		la, lb := a.Lengths(tt), bst.Lengths(tt)
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("deterministic and boosted modes disagree at t=%d i=%d: %d vs %d",
					tt, i, la[i], lb[i])
			}
		}
	}
}

func TestTrackPathsPublicAPI(t *testing.T) {
	g := GenerateCycleWithChords(3, 40, 4)
	opts := testOptions(20)
	opts.TrackPaths = true
	res, err := SingleSource(g, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt < g.NumVertices(); tt++ {
		lens := res.Lengths(tt)
		for i, l := range lens {
			path, err := res.ReplacementPath(tt, i)
			if err != nil {
				t.Fatal(err)
			}
			if l == NoPath {
				if path != nil {
					t.Fatalf("path for NoPath answer t=%d i=%d", tt, i)
				}
				continue
			}
			if int32(len(path)-1) != l {
				t.Fatalf("t=%d i=%d: path length %d, reported %d", tt, i, len(path)-1, l)
			}
		}
	}
	// Without TrackPaths, ReplacementPath must refuse.
	plain, err := SingleSource(g, 0, testOptions(21))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.ReplacementPath(1, 0); err == nil {
		t.Fatal("expected error without TrackPaths")
	}
}
