package graph

import (
	"fmt"

	"msrp/internal/xrand"
)

// This file contains the synthetic workload generators used by the test
// suite and the benchmark harness. The paper evaluates nothing
// empirically, so these families were chosen to exercise the regimes its
// analysis distinguishes: sparse expanders (Erdős–Rényi) where suffixes
// are short, high-diameter graphs (grids, cycles) where the far-edge
// machinery dominates, and bridge-heavy graphs (barbells, trees+chords)
// where replacement paths may not exist.

// Path returns the path graph 0-1-2-...-(n-1).
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(b, i, i+1)
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: Cycle(%d) needs n >= 3", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		mustAdd(b, i, (i+1)%n)
	}
	return b.MustBuild()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			mustAdd(b, i, j)
		}
	}
	return b.MustBuild()
}

// Star returns the star K_{1,n-1} centered at vertex 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		mustAdd(b, 0, i)
	}
	return b.MustBuild()
}

// Grid returns the rows x cols grid graph. Vertex (r, c) has index
// r*cols + c. Grids have diameter Θ(rows+cols), which activates every
// far-edge band of the algorithm.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(b, at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				mustAdd(b, at(r, c), at(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// GNM returns an Erdős–Rényi G(n, m) graph: m distinct edges drawn
// uniformly from all simple pairs. It panics if m exceeds the number of
// available pairs.
func GNM(rng *xrand.RNG, n, m int) *Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("graph: GNM(%d,%d) exceeds %d possible edges", n, m, maxEdges))
	}
	b := NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	for len(seen) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		mustAdd(b, u, v)
	}
	return b.MustBuild()
}

// RandomConnected returns a connected random graph with n vertices and
// exactly m >= n-1 edges: a uniform random recursive tree provides
// connectivity and the remaining m-(n-1) edges are drawn uniformly from
// the unused pairs. Replacement paths are only interesting on connected
// graphs, so this is the default benchmark workload.
func RandomConnected(rng *xrand.RNG, n, m int) *Graph {
	if m < n-1 {
		panic(fmt.Sprintf("graph: RandomConnected(%d,%d) cannot be connected", n, m))
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("graph: RandomConnected(%d,%d) exceeds %d possible edges", n, m, maxEdges))
	}
	b := NewBuilder(n)
	seen := make(map[int64]struct{}, m)
	add := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		mustAdd(b, u, v)
		return true
	}
	// Random recursive tree: attach vertex i to a uniform earlier vertex.
	perm := rng.Perm(n) // random labelling so vertex 0 is not special
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for len(seen) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			add(u, v)
		}
	}
	return b.MustBuild()
}

// Barbell returns two cliques K_k connected by a path with bridgeLen
// edges. Every edge of the bridge path is a cut edge, so replacement
// paths across it do not exist — the generator exists to test the
// "no replacement path" (+inf) behaviour.
func Barbell(k, bridgeLen int) *Graph {
	if k < 1 || bridgeLen < 1 {
		panic(fmt.Sprintf("graph: Barbell(%d,%d) invalid", k, bridgeLen))
	}
	n := 2*k + bridgeLen - 1
	b := NewBuilder(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			mustAdd(b, i, j)
			mustAdd(b, n-1-i, n-1-j)
		}
	}
	// Bridge path from vertex k-1 to vertex n-k.
	prev := k - 1
	for i := 0; i < bridgeLen; i++ {
		next := k + i
		if i == bridgeLen-1 {
			next = n - k
		}
		mustAdd(b, prev, next)
		prev = next
	}
	return b.MustBuild()
}

// CycleWithChords returns a cycle on n vertices plus `chords` random
// chords. High diameter with occasional shortcuts: the workload where
// replacement-path suffixes are long and the leveled landmark sets earn
// their keep.
func CycleWithChords(rng *xrand.RNG, n, chords int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: CycleWithChords(%d,...) needs n >= 3", n))
	}
	b := NewBuilder(n)
	seen := make(map[int64]struct{}, n+chords)
	add := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		mustAdd(b, u, v)
		return true
	}
	for i := 0; i < n; i++ {
		add(i, (i+1)%n)
	}
	placed := 0
	for placed < chords {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if add(u, v) {
			placed++
		}
	}
	return b.MustBuild()
}

// PathWithChords returns the path 0-1-…-(n-1) plus `chords` random
// chords. Like CycleWithChords but with bridge edges at the ends: path
// edges outside every chord's span have no replacement path, so the
// family exercises the NoPath machinery and the far-edge bands at once.
func PathWithChords(rng *xrand.RNG, n, chords int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: PathWithChords(%d,...) needs n >= 2", n))
	}
	b := NewBuilder(n)
	addChordedPath(b, rng, n, chords)
	return b.MustBuild()
}

// addChordedPath adds the path 0-1-…-(pathN-1) plus `chords` uniformly
// random deduplicated chords among its vertices to b (whose vertex
// count may exceed pathN). It returns the deduplicating add function so
// callers can attach further edges without colliding with the chords.
func addChordedPath(b *Builder, rng *xrand.RNG, pathN, chords int) func(u, v int) bool {
	n := b.NumVertices()
	seen := make(map[int64]struct{}, n+chords)
	add := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		mustAdd(b, u, v)
		return true
	}
	for i := 0; i+1 < pathN; i++ {
		add(i, i+1)
	}
	maxChords := int(int64(pathN)*int64(pathN-1)/2) - (pathN - 1)
	if chords > maxChords {
		panic(fmt.Sprintf("graph: %d chords exceed the %d possible on a %d-path", chords, maxChords, pathN))
	}
	placed := 0
	for placed < chords {
		u, v := rng.Intn(pathN), rng.Intn(pathN)
		if u == v {
			continue
		}
		if add(u, v) {
			placed++
		}
	}
	return add
}

// PreferentialAttachment returns a Barabási–Albert style graph: vertices
// arrive one at a time and connect to k distinct existing vertices
// chosen proportionally to degree. Produces the heavy-tailed degree
// distributions typical of real networks.
func PreferentialAttachment(rng *xrand.RNG, n, k int) *Graph {
	if k < 1 || n < k+1 {
		panic(fmt.Sprintf("graph: PreferentialAttachment(%d,%d) invalid", n, k))
	}
	b := NewBuilder(n)
	// targets is the degree-weighted multiset of endpoints: each edge
	// contributes both endpoints, so uniform sampling from it is
	// proportional to degree.
	targets := make([]int, 0, 2*k*n)
	// Seed with a (k+1)-clique so early vertices have degree >= k.
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			mustAdd(b, i, j)
			targets = append(targets, i, j)
		}
	}
	chosen := make(map[int]struct{}, k)
	for v := k + 1; v < n; v++ {
		clear(chosen)
		for len(chosen) < k {
			u := targets[rng.Intn(len(targets))]
			chosen[u] = struct{}{}
		}
		for u := range chosen {
			mustAdd(b, v, u)
			targets = append(targets, v, u)
		}
	}
	return b.MustBuild()
}

// Caterpillar returns a path of length spineLen with legsPerSpine leaf
// vertices attached to every spine vertex. Trees are the worst case for
// replacement paths (none exist); used in failure-injection tests.
func Caterpillar(spineLen, legsPerSpine int) *Graph {
	n := spineLen * (1 + legsPerSpine)
	b := NewBuilder(n)
	for i := 0; i+1 < spineLen; i++ {
		mustAdd(b, i, i+1)
	}
	next := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPerSpine; l++ {
			mustAdd(b, i, next)
			next++
		}
	}
	return b.MustBuild()
}

// PathStarMix returns the chorded path 0-1-…-(pathN-1) whose head
// (vertex 0) is additionally the hub of a star with `leaves` extra
// leaves (ids pathN … pathN+leaves-1). A source deep on the path has
// Θ(pathN)-long canonical paths and a full complement of small
// replacement paths feeding the §8.2.1 seed table; a source on a leaf
// has a depth-1 entry into the same structure and almost no work of
// its own. Mixing the two produces the maximally skewed per-source
// workload — the family the engine's work stealing and the sharded
// seed-table build are measured on (E13).
func PathStarMix(rng *xrand.RNG, pathN, chords, leaves int) *Graph {
	if pathN < 2 {
		panic(fmt.Sprintf("graph: PathStarMix(%d,...) needs pathN >= 2", pathN))
	}
	b := NewBuilder(pathN + leaves)
	add := addChordedPath(b, rng, pathN, chords)
	for l := 0; l < leaves; l++ {
		add(0, pathN+l)
	}
	return b.MustBuild()
}

func mustAdd(b *Builder, u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}
