package graph

// Structural queries used by tests, workload validation, and the
// benchmark harness. These are deliberately simple O(n+m) or O(nm)
// reference implementations; the algorithm packages have their own
// optimized traversals.

// Components labels every vertex with a connected-component id in
// [0, count) and returns the labels and the component count. Labels are
// assigned in order of the smallest vertex in each component.
func (g *Graph) Components() (label []int32, count int) {
	label = make([]int32, g.n)
	for i := range label {
		label[i] = -1
	}
	queue := make([]int32, 0, g.n)
	for v := 0; v < g.n; v++ {
		if label[v] >= 0 {
			continue
		}
		id := int32(count)
		count++
		label[v] = id
		queue = append(queue[:0], int32(v))
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			vtx, _ := g.Neighbors(int(x))
			for _, w := range vtx {
				if label[w] < 0 {
					label[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return label, count
}

// IsConnected reports whether g is connected. The empty graph and the
// single-vertex graph are connected.
func (g *Graph) IsConnected() bool {
	_, c := g.Components()
	return c <= 1
}

// EccentricityFrom returns the maximum finite BFS distance from v, and
// whether every vertex was reachable.
func (g *Graph) EccentricityFrom(v int) (ecc int, allReachable bool) {
	dist := make([]int32, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(v))
	reached := 1
	for len(queue) > 0 {
		x := queue[0]
		queue = queue[1:]
		if int(dist[x]) > ecc {
			ecc = int(dist[x])
		}
		vtx, _ := g.Neighbors(int(x))
		for _, w := range vtx {
			if dist[w] < 0 {
				dist[w] = dist[x] + 1
				reached++
				queue = append(queue, w)
			}
		}
	}
	return ecc, reached == g.n
}

// Diameter returns the exact diameter by running BFS from every vertex:
// O(nm), intended for tests and workload reporting only. Disconnected
// graphs report the largest eccentricity within any component.
func (g *Graph) Diameter() int {
	d := 0
	for v := 0; v < g.n; v++ {
		ecc, _ := g.EccentricityFrom(v)
		if ecc > d {
			d = ecc
		}
	}
	return d
}

// Bridges returns the identifiers of all cut edges, found with an
// iterative Tarjan low-link DFS. Replacement paths across a bridge do
// not exist; tests use this to predict which queries must return +inf.
func (g *Graph) Bridges() []int32 {
	disc := make([]int32, g.n) // discovery time, 0 = unvisited
	low := make([]int32, g.n)  // low-link value
	parentEdge := make([]int32, g.n)
	var bridges []int32
	timer := int32(0)

	type frame struct {
		v    int32
		next int32 // index into v's adjacency not yet explored
	}
	stack := make([]frame, 0, 64)
	for root := 0; root < g.n; root++ {
		if disc[root] != 0 {
			continue
		}
		timer++
		disc[root], low[root] = timer, timer
		parentEdge[root] = -1
		stack = append(stack[:0], frame{v: int32(root)})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			vtx, ids := g.Neighbors(int(v))
			if int(f.next) < len(vtx) {
				w, e := vtx[f.next], ids[f.next]
				f.next++
				if disc[w] == 0 {
					timer++
					disc[w], low[w] = timer, timer
					parentEdge[w] = e
					stack = append(stack, frame{v: w})
				} else if e != parentEdge[v] {
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := stack[len(stack)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] > disc[p] {
					bridges = append(bridges, parentEdge[v])
				}
			}
		}
	}
	return bridges
}

// DegreeStats returns the minimum, maximum and mean degree.
func (g *Graph) DegreeStats() (minDeg, maxDeg int, mean float64) {
	if g.n == 0 {
		return 0, 0, 0
	}
	minDeg = g.Degree(0)
	for v := 0; v < g.n; v++ {
		d := g.Degree(v)
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean = float64(2*g.NumEdges()) / float64(g.n)
	return minDeg, maxDeg, mean
}
