package graph

import (
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"msrp/internal/xrand"
)

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).MustBuild()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !g.IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestSingleEdge(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u, v := g.EdgeEndpoints(0)
	if u != 0 || v != 1 {
		t.Fatalf("endpoints = (%d,%d), want (0,1)", u, v)
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatal("bad degrees")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 0) {
		t.Fatal("HasEdge(0,0) true")
	}
}

func TestSelfLoopRejected(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(1, 1); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("err = %v, want ErrSelfLoop", err)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	b := NewBuilder(3)
	for _, e := range [][2]int{{-1, 0}, {0, 3}, {5, 1}} {
		if err := b.AddEdge(e[0], e[1]); !errors.Is(err, ErrVertexRange) {
			t.Fatalf("AddEdge(%d,%d) err = %v, want ErrVertexRange", e[0], e[1], err)
		}
	}
}

func TestParallelEdgeRejected(t *testing.T) {
	b := NewBuilder(3)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 0) // same undirected edge
	if _, err := b.Build(); !errors.Is(err, ErrParallelEdge) {
		t.Fatalf("Build err = %v, want ErrParallelEdge", err)
	}
}

func TestEdgeIDsCanonical(t *testing.T) {
	// Two builders adding the same edges in different orders must produce
	// identical graphs (same edge numbering).
	edges := [][2]int{{3, 1}, {0, 2}, {2, 3}, {0, 1}}
	b1 := NewBuilder(4)
	for _, e := range edges {
		_ = b1.AddEdge(e[0], e[1])
	}
	b2 := NewBuilder(4)
	for i := len(edges) - 1; i >= 0; i-- {
		_ = b2.AddEdge(edges[i][1], edges[i][0])
	}
	g1, g2 := b1.MustBuild(), b2.MustBuild()
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatal("edge counts differ")
	}
	for i := 0; i < g1.NumEdges(); i++ {
		u1, v1 := g1.EdgeEndpoints(i)
		u2, v2 := g2.EdgeEndpoints(i)
		if u1 != u2 || v1 != v2 {
			t.Fatalf("edge %d: (%d,%d) vs (%d,%d)", i, u1, v1, u2, v2)
		}
	}
}

func TestNeighborsSortedAndConsistent(t *testing.T) {
	rng := xrand.New(1)
	g := GNM(rng, 80, 300)
	for v := 0; v < g.NumVertices(); v++ {
		vtx, ids := g.Neighbors(v)
		if !sort.SliceIsSorted(vtx, func(i, j int) bool { return vtx[i] < vtx[j] }) {
			t.Fatalf("neighbors of %d not sorted: %v", v, vtx)
		}
		for i, w := range vtx {
			e := int(ids[i])
			a, b := g.EdgeEndpoints(e)
			if !(a == int32(v) && b == w) && !(a == w && b == int32(v)) {
				t.Fatalf("edge id %d inconsistent for %d-%d", e, v, w)
			}
			if g.OtherEnd(e, int32(v)) != w {
				t.Fatalf("OtherEnd mismatch for edge %d", e)
			}
		}
	}
}

func TestDegreeSum(t *testing.T) {
	rng := xrand.New(2)
	g := GNM(rng, 60, 200)
	sum := 0
	for v := 0; v < g.NumVertices(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.NumEdges() {
		t.Fatalf("degree sum %d != 2m = %d", sum, 2*g.NumEdges())
	}
}

func TestEdgeIDLookup(t *testing.T) {
	rng := xrand.New(3)
	g := GNM(rng, 50, 150)
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.EdgeEndpoints(e)
		id, ok := g.EdgeID(int(u), int(v))
		if !ok || id != int32(e) {
			t.Fatalf("EdgeID(%d,%d) = %d,%v want %d", u, v, id, ok, e)
		}
		id, ok = g.EdgeID(int(v), int(u))
		if !ok || id != int32(e) {
			t.Fatalf("EdgeID(%d,%d) reversed = %d,%v want %d", v, u, id, ok, e)
		}
	}
	if _, ok := g.EdgeID(0, 0); ok {
		t.Fatal("EdgeID(0,0) found")
	}
}

func TestWithoutEdge(t *testing.T) {
	g := Cycle(5)
	h := g.WithoutEdge(2)
	if h.NumEdges() != 4 {
		t.Fatalf("m = %d after deletion, want 4", h.NumEdges())
	}
	u, v := g.EdgeEndpoints(2)
	if h.HasEdge(int(u), int(v)) {
		t.Fatalf("edge {%d,%d} still present", u, v)
	}
	if !h.IsConnected() {
		t.Fatal("cycle minus one edge must stay connected")
	}
}

func TestGenerators(t *testing.T) {
	rng := xrand.New(9)
	cases := []struct {
		name      string
		g         *Graph
		n, m      int
		connected bool
	}{
		{"path", Path(10), 10, 9, true},
		{"cycle", Cycle(7), 7, 7, true},
		{"complete", Complete(6), 6, 15, true},
		{"star", Star(8), 8, 7, true},
		{"grid", Grid(4, 5), 20, 31, true},
		{"barbell", Barbell(4, 3), 10, 15, true},
		{"caterpillar", Caterpillar(5, 2), 15, 14, true},
		{"randconn", RandomConnected(rng, 40, 80), 40, 80, true},
		{"cyclechords", CycleWithChords(rng, 30, 10), 30, 40, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.NumVertices() != tc.n {
				t.Fatalf("n = %d, want %d", tc.g.NumVertices(), tc.n)
			}
			if tc.g.NumEdges() != tc.m {
				t.Fatalf("m = %d, want %d", tc.g.NumEdges(), tc.m)
			}
			if tc.g.IsConnected() != tc.connected {
				t.Fatalf("connected = %v, want %v", tc.g.IsConnected(), tc.connected)
			}
		})
	}
}

func TestGNMEdgeCount(t *testing.T) {
	rng := xrand.New(4)
	g := GNM(rng, 100, 450)
	if g.NumEdges() != 450 {
		t.Fatalf("m = %d", g.NumEdges())
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := xrand.New(5)
	g := PreferentialAttachment(rng, 200, 3)
	if g.NumVertices() != 200 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if !g.IsConnected() {
		t.Fatal("PA graph should be connected")
	}
	// Every non-seed vertex has degree >= 3.
	for v := 4; v < 200; v++ {
		if g.Degree(v) < 3 {
			t.Fatalf("vertex %d degree %d < 3", v, g.Degree(v))
		}
	}
	_, maxDeg, _ := g.DegreeStats()
	if maxDeg < 10 {
		t.Fatalf("expected a hub, max degree only %d", maxDeg)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(6)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(4, 5)
	g := b.MustBuild()
	label, count := g.Components()
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if label[0] != label[1] || label[1] != label[2] {
		t.Fatal("0,1,2 should share a component")
	}
	if label[3] == label[0] || label[3] == label[4] {
		t.Fatal("3 should be isolated")
	}
	if label[4] != label[5] {
		t.Fatal("4,5 should share a component")
	}
}

func TestDiameter(t *testing.T) {
	if d := Path(10).Diameter(); d != 9 {
		t.Fatalf("path diameter %d, want 9", d)
	}
	if d := Cycle(10).Diameter(); d != 5 {
		t.Fatalf("cycle diameter %d, want 5", d)
	}
	if d := Complete(5).Diameter(); d != 1 {
		t.Fatalf("clique diameter %d, want 1", d)
	}
	if d := Grid(3, 4).Diameter(); d != 5 {
		t.Fatalf("grid diameter %d, want 5", d)
	}
}

func TestBridges(t *testing.T) {
	// A cycle has no bridges; a path is all bridges.
	if bs := Cycle(8).Bridges(); len(bs) != 0 {
		t.Fatalf("cycle bridges = %v", bs)
	}
	if bs := Path(8).Bridges(); len(bs) != 7 {
		t.Fatalf("path bridges = %d, want 7", len(bs))
	}
	// Barbell(3, 2): the 2-edge bridge path is exactly the bridge set.
	g := Barbell(3, 2)
	bs := g.Bridges()
	if len(bs) != 2 {
		t.Fatalf("barbell bridges = %d, want 2", len(bs))
	}
	for _, e := range bs {
		u, v := g.EdgeEndpoints(int(e))
		// Removing a bridge must disconnect the graph.
		if g.WithoutEdge(int(e)).IsConnected() {
			t.Fatalf("removing reported bridge {%d,%d} left graph connected", u, v)
		}
	}
}

func TestBridgesMatchBruteForce(t *testing.T) {
	rng := xrand.New(6)
	for trial := 0; trial < 20; trial++ {
		g := GNM(rng, 25, 30+rng.Intn(20))
		got := map[int32]bool{}
		for _, e := range g.Bridges() {
			got[e] = true
		}
		_, compBefore := g.Components()
		for e := 0; e < g.NumEdges(); e++ {
			_, compAfter := g.WithoutEdge(e).Components()
			isBridge := compAfter > compBefore
			if got[int32(e)] != isBridge {
				t.Fatalf("trial %d edge %d: Bridges says %v, brute force says %v",
					trial, e, got[int32(e)], isBridge)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Cycle(5)
	c := g.Clone()
	if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone differs")
	}
	for e := 0; e < g.NumEdges(); e++ {
		u1, v1 := g.EdgeEndpoints(e)
		u2, v2 := c.EdgeEndpoints(e)
		if u1 != u2 || v1 != v2 {
			t.Fatal("clone edges differ")
		}
	}
}

func TestQuickDegreeSumInvariant(t *testing.T) {
	rng := xrand.New(7)
	f := func(seed uint32, nRaw, mRaw uint16) bool {
		n := int(nRaw%50) + 2
		maxM := n * (n - 1) / 2
		m := int(mRaw) % (maxM + 1)
		g := GNM(xrand.New(uint64(seed)), n, m)
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		_ = rng
		return sum == 2*g.NumEdges() && g.NumEdges() == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEdgeIDRoundTrip(t *testing.T) {
	f := func(seed uint32) bool {
		g := GNM(xrand.New(uint64(seed)), 30, 60)
		for e := 0; e < g.NumEdges(); e++ {
			u, v := g.EdgeEndpoints(e)
			id, ok := g.EdgeID(int(u), int(v))
			if !ok || id != int32(e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildGNM(b *testing.B) {
	rng := xrand.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = GNM(rng, 1000, 4000)
	}
}

// highDegreeGraph builds a graph with one hub adjacent to every other
// vertex (degree n−1, far past the insertion-sort cutover) plus a
// shuffled sprinkling of rim edges, with edge insertion order permuted
// so the hub's adjacency needs real sorting work in BuildCSR.
func highDegreeGraph(t testing.TB, n, hub int) *Graph {
	rng := xrand.New(uint64(n + hub))
	type edge struct{ u, v int }
	var edges []edge
	for v := 0; v < n; v++ {
		if v != hub {
			edges = append(edges, edge{hub, v})
		}
	}
	for i := 0; i+1 < n; i += 7 {
		if i != hub && i+1 != hub {
			edges = append(edges, edge{i, i + 1})
		}
	}
	for i := len(edges) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		edges[i], edges[j] = edges[j], edges[i]
	}
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.u, e.v); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSortAdjHighDegree checks the sort.Sort cutover path: a hub vertex
// of degree far past sortAdjInsertionMax (and a mid-path vertex whose
// list interleaves lower and upper runs) come out of BuildCSR with the
// same sorted adjacency and lockstep edge ids the insertion-sort path
// produces for short lists.
func TestSortAdjHighDegree(t *testing.T) {
	const n = 500
	for _, hub := range []int{0, n / 2, n - 1} {
		g := highDegreeGraph(t, n, hub)
		for v := 0; v < n; v++ {
			nbrs, ids := g.Neighbors(v)
			if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] }) {
				t.Fatalf("hub=%d: adjacency of %d not sorted", hub, v)
			}
			for i, w := range nbrs {
				u, x := int(g.eu[ids[i]]), int(g.ev[ids[i]])
				if !(u == v && x == int(w)) && !(x == v && u == int(w)) {
					t.Fatalf("hub=%d: eid %d of vertex %d does not connect {%d,%d}",
						hub, ids[i], v, v, w)
				}
			}
		}
	}
}

// TestSortAdjCutoverMatchesInsertion runs both sort paths over the same
// shuffled pairs and demands identical output — the cutover must be
// invisible.
func TestSortAdjCutoverMatchesInsertion(t *testing.T) {
	rng := xrand.New(99)
	for _, size := range []int{0, 1, 2, sortAdjInsertionMax, sortAdjInsertionMax + 1, 200} {
		// Distinct shuffled neighbor ids (adjacency lists of a simple
		// graph never repeat a neighbor).
		nbr := make([]int32, size)
		eid := make([]int32, size)
		for i := range nbr {
			nbr[i] = int32(3*i + 1)
			eid[i] = int32(i)
		}
		for i := size - 1; i > 0; i-- {
			j := rng.Intn(i + 1)
			nbr[i], nbr[j] = nbr[j], nbr[i]
			eid[i], eid[j] = eid[j], eid[i]
		}
		wantNbr := append([]int32(nil), nbr...)
		wantEid := append([]int32(nil), eid...)
		// Insertion-sort reference (the short-list path, run manually).
		for i := 1; i < len(wantNbr); i++ {
			nv, ne := wantNbr[i], wantEid[i]
			j := i - 1
			for j >= 0 && wantNbr[j] > nv {
				wantNbr[j+1], wantEid[j+1] = wantNbr[j], wantEid[j]
				j--
			}
			wantNbr[j+1], wantEid[j+1] = nv, ne
		}
		sortAdj(nbr, eid)
		for i := range nbr {
			if nbr[i] != wantNbr[i] || eid[i] != wantEid[i] {
				t.Fatalf("size %d: position %d = (%d,%d), want (%d,%d)",
					size, i, nbr[i], eid[i], wantNbr[i], wantEid[i])
			}
		}
	}
}

// BenchmarkBuildHighDegree measures BuildCSR on the adversarial
// star-hub family the sortAdj cutover exists for (the hub's list was
// O(d²) under pure insertion sort).
func BenchmarkBuildHighDegree(b *testing.B) {
	const n = 4000
	g := highDegreeGraph(b, n, n/2) // warm path outside the loop
	_ = g
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = highDegreeGraph(b, n, n/2)
	}
}

func BenchmarkNeighborIteration(b *testing.B) {
	g := GNM(xrand.New(1), 1000, 8000)
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.NumVertices(); v++ {
			vtx, _ := g.Neighbors(v)
			for _, w := range vtx {
				sink += w
			}
		}
	}
	_ = sink
}
