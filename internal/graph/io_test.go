package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"msrp/internal/xrand"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 10; trial++ {
		g := GNM(rng, 30+rng.Intn(20), 40+rng.Intn(60))
		var buf bytes.Buffer
		if err := Encode(g, &buf); err != nil {
			t.Fatal(err)
		}
		h, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed size: (%d,%d) -> (%d,%d)",
				g.NumVertices(), g.NumEdges(), h.NumVertices(), h.NumEdges())
		}
		for e := 0; e < g.NumEdges(); e++ {
			u1, v1 := g.EdgeEndpoints(e)
			u2, v2 := h.EdgeEndpoints(e)
			if u1 != u2 || v1 != v2 {
				t.Fatalf("edge %d changed: (%d,%d) -> (%d,%d)", e, u1, v1, u2, v2)
			}
		}
	}
}

func TestDecodeCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
p msrp 3 2

e 0 1
# another comment
e 1 2
`
	g, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string]string{
		"no problem line":    "e 0 1\n",
		"bad record":         "p msrp 2 1\nx 0 1\n",
		"bad counts":         "p msrp 2 5\ne 0 1\n",
		"self loop":          "p msrp 2 1\ne 1 1\n",
		"out of range":       "p msrp 2 1\ne 0 5\n",
		"duplicate edge":     "p msrp 2 2\ne 0 1\ne 1 0\n",
		"double problem":     "p msrp 2 1\np msrp 2 1\ne 0 1\n",
		"bad vertex count":   "p msrp x 1\ne 0 1\n",
		"bad edge field":     "p msrp 2 1\ne 0 y\n",
		"short edge line":    "p msrp 2 1\ne 0\n",
		"wrong problem type": "p foo 2 1\ne 0 1\n",
		"empty input":        "",
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("%s: err = %v, want ErrBadFormat", name, err)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g := Grid(3, 3)
	var a, b bytes.Buffer
	if err := Encode(g, &a); err != nil {
		t.Fatal(err)
	}
	if err := Encode(g, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Encode not deterministic")
	}
	if !strings.HasPrefix(a.String(), "p msrp 9 12\n") {
		t.Fatalf("unexpected header: %q", a.String()[:20])
	}
}
