package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a simplified DIMACS-like format:
//
//	# comment lines start with '#'
//	p msrp <n> <m>
//	e <u> <v>            (m lines, 0-based vertex ids)
//
// It is line-oriented and diff-friendly; the CLI tools read and write it.

// ErrBadFormat is wrapped by all Decode parse failures.
var ErrBadFormat = errors.New("graph: malformed input")

// Encode writes g to w in the text format.
func Encode(g *Graph, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p msrp %d %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	for i := 0; i < g.NumEdges(); i++ {
		u, v := g.EdgeEndpoints(i)
		if _, err := fmt.Fprintf(bw, "e %d %d\n", u, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a graph in the text format from r.
func Decode(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	var b *Builder
	edges, wantEdges := 0, -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if b != nil {
				return nil, fmt.Errorf("%w: duplicate problem line at line %d", ErrBadFormat, line)
			}
			if len(fields) != 4 || fields[1] != "msrp" {
				return nil, fmt.Errorf("%w: bad problem line at line %d", ErrBadFormat, line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("%w: bad vertex count at line %d", ErrBadFormat, line)
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil || m < 0 {
				return nil, fmt.Errorf("%w: bad edge count at line %d", ErrBadFormat, line)
			}
			b = NewBuilder(n)
			wantEdges = m
		case "e":
			if b == nil {
				return nil, fmt.Errorf("%w: edge before problem line at line %d", ErrBadFormat, line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("%w: bad edge line at line %d", ErrBadFormat, line)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("%w: bad endpoint at line %d", ErrBadFormat, line)
			}
			v, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("%w: bad endpoint at line %d", ErrBadFormat, line)
			}
			if err := b.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrBadFormat, line, err)
			}
			edges++
		default:
			return nil, fmt.Errorf("%w: unknown record %q at line %d", ErrBadFormat, fields[0], line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("%w: missing problem line", ErrBadFormat)
	}
	if edges != wantEdges {
		return nil, fmt.Errorf("%w: expected %d edges, found %d", ErrBadFormat, wantEdges, edges)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	return g, nil
}
