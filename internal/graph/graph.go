// Package graph provides the undirected, unweighted graph substrate used
// by every algorithm in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form: one flat
// neighbor array indexed by per-vertex offsets, with a parallel array of
// edge identifiers. Edge identifiers are stable small integers in
// [0, m), which lets algorithms key per-edge state (replacement-path
// lengths, avoidance checks) by dense arrays instead of maps. The paper
// (Gupta–Jain–Modi 2020) works exclusively with simple undirected
// unweighted graphs, so the builder rejects self-loops and parallel
// edges.
//
// A Graph is immutable after construction and safe for concurrent
// readers.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Common construction errors.
var (
	ErrSelfLoop      = errors.New("graph: self-loop rejected")
	ErrVertexRange   = errors.New("graph: vertex out of range")
	ErrParallelEdge  = errors.New("graph: parallel edge rejected")
	ErrTooManyMerges = errors.New("graph: vertex count exceeds int32 range")
)

// Graph is an immutable simple undirected unweighted graph in CSR form.
// The zero value is the empty graph with no vertices.
type Graph struct {
	n int

	// Edge i connects eu[i] and ev[i] with eu[i] < ev[i].
	eu, ev []int32

	// CSR adjacency: the neighbors of v are nbr[off[v]:off[v+1]], and
	// eid[off[v]:off[v+1]] are the identifiers of the connecting edges.
	// Neighbor lists are sorted ascending, which makes every traversal
	// in the repository deterministic.
	off []int32
	nbr []int32
	eid []int32
}

// NumVertices returns n, the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns m, the number of undirected edges.
func (g *Graph) NumEdges() int { return len(g.eu) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	return int(g.off[v+1] - g.off[v])
}

// Neighbors returns the sorted neighbor list of v and the parallel slice
// of edge identifiers. The returned slices alias the graph's internal
// storage and must not be modified.
func (g *Graph) Neighbors(v int) (vertices, edgeIDs []int32) {
	lo, hi := g.off[v], g.off[v+1]
	return g.nbr[lo:hi], g.eid[lo:hi]
}

// EdgeEndpoints returns the endpoints (u, v) of edge e with u < v.
func (g *Graph) EdgeEndpoints(e int) (u, v int32) {
	return g.eu[e], g.ev[e]
}

// OtherEnd returns the endpoint of edge e that is not x. It panics if x
// is not an endpoint of e, which always indicates a programming error in
// this repository rather than a recoverable condition.
func (g *Graph) OtherEnd(e int, x int32) int32 {
	switch x {
	case g.eu[e]:
		return g.ev[e]
	case g.ev[e]:
		return g.eu[e]
	}
	panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %d", x, e))
}

// HasEdge reports whether an edge between u and v exists, by binary
// search in the sorted neighbor list of the lower-degree endpoint.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeID(u, v)
	return ok
}

// EdgeID returns the identifier of the edge between u and v, if any.
func (g *Graph) EdgeID(u, v int) (int32, bool) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return -1, false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	vtx, ids := g.Neighbors(u)
	i := sort.Search(len(vtx), func(i int) bool { return vtx[i] >= int32(v) })
	if i < len(vtx) && vtx[i] == int32(v) {
		return ids[i], true
	}
	return -1, false
}

// Builder accumulates edges and produces an immutable Graph. The zero
// value is not usable; construct with NewBuilder.
type Builder struct {
	n      int
	us, vs []int32
}

// NewBuilder returns a builder for a graph on n vertices. It panics if
// n is negative or exceeds the int32 vertex-id range.
func NewBuilder(n int) *Builder {
	if n < 0 || int64(n) >= int64(1)<<31 {
		panic(ErrTooManyMerges)
	}
	return &Builder{n: n}
}

// NumVertices returns the vertex count the builder was created with.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the undirected edge {u, v}. Duplicate edges are
// detected at Build time (detecting them here would cost a hash probe
// per insertion; generators bulk-load millions of edges).
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		return fmt.Errorf("%w: edge {%d,%d} with n=%d", ErrVertexRange, u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("%w: {%d,%d}", ErrSelfLoop, u, v)
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
	return nil
}

// Build finalizes the builder into an immutable Graph. It returns
// ErrParallelEdge if the same undirected edge was added twice. The
// builder may be reused afterwards (its edges are copied out).
func (b *Builder) Build() (*Graph, error) {
	m := len(b.us)
	// Sort edges by (u, v) to canonicalize edge identifiers and detect
	// duplicates. Edge IDs are assigned in sorted order, so a graph's
	// edge numbering depends only on its edge set, not insertion order.
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool {
		i, j := idx[a], idx[c]
		if b.us[i] != b.us[j] {
			return b.us[i] < b.us[j]
		}
		return b.vs[i] < b.vs[j]
	})

	g := &Graph{
		n:  b.n,
		eu: make([]int32, m),
		ev: make([]int32, m),
	}
	for k, i := range idx {
		g.eu[k], g.ev[k] = b.us[i], b.vs[i]
		if k > 0 && g.eu[k] == g.eu[k-1] && g.ev[k] == g.ev[k-1] {
			return nil, fmt.Errorf("%w: {%d,%d}", ErrParallelEdge, g.eu[k], g.ev[k])
		}
	}

	// Counting sort into CSR. Each undirected edge appears in both
	// endpoint lists.
	g.off = make([]int32, b.n+1)
	for i := 0; i < m; i++ {
		g.off[g.eu[i]+1]++
		g.off[g.ev[i]+1]++
	}
	for v := 0; v < b.n; v++ {
		g.off[v+1] += g.off[v]
	}
	g.nbr = make([]int32, 2*m)
	g.eid = make([]int32, 2*m)
	cursor := make([]int32, b.n)
	copy(cursor, g.off[:b.n])
	for i := 0; i < m; i++ {
		u, v := g.eu[i], g.ev[i]
		g.nbr[cursor[u]], g.eid[cursor[u]] = v, int32(i)
		cursor[u]++
		g.nbr[cursor[v]], g.eid[cursor[v]] = u, int32(i)
		cursor[v]++
	}
	// Neighbor lists come out sorted automatically: edges are processed
	// in (u,v) sorted order, so each vertex's list of higher neighbors
	// is ascending; lower neighbors are appended in ascending u order as
	// well. The interleaving of the two is NOT sorted, so sort each list.
	for v := 0; v < b.n; v++ {
		lo, hi := g.off[v], g.off[v+1]
		sortAdj(g.nbr[lo:hi], g.eid[lo:hi])
	}
	return g, nil
}

// MustBuild is Build for callers (generators, tests) that construct
// edges programmatically and treat failure as a bug.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// sortAdjInsertionMax is the insertion-sort cutover: adjacency runs no
// longer than this use insertion sort (the lists are two ascending
// runs, so it is effectively a merge and beats a general sort on the
// short lists that dominate sparse graphs); longer runs — adversarial
// high-degree vertices such as star hubs, where insertion sort's O(d²)
// worst case bites in BuildCSR — fall through to sort.Sort.
const sortAdjInsertionMax = 32

// sortAdj sorts the neighbor slice ascending, permuting the edge-id
// slice in lockstep. The graph is simple, so neighbor values within one
// vertex's list are distinct and any comparison sort yields the same
// (deterministic) layout as the insertion sort did.
func sortAdj(nbr, eid []int32) {
	if len(nbr) > sortAdjInsertionMax {
		sort.Sort(adjSorter{nbr: nbr, eid: eid})
		return
	}
	for i := 1; i < len(nbr); i++ {
		nv, ne := nbr[i], eid[i]
		j := i - 1
		for j >= 0 && nbr[j] > nv {
			nbr[j+1], eid[j+1] = nbr[j], eid[j]
			j--
		}
		nbr[j+1], eid[j+1] = nv, ne
	}
}

// adjSorter co-sorts a neighbor slice and its edge-id slice by
// neighbor id.
type adjSorter struct {
	nbr, eid []int32
}

func (a adjSorter) Len() int           { return len(a.nbr) }
func (a adjSorter) Less(i, j int) bool { return a.nbr[i] < a.nbr[j] }
func (a adjSorter) Swap(i, j int) {
	a.nbr[i], a.nbr[j] = a.nbr[j], a.nbr[i]
	a.eid[i], a.eid[j] = a.eid[j], a.eid[i]
}

// Clone returns a deep copy of g. Algorithms never mutate graphs, but
// the fault-injection tests use Clone to build edge-deleted variants.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		n:   g.n,
		eu:  append([]int32(nil), g.eu...),
		ev:  append([]int32(nil), g.ev...),
		off: append([]int32(nil), g.off...),
		nbr: append([]int32(nil), g.nbr...),
		eid: append([]int32(nil), g.eid...),
	}
	return c
}

// WithoutEdge returns a copy of g with edge e removed. Edge identifiers
// are reassigned (they are positional); callers needing the original
// numbering must map through EdgeEndpoints. This is O(m) and intended
// for the brute-force oracle and tests, not for the core algorithms.
func (g *Graph) WithoutEdge(e int) *Graph {
	b := NewBuilder(g.n)
	for i := 0; i < g.NumEdges(); i++ {
		if i == e {
			continue
		}
		// Endpoints are valid by construction; error impossible.
		_ = b.AddEdge(int(g.eu[i]), int(g.ev[i]))
	}
	return b.MustBuild()
}
