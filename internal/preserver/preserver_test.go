package preserver

import (
	"math"
	"testing"

	"msrp/internal/graph"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

func testParams(seed uint64) ssrp.Params {
	p := ssrp.DefaultParams()
	p.Seed = seed
	p.SampleBoost = 12
	p.SuffixScale = 0.25
	return p
}

func TestPreserverPropertyRandom(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 6; trial++ {
		n := 20 + rng.Intn(25)
		g := graph.RandomConnected(rng, n, n+rng.Intn(2*n))
		r, err := Build(g, int32(rng.Intn(n)), testParams(uint64(trial)+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, r); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPreserverPropertyFamilies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		s    int32
	}{
		{"cycle", graph.Cycle(24), 0},
		{"grid", graph.Grid(4, 6), 5},
		{"barbell", graph.Barbell(4, 3), 0},
		{"complete", graph.Complete(9), 2},
		{"caterpillar", graph.Caterpillar(6, 2), 0},
	}
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, err := Build(c.g, c.s, testParams(uint64(i)+40))
			if err != nil {
				t.Fatal(err)
			}
			if err := Verify(c.g, r); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestPreserverSparsifiesDenseGraphs(t *testing.T) {
	// On K_n the preserver must be much smaller than the graph: the
	// Parter–Peleg bound allows O(n^{3/2}) but K_n has Θ(n²) edges.
	n := 40
	g := graph.Complete(n)
	r, err := Build(g, 0, testParams(50))
	if err != nil {
		t.Fatal(err)
	}
	bound := 4 * math.Pow(float64(n), 1.5)
	if float64(len(r.Edges)) > bound {
		t.Fatalf("preserver has %d edges, beyond 4·n^1.5 = %.0f", len(r.Edges), bound)
	}
	if len(r.Edges) >= g.NumEdges() {
		t.Fatalf("preserver did not sparsify: %d of %d edges", len(r.Edges), g.NumEdges())
	}
	if err := Verify(g, r); err != nil {
		t.Fatal(err)
	}
}

func TestPreserverOnTreeIsTree(t *testing.T) {
	// A tree has no replacement paths; the preserver is the tree.
	g := graph.Caterpillar(5, 3)
	r, err := Build(g, 0, testParams(60))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Edges) != g.NumEdges() || r.PathEdges != 0 {
		t.Fatalf("tree preserver: %d edges (%d from paths), want %d tree edges only",
			len(r.Edges), r.PathEdges, g.NumEdges())
	}
}

func TestSubgraphStructure(t *testing.T) {
	g := graph.Cycle(12)
	r, err := Build(g, 0, testParams(70))
	if err != nil {
		t.Fatal(err)
	}
	h := r.Subgraph(g)
	if h.NumVertices() != g.NumVertices() {
		t.Fatal("vertex set changed")
	}
	// The full cycle is needed: every edge serves as some replacement.
	if h.NumEdges() != 12 {
		t.Fatalf("cycle preserver has %d edges, want 12", h.NumEdges())
	}
}
