// Package preserver builds single-source fault-tolerant BFS preservers
// — sparse subgraphs H ⊆ G such that for every target t and every
// single edge failure e, dist_{H−e}(s, t) = dist_{G−e}(s, t).
//
// This is the "fault tolerant subgraph" problem from the paper's
// related-work section (§1.1): Parter and Peleg (ESA 2013) showed a
// preserver with O(n^{3/2}) edges exists and is tight. This
// implementation derives a preserver directly from the replacement
// path machinery: take the BFS tree plus, for every (t, e) pair, the
// concrete replacement path the SSRP solver reconstructs. Correctness
// is then immediate — for each failure the preserver contains, by
// construction, both the canonical path (for unaffected targets) and a
// shortest replacement path (for affected ones). The edge count is
// measured by experiment E11 against the Θ(n^{3/2}) bound; our path
// choices are the solver's, not Parter–Peleg's carefully deduplicated
// ones, so the measured size is an upper bound on what their selection
// achieves.
package preserver

import (
	"fmt"
	"sort"

	"msrp/internal/graph"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// Result describes a computed preserver.
type Result struct {
	// Source is the preserved source.
	Source int32
	// Edges lists the preserver's edge ids (sorted, deduplicated).
	Edges []int32
	// TreeEdges and PathEdges break down where edges came from.
	TreeEdges, PathEdges int
}

// Build computes a fault-tolerant BFS preserver for the source.
func Build(g *graph.Graph, source int32, p ssrp.Params) (*Result, error) {
	res, ps, _, err := ssrp.SolvePaths(g, source, p)
	if err != nil {
		return nil, err
	}
	keep := make(map[int32]struct{}, g.NumVertices()*2)
	treeEdges := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if e := res.Tree.ParentEdge[v]; e >= 0 {
			if _, dup := keep[e]; !dup {
				keep[e] = struct{}{}
				treeEdges++
			}
		}
	}
	for t := int32(0); t < int32(g.NumVertices()); t++ {
		for i := range res.Len[t] {
			if res.Len[t][i] == rp.Inf {
				continue
			}
			path, err := ps.ReconstructPath(t, i)
			if err != nil {
				return nil, fmt.Errorf("preserver: reconstruct t=%d i=%d: %w", t, i, err)
			}
			for j := 0; j+1 < len(path); j++ {
				id, ok := g.EdgeID(int(path[j]), int(path[j+1]))
				if !ok {
					return nil, fmt.Errorf("preserver: reconstructed non-edge %d-%d", path[j], path[j+1])
				}
				keep[id] = struct{}{}
			}
		}
	}
	out := &Result{
		Source:    source,
		Edges:     make([]int32, 0, len(keep)),
		TreeEdges: treeEdges,
	}
	for e := range keep {
		out.Edges = append(out.Edges, e)
	}
	sort.Slice(out.Edges, func(i, j int) bool { return out.Edges[i] < out.Edges[j] })
	out.PathEdges = len(out.Edges) - treeEdges
	return out, nil
}

// Subgraph materializes the preserver as a graph on the same vertex
// set. Edge ids are renumbered (see graph.Builder); callers needing the
// original ids should use Result.Edges.
func (r *Result) Subgraph(g *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(g.NumVertices())
	for _, e := range r.Edges {
		u, v := g.EdgeEndpoints(int(e))
		// Endpoints come from g, so AddEdge cannot fail.
		_ = b.AddEdge(int(u), int(v))
	}
	return b.MustBuild()
}

// Verify exhaustively checks the preserver property on small graphs:
// for every edge e of G and every target t,
// dist_{H−e}(s,t) = dist_{G−e}(s,t). O(m·(m+n)) — test use only.
func Verify(g *graph.Graph, r *Result) error {
	h := r.Subgraph(g)
	inH := make(map[[2]int32]struct{}, len(r.Edges))
	for _, e := range r.Edges {
		u, v := g.EdgeEndpoints(int(e))
		inH[[2]int32{u, v}] = struct{}{}
	}
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.EdgeEndpoints(e)
		// Distances in G − e from the source.
		gDel := distancesAvoiding(g, r.Source, int32(e))
		// Distances in H − e: if e ∉ H, H itself.
		hEdge, inSub := h.EdgeID(int(u), int(v))
		var hDel []int32
		if inSub {
			hDel = distancesAvoiding(h, r.Source, hEdge)
		} else {
			hDel = distancesAvoiding(h, r.Source, -1)
		}
		for t := 0; t < g.NumVertices(); t++ {
			if gDel[t] != hDel[t] {
				return fmt.Errorf("preserver violated: failure {%d,%d}, target %d: G−e %d, H−e %d",
					u, v, t, gDel[t], hDel[t])
			}
		}
	}
	return nil
}

// distancesAvoiding is a plain BFS skipping edge `avoid` (-1 = none).
func distancesAvoiding(g *graph.Graph, s int32, avoid int32) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := make([]int32, 0, g.NumVertices())
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		x := queue[head]
		vtx, ids := g.Neighbors(int(x))
		for i, w := range vtx {
			if ids[i] != avoid && dist[w] < 0 {
				dist[w] = dist[x] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}
