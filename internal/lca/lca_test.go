package lca

import (
	"testing"
	"testing/quick"

	"msrp/internal/bfs"
	"msrp/internal/graph"
	"msrp/internal/xrand"
)

// naiveIsAncestor walks parent pointers from b to the root.
func naiveIsAncestor(t *bfs.Tree, a, b int32) bool {
	if !t.Reachable(a) || !t.Reachable(b) {
		return false
	}
	for x := b; x >= 0; x = t.Parent[x] {
		if x == a {
			return true
		}
	}
	return false
}

// naiveLCA lifts the deeper vertex then walks both up in lockstep.
func naiveLCA(t *bfs.Tree, a, b int32) int32 {
	if !t.Reachable(a) || !t.Reachable(b) {
		return -1
	}
	for t.Dist[a] > t.Dist[b] {
		a = t.Parent[a]
	}
	for t.Dist[b] > t.Dist[a] {
		b = t.Parent[b]
	}
	for a != b {
		a, b = t.Parent[a], t.Parent[b]
	}
	return a
}

func TestPathGraph(t *testing.T) {
	g := graph.Path(8)
	tr := bfs.New(g, 0)
	ix := New(g, tr)
	for a := int32(0); a < 8; a++ {
		for b := int32(0); b < 8; b++ {
			wantAnc := a <= b
			if got := ix.IsAncestor(a, b); got != wantAnc {
				t.Fatalf("IsAncestor(%d,%d) = %v", a, b, got)
			}
			wantLCA := a
			if b < a {
				wantLCA = b
			}
			if got := ix.LCA(a, b); got != wantLCA {
				t.Fatalf("LCA(%d,%d) = %d, want %d", a, b, got, wantLCA)
			}
		}
	}
}

func TestAgainstNaiveOnRandomGraphs(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomConnected(rng, 50, 80+rng.Intn(60))
		root := rng.Intn(50)
		tr := bfs.New(g, root)
		ix := New(g, tr)
		n := int32(g.NumVertices())
		for a := int32(0); a < n; a++ {
			for b := int32(0); b < n; b++ {
				if got, want := ix.IsAncestor(a, b), naiveIsAncestor(tr, a, b); got != want {
					t.Fatalf("trial %d root %d: IsAncestor(%d,%d) = %v want %v",
						trial, root, a, b, got, want)
				}
				if got, want := ix.LCA(a, b), naiveLCA(tr, a, b); got != want {
					t.Fatalf("trial %d root %d: LCA(%d,%d) = %d want %d",
						trial, root, a, b, got, want)
				}
			}
		}
	}
}

func TestUnreachableVertices(t *testing.T) {
	b := graph.NewBuilder(5)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	g := b.MustBuild()
	tr := bfs.New(g, 0)
	ix := New(g, tr)
	if ix.IsAncestor(0, 3) || ix.IsAncestor(3, 0) || ix.IsAncestor(3, 4) {
		t.Fatal("ancestry with unreachable vertex")
	}
	if ix.LCA(0, 4) != -1 || ix.LCA(3, 4) != -1 {
		t.Fatal("LCA with unreachable vertex should be -1")
	}
	if ix.TreeDist(0, 4) != -1 {
		t.Fatal("TreeDist with unreachable vertex should be -1")
	}
	if ix.LCA(0, 2) != 0 || ix.TreeDist(0, 2) != 2 {
		t.Fatal("reachable pair mis-answered")
	}
}

func TestEdgeOnRootPath(t *testing.T) {
	// Star: every edge is on exactly the path to its leaf.
	g := graph.Star(6)
	tr := bfs.New(g, 0)
	ix := New(g, tr)
	for e := 0; e < g.NumEdges(); e++ {
		_, leaf := g.EdgeEndpoints(e)
		for v := int32(1); v < 6; v++ {
			want := v == leaf
			if got := ix.EdgeOnRootPath(g, int32(e), v); got != want {
				t.Fatalf("edge %d target %d: %v want %v", e, v, got, want)
			}
		}
		if ix.EdgeOnRootPath(g, int32(e), 0) {
			t.Fatal("no edge lies on the empty path to the root")
		}
	}
}

func TestEdgeOnRootPathMatchesPathEdges(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomConnected(rng, 40, 100)
		tr := bfs.New(g, 0)
		ix := New(g, tr)
		for v := int32(0); v < int32(g.NumVertices()); v++ {
			onPath := map[int32]bool{}
			for _, e := range tr.PathEdgesTo(v) {
				onPath[e] = true
			}
			for e := int32(0); e < int32(g.NumEdges()); e++ {
				if got := ix.EdgeOnRootPath(g, e, v); got != onPath[e] {
					t.Fatalf("trial %d: edge %d on path to %d: %v want %v",
						trial, e, v, got, onPath[e])
				}
			}
		}
	}
}

func TestNonTreeEdgeNeverOnPath(t *testing.T) {
	g := graph.Cycle(9) // BFS tree omits exactly one cycle edge
	tr := bfs.New(g, 0)
	ix := New(g, tr)
	nonTree := int32(-1)
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if _, ok := tr.ChildEndpoint(g, e); !ok {
			nonTree = e
			break
		}
	}
	if nonTree < 0 {
		t.Fatal("cycle must have a non-tree edge")
	}
	for v := int32(0); v < 9; v++ {
		if ix.EdgeOnRootPath(g, nonTree, v) {
			t.Fatalf("non-tree edge reported on path to %d", v)
		}
	}
}

func TestTreeDistOnGrid(t *testing.T) {
	g := graph.Grid(4, 4)
	tr := bfs.New(g, 0)
	ix := New(g, tr)
	// Distances from the root through the tree equal BFS distances.
	for v := int32(0); v < 16; v++ {
		if ix.TreeDist(tr.Root, v) != tr.Dist[v] {
			t.Fatalf("TreeDist(root,%d) = %d want %d", v, ix.TreeDist(tr.Root, v), tr.Dist[v])
		}
	}
}

func TestQuickLCAProperties(t *testing.T) {
	f := func(seed uint32, aRaw, bRaw uint8) bool {
		rng := xrand.New(uint64(seed))
		g := graph.RandomConnected(rng, 30, 45)
		tr := bfs.New(g, 0)
		ix := New(g, tr)
		a, b := int32(aRaw%30), int32(bRaw%30)
		l := ix.LCA(a, b)
		// The LCA is an ancestor of both, and symmetric.
		return l >= 0 &&
			ix.IsAncestor(l, a) && ix.IsAncestor(l, b) &&
			ix.LCA(b, a) == l &&
			ix.LCA(a, a) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	g := graph.RandomConnected(xrand.New(1), 5000, 20000)
	tr := bfs.New(g, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = New(g, tr)
	}
}

func BenchmarkLCAQuery(b *testing.B) {
	g := graph.RandomConnected(xrand.New(1), 5000, 20000)
	tr := bfs.New(g, 0)
	ix := New(g, tr)
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink = ix.LCA(int32(i%5000), int32((i*7)%5000))
	}
	_ = sink
}

func TestAncestryMatchesIndex(t *testing.T) {
	rng := xrand.New(20)
	g := graph.RandomConnected(rng, 60, 140)
	tr := bfs.New(g, 0)
	ix := New(g, tr)
	anc := NewAncestry(g, tr)
	for a := int32(0); a < 60; a++ {
		for b := int32(0); b < 60; b++ {
			if ix.IsAncestor(a, b) != anc.IsAncestor(a, b) {
				t.Fatalf("Ancestry and Index disagree on (%d,%d)", a, b)
			}
		}
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		for v := int32(0); v < 60; v += 7 {
			if ix.EdgeOnRootPath(g, e, v) != anc.EdgeOnRootPath(g, e, v) {
				t.Fatalf("EdgeOnRootPath disagrees on edge %d target %d", e, v)
			}
		}
	}
}
