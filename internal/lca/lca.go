// Package lca answers constant-time ancestry and lowest-common-ancestor
// queries on BFS trees.
//
// The paper's algorithms lean on one primitive (Lemma 6, citing
// Bender–Farach-Colton): given the canonical tree T_x, decide in O(1)
// whether an edge e lies on the canonical x→y path. For a BFS tree this
// reduces to "is the child endpoint of e an ancestor of y", which an
// Euler tour answers with two integer comparisons. Full LCA queries are
// provided by a sparse table (range-minimum over the tour), built in
// O(n log n) and queried in O(1).
package lca

import (
	"math/bits"

	"msrp/internal/bfs"
	"msrp/internal/graph"
)

// Ancestry answers O(1) ancestor queries on one BFS tree via DFS
// entry/exit timestamps. It is the lightweight core of the package:
// the algorithm builds one per landmark/center tree, where a full LCA
// sparse table would waste Θ(n log n) memory each, and all it ever asks
// is "does edge e lie on the canonical root→y path".
type Ancestry struct {
	tree *bfs.Tree

	// tin/tout are entry/exit timestamps of the DFS over the tree;
	// a is an ancestor of b iff tin[a] <= tin[b] && tout[b] <= tout[a].
	// Unreachable vertices have tin = -1.
	tin, tout []int32
}

// Index extends Ancestry with full lowest-common-ancestor queries using
// an Euler tour plus sparse table (Bender–Farach-Colton), O(n log n)
// preprocessing and O(1) queries (the paper's Lemma 6).
type Index struct {
	Ancestry

	// euler lists vertices in tour order (2·reachable−1 entries),
	// first[v] is v's first tour position, and sparse[k][i] is the tour
	// position of the minimum-depth vertex in the window [i, i+2^k).
	euler  []int32
	first  []int32
	sparse [][]int32
}

// NewAncestry builds only the ancestor structure for t (no LCA table).
func NewAncestry(g *graph.Graph, t *bfs.Tree) *Ancestry {
	a, _ := build(g, t, false)
	return a
}

// Bytes returns the ancestry's own array footprint (excluding the tree
// it indexes) — used by the provenance plane's memory accounting.
func (a *Ancestry) Bytes() int64 { return 4 * int64(len(a.tin)+len(a.tout)) }

// New builds the full ancestry + LCA index for t. The graph g must be
// the graph t was built from (needed to enumerate children
// deterministically).
func New(g *graph.Graph, t *bfs.Tree) *Index {
	_, ix := build(g, t, true)
	return ix
}

func build(g *graph.Graph, t *bfs.Tree, withLCA bool) (*Ancestry, *Index) {
	n := g.NumVertices()
	anc := &Ancestry{
		tree: t,
		tin:  make([]int32, n),
		tout: make([]int32, n),
	}
	var ix *Index
	if withLCA {
		ix = &Index{first: make([]int32, n)}
	}
	for i := 0; i < n; i++ {
		anc.tin[i] = -1
		anc.tout[i] = -1
		if withLCA {
			ix.first[i] = -1
		}
	}

	// Children lists in CSR form, derived from the parent array. The
	// order children appear in bfs Order is deterministic, so the tour
	// is too.
	childOff := make([]int32, n+1)
	for _, v := range t.Order {
		if p := t.Parent[v]; p >= 0 {
			childOff[p+1]++
		}
	}
	for v := 0; v < n; v++ {
		childOff[v+1] += childOff[v]
	}
	children := make([]int32, len(t.Order)-1)
	cursor := make([]int32, n)
	copy(cursor, childOff[:n])
	for _, v := range t.Order {
		if p := t.Parent[v]; p >= 0 {
			children[cursor[p]] = v
			cursor[p]++
		}
	}

	// Iterative DFS producing tin/tout and (if requested) the Euler tour.
	reachable := len(t.Order)
	if withLCA {
		ix.euler = make([]int32, 0, 2*reachable-1)
	}
	type frame struct {
		v    int32
		next int32
	}
	stack := make([]frame, 0, 64)
	stack = append(stack, frame{v: t.Root})
	timer := int32(0)
	anc.tin[t.Root] = timer
	timer++
	if withLCA {
		ix.first[t.Root] = 0
		ix.euler = append(ix.euler, t.Root)
	}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		v := f.v
		lo, hi := childOff[v], childOff[v+1]
		if f.next < hi-lo {
			c := children[lo+f.next]
			f.next++
			anc.tin[c] = timer
			timer++
			if withLCA {
				ix.first[c] = int32(len(ix.euler))
				ix.euler = append(ix.euler, c)
			}
			stack = append(stack, frame{v: c})
			continue
		}
		anc.tout[v] = timer
		timer++
		stack = stack[:len(stack)-1]
		if withLCA && len(stack) > 0 {
			ix.euler = append(ix.euler, stack[len(stack)-1].v)
		}
	}
	if !withLCA {
		return anc, nil
	}
	ix.Ancestry = *anc

	// Sparse table over tour depths.
	tourLen := len(ix.euler)
	levels := 1
	if tourLen > 1 {
		levels = bits.Len(uint(tourLen)) // floor(log2)+1
	}
	ix.sparse = make([][]int32, levels)
	base := make([]int32, tourLen)
	for i := range ix.euler {
		base[i] = int32(i)
	}
	ix.sparse[0] = base
	for k := 1; k < levels; k++ {
		half := 1 << (k - 1)
		width := tourLen - (1 << k) + 1
		if width < 0 {
			width = 0
		}
		row := make([]int32, width)
		prev := ix.sparse[k-1]
		for i := 0; i < width; i++ {
			a, b := prev[i], prev[i+half]
			if ix.depthAt(a) <= ix.depthAt(b) {
				row[i] = a
			} else {
				row[i] = b
			}
		}
		ix.sparse[k] = row
	}
	return &ix.Ancestry, ix
}

func (ix *Index) depthAt(tourPos int32) int32 {
	return ix.tree.Dist[ix.euler[tourPos]]
}

// Tree returns the underlying BFS tree.
func (a *Ancestry) Tree() *bfs.Tree { return a.tree }

// IsAncestor reports whether a is an ancestor of b (inclusive: every
// reachable vertex is an ancestor of itself). Unreachable vertices have
// no ancestry relations.
func (a *Ancestry) IsAncestor(x, y int32) bool {
	if a.tin[x] < 0 || a.tin[y] < 0 {
		return false
	}
	return a.tin[x] <= a.tin[y] && a.tout[y] <= a.tout[x]
}

// LCA returns the lowest common ancestor of a and b in the tree, or -1
// if either vertex is unreachable from the root.
func (ix *Index) LCA(a, b int32) int32 {
	fa, fb := ix.first[a], ix.first[b]
	if fa < 0 || fb < 0 {
		return -1
	}
	if fa > fb {
		fa, fb = fb, fa
	}
	width := uint(fb - fa + 1)
	k := bits.Len(width) - 1
	i := ix.sparse[k][fa]
	j := ix.sparse[k][fb-int32(1<<k)+1]
	if ix.depthAt(i) <= ix.depthAt(j) {
		return ix.euler[i]
	}
	return ix.euler[j]
}

// TreeDist returns the number of edges on the tree path between a and
// b, or -1 if either is unreachable. Because the tree is a BFS tree this
// equals d(a,b) only when one endpoint is an ancestor of the other; it
// is the tree metric otherwise.
func (ix *Index) TreeDist(a, b int32) int32 {
	l := ix.LCA(a, b)
	if l < 0 {
		return -1
	}
	return ix.tree.Dist[a] + ix.tree.Dist[b] - 2*ix.tree.Dist[l]
}

// EdgeOnRootPath reports whether graph edge e lies on the canonical
// root→target tree path: e must be a tree edge and its child endpoint an
// ancestor of target. This is the paper's ubiquitous "if e does not lie
// on the xy path" test (O(1)).
func (a *Ancestry) EdgeOnRootPath(g *graph.Graph, e int32, target int32) bool {
	child, ok := a.tree.ChildEndpoint(g, e)
	if !ok {
		return false
	}
	return a.IsAncestor(child, target)
}
