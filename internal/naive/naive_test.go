package naive

import (
	"testing"

	"msrp/internal/graph"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

func TestOnePairCycle(t *testing.T) {
	// Avoiding edge {0,1} on C5 from 0 to 1 forces the 4-edge detour.
	g := graph.Cycle(5)
	e, ok := g.EdgeID(0, 1)
	if !ok {
		t.Fatal("edge lookup failed")
	}
	if got := OnePair(g, 0, 1, e); got != 4 {
		t.Fatalf("got %d, want 4", got)
	}
}

func TestOnePairBridge(t *testing.T) {
	g := graph.Path(4)
	e, _ := g.EdgeID(1, 2)
	if got := OnePair(g, 0, 3, e); got != rp.Inf {
		t.Fatalf("got %d, want Inf", got)
	}
}

func TestOnePairSelf(t *testing.T) {
	g := graph.Path(4)
	if got := OnePair(g, 2, 2, 0); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
}

func TestOnePairAvoidanceIrrelevantEdge(t *testing.T) {
	// Avoiding an edge not on any s-t shortest path leaves the distance
	// unchanged.
	g := graph.Grid(3, 3)
	e, _ := g.EdgeID(7, 8) // far corner edge
	if got := OnePair(g, 0, 1, e); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

func TestSSRPSelfConsistent(t *testing.T) {
	// SSRP's batched answers must equal individual OnePair queries.
	rng := xrand.New(1)
	for trial := 0; trial < 5; trial++ {
		n := 15 + rng.Intn(15)
		g := graph.RandomConnected(rng, n, n+rng.Intn(n))
		s := int32(rng.Intn(n))
		res := SSRP(g, s)
		for tt := int32(0); tt < int32(n); tt++ {
			edges := res.Tree.PathEdgesTo(tt)
			for i, e := range edges {
				want := OnePair(g, s, tt, e)
				if got := res.Avoid(tt, i); got != want {
					t.Fatalf("trial %d s=%d t=%d i=%d: batched %d, single %d",
						trial, s, tt, i, got, want)
				}
			}
		}
	}
}

func TestSSRPRowShapes(t *testing.T) {
	g := graph.Grid(3, 4)
	res := SSRP(g, 0)
	for tt := int32(0); tt < 12; tt++ {
		want := int(res.Tree.Dist[tt])
		if tt == 0 {
			want = 0
		}
		if len(res.Len[tt]) != want {
			t.Fatalf("row %d has %d entries, want %d", tt, len(res.Len[tt]), want)
		}
	}
	if res.NumQueries() == 0 {
		t.Fatal("no queries answered")
	}
}

func TestSSRPDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	_ = b.AddEdge(0, 1)
	_ = b.AddEdge(1, 2)
	_ = b.AddEdge(2, 0)
	g := b.MustBuild()
	res := SSRP(g, 0)
	if len(res.Len[3]) != 0 || len(res.Len[4]) != 0 {
		t.Fatal("unreachable rows should be empty")
	}
}

func TestMSRPAllSources(t *testing.T) {
	g := graph.Cycle(6)
	results := MSRP(g, []int32{0, 2, 5})
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	for i, s := range []int32{0, 2, 5} {
		if results[i].Source != s {
			t.Fatalf("result %d source %d", i, results[i].Source)
		}
		// On C6, avoiding a path edge gives the 6-d(s,t) detour.
		for tt := int32(0); tt < 6; tt++ {
			for i2 := range results[i].Len[tt] {
				want := 6 - results[i].Tree.Dist[tt]
				if got := results[i].Avoid(tt, i2); got != want {
					t.Fatalf("s=%d t=%d: got %d want %d", s, tt, got, want)
				}
			}
		}
	}
}

func TestDiffAndCountMismatches(t *testing.T) {
	g := graph.Cycle(5)
	a := SSRP(g, 0)
	b := SSRP(g, 0)
	if d := rp.Diff(a, b); d != "" {
		t.Fatalf("identical results diff: %s", d)
	}
	mis, total := rp.CountMismatches(a, b)
	if mis != 0 || total == 0 {
		t.Fatalf("mis=%d total=%d", mis, total)
	}
	b.Len[1][0] = 99
	if d := rp.Diff(a, b); d == "" {
		t.Fatal("mutated result should diff")
	}
	mis, _ = rp.CountMismatches(a, b)
	if mis != 1 {
		t.Fatalf("mis = %d, want 1", mis)
	}
}

func BenchmarkNaiveSSRP(b *testing.B) {
	g := graph.RandomConnected(xrand.New(1), 300, 900)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SSRP(g, int32(i%300))
	}
}
