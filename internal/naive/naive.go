// Package naive provides brute-force replacement-path oracles.
//
// These are the ground truth for the entire test suite and the
// unoptimized baseline for the benchmark harness. The key routine runs
// one BFS per deleted tree edge — Õ(nm) per source — which is exactly
// the "rerun BFS after every fault" strawman the replacement-path
// literature improves on.
package naive

import (
	"msrp/internal/bfs"
	"msrp/internal/graph"
	"msrp/internal/rp"
)

// OnePair returns the length of the shortest s→t path avoiding edge
// avoid, or rp.Inf if none exists. It is a single BFS that skips the
// avoided edge.
func OnePair(g *graph.Graph, s, t int32, avoid int32) int32 {
	if s == t {
		return 0
	}
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		vtx, ids := g.Neighbors(int(v))
		for i, w := range vtx {
			if ids[i] == avoid || dist[w] >= 0 {
				continue
			}
			dist[w] = dist[v] + 1
			if w == t {
				return dist[w]
			}
			queue = append(queue, w)
		}
	}
	return rp.Inf
}

// distAvoiding returns BFS distances from s in G − avoid.
func distAvoiding(g *graph.Graph, s int32, avoid int32, dist []int32, queue []int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue = append(queue[:0], s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		vtx, ids := g.Neighbors(int(v))
		for i, w := range vtx {
			if ids[i] != avoid && dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
}

// SSRP computes all replacement path lengths from s by deleting each
// tree edge of the canonical BFS tree in turn and rerunning BFS:
// O(n·m) time, O(n) extra space. Only tree edges need deleting — a
// non-tree edge lies on no canonical path.
func SSRP(g *graph.Graph, s int32) *rp.Result {
	tree := bfs.New(g, int(s))
	res := rp.NewResult(tree)
	n := g.NumVertices()

	// For every tree edge e (identified by its child endpoint), compute
	// distances in G−e, then fill d(s,t,e) for every t whose canonical
	// path uses e — exactly the vertices in the subtree under e.
	dist := make([]int32, n)
	queue := make([]int32, 0, n)

	// Subtree membership via Euler intervals would be O(1), but the
	// brute-force oracle stays deliberately primitive: walk the tree
	// Order once per deleted edge and track membership by parent flags.
	inSub := make([]bool, n)
	for _, child := range tree.Order {
		e := tree.ParentEdge[child]
		if e < 0 {
			continue // root
		}
		distAvoiding(g, s, e, dist, queue)
		// Mark the subtree under child: a vertex is in the subtree iff
		// it is the child or its parent is in the subtree (Order is
		// top-down, so parents precede children).
		for _, v := range tree.Order {
			inSub[v] = v == child || (tree.Parent[v] >= 0 && inSub[tree.Parent[v]])
		}
		edgeIndex := int(tree.Dist[child]) - 1
		for _, t := range tree.Order {
			if !inSub[t] {
				continue
			}
			if d := dist[t]; d >= 0 {
				res.Len[t][edgeIndex] = d
			} // else: bridge, stays Inf
		}
	}
	return res
}

// MSRP runs the brute-force SSRP from every source.
func MSRP(g *graph.Graph, sources []int32) []*rp.Result {
	out := make([]*rp.Result, len(sources))
	for i, s := range sources {
		out[i] = SSRP(g, s)
	}
	return out
}
