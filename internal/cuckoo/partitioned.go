package cuckoo

// Partitioned is a family of cuckoo tables routed by high key bits —
// the §8.2.1 streaming merge's per-center-partition targets. The seed
// key leads with the center id (packCRE in internal/msrp), so routing
// on a shift of the key partitions the table by center: every key of
// one center lands in one partition, and a partition can be frozen —
// fully merged and safe for lock-free reads — as soon as the sources
// that can touch its centers have all retired, while other partitions
// are still receiving entries.
//
// Partitioned itself is deliberately dumb about concurrency: each
// member Table keeps the single-writer contract, and the caller (the
// solve's retire/freeze protocol) guarantees a partition is written by
// exactly one goroutine at a time and only read after its freeze is
// published. What Partitioned adds is the routing and the aggregate
// views (Len, Bytes, Rehashes, Range, Fingerprint) that let the rest
// of the stack treat the family as one seed table.
type Partitioned struct {
	tables []*Table
	shift  uint
}

// NewPartitioned returns a family of `parts` empty tables routed by
// key >> shift (values at or beyond parts clamp into the last
// partition, so a conservative shift never loses entries). Each table
// starts at minimum capacity; callers presize per partition with
// Reserve on the member tables before their bulk fill.
func NewPartitioned(parts int, shift uint) *Partitioned {
	if parts < 1 {
		parts = 1
	}
	p := &Partitioned{tables: make([]*Table, parts), shift: shift}
	for i := range p.tables {
		p.tables[i] = New(0)
	}
	return p
}

// Parts returns the partition count.
func (p *Partitioned) Parts() int { return len(p.tables) }

// Shift returns the routing shift (partition index = key >> Shift,
// clamped).
func (p *Partitioned) Shift() uint { return p.shift }

// Part returns the partition index for key.
func (p *Partitioned) Part(key uint64) int {
	i := key >> p.shift
	if i >= uint64(len(p.tables)) {
		return len(p.tables) - 1
	}
	return int(i)
}

// Table returns the partition table at index i for direct access
// (presizing, bulk MinPut during a freeze fold).
func (p *Partitioned) Table(i int) *Table { return p.tables[i] }

// Get returns the value stored under key: one shift plus the member
// table's two probes, so the worst-case O(1) lookup contract (Lemma 5)
// is preserved.
func (p *Partitioned) Get(key uint64) (int32, bool) {
	return p.tables[p.Part(key)].Get(key)
}

// GetOr returns the stored value or def when absent.
func (p *Partitioned) GetOr(key uint64, def int32) int32 {
	if v, ok := p.Get(key); ok {
		return v
	}
	return def
}

// Len sums the member tables' entry counts.
func (p *Partitioned) Len() int {
	n := 0
	for _, t := range p.tables {
		n += t.Len()
	}
	return n
}

// Bytes sums the member tables' slot-array footprints.
func (p *Partitioned) Bytes() int64 {
	var b int64
	for _, t := range p.tables {
		b += t.Bytes()
	}
	return b
}

// Rehashes sums the member tables' rebuild counts — the same cascade
// observability as Table.Rehashes, summed over the family.
func (p *Partitioned) Rehashes() int {
	n := 0
	for _, t := range p.tables {
		n += t.Rehashes()
	}
	return n
}

// Range calls fn for every entry, walking partitions in index order
// (within a partition the member table's order applies) until fn
// returns false.
func (p *Partitioned) Range(fn func(key uint64, value int32) bool) {
	for _, t := range p.tables {
		stopped := false
		t.Range(func(key uint64, value int32) bool {
			if !fn(key, value) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// Fingerprint folds the member tables' layout fingerprints in
// partition order: two Partitioned tables agree iff every partition is
// slot-for-slot identical. The streaming-merge determinism tests
// compare this across worker counts.
func (p *Partitioned) Fingerprint() uint64 {
	h := uint64(len(p.tables))*0x9e3779b97f4a7c15 + uint64(p.shift)
	for _, t := range p.tables {
		h = mixPair(h, t.Fingerprint())
	}
	return h
}
