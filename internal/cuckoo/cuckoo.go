// Package cuckoo implements the Pagh–Rodler cuckoo hash table the paper
// relies on for constant worst-case-time lookups (Lemma 5).
//
// The table maps uint64 keys to int32 values. Keys are placed in one of
// two candidate slots (one per sub-table); lookups therefore probe at
// most two locations, giving the worst-case O(1) query the paper's
// accounting assumes when it stores d(s, r, e) values keyed by
// (source, landmark, edge). Insertion is expected O(1): a displaced key
// kicks the occupant of its alternate slot, and if a kick chain exceeds
// the logarithmic bound the table rehashes with fresh hash seeds
// (growing when the load factor warrants it), exactly as in the paper
// by Pagh and Rodler (J. Algorithms, 2004).
package cuckoo

import (
	"msrp/internal/xrand"
)

const (
	// maxLoad is the fraction of total slots we fill before growing.
	// Two-way cuckoo hashing degrades sharply above ~0.5; 0.4 keeps
	// rehash cascades rare.
	maxLoad = 0.4

	// minCapacity is the smallest per-subtable size (power of two).
	minCapacity = 8
)

type slot struct {
	key  uint64
	val  int32
	used bool
}

// Table is a cuckoo hash table from uint64 to int32. The zero value is
// ready to use. Table is not safe for concurrent mutation.
type Table struct {
	t1, t2     []slot
	mask       uint64
	seed1      uint64
	seed2      uint64
	count      int
	seedSource xrand.RNG
	// rehashes counts full-table rebuilds; exposed via Rehashes for the
	// EXPERIMENTS.md hash-table behaviour table.
	rehashes int

	// pending* carry the orphan entry displaced at the end of a failed
	// kick chain across the subsequent rehash (kept on the struct to
	// avoid an allocation on the failure path).
	pendingKey uint64
	pendingVal int32
	hasPending bool
}

// New returns a table pre-sized for capacityHint entries.
func New(capacityHint int) *Table {
	t := &Table{}
	t.init(sizeFor(capacityHint))
	return t
}

// sizeFor returns the smallest power-of-two per-subtable size whose
// total capacity keeps n entries under the load bound.
func sizeFor(n int) int {
	size := minCapacity
	for float64(n) > maxLoad*float64(2*size) {
		size *= 2
	}
	return size
}

// Reserve grows the table so it can hold at least n entries without
// any further growth rehash. Presizing is what keeps the Θ(σn)
// seed-table build (§8.2.1) free of rehash cascades: a build that
// knows its entry count up front pays zero rebuilds instead of
// O(log n) doubling ones. Reserving on an empty table is a free
// re-initialization and does not count toward Rehashes; on a populated
// table it costs exactly one counted rebuild. Shrinking is never
// performed.
func (t *Table) Reserve(n int) {
	size := sizeFor(n)
	if t.t1 != nil && size <= len(t.t1) {
		return
	}
	if t.count == 0 && !t.hasPending {
		t.init(size)
		return
	}
	t.rehash(size)
}

func (t *Table) init(size int) {
	t.t1 = make([]slot, size)
	t.t2 = make([]slot, size)
	t.mask = uint64(size - 1)
	t.reseed()
}

func (t *Table) reseed() {
	t.seed1 = t.seedSource.Uint64() | 1
	t.seed2 = t.seedSource.Uint64() | 2
	if t.seed1 == t.seed2 {
		t.seed2 ^= 0xdeadbeefcafef00d
	}
}

func (t *Table) h1(k uint64) uint64 { return xrand.Mix(k^t.seed1) & t.mask }
func (t *Table) h2(k uint64) uint64 { return xrand.Mix(k^t.seed2) & t.mask }

// Len returns the number of stored keys.
func (t *Table) Len() int { return t.count }

// Rehashes returns how many full rebuilds have occurred (observability
// for the hash-behaviour experiment).
func (t *Table) Rehashes() int { return t.rehashes }

// Bytes returns the table's slot-array footprint (16 bytes per slot:
// key + value + occupancy, padded). Used by the provenance-plane memory
// accounting, which retains the §8.2.1 seed table for path expansion.
func (t *Table) Bytes() int64 { return 16 * int64(len(t.t1)+len(t.t2)) }

// Get returns the value stored under key. Worst case: two probes.
func (t *Table) Get(key uint64) (int32, bool) {
	if t.t1 == nil {
		return 0, false
	}
	if s := &t.t1[t.h1(key)]; s.used && s.key == key {
		return s.val, true
	}
	if s := &t.t2[t.h2(key)]; s.used && s.key == key {
		return s.val, true
	}
	return 0, false
}

// GetOr returns the stored value or def when absent.
func (t *Table) GetOr(key uint64, def int32) int32 {
	if v, ok := t.Get(key); ok {
		return v
	}
	return def
}

// Put stores value under key, replacing any existing entry.
func (t *Table) Put(key uint64, value int32) {
	if t.t1 == nil {
		t.init(minCapacity)
	}
	// Update in place if present.
	if s := &t.t1[t.h1(key)]; s.used && s.key == key {
		s.val = value
		return
	}
	if s := &t.t2[t.h2(key)]; s.used && s.key == key {
		s.val = value
		return
	}
	if float64(t.count+1) > maxLoad*float64(len(t.t1)+len(t.t2)) {
		t.grow(2 * len(t.t1))
	}
	if !t.insertNew(key, value) {
		// The kick chain exceeded its bound. The chain already placed
		// (key, value) — the entry left in hand is some displaced
		// occupant, stashed in pending — so the rebuild (which carries
		// pending) completes the insertion. Do NOT retry insertNew here:
		// that would duplicate the key.
		t.rehash(2 * len(t.t1))
	}
	t.count++
}

// MinPut stores value only if key is absent or value is smaller than
// the stored one. Replacement-path algorithms accumulate minima, so
// this is the hot write path.
func (t *Table) MinPut(key uint64, value int32) {
	if v, ok := t.Get(key); ok && v <= value {
		return
	}
	t.Put(key, value)
}

// insertNew places a key known to be absent. Returns false if the kick
// chain exceeded the bound (caller rehashes).
func (t *Table) insertNew(key uint64, value int32) bool {
	// Kick bound: 6·log2(size) + 8, the standard O(log n) bound from
	// the Pagh–Rodler analysis.
	bound := 8
	for sz := len(t.t1); sz > 1; sz >>= 1 {
		bound += 6
	}
	k, v := key, value
	inFirst := true
	for i := 0; i < bound; i++ {
		var s *slot
		if inFirst {
			s = &t.t1[t.h1(k)]
		} else {
			s = &t.t2[t.h2(k)]
		}
		if !s.used {
			s.key, s.val, s.used = k, v, true
			return true
		}
		s.key, k = k, s.key
		s.val, v = v, s.val
		inFirst = !inFirst
	}
	// Stash the orphan displaced at the end of the failed chain; the
	// caller's rehash re-inserts it after rebuilding.
	t.pendingKey, t.pendingVal, t.hasPending = k, v, true
	return false
}

// grow rebuilds into tables of the given per-subtable size.
func (t *Table) grow(size int) { t.rehash(size) }

// rehash rebuilds the table with fresh seeds at the given size,
// reinserting every entry from the old tables plus any pending orphan.
//
// If an attempt fails partway (unlucky seeds), the whole attempt is
// discarded and restarted from the same old tables and the same
// original orphan: every entry displaced during the failed attempt is
// itself a member of old1 ∪ old2 ∪ {orphan}, so nothing is lost. The
// size doubles on retry, which bounds the number of attempts.
func (t *Table) rehash(size int) {
	old1, old2 := t.t1, t.t2
	orphanKey, orphanVal, hasOrphan := t.pendingKey, t.pendingVal, t.hasPending
	for {
		t.rehashes++
		t.hasPending = false
		t.t1 = make([]slot, size)
		t.t2 = make([]slot, size)
		t.mask = uint64(size - 1)
		t.reseed()
		ok := true
		reinsert := func(s slot) bool {
			if !s.used {
				return true
			}
			return t.insertNew(s.key, s.val)
		}
		for i := range old1 {
			if !reinsert(old1[i]) {
				ok = false
				break
			}
		}
		if ok {
			for i := range old2 {
				if !reinsert(old2[i]) {
					ok = false
					break
				}
			}
		}
		if ok && hasOrphan {
			ok = t.insertNew(orphanKey, orphanVal)
		}
		if ok {
			t.hasPending = false
			return
		}
		size *= 2
	}
}

// Entry is one (key, value) pair — the unit of the solve's
// scatter/fold buffers, which stage entries outside any table until
// their target partition is ready to absorb them.
type Entry struct {
	Key uint64
	Val int32
}

// Fingerprint hashes the table's complete physical layout: sizes,
// seeds, and every slot (including empty ones) in storage order. Two
// tables agree iff a lookup-by-lookup, slot-by-slot comparison would —
// the bit-identity observable the deterministic-layout tests assert
// across worker counts and schedules. Contents-equal tables built in
// different insertion orders generally do NOT agree; that sensitivity
// is the point.
func (t *Table) Fingerprint() uint64 {
	h := uint64(len(t.t1))*0x9e3779b97f4a7c15 ^ uint64(t.count)
	h = mixPair(h, t.seed1)
	h = mixPair(h, t.seed2)
	for _, sub := range [2][]slot{t.t1, t.t2} {
		for i := range sub {
			if sub[i].used {
				h = mixPair(h, uint64(i))
				h = mixPair(h, sub[i].key)
				h = mixPair(h, uint64(uint32(sub[i].val)))
			}
		}
	}
	return h
}

// mixPair folds v into the running hash h with an avalanche step.
func mixPair(h, v uint64) uint64 {
	return xrand.Mix(h ^ (v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)))
}

// Delete removes key, reporting whether it was present.
func (t *Table) Delete(key uint64) bool {
	if t.t1 == nil {
		return false
	}
	if s := &t.t1[t.h1(key)]; s.used && s.key == key {
		*s = slot{}
		t.count--
		return true
	}
	if s := &t.t2[t.h2(key)]; s.used && s.key == key {
		*s = slot{}
		t.count--
		return true
	}
	return false
}

// Range calls fn for every entry until fn returns false. Iteration
// order is unspecified.
func (t *Table) Range(fn func(key uint64, value int32) bool) {
	for i := range t.t1 {
		if t.t1[i].used && !fn(t.t1[i].key, t.t1[i].val) {
			return
		}
	}
	for i := range t.t2 {
		if t.t2[i].used && !fn(t.t2[i].key, t.t2[i].val) {
			return
		}
	}
}
