package cuckoo

import (
	"testing"
	"testing/quick"

	"msrp/internal/xrand"
)

func TestZeroValueUsable(t *testing.T) {
	var tb Table
	if _, ok := tb.Get(1); ok {
		t.Fatal("empty table returned a value")
	}
	tb.Put(1, 10)
	if v, ok := tb.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
}

func TestPutGetUpdate(t *testing.T) {
	tb := New(16)
	tb.Put(5, 50)
	tb.Put(5, 55)
	if v, _ := tb.Get(5); v != 55 {
		t.Fatalf("update failed: %d", v)
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d after update, want 1", tb.Len())
	}
}

func TestZeroKey(t *testing.T) {
	tb := New(4)
	tb.Put(0, 99)
	if v, ok := tb.Get(0); !ok || v != 99 {
		t.Fatalf("zero key lost: %d %v", v, ok)
	}
}

func TestMinPut(t *testing.T) {
	tb := New(4)
	tb.MinPut(7, 30)
	tb.MinPut(7, 50) // larger: ignored
	if v, _ := tb.Get(7); v != 30 {
		t.Fatalf("MinPut kept %d, want 30", v)
	}
	tb.MinPut(7, 10) // smaller: replaces
	if v, _ := tb.Get(7); v != 10 {
		t.Fatalf("MinPut kept %d, want 10", v)
	}
}

func TestGetOr(t *testing.T) {
	tb := New(4)
	if got := tb.GetOr(3, -1); got != -1 {
		t.Fatalf("GetOr default = %d", got)
	}
	tb.Put(3, 33)
	if got := tb.GetOr(3, -1); got != 33 {
		t.Fatalf("GetOr present = %d", got)
	}
}

func TestDelete(t *testing.T) {
	tb := New(8)
	tb.Put(11, 1)
	tb.Put(22, 2)
	if !tb.Delete(11) {
		t.Fatal("Delete present key returned false")
	}
	if tb.Delete(11) {
		t.Fatal("Delete absent key returned true")
	}
	if _, ok := tb.Get(11); ok {
		t.Fatal("key still present after Delete")
	}
	if v, ok := tb.Get(22); !ok || v != 2 {
		t.Fatal("unrelated key lost")
	}
	if tb.Len() != 1 {
		t.Fatalf("Len = %d", tb.Len())
	}
	var empty Table
	if empty.Delete(5) {
		t.Fatal("Delete on zero-value table returned true")
	}
}

func TestReserveEmptyAvoidsAllRehashes(t *testing.T) {
	const n = 100000
	tb := New(0)
	tb.Reserve(n)
	if got := tb.Rehashes(); got != 0 {
		t.Fatalf("Reserve on empty table counted %d rehashes", got)
	}
	for i := uint64(0); i < n; i++ {
		tb.Put(xrand.Mix(i), int32(i))
	}
	// Growth rehashes are impossible after Reserve(n); only unlucky kick
	// chains could rebuild, and at load <= maxLoad those are rare enough
	// to assert a hard bound of a couple.
	if got := tb.Rehashes(); got > 2 {
		t.Fatalf("%d rehashes after Reserve(%d) + %d inserts", got, n, n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tb.Get(xrand.Mix(i)); !ok || v != int32(i) {
			t.Fatalf("key %d lost after Reserve", i)
		}
	}
}

func TestReservePopulatedKeepsEntries(t *testing.T) {
	tb := New(0)
	for i := uint64(0); i < 1000; i++ {
		tb.Put(i, int32(i))
	}
	before := tb.Rehashes()
	tb.Reserve(50000)
	if tb.Rehashes() != before+1 {
		t.Fatalf("Reserve on populated table counted %d rehashes, want 1", tb.Rehashes()-before)
	}
	if tb.Len() != 1000 {
		t.Fatalf("Len = %d after Reserve", tb.Len())
	}
	for i := uint64(0); i < 1000; i++ {
		if v, ok := tb.Get(i); !ok || v != int32(i) {
			t.Fatalf("key %d lost by Reserve", i)
		}
	}
	for i := uint64(0); i < 50000; i++ {
		tb.Put(i, int32(i))
	}
	if got := tb.Rehashes(); got > before+3 {
		t.Fatalf("%d growth rehashes after a populated Reserve", got-before-1)
	}
}

func TestReserveNeverShrinks(t *testing.T) {
	tb := New(1 << 16)
	size := len(tb.t1)
	tb.Reserve(8)
	if len(tb.t1) != size {
		t.Fatalf("Reserve shrank the table from %d to %d", size, len(tb.t1))
	}
	if tb.Rehashes() != 0 {
		t.Fatalf("no-op Reserve counted a rehash")
	}
}

func TestReserveZeroValue(t *testing.T) {
	var tb Table
	tb.Reserve(100)
	tb.Put(1, 2)
	if v, ok := tb.Get(1); !ok || v != 2 {
		t.Fatalf("zero-value table broken after Reserve: %d %v", v, ok)
	}
}

func TestAgainstMapModel(t *testing.T) {
	rng := xrand.New(1)
	tb := New(0)
	model := make(map[uint64]int32)
	const ops = 200000
	for i := 0; i < ops; i++ {
		key := uint64(rng.Intn(5000))
		switch rng.Intn(4) {
		case 0, 1: // put
			val := int32(rng.Intn(1 << 20))
			tb.Put(key, val)
			model[key] = val
		case 2: // delete
			wantOK := false
			if _, present := model[key]; present {
				wantOK = true
				delete(model, key)
			}
			if gotOK := tb.Delete(key); gotOK != wantOK {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, key, gotOK, wantOK)
			}
		case 3: // get
			wantV, wantOK := model[key]
			gotV, gotOK := tb.Get(key)
			if gotOK != wantOK || (wantOK && gotV != wantV) {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, key, gotV, gotOK, wantV, wantOK)
			}
		}
		if tb.Len() != len(model) {
			t.Fatalf("op %d: Len %d != model %d", i, tb.Len(), len(model))
		}
	}
}

func TestLargeVolume(t *testing.T) {
	tb := New(0)
	const n = 300000
	for i := uint64(0); i < n; i++ {
		tb.Put(i*2654435761, int32(i))
	}
	if tb.Len() != n {
		t.Fatalf("Len = %d, want %d", tb.Len(), n)
	}
	for i := uint64(0); i < n; i++ {
		if v, ok := tb.Get(i * 2654435761); !ok || v != int32(i) {
			t.Fatalf("key %d: %d %v", i, v, ok)
		}
	}
}

func TestAdversarialSequentialKeys(t *testing.T) {
	// Dense sequential keys stress the hash mixing.
	tb := New(1024)
	for i := uint64(0); i < 50000; i++ {
		tb.Put(i, int32(i%1000))
	}
	for i := uint64(0); i < 50000; i++ {
		if v, ok := tb.Get(i); !ok || v != int32(i%1000) {
			t.Fatalf("sequential key %d lost", i)
		}
	}
}

func TestRange(t *testing.T) {
	tb := New(8)
	want := map[uint64]int32{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		tb.Put(k, v)
	}
	got := map[uint64]int32{}
	tb.Range(func(k uint64, v int32) bool {
		got[k] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %d entries", len(got))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("Range missed %d", k)
		}
	}
	// Early termination.
	visits := 0
	tb.Range(func(uint64, int32) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("Range continued after false: %d visits", visits)
	}
}

func TestQuickModelEquivalence(t *testing.T) {
	f := func(keys []uint64, vals []int16) bool {
		tb := New(0)
		model := map[uint64]int32{}
		for i, k := range keys {
			v := int32(i)
			if i < len(vals) {
				v = int32(vals[i])
			}
			tb.Put(k, v)
			model[k] = v
		}
		if tb.Len() != len(model) {
			return false
		}
		for k, v := range model {
			if got, ok := tb.Get(k); !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseTwoProbes(t *testing.T) {
	// Structural guarantee: Get never loops. We can't observe probes
	// directly, but we can verify lookups stay correct across many
	// rehashes (Rehashes advancing proves the kick path executed).
	tb := New(4)
	for i := uint64(0); i < 100000; i++ {
		tb.Put(xrand.Mix(i), int32(i))
	}
	if tb.Rehashes() == 0 {
		t.Log("note: no rehashes triggered (growth pre-empted all kicks)")
	}
	for i := uint64(0); i < 100000; i++ {
		if v, ok := tb.Get(xrand.Mix(i)); !ok || v != int32(i) {
			t.Fatalf("key %d lost after growth", i)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	tb := New(b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Put(uint64(i)*0x9e3779b97f4a7c15, int32(i))
	}
}

func BenchmarkGetHit(b *testing.B) {
	tb := New(1 << 20)
	for i := uint64(0); i < 1<<20; i++ {
		tb.Put(i, int32(i))
	}
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink, _ = tb.Get(uint64(i) & (1<<20 - 1))
	}
	_ = sink
}

func BenchmarkGetMiss(b *testing.B) {
	tb := New(1 << 16)
	for i := uint64(0); i < 1<<16; i++ {
		tb.Put(i, int32(i))
	}
	b.ResetTimer()
	var sink bool
	for i := 0; i < b.N; i++ {
		_, sink = tb.Get(uint64(i) | 1<<40)
	}
	_ = sink
}
