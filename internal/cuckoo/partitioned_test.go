package cuckoo

import (
	"testing"

	"msrp/internal/xrand"
)

// TestPartitionedRoutesAndAggregates: every key is found again through
// the partitioned view, the aggregates match a flat reference table,
// and routing really spreads keys across partitions.
func TestPartitionedRoutesAndAggregates(t *testing.T) {
	const parts = 8
	const shift = 61 // top 3 bits route
	p := NewPartitioned(parts, shift)
	flat := New(0)
	rng := xrand.New(7)
	want := make(map[uint64]int32)
	for i := 0; i < 4000; i++ {
		k := rng.Uint64()
		v := int32(rng.Intn(1 << 20))
		p.Table(p.Part(k)).MinPut(k, v)
		flat.MinPut(k, v)
		if old, ok := want[k]; !ok || v < old {
			want[k] = v
		}
	}
	if p.Len() != flat.Len() || p.Len() != len(want) {
		t.Fatalf("Len: partitioned %d, flat %d, reference %d", p.Len(), flat.Len(), len(want))
	}
	for k, v := range want {
		if got, ok := p.Get(k); !ok || got != v {
			t.Fatalf("Get(%x) = %d,%v want %d", k, got, ok, v)
		}
	}
	if p.GetOr(0xdeadbeef, -7) != -7 {
		t.Fatal("GetOr on an absent key did not return the default")
	}
	occupied := 0
	for i := 0; i < parts; i++ {
		if p.Table(i).Len() > 0 {
			occupied++
		}
	}
	if occupied < 2 {
		t.Fatalf("routing degenerated: %d of %d partitions occupied", occupied, parts)
	}
	seen := 0
	p.Range(func(k uint64, v int32) bool {
		if want[k] != v {
			t.Fatalf("Range visited (%x,%d), reference has %d", k, v, want[k])
		}
		seen++
		return true
	})
	if seen != len(want) {
		t.Fatalf("Range visited %d entries, want %d", seen, len(want))
	}
	if b := p.Bytes(); b <= 0 {
		t.Fatalf("Bytes = %d", b)
	}
}

// TestPartitionedClampsOverflow: keys whose routed index exceeds the
// partition count land in the last partition instead of panicking.
func TestPartitionedClampsOverflow(t *testing.T) {
	p := NewPartitioned(4, 0) // partition index = whole key: everything clamps
	p.Table(p.Part(^uint64(0))).Put(^uint64(0), 9)
	if got := p.Part(^uint64(0)); got != 3 {
		t.Fatalf("Part(max) = %d, want 3", got)
	}
	if v, ok := p.Get(^uint64(0)); !ok || v != 9 {
		t.Fatalf("Get after clamp = %d,%v", v, ok)
	}
}

// TestFingerprintLayoutSensitivity: identical build sequences agree,
// and the fingerprint distinguishes both different contents and the
// same contents laid out differently (different insertion order after
// a growth rehash), which is exactly the sensitivity the
// deterministic-layout merge tests rely on.
func TestFingerprintLayoutSensitivity(t *testing.T) {
	build := func(order []uint64) *Table {
		tb := New(0)
		for _, k := range order {
			tb.Put(k, int32(k&0xffff))
		}
		return tb
	}
	keys := make([]uint64, 200)
	rng := xrand.New(11)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	a, b := build(keys), build(keys)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical build sequences produced different fingerprints")
	}
	rev := make([]uint64, len(keys))
	for i, k := range keys {
		rev[len(keys)-1-i] = k
	}
	c := build(rev)
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("reversed insertion order produced the same fingerprint (layout not captured)")
	}
	d := build(keys[:len(keys)-1])
	if a.Fingerprint() == d.Fingerprint() {
		t.Fatal("different contents produced the same fingerprint")
	}

	pa, pb := NewPartitioned(4, 62), NewPartitioned(4, 62)
	for _, k := range keys {
		pa.Table(pa.Part(k)).MinPut(k, int32(k&0xffff))
		pb.Table(pb.Part(k)).MinPut(k, int32(k&0xffff))
	}
	if pa.Fingerprint() != pb.Fingerprint() {
		t.Fatal("identical partitioned builds produced different fingerprints")
	}
	pb.Table(0).Put(keys[0], -1)
	if pa.Fingerprint() == pb.Fingerprint() {
		t.Fatal("partitioned fingerprint missed a value change")
	}
}
