package msrp

import (
	"testing"

	"msrp/internal/graph"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

// pipelineFamilies mirrors the public crosscheck families (plus the
// skewed PathStarMix the work-stealing engine is measured on) at sizes
// where the σ-source solve runs in milliseconds, so the schedule sweep
// below stays cheap under -race.
func pipelineFamilies() []struct {
	name    string
	g       *graph.Graph
	sources []int32
} {
	rng := xrand.New(20200808)
	fam := func(name string, g *graph.Graph) struct {
		name    string
		g       *graph.Graph
		sources []int32
	} {
		n := int32(g.NumVertices())
		srcs := []int32{0, n / 3, 2 * n / 3}
		uniq := srcs[:0]
		seen := map[int32]bool{}
		for _, s := range srcs {
			if !seen[s] {
				seen[s] = true
				uniq = append(uniq, s)
			}
		}
		return struct {
			name    string
			g       *graph.Graph
			sources []int32
		}{name, g, uniq}
	}
	out := []struct {
		name    string
		g       *graph.Graph
		sources []int32
	}{
		fam("erdos-renyi-sparse", graph.RandomConnected(rng, 48, 80)),
		fam("erdos-renyi-dense", graph.RandomConnected(rng, 30, 160)),
		fam("grid-4x9", graph.Grid(4, 9)),
		fam("path-with-chords", graph.PathWithChords(rng, 40, 8)),
		fam("cycle-with-chords", graph.CycleWithChords(rng, 36, 6)),
		fam("barbell", graph.Barbell(8, 7)),
	}
	// The skewed family: deep path-tail sources interleaved with star
	// leaves, the shape that makes the pipelined schedule actually
	// overlap heavy builds with light enumerations.
	psm := graph.PathStarMix(xrand.New(31), 60, 18, 12)
	out = append(out, struct {
		name    string
		g       *graph.Graph
		sources []int32
	}{"path-star-mix", psm, []int32{59, 60, 40, 64, 20, 68}})
	return out
}

func solveSchedule(t *testing.T, g *graph.Graph, sources []int32, par int, barrier bool) ([]*rp.Result, *Stats) {
	t.Helper()
	p := testParams(77)
	p.Parallelism = par
	p.BarrierPipeline = barrier
	results, stats, err := solveT(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	return results, stats
}

// TestPipelinedSolveMatchesBarrier is the pipeline's bit-identity
// acceptance: for every family, the pipelined schedule at Parallelism
// ∈ {1, 2, 8} returns results identical to the barrier schedule (the
// pre-pipeline implementation) at every worker count. CI runs this
// under -race, so it doubles as the data-race proof for the fused
// build→enumerate stages and the early path-state release.
func TestPipelinedSolveMatchesBarrier(t *testing.T) {
	for _, f := range pipelineFamilies() {
		t.Run(f.name, func(t *testing.T) {
			baseline, _ := solveSchedule(t, f.g, f.sources, 1, true)
			for _, par := range []int{1, 2, 8} {
				for _, barrier := range []bool{false, true} {
					results, _ := solveSchedule(t, f.g, f.sources, par, barrier)
					for i := range results {
						if d := rp.Diff(baseline[i], results[i]); d != "" {
							t.Fatalf("P=%d barrier=%v: source %d differs: %s",
								par, barrier, f.sources[i], d)
						}
					}
				}
			}
		})
	}
}

// TestPipelinePeakSeedPathBytes pins the memory contract at the
// deterministic P=1 point: the barrier schedule holds every source's
// §7.1 path-expansion state across its stage boundary (peak = the sum
// over sources), while the pipelined schedule releases each source's
// state before building the next (peak = the largest single source).
func TestPipelinePeakSeedPathBytes(t *testing.T) {
	g := graph.PathStarMix(xrand.New(5), 80, 24, 16)
	sources := []int32{79, 80, 53, 84, 26, 88, 13, 92}

	_, barrierStats := solveSchedule(t, g, sources, 1, true)
	_, pipeStats := solveSchedule(t, g, sources, 1, false)

	if barrierStats.PeakSeedPathBytes <= 0 || pipeStats.PeakSeedPathBytes <= 0 {
		t.Fatalf("peak path-state bytes not recorded: barrier=%d pipelined=%d",
			barrierStats.PeakSeedPathBytes, pipeStats.PeakSeedPathBytes)
	}
	// Reconstruct the two deterministic P=1 values independently.
	p := testParams(77)
	sh, err := ssrp.NewShared(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	var sum, max int64
	for _, s := range sources {
		ps := sh.NewPerSource(s)
		ps.BuildSmallNear()
		b := ps.Small.PathStateBytes()
		sum += b
		if b > max {
			max = b
		}
	}
	if barrierStats.PeakSeedPathBytes != sum {
		t.Errorf("barrier peak = %d, want sum over sources %d", barrierStats.PeakSeedPathBytes, sum)
	}
	if pipeStats.PeakSeedPathBytes != max {
		t.Errorf("pipelined P=1 peak = %d, want max single source %d", pipeStats.PeakSeedPathBytes, max)
	}
	if pipeStats.PeakSeedPathBytes >= barrierStats.PeakSeedPathBytes {
		t.Errorf("pipelined peak %d not below barrier peak %d",
			pipeStats.PeakSeedPathBytes, barrierStats.PeakSeedPathBytes)
	}
}

// TestStageLatencyBreakdown: the new Stats stage timers are populated
// (every stage of a non-trivial solve takes measurable time) and the
// pipelined schedule reports the same stages as the barrier one.
func TestStageLatencyBreakdown(t *testing.T) {
	g := graph.CycleWithChords(xrand.New(8), 72, 8)
	sources := []int32{0, 24, 48}
	for _, barrier := range []bool{false, true} {
		_, stats := solveSchedule(t, g, sources, 2, barrier)
		for _, st := range []struct {
			name string
			d    int64
		}{
			{"per-source build", int64(stats.StagePerSourceBuild)},
			{"seed enumerate", int64(stats.StageSeedEnumerate)},
			{"center landmark", int64(stats.StageCenterLandmark)},
			{"assembly", int64(stats.StageAssembly)},
		} {
			if st.d <= 0 {
				t.Errorf("barrier=%v: stage %q recorded no time", barrier, st.name)
			}
		}
		// The merge can round to zero on a tiny table, but must never
		// be negative.
		if stats.StageSeedMerge < 0 {
			t.Errorf("barrier=%v: negative merge time", barrier)
		}
	}
}

// TestReleasedSmallNearPanicsOnPathExpansion pins the release
// contract: Value keeps answering, PathVertices panics.
func TestReleasedSmallNearPanicsOnPathExpansion(t *testing.T) {
	g := graph.Cycle(12)
	sh, err := ssrp.NewShared(g, []int32{0}, testParams(3))
	if err != nil {
		t.Fatal(err)
	}
	ps := sh.NewPerSource(0)
	ps.BuildSmallNear()
	before := ps.Small.Value(6, 5)
	if freed := ps.Small.ReleasePathState(); freed <= 0 {
		t.Fatalf("ReleasePathState freed %d bytes", freed)
	}
	if got := ps.Small.Value(6, 5); got != before {
		t.Fatalf("Value changed after release: %d -> %d", before, got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PathVertices after release did not panic")
		}
	}()
	ps.Small.PathVertices(6, 5)
}
