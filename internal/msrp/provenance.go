package msrp

import (
	"fmt"

	"msrp/internal/bfs"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// The multi-source provenance plane.
//
// The single-source pipeline can afford to remember *how* every
// d(s,r,e) was won: it computes those values with the classic algorithm
// and the crossing-edge witness is a two-int32 byproduct. The §8
// pipeline cannot — its landmark values emerge from a stack of
// build-run-discard Dijkstras (the §8.1 G_s, the §8.2.2 G_c), a shared
// seed table whose entries are minima over *other sources'* small
// paths, and a fixpoint sweep. Recording a full decision trail through
// that stack would couple tracking into every hot loop.
//
// Instead the plane retains three compact, immutable artifacts when
// Params.TrackPaths is set —
//
//  1. per source, the §7.1 witness snapshot (ssrp.ProvSnapshot) taken
//     between seed-shard enumeration and ReleasePathState, and the §8.1
//     G_s parent chains (auxProv);
//  2. per center, the §8.2.2 G_c parent chains (auxProv);
//  3. the merged §8.2.1 seed table itself —
//
// and *explains* a value on demand: given the final LenSR[r][i], it
// re-walks the assembly's candidate space (the §7.1 small value,
// one-hop landmark detours, the two MTC terms) against the final,
// immutable stage outputs until a candidate achieves the value exactly,
// then expands that candidate into a concrete walk. Every stage output
// except the mutually-recursive landmark values is written once, so at
// sweep convergence a realizing candidate is guaranteed to exist; the
// landmark recursion terminates because each hop strictly decreases the
// explained value. The expansion is validated (length == value) before
// it is returned, so a reconstructed path is a certificate, never a
// guess.
type Provenance struct {
	sh     *ssrp.Shared
	ctr    *Centers
	perSrc []*ssrp.PerSource
	scs    []*sourceCenter
	cl     *centerLandmark
	// seed is the merged §8.2.1 table behind the seedReader interface:
	// a flat cuckoo.Table from the barrier schedules, a
	// cuckoo.Partitioned from the streaming one — the explain pass only
	// needs the O(1) Get either provides.
	seed seedReader
}

// newProvenance bundles the retained artifacts after the pipeline
// stages have run. It installs itself as every source's landmark-path
// expander.
func newProvenance(sh *ssrp.Shared, ctr *Centers, perSrc []*ssrp.PerSource,
	scs []*sourceCenter, cl *centerLandmark, seed seedReader) *Provenance {
	pv := &Provenance{sh: sh, ctr: ctr, perSrc: perSrc, scs: scs, cl: cl, seed: seed}
	for i := range perSrc {
		si := i
		perSrc[i].SetLandmarkPath(func(r int32, j int) ([]int32, error) {
			return pv.landmarkPath(si, r, j)
		})
	}
	return pv
}

// Bytes returns the plane's retained footprint beyond the per-source
// state (which ssrp.PerSource.ProvenanceBytes accounts): the §8.1 and
// §8.2.2 parent chains, the seed table, and the center forest — the
// trees and ancestries an untracked solve would have dropped with the
// rest of the §8 machinery but the explain pass keeps re-walking.
func (pv *Provenance) Bytes() int64 {
	var b int64
	for _, sc := range pv.scs {
		b += sc.prov.bytes()
	}
	for _, ap := range pv.cl.prov {
		b += ap.bytes()
	}
	b += pv.seed.Bytes()
	for _, c := range pv.ctr.List {
		b += pv.ctr.Tree[c].Bytes() + pv.ctr.Anc[c].Bytes()
	}
	return b
}

// landmarkPath expands a d(s,r,e_i)-realizing walk for the final
// LenSR[r][i] of source index si (s first, r last), validating its
// length against the value it explains.
func (pv *Provenance) landmarkPath(si int, r int32, i int) ([]int32, error) {
	ps := pv.perSrc[si]
	row := ps.LenSR[r]
	if row == nil || i < 0 || i >= len(row) {
		return nil, fmt.Errorf("msrp: no landmark value for r=%d i=%d", r, i)
	}
	v := row[i]
	if v >= rp.Inf {
		return nil, fmt.Errorf("msrp: landmark path requested for an unreachable value (r=%d i=%d)", r, i)
	}
	e := ps.EdgeAt(r, i)
	p, _, err := pv.expandLenSR(si, r, int32(i), e, v, 0)
	if err != nil {
		return nil, err
	}
	if int32(len(p))-1 != v {
		return nil, fmt.Errorf("msrp: provenance expansion length %d != value %d (r=%d i=%d)", len(p)-1, v, r, i)
	}
	return p, nil
}

// expandLenSR finds and expands a candidate achieving exactly v =
// LenSR[r][i] for edge e (shared-prefix index i). The scan mirrors the
// assembly's candidate space; every accepted candidate is re-validated
// for e-avoidance, so the result is sound even where the assembly's
// sharper interval arguments were in play.
//
// Alongside the walk it reports *which* candidate won, in the compact
// plane's vocabulary (compact.go): the §7.1 small value, a landmark
// detour with a canonical or recursively-expanded prefix, or one of the
// two MTC terms — the compaction pass keeps the winner, not the search.
func (pv *Provenance) expandLenSR(si int, r, i, e int32, v int32, depth int) ([]int32, winner, error) {
	ps := pv.perSrc[si]
	g := pv.sh.G
	if depth > g.NumVertices()+1 {
		return nil, winner{}, fmt.Errorf("msrp: provenance recursion exceeded %d hops (r=%d i=%d)", depth, r, i)
	}

	// 1. The §7.1 small value, expanded from the witness snapshot.
	if ps.Small.Value(r, int(i)) == v {
		if p := ps.Snap.PathVertices(r, int(i)); p != nil {
			return p, winner{kind: cSmall}, nil
		}
	}

	// 2. Through another landmark r2: d(s,r2,e) + |r2 r|, the form the
	// interval-avoidance candidates and the fixpoint sweeps share. The
	// prefix is the canonical s→r2 path when e is off it, else the
	// r2-value's own expansion (strictly smaller value ⇒ termination).
	for _, r2 := range pv.sh.List {
		if r2 == r {
			continue
		}
		dr2r := pv.sh.Tree[r2].Dist[r]
		if dr2r <= 0 {
			continue
		}
		if pv.sh.Anc[r2].EdgeOnRootPath(g, e, r) {
			continue // suffix would cross e
		}
		d2 := ps.DSR(r2, int(i), e)
		if d2 >= rp.Inf || d2+dr2r != v {
			continue
		}
		var prefix []int32
		kind := cViaCanon
		if !ps.AncS.EdgeOnRootPath(g, e, r2) {
			prefix = ps.Ts.PathTo(r2)
		} else {
			var err error
			if prefix, _, err = pv.expandLenSR(si, r2, i, e, d2, depth+1); err != nil {
				continue
			}
			kind = cViaChain
		}
		return appendLeg(prefix, pv.sh.Tree[r2].PathTo(r)), winner{kind: kind, r2: r2}, nil
	}

	// 3. MTC term 1: |s c| + d(c,r,e) through a center whose canonical
	// prefix avoids e; the suffix expands through the §8.2.2 plane.
	for _, c := range pv.ctr.List {
		if c == r || !ps.Ts.Reachable(c) {
			continue
		}
		if ps.AncS.EdgeOnRootPath(g, e, c) {
			continue
		}
		d1 := pv.cl.dCR(pv.sh, c, r, e)
		if d1 >= rp.Inf || ps.Ts.Dist[c]+d1 != v {
			continue
		}
		suffix, err := pv.expandCR(c, r, e)
		if err != nil {
			continue
		}
		return appendLeg(ps.Ts.PathTo(c), suffix), winner{kind: cPath}, nil
	}

	// 4. MTC term 2: d(s,c,e) + |c r| through a center whose canonical
	// suffix (in T_c) avoids e; the prefix expands through the §8.1
	// plane.
	for _, c := range pv.ctr.List {
		dcr := pv.ctr.Tree[c].Dist[r]
		if dcr < 0 {
			continue
		}
		if pv.ctr.Anc[c].EdgeOnRootPath(g, e, r) {
			continue
		}
		d2 := pv.scs[si].dSC(c, int(i), e)
		if d2 >= rp.Inf || d2+dcr != v {
			continue
		}
		prefix, err := pv.expandSC(si, c, i, e)
		if err != nil {
			continue
		}
		return appendLeg(prefix, pv.ctr.Tree[c].PathTo(r)), winner{kind: cPath}, nil
	}

	return nil, winner{}, fmt.Errorf("msrp: no provenance candidate realizes LenSR value %d (r=%d i=%d; non-converged sweep?)", v, r, i)
}

// expandSC expands a d(s,c,e)-realizing walk (s … c) for source index
// si through the §8.1 G_s parent chains.
func (pv *Provenance) expandSC(si int, c, i, e int32) ([]int32, error) {
	ps := pv.perSrc[si]
	if c == ps.S {
		return []int32{ps.S}, nil
	}
	if !ps.AncS.EdgeOnRootPath(pv.sh.G, e, c) {
		return ps.Ts.PathTo(c), nil // canonical s→c avoids e outright
	}
	ap := pv.scs[si].prov
	if ap == nil {
		return nil, fmt.Errorf("msrp: §8.1 provenance missing (bug: solve did not track)")
	}
	node, err := ap.node(c, i)
	if err != nil {
		return nil, err
	}
	return pv.expandGsNode(si, ap, node)
}

// expandGsNode expands the G_s shortest path to the given node into the
// graph walk it stands for. Arc decoding is by node identity: [s]→[c]
// arcs are canonical prefixes, [s]→[c,e] arcs are §7.1 small paths
// (snapshot expansion), and center-to-center arcs are canonical legs in
// the predecessor center's BFS tree.
func (pv *Provenance) expandGsNode(si int, ap *auxProv, node int32) ([]int32, error) {
	ps := pv.perSrc[si]
	own, idx, par := ap.nodeOwn[node], ap.nodeIdx[node], ap.parent[node]
	if par < 0 {
		return nil, fmt.Errorf("msrp: G_s node %d has no parent (unreachable?)", node)
	}
	if par == 0 {
		if idx < 0 {
			return ps.Ts.PathTo(own), nil // [s] → [c] canonical arc
		}
		if p := ps.Snap.PathVertices(own, int(idx)); p != nil {
			return p, nil // [s] → [c,e] small-path arc
		}
		return nil, fmt.Errorf("msrp: G_s small arc to (%d,%d) has no snapshot path", own, idx)
	}
	prefix, err := pv.expandGsNode(si, ap, par)
	if err != nil {
		return nil, err
	}
	return appendLeg(prefix, pv.ctr.Tree[ap.nodeOwn[par]].PathTo(own)), nil
}

// expandCR expands a d(c,r,e)-realizing walk (c … r) through the
// §8.2.2 G_c parent chains.
func (pv *Provenance) expandCR(c, r, e int32) ([]int32, error) {
	if c == r {
		return []int32{c}, nil
	}
	tc := pv.ctr.Tree[c]
	if !pv.ctr.Anc[c].EdgeOnRootPath(pv.sh.G, e, r) {
		return tc.PathTo(r), nil // canonical c→r avoids e outright
	}
	ap := pv.cl.provAt(c)
	if ap == nil {
		return nil, fmt.Errorf("msrp: §8.2.2 provenance missing (bug: solve did not track)")
	}
	child, ok := tc.ChildEndpoint(pv.sh.G, e)
	if !ok {
		return nil, fmt.Errorf("msrp: edge %d is not a T_%d tree edge", e, c)
	}
	node, err := ap.node(r, tc.Dist[child]-1)
	if err != nil {
		return nil, err
	}
	return pv.expandGcNode(c, ap, node)
}

// expandGcNode expands the G_c shortest path to the given node. Arc
// decoding by node identity again: [c]→[r] arcs are canonical prefixes
// in T_c, [c]→[r,e] arcs are §8.2.1 seed entries (a suffix of some
// source's small path through c), and landmark-to-landmark arcs are
// canonical legs in the predecessor landmark's BFS tree.
func (pv *Provenance) expandGcNode(c int32, ap *auxProv, node int32) ([]int32, error) {
	own, idx, par := ap.nodeOwn[node], ap.nodeIdx[node], ap.parent[node]
	if par < 0 {
		return nil, fmt.Errorf("msrp: G_c node %d has no parent (unreachable?)", node)
	}
	if par == 0 {
		if idx < 0 {
			return pv.ctr.Tree[c].PathTo(own), nil // [c] → [r] canonical arc
		}
		e := treeEdgeAt(pv.ctr.Tree[c], own, idx)
		w, ok := pv.seed.Get(packCRE(c, own, e))
		if !ok {
			return nil, fmt.Errorf("msrp: G_c seed arc (%d,%d,%d) missing from the seed table", c, own, e)
		}
		return pv.seedSuffix(c, own, e, w)
	}
	prefix, err := pv.expandGcNode(c, ap, par)
	if err != nil {
		return nil, err
	}
	return appendLeg(prefix, pv.sh.Tree[ap.nodeOwn[par]].PathTo(own)), nil
}

// seedSuffix locates a source whose §7.1 small path to landmark r
// realizes the seed entry (c, r, e) → w — the path passes c exactly w
// hops before r — and returns that c … r suffix. The seed table stores
// only the minimum; the realizing source is recovered by scanning the
// retained snapshots with the same enumeration rules buildSeedShard
// used, so an entry always has a witness among them.
func (pv *Provenance) seedSuffix(c, r, e int32, w int32) ([]int32, error) {
	g := pv.sh.G
	for _, ps2 := range pv.perSrc {
		ts2 := ps2.Ts
		if r == ps2.S || !ts2.Reachable(r) {
			continue
		}
		if !ps2.AncS.EdgeOnRootPath(g, e, r) {
			continue // e not on this source's canonical path to r
		}
		child, ok := ts2.ChildEndpoint(g, e)
		if !ok {
			continue
		}
		i2 := ts2.Dist[child] - 1
		if i2 < ps2.Small.NearStart(r) || ps2.Small.Value(r, int(i2)) >= rp.Inf {
			continue
		}
		path := ps2.Snap.PathVertices(r, int(i2))
		pos := len(path) - 1 - int(w)
		if pos >= 0 && pos < len(path)-1 && path[pos] == c {
			return path[pos:], nil
		}
	}
	return nil, fmt.Errorf("msrp: no source path realizes seed entry (%d,%d,%d)=%d", c, r, e, w)
}

// appendLeg joins a walk ending at v with a canonical leg starting at
// v, dropping the duplicated junction vertex.
func appendLeg(prefix, leg []int32) []int32 {
	return append(prefix, leg[1:]...)
}

// treeEdgeAt returns the edge id at position j (0-based from the root)
// of the canonical tree path to v.
func treeEdgeAt(t *bfs.Tree, v int32, j int32) int32 {
	x := v
	for d := t.Dist[v] - 1; d > j; d-- {
		x = t.Parent[x]
	}
	return t.ParentEdge[x]
}

// auxProv is the retained provenance of one build-run-discard auxiliary
// Dijkstra (§8.1 G_s, §8.2.2 G_c): the parent chains plus the node
// decode tables that turn a node id back into its (owner, path-edge
// index) meaning. 12 bytes per auxiliary node, immutable after the
// build, byte-accounted into Provenance.Bytes.
type auxProv struct {
	parent  []int32
	nodeOwn []int32 // owner vertex (center/landmark) per node; -1 for node 0
	nodeIdx []int32 // covered path-edge index per [x,e] node; -1 for [x] nodes
	base    map[int32]int32
	start   map[int32]int32
}

// node maps (owner, covered index) back to the [owner, e] node id.
func (ap *auxProv) node(own, i int32) (int32, error) {
	base, ok := ap.base[own]
	if !ok {
		return 0, fmt.Errorf("msrp: no aux block for owner %d", own)
	}
	n := base + (i - ap.start[own])
	if n < base || int(n) >= len(ap.parent) || ap.nodeOwn[n] != own {
		return 0, fmt.Errorf("msrp: index %d outside owner %d's aux block", i, own)
	}
	return n, nil
}

func (ap *auxProv) bytes() int64 {
	if ap == nil {
		return 0
	}
	return 12*int64(len(ap.parent)) + 24*int64(len(ap.base))
}
