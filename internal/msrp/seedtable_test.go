package msrp

import (
	"context"
	"testing"

	"msrp/internal/engine"
	"msrp/internal/graph"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

func engineScratch() *engine.Scratch { return &engine.Scratch{} }

// buildSeedForTest replicates the SolveShared stages up to the §8.2.1
// seed table at the given parallelism and dumps the table to a map.
func buildSeedForTest(t *testing.T, g *graph.Graph, sources []int32, par int) (map[uint64]int32, int, int) {
	t.Helper()
	p := testParams(41)
	p.Parallelism = par
	sh, err := ssrp.NewShared(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	ctr := newCenters(sh, sh.DeriveRNG())
	perSrc := make([]*ssrp.PerSource, len(sources))
	for i, s := range sources {
		perSrc[i] = sh.NewPerSource(s)
		perSrc[i].BuildSmallNear()
	}
	seed, rehashes, err := buildSeedTable(context.Background(), sh, perSrc, ctr)
	if err != nil {
		t.Fatal(err)
	}
	dump := make(map[uint64]int32, seed.Len())
	seed.Range(func(key uint64, val int32) bool {
		dump[key] = val
		return true
	})
	if len(dump) != seed.Len() {
		t.Fatalf("Range visited %d entries, Len reports %d", len(dump), seed.Len())
	}
	return dump, seed.Len(), rehashes
}

// TestSeedTableSequentialVsSharded asserts the sharded §8.2.1 build's
// core invariant: because MinPut merges with a commutative, idempotent
// minimum, the merged table's contents are identical for every worker
// count — here on the skewed path+star family where per-source work
// differs by orders of magnitude and the engine actually steals.
func TestSeedTableSequentialVsSharded(t *testing.T) {
	g := graph.PathStarMix(xrand.New(9), 120, 40, 24)
	// Deep path sources (heavy) mixed with star leaves (trivial).
	sources := []int32{119, 90, 60, 120, 125, 130, 135, 140}

	want, wantLen, _ := buildSeedForTest(t, g, sources, 1)
	if wantLen == 0 {
		t.Fatal("sequential seed table is empty — workload enumerates no small paths")
	}
	for _, par := range []int{2, 8} {
		got, gotLen, rehashes := buildSeedForTest(t, g, sources, par)
		if gotLen != wantLen {
			t.Fatalf("Parallelism=%d: %d entries, sequential has %d", par, gotLen, wantLen)
		}
		for k, v := range want {
			if gv, ok := got[k]; !ok || gv != v {
				t.Fatalf("Parallelism=%d: key %x = %d,%v, sequential %d", par, k, gv, ok, v)
			}
		}
		if rehashes != 0 {
			t.Errorf("Parallelism=%d: %d rehashes despite presizing", par, rehashes)
		}
	}
}

// TestSeedEstimateCoversActual sanity-checks the presizing estimate:
// it must dominate the real per-source entry counts on the seed-heavy
// family (otherwise shards pay growth rehashes again).
func TestSeedEstimateCoversActual(t *testing.T) {
	g := graph.PathStarMix(xrand.New(10), 100, 30, 10)
	sources := []int32{99, 100}
	p := testParams(43)
	sh, err := ssrp.NewShared(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	ctr := newCenters(sh, sh.DeriveRNG())
	for _, s := range sources {
		ps := sh.NewPerSource(s)
		ps.BuildSmallNear()
		shard := buildSeedShard(ps, ctr, engineScratch())
		if est := estimateSeedEntries(ps, ctr); shard.Len() > est {
			t.Errorf("source %d: estimate %d below actual %d entries", s, est, shard.Len())
		}
		if shard.Rehashes() != 0 {
			t.Errorf("source %d: shard paid %d rehashes", s, shard.Rehashes())
		}
	}
}
