package msrp

import (
	"testing"

	"msrp/internal/graph"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

// trackedSolve runs a tracked solve on a sparse chorded cycle with a
// shrunken suffix unit — a configuration measured to make the small,
// canonical-detour, AND chained-detour classes all win entries (the
// MTC classes never win on these families: the landmark-detour scan
// precedes them and always finds a realizer; TestCompactPathArena
// covers their storage directly).
func trackedSolve(t *testing.T, seed uint64) (*graph.Graph, *Solution) {
	t.Helper()
	g := graph.CycleWithChords(xrand.New(7), 120, 6)
	p := DefaultParams()
	p.Seed = seed
	p.SampleBoost = 2
	p.SuffixScale = 0.1
	p.TrackPaths = true
	sol, err := Solve(g, []int32{0, 30, 60, 90}, p)
	if err != nil {
		t.Fatal(err)
	}
	return g, sol
}

// TestCompactProvenanceBitIdentical is the compaction contract: for
// every finite LenSR entry of every source, the compact expansion is
// byte-for-byte the walk the full plane produced, and the retained
// footprint shrinks.
func TestCompactProvenanceBitIdentical(t *testing.T) {
	g, sol := trackedSolve(t, 5)
	pv := sol.Prov
	if pv == nil {
		t.Fatal("tracked solve returned no provenance plane")
	}

	// Raw expansions of the complete finite candidate space, captured
	// before compaction drops the plane.
	type key struct {
		si int
		r  int32
		i  int
	}
	raw := make(map[key][]int32)
	kinds := make(map[uint8]int)
	for si, ps := range sol.PerSource {
		for r, row := range ps.LenSR {
			for i, v := range row {
				if v >= rp.Inf {
					continue
				}
				e := ps.EdgeAt(r, i)
				p, w, err := pv.expandLenSR(si, r, int32(i), e, v, 0)
				if err != nil {
					t.Fatalf("raw expand (si=%d r=%d i=%d): %v", si, r, i, err)
				}
				raw[key{si, r, i}] = p
				kinds[w.kind]++
			}
		}
	}
	if len(raw) == 0 {
		t.Fatal("no finite LenSR entries; test graph too sparse")
	}
	for _, k := range []uint8{cSmall, cViaCanon, cViaChain} {
		if kinds[k] == 0 {
			t.Fatalf("winner class %d never exercised (kinds=%v); tune the test graph", k, kinds)
		}
	}

	rawBytes := sol.Stats.ProvenanceBytes
	if err := sol.CompactProvenance(); err != nil {
		t.Fatal(err)
	}
	if sol.Prov != nil {
		t.Fatal("CompactProvenance left the full plane installed")
	}
	if len(sol.Compact) != len(sol.PerSource) {
		t.Fatalf("got %d compact records for %d sources", len(sol.Compact), len(sol.PerSource))
	}
	if sol.Stats.ProvenanceBytes >= rawBytes {
		t.Fatalf("compaction did not shrink ProvenanceBytes: %d -> %d", rawBytes, sol.Stats.ProvenanceBytes)
	}
	t.Logf("ProvenanceBytes %d -> %d (%.1fx); winner kinds: %v",
		rawBytes, sol.Stats.ProvenanceBytes, float64(rawBytes)/float64(sol.Stats.ProvenanceBytes), kinds)

	for k, want := range raw {
		got, err := sol.Compact[k.si].expand(k.r, k.i, 0)
		if err != nil {
			t.Fatalf("compact expand (si=%d r=%d i=%d): %v", k.si, k.r, k.i, err)
		}
		if len(got) != len(want) {
			t.Fatalf("compact expand (si=%d r=%d i=%d): length %d != raw %d", k.si, k.r, k.i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("compact expand (si=%d r=%d i=%d): vertex %d is %d, raw had %d",
					k.si, k.r, k.i, j, got[j], want[j])
			}
		}
	}

	// End to end: the repointed ReconstructPath still certifies every
	// answer against the compact plane.
	for i, res := range sol.Results {
		if _, failures := rp.VerifyReconstructions(g, res, 1, sol.PerSource[i].ReconstructPath); len(failures) > 0 {
			t.Fatalf("source %d post-compaction reconstruction failures: %v", i, failures[:min(3, len(failures))])
		}
	}
}

// TestCompactProvenanceDeterministic: same solve, same compaction —
// bit-identical layout and footprint.
func TestCompactProvenanceDeterministic(t *testing.T) {
	_, a := trackedSolve(t, 9)
	_, b := trackedSolve(t, 9)
	if err := a.CompactProvenance(); err != nil {
		t.Fatal(err)
	}
	if err := b.CompactProvenance(); err != nil {
		t.Fatal(err)
	}
	for i := range a.Compact {
		ca, cb := a.Compact[i], b.Compact[i]
		if ca.Bytes() != cb.Bytes() {
			t.Fatalf("source %d: compact bytes differ: %d vs %d", i, ca.Bytes(), cb.Bytes())
		}
		for j := range ca.kinds {
			if ca.kinds[j] != cb.kinds[j] || ca.aux[j] != cb.aux[j] {
				t.Fatalf("source %d slot %d: layout differs", i, j)
			}
		}
		for j := range ca.arena {
			if ca.arena[j] != cb.arena[j] {
				t.Fatalf("source %d arena word %d differs", i, j)
			}
		}
	}
}

// TestCompactPathArena covers the cPath storage class directly (no
// natural solve on the undirected test families produces an MTC winner
// — the landmark-detour scan always realizes the value first): a
// hand-built record must return an independent copy of the arena walk.
func TestCompactPathArena(t *testing.T) {
	cp := &CompactProv{
		base:  map[int32]int32{7: 0},
		kinds: []uint8{cPath, cNone},
		aux:   []int32{0, -1},
		arena: []int32{4, 3, 9, 2, 7},
	}
	// slot (7,0) is a stored 4-vertex walk; the trailing cNone slot
	// pads the row to the LenSR shape expand bounds against.
	cp.ps = &ssrp.PerSource{LenSR: map[int32][]int32{7: {3, rp.Inf}}}
	got, err := cp.expand(7, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{3, 9, 2, 7}
	if len(got) != len(want) {
		t.Fatalf("arena expand: got %v want %v", got, want)
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("arena expand: got %v want %v", got, want)
		}
	}
	got[0] = 99
	if cp.arena[1] != 3 {
		t.Fatal("arena expansion aliases the arena; must copy")
	}
	if _, err := cp.expand(7, 1, 0); err == nil {
		t.Fatal("expanding a cNone slot must error")
	}
}

// TestCompactProvenanceNoTracking: compaction of an untracked solve is
// a no-op, not an error.
func TestCompactProvenanceNoTracking(t *testing.T) {
	g := graph.Cycle(30)
	sol, err := Solve(g, []int32{0, 15}, testParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := sol.CompactProvenance(); err != nil {
		t.Fatal(err)
	}
	if sol.Compact != nil {
		t.Fatal("untracked solve grew compact records")
	}
}

// TestBottleneckTrackedServesLengthsOnly: TrackPaths + PaperBottleneck
// is no longer rejected at Validate — the solve downgrades tracking per
// source (the §8.3.2 values are build-run-discard), lengths stay
// bit-identical to the untracked bottleneck solve, and path queries
// fail per query.
func TestBottleneckTrackedServesLengthsOnly(t *testing.T) {
	g := graph.CycleWithChords(xrand.New(11), 60, 10)
	p := testParams(4)
	p.PaperBottleneck = true
	sources := []int32{0, 30}

	plain, err := Solve(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	p.TrackPaths = true
	tracked, err := Solve(g, sources, p)
	if err != nil {
		t.Fatalf("tracked bottleneck solve rejected: %v", err)
	}
	for i := range sources {
		if d := rp.Diff(plain.Results[i], tracked.Results[i]); d != "" {
			t.Fatalf("source %d: tracked bottleneck lengths diverged: %s", sources[i], d)
		}
	}
	if tracked.Prov != nil || tracked.Stats.ProvenanceBytes != 0 {
		t.Fatalf("bottleneck solve retained a provenance plane (%d bytes)", tracked.Stats.ProvenanceBytes)
	}
	for i, ps := range tracked.PerSource {
		if ps.TrackPaths {
			t.Fatalf("source %d still marked tracked under PaperBottleneck", i)
		}
		if _, err := ps.ReconstructPath(1, 0); err == nil {
			t.Fatalf("source %d: ReconstructPath succeeded without provenance", i)
		}
	}
	if err := tracked.CompactProvenance(); err != nil || tracked.Compact != nil {
		t.Fatalf("bottleneck compaction should be a no-op, got compact=%v err=%v", tracked.Compact, err)
	}
}
