package msrp

import (
	"sort"

	"msrp/internal/engine"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// This file implements the paper's §8.3 faithfully: bottleneck edges
// (Definition 23) and the §8.3.2 auxiliary graph that computes
// sr ⋄ B[s,r,i] for every interval of every source→landmark path. It is
// selected with Params.PaperBottleneck and compared against the default
// assembly (interval avoidance + fixpoint sweeps) by experiment E10.
//
// The paper's final per-edge rule is Lemma 24:
//
//	d(s,r,e) = min( MTC(s,r,e), sr ⋄ B[s,r,i] )      for e in interval i,
//
// where B[s,r,i] maximizes MTC over the interval (§8.3.1) and the
// second term is resolved by one Dijkstra per source over nodes
// [s], [r'], [s,r,i] — the mutual recursion between landmark values
// rides on the chain arcs [s,r',j] → [s,r,i].
//
// Known caveat (DESIGN.md §3): on *terminal* intervals (the paper's
// construction has no right-boundary center there) the argmax-by-MTC
// edge need not maximize the true sr⋄·, and applying its value to the
// other interval edges can in principle undershoot. The default mode
// avoids the corner; this mode reproduces the paper, and E10 measures
// whether the corner bites in practice.

// bottleneckState carries the §8.3 data for one source.
type bottleneckState struct {
	// mtcRow[r][i] = MTC(s, r, e_i) for the i-th edge of the sr path
	// (rp.Inf where both terms are unavailable).
	mtcRow map[int32][]int32
	// boundaries[r] = interval boundary positions on the sr path.
	boundaries map[int32][]int32
	// bottleneckIdx[r][q] = path index of B[s,r,q] for interval q.
	bottleneckIdx map[int32][]int32
	// value[r][q] = computed sr ⋄ B[s,r,q].
	value map[int32][]int32

	// Aux graph size counters (E9/E10 observability).
	NumNodes int
	NumArcs  int
}

// computeMTCRow fills MTC(s,r,·) for every edge of the sr path using
// the §8.1 (dSC) and §8.2 (dCR) answers, given the interval boundary
// decomposition. Shared by both assembly modes.
func computeMTCRow(ps *ssrp.PerSource, ctr *Centers, sc *sourceCenter, cl *centerLandmark,
	r int32, path []int32, edges []int32, boundaries []int32) []int32 {
	sh := ps.Sh
	ts := ps.Ts
	l := len(edges)
	row := make([]int32, l)
	for i := range row {
		row[i] = rp.Inf
	}
	for q := 0; q+1 < len(boundaries); q++ {
		lo, hi := boundaries[q], boundaries[q+1]
		c1 := path[lo]
		c2 := path[hi]
		lastInterval := int(hi) == l
		for i := lo; i < hi; i++ {
			e := edges[i]
			best := rp.Inf
			if d1 := cl.dCR(sh, c1, r, e); d1 < rp.Inf {
				if cand := ts.Dist[c1] + d1; cand < best {
					best = cand
				}
			}
			if !lastInterval {
				if d2 := sc.dSC(c2, int(i), e); d2 < rp.Inf {
					if dcr := ctr.Tree[c2].Dist[r]; dcr >= 0 {
						if cand := d2 + dcr; cand < best {
							best = cand
						}
					}
				}
			}
			row[i] = best
		}
	}
	return row
}

// buildBottleneck runs §8.3 for one source: picks bottleneck edges per
// interval (§8.3.1) and solves the §8.3.2 auxiliary graph.
func buildBottleneck(ps *ssrp.PerSource, ctr *Centers, sc *sourceCenter, cl *centerLandmark, scr *engine.Scratch) *bottleneckState {
	sh := ps.Sh
	ts := ps.Ts
	g := sh.G
	bs := &bottleneckState{
		mtcRow:        make(map[int32][]int32, len(sh.List)),
		boundaries:    make(map[int32][]int32, len(sh.List)),
		bottleneckIdx: make(map[int32][]int32, len(sh.List)),
		value:         make(map[int32][]int32, len(sh.List)),
	}

	// Pass 1: MTC rows, interval boundaries, argmax-MTC bottlenecks.
	type lmNode struct {
		r     int32
		node  int32 // [r] node id
		base  int32 // first [s,r,i] node id
		edges []int32
	}
	var lms []lmNode
	next := int32(1)
	for _, r := range sh.List {
		if r == ps.S || !ts.Reachable(r) {
			continue
		}
		lms = append(lms, lmNode{r: r, node: next})
		next++
	}
	pathBuf := scr.Int32(g.NumVertices() + 1)
	for li := range lms {
		lm := &lms[li]
		r := lm.r
		path := ts.PathInto(pathBuf, r) // transient; lm.edges below is retained
		edges := ts.PathEdgesTo(r)
		lm.edges = edges
		boundaries := ctr.intervalsOn(path)
		mtc := computeMTCRow(ps, ctr, sc, cl, r, path, edges, boundaries)
		numIv := len(boundaries) - 1
		bidx := make([]int32, numIv)
		for q := 0; q < numIv; q++ {
			lo, hi := boundaries[q], boundaries[q+1]
			best := lo
			for i := lo + 1; i < hi; i++ {
				// argmax of MTC; Inf counts as the hardest to avoid,
				// matching Definition 23 (a bridge-like edge maximizes
				// sr⋄e trivially).
				if mtc[i] > mtc[best] {
					best = i
				}
			}
			bidx[q] = best
		}
		bs.mtcRow[r] = mtc
		bs.boundaries[r] = boundaries
		bs.bottleneckIdx[r] = bidx
		lm.base = next
		next += int32(numIv)
	}
	total := int(next)

	// Pass 2: arcs.
	bld := ssrp.AttachedBuilder(scr, total, total*4)
	for li := range lms {
		bld.AddArc(0, lms[li].node, ts.Dist[lms[li].r]) // [s]→[r']
	}
	// intervalOfIdx finds the interval q of path index i for landmark
	// r' (boundary positions are sorted).
	intervalOfIdx := func(r int32, i int32) int {
		b := bs.boundaries[r]
		q := sort.Search(len(b), func(k int) bool { return b[k] > i }) - 1
		if q < 0 {
			q = 0
		}
		if q >= len(b)-1 {
			q = len(b) - 2
		}
		return q
	}
	for li := range lms {
		lm := &lms[li]
		r := lm.r
		bidx := bs.bottleneckIdx[r]
		for q := range bidx {
			node := lm.base + int32(q)
			i := bidx[q]
			e := lm.edges[i]
			// [s] arcs: the direct MTC value and the §7.1 small value.
			if v := bs.mtcRow[r][i]; v < rp.Inf {
				bld.AddArc(0, node, v)
			}
			if v := ps.Small.Value(r, int(i)); v < rp.Inf {
				bld.AddArc(0, node, v)
			}
			// Landmark hops.
			for lj := range lms {
				lm2 := &lms[lj]
				r2 := lm2.r
				if r2 == r {
					continue
				}
				dRR := sh.Tree[r2].Dist[r]
				if dRR < 0 {
					continue
				}
				if sh.Anc[r2].EdgeOnRootPath(g, e, r) {
					continue // B on the canonical r'→r path
				}
				if !ps.AncS.EdgeOnRootPath(g, e, r2) {
					// B off the s→r' path: [r'] → [s,r,i].
					bld.AddArc(lm2.node, node, dRR)
					continue
				}
				// B on the s→r' path: resolve through r''s own data.
				// Its index there equals i (shared-prefix identity).
				if i < int32(len(bs.mtcRow[r2])) {
					if v := bs.mtcRow[r2][i]; v < rp.Inf {
						// [s] → [s,r,i] with MTC(s,r',B) + |r'r|.
						bld.AddArc(0, node, v+dRR)
					}
					if v := ps.Small.Value(r2, int(i)); v < rp.Inf {
						bld.AddArc(0, node, v+dRR)
					}
					// Chain arc [s,r',j] → [s,r,i].
					j := intervalOfIdx(r2, i)
					bld.AddArc(lm2.base+int32(j), node, dRR)
				}
			}
		}
	}
	bs.NumNodes = total
	bs.NumArcs = bld.NumArcs()
	// Build-run-discard: the CSR and result live in the worker scratch.
	res := bld.FinalizeScratch(scr).RunScratch(0, scr)

	// Pass 3: extract bottleneck values.
	for li := range lms {
		lm := &lms[li]
		bidx := bs.bottleneckIdx[lm.r]
		vals := make([]int32, len(bidx))
		for q := range bidx {
			d := res.Dist[lm.base+int32(q)]
			if d >= int64(rp.Inf) {
				vals[q] = rp.Inf
			} else {
				vals[q] = int32(d)
			}
		}
		bs.value[lm.r] = vals
	}
	return bs
}

// assembleLenSRBottleneck is the paper-faithful §8.3 assembly:
// d(s,r,e) = min(MTC(s,r,e), sr⋄B[interval], §7.1 small value).
func assembleLenSRBottleneck(ps *ssrp.PerSource, ctr *Centers, sc *sourceCenter, cl *centerLandmark, scr *engine.Scratch) (map[int32][]int32, *bottleneckState) {
	bs := buildBottleneck(ps, ctr, sc, cl, scr)
	sh := ps.Sh
	ts := ps.Ts
	lenSR := make(map[int32][]int32, len(sh.List))
	for _, r := range sh.List {
		if r == ps.S || !ts.Reachable(r) {
			continue
		}
		mtc := bs.mtcRow[r]
		boundaries := bs.boundaries[r]
		vals := bs.value[r]
		row := make([]int32, len(mtc))
		for q := 0; q+1 < len(boundaries); q++ {
			for i := boundaries[q]; i < boundaries[q+1]; i++ {
				best := mtc[i]
				if v := vals[q]; v < best {
					best = v
				}
				if v := ps.Small.Value(r, int(i)); v < best {
					best = v
				}
				row[i] = best
			}
		}
		lenSR[r] = row
	}
	return lenSR, bs
}
