package msrp

import (
	"testing"

	"msrp/internal/graph"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

func bottleneckParams(seed uint64) Params {
	p := testParams(seed)
	p.PaperBottleneck = true
	return p
}

func TestBottleneckModeExactOnFamilies(t *testing.T) {
	// The paper-faithful §8.3 assembly, verified end to end on the same
	// families as the default mode.
	requireExact(t, graph.Cycle(50), []int32{0, 25}, bottleneckParams(1))
	requireExact(t, graph.Grid(5, 8), []int32{0, 39}, bottleneckParams(2))
	requireExact(t, graph.Barbell(5, 3), []int32{0, 11}, bottleneckParams(3))
	rng := xrand.New(4)
	for trial := 0; trial < 6; trial++ {
		n := 30 + rng.Intn(40)
		g := graph.RandomConnected(rng, n, n+rng.Intn(2*n))
		requireExact(t, g, []int32{0, int32(n / 2)}, bottleneckParams(uint64(trial)+10))
	}
}

func TestBottleneckModeCycleChords(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 4; trial++ {
		g := graph.CycleWithChords(rng, 40+rng.Intn(30), 4)
		n := int32(g.NumVertices())
		requireExact(t, g, []int32{0, n / 2}, bottleneckParams(uint64(trial)+20))
	}
}

func TestBottleneckSoundnessAtPaperConstants(t *testing.T) {
	// The known §8.3 caveat (terminal intervals) could only ever cause
	// *undershoot*; watch for it explicitly across many unboosted runs.
	rng := xrand.New(6)
	undershoots := 0
	for trial := 0; trial < 8; trial++ {
		n := 25 + rng.Intn(35)
		g := graph.RandomConnected(rng, n, n+rng.Intn(2*n))
		p := DefaultParams()
		p.PaperBottleneck = true
		p.Seed = uint64(trial) + 40
		got, _, err := solveT(g, []int32{0}, p)
		if err != nil {
			t.Fatal(err)
		}
		want := naive.SSRP(g, 0)
		for tt := range got[0].Len {
			for j := range got[0].Len[tt] {
				if got[0].Len[tt][j] < want.Len[tt][j] {
					undershoots++
				}
			}
		}
	}
	// We report rather than require zero: the mode reproduces the
	// paper's construction including its caveat. Zero is the expected
	// outcome on random graphs; a nonzero count is worth knowing about.
	if undershoots > 0 {
		t.Logf("paper-bottleneck mode undershot %d entries (the DESIGN.md §3 corner)", undershoots)
	}
}

func TestBottleneckStats(t *testing.T) {
	g := graph.Cycle(60)
	_, stats, err := solveT(g, []int32{0, 30}, bottleneckParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if stats.BNNodes == 0 || stats.BNArcs == 0 {
		t.Fatal("bottleneck aux graph stats empty")
	}
	if stats.Sweeps != 0 {
		t.Fatal("paper mode must not run sweeps")
	}
}

func TestModesAgreeWhenBothExact(t *testing.T) {
	rng := xrand.New(8)
	g := graph.RandomConnected(rng, 60, 150)
	sources := []int32{0, 30}
	a, _, err := solveT(g, sources, testParams(9))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := solveT(g, sources, bottleneckParams(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if d := rp.Diff(a[i], b[i]); d != "" {
			t.Fatalf("modes disagree for source %d: %s", sources[i], d)
		}
	}
}

func TestPaperBottleneckCornerIsReal(t *testing.T) {
	// Empirical confirmation of the DESIGN.md §3 analysis: on this
	// fixed instance the paper's literal §8.3 assembly *undershoots*
	// (reports replacement lengths below the truth) while the default
	// assembly stays exact. Root cause: the bottleneck edge is chosen
	// by argmax of MTC, but on terminal intervals the true sr⋄e
	// ordering can differ once small-path candidates interfere, so the
	// bottleneck value applied to sibling edges is not an upper bound.
	//
	// If this test ever fails because undershoots == 0, a change has
	// (perhaps accidentally) fixed the corner — update DESIGN.md §3
	// and EXPERIMENTS.md E10 accordingly.
	rng := xrand.New(77)
	_ = graph.RandomConnected(rng, 240, 4*240) // keep rng stream aligned with E10
	g := graph.CycleWithChords(rng, 240, 240/25)
	sources := []int32{0, 120}
	p := DefaultParams()
	p.Seed = 240
	p.PaperBottleneck = true

	results, _, err := solveT(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	under, over := 0, 0
	for i, s := range sources {
		want := naive.SSRP(g, s)
		for tt := range results[i].Len {
			for j := range results[i].Len[tt] {
				got, w := results[i].Len[tt][j], want.Len[tt][j]
				if got < w {
					under++
				} else if got > w {
					over++
				}
			}
		}
		_ = s
	}
	if under == 0 {
		t.Fatal("expected the documented §8.3 undershoot on this instance; " +
			"if intentional, update DESIGN.md §3 / EXPERIMENTS.md E10")
	}
	t.Logf("paper §8.3 mode: %d undershoots, %d overshoots (documented corner)", under, over)

	// The default assembly must be exact on the same instance.
	p.PaperBottleneck = false
	results, _, err = solveT(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sources {
		want := naive.SSRP(g, s)
		if mism, _ := rp.CountMismatches(want, results[i]); mism != 0 {
			t.Fatalf("default mode inexact on source %d: %d mismatches", s, mism)
		}
	}
}
