package msrp

import (
	"sort"

	"msrp/internal/engine"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// assembleLenSR computes d(s, r, e) for one source s and every landmark
// r, combining (per edge e on the canonical s→r path, Lemma 16/24):
//
//	term1: |s c1| + d(c1, r, e)   — through the interval's left center
//	term2: d(s, c2, e) + |c2 r|   — through the interval's right center
//	small: the §7.1 value          — when e is near r
//	avoid: one-hop interval avoidance — |s r'| + |r' r| over landmarks
//	       r' whose two canonical legs both miss e's entire interval
//
// term1/term2 realize the paper's MTC (minimum through centers); term2
// is skipped on the terminal interval (c2 = r would be circular). The
// `avoid` term replaces the paper's bottleneck-edge machinery with a
// candidate that is *unconditionally* sound: a path avoiding the whole
// interval avoids every edge in it, so one value serves the interval.
// (DESIGN.md §3 records why the literal bottleneck construction has an
// unsound corner on terminal intervals.) Completeness gaps left by the
// one-hop restriction are closed by the fixpoint sweeps in
// sweepLandmarks, which re-run the far/near candidate machinery over
// landmark targets until the mutual recursion between landmark values
// stabilizes.
func assembleLenSR(ps *ssrp.PerSource, ctr *Centers, sc *sourceCenter, cl *centerLandmark, scr *engine.Scratch) map[int32][]int32 {
	sh := ps.Sh
	ts := ps.Ts
	lenSR := make(map[int32][]int32, len(sh.List))

	// Per-landmark path expansions are transient (intervalsOn and the
	// MTC row only read them), so one scratch buffer pair serves the
	// whole sweep.
	n := sh.G.NumVertices()
	pathBuf := scr.Int32(n + 1)
	edgeBuf := scr.Int32(n)
	for _, r := range sh.List {
		if r == ps.S || !ts.Reachable(r) {
			continue
		}
		path := ts.PathInto(pathBuf, r)
		edges := ts.PathEdgesInto(edgeBuf, r)
		boundaries := ctr.intervalsOn(path)
		// MTC per edge (term1 through the left center of its interval,
		// term2 through the right one — shared with the bottleneck
		// mode; see computeMTCRow).
		row := computeMTCRow(ps, ctr, sc, cl, r, path, edges, boundaries)

		// Per-interval one-hop avoidance plus the §7.1 small values.
		for q := 0; q+1 < len(boundaries); q++ {
			lo, hi := boundaries[q], boundaries[q+1]
			avoid := intervalAvoidance(ps, r, path, edges, lo, hi)
			for i := lo; i < hi; i++ {
				if avoid < row[i] {
					row[i] = avoid
				}
				if w := ps.Small.Value(r, int(i)); w < row[i] {
					row[i] = w
				}
			}
		}
		lenSR[r] = row
	}
	return lenSR
}

// intervalAvoidance returns the best one-hop candidate |sr'| + |r'r|
// over landmarks r' such that neither canonical leg touches any edge of
// the interval [lo, hi) of the path to r. The s-side check is O(1): the
// canonical s→r' path contains an interval edge iff it contains the
// first one, i.e. iff path[lo+1] is an ancestor of r' in T_s (a root
// path that uses a tree edge uses its whole root-side prefix). The
// r'-side check walks the interval's edges (O(interval length)).
func intervalAvoidance(ps *ssrp.PerSource, r int32, path, edges []int32, lo, hi int32) int32 {
	sh := ps.Sh
	g := sh.G
	firstChild := path[lo+1]
	best := rp.Inf
	for _, r2 := range sh.List {
		if r2 == r {
			continue
		}
		dsr2 := ps.Ts.Dist[r2]
		if dsr2 < 0 {
			continue
		}
		dr2r := sh.Tree[r2].Dist[r]
		if dr2r < 0 {
			continue
		}
		cand := dsr2 + dr2r
		if cand >= best {
			continue // cheap cutoff before the O(len) check
		}
		if ps.AncS.IsAncestor(firstChild, r2) {
			continue // s→r' enters the interval
		}
		anc2 := sh.Anc[r2]
		clean := true
		for i := lo; i < hi; i++ {
			if anc2.EdgeOnRootPath(g, edges[i], r) {
				clean = false
				break
			}
		}
		if clean {
			best = cand
		}
	}
	return best
}

// sweepLandmarks runs the far/near candidate machinery (Algorithms 3
// and 4 plus the §7.1 lookups) over every landmark target, reading and
// writing LenSR, until no value improves or maxSweeps is reached.
// Landmarks are processed in increasing |sr| order so that one sweep
// resolves most dependency chains (a Lemma 13 hop goes through a
// strictly shorter replacement path). Every candidate is sound, so the
// iteration decreases monotonically and can only move toward the truth.
func sweepLandmarks(ps *ssrp.PerSource, maxSweeps int) (sweeps int, improved int64) {
	sh := ps.Sh
	order := make([]int32, 0, len(sh.List))
	for _, r := range sh.List {
		if r != ps.S && ps.Ts.Reachable(r) {
			order = append(order, r)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := ps.Ts.Dist[order[a]], ps.Ts.Dist[order[b]]
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	scratch := make([]int32, 0, 64)
	for sweeps = 0; sweeps < maxSweeps; sweeps++ {
		changed := int64(0)
		for _, r := range order {
			row := ps.LenSR[r]
			scratch = append(scratch[:0], row...)
			ps.CombineTarget(r, scratch, nil)
			for i := range row {
				if scratch[i] < row[i] {
					row[i] = scratch[i]
					changed++
				}
			}
		}
		improved += changed
		if changed == 0 {
			break
		}
	}
	return sweeps, improved
}
