package msrp

import (
	"msrp/internal/bfs"
	"msrp/internal/lca"
	"msrp/internal/sample"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

// Centers is the paper's §8 center family: a second leveled sample
// (same distribution as the landmarks, drawn independently) whose
// members subdivide every source→landmark path into O(log n) intervals.
// A center's priority is the highest level that sampled it; all sources
// are forced into C_0.
type Centers struct {
	Levels *sample.Levels
	List   []int32

	// Tree and Anc index the centers' BFS trees and ancestries.
	Tree map[int32]*bfs.Tree
	Anc  map[int32]*lca.Ancestry

	// budget[k] is the paper's ℓ·2^k·X edge budget for priority-k
	// centers: §8.1 computes d(s,c,e) only for the last budget(k) edges
	// of the s→c path, §8.2 computes d(c,r,e) only for the first
	// budget(k) edges of the c→r path. Lemma 18 guarantees (w.h.p.)
	// that the edges the assembly actually needs fall inside.
	budget []int32

	// index maps a vertex id to its position in List (-1 for
	// non-centers): the dense replacement for the map-of-maps lookups the
	// §8.2.2 rows used to pay on every dCR call.
	index []int32
}

// budgetFactor is the paper's "suitably chosen constant ℓ ≥ 2". The
// Lemma 20 triangle argument needs ℓ ≥ 4; 6 leaves slack for the
// boundary cases without changing the asymptotics.
const budgetFactor = 6

// newCenters samples the center family and builds its BFS forest.
func newCenters(sh *ssrp.Shared, rng *xrand.RNG) *Centers {
	g := sh.G
	n := g.NumVertices()
	c := &Centers{
		Levels: sample.New(rng, n, sh.Sigma(), sh.Params.SampleBoost, sh.Sources),
	}
	c.List = c.Levels.Union()
	c.index = make([]int32, n)
	for v := range c.index {
		c.index[v] = -1
	}
	for i, v := range c.List {
		c.index[v] = int32(i)
	}
	forest := bfs.NewForest(g, c.List, sh.Pool)
	c.Tree = forest.Trees
	c.Anc = ssrp.BuildAncestries(g, c.List, c.Tree, sh.Pool)
	c.budget = make([]int32, c.Levels.MaxK+1)
	for k := range c.budget {
		b := int64(budgetFactor * float64(int64(1)<<uint(k)) * sh.X)
		if b < 1 {
			b = 1
		}
		if b > int64(n) {
			b = int64(n)
		}
		c.budget[k] = int32(b)
	}
	return c
}

// Priority returns the center priority of v, or -1 if v is not a
// center.
func (c *Centers) Priority(v int32) int { return c.Levels.MaxLevel(v) }

// IsCenter reports whether v is a center of any priority.
func (c *Centers) IsCenter(v int32) bool { return c.Levels.IsMember(v) }

// Index returns v's position in List, or -1 when v is not a center.
func (c *Centers) Index(v int32) int32 { return c.index[v] }

// Budget returns the per-priority edge budget.
func (c *Centers) Budget(priority int) int32 {
	if priority < 0 {
		return 0
	}
	if priority >= len(c.budget) {
		priority = len(c.budget) - 1
	}
	return c.budget[priority]
}

// intervalsOn decomposes the canonical s→r path (given as its vertex
// sequence) into the paper's Definition 15 intervals. The returned
// slice holds boundary *positions* on the path: strictly increasing,
// starting at 0 (= s) and ending at len(path)-1 (= r). Interior
// boundaries are centers: walking from s the priorities strictly
// ascend, then strictly descend walking on to r (the paper's
// ascending/descending center chains).
func (c *Centers) intervalsOn(path []int32) []int32 {
	last := len(path) - 1
	if last <= 0 {
		return []int32{0}
	}
	boundaries := make([]int32, 0, 8)
	boundaries = append(boundaries, 0)

	// Ascending chain from s (position 0). Sources are centers, so the
	// starting priority is well defined; a non-center start (possible
	// only if callers pass non-source paths) begins at -1.
	best := c.Priority(path[0])
	ascEnd := 0
	for pos := 1; pos < last; pos++ {
		if p := c.Priority(path[pos]); p > best {
			best = p
			ascEnd = pos
			boundaries = append(boundaries, int32(pos))
		}
	}
	// Descending chain from r backwards (strictly increasing priorities
	// when walking r→s, i.e. descending when read s→r), stopping before
	// the ascending chain's end.
	descStart := len(boundaries)
	best = -1
	for pos := last - 1; pos > ascEnd; pos-- {
		if p := c.Priority(path[pos]); p > best {
			best = p
			boundaries = append(boundaries, int32(pos))
		}
	}
	// The descending boundaries were collected right-to-left; reverse
	// them in place so the full list is increasing.
	for i, j := descStart, len(boundaries)-1; i < j; i, j = i+1, j-1 {
		boundaries[i], boundaries[j] = boundaries[j], boundaries[i]
	}
	boundaries = append(boundaries, int32(last))
	return boundaries
}
