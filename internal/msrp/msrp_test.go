package msrp

import (
	"context"
	"testing"

	"msrp/internal/graph"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

// testParams mirrors the ssrp test configuration: boosted sampling so
// the w.h.p. lemmas hold at toy sizes, shrunken suffix unit so the
// far/near machinery activates on small graphs.
func testParams(seed uint64) Params {
	p := DefaultParams()
	p.Seed = seed
	p.SampleBoost = 12
	p.SuffixScale = 0.25
	return p
}

// solveT is the legacy 3-tuple shape of Solve, kept as a test shim so
// the pre-Solution assertions read unchanged.
func solveT(g *graph.Graph, sources []int32, p Params) ([]*rp.Result, *Stats, error) {
	sol, err := Solve(g, sources, p)
	if err != nil {
		return nil, nil, err
	}
	return sol.Results, sol.Stats, nil
}

func requireExact(t *testing.T, g *graph.Graph, sources []int32, p Params) {
	t.Helper()
	got, _, err := solveT(g, sources, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(sources) {
		t.Fatalf("got %d results for %d sources", len(got), len(sources))
	}
	for i, s := range sources {
		want := naive.SSRP(g, s)
		if d := rp.Diff(want, got[i]); d != "" {
			t.Fatalf("source %d: %s", s, d)
		}
	}
}

func TestTwoSourcesCycle(t *testing.T) {
	g := graph.Cycle(50)
	requireExact(t, g, []int32{0, 25}, testParams(1))
}

func TestManySourcesCycle(t *testing.T) {
	g := graph.Cycle(64)
	requireExact(t, g, []int32{0, 9, 17, 33, 48}, testParams(2))
}

func TestGridMultiSource(t *testing.T) {
	g := graph.Grid(5, 8)
	requireExact(t, g, []int32{0, 39, 22}, testParams(3))
}

func TestLongGridMultiSource(t *testing.T) {
	g := graph.Grid(2, 30)
	requireExact(t, g, []int32{0, 59, 30}, testParams(4))
}

func TestRandomGraphsMultiSource(t *testing.T) {
	rng := xrand.New(5)
	for trial := 0; trial < 8; trial++ {
		n := 30 + rng.Intn(40)
		m := n + rng.Intn(2*n)
		g := graph.RandomConnected(rng, n, m)
		sigma := 1 + rng.Intn(4)
		seen := map[int32]bool{}
		var sources []int32
		for len(sources) < sigma {
			s := int32(rng.Intn(n))
			if !seen[s] {
				seen[s] = true
				sources = append(sources, s)
			}
		}
		requireExact(t, g, sources, testParams(uint64(trial)+10))
	}
}

func TestCycleWithChordsMultiSource(t *testing.T) {
	rng := xrand.New(6)
	for trial := 0; trial < 5; trial++ {
		g := graph.CycleWithChords(rng, 40+rng.Intn(30), 4)
		n := int32(g.NumVertices())
		requireExact(t, g, []int32{0, n / 3, 2 * n / 3}, testParams(uint64(trial)+30))
	}
}

func TestBarbellMultiSource(t *testing.T) {
	g := graph.Barbell(5, 3)
	last := int32(g.NumVertices() - 1)
	requireExact(t, g, []int32{0, last}, testParams(7))
}

func TestTreeAllInf(t *testing.T) {
	g := graph.Caterpillar(6, 2)
	got, _, err := solveT(g, []int32{0, 5}, testParams(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range got {
		for tt := range res.Len {
			for i, v := range res.Len[tt] {
				if v != rp.Inf {
					t.Fatalf("tree must have no replacement paths: s=%d t=%d i=%d = %d",
						res.Source, tt, i, v)
				}
			}
		}
	}
}

func TestDisconnectedMultiSource(t *testing.T) {
	b := graph.NewBuilder(12)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {6, 7}, {7, 8}, {8, 6}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	requireExact(t, g, []int32{0, 6}, testParams(9))
}

func TestSigmaOneMatchesSSRP(t *testing.T) {
	// With one source, MSRP and SSRP answers must both equal the truth
	// (they may differ in internals but not output).
	rng := xrand.New(10)
	g := graph.RandomConnected(rng, 60, 140)
	p := testParams(11)
	gotM, _, err := solveT(g, []int32{7}, p)
	if err != nil {
		t.Fatal(err)
	}
	gotS, _, err := ssrp.Solve(g, 7, p)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.SSRP(g, 7)
	if d := rp.Diff(want, gotM[0]); d != "" {
		t.Fatalf("msrp: %s", d)
	}
	if d := rp.Diff(want, gotS); d != "" {
		t.Fatalf("ssrp: %s", d)
	}
}

func TestSoundnessAtPaperConstants(t *testing.T) {
	// Unboosted sampling on small graphs: completeness may fail but
	// soundness never (no value below the truth, no finite value where
	// the truth is Inf).
	rng := xrand.New(12)
	for trial := 0; trial < 5; trial++ {
		n := 25 + rng.Intn(35)
		g := graph.RandomConnected(rng, n, n+rng.Intn(2*n))
		sources := []int32{int32(rng.Intn(n)), int32(n - 1 - rng.Intn(n/2))}
		if sources[0] == sources[1] {
			sources = sources[:1]
		}
		p := DefaultParams()
		p.Seed = uint64(trial) + 40
		got, _, err := solveT(g, sources, p)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sources {
			want := naive.SSRP(g, s)
			for tt := range got[i].Len {
				for j := range got[i].Len[tt] {
					gv, wv := got[i].Len[tt][j], want.Len[tt][j]
					if gv < wv {
						t.Fatalf("UNSOUND: trial %d s=%d t=%d i=%d: %d < %d", trial, s, tt, j, gv, wv)
					}
					if wv == rp.Inf && gv != rp.Inf {
						t.Fatalf("trial %d: finite %d where truth Inf", trial, gv)
					}
				}
			}
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	g := graph.Cycle(60)
	_, stats, err := solveT(g, []int32{0, 30}, testParams(13))
	if err != nil {
		t.Fatal(err)
	}
	if stats.CenterCount == 0 || len(stats.CenterLevelSizes) == 0 {
		t.Fatal("center stats empty")
	}
	if stats.SCNodes == 0 || stats.CLNodes == 0 {
		t.Fatal("aux graph stats empty")
	}
	if stats.Queries == 0 {
		t.Fatal("no queries")
	}
}

func TestInvalidInputs(t *testing.T) {
	g := graph.Cycle(6)
	if _, _, err := solveT(g, nil, DefaultParams()); err == nil {
		t.Fatal("no sources accepted")
	}
	if _, _, err := solveT(g, []int32{0, 0}, DefaultParams()); err == nil {
		t.Fatal("duplicate sources accepted")
	}
	if _, _, err := solveT(g, []int32{9}, DefaultParams()); err == nil {
		t.Fatal("out-of-range source accepted")
	}
}

func TestDeterminism(t *testing.T) {
	g := graph.CycleWithChords(xrand.New(20), 50, 5)
	p := testParams(21)
	a, _, err := solveT(g, []int32{0, 20}, p)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := solveT(g, []int32{0, 20}, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if d := rp.Diff(a[i], b[i]); d != "" {
			t.Fatalf("nondeterministic: %s", d)
		}
	}
}

func TestIntervalDecomposition(t *testing.T) {
	// Boundaries must start at 0, end at len-1, be strictly increasing,
	// and interior boundaries must be centers with the ascending/
	// descending priority shape.
	rng := xrand.New(22)
	g := graph.RandomConnected(rng, 80, 160)
	sh, err := ssrp.NewShared(g, []int32{0}, testParams(23))
	if err != nil {
		t.Fatal(err)
	}
	ctr := newCenters(sh, sh.DeriveRNG())
	ps := sh.NewPerSource(0)
	for r := int32(1); r < 80; r++ {
		if !ps.Ts.Reachable(r) {
			continue
		}
		path := ps.Ts.PathTo(r)
		bs := ctr.intervalsOn(path)
		if bs[0] != 0 || int(bs[len(bs)-1]) != len(path)-1 {
			t.Fatalf("r=%d: boundaries %v do not span path of length %d", r, bs, len(path)-1)
		}
		prevPos := int32(-1)
		for _, pos := range bs {
			if pos <= prevPos {
				t.Fatalf("r=%d: non-increasing boundaries %v", r, bs)
			}
			prevPos = pos
		}
		// Interior boundaries are centers, and their priorities are
		// strictly unimodal: strictly ascending to the peak, strictly
		// descending after it.
		var prios []int
		for _, pos := range bs[1 : len(bs)-1] {
			prio := ctr.Priority(path[pos])
			if prio < 0 {
				t.Fatalf("r=%d: interior boundary %d is not a center", r, pos)
			}
			prios = append(prios, prio)
		}
		// The peak may be a plateau of exactly two entries: the
		// ascending chain stops at the *first* maximum and the
		// descending chain may record a *different* center of the same
		// maximal priority further along the path.
		peak := 0
		for i, p := range prios {
			if p > prios[peak] {
				peak = i
			}
		}
		plateauEnd := peak
		if peak+1 < len(prios) && prios[peak+1] == prios[peak] {
			plateauEnd = peak + 1
		}
		for i := 1; i <= peak; i++ {
			if prios[i] <= prios[i-1] {
				t.Fatalf("r=%d: ascending chain not strict: %v", r, prios)
			}
		}
		for i := plateauEnd + 1; i < len(prios); i++ {
			if prios[i] >= prios[i-1] {
				t.Fatalf("r=%d: descending chain not strict: %v", r, prios)
			}
		}
	}
}

func TestSeedTablePathsAreSound(t *testing.T) {
	// Every seed entry (c, r, e) → w must be witnessed by an e-avoiding
	// c→r walk of length w; verify against the brute-force distance in
	// G − e (w must be ≥ it).
	rng := xrand.New(24)
	g := graph.RandomConnected(rng, 40, 90)
	sh, err := ssrp.NewShared(g, []int32{0, 5}, testParams(25))
	if err != nil {
		t.Fatal(err)
	}
	ctr := newCenters(sh, sh.DeriveRNG())
	var perSrc []*ssrp.PerSource
	for _, s := range []int32{0, 5} {
		ps := sh.NewPerSource(s)
		ps.BuildSmallNear()
		perSrc = append(perSrc, ps)
	}
	seed, _, err := buildSeedTable(context.Background(), sh, perSrc, ctr)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	seed.Range(func(key uint64, w int32) bool {
		c := int32(key >> (vertexBits + edgeBits))
		r := int32(key>>edgeBits) & (maxVertex - 1)
		e := int32(key & (maxEdge - 1))
		truth := naive.OnePair(g, c, r, e)
		if w < truth {
			t.Errorf("seed (c=%d,r=%d,e=%d) = %d below truth %d", c, r, e, w, truth)
		}
		count++
		return count < 500 // cap the brute-force work
	})
	if count == 0 {
		t.Fatal("seed table empty — no small paths enumerated?")
	}
}

func TestAllPairsMode(t *testing.T) {
	// σ = n: the Bernstein–Karger end of the spectrum.
	g := graph.Cycle(16)
	sources := make([]int32, 16)
	for i := range sources {
		sources[i] = int32(i)
	}
	requireExact(t, g, sources, testParams(26))
}

func TestMediumRandomStress(t *testing.T) {
	rng := xrand.New(27)
	g := graph.RandomConnected(rng, 120, 300)
	requireExact(t, g, []int32{3, 50, 99, 110}, testParams(28))
}

func TestParallelDeterminism(t *testing.T) {
	// Output must be bit-identical regardless of worker count, and the
	// race detector (when enabled) must stay silent.
	g := graph.CycleWithChords(xrand.New(50), 60, 5)
	sources := []int32{0, 20, 40}
	var baseline []*rp.Result
	for _, workers := range []int{1, 2, 4, 8} {
		p := testParams(51)
		p.Parallelism = workers
		res, stats, err := solveT(g, sources, p)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Queries == 0 {
			t.Fatal("stats lost under parallel merge")
		}
		if baseline == nil {
			baseline = res
			continue
		}
		for i := range res {
			if d := rp.Diff(baseline[i], res[i]); d != "" {
				t.Fatalf("workers=%d: %s", workers, d)
			}
		}
	}
}
