package msrp

import (
	"fmt"
	"sort"

	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// Post-solve provenance compaction.
//
// The full Provenance plane retains everything the explain walk *might*
// consult: the §8.1/§8.2.2 parent chains of every auxiliary node, the
// merged seed table, and the center forest — E15 measured it at ~1,000×
// the transient solve peak. But the walk's job is a search: for each
// finite LenSR[r][i] it scans the candidate space until one candidate
// achieves the value exactly. That search is deterministic, so its
// outcome can be recorded once and the search space dropped.
//
// CompactProv is that record — one entry per finite LenSR value, laid
// out as parallel arrays over the rows in sorted-landmark order:
//
//	cSmall    — the §7.1 small value won; re-expand from the retained
//	            witness snapshot (1 byte, nothing stored).
//	cViaCanon — a landmark detour whose prefix is the canonical s→r2
//	            path; store r2, re-expand from the canonical trees.
//	cViaChain — a landmark detour whose prefix is itself a LenSR
//	            expansion; store r2 and recurse into the *compact* entry
//	            (r2, i). The reference always resolves: the raw walk's
//	            recursive call expandLenSR(si, r2, i, e, d2, …) has
//	            d2 = LenSR[r2][i] and e = EdgeAt(r2, i) — e is on the
//	            canonical s→r2 path with the same shared-prefix index i
//	            (the DSR index identity), so the compact entry at
//	            (r2, i) was built from a top-level walk with identical
//	            arguments, and every finite entry is compacted. Values
//	            strictly decrease along the chain (|r2 r| > 0), so the
//	            recursion terminates.
//	cPath     — an MTC term won. Its expansion threads through the G_s
//	            or G_c parent chains, the seed table, and the center
//	            forest — all dropped by compaction — so the concrete
//	            walk is stored verbatim in the arena.
//
// Expansion against the compact form reproduces the raw walk's output
// bit for bit: cSmall/cViaCanon/cViaChain rebuild the identical
// vertices from the identical retained inputs, and cPath copies the
// walk the raw expansion produced. The length==value validation is kept
// at every top-level expansion, so a served path remains a certificate.
//
// After compaction a source retains: the witness snapshot and its §7.1
// lookup plane, the LenSR rows, the per-answer provenance entries, and
// this record. The shared landmark forest lives in ssrp.Shared either
// way. Nothing else — which is what makes a source's provenance
// self-contained and individually evictable (oracle.go's byte budget).
const (
	cNone uint8 = iota // Inf / no entry
	cSmall
	cViaCanon
	cViaChain
	cPath
)

// winner names the candidate class that realized a LenSR value in an
// expandLenSR walk, in compact-plane vocabulary.
type winner struct {
	kind uint8
	r2   int32 // the detour landmark for cViaCanon/cViaChain
}

// CompactProv is one source's compacted provenance: the winning
// candidate per finite LenSR entry, immutable after compaction.
type CompactProv struct {
	ps *ssrp.PerSource
	sh *ssrp.Shared

	// base maps landmark r to the first slot of its row in kinds/aux;
	// rows are parallel to LenSR[r] and laid out in ascending-r order.
	base  map[int32]int32
	kinds []uint8
	aux   []int32 // r2 for cVia*, arena offset for cPath, -1 otherwise
	arena []int32 // cPath records: [len, vertices…]
}

// compactOne re-walks every finite LenSR entry of source index si
// through the full plane and records the winners. Landmarks are visited
// in sorted order, so the layout (and Bytes) is deterministic. Every
// expansion is validated before its winner is recorded; any failure
// aborts the source's compaction.
func compactOne(pv *Provenance, si int) (*CompactProv, error) {
	ps := pv.perSrc[si]
	keys := make([]int32, 0, len(ps.LenSR))
	total := 0
	for r, row := range ps.LenSR {
		keys = append(keys, r)
		total += len(row)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

	cp := &CompactProv{
		ps:    ps,
		sh:    pv.sh,
		base:  make(map[int32]int32, len(keys)),
		kinds: make([]uint8, total),
		aux:   make([]int32, total),
	}
	slot := int32(0)
	for _, r := range keys {
		cp.base[r] = slot
		row := ps.LenSR[r]
		for i, v := range row {
			k := slot + int32(i)
			cp.aux[k] = -1
			if v >= rp.Inf {
				continue // cNone
			}
			e := ps.EdgeAt(r, i)
			p, w, err := pv.expandLenSR(si, r, int32(i), e, v, 0)
			if err != nil {
				return nil, fmt.Errorf("msrp: compaction of source %d at (r=%d i=%d): %w", ps.S, r, i, err)
			}
			if int32(len(p))-1 != v {
				return nil, fmt.Errorf("msrp: compaction of source %d at (r=%d i=%d): expansion length %d != value %d", ps.S, r, i, len(p)-1, v)
			}
			cp.kinds[k] = w.kind
			switch w.kind {
			case cViaCanon, cViaChain:
				cp.aux[k] = w.r2
			case cPath:
				cp.aux[k] = int32(len(cp.arena))
				cp.arena = append(cp.arena, int32(len(p)))
				cp.arena = append(cp.arena, p...)
			}
		}
		slot += int32(len(row))
	}
	return cp, nil
}

// landmarkPath is the compact plane's drop-in for Provenance's: expand
// the recorded winner for LenSR[r][i] and validate its length against
// the value — the certificate property survives compaction.
func (cp *CompactProv) landmarkPath(r int32, i int) ([]int32, error) {
	row := cp.ps.LenSR[r]
	if row == nil || i < 0 || i >= len(row) {
		return nil, fmt.Errorf("msrp: no landmark value for r=%d i=%d", r, i)
	}
	v := row[i]
	if v >= rp.Inf {
		return nil, fmt.Errorf("msrp: landmark path requested for an unreachable value (r=%d i=%d)", r, i)
	}
	p, err := cp.expand(r, i, 0)
	if err != nil {
		return nil, err
	}
	if int32(len(p))-1 != v {
		return nil, fmt.Errorf("msrp: compact expansion length %d != value %d (r=%d i=%d)", len(p)-1, v, r, i)
	}
	return p, nil
}

// expand rebuilds the recorded walk for slot (r, i).
func (cp *CompactProv) expand(r int32, i int, depth int) ([]int32, error) {
	if depth > len(cp.base)+1 {
		return nil, fmt.Errorf("msrp: compact provenance chain exceeded %d hops (r=%d i=%d)", depth, r, i)
	}
	base, ok := cp.base[r]
	if !ok || i < 0 || i >= len(cp.ps.LenSR[r]) {
		return nil, fmt.Errorf("msrp: no compact entry for r=%d i=%d", r, i)
	}
	k := base + int32(i)
	switch cp.kinds[k] {
	case cSmall:
		if p := cp.ps.Snap.PathVertices(r, i); p != nil {
			return p, nil
		}
		return nil, fmt.Errorf("msrp: compact cSmall entry (r=%d i=%d) has no snapshot path", r, i)
	case cViaCanon:
		r2 := cp.aux[k]
		return appendLeg(cp.ps.Ts.PathTo(r2), cp.sh.Tree[r2].PathTo(r)), nil
	case cViaChain:
		r2 := cp.aux[k]
		prefix, err := cp.expand(r2, i, depth+1)
		if err != nil {
			return nil, err
		}
		return appendLeg(prefix, cp.sh.Tree[r2].PathTo(r)), nil
	case cPath:
		off := cp.aux[k]
		n := cp.arena[off]
		out := make([]int32, n)
		copy(out, cp.arena[off+1:off+1+n])
		return out, nil
	}
	return nil, fmt.Errorf("msrp: compact entry (r=%d i=%d) records no winner (value was Inf at compaction)", r, i)
}

// Bytes returns the compact record's retained footprint: 1 byte per
// kind, 4 per aux slot, 4 per arena word, and the base map at the same
// 24-bytes-per-entry convention auxProv used.
func (cp *CompactProv) Bytes() int64 {
	return int64(len(cp.kinds)) + 4*int64(len(cp.aux)) + 4*int64(len(cp.arena)) + 24*int64(len(cp.base))
}

// CompactProvenance replaces the solution's full provenance plane with
// per-source compact records: every finite LenSR entry of every source
// is re-walked once (in parallel over sources), validated, and its
// winner recorded; then each source's landmark-path expander is
// repointed at its compact record and the full plane — parent chains,
// seed table, center forest — is released to the collector.
// Stats.ProvenanceBytes is recomputed to the post-compaction footprint.
//
// No-op when the solve did not track paths. On error the full plane
// stays installed and fully functional (the caller may keep serving
// from it); the solution is never left half-compacted.
func (sol *Solution) CompactProvenance() error {
	pv := sol.Prov
	if pv == nil {
		return nil
	}
	compact := make([]*CompactProv, len(pv.perSrc))
	errs := make([]error, len(pv.perSrc))
	pv.sh.Pool.Run(len(pv.perSrc), func(i int) {
		compact[i], errs[i] = compactOne(pv, i)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i, cp := range compact {
		// The method value captures only cp, so dropping sol.Prov below
		// really does let the full plane go.
		pv.perSrc[i].SetLandmarkPath(cp.landmarkPath)
	}
	sol.Compact = compact
	sol.Prov = nil
	var b int64
	for i, ps := range sol.PerSource {
		b += ps.ProvenanceBytes() + compact[i].Bytes()
	}
	sol.Stats.ProvenanceBytes = b
	return nil
}
