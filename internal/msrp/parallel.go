package msrp

import "sync"

// runParallel executes fn(i) for i in [0, n) on up to `workers`
// goroutines (sequential when workers < 2). Every fn(i) must touch only
// its own index's state; the MSRP pipeline's per-source and per-center
// stages have exactly that shape, so the schedule cannot change the
// output — determinism is preserved regardless of the worker count
// (asserted by TestParallelDeterminism).
func runParallel(n, workers int, fn func(i int)) {
	if workers < 2 || n < 2 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	work := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()
}
