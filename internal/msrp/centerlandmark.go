package msrp

import (
	"fmt"

	"msrp/internal/cuckoo"
	"msrp/internal/engine"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// Key packing for the (center, landmark, edge) seed table (§8.2.1).
// 21 bits for each vertex id and 22 for the edge id fit exactly in 64.
const (
	vertexBits = 21
	edgeBits   = 22
	maxVertex  = 1 << vertexBits
	maxEdge    = 1 << edgeBits
)

func packCRE(c, r, e int32) uint64 {
	return uint64(c)<<(vertexBits+edgeBits) | uint64(r)<<edgeBits | uint64(e)
}

// checkPackable rejects graphs too large for the 64-bit key layout
// (2M vertices / 4M edges — far beyond anything this harness runs).
func checkPackable(n, m int) error {
	if n >= maxVertex || m >= maxEdge {
		return fmt.Errorf("msrp: graph too large for key packing (n=%d m=%d)", n, m)
	}
	return nil
}

// buildSeedTable implements §8.2.1: enumerate every small replacement
// path from every source to every landmark (the §7.1 Dijkstra's
// predecessor chains), and for every center c sitting on such a path
// record the length of its c→r suffix. The table entry (c, r, e) → w
// later becomes the [c]→[r,e] arc of G_c: a concrete e-avoiding c→r
// walk, needed because small replacement paths have no long suffix for
// the landmark sampling to hit.
//
// The table is the paper's designated cuckoo-hash use: Θ(σn) paths may
// produce entries and lookups must stay O(1) worst case during the
// G_c construction (internal/cuckoo, Lemma 5).
//
// The build is sharded: sources are independent during enumeration, so
// each engine item fills a private presized shard, and the shards are
// merged into one presized table afterwards. Because the merged value
// for a key is the minimum over all shards and min is commutative and
// idempotent, the merged *contents* are identical for every worker
// count and schedule; because shards are merged in source order and
// each shard's build is deterministic, even the merged table's layout
// is fixed. The returned rehash count (shards + merge) is the E9/E13
// cascade observability: with presizing it stays at zero.
func buildSeedTable(sh *ssrp.Shared, perSrc []*ssrp.PerSource, ctr *Centers) (*cuckoo.Table, int) {
	shards := make([]*cuckoo.Table, len(perSrc))
	sh.Pool.RunScratch(len(perSrc), func(i int, sc *engine.Scratch) {
		shards[i] = buildSeedShard(perSrc[i], ctr, sc)
	})
	return mergeSeedShards(shards)
}

// mergeSeedShards folds the per-source shards into one presized table
// with MinPut, in source order, and returns it with the total rehash
// count (shards + merge) — the E9/E13 cascade observability. The solve
// pipeline calls this after its per-source build/enumerate stages (its
// only cross-source barrier); buildSeedTable wraps it for the barrier
// composition the seed-table tests exercise.
func mergeSeedShards(shards []*cuckoo.Table) (*cuckoo.Table, int) {
	rehashes := 0
	total := 0
	for _, shard := range shards {
		total += shard.Len()
		rehashes += shard.Rehashes()
	}
	merged := cuckoo.New(total)
	for _, shard := range shards {
		shard.Range(func(key uint64, val int32) bool {
			merged.MinPut(key, val)
			return true
		})
	}
	return merged, rehashes + merged.Rehashes()
}

// buildSeedShard enumerates one source's small paths into a private
// table presized by estimateSeedEntries. The path and edge expansions
// run through scratch buffers sized once per item, so the Θ(n) sweep
// performs no per-path allocation.
func buildSeedShard(ps *ssrp.PerSource, ctr *Centers, sc *engine.Scratch) *cuckoo.Table {
	table := cuckoo.New(estimateSeedEntries(ps, ctr))
	n := ps.Sh.G.NumVertices()
	edgeBuf := sc.Int32(n) // canonical tree paths have < n edges
	// Small replacement paths are walks — prefix plus near-hop tail can
	// exceed n vertices — so give the buffer slack; PathVerticesInto
	// falls back to allocating only beyond 2n, which no walk reaches at
	// small-path lengths (≤ |sr| + 2X < n each for prefix and tail).
	pathBuf := sc.Int32(2*n + 2)
	ts := ps.Ts
	for _, r := range ps.Sh.List {
		if r == ps.S || !ts.Reachable(r) {
			continue
		}
		l := ts.Dist[r]
		edges := ts.PathEdgesInto(edgeBuf, r)
		for i := ps.Small.NearStart(r); i < l; i++ {
			if ps.Small.Value(r, int(i)) >= rp.Inf {
				continue
			}
			path := ps.Small.PathVerticesInto(pathBuf, r, int(i))
			if path == nil {
				continue
			}
			e := edges[i]
			last := len(path) - 1
			for pos, w := range path {
				if pos == last {
					break // suffix of length 0 (c = r) is trivial
				}
				if !ctr.IsCenter(w) {
					continue
				}
				table.MinPut(packCRE(w, r, e), int32(last-pos))
			}
		}
	}
	return table
}

// estimateSeedEntries predicts one source's seed-table contribution so
// the shard can be presized (no growth-rehash cascade mid-build). Each
// landmark r offers min(nearEdgeCap, |sr|) small paths of length at
// most |sr| + 2X, and a vertex on such a path is a center with
// frequency ≈ |C|/n, so the expected entries per path are its length
// times that density. Overestimating only costs slack memory; the
// estimate is deliberately generous.
func estimateSeedEntries(ps *ssrp.PerSource, ctr *Centers) int {
	n := ps.Sh.G.NumVertices()
	density := float64(len(ctr.List)) / float64(n)
	est := 0.0
	for _, r := range ps.Sh.List {
		if r == ps.S || !ps.Ts.Reachable(r) {
			continue
		}
		l := float64(ps.Ts.Dist[r])
		paths := l - float64(ps.Small.NearStart(r))
		est += paths * (1 + density*(l+2*ps.Sh.X))
	}
	return int(est)
}

// centerLandmark holds the §8.2.2 output: d(c, r, e) for every center
// c, landmark r, and edge e among the first Budget(priority(c)) edges
// of the canonical (T_c) c→r path.
type centerLandmark struct {
	ctr *Centers

	// rows[c][r][j] = d(c, r, e_j) where e_j is the j-th edge of the
	// T_c path from c toward r, j < min(budget, |cr|).
	rows map[int32]map[int32][]int32

	// prov[c] retains G_c's parent chains and node decode tables under
	// Params.TrackPaths (the provenance plane's §8.2.2 layer); empty
	// otherwise.
	prov map[int32]*auxProv

	// Aggregate aux-graph size counters (all G_c combined) for E9.
	NumNodes int64
	NumArcs  int64
}

// buildCenterLandmark constructs and solves every per-center auxiliary
// graph G_c (§8.2.2). Centers are independent, so the stage fans out
// across Params.Parallelism workers.
//
// Node space of G_c: [c] (node 0), [r] per landmark, [r,e] per covered
// (landmark, prefix-edge) pair. Arcs (Lemma 21/22 case analysis):
//
//	[c]  → [r]      weight |cr|
//	[c]  → [r,e]    weight seed(c,r,e)   (§8.2.1 small path through c)
//	[r'] → [r,e]    weight |r'r|         if e ∉ cr' and e ∉ r'r
//	[r',e] → [r,e]  weight |r'r|         if [r',e] exists and e ∉ r'r
//
// All positions are measured in T_c, where the shared-prefix identity
// again makes an edge's index the same on every path through it.
func buildCenterLandmark(sh *ssrp.Shared, ctr *Centers, seed *cuckoo.Table) *centerLandmark {
	cl := &centerLandmark{
		ctr:  ctr,
		rows: make(map[int32]map[int32][]int32, len(ctr.List)),
		prov: make(map[int32]*auxProv),
	}
	perCenter := make([]map[int32][]int32, len(ctr.List))
	provs := make([]*auxProv, len(ctr.List))
	sizes := make([][2]int64, len(ctr.List))
	sh.Pool.RunScratch(len(ctr.List), func(i int, sc *engine.Scratch) {
		perCenter[i], provs[i], sizes[i] = cl.buildOne(sh, ctr.List[i], seed, sc)
	})
	for i, c := range ctr.List {
		cl.rows[c] = perCenter[i]
		if provs[i] != nil {
			cl.prov[c] = provs[i]
		}
		cl.NumNodes += sizes[i][0]
		cl.NumArcs += sizes[i][1]
	}
	return cl
}

// buildOne builds and solves G_c, returning the d(c,r,·) rows, the
// retained provenance (TrackPaths only, else nil), and the graph's
// (nodes, arcs) size pair. It must not write shared state:
// buildCenterLandmark runs it concurrently across centers. sc backs the
// transient arc builder and covered-edge buffers.
func (cl *centerLandmark) buildOne(sh *ssrp.Shared, c int32, seed *cuckoo.Table, sc *engine.Scratch) (map[int32][]int32, *auxProv, [2]int64) {
	g := sh.G
	ctr := cl.ctr
	tc := ctr.Tree[c]
	ancC := ctr.Anc[c]
	budget := ctr.Budget(ctr.Priority(c))

	type lmInfo struct {
		r        int32
		node     int32
		base     int32
		count    int32
		pathEdge []int32 // covered prefix edges e_0..e_{count-1} in T_c
	}
	infos := make([]lmInfo, 0, len(sh.List))
	next := int32(1)
	for _, r := range sh.List {
		if r == c || !tc.Reachable(r) {
			continue
		}
		infos = append(infos, lmInfo{r: r, node: next})
		next++
	}
	for idx := range infos {
		in := &infos[idx]
		l := tc.Dist[in.r]
		count := budget
		if l < count {
			count = l
		}
		in.count = count
		in.base = next
		next += count
		// The covered edges are the T_c path *prefix*: walk up from r
		// and keep the first `count` edges (positions 0..count-1 from
		// the c side).
		in.pathEdge = sc.Int32(int(count))
		x := in.r
		for j := l - 1; j >= 0; j-- {
			if j < count {
				in.pathEdge[j] = tc.ParentEdge[x]
			}
			x = tc.Parent[x]
		}
	}
	total := int(next)

	bld := ssrp.AttachedBuilder(sc, total, total*4)
	for idx := range infos {
		bld.AddArc(0, infos[idx].node, tc.Dist[infos[idx].r])
	}
	for idx := range infos {
		in := &infos[idx]
		for j := int32(0); j < in.count; j++ {
			e := in.pathEdge[j]
			node := in.base + j
			if w, ok := seed.Get(packCRE(c, in.r, e)); ok {
				bld.AddArc(0, node, w)
			}
			for jdx := range infos {
				in2 := &infos[jdx]
				r2 := in2.r
				if r2 == in.r {
					continue
				}
				dRR := sh.Tree[r2].Dist[in.r] // |r'r|
				if dRR < 0 {
					continue
				}
				if sh.Anc[r2].EdgeOnRootPath(g, e, in.r) {
					continue // e on the canonical r'→r path
				}
				if !ancC.EdgeOnRootPath(g, e, r2) {
					bld.AddArc(in2.node, node, dRR)
				} else if j < in2.count {
					bld.AddArc(in2.base+j, node, dRR)
				}
			}
		}
	}
	sizes := [2]int64{int64(total), int64(bld.NumArcs())}
	// G_c is build-run-discard (only the rows below survive), so both
	// the CSR and the Dijkstra result live in the worker scratch.
	res := bld.FinalizeScratch(sc).RunScratch(0, sc)

	rows := make(map[int32][]int32, len(infos))
	for idx := range infos {
		in := &infos[idx]
		row := make([]int32, in.count)
		for j := int32(0); j < in.count; j++ {
			d := res.Dist[in.base+j]
			if d >= int64(rp.Inf) {
				row[j] = rp.Inf
			} else {
				row[j] = int32(d)
			}
		}
		rows[in.r] = row
	}
	var ap *auxProv
	if sh.Params.TrackPaths {
		ap = &auxProv{
			parent:  append([]int32(nil), res.Parent...),
			nodeOwn: make([]int32, total),
			nodeIdx: make([]int32, total),
			base:    make(map[int32]int32, len(infos)),
			start:   make(map[int32]int32, len(infos)),
		}
		ap.nodeOwn[0], ap.nodeIdx[0] = -1, -1
		for idx := range infos {
			in := &infos[idx]
			ap.nodeOwn[in.node], ap.nodeIdx[in.node] = in.r, -1
			ap.base[in.r], ap.start[in.r] = in.base, 0 // G_c covers the prefix
			for j := int32(0); j < in.count; j++ {
				ap.nodeOwn[in.base+j] = in.r
				ap.nodeIdx[in.base+j] = j
			}
		}
	}
	return rows, ap, sizes
}

// dCR returns d(c, r, e) where e is a graph edge: |cr| when e is off
// the canonical (T_c) c→r path, the §8.2.2 value when covered by c's
// budget, rp.Inf otherwise.
func (cl *centerLandmark) dCR(sh *ssrp.Shared, c, r int32, e int32) int32 {
	if c == r {
		return 0
	}
	tc := cl.ctr.Tree[c]
	if !tc.Reachable(r) {
		return rp.Inf
	}
	if !cl.ctr.Anc[c].EdgeOnRootPath(sh.G, e, r) {
		return tc.Dist[r]
	}
	// e's index on the T_c path toward r is depth(child)−1 in T_c.
	child, ok := tc.ChildEndpoint(sh.G, e)
	if !ok {
		return rp.Inf
	}
	j := tc.Dist[child] - 1
	row := cl.rows[c][r]
	if j < 0 || j >= int32(len(row)) {
		return rp.Inf
	}
	return row[j]
}
