package msrp

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"msrp/internal/cuckoo"
	"msrp/internal/engine"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// seedReader is the §8.2.1 seed table as its consumers see it: O(1)
// worst-case keyed lookups plus the footprint accounting. Both the
// barriered flat cuckoo.Table and the streaming cuckoo.Partitioned
// satisfy it, so the §8.2.2 build and the provenance plane are
// schedule-agnostic.
type seedReader interface {
	Get(key uint64) (int32, bool)
	Len() int
	Bytes() int64
}

// Key packing for the (center, landmark, edge) seed table (§8.2.1).
// 21 bits for each vertex id and 22 for the edge id fit exactly in 64.
const (
	vertexBits = 21
	edgeBits   = 22
	maxVertex  = 1 << vertexBits
	maxEdge    = 1 << edgeBits
)

func packCRE(c, r, e int32) uint64 {
	return uint64(c)<<(vertexBits+edgeBits) | uint64(r)<<edgeBits | uint64(e)
}

// checkPackable rejects graphs too large for the 64-bit key layout
// (2M vertices / 4M edges — far beyond anything this harness runs).
func checkPackable(n, m int) error {
	if n >= maxVertex || m >= maxEdge {
		return fmt.Errorf("msrp: graph too large for key packing (n=%d m=%d)", n, m)
	}
	return nil
}

// buildSeedTable implements §8.2.1: enumerate every small replacement
// path from every source to every landmark (the §7.1 Dijkstra's
// predecessor chains), and for every center c sitting on such a path
// record the length of its c→r suffix. The table entry (c, r, e) → w
// later becomes the [c]→[r,e] arc of G_c: a concrete e-avoiding c→r
// walk, needed because small replacement paths have no long suffix for
// the landmark sampling to hit.
//
// The table is the paper's designated cuckoo-hash use: Θ(σn) paths may
// produce entries and lookups must stay O(1) worst case during the
// G_c construction (internal/cuckoo, Lemma 5).
//
// The build is sharded: sources are independent during enumeration, so
// each engine item fills a private presized shard, and the shards are
// merged into one presized table afterwards. Because the merged value
// for a key is the minimum over all shards and min is commutative and
// idempotent, the merged *contents* are identical for every worker
// count and schedule; because shards are merged in source order and
// each shard's build is deterministic, even the merged table's layout
// is fixed. The returned rehash count (shards + merge) is the E9/E13
// cascade observability: with presizing it stays at zero.
func buildSeedTable(ctx context.Context, sh *ssrp.Shared, perSrc []*ssrp.PerSource, ctr *Centers) (*cuckoo.Table, int, error) {
	shards := make([]*cuckoo.Table, len(perSrc))
	if err := sh.Pool.RunScratchCtx(ctx, len(perSrc), func(i int, sc *engine.Scratch) {
		shards[i] = buildSeedShard(perSrc[i], ctr, sc)
	}); err != nil {
		return nil, 0, err
	}
	merged, rehashes := mergeSeedShards(shards)
	return merged, rehashes, nil
}

// mergeSeedShards folds the per-source shards into one presized table
// with MinPut, in source order, and returns it with the total rehash
// count (shards + merge) — the E9/E13 cascade observability. The solve
// pipeline calls this after its per-source build/enumerate stages (its
// only cross-source barrier); buildSeedTable wraps it for the barrier
// composition the seed-table tests exercise.
func mergeSeedShards(shards []*cuckoo.Table) (*cuckoo.Table, int) {
	rehashes := 0
	total := 0
	for _, shard := range shards {
		total += shard.Len()
		rehashes += shard.Rehashes()
	}
	merged := cuckoo.New(total)
	for _, shard := range shards {
		shard.Range(func(key uint64, val int32) bool {
			merged.MinPut(key, val)
			return true
		})
	}
	return merged, rehashes + merged.Rehashes()
}

// buildSeedShard enumerates one source's small paths into a private
// table presized by estimateSeedEntries. The path and edge expansions
// run through scratch buffers sized once per item, so the Θ(n) sweep
// performs no per-path allocation.
func buildSeedShard(ps *ssrp.PerSource, ctr *Centers, sc *engine.Scratch) *cuckoo.Table {
	table := cuckoo.New(estimateSeedEntries(ps, ctr))
	n := ps.Sh.G.NumVertices()
	edgeBuf := sc.Int32(n) // canonical tree paths have < n edges
	// Small replacement paths are walks — prefix plus near-hop tail can
	// exceed n vertices — so give the buffer slack; PathVerticesInto
	// falls back to allocating only beyond 2n, which no walk reaches at
	// small-path lengths (≤ |sr| + 2X < n each for prefix and tail).
	pathBuf := sc.Int32(2*n + 2)
	ts := ps.Ts
	for _, r := range ps.Sh.List {
		if r == ps.S || !ts.Reachable(r) {
			continue
		}
		l := ts.Dist[r]
		edges := ts.PathEdgesInto(edgeBuf, r)
		for i := ps.Small.NearStart(r); i < l; i++ {
			if ps.Small.Value(r, int(i)) >= rp.Inf {
				continue
			}
			path := ps.Small.PathVerticesInto(pathBuf, r, int(i))
			if path == nil {
				continue
			}
			e := edges[i]
			last := len(path) - 1
			for pos, w := range path {
				if pos == last {
					break // suffix of length 0 (c = r) is trivial
				}
				if !ctr.IsCenter(w) {
					continue
				}
				table.MinPut(packCRE(w, r, e), int32(last-pos))
			}
		}
	}
	return table
}

// estimateSeedEntries predicts one source's seed-table contribution so
// the shard can be presized (no growth-rehash cascade mid-build). Each
// landmark r offers min(nearEdgeCap, |sr|) small paths of length at
// most |sr| + 2X, and a vertex on such a path is a center with
// frequency ≈ |C|/n, so the expected entries per path are its length
// times that density. Overestimating only costs slack memory; the
// estimate is deliberately generous.
func estimateSeedEntries(ps *ssrp.PerSource, ctr *Centers) int {
	n := ps.Sh.G.NumVertices()
	density := float64(len(ctr.List)) / float64(n)
	est := 0.0
	for _, r := range ps.Sh.List {
		if r == ps.S || !ps.Ts.Reachable(r) {
			continue
		}
		l := float64(ps.Ts.Dist[r])
		paths := l - float64(ps.Small.NearStart(r))
		est += paths * (1 + density*(l+2*ps.Sh.X))
	}
	return int(est)
}

// centerLandmark holds the §8.2.2 output: d(c, r, e) for every center
// c, landmark r, and edge e among the first Budget(priority(c)) edges
// of the canonical (T_c) c→r path.
//
// Storage is dense: rows are indexed by center position (Centers.Index)
// and landmark position (lmIdx) instead of the map-of-maps the first
// implementation used — dCR sits on the assembly's innermost candidate
// loop, where two map lookups per call were measurable overhead, and
// dense slots are also what lets the streaming schedule write each
// center's output from whichever worker popped it, race-free.
type centerLandmark struct {
	ctr *Centers

	// lmIdx[v] is v's position in sh.List, -1 for non-landmarks.
	lmIdx []int32

	// rows[ci][li][j] = d(c, r, e_j) for c = ctr.List[ci], r =
	// sh.List[li], and e_j the j-th edge of the T_c path from c toward
	// r, j < min(budget, |cr|). nil rows mean r == c or unreachable.
	rows [][][]int32

	// prov[ci] retains G_c's parent chains and node decode tables under
	// Params.TrackPaths (the provenance plane's §8.2.2 layer); nil
	// otherwise.
	prov []*auxProv

	// Aggregate aux-graph size counters (all G_c combined, E9) and the
	// per-item wall time sum — atomics because the streaming schedule
	// retires centers from many workers at once.
	nodes      atomic.Int64
	arcs       atomic.Int64
	buildNanos atomic.Int64
}

// newCenterLandmark allocates the dense §8.2.2 output store; solveOne
// fills one center's slot at a time.
func newCenterLandmark(sh *ssrp.Shared, ctr *Centers) *centerLandmark {
	cl := &centerLandmark{
		ctr:   ctr,
		lmIdx: make([]int32, sh.G.NumVertices()),
		rows:  make([][][]int32, len(ctr.List)),
		prov:  make([]*auxProv, len(ctr.List)),
	}
	for v := range cl.lmIdx {
		cl.lmIdx[v] = -1
	}
	for i, r := range sh.List {
		cl.lmIdx[r] = int32(i)
	}
	return cl
}

// NumNodes and NumArcs expose the aggregate G_c sizes after the builds
// have completed.
func (cl *centerLandmark) NumNodes() int64 { return cl.nodes.Load() }
func (cl *centerLandmark) NumArcs() int64  { return cl.arcs.Load() }

// BuildTime returns the per-center build wall time summed over items —
// the StageCenterLandmark measure, comparable across schedules because
// it is unaffected by how the items interleave with other stages.
func (cl *centerLandmark) BuildTime() time.Duration {
	return time.Duration(cl.buildNanos.Load())
}

// solveOne builds and solves G_c for center index ci, filling the
// center's dense slot. All written state is owned by ci, so solveOne is
// safe from any worker and any schedule (barriered fan-out or
// readiness-gated streaming).
func (cl *centerLandmark) solveOne(sh *ssrp.Shared, ci int, seed seedReader, sc *engine.Scratch) {
	start := time.Now()
	rows, ap, sizes := cl.buildOne(sh, cl.ctr.List[ci], seed, sc)
	cl.rows[ci] = rows
	cl.prov[ci] = ap
	cl.nodes.Add(sizes[0])
	cl.arcs.Add(sizes[1])
	cl.buildNanos.Add(time.Since(start).Nanoseconds())
}

// buildCenterLandmark constructs and solves every per-center auxiliary
// graph G_c (§8.2.2) as one barriered fan-out — the two barrier
// schedules' path; the streaming schedule instead feeds solveOne from
// the ready queue. Centers are independent, so the stage fans out
// across Params.Parallelism workers, and ctx is observed between
// centers: a cancelled solve stops after the items already in flight
// instead of running all |C| Dijkstras to completion.
//
// Node space of G_c: [c] (node 0), [r] per landmark, [r,e] per covered
// (landmark, prefix-edge) pair. Arcs (Lemma 21/22 case analysis):
//
//	[c]  → [r]      weight |cr|
//	[c]  → [r,e]    weight seed(c,r,e)   (§8.2.1 small path through c)
//	[r'] → [r,e]    weight |r'r|         if e ∉ cr' and e ∉ r'r
//	[r',e] → [r,e]  weight |r'r|         if [r',e] exists and e ∉ r'r
//
// All positions are measured in T_c, where the shared-prefix identity
// again makes an edge's index the same on every path through it.
func buildCenterLandmark(ctx context.Context, sh *ssrp.Shared, ctr *Centers, seed seedReader) (*centerLandmark, error) {
	cl := newCenterLandmark(sh, ctr)
	if err := sh.Pool.RunScratchCtx(ctx, len(ctr.List), func(i int, sc *engine.Scratch) {
		cl.solveOne(sh, i, seed, sc)
	}); err != nil {
		return nil, err
	}
	return cl, nil
}

// buildOne builds and solves G_c, returning the d(c,r,·) rows (dense,
// indexed by landmark position in sh.List), the retained provenance
// (TrackPaths only, else nil), and the graph's (nodes, arcs) size pair.
// It must not write shared state outside c's own slots: both schedules
// run it concurrently across centers. sc backs the transient arc
// builder and covered-edge buffers.
func (cl *centerLandmark) buildOne(sh *ssrp.Shared, c int32, seed seedReader, sc *engine.Scratch) ([][]int32, *auxProv, [2]int64) {
	g := sh.G
	ctr := cl.ctr
	tc := ctr.Tree[c]
	ancC := ctr.Anc[c]
	budget := ctr.Budget(ctr.Priority(c))

	type lmInfo struct {
		r        int32
		li       int32 // r's position in sh.List
		node     int32
		base     int32
		count    int32
		pathEdge []int32 // covered prefix edges e_0..e_{count-1} in T_c
	}
	infos := make([]lmInfo, 0, len(sh.List))
	next := int32(1)
	for li, r := range sh.List {
		if r == c || !tc.Reachable(r) {
			continue
		}
		infos = append(infos, lmInfo{r: r, li: int32(li), node: next})
		next++
	}
	for idx := range infos {
		in := &infos[idx]
		l := tc.Dist[in.r]
		count := budget
		if l < count {
			count = l
		}
		in.count = count
		in.base = next
		next += count
		// The covered edges are the T_c path *prefix*: walk up from r
		// and keep the first `count` edges (positions 0..count-1 from
		// the c side).
		in.pathEdge = sc.Int32(int(count))
		x := in.r
		for j := l - 1; j >= 0; j-- {
			if j < count {
				in.pathEdge[j] = tc.ParentEdge[x]
			}
			x = tc.Parent[x]
		}
	}
	total := int(next)

	bld := ssrp.AttachedBuilder(sc, total, total*4)
	for idx := range infos {
		bld.AddArc(0, infos[idx].node, tc.Dist[infos[idx].r])
	}
	for idx := range infos {
		in := &infos[idx]
		for j := int32(0); j < in.count; j++ {
			e := in.pathEdge[j]
			node := in.base + j
			if w, ok := seed.Get(packCRE(c, in.r, e)); ok {
				bld.AddArc(0, node, w)
			}
			for jdx := range infos {
				in2 := &infos[jdx]
				r2 := in2.r
				if r2 == in.r {
					continue
				}
				dRR := sh.Tree[r2].Dist[in.r] // |r'r|
				if dRR < 0 {
					continue
				}
				if sh.Anc[r2].EdgeOnRootPath(g, e, in.r) {
					continue // e on the canonical r'→r path
				}
				if !ancC.EdgeOnRootPath(g, e, r2) {
					bld.AddArc(in2.node, node, dRR)
				} else if j < in2.count {
					bld.AddArc(in2.base+j, node, dRR)
				}
			}
		}
	}
	sizes := [2]int64{int64(total), int64(bld.NumArcs())}
	// G_c is build-run-discard (only the rows below survive), so both
	// the CSR and the Dijkstra result live in the worker scratch.
	res := bld.FinalizeScratch(sc).RunScratch(0, sc)

	rows := make([][]int32, len(sh.List))
	for idx := range infos {
		in := &infos[idx]
		row := make([]int32, in.count)
		for j := int32(0); j < in.count; j++ {
			d := res.Dist[in.base+j]
			if d >= int64(rp.Inf) {
				row[j] = rp.Inf
			} else {
				row[j] = int32(d)
			}
		}
		rows[in.li] = row
	}
	var ap *auxProv
	if sh.Params.TrackPaths {
		ap = &auxProv{
			parent:  append([]int32(nil), res.Parent...),
			nodeOwn: make([]int32, total),
			nodeIdx: make([]int32, total),
			base:    make(map[int32]int32, len(infos)),
			start:   make(map[int32]int32, len(infos)),
		}
		ap.nodeOwn[0], ap.nodeIdx[0] = -1, -1
		for idx := range infos {
			in := &infos[idx]
			ap.nodeOwn[in.node], ap.nodeIdx[in.node] = in.r, -1
			ap.base[in.r], ap.start[in.r] = in.base, 0 // G_c covers the prefix
			for j := int32(0); j < in.count; j++ {
				ap.nodeOwn[in.base+j] = in.r
				ap.nodeIdx[in.base+j] = j
			}
		}
	}
	return rows, ap, sizes
}

// dCR returns d(c, r, e) where e is a graph edge: |cr| when e is off
// the canonical (T_c) c→r path, the §8.2.2 value when covered by c's
// budget, rp.Inf otherwise.
func (cl *centerLandmark) dCR(sh *ssrp.Shared, c, r int32, e int32) int32 {
	if c == r {
		return 0
	}
	tc := cl.ctr.Tree[c]
	if !tc.Reachable(r) {
		return rp.Inf
	}
	if !cl.ctr.Anc[c].EdgeOnRootPath(sh.G, e, r) {
		return tc.Dist[r]
	}
	// e's index on the T_c path toward r is depth(child)−1 in T_c.
	child, ok := tc.ChildEndpoint(sh.G, e)
	if !ok {
		return rp.Inf
	}
	j := tc.Dist[child] - 1
	ci, li := cl.ctr.Index(c), cl.lmIdx[r]
	if ci < 0 || li < 0 {
		return rp.Inf
	}
	row := cl.rows[ci][li]
	if j < 0 || j >= int32(len(row)) {
		return rp.Inf
	}
	return row[j]
}

// provAt returns center c's retained §8.2.2 provenance, or nil.
func (cl *centerLandmark) provAt(c int32) *auxProv {
	ci := cl.ctr.Index(c)
	if ci < 0 {
		return nil
	}
	return cl.prov[ci]
}
