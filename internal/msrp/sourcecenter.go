package msrp

import (
	"msrp/internal/engine"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// sourceCenter holds the §8.1 output for one source s: replacement path
// lengths d(s, c, e) from s to every center c, for every edge e among
// the last Budget(priority(c)) edges of the canonical s→c path (the
// edges "nearest c", which are the only ones the MTC assembly ever
// queries — Lemma 18/20).
type sourceCenter struct {
	ps  *ssrp.PerSource
	ctr *Centers

	// start[c] is the first covered path-edge index for center c
	// (max(0, |sc| − budget)); rows[c][i−start[c]] = d(s,c,e_i).
	start map[int32]int32
	rows  map[int32][]int32

	// prov retains the G_s parent chains and node decode tables under
	// Params.TrackPaths, so the provenance plane can expand a d(s,c,e)
	// value into the concrete walk its Dijkstra found. nil otherwise.
	prov *auxProv

	// Aux-graph size counters for the E9 experiment.
	NumNodes int
	NumArcs  int
}

// buildSourceCenter constructs the §8.1 auxiliary graph G_s and solves
// it with one Dijkstra run.
//
// Node space: [s] (the source, node 0), [c] per center, [c,e] per
// covered (center, path-edge) pair. Arc types, each a sound
// e-avoiding-walk extension (Lemma 20's case analysis):
//
//	[s]  → [c]      weight |sc|             (canonical path)
//	[s]  → [c,e]    weight w_small(c, e)    (§7.1 small-near value)
//	[c'] → [c,e]    weight |c'c|            if e ∉ sc' and e ∉ c'c
//	[c',e] → [c,e]  weight |c'c|            if [c',e] exists and e ∉ c'c
//
// The index identity from the shared-prefix property applies: an edge e
// of T_s on both the s→c and s→c' canonical paths has the same 0-based
// index i on both, so [c',e] is c”s block at offset i−start[c'].
func buildSourceCenter(ps *ssrp.PerSource, ctr *Centers, scr *engine.Scratch) *sourceCenter {
	g := ps.Sh.G
	ts := ps.Ts
	sc := &sourceCenter{
		ps:    ps,
		ctr:   ctr,
		start: make(map[int32]int32, len(ctr.List)),
		rows:  make(map[int32][]int32, len(ctr.List)),
	}

	// Node layout: 0 = [s]; 1..|C| = [c]; then per-center [c,e] blocks.
	type centerInfo struct {
		c        int32
		node     int32 // [c] node id
		base     int32 // first [c,e] node id
		start    int32 // first covered path-edge index
		count    int32
		pathEdge []int32 // covered edges e_start..e_{|sc|-1}
	}
	infos := make([]centerInfo, 0, len(ctr.List))
	next := int32(1)
	for _, c := range ctr.List {
		if c == ps.S || !ts.Reachable(c) {
			continue
		}
		infos = append(infos, centerInfo{c: c, node: next})
		next++
	}
	for idx := range infos {
		in := &infos[idx]
		l := ts.Dist[in.c]
		b := ctr.Budget(ctr.Priority(in.c))
		start := l - b
		if start < 0 {
			start = 0
		}
		in.start = start
		in.count = l - start
		in.base = next
		next += in.count
		// Walk up from c collecting the covered suffix of the path.
		in.pathEdge = scr.Int32(int(in.count))
		x := in.c
		for i := l - 1; i >= start; i-- {
			in.pathEdge[i-start] = ts.ParentEdge[x]
			x = ts.Parent[x]
		}
		sc.start[in.c] = start
	}
	total := int(next)

	bld := ssrp.AttachedBuilder(scr, total, total*4)
	// [s] → [c] arcs.
	for idx := range infos {
		bld.AddArc(0, infos[idx].node, ts.Dist[infos[idx].c])
	}
	// Per [c,e] arcs.
	for idx := range infos {
		in := &infos[idx]
		for off := int32(0); off < in.count; off++ {
			i := in.start + off
			e := in.pathEdge[off]
			node := in.base + off
			// [s] → [c,e] with the §7.1 small value (target = c).
			if w := ps.Small.Value(in.c, int(i)); w < rp.Inf {
				bld.AddArc(0, node, w)
			}
			// [c'] and [c',e] predecessors.
			for jdx := range infos {
				in2 := &infos[jdx]
				c2 := in2.c
				if c2 == in.c {
					continue
				}
				d2c := ctr.Tree[c2].Dist[in.c] // |c'c|
				if d2c < 0 {
					continue
				}
				if ctr.Anc[c2].EdgeOnRootPath(g, e, in.c) {
					continue // e on the canonical c'→c path
				}
				if !ps.AncS.EdgeOnRootPath(g, e, c2) {
					// e not on s→c': the [c'] node's canonical prefix
					// avoids e.
					bld.AddArc(in2.node, node, d2c)
				} else if i >= in2.start && i < ts.Dist[c2] {
					// e on s→c' within c''s covered block.
					bld.AddArc(in2.base+(i-in2.start), node, d2c)
				}
			}
		}
	}
	sc.NumNodes = total
	sc.NumArcs = bld.NumArcs()
	// G_s is build-run-discard (only the rows below survive), so both
	// the CSR and the Dijkstra result live in the worker scratch.
	res := bld.FinalizeScratch(scr).RunScratch(0, scr)

	for idx := range infos {
		in := &infos[idx]
		row := make([]int32, in.count)
		for off := int32(0); off < in.count; off++ {
			d := res.Dist[in.base+off]
			if d >= int64(rp.Inf) {
				row[off] = rp.Inf
			} else {
				row[off] = int32(d)
			}
		}
		sc.rows[in.c] = row
	}
	if ps.TrackPaths {
		ap := &auxProv{
			parent:  append([]int32(nil), res.Parent...),
			nodeOwn: make([]int32, total),
			nodeIdx: make([]int32, total),
			base:    make(map[int32]int32, len(infos)),
			start:   make(map[int32]int32, len(infos)),
		}
		ap.nodeOwn[0], ap.nodeIdx[0] = -1, -1
		for idx := range infos {
			in := &infos[idx]
			ap.nodeOwn[in.node], ap.nodeIdx[in.node] = in.c, -1
			ap.base[in.c], ap.start[in.c] = in.base, in.start
			for off := int32(0); off < in.count; off++ {
				ap.nodeOwn[in.base+off] = in.c
				ap.nodeIdx[in.base+off] = in.start + off
			}
		}
		sc.prov = ap
	}
	return sc
}

// dSC returns d(s, c, e) for path edge e with shared-prefix index i:
// the canonical |sc| when e is off the s→c path, the §8.1 value when
// covered, rp.Inf when outside the budget (the lemmas make that case
// irrelevant w.h.p.).
func (sc *sourceCenter) dSC(c int32, i int, e int32) int32 {
	ps := sc.ps
	if c == ps.S {
		return 0
	}
	if !ps.Ts.Reachable(c) {
		return rp.Inf
	}
	if !ps.AncS.EdgeOnRootPath(ps.Sh.G, e, c) {
		return ps.Ts.Dist[c]
	}
	start, ok := sc.start[c]
	if !ok || int32(i) < start {
		return rp.Inf
	}
	row := sc.rows[c]
	off := int32(i) - start
	if off >= int32(len(row)) {
		return rp.Inf
	}
	return row[off]
}
