package msrp

import (
	"fmt"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"

	"msrp/internal/cuckoo"
	"msrp/internal/engine"
	"msrp/internal/ssrp"
)

// The streaming seed merge and its readiness analysis.
//
// The pipelined solve (PR 4) removed the barrier between a source's
// §7.1/§8.1 build and its §8.2.1 seed enumeration, but kept one
// stop-the-world step: every source's shard had to finish before the
// shards merged into the seed table, and every §8.2.2 per-center
// Dijkstra waited behind that merge. This file dissolves that barrier:
//
//   - The merge target becomes a cuckoo.Partitioned keyed by center id
//     (packCRE leads with the center's bits, so routing on high key
//     bits partitions the table *by center* — every key of one center
//     lands in exactly one partition).
//
//   - A conservative source→center contribution map, computed from the
//     prebuilt landmark trees alone, tells which sources can ever
//     write a given center's keys. When the last registered source of
//     a partition retires, the partition is frozen — its staged
//     entries are folded in, and it will never be written again — and
//     its centers are published to the engine's ReadyQueue, while
//     other sources are still building, enumerating, or folding other
//     partitions. §8.2.2 work starts the moment its inputs exist, not
//     when the slowest source finishes.
//
// Soundness of the contribution map: a §8.2.1 entry for center c from
// source s exists only if c lies (strictly before the end) on a small
// replacement path of s. Such a walk is a canonical prefix s⇝v plus a
// chain of near-edge detour hops, all at one shared path-edge index
// i ≤ max_r |sr| − 1: each chain vertex t' has e near on its canonical
// path, so |st'| ≤ i + nearEdgeCap, and the prefix endpoint v is
// adjacent to the first chain vertex, so |sv| ≤ i + nearEdgeCap + 1.
// Every walk vertex therefore satisfies
//
//	dist_s(w) ≤ max_{r ∈ landmarks} dist_s(r) + nearEdgeCap + 1 =: B(s)
//
// and contributors(c) ⊇ {s : 0 ≤ dist_s(c) ≤ B(s)} is a sound
// over-approximation: readiness can only fire late, never early. Two
// guards turn "never early" from an argument into an invariant: the
// scatter panics if a source emits an entry for a partition it did not
// register for, and the freeze panics if a member center still has
// registered contributors outstanding.
//
// Determinism: each retiring source appends its entries (in its
// shard's deterministic layout order) to per-(partition, source)
// staging buckets; a freeze folds the buckets in source order into a
// presized partition table. The fold sequence of every partition is
// therefore a pure function of the instance — independent of worker
// count and retire interleaving — so the Partitioned's contents AND
// layout (Fingerprint) are bit-identical across schedules and P.
type seedPlan struct {
	sh  *ssrp.Shared
	ctr *Centers

	parts *cuckoo.Partitioned
	// ctrShift is the partition routing shift expressed on center ids:
	// part(c) = c >> ctrShift (clamped), matching parts.Part(packCRE(c,·,·)).
	ctrShift uint

	// srcCenters[i] / srcParts[i]: the center indices (positions in
	// ctr.List) and partition ids source i registered for, sorted.
	srcCenters [][]int32
	srcParts   [][]int32

	// partCenters[p]: center indices whose keys route to partition p.
	partCenters [][]int32

	// buckets[p][i] stages source i's entries for partition p between
	// the source's retirement and the partition's freeze. Written only
	// by source i's worker; read only by the freezing worker, which the
	// partRemaining counter hand-off orders after every write.
	buckets [][][]cuckoo.Entry

	// Remaining-contributor counters: partRemaining[p] gates partition
	// p's freeze, centerRemaining[ci] is the per-center view kept for
	// the freeze invariant check and the readiness stats.
	partRemaining   []atomic.Int32
	centerRemaining []atomic.Int32

	// srcRemaining counts sources that have not yet retired; abDone
	// counts sources whose full stage-B (enumerate + retire) returned.
	// The pair feeds the two observability counters: centersReady
	// (readiness fired while other sources were still in flight) and
	// centersOverlapped (§8.2.2 builds started while per-source work
	// was still running — the wall-clock the old barrier wasted).
	srcRemaining atomic.Int32
	abDone       atomic.Int32

	rq *engine.ReadyQueue

	centersReady      atomic.Int64
	centersOverlapped atomic.Int64
	shardRehashes     atomic.Int64
	mergeNanos        atomic.Int64
}

// seedPartsTarget bounds the partition count: enough partitions that
// freezes release center batches incrementally, few enough that the
// per-table overhead stays trivial.
const seedPartsTarget = 64

// newSeedPlan runs the readiness analysis on the prebuilt landmark
// trees and returns the streaming-merge plan: partition routing,
// per-source registration sets, remaining-contributor counters, and
// the ready queue (with zero-contributor partitions already frozen and
// their centers marked — an unreachable or never-touched center's
// §8.2.2 build is runnable at t=0).
func newSeedPlan(sh *ssrp.Shared, ctr *Centers) *seedPlan {
	n := sh.G.NumVertices()
	// Shift so that ~seedPartsTarget partitions cover the live center-id
	// range: keys are c<<(vertexBits+edgeBits)|…, so shifting by
	// (vertexBits+edgeBits)+k routes on c>>k.
	extra := 0
	if b := bits.Len(uint(n - 1)); b > 6 { // 2^6 = seedPartsTarget
		extra = b - 6
	}
	ctrShift := uint(extra)
	nParts := ((n - 1) >> ctrShift) + 1
	pl := &seedPlan{
		sh:          sh,
		ctr:         ctr,
		parts:       cuckoo.NewPartitioned(nParts, uint(vertexBits+edgeBits)+ctrShift),
		ctrShift:    ctrShift,
		srcCenters:  make([][]int32, sh.Sigma()),
		srcParts:    make([][]int32, sh.Sigma()),
		partCenters: make([][]int32, nParts),
		buckets:     make([][][]cuckoo.Entry, nParts),
	}
	for p := range pl.buckets {
		pl.buckets[p] = make([][]cuckoo.Entry, sh.Sigma())
	}
	pl.partRemaining = make([]atomic.Int32, nParts)
	pl.centerRemaining = make([]atomic.Int32, len(ctr.List))
	for ci, c := range ctr.List {
		p := pl.partOf(c)
		pl.partCenters[p] = append(pl.partCenters[p], int32(ci))
	}

	// Contribution map: per source, the centers within B(s) of s in s's
	// prebuilt landmark tree (sources are forced landmarks, so the tree
	// exists before any per-source build runs). Sources are independent;
	// fan out over the pool.
	sh.Pool.Run(sh.Sigma(), func(i int) {
		ts := sh.Tree[sh.Sources[i]]
		maxLm := int32(-1)
		for _, r := range sh.List {
			if d := ts.Dist[r]; d > maxLm {
				maxLm = d
			}
		}
		if maxLm < 0 {
			return // isolated source: no landmark reachable, no entries
		}
		bound := int64(maxLm) + int64(sh.NearEdgeCap()) + 1
		centers := make([]int32, 0, len(ctr.List))
		var partsSet []int32
		for ci, c := range ctr.List {
			d := ts.Dist[c]
			if d < 0 || int64(d) > bound {
				continue
			}
			centers = append(centers, int32(ci))
			p := int32(pl.partOf(c))
			if len(partsSet) == 0 || partsSet[len(partsSet)-1] != p {
				partsSet = append(partsSet, p) // ctr.List ascending ⇒ parts ascending
			}
		}
		pl.srcCenters[i] = centers
		pl.srcParts[i] = partsSet
	})

	for i := range pl.srcCenters {
		for _, ci := range pl.srcCenters[i] {
			pl.centerRemaining[ci].Add(1)
		}
		for _, p := range pl.srcParts[i] {
			pl.partRemaining[p].Add(1)
		}
	}
	pl.srcRemaining.Store(int32(sh.Sigma()))
	pl.rq = engine.NewReadyQueue(len(ctr.List))
	// Partitions no source registered for are frozen (empty) up front;
	// their centers' §8.2.2 builds have no seed inputs to wait for.
	for p := range pl.partRemaining {
		if pl.partRemaining[p].Load() == 0 {
			pl.freeze(p)
		}
	}
	return pl
}

// partOf returns the partition id of center c's keys.
func (pl *seedPlan) partOf(c int32) int {
	p := int(uint32(c) >> pl.ctrShift)
	if p >= pl.parts.Parts() {
		p = pl.parts.Parts() - 1
	}
	return p
}

// retire publishes source src's finished seed shard and retires the
// source: entries scatter into the per-partition staging buckets, the
// remaining-contributor counters drop, and every partition this source
// completed is frozen (folded and its centers marked runnable). Called
// from the source's stage B; safe concurrently across sources.
func (pl *seedPlan) retire(src int, shard *cuckoo.Table) {
	start := time.Now()
	pl.shardRehashes.Add(int64(shard.Rehashes()))
	myParts := pl.srcParts[src]
	shard.Range(func(key uint64, val int32) bool {
		p := pl.parts.Part(key)
		at := sort.Search(len(myParts), func(k int) bool { return myParts[k] >= int32(p) })
		if at >= len(myParts) || myParts[at] != int32(p) {
			// An entry outside the registered set means the readiness
			// bound was unsound: the partition may already be frozen and
			// the entry silently lost. Fail loudly instead.
			panic(fmt.Sprintf("msrp: source %d emitted seed entry %x into unregistered partition %d (readiness bound unsound)", src, key, p))
		}
		pl.buckets[p][src] = append(pl.buckets[p][src], cuckoo.Entry{Key: key, Val: val})
		return true
	})
	// Retire order matters: srcRemaining first, so readiness fired by
	// this source's own freezes counts as "while sources in flight"
	// only when *other* sources genuinely remain; center counters
	// before partition counters, so a freeze observes every member
	// center already at zero.
	pl.srcRemaining.Add(-1)
	for _, ci := range pl.srcCenters[src] {
		if pl.centerRemaining[ci].Add(-1) < 0 {
			panic(fmt.Sprintf("msrp: center %d retired below zero contributors", ci))
		}
	}
	for _, p := range myParts {
		if pl.partRemaining[p].Add(-1) == 0 {
			pl.freeze(int(p))
		}
	}
	pl.mergeNanos.Add(time.Since(start).Nanoseconds())
}

// freeze folds partition p's staged buckets into its presized table —
// in source order, so the fold sequence (hence the table layout) is
// schedule-independent — and marks the partition's centers runnable.
// Runs on the worker whose retire completed the partition (or inline
// from newSeedPlan for zero-contributor partitions); the partRemaining
// hand-off makes every contributor's bucket writes visible here.
func (pl *seedPlan) freeze(p int) {
	total := 0
	for _, b := range pl.buckets[p] {
		total += len(b)
	}
	t := pl.parts.Table(p)
	t.Reserve(total)
	for src := range pl.buckets[p] {
		for _, e := range pl.buckets[p][src] {
			t.MinPut(e.Key, e.Val)
		}
		pl.buckets[p][src] = nil
	}
	// Freeze implies every member center's contributors have retired
	// (contributors(partition) ⊇ contributors(center)); a nonzero
	// counter here means the partition-level accounting diverged from
	// the per-center one.
	for _, ci := range pl.partCenters[p] {
		if pl.centerRemaining[ci].Load() != 0 {
			panic(fmt.Sprintf("msrp: partition %d froze with center %d still holding contributors", p, ci))
		}
	}
	inFlight := pl.srcRemaining.Load() > 0
	for _, ci := range pl.partCenters[p] {
		pl.rq.Mark(int(ci))
		if inFlight {
			pl.centersReady.Add(1)
		}
	}
}

// noteCenterStart records a §8.2.2 per-center build starting; builds
// that begin while any source's stage B is still running are the
// overlap the streaming schedule exists to create.
func (pl *seedPlan) noteCenterStart() {
	if pl.abDone.Load() < int32(pl.sh.Sigma()) {
		pl.centersOverlapped.Add(1)
	}
}

// noteSourceDone records a source's stage B fully returning (retire
// included).
func (pl *seedPlan) noteSourceDone() { pl.abDone.Add(1) }

// rehashes returns the total cuckoo rebuild count across shards and
// partition folds — the same cascade observability the barriered
// merge reports.
func (pl *seedPlan) rehashes() int {
	return int(pl.shardRehashes.Load()) + pl.parts.Rehashes()
}

// mergeSeedShardsPartitioned is the sequential reference for the
// streaming merge: the same scatter + source-order fold, one source at
// a time on one goroutine. The schedule-equivalence tests compare the
// streaming result against it fingerprint-for-fingerprint.
func mergeSeedShardsPartitioned(sh *ssrp.Shared, ctr *Centers, shards []*cuckoo.Table) *cuckoo.Partitioned {
	pl := newSeedPlan(sh, ctr)
	for i, shard := range shards {
		pl.retire(i, shard)
		pl.noteSourceDone()
	}
	return pl.parts
}
