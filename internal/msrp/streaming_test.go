package msrp

import (
	"context"
	"sort"
	"testing"

	"msrp/internal/cuckoo"
	"msrp/internal/graph"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

// scheduleNames enumerates the three solve schedules for sweep tests.
var scheduleNames = []string{"barrier", "merge-barrier", "stream"}

func paramsForSchedule(seed uint64, par int, schedule string, track bool) ssrp.Params {
	p := testParams(seed)
	p.Parallelism = par
	p.TrackPaths = track
	switch schedule {
	case "barrier":
		p.BarrierPipeline = true
	case "merge-barrier":
		p.SeedMergeBarrier = true
	case "stream":
	default:
		panic("unknown schedule " + schedule)
	}
	return p
}

// solveWithSchedule runs the full solve under the named schedule and
// returns the Solution (so tests can reach the provenance plane's seed
// table) plus the results.
func solveWithSchedule(t *testing.T, g *graph.Graph, sources []int32, par int, schedule string, track bool) *Solution {
	t.Helper()
	sh, err := ssrp.NewShared(g, sources, paramsForSchedule(77, par, schedule, track))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveShared(sh)
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

// TestSchedulesBitIdentical is the past-the-merge acceptance sweep:
// for every family, the three schedules (pre-pipeline barrier, PR 4
// pipeline with merge barrier, readiness-gated streaming) return
// bit-identical results at Parallelism ∈ {1, 2, 8}, with path tracking
// off and on. CI runs this under -race, so it doubles as the data-race
// proof for the scatter/freeze hand-off and the ready-queue drain.
func TestSchedulesBitIdentical(t *testing.T) {
	for _, f := range pipelineFamilies() {
		t.Run(f.name, func(t *testing.T) {
			baseline := solveWithSchedule(t, f.g, f.sources, 1, "barrier", false)
			for _, par := range []int{1, 2, 8} {
				for _, schedule := range scheduleNames {
					for _, track := range []bool{false, true} {
						sol := solveWithSchedule(t, f.g, f.sources, par, schedule, track)
						for i := range sol.Results {
							if d := rp.Diff(baseline.Results[i], sol.Results[i]); d != "" {
								t.Fatalf("P=%d %s track=%v: source %d differs: %s",
									par, schedule, track, f.sources[i], d)
							}
						}
					}
				}
			}
		})
	}
}

// TestStreamingMergeContentsAndLayout pins the streaming merge's two
// determinism contracts. Contents: the partitioned table holds exactly
// the entries of the sequential flat merge (MinPut is commutative and
// idempotent, so scatter order cannot matter). Layout: the partition
// fold order is a pure function of the instance, so the Partitioned
// fingerprint — which is sensitive to slot-level layout — is identical
// for the sequential reference fold and the streaming solve at every
// worker count.
func TestStreamingMergeContentsAndLayout(t *testing.T) {
	for _, f := range pipelineFamilies() {
		t.Run(f.name, func(t *testing.T) {
			p := testParams(77)
			sh, err := ssrp.NewShared(f.g, f.sources, p)
			if err != nil {
				t.Fatal(err)
			}
			ctr := newCenters(sh, sh.DeriveRNG())
			shards := make([]*cuckoo.Table, len(f.sources))
			for i, s := range f.sources {
				ps := sh.NewPerSource(s)
				ps.BuildSmallNear()
				shards[i] = buildSeedShard(ps, ctr, engineScratch())
			}
			flat, _ := mergeSeedShards(shards)
			ref := mergeSeedShardsPartitioned(sh, ctr, shards)

			if ref.Len() != flat.Len() {
				t.Fatalf("partitioned merge has %d entries, flat merge %d", ref.Len(), flat.Len())
			}
			flat.Range(func(key uint64, val int32) bool {
				if got, ok := ref.Get(key); !ok || got != val {
					t.Fatalf("key %x: partitioned %d,%v, flat %d", key, got, ok, val)
				}
				return true
			})

			// The streaming solve's retained seed table (TrackPaths keeps
			// it) must reproduce the reference fold slot for slot at every
			// worker count.
			want := ref.Fingerprint()
			for _, par := range []int{1, 2, 8} {
				sol := solveWithSchedule(t, f.g, f.sources, par, "stream", true)
				part, ok := sol.Prov.seed.(*cuckoo.Partitioned)
				if !ok {
					t.Fatalf("P=%d: streaming solve retained %T, want *cuckoo.Partitioned", par, sol.Prov.seed)
				}
				if got := part.Fingerprint(); got != want {
					t.Fatalf("P=%d: partitioned layout fingerprint %x, reference %x", par, got, want)
				}
			}
		})
	}
}

// TestSeedPlanReadinessSound verifies the contribution map's soundness
// directly: every entry a source actually enumerates belongs to a
// center (and partition) the readiness analysis registered that source
// for. An unregistered entry would mean a partition could freeze while
// a future contributor was still running — the exact unsoundness the
// scatter-time panic guards in production.
func TestSeedPlanReadinessSound(t *testing.T) {
	for _, f := range pipelineFamilies() {
		t.Run(f.name, func(t *testing.T) {
			sh, err := ssrp.NewShared(f.g, f.sources, testParams(77))
			if err != nil {
				t.Fatal(err)
			}
			ctr := newCenters(sh, sh.DeriveRNG())
			pl := newSeedPlan(sh, ctr)
			entries := 0
			for i, s := range f.sources {
				ps := sh.NewPerSource(s)
				ps.BuildSmallNear()
				shard := buildSeedShard(ps, ctr, engineScratch())
				centers, parts := pl.srcCenters[i], pl.srcParts[i]
				shard.Range(func(key uint64, _ int32) bool {
					entries++
					c := int32(key >> (vertexBits + edgeBits))
					ci := ctr.Index(c)
					if ci < 0 {
						t.Fatalf("source %d: entry %x names non-center %d", s, key, c)
					}
					at := sort.Search(len(centers), func(k int) bool { return centers[k] >= ci })
					if at >= len(centers) || centers[at] != ci {
						t.Fatalf("source %d: center %d (index %d) not in contribution map", s, c, ci)
					}
					p := int32(pl.parts.Part(key))
					at = sort.Search(len(parts), func(k int) bool { return parts[k] >= p })
					if at >= len(parts) || parts[at] != p {
						t.Fatalf("source %d: partition %d not registered", s, p)
					}
					return true
				})
			}
			if entries == 0 {
				t.Fatal("no seed entries enumerated — soundness test exercised nothing")
			}
		})
	}
}

// twoIslands builds a deliberately disconnected instance: a chorded
// path holding every source, plus a second component at the top of the
// id space that no source can reach. Centers sampled in the far island
// have zero possible contributors, so the readiness analysis must
// release their §8.2.2 builds at t=0 — before any source has even
// built — which makes CentersReady deterministically positive at every
// parallelism, 1 CPU included.
func twoIslands() (*graph.Graph, []int32) {
	rng := xrand.New(404)
	b := graph.NewBuilder(96)
	near := graph.PathWithChords(rng, 64, 10)
	for e := 0; e < near.NumEdges(); e++ {
		u, v := near.EdgeEndpoints(e)
		if err := b.AddEdge(int(u), int(v)); err != nil {
			panic(err)
		}
	}
	for v := 64; v < 95; v++ {
		if err := b.AddEdge(v, v+1); err != nil {
			panic(err)
		}
	}
	return b.MustBuild(), []int32{0, 21, 42, 63}
}

// TestStreamingReadinessFiresEarly: on the two-islands instance the
// far island's centers are ready before any source retires, the
// streaming stats report them, and the results still agree with the
// barrier schedule (unreachable centers are handled identically in all
// three schedules).
func TestStreamingReadinessFiresEarly(t *testing.T) {
	g, sources := twoIslands()
	baseline := solveWithSchedule(t, g, sources, 1, "barrier", false)
	for _, par := range []int{1, 2} {
		sol := solveWithSchedule(t, g, sources, par, "stream", false)
		for i := range sol.Results {
			if d := rp.Diff(baseline.Results[i], sol.Results[i]); d != "" {
				t.Fatalf("P=%d: source %d differs from barrier: %s", par, sources[i], d)
			}
		}
		if sol.Stats.CentersReady == 0 {
			t.Errorf("P=%d: CentersReady = 0; far-island centers should be ready at t=0", par)
		}
		if sol.Stats.SeedRehashes != 0 {
			t.Errorf("P=%d: SeedRehashes = %d, presized folds should never cascade", par, sol.Stats.SeedRehashes)
		}
	}
	// The barrier schedules must not report readiness counters at all.
	if barrier := solveWithSchedule(t, g, sources, 2, "merge-barrier", false); barrier.Stats.CentersReady != 0 || barrier.Stats.CentersOverlapped != 0 {
		t.Errorf("merge-barrier schedule reported readiness counters (%d ready, %d overlapped)",
			barrier.Stats.CentersReady, barrier.Stats.CentersOverlapped)
	}
}

// cancelingSeed wraps a seedReader and cancels a context on the first
// Get, recording which centers were probed — a deterministic mid-run
// cancellation for the §8.2.2 stage.
type cancelingSeed struct {
	inner   seedReader
	cancel  context.CancelFunc
	calls   int
	centers map[int32]bool
}

func (cs *cancelingSeed) Get(key uint64) (int32, bool) {
	cs.calls++
	if cs.calls == 1 {
		cs.cancel()
	}
	cs.centers[int32(key>>(vertexBits+edgeBits))] = true
	return cs.inner.Get(key)
}
func (cs *cancelingSeed) Len() int     { return cs.inner.Len() }
func (cs *cancelingSeed) Bytes() int64 { return cs.inner.Bytes() }

// TestCenterLandmarkCancellation is the §8.2.2 bugfix pin: the stage
// used to run on a context-blind scheduler, so a cancelled solve still
// paid all |C| per-center Dijkstras. Now a context cancelled mid-stage
// stops the fan-out after the items already in flight (at P=1: exactly
// the one center whose build observed the cancel), and a pre-cancelled
// context runs nothing.
func TestCenterLandmarkCancellation(t *testing.T) {
	g := graph.RandomConnected(xrand.New(24), 40, 90)
	sh, err := ssrp.NewShared(g, []int32{0, 5}, testParams(25))
	if err != nil {
		t.Fatal(err)
	}
	ctr := newCenters(sh, sh.DeriveRNG())
	var perSrc []*ssrp.PerSource
	for _, s := range []int32{0, 5} {
		ps := sh.NewPerSource(s)
		ps.BuildSmallNear()
		perSrc = append(perSrc, ps)
	}
	seed, _, err := buildSeedTable(context.Background(), sh, perSrc, ctr)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cs := &cancelingSeed{inner: seed, cancel: cancel, centers: map[int32]bool{}}
	if _, err := buildCenterLandmark(ctx, sh, ctr, cs); err != context.Canceled {
		t.Fatalf("mid-stage cancel: err = %v, want context.Canceled", err)
	}
	if cs.calls == 0 {
		t.Fatal("canceling seed reader was never consulted — instance enumerates no covered edges")
	}
	if len(cs.centers) != 1 {
		t.Fatalf("cancelled §8.2.2 stage probed %d centers at P=1, want exactly the in-flight one", len(cs.centers))
	}

	dead, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := buildCenterLandmark(dead, sh, ctr, seed); err != context.Canceled {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}
	if _, _, err := buildSeedTable(dead, sh, perSrc, ctr); err != context.Canceled {
		t.Fatalf("pre-cancelled seed build: err = %v, want context.Canceled", err)
	}
}
