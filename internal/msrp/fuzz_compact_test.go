package msrp

import (
	"testing"

	"msrp/internal/graph"
	"msrp/internal/rp"
)

// fuzzGraphBytes deterministically decodes fuzz bytes into a small
// simple graph (same scheme as the root package's oracle fuzz target):
// the first byte picks n ∈ [4, 16], each following byte pair proposes
// an edge (self-loops and duplicates skipped). Returns nil when no
// edge survives.
func fuzzGraphBytes(data []byte) *graph.Graph {
	if len(data) < 3 {
		return nil
	}
	n := 4 + int(data[0]%13)
	b := graph.NewBuilder(n)
	seen := make(map[[2]int]bool)
	edges := 0
	for i := 1; i+1 < len(data) && edges < 4*n; i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		if err := b.AddEdge(u, v); err != nil {
			return nil
		}
		edges++
	}
	if edges == 0 {
		return nil
	}
	g, err := b.Build()
	if err != nil {
		return nil
	}
	return g
}

// FuzzCompactExplain is the compaction soundness target: on arbitrary
// graphs and seeds, the compact representation must expand every finite
// LenSR entry byte-identically to the full provenance plane's explain
// walk, and the repointed ReconstructPath must keep certifying every
// answer. This must hold on EVERY input — compaction is a lossless
// re-encoding of the winning chains, not an approximation.
func FuzzCompactExplain(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0}, uint64(1))
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3}, uint64(7)) // path: bridges everywhere
	f.Add([]byte{12, 0, 1, 0, 2, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 2, 6}, uint64(3))
	f.Add([]byte{9, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 0, 0, 4, 2, 6}, uint64(11))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		g := fuzzGraphBytes(data)
		if g == nil {
			t.Skip()
		}
		n := g.NumVertices()
		sources := []int32{0}
		if s2 := int32(n / 2); s2 != 0 {
			sources = append(sources, s2)
		}
		p := DefaultParams()
		p.Seed = seed
		p.SampleBoost = 4
		p.SuffixScale = 0.25
		p.TrackPaths = true
		sol, err := Solve(g, sources, p)
		if err != nil {
			t.Fatalf("tracked solve failed on a valid graph: %v", err)
		}
		pv := sol.Prov
		if pv == nil {
			t.Fatal("tracked solve returned no provenance plane")
		}

		// Raw explain walks over the complete finite candidate space,
		// captured before compaction drops the plane.
		type key struct {
			si int
			r  int32
			i  int
		}
		raw := make(map[key][]int32)
		for si, ps := range sol.PerSource {
			for r, row := range ps.LenSR {
				for i, v := range row {
					if v >= rp.Inf {
						continue
					}
					pth, _, err := pv.expandLenSR(si, r, int32(i), ps.EdgeAt(r, i), v, 0)
					if err != nil {
						t.Fatalf("raw expand (si=%d r=%d i=%d): %v", si, r, i, err)
					}
					raw[key{si, r, i}] = pth
				}
			}
		}

		if err := sol.CompactProvenance(); err != nil {
			t.Fatalf("compaction failed: %v", err)
		}
		for k, want := range raw {
			got, err := sol.Compact[k.si].expand(k.r, k.i, 0)
			if err != nil {
				t.Fatalf("compact expand (si=%d r=%d i=%d): %v", k.si, k.r, k.i, err)
			}
			if len(got) != len(want) {
				t.Fatalf("compact expand (si=%d r=%d i=%d): %v != raw %v", k.si, k.r, k.i, got, want)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("compact expand (si=%d r=%d i=%d): %v != raw %v", k.si, k.r, k.i, got, want)
				}
			}
		}
		for i, res := range sol.Results {
			if _, failures := rp.VerifyReconstructions(g, res, 1, sol.PerSource[i].ReconstructPath); len(failures) > 0 {
				t.Fatalf("source %d post-compaction reconstruction failures: %v", sources[i], failures[0])
			}
		}
	})
}
