// Package msrp implements the paper's Multiple Source Replacement Path
// algorithm (Gupta–Jain–Modi 2020, §8; Theorem 1/26): all replacement
// path lengths from σ sources in Õ(m√(nσ) + σn²) time.
//
// # Pipeline
//
// The single-source pipeline (internal/ssrp) needs d(s, r, e) for every
// landmark r, which it obtains by running the classical single-pair
// algorithm per landmark — unaffordable for σ sources. §8 replaces that
// step with the Bernstein–Karger-style center machinery:
//
//  1. Sample a center family C_0 … C_K (same distribution as landmarks,
//     sources forced into C_0); build BFS trees and ancestries
//     (centers.go).
//  2. §8.1 — per source s, one auxiliary-graph Dijkstra yields
//     d(s, c, e) for every center c and the edges within c's budget of
//     c on the s→c path (sourcecenter.go).
//  3. §8.2.1 — enumerate the small replacement paths found by the §7.1
//     Dijkstras of all sources, recording the c→r suffix length of
//     every center c they pass (centerlandmark.go, the cuckoo table).
//  4. §8.2.2 — per center c, one auxiliary-graph Dijkstra yields
//     d(c, r, e) for every landmark r and the edges within c's budget
//     (centerlandmark.go).
//  5. Assembly — per (s, r, e): MTC via the interval decomposition
//     (Lemma 16), the §7.1 small value, and a sound interval-avoidance
//     candidate; then fixpoint sweeps of the far/near machinery over
//     landmark targets (assemble.go).
//  6. The ssrp per-target combine finishes exactly as in the
//     single-source case, reading the §8-built LenSR.
//
// Soundness is unconditional (every candidate dominates a concrete
// e-avoiding walk); exactness holds w.h.p. via Lemmas 18-25.
package msrp

import (
	"context"
	"sync/atomic"
	"time"

	"msrp/internal/cuckoo"
	"msrp/internal/engine"
	"msrp/internal/graph"
	"msrp/internal/rp"
	"msrp/internal/ssrp"
)

// Params re-exports the shared parameter type.
type Params = ssrp.Params

// DefaultParams returns the paper-faithful parameters.
func DefaultParams() Params { return ssrp.DefaultParams() }

// maxSweeps bounds the landmark fixpoint iteration; two sweeps resolve
// every dependency chain seen in practice and the loop exits early on
// convergence anyway.
const maxSweeps = 3

// Stats extends the ssrp counters with the §8-specific sizes.
type Stats struct {
	ssrp.Stats

	// Center family.
	CenterLevelSizes []int
	CenterCount      int

	// §8.1 auxiliary graphs (summed over sources).
	SCNodes int64
	SCArcs  int64

	// §8.2 auxiliary graphs (summed over centers) and seed table size.
	CLNodes   int64
	CLArcs    int64
	SeedCount int
	// SeedRehashes counts cuckoo rebuilds across the sharded §8.2.1
	// build (shards + merge). Presizing keeps it at zero; a nonzero
	// value in E9/E13 means a rehash cascade came back.
	SeedRehashes int

	// §8.3 auxiliary graphs (PaperBottleneck mode only).
	BNNodes int64
	BNArcs  int64

	// Fixpoint sweep behaviour (default mode only).
	Sweeps        int
	SweepImproved int64

	// Stage-latency breakdown (the ROADMAP's "load shedding informed by
	// measured build latency"). Every stage records wall time summed
	// over its items — per-source builds, per-source seed enumerations,
	// per-source merge work (scatter + partition folds in the streaming
	// schedule; the single fold pass under a merge barrier), per-center
	// §8.2.2 builds, per-source assembly — a measure that stays
	// comparable when schedules overlap the stages arbitrarily.
	StagePerSourceBuild time.Duration
	StageSeedEnumerate  time.Duration
	StageSeedMerge      time.Duration
	StageCenterLandmark time.Duration
	StageAssembly       time.Duration

	// Streaming-schedule readiness observability (zero under the
	// barrier schedules). CentersReady counts centers whose §8.2.2
	// build became runnable while other sources were still unretired —
	// how much §8.2.2 work the readiness analysis released ahead of the
	// last source. CentersOverlapped counts §8.2.2 builds that started
	// while some source's build/enumerate/merge work was still running —
	// the overlap the old stop-the-world merge barrier made impossible.
	CentersReady      int
	CentersOverlapped int

	// PeakSeedPathBytes is the high-water mark of live §7.1
	// path-expansion state (Dijkstra parent chains + [t,e] target maps)
	// across the solve. Each source's state is released as soon as its
	// seed shard is enumerated, so the pipelined schedule peaks at
	// Θ(P·aux) — the in-flight sources — while the barrier schedule
	// (Params.BarrierPipeline) builds all σ sources before enumerating
	// any and peaks at Θ(σ·aux). The exact value is schedule-dependent
	// at P > 1 (it measures real concurrent liveness); the Θ bound is
	// not. Path tracking does not change it: the provenance snapshot is
	// a separate, deliberately retained plane accounted below.
	PeakSeedPathBytes int64

	// ProvenanceBytes is the retained footprint of the provenance plane
	// when Params.TrackPaths is set (per-source witness snapshots and
	// answer provenance, the §8.1/§8.2.2 parent chains, and the seed
	// table); 0 otherwise.
	ProvenanceBytes int64
}

// Solution is the output of one multi-source solve: the per-source
// replacement-length results, the per-source solver state that expands
// them (canonical trees, and — under Params.TrackPaths — the witness
// snapshots and answer provenance, with the shared Provenance plane
// installed as each source's landmark-path expander), and the solve
// counters. PRs 1–4 returned bare result slices and grew side channels
// ad hoc; the provenance plane made the answer a first-class composite.
type Solution struct {
	// Results holds the replacement-length tables, in source order.
	Results []*rp.Result
	// PerSource holds the matching solver state, in source order.
	// PerSource[i].ReconstructPath expands Results[i]'s answers when
	// Params.TrackPaths was set.
	PerSource []*ssrp.PerSource
	// Prov is the shared §8 provenance plane (nil unless tracking, and
	// nil again after CompactProvenance replaces it).
	Prov *Provenance
	// Compact holds the per-source compacted provenance records, in
	// source order (nil until CompactProvenance runs).
	Compact []*CompactProv
	// Stats holds the observability counters.
	Stats *Stats
}

// Solve computes all replacement path lengths from every source.
// Results are returned in source order.
func Solve(g *graph.Graph, sources []int32, p Params) (*Solution, error) {
	if err := checkPackable(g.NumVertices(), g.NumEdges()); err != nil {
		return nil, err
	}
	sh, err := ssrp.NewShared(g, sources, p)
	if err != nil {
		return nil, err
	}
	return SolveShared(sh)
}

// SolveShared is Solve on already-built shared preprocessing, so
// callers that keep a long-lived ssrp.Shared (the public Oracle) do
// not pay the Õ(m√(nσ)) landmark stage twice. Deterministic in the
// Shared alone: repeated calls return bit-identical results.
func SolveShared(sh *ssrp.Shared) (*Solution, error) {
	return SolveSharedContext(context.Background(), sh)
}

// SolveSharedContext is SolveShared with cancellation: the per-source
// stages observe ctx between items (via the engine's context-aware
// scheduler) and the pipeline checks ctx between stages, so a cancelled
// solve returns promptly — bounded by the stage items already in
// flight, not by the full σ-source run. A cancelled solve mutates no
// state reachable from sh (the center-family RNG derivation is
// idempotent), so retrying on the same Shared stays bit-identical.
//
// With Params.TrackPaths the solve additionally retains the provenance
// plane — each source's §7.1 witness snapshot is taken between its
// seed-shard enumeration and ReleasePathState (in every schedule, so
// the Θ(P·aux) pre-merge peak of the untracked pipelined solve is
// untouched), the §8.1/§8.2.2 parent chains and the merged seed table
// are kept (the partitioned table, under the streaming schedule), and
// every PerSource gets the plane installed as its landmark-path
// expander. Tracking is purely observational: lengths are bit-identical
// with it on or off, at any worker count, in any schedule.
func SolveSharedContext(ctx context.Context, sh *ssrp.Shared) (*Solution, error) {
	g, sources, p := sh.G, sh.Sources, sh.Params
	if err := checkPackable(g.NumVertices(), g.NumEdges()); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	stats := &Stats{Stats: *sh.NewStats()}

	// Centers (§8 preliminaries).
	ctr := newCenters(sh, sh.DeriveRNG())
	stats.CenterCount = len(ctr.List)
	for k := 0; k <= ctr.Levels.MaxK; k++ {
		stats.CenterLevelSizes = append(stats.CenterLevelSizes, ctr.Levels.Size(k))
	}

	// Per-source builds (trees, §7.1 graphs, §8.1 graphs) and §8.2.1
	// seed-shard enumeration. A source's shard depends only on that
	// source's build, so by default the two stages run as one
	// dependency-aware pipeline over the engine pool: a worker
	// finishing source i's build immediately enumerates source i's
	// shard while other sources are still building (or unclaimed, and
	// stealable). The only barrier left is the shard merge below —
	// MinPut is commutative and idempotent, so contents are
	// bit-identical at any worker count and any interleaving. Each
	// worker's scratch carries the arc-builder arrays from item to item
	// (and, via the pool free list, into the later stages).
	//
	// Memory: a source's §7.1 path-expansion state (the only input of
	// its shard enumeration not needed afterwards) is released at the
	// end of its stage B, so at most P sources' worth is live at once;
	// the barrier schedule keeps all σ alive across its stage boundary.
	// liveSeedPathBytes/peak track that high-water mark.
	perSrc := make([]*ssrp.PerSource, len(sources))
	scs := make([]*sourceCenter, len(sources))
	shards := make([]*cuckoo.Table, len(sources))
	var buildNanos, enumNanos, assembleNanos atomic.Int64
	var liveSeedPathBytes, peakSeedPathBytes atomic.Int64
	buildOne := func(i int, sc *engine.Scratch) {
		start := time.Now()
		ps := sh.NewPerSource(sources[i])
		// §8.3.2 bottleneck values are build-run-discard and carry no
		// retainable provenance, so a bottleneck solve serves lengths
		// only: tracking stays off per source, and path queries fail
		// per-query instead of the whole solve being rejected.
		ps.TrackPaths = p.TrackPaths && !p.PaperBottleneck
		ps.BuildSmallNearScratch(sc)
		perSrc[i] = ps
		scs[i] = buildSourceCenter(ps, ctr, sc)
		buildNanos.Add(time.Since(start).Nanoseconds())
		maxInto(&peakSeedPathBytes, liveSeedPathBytes.Add(ps.Small.PathStateBytes()))
	}
	enumerateOne := func(i int, sc *engine.Scratch) {
		start := time.Now()
		shards[i] = buildSeedShard(perSrc[i], ctr, sc)
		if perSrc[i].TrackPaths {
			// The compact witness snapshot is taken between the shard
			// enumeration (the last consumer of the full path state)
			// and the release below, in both schedules — the retained
			// provenance plane, not a path-state leak.
			perSrc[i].Snap = perSrc[i].Small.SnapshotProvenance()
		}
		liveSeedPathBytes.Add(-perSrc[i].Small.ReleasePathState())
		enumNanos.Add(time.Since(start).Nanoseconds())
	}
	// Three schedules, bit-identical outputs (the merge is commutative
	// and idempotent; §8.2.2 state is index-owned):
	//
	//   BarrierPipeline — all builds, then all enumerations, then the
	//   flat merge, then the barriered §8.2.2 fan-out (the pre-pipeline
	//   schedule, kept for E14/E20 and the bit-identity tests).
	//
	//   SeedMergeBarrier — build→enumerate pipelined per source, but
	//   the merge still stops the world and §8.2.2 waits behind it
	//   (the PR 4 schedule, the E20 comparison point).
	//
	//   default (streaming) — build→enumerate pipelined per source;
	//   each retiring source scatters its shard into per-center-
	//   partition staging buckets; a partition whose registered
	//   contributors have all retired is frozen and its centers' §8.2.2
	//   builds drain through the engine's ready queue while other
	//   sources are still building, enumerating, or folding. The only
	//   ordering left is the true data dependency: a center's seed
	//   entries before that center's G_c.
	var cl *centerLandmark
	var seed seedReader
	var err error
	switch {
	case p.BarrierPipeline:
		if err = sh.Pool.RunScratchCtx(ctx, len(sources), buildOne); err == nil {
			err = sh.Pool.RunScratchCtx(ctx, len(sources), enumerateOne)
		}
	case p.SeedMergeBarrier:
		err = sh.Pool.PipelineScratchCtx(ctx, len(sources), buildOne, enumerateOne)
	default:
		pl := newSeedPlan(sh, ctr)
		cl = newCenterLandmark(sh, ctr)
		err = sh.Pool.PipelineReadyScratchCtx(ctx, len(sources), buildOne,
			func(i int, sc *engine.Scratch) {
				enumerateOne(i, sc)
				pl.retire(i, shards[i])
				shards[i] = nil // staged into the plan's buckets now
				pl.noteSourceDone()
			},
			pl.rq,
			func(ci int, sc *engine.Scratch) {
				pl.noteCenterStart()
				cl.solveOne(sh, ci, pl.parts, sc)
			})
		if err == nil {
			seed = pl.parts
			stats.StageSeedMerge = time.Duration(pl.mergeNanos.Load())
			stats.SeedRehashes = pl.rehashes()
			stats.CentersReady = int(pl.centersReady.Load())
			stats.CentersOverlapped = int(pl.centersOverlapped.Load())
		}
	}
	if err != nil {
		return nil, err
	}
	for i := range perSrc {
		stats.AuxNodes += int64(perSrc[i].Small.NumNodes)
		stats.AuxArcs += int64(perSrc[i].Small.NumArcs)
		stats.SCNodes += int64(scs[i].NumNodes)
		stats.SCArcs += int64(scs[i].NumArcs)
	}
	stats.StagePerSourceBuild = time.Duration(buildNanos.Load())
	stats.StageSeedEnumerate = time.Duration(enumNanos.Load())
	stats.PeakSeedPathBytes = peakSeedPathBytes.Load()

	if cl == nil {
		// Barrier schedules: the flat merge, then the barriered §8.2.2
		// fan-out; ctx is re-checked between stages.
		mergeStart := time.Now()
		flat, seedRehashes := mergeSeedShards(shards)
		seed = flat
		stats.StageSeedMerge = time.Since(mergeStart)
		stats.SeedRehashes = seedRehashes
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if cl, err = buildCenterLandmark(ctx, sh, ctr, seed); err != nil {
			return nil, err
		}
	}
	stats.SeedCount = seed.Len()
	stats.StageCenterLandmark = cl.BuildTime()
	stats.CLNodes = cl.NumNodes()
	stats.CLArcs = cl.NumArcs()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Assembly + sweeps + final combine: independent per source again,
	// with per-source counters merged afterwards.
	results := make([]*rp.Result, len(perSrc))
	type perSourceStats struct {
		combine ssrp.Stats
		sweeps  int
		swImp   int64
		bnNodes int64
		bnArcs  int64
	}
	pss := make([]perSourceStats, len(perSrc))
	if err := sh.Pool.RunScratchCtx(ctx, len(perSrc), func(i int, sc *engine.Scratch) {
		start := time.Now()
		defer func() { assembleNanos.Add(time.Since(start).Nanoseconds()) }()
		ps := perSrc[i]
		if p.PaperBottleneck {
			lenSR, bs := assembleLenSRBottleneck(ps, ctr, scs[i], cl, sc)
			ps.SetLenSR(lenSR)
			pss[i].bnNodes = int64(bs.NumNodes)
			pss[i].bnArcs = int64(bs.NumArcs)
		} else {
			ps.SetLenSR(assembleLenSR(ps, ctr, scs[i], cl, sc))
			pss[i].sweeps, pss[i].swImp = sweepLandmarks(ps, maxSweeps)
		}
		results[i] = ps.Combine(&pss[i].combine)
	}); err != nil {
		return nil, err
	}
	stats.StageAssembly = time.Duration(assembleNanos.Load())
	for i := range pss {
		stats.BNNodes += pss[i].bnNodes
		stats.BNArcs += pss[i].bnArcs
		if pss[i].sweeps > stats.Sweeps {
			stats.Sweeps = pss[i].sweeps
		}
		stats.SweepImproved += pss[i].swImp
		stats.Queries += pss[i].combine.Queries
		stats.FarScans += pss[i].combine.FarScans
		stats.NearLargeScans += pss[i].combine.NearLargeScans
	}
	sol := &Solution{Results: results, PerSource: perSrc, Stats: stats}
	if p.TrackPaths && !p.PaperBottleneck {
		sol.Prov = newProvenance(sh, ctr, perSrc, scs, cl, seed)
		stats.ProvenanceBytes = sol.Prov.Bytes()
		for _, ps := range perSrc {
			stats.ProvenanceBytes += ps.ProvenanceBytes()
		}
	}
	return sol, nil
}

// maxInto raises *peak to v if v is larger (CAS loop; concurrent
// callers may interleave arbitrarily, the maximum is order-free).
func maxInto(peak *atomic.Int64, v int64) {
	for {
		cur := peak.Load()
		if v <= cur || peak.CompareAndSwap(cur, v) {
			return
		}
	}
}
