package classic

import (
	"math"

	"msrp/internal/engine"
)

// chminTree is a segment tree supporting range "chmin" updates
// (value[i] = min(value[i], x) for i in [lo, hi]) and point queries.
// Each update carries an opaque payload that the query returns with
// the winning value — the classic algorithm uses it to remember which
// crossing edge realized each minimum, so replacement paths can be
// reconstructed, not just measured.
//
// Because queries only happen after all updates, no push-down is
// needed: a point query takes the minimum of the pending values on the
// root-to-leaf path. Both operations are O(log n).
type chminTree struct {
	size    int     // leaves (power of two >= n)
	min     []int64 // pending chmin per node, 1-based heap layout
	payload []int64 // payload that set the pending value
}

const chminInf = int64(math.MaxInt64)

func newChminTree(n int) *chminTree {
	return newChminTreeScratch(n, &engine.Scratch{})
}

// newChminTreeScratch backs the tree's arrays with an engine scratch so
// repeated per-landmark runs reuse one allocation. The tree is valid
// only until the scratch is reset; the payload array needs no clearing
// because queries read a payload only where a chmin already landed.
func newChminTreeScratch(n int, sc *engine.Scratch) *chminTree {
	size := 1
	for size < n {
		size *= 2
	}
	if n == 0 {
		size = 1
	}
	t := &chminTree{
		size:    size,
		min:     sc.Int64(2 * size),
		payload: sc.Int64(2 * size),
	}
	for i := range t.min {
		t.min[i] = chminInf
	}
	return t
}

// update applies value[i] = min(value[i], x) for all i in [lo, hi],
// remembering payload wherever x wins.
func (t *chminTree) update(lo, hi int, x int64, payload int64) {
	if lo < 0 {
		lo = 0
	}
	if hi >= t.size {
		hi = t.size - 1
	}
	if lo > hi {
		return
	}
	l, r := lo+t.size, hi+t.size+1
	for l < r {
		if l&1 == 1 {
			if x < t.min[l] {
				t.min[l] = x
				t.payload[l] = payload
			}
			l++
		}
		if r&1 == 1 {
			r--
			if x < t.min[r] {
				t.min[r] = x
				t.payload[r] = payload
			}
		}
		l >>= 1
		r >>= 1
	}
}

// query returns the current value at index i and the payload of the
// update that set it.
func (t *chminTree) query(i int) (int64, int64) {
	best := chminInf
	var pay int64
	for node := i + t.size; node >= 1; node >>= 1 {
		if t.min[node] < best {
			best = t.min[node]
			pay = t.payload[node]
		}
	}
	return best, pay
}
