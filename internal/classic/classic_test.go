package classic

import (
	"testing"

	"msrp/internal/bfs"
	"msrp/internal/graph"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

// verifyPair checks the classical algorithm against per-edge BFS for
// one (s, t) pair.
func verifyPair(t *testing.T, g *graph.Graph, s, tt int32) {
	t.Helper()
	ts := bfs.New(g, int(s))
	if !ts.Reachable(tt) || s == tt {
		return
	}
	ttree := bfs.New(g, int(tt))
	got := Pair(g, ts, ttree, tt)
	edges := ts.PathEdgesTo(tt)
	if len(got) != len(edges) {
		t.Fatalf("s=%d t=%d: %d lengths for %d edges", s, tt, len(got), len(edges))
	}
	for i, e := range edges {
		want := naive.OnePair(g, s, tt, e)
		if got[i] != want {
			t.Fatalf("s=%d t=%d edge %d (id %d): classic %d, naive %d",
				s, tt, i, e, got[i], want)
		}
	}
}

func TestCycle(t *testing.T) {
	// On a cycle of length n, avoiding any edge of the s-t path forces
	// the long way around: replacement length = n - d(s,t).
	g := graph.Cycle(9)
	for s := int32(0); s < 9; s++ {
		for tt := int32(0); tt < 9; tt++ {
			verifyPair(t, g, s, tt)
		}
	}
}

func TestPathAllBridges(t *testing.T) {
	g := graph.Path(7)
	got := Run(g, 0, 6)
	if len(got) != 6 {
		t.Fatalf("got %d lengths", len(got))
	}
	for i, v := range got {
		if v != rp.Inf {
			t.Fatalf("edge %d: expected Inf on a path graph, got %d", i, v)
		}
	}
}

func TestGrid(t *testing.T) {
	g := graph.Grid(4, 5)
	corners := []int32{0, 4, 15, 19, 7, 12}
	for _, s := range corners {
		for _, tt := range corners {
			verifyPair(t, g, s, tt)
		}
	}
}

func TestBarbellBridge(t *testing.T) {
	// The bridge edges admit no replacement; clique edges do.
	g := graph.Barbell(4, 3)
	s, tt := int32(0), int32(g.NumVertices()-1)
	verifyPair(t, g, s, tt)
	got := Run(g, s, tt)
	sawInf, sawFinite := false, false
	for _, v := range got {
		if v == rp.Inf {
			sawInf = true
		} else {
			sawFinite = true
		}
	}
	if !sawInf || !sawFinite {
		t.Fatalf("barbell should mix bridges and replaceable edges: %v", got)
	}
}

func TestRandomGraphsExhaustive(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 12; trial++ {
		n := 20 + rng.Intn(30)
		m := n + rng.Intn(2*n)
		g := graph.RandomConnected(rng, n, m)
		s := int32(rng.Intn(n))
		for tt := int32(0); tt < int32(n); tt++ {
			verifyPair(t, g, s, tt)
		}
	}
}

func TestSparseDisconnected(t *testing.T) {
	// Disconnected graph: pairs across components are skipped, pairs
	// within a component still verified.
	b := graph.NewBuilder(8)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {4, 5}, {5, 6}, {6, 4}, {4, 7}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	if got := Run(g, 0, 5); got != nil {
		t.Fatalf("cross-component pair returned %v", got)
	}
	for s := int32(4); s <= 7; s++ {
		for tt := int32(4); tt <= 7; tt++ {
			verifyPair(t, g, s, tt)
		}
	}
}

func TestUnreachableAndSelfPair(t *testing.T) {
	g := graph.Path(3)
	ts := bfs.New(g, 0)
	tt := bfs.New(g, 0)
	if got := Pair(g, ts, tt, 0); got != nil {
		t.Fatalf("self pair returned %v", got)
	}
}

func TestWrongTreePanics(t *testing.T) {
	g := graph.Path(3)
	ts := bfs.New(g, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when tt.Root != t")
		}
	}()
	Pair(g, ts, ts, 2)
}

func TestSSRPByPairsMatchesNaive(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 6; trial++ {
		n := 15 + rng.Intn(20)
		g := graph.RandomConnected(rng, n, n+rng.Intn(n))
		s := int32(rng.Intn(n))
		got := SSRPByPairs(g, s)
		want := naive.SSRP(g, s)
		if d := rp.Diff(want, got); d != "" {
			t.Fatalf("trial %d: %s", trial, d)
		}
	}
}

func TestCompleteGraph(t *testing.T) {
	// K_n: every replacement path has length 2 (detour via any third
	// vertex).
	g := graph.Complete(6)
	for s := int32(0); s < 6; s++ {
		for tt := int32(0); tt < 6; tt++ {
			if s == tt {
				continue
			}
			got := Run(g, s, tt)
			if len(got) != 1 || got[0] != 2 {
				t.Fatalf("K6 %d->%d: %v, want [2]", s, tt, got)
			}
		}
	}
}

func TestHighDiameterCycleChords(t *testing.T) {
	rng := xrand.New(11)
	g := graph.CycleWithChords(rng, 40, 6)
	for trial := 0; trial < 10; trial++ {
		s := int32(rng.Intn(40))
		tt := int32(rng.Intn(40))
		verifyPair(t, g, s, tt)
	}
}

func BenchmarkPairSparse(b *testing.B) {
	g := graph.RandomConnected(xrand.New(1), 2000, 8000)
	ts := bfs.New(g, 0)
	// Pick the farthest vertex for a long path.
	far := int32(0)
	for v := int32(0); v < 2000; v++ {
		if ts.Dist[v] > ts.Dist[far] {
			far = v
		}
	}
	tt := bfs.New(g, int(far))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Pair(g, ts, tt, far)
	}
}

func TestWitnessPathsAreValid(t *testing.T) {
	// Every finite witness must expand into a real path: starts at s,
	// ends at t, consecutive vertices adjacent, avoids the failed edge,
	// length equals the reported replacement length, and no vertex
	// repeats (a minimal walk is simple).
	rng := xrand.New(31)
	for trial := 0; trial < 8; trial++ {
		n := 20 + rng.Intn(30)
		g := graph.RandomConnected(rng, n, n+rng.Intn(2*n))
		s := int32(rng.Intn(n))
		ts := bfs.New(g, int(s))
		for tt := int32(0); tt < int32(n); tt++ {
			if tt == s {
				continue
			}
			ttree := bfs.New(g, int(tt))
			lens, wits := PairWitness(g, ts, ttree, tt)
			edges := ts.PathEdgesTo(tt)
			for i, l := range lens {
				if l == rp.Inf {
					if wits[i].V >= 0 {
						t.Fatalf("witness present for Inf entry")
					}
					continue
				}
				path := wits[i].BuildPath(ts, ttree)
				if path[0] != s || path[len(path)-1] != tt {
					t.Fatalf("witness path endpoints %d..%d", path[0], path[len(path)-1])
				}
				if int32(len(path)-1) != l {
					t.Fatalf("witness path length %d != reported %d", len(path)-1, l)
				}
				seen := map[int32]bool{}
				for _, v := range path {
					if seen[v] {
						t.Fatalf("witness path not simple: %v", path)
					}
					seen[v] = true
				}
				for j := 0; j+1 < len(path); j++ {
					id, ok := g.EdgeID(int(path[j]), int(path[j+1]))
					if !ok {
						t.Fatalf("non-adjacent step %d-%d", path[j], path[j+1])
					}
					if id == edges[i] {
						t.Fatalf("witness path uses the avoided edge")
					}
				}
			}
		}
	}
}

func TestMostVitalEdges(t *testing.T) {
	// Barbell: bridge edges are infinitely vital, clique edges cheap.
	g := graph.Barbell(4, 3)
	s, tt := int32(0), int32(g.NumVertices()-1)
	all := MostVitalEdges(g, s, tt, 0)
	if len(all) == 0 {
		t.Fatal("no vital edges returned")
	}
	// Sorted by damage descending.
	for i := 1; i < len(all); i++ {
		if all[i].Damage > all[i-1].Damage {
			t.Fatalf("not sorted: %v", all)
		}
	}
	// The top entries must be the bridges (infinite damage).
	if all[0].Damage != rp.Inf {
		t.Fatalf("top vital edge has finite damage %d", all[0].Damage)
	}
	// Every reported damage must match naive recomputation.
	for _, ve := range all {
		want := naive.OnePair(g, s, tt, ve.Edge)
		if ve.ReplacementLen != want {
			t.Fatalf("edge %d: replacement %d, naive %d", ve.Edge, ve.ReplacementLen, want)
		}
	}
	// k truncation.
	top2 := MostVitalEdges(g, s, tt, 2)
	if len(top2) != 2 || top2[0].Edge != all[0].Edge {
		t.Fatalf("k=2 truncation wrong")
	}
	// Unreachable / self pairs.
	if MostVitalEdges(g, s, s, 3) != nil {
		t.Fatal("self pair should be nil")
	}
}

func TestMostVitalEdgesCycle(t *testing.T) {
	// On a cycle every path edge has the same damage: n - 2·d(s,t).
	g := graph.Cycle(10)
	all := MostVitalEdges(g, 0, 3, 0)
	if len(all) != 3 {
		t.Fatalf("got %d edges", len(all))
	}
	for _, ve := range all {
		if ve.Damage != 10-2*3 {
			t.Fatalf("damage %d, want 4", ve.Damage)
		}
	}
}
