package classic

import (
	"testing"

	"msrp/internal/xrand"
)

func TestChminBasic(t *testing.T) {
	tr := newChminTree(8)
	for i := 0; i < 8; i++ {
		if got, _ := tr.query(i); got != chminInf {
			t.Fatalf("fresh tree index %d not inf", i)
		}
	}
	tr.update(2, 5, 10, 100)
	tr.update(4, 7, 3, 300)
	want := []int64{chminInf, chminInf, 10, 10, 3, 3, 3, 3}
	wantPay := []int64{0, 0, 100, 100, 300, 300, 300, 300}
	for i, w := range want {
		got, pay := tr.query(i)
		if got != w {
			t.Fatalf("query(%d) = %d, want %d", i, got, w)
		}
		if w != chminInf && pay != wantPay[i] {
			t.Fatalf("payload(%d) = %d, want %d", i, pay, wantPay[i])
		}
	}
}

func TestChminClamping(t *testing.T) {
	tr := newChminTree(4)
	tr.update(-5, 10, 7, 0) // out-of-range bounds clamp
	for i := 0; i < 4; i++ {
		if got, _ := tr.query(i); got != 7 {
			t.Fatalf("query(%d) = %d", i, got)
		}
	}
	tr.update(3, 2, 1, 0) // empty interval: no-op
	a, _ := tr.query(2)
	b, _ := tr.query(3)
	if a != 7 || b != 7 {
		t.Fatal("empty interval modified tree")
	}
}

func TestChminZeroSize(t *testing.T) {
	tr := newChminTree(0)
	tr.update(0, 0, 5, 0) // must not panic
	_, _ = tr.query(0)
}

func TestChminAgainstBruteForce(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		tr := newChminTree(n)
		model := make([]int64, n)
		for i := range model {
			model[i] = chminInf
		}
		for op := 0; op < 200; op++ {
			lo := rng.Intn(n)
			hi := lo + rng.Intn(n-lo)
			x := int64(rng.Intn(1000))
			tr.update(lo, hi, x, x*7)
			for i := lo; i <= hi; i++ {
				if x < model[i] {
					model[i] = x
				}
			}
		}
		for i := 0; i < n; i++ {
			got, pay := tr.query(i)
			if got != model[i] {
				t.Fatalf("trial %d index %d: got %d want %d", trial, i, got, model[i])
			}
			if got != chminInf && pay != got*7 {
				t.Fatalf("trial %d index %d: payload %d for value %d", trial, i, pay, got)
			}
		}
	}
}
