// Package classic implements the classical near-linear single-pair
// replacement path algorithm for undirected unweighted graphs
// (Malik–Mittal–Gupta 1989; Hershberger–Suri 2001; Nardelli–Proietti–
// Widmayer 2003 — the paper's references [21], [20], [22]).
//
// For a fixed pair (s, t) it returns |st ⋄ e_i| for every edge e_i of
// the canonical s→t path in O((m + n) log n) time.
//
// # The crossing-edge characterization
//
// Let P = x_0 … x_L be the canonical (BFS-tree) s→t path and
// e_i = (x_i, x_{i+1}). Deleting e_i splits the BFS tree T_s into the
// root side R_i and the subtree D_i below x_{i+1} (t ∈ D_i). Then
//
//	|st ⋄ e_i| = min{ d(s,u) + 1 + d(v,t) : (u,v) ∈ E \ {e_i}, u ∈ R_i, v ∈ D_i }.
//
// Completeness: the true replacement path must cross the (R_i, D_i)
// cut by some edge (u,v) ≠ e_i, and its prefix/suffix are at least the
// metric distances d(s,u), d(v,t).
//
// Soundness (the subtle half, re-derived in DESIGN.md §3): for u ∈ R_i
// the canonical s→u tree path avoids e_i outright; and for v ∈ D_i *no*
// shortest v→t path can use e_i in either orientation — assuming one
// contradicts the triangle inequality by two units — so concatenating
// canonical paths yields a genuine e_i-avoiding walk of the stated
// length. Plain BFS distances from t therefore suffice.
//
// # Accounting
//
// A vertex w belongs to D_i exactly when branch(w) ≥ i+1, where
// branch(w) is the index of the last path vertex on the canonical s→w
// path (subtrees D_0 ⊇ D_1 ⊇ … are nested). A non-path edge (u,v)
// therefore contributes its candidate to the contiguous index interval
// [branch(u), branch(v)−1] (and symmetrically with u, v swapped). All
// 2m candidates become range-min updates over [0, L), answered by a
// lazy chmin segment tree with point queries — O((m+n) log n) total.
// Path edges are skipped: e_j's only interval would be [j, j], i.e.
// serving as a replacement for itself.
package classic

import (
	"msrp/internal/bfs"
	"msrp/internal/engine"
	"msrp/internal/graph"
	"msrp/internal/rp"
)

// Witness records how the winning replacement path for one avoided
// edge crosses the (R_i, D_i) cut: the concrete path is
// canonical(s→U) + edge {U,V} + reverse(canonical(t→V)). V = -1 marks
// "no replacement path".
type Witness struct {
	U, V int32
}

// BuildPath assembles the witnessed replacement path as a vertex
// sequence (s first, t last), given the two BFS trees the witness was
// computed from. Returns nil for the no-path witness.
func (w Witness) BuildPath(ts, tt *bfs.Tree) []int32 {
	if w.V < 0 {
		return nil
	}
	prefix := ts.PathTo(w.U)
	suffix := tt.PathTo(w.V) // t … V; we need V … t
	out := make([]int32, 0, len(prefix)+len(suffix))
	out = append(out, prefix...)
	for i := len(suffix) - 1; i >= 0; i-- {
		out = append(out, suffix[i])
	}
	return out
}

// Pair computes the replacement path lengths for the pair (ts.Root, t)
// given the already-built BFS trees of both endpoints. tt must be the
// BFS tree rooted at t. The returned slice has ts.Dist[t] entries, the
// i-th being |st ⋄ e_i| (rp.Inf when e_i is a bridge between s and t);
// it is nil when t is unreachable or equal to the source.
func Pair(g *graph.Graph, ts, tt *bfs.Tree, t int32) []int32 {
	lengths, _ := PairWitness(g, ts, tt, t)
	return lengths
}

// PairScratch is Pair with its transient O(n + m) working state carved
// from the given engine scratch instead of freshly allocated — the form
// used by the per-landmark fan-out of ssrp.PerSource and the Oracle's
// lazy source builds, where Pair runs once per landmark.
func PairScratch(g *graph.Graph, ts, tt *bfs.Tree, t int32, sc *engine.Scratch) []int32 {
	lengths, _ := pairWitness(g, ts, tt, t, sc)
	return lengths
}

// PairWitness is Pair plus, for every path edge, the crossing-edge
// witness of the winning replacement path (V = -1 where none exists).
func PairWitness(g *graph.Graph, ts, tt *bfs.Tree, t int32) ([]int32, []Witness) {
	return pairWitness(g, ts, tt, t, nil)
}

// PairWitnessScratch is PairWitness with the transient working state
// carved from an engine scratch — the tracked counterpart of
// PairScratch, used by the per-landmark fan-out when path provenance is
// recorded. The returned lengths and witnesses are heap-allocated and
// safe to retain.
func PairWitnessScratch(g *graph.Graph, ts, tt *bfs.Tree, t int32, sc *engine.Scratch) ([]int32, []Witness) {
	return pairWitness(g, ts, tt, t, sc)
}

func pairWitness(g *graph.Graph, ts, tt *bfs.Tree, t int32, sc *engine.Scratch) ([]int32, []Witness) {
	if tt.Root != t {
		panic("classic: tt is not the BFS tree of t")
	}
	if !ts.Reachable(t) || ts.Root == t {
		return nil, nil
	}
	if sc == nil {
		sc = &engine.Scratch{}
	}
	L := int(ts.Dist[t])
	out := make([]int32, L) // retained by callers; never scratch-backed
	for i := range out {
		out[i] = rp.Inf
	}

	// branch[w] = index of the last path vertex on the canonical s→w
	// path; -1 for unreachable vertices. One top-down pass over the BFS
	// order (parents precede children).
	n := g.NumVertices()
	branch := sc.Int32(n)
	for i := range branch {
		branch[i] = -1
	}
	onPath := sc.Bool(n)
	clear(onPath)
	pathEdge := sc.Bool(g.NumEdges())
	clear(pathEdge)
	for x := t; x != ts.Root; x = ts.Parent[x] {
		onPath[x] = true
		pathEdge[ts.ParentEdge[x]] = true
	}
	onPath[ts.Root] = true
	for _, v := range ts.Order {
		if onPath[v] {
			branch[v] = ts.Dist[v] // path vertex x_j has index j = its depth
		} else {
			branch[v] = branch[ts.Parent[v]]
		}
	}

	seg := newChminTreeScratch(L, sc)
	addCandidates := func(u, v int32) {
		// Register d(s,u) + 1 + d(v,t) for every i with u ∈ R_i and
		// v ∈ D_i, i.e. i ∈ [branch(u), branch(v)−1]. The payload packs
		// the oriented crossing edge for path reconstruction.
		if !tt.Reachable(v) {
			return
		}
		lo, hi := int(branch[u]), int(branch[v])-1
		if lo > hi {
			return
		}
		seg.update(lo, hi, int64(ts.Dist[u])+1+int64(tt.Dist[v]),
			int64(u)<<32|int64(uint32(v)))
	}
	for e := int32(0); e < int32(g.NumEdges()); e++ {
		if pathEdge[e] {
			continue
		}
		u, v := g.EdgeEndpoints(int(e))
		if !ts.Reachable(u) || !ts.Reachable(v) {
			continue
		}
		addCandidates(u, v)
		addCandidates(v, u)
	}
	witness := make([]Witness, L)
	for i := 0; i < L; i++ {
		witness[i] = Witness{U: -1, V: -1}
		if c, pay := seg.query(i); c < int64(rp.Inf) {
			out[i] = int32(c)
			witness[i] = Witness{U: int32(pay >> 32), V: int32(uint32(pay))}
		}
	}
	return out, witness
}

// Run is a convenience wrapper that builds both BFS trees itself.
func Run(g *graph.Graph, s, t int32) []int32 {
	ts := bfs.New(g, int(s))
	if !ts.Reachable(t) {
		return nil
	}
	tt := bfs.New(g, int(t))
	return Pair(g, ts, tt, t)
}

// SSRPByPairs runs the classical algorithm once per target — the
// Õ(mn) baseline the paper's introduction compares against.
func SSRPByPairs(g *graph.Graph, s int32) *rp.Result {
	ts := bfs.New(g, int(s))
	res := rp.NewResult(ts)
	for t := int32(0); t < int32(g.NumVertices()); t++ {
		if t == s || !ts.Reachable(t) {
			continue
		}
		tt := bfs.New(g, int(t))
		copy(res.Len[t], Pair(g, ts, tt, t))
	}
	return res
}
