package classic

import (
	"sort"

	"msrp/internal/bfs"
	"msrp/internal/graph"
	"msrp/internal/rp"
)

// The k most vital arcs problem — the title question of Malik, Mittal
// and Gupta's 1989 paper (the paper's reference [21]): which k edges of
// the shortest s→t path hurt the most when removed? With all
// replacement lengths in hand the answer is a sort; this file provides
// it as a first-class API because it is the form in which the classical
// result is usually consumed (network interdiction, resilience
// ranking).

// VitalEdge describes one path edge and the cost of losing it.
type VitalEdge struct {
	// Edge is the graph edge id; Index its position on the canonical
	// s→t path.
	Edge  int32
	Index int
	// ReplacementLen is |st ⋄ Edge| (rp.Inf if removal disconnects).
	ReplacementLen int32
	// Damage is ReplacementLen − d(s,t): the detour cost in hops
	// (rp.Inf for disconnection).
	Damage int32
}

// MostVitalEdges returns the k edges of the canonical s→t path whose
// individual removal causes the largest damage, most damaging first
// (ties broken by path position). k ≤ 0 or k beyond the path length
// means "all edges". Returns nil when t is unreachable or equals s.
func MostVitalEdges(g *graph.Graph, s, t int32, k int) []VitalEdge {
	ts := bfs.New(g, int(s))
	if !ts.Reachable(t) || s == t {
		return nil
	}
	tt := bfs.New(g, int(t))
	lens := Pair(g, ts, tt, t)
	edges := ts.PathEdgesTo(t)
	base := ts.Dist[t]

	out := make([]VitalEdge, len(edges))
	for i, e := range edges {
		damage := rp.Inf
		if lens[i] != rp.Inf {
			damage = lens[i] - base
		}
		out[i] = VitalEdge{
			Edge:           e,
			Index:          i,
			ReplacementLen: lens[i],
			Damage:         damage,
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return out[a].Damage > out[b].Damage
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}
