package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"msrp"
)

func decodeJSON(t *testing.T, rec *httptest.ResponseRecorder, v any) {
	t.Helper()
	if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
		t.Fatal(err)
	}
}

// newTrackedServer is newTestServer with path provenance recorded, so
// "paths": true items can be served.
func newTrackedServer(t *testing.T, cfg Config) (*Server, *msrp.Oracle, *msrp.Graph, []int) {
	t.Helper()
	g := msrp.GenerateRandomConnected(7, 60, 160)
	sources := []int{0, 15, 30, 45}
	opts := msrp.DefaultOptions()
	opts.SampleBoost = 8
	opts.Parallelism = 2
	opts.TrackPaths = true
	oracle, err := msrp.NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	return New(oracle, cfg), oracle, g, sources
}

// checkWirePath validates a path that came over the wire: right
// endpoints, every step a real edge, the avoided edge unused, length
// exactly the reported one.
func checkWirePath(t *testing.T, g *msrp.Graph, q QueryItem, a AnswerItem) {
	t.Helper()
	if len(a.Path) == 0 {
		t.Fatalf("query %+v: no path in answer %+v", q, a)
	}
	if int(a.Path[0]) != q.Source || int(a.Path[len(a.Path)-1]) != q.Target {
		t.Fatalf("query %+v: path endpoints %d…%d", q, a.Path[0], a.Path[len(a.Path)-1])
	}
	if int32(len(a.Path)-1) != a.Length {
		t.Fatalf("query %+v: path has %d edges, length says %d", q, len(a.Path)-1, a.Length)
	}
	for j := 0; j+1 < len(a.Path); j++ {
		u, v := int(a.Path[j]), int(a.Path[j+1])
		if !g.HasEdge(u, v) {
			t.Fatalf("query %+v: step {%d,%d} is not an edge", q, u, v)
		}
		if (u == q.U && v == q.V) || (u == q.V && v == q.U) {
			t.Fatalf("query %+v: path uses the avoided edge", q)
		}
	}
}

func TestQueryEndpointPaths(t *testing.T) {
	srv, oracle, g, sources := newTrackedServer(t, Config{})
	items := validQueries(t, oracle, sources)
	for i := range items {
		items[i].Paths = true
	}

	rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	decodeJSON(t, rec, &resp)
	if len(resp.Answers) != len(items) {
		t.Fatalf("%d answers for %d queries", len(resp.Answers), len(items))
	}
	for i, a := range resp.Answers {
		if a.Error != "" || a.PathError != "" {
			t.Fatalf("answer %d: %+v", i, a)
		}
		if a.NoPath {
			if a.Path != nil {
				t.Fatalf("answer %d: path on a NoPath answer", i)
			}
			continue
		}
		checkWirePath(t, g, items[i], a)
	}
}

func TestQueryEndpointPathsUntracked400(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{}) // no TrackPaths
	items := validQueries(t, oracle, sources)[:1]
	items[0].Paths = true

	rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	var resp QueryResponse
	decodeJSON(t, rec, &resp)
	if resp.Error == "" || resp.Answers[0].Error == "" {
		t.Fatalf("expected the not-tracked error on the wire, got %+v", resp)
	}
}

func TestQueryEndpointPathBudget(t *testing.T) {
	// A 2-vertex budget admits no replacement path (every one has ≥ 2
	// edges ⇒ ≥ 3 vertices), so each answer keeps its length and
	// reports the budget, not a truncated path.
	srv, oracle, _, sources := newTrackedServer(t, Config{MaxPathVertices: 2})
	items := validQueries(t, oracle, sources)
	for i := range items {
		items[i].Paths = true
	}

	rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	decodeJSON(t, rec, &resp)
	sawBudget := false
	for i, a := range resp.Answers {
		if a.Error != "" {
			t.Fatalf("answer %d: %+v", i, a)
		}
		if a.NoPath {
			continue
		}
		if a.Path != nil {
			t.Fatalf("answer %d: path granted past the vertex budget", i)
		}
		if a.PathError == "" || a.Length <= 0 {
			t.Fatalf("answer %d: want length + pathError, got %+v", i, a)
		}
		sawBudget = true
	}
	if !sawBudget {
		t.Fatal("no answer exercised the path budget")
	}
}

// TestQueryEndpointTargetOutOfRange: a wild target must come back as a
// per-item error (the batch still answers), never as an index panic
// killing the connection.
func TestQueryEndpointTargetOutOfRange(t *testing.T) {
	srv, _, _, sources := newTrackedServer(t, Config{})
	items := []QueryItem{
		{Source: sources[0], Target: 1 << 20, U: 0, V: 1, Paths: true},
		{Source: sources[0], Target: -7, U: 0, V: 1},
	}
	rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	decodeJSON(t, rec, &resp)
	for i, a := range resp.Answers {
		if a.Error == "" || a.Path != nil {
			t.Fatalf("answer %d: want per-item out-of-range error, got %+v", i, a)
		}
	}
}

func TestDeriveRetryAfter(t *testing.T) {
	sec := func(d time.Duration) msrp.StageTimes {
		return msrp.StageTimes{PerSourceBuild: d}
	}
	cases := []struct {
		name    string
		st      msrp.OracleStats
		sources int
		want    time.Duration
	}{
		{"nothing measured", msrp.OracleStats{}, 4, time.Second},
		{"lazy average", msrp.OracleStats{Builds: 4, BuildTime: 8 * time.Second}, 4, 2 * time.Second},
		{"lazy sub-second floors", msrp.OracleStats{Builds: 10, BuildTime: time.Second}, 4, time.Second},
		{"warm per-source stages divide by sigma", msrp.OracleStats{WarmStages: sec(8 * time.Second)}, 4, 2 * time.Second},
		{"warm barrier stages at full weight", msrp.OracleStats{
			WarmStages: msrp.StageTimes{SeedMerge: 2 * time.Second, CenterLandmark: 3 * time.Second},
		}, 4, 5 * time.Second},
		{"warm beats lazy", msrp.OracleStats{
			Builds: 1, BuildTime: 20 * time.Second,
			WarmStages: sec(8 * time.Second),
		}, 4, 2 * time.Second},
		{"clamped at 30s", msrp.OracleStats{WarmStages: sec(10 * time.Minute)}, 2, 30 * time.Second},
	}
	for _, c := range cases {
		if got := DeriveRetryAfter(c.st, c.sources); got != c.want {
			t.Errorf("%s: DeriveRetryAfter = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestRetryAfterHeaderDerived exercises the auto mode end to end: with
// nothing measured the rejection advertises the 1s floor, and the
// header is always a positive integer.
func TestRetryAfterHeaderDerived(t *testing.T) {
	srv, _, _, _ := newTrackedServer(t, Config{MaxWarms: 1})
	// Fill the single warm slot so a second warm rejects.
	srv.warms <- struct{}{}
	rec := postJSON(t, srv, "/v1/warm", struct{}{})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want the 1s floor before any measurement", got)
	}
}
