// Package server is the HTTP serving front-end over msrp.Oracle: a
// JSON batch endpoint backed by Oracle.QueryBatchContext, a warm
// endpoint over the §8 batch pipeline, a stats scrape, and a health
// probe. It is the network face the ROADMAP's "production-scale
// server" north star asks for.
//
// Endpoints:
//
//	POST /v1/query   {"queries":[{"source":s,"target":t,"u":u,"v":v},…]}
//	                 → {"answers":[{"length":l,"noPath":…,"error":…},…]}
//	POST /v1/warm    run the Theorem 1 batch pipeline over every source,
//	                 or — with a {"sources":[…]} body — materialize just
//	                 that slice via the per-source build path
//	GET  /v1/sources the source set and which sources are cached now
//	GET  /v1/stats   Oracle.Stats() + derived rates as JSON
//	GET  /healthz    liveness probe
//
// Admission control: at most Config.MaxInFlight /v1/query requests and
// Config.MaxWarms /v1/warm pipelines run at once; excess requests get
// 429 with a Retry-After header (never queued — the caller owns the
// backoff), counted in Oracle.Stats().Rejections. The request context
// is plumbed into the oracle, so a client that disconnects or times
// out cancels its batch between per-source builds and frees the slot
// promptly, with the cache left consistent for the next caller.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"msrp"
)

// Config tunes the front-end's admission control. The zero value
// derives sensible bounds from the oracle (see the field docs).
type Config struct {
	// MaxInFlight bounds concurrently served /v1/query requests — the
	// in-flight query budget. 0 derives the bound from the oracle's
	// options: 2×MaxCachedSources when the LRU is bounded (admission
	// then tracks what was sized to fit in memory, per the σ·n² concern
	// in the ROADMAP), else 4×GOMAXPROCS. Negative disables the bound.
	MaxInFlight int

	// MaxWarms bounds concurrent /v1/warm pipeline runs. Each warm is a
	// σn² build, so the default (0) allows exactly 1; the Oracle
	// single-flights concurrent warms anyway, and rejecting instead of
	// queueing keeps the probe endpoints responsive. Negative disables
	// the bound.
	MaxWarms int

	// RetryAfter is the backoff advertised in the Retry-After header of
	// 429 responses. 0 (the default) derives it per rejection from the
	// oracle's measured build latencies — the most recent Warm
	// pipeline's stage breakdown, falling back to the lazy-build
	// average — via DeriveRetryAfter; a positive value pins a constant.
	RetryAfter time.Duration

	// MaxBodyBytes caps the /v1/query request body (http.MaxBytesReader).
	// 0 means 8 MiB; negative disables the cap.
	MaxBodyBytes int64

	// MaxPathVertices caps the total number of path vertices one
	// /v1/query response may carry. The "paths": true expansions are
	// granted in request order with prefix semantics: the first path
	// that does not fit exhausts the budget, and it plus every later
	// path-requesting answer keeps its length but reports pathError
	// instead of a path — so a client resumes from the first pathError.
	// 0 means 131072 vertices (≈ 1 MiB of JSON); negative disables the
	// cap.
	MaxPathVertices int
}

// Server is an http.Handler serving one Oracle. Construct with New.
type Server struct {
	oracle *msrp.Oracle
	mux    *http.ServeMux

	retryAfter   string        // preformatted Retry-After value ("" = derive)
	maxBody      int64         // /v1/query body cap (0 = uncapped)
	maxPathVerts int           // per-response path-vertex budget (0 = uncapped)
	numSources   int           // cached σ (the oracle's source set is immutable)
	queries      chan struct{} // in-flight /v1/query slots (nil = unbounded)
	warms        chan struct{} // in-flight /v1/warm slots (nil = unbounded)
	draining     atomic.Bool   // /healthz reports 503 while set (graceful drain)
}

// SetDraining flips the drain flag reported by /healthz. A front-end
// beginning a graceful shutdown sets it the moment drain starts — before
// the listener closes — so a load balancer polling /healthz stops
// routing new traffic to this replica while its in-flight requests
// complete. The query/warm/stats endpoints are unaffected: already-
// routed requests are served normally for the whole drain window.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is in its drain window.
func (s *Server) Draining() bool { return s.draining.Load() }

// New wraps the oracle in an HTTP front-end with the given admission
// configuration.
func New(o *msrp.Oracle, cfg Config) *Server {
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		if max := o.Options().MaxCachedSources; max > 0 {
			maxInFlight = 2 * max
		} else {
			maxInFlight = 4 * runtime.GOMAXPROCS(0)
		}
	}
	maxWarms := cfg.MaxWarms
	if maxWarms == 0 {
		maxWarms = 1
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = 8 << 20
	} else if maxBody < 0 {
		maxBody = 0
	}
	maxPathVerts := cfg.MaxPathVertices
	if maxPathVerts == 0 {
		maxPathVerts = 128 << 10
	} else if maxPathVerts < 0 {
		maxPathVerts = 0
	}
	s := &Server{
		oracle:       o,
		mux:          http.NewServeMux(),
		maxBody:      maxBody,
		maxPathVerts: maxPathVerts,
		numSources:   len(o.Sources()),
	}
	if cfg.RetryAfter > 0 {
		s.retryAfter = formatRetryAfter(cfg.RetryAfter)
	}
	if maxInFlight > 0 {
		s.queries = make(chan struct{}, maxInFlight)
	}
	if maxWarms > 0 {
		s.warms = make(chan struct{}, maxWarms)
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/warm", s.handleWarm)
	s.mux.HandleFunc("GET /v1/sources", s.handleSources)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// acquire takes one slot off sem without blocking. A nil sem is
// unbounded. The returned release func is nil when the slot was not
// granted.
func acquire(sem chan struct{}) (release func(), ok bool) {
	if sem == nil {
		return func() {}, true
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, true
	default:
		return nil, false
	}
}

// reject emits a 429 and records the rejection on the oracle's stats.
// The Retry-After header is the configured constant when one was
// pinned, else derived per rejection from the oracle's measured build
// latencies (the load-shedding decision the ROADMAP wanted driven by
// measurements rather than a static default).
func (s *Server) reject(w http.ResponseWriter, what string) {
	s.oracle.RecordRejection()
	retry := s.retryAfter
	if retry == "" {
		retry = formatRetryAfter(DeriveRetryAfter(s.oracle.Stats(), s.numSources))
	}
	w.Header().Set("Retry-After", retry)
	writeJSON(w, http.StatusTooManyRequests, map[string]string{
		"error": what + " capacity exhausted; retry later",
	})
}

// DeriveRetryAfter converts an oracle's measured latencies into the
// backoff a rejected caller should observe — an estimate of how long a
// capacity slot takes to free. Preference order:
//
//  1. The most recent Warm pipeline's stage breakdown: the per-source
//     stages (build, seed enumeration, assembly) divided by σ — they
//     are wall time summed over sources — plus the barriered merge and
//     center stages at full weight. This is the serving-path
//     measurement the stage-latency plumbing exists for.
//  2. The lazy-build average (AvgBuildLatency) before any warm has
//     completed.
//  3. One second when nothing has been measured yet.
//
// The estimate is clamped to [1s, 30s]: the floor keeps the header
// meaningful for sub-second builds, the ceiling keeps a pathological
// measurement from parking clients.
func DeriveRetryAfter(st msrp.OracleStats, sources int) time.Duration {
	var est time.Duration
	if sources > 0 {
		w := st.WarmStages
		est = (w.PerSourceBuild+w.SeedEnumerate+w.Assembly)/time.Duration(sources) +
			w.SeedMerge + w.CenterLandmark
	}
	if est <= 0 {
		est = st.AvgBuildLatency()
	}
	if est < time.Second {
		return time.Second
	}
	if est > 30*time.Second {
		return 30 * time.Second
	}
	return est
}

// formatRetryAfter renders a duration as the header's whole seconds,
// rounding up.
func formatRetryAfter(d time.Duration) string {
	return fmt.Sprintf("%d", int((d+time.Second-1)/time.Second))
}

// QueryItem is one replacement-path question on the wire: the length
// of the shortest source→target path avoiding the edge {u, v}. With
// "paths": true the answer also carries the concrete replacement path
// (the oracle must serve with TrackPaths, else the item gets a 400-
// mapped error), subject to the response's path-vertex budget.
type QueryItem struct {
	Source int  `json:"source"`
	Target int  `json:"target"`
	U      int  `json:"u"`
	V      int  `json:"v"`
	Paths  bool `json:"paths,omitempty"`
}

// QueryRequest is the /v1/query request body. DeadlineMillis, when
// positive, is a server-side compute budget for the whole batch: the
// handler enforces it with a context deadline, so a batch that blows
// its budget is abandoned by the *replica* (504), not just by a client
// that has already hung up. A routing tier sets it to its remaining
// per-item budget so a stalled or overloaded replica stops burning
// capacity on answers nobody is still waiting for.
type QueryRequest struct {
	Queries        []QueryItem `json:"queries"`
	DeadlineMillis int64       `json:"deadlineMillis,omitempty"`
}

// AnswerItem is one answer on the wire. NoPath marks the avoided edge
// as a bridge (Length is then meaningless); Error marks a malformed
// query (unknown source, missing edge, edge off the canonical path, or
// paths requested from an untracked oracle). Path is the replacement
// path's vertex sequence when the item requested it: a certificate —
// a real walk in G−e of exactly Length edges. PathError is set instead
// of Path when the response's path-vertex budget ran out at or before
// this item (its Length is still valid); granted paths are always a
// prefix of the requested ones, so a client resumes from the first
// pathError.
type AnswerItem struct {
	Length    int32   `json:"length"`
	NoPath    bool    `json:"noPath,omitempty"`
	Path      []int32 `json:"path,omitempty"`
	PathError string  `json:"pathError,omitempty"`
	Error     string  `json:"error,omitempty"`
	// RouteError is set only by the routing tier (internal/router): the
	// item could not be answered by any replica within its budget (all
	// other fields are then meaningless). A replica never sets it. It is
	// declared here so routed and direct responses share one wire shape.
	RouteError string `json:"routeError,omitempty"`
}

// QueryResponse is the /v1/query response body. Answers align with the
// request's queries by index. Error is set on request-level failures
// (bad source, cancelled batch) alongside the appropriate status code.
type QueryResponse struct {
	Answers []AnswerItem `json:"answers,omitempty"`
	Error   string       `json:"error,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Read the body before taking an admission slot: a client trickling
	// (or streaming gigabytes of) request body must not pin the
	// in-flight budget while it does so. The cap bounds memory; the
	// slot is held only for the compute.
	if s.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			// 413, not a generic decode 400 — and tell the client the
			// actual cap so it can split the batch instead of guessing.
			writeJSON(w, http.StatusRequestEntityTooLarge, struct {
				Error        string `json:"error"`
				MaxBodyBytes int64  `json:"maxBodyBytes"`
			}{
				Error:        fmt.Sprintf("request body exceeds the %d-byte cap; split the batch", s.maxBody),
				MaxBodyBytes: s.maxBody,
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "bad request body: " + err.Error()})
		return
	}
	// Cheap-reject garbage before admission: an empty batch must not
	// consume an in-flight slot on its way to a 400, or a flood of them
	// starves real queries of budget.
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: `empty batch: "queries" must contain at least one item`})
		return
	}
	if req.DeadlineMillis < 0 {
		writeJSON(w, http.StatusBadRequest, QueryResponse{Error: "deadlineMillis must be non-negative"})
		return
	}

	release, ok := acquire(s.queries)
	if !ok {
		s.reject(w, "query")
		return
	}
	defer release()

	queries := make([]msrp.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = msrp.Query{Source: q.Source, Target: q.Target, U: q.U, V: q.V, Paths: q.Paths}
	}
	// Per-batch deadline enforcement: the caller's declared budget is a
	// context deadline on the oracle work, so the replica itself abandons
	// a batch the caller has given up on instead of computing into the
	// void. The engine observes the context between per-source builds.
	ctx := r.Context()
	if req.DeadlineMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMillis)*time.Millisecond)
		defer cancel()
	}
	answers, err := s.oracle.QueryBatchContext(ctx, queries)
	if err != nil {
		// The declared budget expiring is the replica's own verdict —
		// 504, the signal a router maps to a per-item deadline miss.
		// Anything else is the client timing out or disconnecting; 503
		// tells any intermediary the work was shed.
		if errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil {
			writeJSON(w, http.StatusGatewayTimeout, QueryResponse{Error: "batch deadline exceeded: " + err.Error()})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, QueryResponse{Error: "batch cancelled: " + err.Error()})
		return
	}

	resp := QueryResponse{Answers: make([]AnswerItem, len(answers))}
	status := http.StatusOK
	saturated := false
	pathBudget := s.maxPathVerts
	for i, a := range answers {
		switch {
		case a.Err != nil:
			resp.Answers[i].Error = a.Err.Error()
			// The sentinels (not string matching) decide the status: a
			// query for a vertex outside the oracle's source set — or
			// for paths this deployment does not track — is a client
			// error, not an empty result. Rebuild saturation is neither:
			// it is admission control, surfaced below as the 429 it is.
			if errors.Is(a.Err, msrp.ErrRebuildSaturated) {
				saturated = true
			} else if errors.Is(a.Err, msrp.ErrNotSource) || errors.Is(a.Err, msrp.ErrPathsNotTracked) {
				status = http.StatusBadRequest
				if resp.Error == "" {
					resp.Error = a.Err.Error()
				}
			}
		case a.Length == msrp.NoPath:
			resp.Answers[i].NoPath = true
		default:
			resp.Answers[i].Length = a.Length
			if a.Path == nil {
				break
			}
			// Paths are granted in request order against one response-
			// wide vertex budget, with prefix semantics: the first path
			// that does not fit exhausts the budget, so granted paths
			// are exactly a prefix of the requested ones and a client
			// can resume from the first pathError. A skipped item keeps
			// its length.
			if s.maxPathVerts > 0 && len(a.Path) > pathBudget {
				pathBudget = 0
				resp.Answers[i].PathError = "path vertex budget exceeded; re-request paths from this item on"
				continue
			}
			pathBudget -= len(a.Path)
			resp.Answers[i].Path = a.Path
		}
	}
	// A batch that hit rebuild admission gets the same 429 + derived
	// Retry-After contract as front-door admission: the caller backs
	// off and retries — by then the in-flight rebuilds have landed (a
	// cache hit) or a slot has freed. A malformed batch stays a 400;
	// the saturated items' per-item errors still say what happened.
	if saturated && status == http.StatusOK {
		s.oracle.RecordRejection()
		retry := s.retryAfter
		if retry == "" {
			retry = formatRetryAfter(DeriveRetryAfter(s.oracle.Stats(), s.numSources))
		}
		w.Header().Set("Retry-After", retry)
		status = http.StatusTooManyRequests
		if resp.Error == "" {
			resp.Error = "provenance rebuild capacity exhausted; retry later"
		}
	}
	writeJSON(w, status, resp)
}

// WarmRequest is the optional /v1/warm request body. An empty body (the
// original wire contract) warms every source via the §8 batch pipeline;
// a non-empty Sources list materializes just that slice via the
// per-source build path (Oracle.WarmSources) — the form a router uses
// to pre-build each replica's hash slice without paying for σ.
type WarmRequest struct {
	Sources []int `json:"sources"`
}

// WarmResponse is the /v1/warm response body. Warmed is the size of the
// requested slice on slice warms (0 on full warms). StaleReplicas is
// set only by the routing tier: how many serving members could not be
// scraped for the CachedSources sum, which is then a partial total
// rather than an error.
type WarmResponse struct {
	CachedSources int    `json:"cachedSources"`
	StaleReplicas int    `json:"staleReplicas,omitempty"`
	Warmed        int    `json:"warmed,omitempty"`
	Error         string `json:"error,omitempty"`
}

func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	// The body is read before admission for the same reason /v1/query's
	// is: a trickling client must not pin the warm budget.
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, WarmResponse{Error: "bad request body: " + err.Error()})
		return
	}
	var wreq WarmRequest
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&wreq); err != nil {
			writeJSON(w, http.StatusBadRequest, WarmResponse{Error: "bad warm body: " + err.Error()})
			return
		}
	}

	release, ok := acquire(s.warms)
	if !ok {
		s.reject(w, "warm")
		return
	}
	defer release()

	if len(wreq.Sources) > 0 {
		if err := s.oracle.WarmSources(r.Context(), wreq.Sources); err != nil {
			status := http.StatusInternalServerError
			switch {
			case errors.Is(err, msrp.ErrNotSource):
				status = http.StatusBadRequest
			case r.Context().Err() != nil:
				status = http.StatusServiceUnavailable
			}
			writeJSON(w, status, WarmResponse{
				CachedSources: s.oracle.CachedSources(),
				Error:         err.Error(),
			})
			return
		}
		writeJSON(w, http.StatusOK, WarmResponse{
			CachedSources: s.oracle.CachedSources(),
			Warmed:        len(wreq.Sources),
		})
		return
	}

	if err := s.oracle.WarmContext(r.Context()); err != nil {
		status := http.StatusInternalServerError
		if r.Context().Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, WarmResponse{
			CachedSources: s.oracle.CachedSources(),
			Error:         err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, WarmResponse{CachedSources: s.oracle.CachedSources()})
}

// SourcesResponse is the /v1/sources response body: the replica's
// source-set membership and which per-source results are materialized
// right now. A router reads this to make placement and hand-back
// decisions — e.g. whether a rejoined replica still holds its hash
// slice warm — without guessing from counters.
type SourcesResponse struct {
	Sources          []int `json:"sources"`
	Cached           []int `json:"cached"`
	TrackPaths       bool  `json:"trackPaths"`
	MaxCachedSources int   `json:"maxCachedSources"`
}

func (s *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, SourcesResponse{
		Sources:          s.oracle.Sources(),
		Cached:           s.oracle.CachedSourceIDs(),
		TrackPaths:       s.oracle.Options().TrackPaths,
		MaxCachedSources: s.oracle.Options().MaxCachedSources,
	})
}

// StatsResponse is the /v1/stats response body: the Oracle's counters
// plus the derived rates, shaped for a metrics scraper.
type StatsResponse struct {
	Hits             int64   `json:"hits"`
	Misses           int64   `json:"misses"`
	HitRate          float64 `json:"hitRate"`
	Builds           int64   `json:"builds"`
	BuildTimeMillis  int64   `json:"buildTimeMillis"`
	AvgBuildMillis   float64 `json:"avgBuildMillis"`
	Evictions        int64   `json:"evictions"`
	Batches          int64   `json:"batches"`
	BatchQueries     int64   `json:"batchQueries"`
	AvgBatchSize     float64 `json:"avgBatchSize"`
	Warms            int64   `json:"warms"`
	Rejections       int64   `json:"rejections"`
	Cancellations    int64   `json:"cancellations"`
	CachedSources    int     `json:"cachedSources"`
	Sources          int     `json:"sources"`
	MaxCachedSources int     `json:"maxCachedSources"`
	ProvenanceBytes  int64   `json:"provenanceBytes"`

	// The provenance tier (Options.MaxProvenanceBytes): budget strips,
	// on-demand tracked rebuilds, and the most recent warm's plane size
	// before/after post-solve compaction.
	ProvenanceEvictions      int64 `json:"provenanceEvictions"`
	ProvenanceRebuilds       int64 `json:"provenanceRebuilds"`
	ProvenanceRebuildRejects int64 `json:"provenanceRebuildRejects"`
	ProvenanceRawBytes       int64 `json:"provenanceRawBytes"`
	ProvenanceCompactedBytes int64 `json:"provenanceCompactedBytes"`

	// Stage-latency breakdown of the most recent completed warm (zero
	// before any) and its peak live §7.1 path-expansion state — the
	// measured-latency inputs for load shedding. Every stage is wall
	// time summed over its items (sources, merge slices, centers), so
	// the numbers stay comparable across the overlapped schedules.
	WarmStageBuildMillis          float64 `json:"warmStageBuildMillis"`
	WarmStageSeedEnumerateMillis  float64 `json:"warmStageSeedEnumerateMillis"`
	WarmStageSeedMergeMillis      float64 `json:"warmStageSeedMergeMillis"`
	WarmStageCenterLandmarkMillis float64 `json:"warmStageCenterLandmarkMillis"`
	WarmStageAssemblyMillis       float64 `json:"warmStageAssemblyMillis"`
	WarmPeakSeedPathBytes         int64   `json:"warmPeakSeedPathBytes"`

	// Streaming-overlap counters of that same warm: §8.2.2 center
	// solves released while sources were still running, and center
	// solves started before the last source retired. Zero under the
	// barrier schedules.
	WarmCentersReady      int64 `json:"warmCentersReady"`
	WarmCentersOverlapped int64 `json:"warmCentersOverlapped"`
}

// millis converts a duration to fractional milliseconds for the wire.
func millis(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.oracle.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Hits:             st.Hits,
		Misses:           st.Misses,
		HitRate:          st.HitRate(),
		Builds:           st.Builds,
		BuildTimeMillis:  st.BuildTime.Milliseconds(),
		AvgBuildMillis:   float64(st.AvgBuildLatency().Microseconds()) / 1000,
		Evictions:        st.Evictions,
		Batches:          st.Batches,
		BatchQueries:     st.BatchQueries,
		AvgBatchSize:     st.AvgBatchSize(),
		Warms:            st.Warms,
		Rejections:       st.Rejections,
		Cancellations:    st.Cancellations,
		CachedSources:    s.oracle.CachedSources(),
		Sources:          s.numSources,
		MaxCachedSources: s.oracle.Options().MaxCachedSources,
		ProvenanceBytes:  st.ProvenanceBytes,

		ProvenanceEvictions:      st.ProvenanceEvictions,
		ProvenanceRebuilds:       st.ProvenanceRebuilds,
		ProvenanceRebuildRejects: st.ProvenanceRebuildRejects,
		ProvenanceRawBytes:       st.ProvenanceRawBytes,
		ProvenanceCompactedBytes: st.ProvenanceCompactedBytes,

		WarmStageBuildMillis:          millis(st.WarmStages.PerSourceBuild),
		WarmStageSeedEnumerateMillis:  millis(st.WarmStages.SeedEnumerate),
		WarmStageSeedMergeMillis:      millis(st.WarmStages.SeedMerge),
		WarmStageCenterLandmarkMillis: millis(st.WarmStages.CenterLandmark),
		WarmStageAssemblyMillis:       millis(st.WarmStages.Assembly),
		WarmPeakSeedPathBytes:         st.WarmPeakSeedPathBytes,

		WarmCentersReady:      st.WarmCentersReady,
		WarmCentersOverlapped: st.WarmCentersOverlapped,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		// The drain window: the process is still serving in-flight
		// traffic but must stop receiving new routes now, not when the
		// listener finally dies.
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // client gone; nothing useful to do
}
