// Package server is the HTTP serving front-end over msrp.Oracle: a
// JSON batch endpoint backed by Oracle.QueryBatchContext, a warm
// endpoint over the §8 batch pipeline, a stats scrape, and a health
// probe. It is the network face the ROADMAP's "production-scale
// server" north star asks for.
//
// Endpoints:
//
//	POST /v1/query   {"queries":[{"source":s,"target":t,"u":u,"v":v},…]}
//	                 → {"answers":[{"length":l,"noPath":…,"error":…},…]}
//	POST /v1/warm    run the Theorem 1 batch pipeline over every source
//	GET  /v1/stats   Oracle.Stats() + derived rates as JSON
//	GET  /healthz    liveness probe
//
// Admission control: at most Config.MaxInFlight /v1/query requests and
// Config.MaxWarms /v1/warm pipelines run at once; excess requests get
// 429 with a Retry-After header (never queued — the caller owns the
// backoff), counted in Oracle.Stats().Rejections. The request context
// is plumbed into the oracle, so a client that disconnects or times
// out cancels its batch between per-source builds and frees the slot
// promptly, with the cache left consistent for the next caller.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"msrp"
)

// Config tunes the front-end's admission control. The zero value
// derives sensible bounds from the oracle (see the field docs).
type Config struct {
	// MaxInFlight bounds concurrently served /v1/query requests — the
	// in-flight query budget. 0 derives the bound from the oracle's
	// options: 2×MaxCachedSources when the LRU is bounded (admission
	// then tracks what was sized to fit in memory, per the σ·n² concern
	// in the ROADMAP), else 4×GOMAXPROCS. Negative disables the bound.
	MaxInFlight int

	// MaxWarms bounds concurrent /v1/warm pipeline runs. Each warm is a
	// σn² build, so the default (0) allows exactly 1; the Oracle
	// single-flights concurrent warms anyway, and rejecting instead of
	// queueing keeps the probe endpoints responsive. Negative disables
	// the bound.
	MaxWarms int

	// RetryAfter is the backoff advertised in the Retry-After header of
	// 429 responses. 0 means 1 second.
	RetryAfter time.Duration

	// MaxBodyBytes caps the /v1/query request body (http.MaxBytesReader).
	// 0 means 8 MiB; negative disables the cap.
	MaxBodyBytes int64
}

// Server is an http.Handler serving one Oracle. Construct with New.
type Server struct {
	oracle *msrp.Oracle
	mux    *http.ServeMux

	retryAfter string        // preformatted Retry-After header value
	maxBody    int64         // /v1/query body cap (0 = uncapped)
	queries    chan struct{} // in-flight /v1/query slots (nil = unbounded)
	warms      chan struct{} // in-flight /v1/warm slots (nil = unbounded)
}

// New wraps the oracle in an HTTP front-end with the given admission
// configuration.
func New(o *msrp.Oracle, cfg Config) *Server {
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		if max := o.Options().MaxCachedSources; max > 0 {
			maxInFlight = 2 * max
		} else {
			maxInFlight = 4 * runtime.GOMAXPROCS(0)
		}
	}
	maxWarms := cfg.MaxWarms
	if maxWarms == 0 {
		maxWarms = 1
	}
	retryAfter := cfg.RetryAfter
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = 8 << 20
	} else if maxBody < 0 {
		maxBody = 0
	}
	s := &Server{
		oracle:     o,
		mux:        http.NewServeMux(),
		retryAfter: fmt.Sprintf("%d", int((retryAfter+time.Second-1)/time.Second)),
		maxBody:    maxBody,
	}
	if maxInFlight > 0 {
		s.queries = make(chan struct{}, maxInFlight)
	}
	if maxWarms > 0 {
		s.warms = make(chan struct{}, maxWarms)
	}
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/warm", s.handleWarm)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// acquire takes one slot off sem without blocking. A nil sem is
// unbounded. The returned release func is nil when the slot was not
// granted.
func acquire(sem chan struct{}) (release func(), ok bool) {
	if sem == nil {
		return func() {}, true
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, true
	default:
		return nil, false
	}
}

// reject emits a 429 with the configured Retry-After and records the
// rejection on the oracle's stats.
func (s *Server) reject(w http.ResponseWriter, what string) {
	s.oracle.RecordRejection()
	w.Header().Set("Retry-After", s.retryAfter)
	writeJSON(w, http.StatusTooManyRequests, map[string]string{
		"error": what + " capacity exhausted; retry later",
	})
}

// QueryItem is one replacement-path question on the wire: the length
// of the shortest source→target path avoiding the edge {u, v}.
type QueryItem struct {
	Source int `json:"source"`
	Target int `json:"target"`
	U      int `json:"u"`
	V      int `json:"v"`
}

// QueryRequest is the /v1/query request body.
type QueryRequest struct {
	Queries []QueryItem `json:"queries"`
}

// AnswerItem is one answer on the wire. NoPath marks the avoided edge
// as a bridge (Length is then meaningless); Error marks a malformed
// query (unknown source, missing edge, edge off the canonical path).
type AnswerItem struct {
	Length int32  `json:"length"`
	NoPath bool   `json:"noPath,omitempty"`
	Error  string `json:"error,omitempty"`
}

// QueryResponse is the /v1/query response body. Answers align with the
// request's queries by index. Error is set on request-level failures
// (bad source, cancelled batch) alongside the appropriate status code.
type QueryResponse struct {
	Answers []AnswerItem `json:"answers,omitempty"`
	Error   string       `json:"error,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Read the body before taking an admission slot: a client trickling
	// (or streaming gigabytes of) request body must not pin the
	// in-flight budget while it does so. The cap bounds memory; the
	// slot is held only for the compute.
	if s.maxBody > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, QueryResponse{Error: "bad request body: " + err.Error()})
		return
	}

	release, ok := acquire(s.queries)
	if !ok {
		s.reject(w, "query")
		return
	}
	defer release()

	queries := make([]msrp.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = msrp.Query{Source: q.Source, Target: q.Target, U: q.U, V: q.V}
	}
	answers, err := s.oracle.QueryBatchContext(r.Context(), queries)
	if err != nil {
		// Only the request context cancels a batch: the client timed out
		// or disconnected. 503 tells any intermediary the work was shed.
		writeJSON(w, http.StatusServiceUnavailable, QueryResponse{Error: "batch cancelled: " + err.Error()})
		return
	}

	resp := QueryResponse{Answers: make([]AnswerItem, len(answers))}
	status := http.StatusOK
	for i, a := range answers {
		switch {
		case a.Err != nil:
			resp.Answers[i].Error = a.Err.Error()
			// The sentinel (not string matching) decides the status: a
			// query for a vertex outside the oracle's source set is a
			// client error, not an empty result.
			if errors.Is(a.Err, msrp.ErrNotSource) {
				status = http.StatusBadRequest
				if resp.Error == "" {
					resp.Error = a.Err.Error()
				}
			}
		case a.Length == msrp.NoPath:
			resp.Answers[i].NoPath = true
		default:
			resp.Answers[i].Length = a.Length
		}
	}
	writeJSON(w, status, resp)
}

// WarmResponse is the /v1/warm response body.
type WarmResponse struct {
	CachedSources int    `json:"cachedSources"`
	Error         string `json:"error,omitempty"`
}

func (s *Server) handleWarm(w http.ResponseWriter, r *http.Request) {
	release, ok := acquire(s.warms)
	if !ok {
		s.reject(w, "warm")
		return
	}
	defer release()

	if err := s.oracle.WarmContext(r.Context()); err != nil {
		status := http.StatusInternalServerError
		if r.Context().Err() != nil {
			status = http.StatusServiceUnavailable
		}
		writeJSON(w, status, WarmResponse{
			CachedSources: s.oracle.CachedSources(),
			Error:         err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, WarmResponse{CachedSources: s.oracle.CachedSources()})
}

// StatsResponse is the /v1/stats response body: the Oracle's counters
// plus the derived rates, shaped for a metrics scraper.
type StatsResponse struct {
	Hits             int64   `json:"hits"`
	Misses           int64   `json:"misses"`
	HitRate          float64 `json:"hitRate"`
	Builds           int64   `json:"builds"`
	BuildTimeMillis  int64   `json:"buildTimeMillis"`
	AvgBuildMillis   float64 `json:"avgBuildMillis"`
	Evictions        int64   `json:"evictions"`
	Batches          int64   `json:"batches"`
	BatchQueries     int64   `json:"batchQueries"`
	AvgBatchSize     float64 `json:"avgBatchSize"`
	Warms            int64   `json:"warms"`
	Rejections       int64   `json:"rejections"`
	Cancellations    int64   `json:"cancellations"`
	CachedSources    int     `json:"cachedSources"`
	Sources          int     `json:"sources"`
	MaxCachedSources int     `json:"maxCachedSources"`

	// Stage-latency breakdown of the most recent completed warm (zero
	// before any) and its peak live §7.1 path-expansion state — the
	// measured-latency inputs for load shedding. The per-source stages
	// are wall time summed over sources; merge and center stages plain
	// wall time.
	WarmStageBuildMillis          float64 `json:"warmStageBuildMillis"`
	WarmStageSeedEnumerateMillis  float64 `json:"warmStageSeedEnumerateMillis"`
	WarmStageSeedMergeMillis      float64 `json:"warmStageSeedMergeMillis"`
	WarmStageCenterLandmarkMillis float64 `json:"warmStageCenterLandmarkMillis"`
	WarmStageAssemblyMillis       float64 `json:"warmStageAssemblyMillis"`
	WarmPeakSeedPathBytes         int64   `json:"warmPeakSeedPathBytes"`
}

// millis converts a duration to fractional milliseconds for the wire.
func millis(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.oracle.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Hits:             st.Hits,
		Misses:           st.Misses,
		HitRate:          st.HitRate(),
		Builds:           st.Builds,
		BuildTimeMillis:  st.BuildTime.Milliseconds(),
		AvgBuildMillis:   float64(st.AvgBuildLatency().Microseconds()) / 1000,
		Evictions:        st.Evictions,
		Batches:          st.Batches,
		BatchQueries:     st.BatchQueries,
		AvgBatchSize:     st.AvgBatchSize(),
		Warms:            st.Warms,
		Rejections:       st.Rejections,
		Cancellations:    st.Cancellations,
		CachedSources:    s.oracle.CachedSources(),
		Sources:          len(s.oracle.Sources()),
		MaxCachedSources: s.oracle.Options().MaxCachedSources,

		WarmStageBuildMillis:          millis(st.WarmStages.PerSourceBuild),
		WarmStageSeedEnumerateMillis:  millis(st.WarmStages.SeedEnumerate),
		WarmStageSeedMergeMillis:      millis(st.WarmStages.SeedMerge),
		WarmStageCenterLandmarkMillis: millis(st.WarmStages.CenterLandmark),
		WarmStageAssemblyMillis:       millis(st.WarmStages.Assembly),
		WarmPeakSeedPathBytes:         st.WarmPeakSeedPathBytes,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // client gone; nothing useful to do
}
