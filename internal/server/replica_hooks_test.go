package server

// Tests for the replica-side hooks the routing tier (internal/router)
// depends on: /v1/sources introspection, slice warms, the per-batch
// deadline (deadlineMillis → 504), and the routeError wire field.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"msrp"
)

func getJSON(t *testing.T, h http.Handler, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v (body %s)", path, err, rec.Body)
		}
	}
	return rec.Code
}

func TestSourcesEndpointReflectsCache(t *testing.T) {
	srv, _, sources := newTestServer(t, Config{})

	var before SourcesResponse
	if code := getJSON(t, srv, "/v1/sources", &before); code != http.StatusOK {
		t.Fatalf("GET /v1/sources = %d", code)
	}
	if len(before.Sources) != len(sources) {
		t.Fatalf("sources = %v, want %v", before.Sources, sources)
	}
	if len(before.Cached) != 0 {
		t.Fatalf("cached before any build = %v, want empty", before.Cached)
	}
	if before.MaxCachedSources != 2 {
		t.Fatalf("maxCachedSources = %d, want 2", before.MaxCachedSources)
	}

	// A slice warm must show up as exactly that slice, in ascending
	// order (the oracle's LRU bound here is 2, so warm exactly 2).
	slice := []int{sources[2], sources[0]}
	rec := postJSON(t, srv, "/v1/warm", WarmRequest{Sources: slice})
	if rec.Code != http.StatusOK {
		t.Fatalf("slice warm = %d, body %s", rec.Code, rec.Body)
	}
	var wresp WarmResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &wresp); err != nil {
		t.Fatal(err)
	}
	if wresp.Warmed != 2 || wresp.CachedSources != 2 {
		t.Fatalf("warm response = %+v, want warmed=2 cached=2", wresp)
	}

	var after SourcesResponse
	getJSON(t, srv, "/v1/sources", &after)
	if len(after.Cached) != 2 || after.Cached[0] != sources[0] || after.Cached[1] != sources[2] {
		t.Fatalf("cached after slice warm = %v, want [%d %d]", after.Cached, sources[0], sources[2])
	}
}

func TestWarmSliceRejectsNonSourceAndUnknownFields(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{})

	rec := postJSON(t, srv, "/v1/warm", WarmRequest{Sources: []int{59}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("warm of non-source = %d, want 400 (body %s)", rec.Code, rec.Body)
	}

	rec = postJSON(t, srv, "/v1/warm", map[string]any{"sourcez": []int{0}})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("warm with unknown field = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
}

func TestWarmSliceAnswersMatchLazy(t *testing.T) {
	// Two oracles over the same graph: one slice-warmed through the
	// endpoint, one left to build lazily. Answers must be bit-identical
	// (the slice warm uses the same per-source build path).
	g := msrp.GenerateRandomConnected(7, 60, 160)
	sources := []int{0, 15, 30, 45}
	opts := msrp.DefaultOptions()
	opts.SampleBoost = 8
	opts.Parallelism = 2
	warmed, err := msrp.NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := msrp.NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(warmed, Config{})
	if rec := postJSON(t, srv, "/v1/warm", WarmRequest{Sources: sources}); rec.Code != http.StatusOK {
		t.Fatalf("slice warm = %d", rec.Code)
	}
	items := validQueries(t, lazy, sources)
	rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d, body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		want, err := lazy.Query(it.Source, it.Target, it.U, it.V)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Answers[i].Length != want {
			t.Fatalf("answer %d = %d, lazy oracle says %d", i, resp.Answers[i].Length, want)
		}
	}
}

func TestDeadlineMillisEnforced(t *testing.T) {
	// A graph big enough that one per-source build takes well over the
	// declared 2ms budget: the handler must answer 504, the replica's
	// own verdict that it abandoned the batch.
	g := msrp.GenerateRandomConnected(11, 1200, 5000)
	opts := msrp.DefaultOptions()
	opts.Parallelism = 2
	oracle, err := msrp.NewOracle(g, []int{0, 600}, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(oracle, Config{})

	rec := postJSON(t, srv, "/v1/query", QueryRequest{
		Queries:        []QueryItem{{Source: 0, Target: 100, U: 0, V: 1}},
		DeadlineMillis: 2,
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("blown deadline = %d, want 504 (body %s)", rec.Code, rec.Body)
	}

	rec = postJSON(t, srv, "/v1/query", QueryRequest{
		Queries:        []QueryItem{{Source: 0, Target: 100, U: 0, V: 1}},
		DeadlineMillis: -1,
	})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("negative deadline = %d, want 400", rec.Code)
	}

	// A generous budget must not get in the way; the build from the
	// abandoned batch completed and stayed cached (builds are atomic),
	// so this is a cache hit either way.
	rec = postJSON(t, srv, "/v1/query", QueryRequest{
		Queries:        []QueryItem{{Source: 0, Target: 100, U: 0, V: 1}},
		DeadlineMillis: 60_000,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("generous deadline = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
}
