package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"msrp"
)

// newTestServer builds a small oracle plus front-end. Returns the
// oracle too so tests can cross-check against the in-process API.
func newTestServer(t *testing.T, cfg Config) (*Server, *msrp.Oracle, []int) {
	t.Helper()
	g := msrp.GenerateRandomConnected(7, 60, 160)
	sources := []int{0, 15, 30, 45}
	opts := msrp.DefaultOptions()
	opts.SampleBoost = 8
	opts.Parallelism = 2
	opts.MaxCachedSources = 2
	oracle, err := msrp.NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	return New(oracle, cfg), oracle, sources
}

// validQueries builds a batch of well-formed queries: each source's
// canonical path to a target, avoiding the first path edge.
func validQueries(t *testing.T, oracle *msrp.Oracle, sources []int) []QueryItem {
	t.Helper()
	var items []QueryItem
	for _, s := range sources {
		res := oracle.Result(s)
		if res == nil {
			t.Fatalf("Result(%d) = nil", s)
		}
		for target := 0; target < 60; target++ {
			path := res.PathTo(target)
			if len(path) < 2 {
				continue
			}
			items = append(items, QueryItem{
				Source: s, Target: target,
				U: int(path[0]), V: int(path[1]),
			})
			break
		}
	}
	if len(items) == 0 {
		t.Fatal("no valid queries found")
	}
	return items
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestQueryEndpointMatchesInProcessBatch(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{})
	items := validQueries(t, oracle, sources)

	rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != len(items) {
		t.Fatalf("got %d answers for %d queries", len(resp.Answers), len(items))
	}

	queries := make([]msrp.Query, len(items))
	for i, q := range items {
		queries[i] = msrp.Query{Source: q.Source, Target: q.Target, U: q.U, V: q.V}
	}
	want := oracle.QueryBatch(queries)
	for i, a := range resp.Answers {
		if a.Error != "" {
			t.Fatalf("answer %d error: %s", i, a.Error)
		}
		if want[i].Err != nil {
			t.Fatalf("in-process answer %d error: %v", i, want[i].Err)
		}
		if wantNoPath := want[i].Length == msrp.NoPath; a.NoPath != wantNoPath {
			t.Fatalf("answer %d noPath = %v, want %v", i, a.NoPath, wantNoPath)
		}
		if !a.NoPath && a.Length != want[i].Length {
			t.Fatalf("answer %d length = %d, want %d", i, a.Length, want[i].Length)
		}
	}
}

func TestQueryEndpointBadJSON(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
}

// TestQueryEndpointUnknownSource: the ErrNotSource sentinel — not
// string matching — must map an out-of-set source to a 400 while the
// rest of the batch is still answered.
func TestQueryEndpointUnknownSource(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{})
	items := validQueries(t, oracle, sources)
	bad := append([]QueryItem{{Source: 59, Target: 0, U: 0, V: 1}}, items...)

	rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: bad})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Answers) != len(bad) {
		t.Fatalf("got %d answers for %d queries", len(resp.Answers), len(bad))
	}
	if resp.Answers[0].Error == "" || resp.Error == "" {
		t.Fatalf("unknown source not reported: %+v", resp)
	}
	for i := 1; i < len(resp.Answers); i++ {
		if resp.Answers[i].Error != "" {
			t.Fatalf("valid query %d got error %q", i, resp.Answers[i].Error)
		}
	}
}

// TestQueryEndpointBodyTooLarge: an oversized body is refused with 413
// before it can occupy an admission slot or memory, and the error JSON
// carries the actual cap so the client can split the batch.
func TestQueryEndpointBodyTooLarge(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{MaxBodyBytes: 128})
	big := `{"queries":[` + strings.Repeat(`{"source":0,"target":1,"u":0,"v":1},`, 100) +
		`{"source":0,"target":1,"u":0,"v":1}]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(big))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", rec.Code)
	}
	var hint struct {
		Error        string `json:"error"`
		MaxBodyBytes int64  `json:"maxBodyBytes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &hint); err != nil {
		t.Fatalf("413 body is not JSON: %v (%s)", err, rec.Body)
	}
	if hint.MaxBodyBytes != 128 || hint.Error == "" {
		t.Fatalf("413 hint = %+v, want maxBodyBytes=128 and an error message", hint)
	}
}

// TestBadTrafficDoesNotConsumeAdmission: malformed and empty batches
// are rejected before acquire(s.queries), so even with every in-flight
// slot occupied they come back as client errors — never 429 — and a
// flood of them cannot starve a real query of budget.
func TestBadTrafficDoesNotConsumeAdmission(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{MaxInFlight: 1, MaxBodyBytes: 256})

	// Occupy the only slot: if any of the bad requests below tried to
	// take it, they would see 429 instead of their client error.
	srv.queries <- struct{}{}
	if rec := postJSON(t, srv, "/v1/query", QueryRequest{}); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch with slots full: status = %d, want 400 (body %s)", rec.Code, rec.Body)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader("{not json"))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON with slots full: status = %d, want 400", rec.Code)
	}
	big := `{"queries":[` + strings.Repeat(`{"source":0,"target":1,"u":0,"v":1},`, 20) + `]}`
	req = httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(big))
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body with slots full: status = %d, want 413", rec.Code)
	}
	if got := oracle.Stats().Rejections; got != 0 {
		t.Fatalf("bad traffic recorded %d rejections, want 0 (it must not reach admission)", got)
	}
	<-srv.queries

	// Flood garbage concurrently while real queries go through on the
	// single slot: every good request must be admitted (200, never 429).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				postJSON(t, srv, "/v1/query", QueryRequest{})
			}
		}()
	}
	items := validQueries(t, oracle, sources)
	for i := 0; i < 20; i++ {
		if rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items}); rec.Code != http.StatusOK {
			t.Fatalf("good query %d behind garbage flood: status = %d, want 200 (body %s)", i, rec.Code, rec.Body)
		}
	}
	close(stop)
	wg.Wait()
}

// TestHealthzDrainAware: the moment SetDraining flips, /healthz must
// report 503 — while the query endpoints keep serving the in-flight
// window — and flipping back restores 200.
func TestHealthzDrainAware(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{})
	getHealthz := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		return rec
	}

	if rec := getHealthz(); rec.Code != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", rec.Code)
	}
	srv.SetDraining(true)
	if !srv.Draining() {
		t.Fatal("Draining() = false after SetDraining(true)")
	}
	rec := getHealthz()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain = %d, want 503", rec.Code)
	}
	if !strings.HasPrefix(rec.Body.String(), "draining") {
		t.Fatalf("healthz drain body = %q, want \"draining\"", rec.Body.String())
	}
	// Routed traffic still completes during the drain window.
	items := validQueries(t, oracle, sources)
	if rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items}); rec.Code != http.StatusOK {
		t.Fatalf("query during drain = %d, want 200 (body %s)", rec.Code, rec.Body)
	}
	srv.SetDraining(false)
	if rec := getHealthz(); rec.Code != http.StatusOK {
		t.Fatalf("healthz after drain cleared = %d, want 200", rec.Code)
	}
}

// TestQueryAdmissionNotPinnedByBody: the admission slot is taken after
// the body is read, so a request parked in body transfer does not
// count against the in-flight budget (a trickling client cannot starve
// real traffic).
func TestQueryAdmissionNotPinnedByBody(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{MaxInFlight: 1})
	// A reader that never delivers a complete body: the handler sits in
	// json.Decode — before acquire — while we drive real traffic.
	blocked := make(chan struct{})
	go func() {
		defer close(blocked)
		req := httptest.NewRequest(http.MethodPost, "/v1/query", neverEOFReader{})
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}()
	items := validQueries(t, oracle, sources)
	if rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items}); rec.Code != http.StatusOK {
		t.Fatalf("request behind a body-trickling client: status = %d, want 200", rec.Code)
	}
	select {
	case <-blocked:
		t.Fatal("trickling request finished unexpectedly")
	default:
	}
}

// neverEOFReader yields whitespace forever: json.Decode keeps reading
// and the request never completes (MaxBytesReader eventually caps it,
// but not before the concurrent assertion has run).
type neverEOFReader struct{}

func (neverEOFReader) Read(p []byte) (int, error) {
	time.Sleep(time.Millisecond)
	if len(p) == 0 {
		return 0, nil
	}
	p[0] = ' '
	return 1, nil
}

func TestQueryEndpointMethodNotAllowed(t *testing.T) {
	srv, _, _ := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/query", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
}

// TestAdmissionControl429: with every in-flight slot taken, a query is
// rejected with 429 + Retry-After and counted on the oracle's stats.
func TestAdmissionControl429(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{MaxInFlight: 2, RetryAfter: 7 * time.Second})
	for i := 0; i < cap(srv.queries); i++ {
		srv.queries <- struct{}{} // occupy every slot
	}
	items := validQueries(t, oracle, sources)
	rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Fatalf("Retry-After = %q, want \"7\"", got)
	}
	if got := oracle.Stats().Rejections; got != 1 {
		t.Fatalf("Rejections = %d, want 1", got)
	}

	// Slots released → the same request is admitted again.
	for i := 0; i < cap(srv.queries); i++ {
		<-srv.queries
	}
	if rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items}); rec.Code != http.StatusOK {
		t.Fatalf("after release: status = %d", rec.Code)
	}
}

func TestWarmEndpoint(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{})
	rec := postJSON(t, srv, "/v1/warm", struct{}{})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp WarmResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	// The LRU bound (2) caps what warm can leave resident.
	if max := oracle.Options().MaxCachedSources; resp.CachedSources != max {
		t.Fatalf("cachedSources = %d, want %d", resp.CachedSources, max)
	}
	if got := oracle.Stats().Warms; got != 1 {
		t.Fatalf("Warms = %d, want 1", got)
	}
	_ = sources
}

func TestWarmEndpointBusy429(t *testing.T) {
	srv, oracle, _ := newTestServer(t, Config{})
	srv.warms <- struct{}{} // a warm pipeline is "running"
	rec := postJSON(t, srv, "/v1/warm", struct{}{})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", rec.Code)
	}
	if got := oracle.Stats().Rejections; got != 1 {
		t.Fatalf("Rejections = %d, want 1", got)
	}
}

// TestQueryEndpointCancelledContext: a dead client context sheds the
// batch with 503 and shows up in the cancellation counter.
func TestQueryEndpointCancelledContext(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{})
	items := validQueries(t, oracle, sources)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(QueryRequest{Queries: items}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/query", &buf).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", rec.Code, rec.Body)
	}
	if got := oracle.Stats().Cancellations; got < 1 {
		t.Fatalf("Cancellations = %d, want >= 1", got)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{})
	items := validQueries(t, oracle, sources)
	if rec := postJSON(t, srv, "/v1/query", QueryRequest{Queries: items}); rec.Code != http.StatusOK {
		t.Fatalf("query status = %d", rec.Code)
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var stats StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Batches < 1 || stats.BatchQueries < int64(len(items)) || stats.Sources != len(sources) {
		t.Fatalf("implausible stats: %+v", stats)
	}

	// Warm the oracle and re-scrape: the stage-latency breakdown of the
	// §8 pipeline (the measured-latency inputs for load shedding) must
	// appear.
	req = httptest.NewRequest(http.MethodPost, "/v1/warm", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("warm status = %d", rec.Code)
	}
	req = httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Warms < 1 {
		t.Fatalf("warm not counted: %+v", stats)
	}
	if stats.WarmStageBuildMillis <= 0 || stats.WarmStageCenterLandmarkMillis <= 0 ||
		stats.WarmStageAssemblyMillis <= 0 || stats.WarmPeakSeedPathBytes <= 0 {
		t.Fatalf("warm stage breakdown missing from stats scrape: %+v", stats)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.HasPrefix(rec.Body.String(), "ok") {
		t.Fatalf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

// TestDerivedInFlightBudget: the zero config derives the query budget
// from MaxCachedSources (2×), the σ·n²-fits-in-memory proxy.
func TestDerivedInFlightBudget(t *testing.T) {
	srv, oracle, _ := newTestServer(t, Config{})
	want := 2 * oracle.Options().MaxCachedSources
	if got := cap(srv.queries); got != want {
		t.Fatalf("derived in-flight budget = %d, want %d", got, want)
	}
	if cap(srv.warms) != 1 {
		t.Fatalf("derived warm budget = %d, want 1", cap(srv.warms))
	}
}

// TestEndToEndOverTCP drives a real listener (httptest.Server) the way
// cmd/msrp-serve serves one, as a socket-level smoke of the handler
// wiring.
func TestEndToEndOverTCP(t *testing.T) {
	srv, oracle, sources := newTestServer(t, Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}

	items := validQueries(t, oracle, sources)
	body, _ := json.Marshal(QueryRequest{Queries: items})
	resp, err = http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Answers) != len(items) {
		t.Fatalf("got %d answers for %d queries", len(qr.Answers), len(items))
	}
	for i, a := range qr.Answers {
		if a.Error != "" {
			t.Fatalf("answer %d: %s", i, a.Error)
		}
	}
}
