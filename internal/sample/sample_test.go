package sample

import (
	"math"
	"sort"
	"testing"

	"msrp/internal/xrand"
)

func TestLevelsSortedAndInRange(t *testing.T) {
	rng := xrand.New(1)
	l := New(rng, 500, 4, 1, nil)
	for k := 0; k <= l.MaxK; k++ {
		set := l.Level(k)
		if !sort.SliceIsSorted(set, func(i, j int) bool { return set[i] < set[j] }) {
			t.Fatalf("level %d not sorted", k)
		}
		for _, v := range set {
			if v < 0 || v >= 500 {
				t.Fatalf("level %d member %d out of range", k, v)
			}
		}
	}
}

func TestMaxLevelConsistent(t *testing.T) {
	rng := xrand.New(2)
	l := New(rng, 300, 2, 1, nil)
	// MaxLevel must be the highest level whose set contains the vertex.
	for v := int32(0); v < 300; v++ {
		want := -1
		for k := 0; k <= l.MaxK; k++ {
			set := l.Level(k)
			i := sort.Search(len(set), func(i int) bool { return set[i] >= v })
			if i < len(set) && set[i] == v && k > want {
				want = k
			}
		}
		if got := l.MaxLevel(v); got != want {
			t.Fatalf("MaxLevel(%d) = %d, want %d", v, got, want)
		}
		if l.IsMember(v) != (want >= 0) {
			t.Fatalf("IsMember(%d) inconsistent", v)
		}
	}
}

func TestForcedVerticesInLevel0(t *testing.T) {
	rng := xrand.New(3)
	forced := []int32{7, 42, 7, 199}
	l := New(rng, 200, 3, 1, forced)
	set := l.Level(0)
	for _, f := range forced {
		i := sort.Search(len(set), func(i int) bool { return set[i] >= f })
		if i >= len(set) || set[i] != f {
			t.Fatalf("forced vertex %d missing from level 0", f)
		}
		if l.MaxLevel(f) < 0 {
			t.Fatalf("forced vertex %d has no level", f)
		}
	}
	// No duplicates even though 7 was forced twice.
	for i := 1; i < len(set); i++ {
		if set[i] == set[i-1] {
			t.Fatalf("duplicate %d in level 0", set[i])
		}
	}
}

func TestUnionCoversAllLevels(t *testing.T) {
	rng := xrand.New(4)
	l := New(rng, 400, 4, 1, []int32{0})
	inUnion := map[int32]bool{}
	for _, v := range l.Union() {
		inUnion[v] = true
	}
	for k := 0; k <= l.MaxK; k++ {
		for _, v := range l.Level(k) {
			if !inUnion[v] {
				t.Fatalf("level %d member %d missing from union", k, v)
			}
		}
	}
	u := l.Union()
	for i := 1; i < len(u); i++ {
		if u[i] <= u[i-1] {
			t.Fatal("union not strictly sorted")
		}
	}
}

func TestLevelCount(t *testing.T) {
	// MaxK = ceil(log2(sqrt(n*sigma))).
	cases := []struct {
		n, sigma, want int
	}{
		{1, 1, 0},
		{4, 1, 1},
		{16, 1, 2},
		{16, 4, 3},
		{1024, 1, 5},
		{1024, 4, 6},
	}
	rng := xrand.New(5)
	for _, c := range cases {
		l := New(rng, c.n, c.sigma, 1, nil)
		if l.MaxK != c.want {
			t.Fatalf("n=%d sigma=%d: MaxK = %d, want %d", c.n, c.sigma, l.MaxK, c.want)
		}
	}
}

func TestProbabilitiesHalve(t *testing.T) {
	rng := xrand.New(6)
	l := New(rng, 10000, 4, 1, nil)
	for k := 1; k <= l.MaxK; k++ {
		if l.Prob[k-1] < 1 { // below the clamp, exact halving
			ratio := l.Prob[k] / l.Prob[k-1]
			if math.Abs(ratio-0.5) > 1e-12 {
				t.Fatalf("p_%d/p_%d = %v, want 0.5", k, k-1, ratio)
			}
		}
	}
}

func TestLemma4SizeConcentration(t *testing.T) {
	// Lemma 4: |L_k| concentrates around E = 4√(nσ)/2^k. With many
	// trials the average must be within 10% of E, and no single draw
	// beyond the (1+log n) Chernoff envelope the proof uses.
	const n, sigma, trials = 5000, 4, 30
	rng := xrand.New(7)
	logn := math.Log2(float64(n))
	for k := 0; k <= 3; k++ {
		expected := 4 * math.Sqrt(float64(n)*float64(sigma)) / float64(int(1)<<uint(k))
		sum := 0.0
		for tr := 0; tr < trials; tr++ {
			l := New(rng, n, sigma, 1, nil)
			size := float64(l.Size(k))
			sum += size
			if size > (1+logn)*expected {
				t.Fatalf("k=%d trial %d: |L_k| = %v beyond Chernoff envelope %v",
					k, tr, size, (1+logn)*expected)
			}
		}
		avg := sum / trials
		if math.Abs(avg-expected)/expected > 0.10 {
			t.Fatalf("k=%d: mean size %v, expected %v", k, avg, expected)
		}
	}
}

func TestBoostSaturates(t *testing.T) {
	rng := xrand.New(8)
	l := New(rng, 100, 1, 1000, nil)
	if l.Prob[0] != 1 {
		t.Fatalf("boosted p_0 = %v, want clamped 1", l.Prob[0])
	}
	if l.Size(0) != 100 {
		t.Fatalf("saturated level 0 has %d members, want all 100", l.Size(0))
	}
}

func TestDeterminismPerSeed(t *testing.T) {
	a := New(xrand.New(9), 300, 2, 1, []int32{5})
	b := New(xrand.New(9), 300, 2, 1, []int32{5})
	for k := 0; k <= a.MaxK; k++ {
		sa, sb := a.Level(k), b.Level(k)
		if len(sa) != len(sb) {
			t.Fatalf("level %d sizes differ", k)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("level %d differs at %d", k, i)
			}
		}
	}
}

func TestExpectedSize(t *testing.T) {
	rng := xrand.New(10)
	l := New(rng, 900, 1, 1, nil)
	want := float64(900) * l.Prob[0]
	if got := l.ExpectedSize(0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("ExpectedSize(0) = %v, want %v", got, want)
	}
}

func TestOutOfRangeLevel(t *testing.T) {
	rng := xrand.New(11)
	l := New(rng, 50, 1, 1, nil)
	if l.Level(-1) != nil || l.Level(l.MaxK+1) != nil {
		t.Fatal("out-of-range levels should be nil")
	}
}
