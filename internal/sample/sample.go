// Package sample draws the leveled random vertex sets at the heart of
// the paper's algorithm: landmark sets L_k (Definition 3) and center
// sets C_k (§8).
//
// Level k samples each vertex independently with probability
//
//	p_k = min(1, boost · 4/2^k · √(σ/n)),    0 ≤ k ≤ ⌈log₂ √(nσ)⌉,
//
// so that (Lemma 4) |L_k| = Õ(√(nσ)/2^k) w.h.p. and any path segment of
// length ≥ 2^k·√(n/σ)·log n contains a level-k vertex w.h.p. (Lemma 9).
// boost = 1 is the paper's constant; tests raise it so the w.h.p.
// guarantees hold at toy sizes.
//
// Centers reuse the same distribution; a vertex's *priority* is the
// highest level that sampled it (the paper is ambiguous when a vertex
// lands in several C_k; taking the maximum preserves every lemma, since
// Lemma 18 only needs "priority ≥ k+1" hits on long segments).
package sample

import (
	"fmt"
	"math"
	"sort"

	"msrp/internal/xrand"
)

// Levels is a family of leveled random vertex sets.
type Levels struct {
	// N and Sigma record the parameters the probabilities derive from.
	N, Sigma int

	// MaxK is the largest level index; levels run 0..MaxK inclusive.
	MaxK int

	// Prob[k] is the sampling probability of level k (after boost and
	// clamping).
	Prob []float64

	sets     [][]int32 // per-level sorted members
	maxLevel []int8    // per-vertex highest level, -1 if unsampled
	union    []int32   // sorted union of all levels
}

// New draws a leveled family over n vertices with source count sigma,
// consuming randomness from rng. forced vertices (the paper adds all
// sources) are inserted into level 0 deterministically.
func New(rng *xrand.RNG, n, sigma int, boost float64, forced []int32) *Levels {
	if n <= 0 {
		panic(fmt.Sprintf("sample: n = %d", n))
	}
	if sigma < 1 {
		sigma = 1
	}
	if boost <= 0 {
		boost = 1
	}
	l := &Levels{
		N:        n,
		Sigma:    sigma,
		MaxK:     maxLevelIndex(n, sigma),
		maxLevel: make([]int8, n),
	}
	for i := range l.maxLevel {
		l.maxLevel[i] = -1
	}
	l.Prob = make([]float64, l.MaxK+1)
	l.sets = make([][]int32, l.MaxK+1)
	base := 4 * math.Sqrt(float64(sigma)/float64(n)) * boost
	for k := 0; k <= l.MaxK; k++ {
		p := base / float64(int64(1)<<uint(k))
		if p > 1 {
			p = 1
		}
		l.Prob[k] = p
		set := make([]int32, 0, int(p*float64(n))+8)
		for v := 0; v < n; v++ {
			if rng.Bernoulli(p) {
				set = append(set, int32(v))
				if int8(k) > l.maxLevel[v] {
					l.maxLevel[v] = int8(k)
				}
			}
		}
		l.sets[k] = set
	}
	for _, v := range forced {
		if v < 0 || int(v) >= n {
			panic(fmt.Sprintf("sample: forced vertex %d out of range", v))
		}
		if !contains(l.sets[0], v) {
			l.sets[0] = insertSorted(l.sets[0], v)
		}
		if l.maxLevel[v] < 0 {
			l.maxLevel[v] = 0
		}
	}
	l.union = l.buildUnion()
	return l
}

// maxLevelIndex returns ⌈log₂ √(nσ)⌉, the paper's top level.
func maxLevelIndex(n, sigma int) int {
	root := math.Sqrt(float64(n) * float64(sigma))
	k := int(math.Ceil(math.Log2(root)))
	if k < 0 {
		k = 0
	}
	return k
}

// Level returns the sorted members of level k (aliases internal state;
// treat as read-only).
func (l *Levels) Level(k int) []int32 {
	if k < 0 || k > l.MaxK {
		return nil
	}
	return l.sets[k]
}

// Union returns the sorted union of all levels (the paper's L or C).
func (l *Levels) Union() []int32 { return l.union }

// MaxLevel returns the highest level containing v (the center
// "priority"), or -1 if v was never sampled.
func (l *Levels) MaxLevel(v int32) int { return int(l.maxLevel[v]) }

// IsMember reports whether v belongs to any level.
func (l *Levels) IsMember(v int32) bool { return l.maxLevel[v] >= 0 }

// Size returns |Level(k)|.
func (l *Levels) Size(k int) int { return len(l.sets[k]) }

func (l *Levels) buildUnion() []int32 {
	seen := make(map[int32]struct{})
	for _, set := range l.sets {
		for _, v := range set {
			seen[v] = struct{}{}
		}
	}
	u := make([]int32, 0, len(seen))
	for v := range seen {
		u = append(u, v)
	}
	sort.Slice(u, func(i, j int) bool { return u[i] < u[j] })
	return u
}

func contains(sorted []int32, v int32) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	return i < len(sorted) && sorted[i] == v
}

func insertSorted(sorted []int32, v int32) []int32 {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	sorted = append(sorted, 0)
	copy(sorted[i+1:], sorted[i:])
	sorted[i] = v
	return sorted
}

// ExpectedSize returns the expected |Level(k)| = n·p_k, used by the
// Lemma 4 experiment to compare measured sizes against the bound.
func (l *Levels) ExpectedSize(k int) float64 {
	return float64(l.N) * l.Prob[k]
}
