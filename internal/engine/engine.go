// Package engine provides the sharded execution primitives shared by
// every parallel stage of the repository: a sized worker pool for
// index-structured work and an arena-style per-worker scratch space.
//
// The MSRP pipeline (internal/msrp), the landmark BFS forests
// (internal/bfs), and the batched Oracle all have the same shape of
// parallelism: n independent items where fn(i) touches only the i-th
// item's state. The engine shards those items across a bounded set of
// workers. Because item i's output never depends on which worker ran it
// or in what order, the schedule cannot change the result: output is
// deterministic for any worker count (asserted by the determinism tests
// at every layer above).
//
// Scratch removes the other cost of fanning out: per-item O(n)
// allocations. Each worker owns one Scratch, reused across all items it
// processes and — because the Pool keeps a free list — across pipeline
// stages too. After warmup a parallel stage performs no per-item
// scratch allocation at all.
package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a sized worker pool. The zero value is not useful; construct
// with New. A Pool is safe for concurrent use and may be shared across
// pipeline stages: its scratch free list is what carries buffer reuse
// from one stage to the next.
type Pool struct {
	workers int

	mu   sync.Mutex
	free []*Scratch

	// allocs counts Scratch allocations over the pool's lifetime — the
	// observable that lets the serving layer assert its steady state
	// performs no scratch growth (see ScratchAllocs).
	allocs atomic.Int64

	// steals counts successful range transfers in the work-stealing
	// scheduler over the pool's lifetime (see Steals).
	steals atomic.Int64
}

// New returns a pool with the given worker bound. workers <= 0 selects
// GOMAXPROCS ("as parallel as the hardware allows"); workers == 1 means
// strictly sequential execution on the calling goroutine.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the resolved worker bound (always >= 1).
func (p *Pool) Workers() int { return p.workers }

// Steals returns how many range transfers the work-stealing scheduler
// has performed over the pool's lifetime — across Run, RunScratch, and
// Pipeline entry points. Steal accounting is observability for the
// skewed-workload tests and experiments (a zero count on a skewed
// workload means the scheduler degraded to static partitioning); it is
// one relaxed atomic increment per successful steal, far off any hot
// path.
func (p *Pool) Steals() int64 { return p.steals.Load() }

// ScratchAllocs returns how many Scratch arenas the pool has allocated
// over its lifetime. In steady state (same stage shapes, same
// concurrency) the count is constant: every RunScratch grab is served
// off the free list. Observability for tests and serving-layer
// assertions; not part of any hot path.
func (p *Pool) ScratchAllocs() int64 { return p.allocs.Load() }

// ScratchBytes sums the backing-array footprints of the scratches
// currently idle on the free list. Between runs every scratch is idle,
// so the value is the pool's whole arena footprint; a value that stops
// growing across repeated identical stages is the no-per-stage-growth
// steady state the arenas exist for.
func (p *Pool) ScratchBytes() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, s := range p.free {
		total += 4*int64(len(s.i32)) + 8*int64(len(s.i64)) + int64(len(s.bools))
	}
	return total
}

// Run executes fn(i) for every i in [0, n), sharded across up to
// Workers() goroutines. fn must touch only state owned by its index.
// Run returns after every item has completed.
func (p *Pool) Run(n int, fn func(i int)) {
	p.RunScratch(n, func(i int, _ *Scratch) { fn(i) })
}

// RunCtx is Run with cancellation: workers observe ctx.Done() between
// items (counter scheduler) or chunks (stealing scheduler) and stop
// claiming new work once the context is cancelled. Items already
// started run to completion — fn is never interrupted mid-item — so on
// a non-nil return some suffix of the index space simply never ran.
// Returns ctx.Err() if the context was cancelled, nil otherwise.
func (p *Pool) RunCtx(ctx context.Context, n int, fn func(i int)) error {
	return p.RunScratchCtx(ctx, n, func(i int, _ *Scratch) { fn(i) })
}

// RunScratchCtx is RunScratch with the cancellation semantics of
// RunCtx.
func (p *Pool) RunScratchCtx(ctx context.Context, n int, fn func(i int, s *Scratch)) error {
	p.runScratch(n, ctx.Done(), fn)
	return ctx.Err()
}

// RunScratch is Run with a per-worker Scratch: all items executed by
// the same worker share one Scratch, which is Reset between items.
// Buffers obtained from the Scratch are valid only for the current
// item.
//
// Scheduling: each worker starts with a contiguous slice of the index
// range and drains it front-to-back in chunks; a worker that runs dry
// steals the top half of another worker's remaining range. Stealing is
// what keeps workers busy on skewed workloads (per-source replacement
// path work varies wildly with suffix length) without the per-item
// compare-and-swap cost of a shared counter. At small n the range
// bookkeeping cannot pay for itself, so the pool falls back to the
// plain atomic counter. The schedule never affects output: fn(i) owns
// index i's state under either strategy.
func (p *Pool) RunScratch(n int, fn func(i int, s *Scratch)) {
	p.runScratch(n, nil, fn)
}

// canceled reports whether done is closed. A nil done channel (the
// context-free entry points) never cancels; the non-blocking receive
// costs one channel poll per check, paid between items or chunks —
// never inside fn.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// runScratch dispatches to a scheduling strategy. done, when non-nil,
// is a cancellation signal: once closed, workers stop claiming new
// items (the current item or chunk still completes).
func (p *Pool) runScratch(n int, done <-chan struct{}, fn func(i int, s *Scratch)) {
	if n <= 0 {
		return
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers < 2 {
		s := p.grab()
		for i := 0; i < n; i++ {
			if canceled(done) {
				break
			}
			s.Reset()
			fn(i, s)
		}
		p.release(s)
		return
	}
	if n < stealMinPerWorker*workers || n > maxStealItems {
		p.runCounter(n, workers, done, fn)
		return
	}
	p.runStealing(n, workers, done, fn)
}

// runCounter shards items with a shared atomic counter: one CAS per
// item, perfect balance at granularity 1. Best when n is small enough
// that range bookkeeping would dominate.
func (p *Pool) runCounter(n, workers int, done <-chan struct{}, fn func(i int, s *Scratch)) {
	var wg sync.WaitGroup
	var next atomic.Int64
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := p.grab()
			defer p.release(s)
			for !canceled(done) {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				s.Reset()
				fn(i, s)
			}
		}()
	}
	wg.Wait()
}

// grab takes a Scratch off the free list, or allocates a fresh one.
func (p *Pool) grab() *Scratch {
	p.mu.Lock()
	defer p.mu.Unlock()
	if k := len(p.free); k > 0 {
		s := p.free[k-1]
		p.free = p.free[:k-1]
		return s
	}
	p.allocs.Add(1)
	return &Scratch{}
}

// release returns a Scratch to the free list for the next stage.
func (p *Pool) release(s *Scratch) {
	s.Reset()
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// Scratch is an arena of reusable typed buffers owned by one worker.
// Buffers are carved off growable backing arrays; Reset recycles them
// all without freeing, so steady-state use allocates nothing.
//
// Contents of returned buffers are unspecified (not zeroed): callers
// that need a sentinel fill must write it themselves, exactly as they
// would after make().
type Scratch struct {
	i32     []int32
	i32Used int
	i64     []int64
	i64Used int
	bools   []bool
	bUsed   int

	attach map[string]any
}

// Reset recycles every buffer handed out since the previous Reset.
// Attached values (Attach) survive: they are the per-worker caches that
// make cross-item reuse possible.
func (s *Scratch) Reset() {
	s.i32Used, s.i64Used, s.bUsed = 0, 0, 0
}

// grownCap returns the backing-array capacity for a carve-off that
// needs `need` elements when the current capacity is `have`: at least
// double, so a sequence of carve-offs reallocates O(log total) times
// rather than once per carve-off (growing to exactly `need` made every
// subsequent carve-off re-copy all live buffers — quadratic).
func grownCap(have, need int) int {
	c := 2 * have
	if c < need {
		c = need
	}
	return c
}

// Int32 returns an uninitialized length-n buffer valid until Reset.
func (s *Scratch) Int32(n int) []int32 {
	if s.i32Used+n > len(s.i32) {
		grown := make([]int32, grownCap(len(s.i32), s.i32Used+n))
		// Earlier buffers from this arena are still live; keep them.
		copy(grown, s.i32[:s.i32Used])
		s.i32 = grown
	}
	b := s.i32[s.i32Used : s.i32Used+n : s.i32Used+n]
	s.i32Used += n
	return b
}

// Int64 returns an uninitialized length-n buffer valid until Reset.
func (s *Scratch) Int64(n int) []int64 {
	if s.i64Used+n > len(s.i64) {
		grown := make([]int64, grownCap(len(s.i64), s.i64Used+n))
		copy(grown, s.i64[:s.i64Used])
		s.i64 = grown
	}
	b := s.i64[s.i64Used : s.i64Used+n : s.i64Used+n]
	s.i64Used += n
	return b
}

// Bool returns an uninitialized length-n buffer valid until Reset.
func (s *Scratch) Bool(n int) []bool {
	if s.bUsed+n > len(s.bools) {
		grown := make([]bool, grownCap(len(s.bools), s.bUsed+n))
		copy(grown, s.bools[:s.bUsed])
		s.bools = grown
	}
	b := s.bools[s.bUsed : s.bUsed+n : s.bUsed+n]
	s.bUsed += n
	return b
}

// Attach returns the per-worker value stored under key, constructing it
// with mk on first use. Attached values persist across Reset and across
// stages (via the pool free list); they are how workers keep expensive
// reusable structures — e.g. a Dijkstra arc builder — alive between
// items.
func (s *Scratch) Attach(key string, mk func() any) any {
	if s.attach == nil {
		s.attach = make(map[string]any, 2)
	}
	v, ok := s.attach[key]
	if !ok {
		v = mk()
		s.attach[key] = v
	}
	return v
}
