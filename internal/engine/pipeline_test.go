package engine

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestPipelineCoversEveryIndexInOrder: both stages run exactly once per
// item, and stage B never runs before its own stage A.
func TestPipelineCoversEveryIndexInOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			aRan := make([]atomic.Int32, n)
			bRan := make([]atomic.Int32, n)
			New(workers).PipelineScratch(n,
				func(i int, _ *Scratch) { aRan[i].Add(1) },
				func(i int, _ *Scratch) {
					if aRan[i].Load() != 1 {
						t.Errorf("workers=%d n=%d: stage B of %d ran before its stage A", workers, n, i)
					}
					bRan[i].Add(1)
				})
			for i := 0; i < n; i++ {
				if aRan[i].Load() != 1 || bRan[i].Load() != 1 {
					t.Fatalf("workers=%d n=%d: item %d ran A=%d B=%d times",
						workers, n, i, aRan[i].Load(), bRan[i].Load())
				}
			}
		}
	}
}

// TestPipelineDeterminism: per-index outputs flow A→B and are identical
// for every worker count — the contract that lets the MSRP solve keep
// its bit-identity guarantee on the pipelined schedule.
func TestPipelineDeterminism(t *testing.T) {
	const n = 700
	compute := func(workers int) []int64 {
		mid := make([]int64, n)
		out := make([]int64, n)
		New(workers).PipelineScratch(n,
			func(i int, s *Scratch) {
				buf := s.Int64(i%13 + 1)
				for j := range buf {
					buf[j] = int64(i+1) * int64(j+2)
				}
				var sum int64
				for _, v := range buf {
					sum += v
				}
				mid[i] = sum
			},
			func(i int, s *Scratch) {
				buf := s.Int32(i%7 + 1)
				for j := range buf {
					buf[j] = int32(j)
				}
				out[i] = mid[i]*2 + int64(buf[len(buf)-1])
			})
		return out
	}
	want := compute(1)
	for _, workers := range []int{2, 8} {
		got := compute(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// forcedOverlap drives the deadlocks-on-regression proof that the
// pipeline really overlaps stages across items: stage B of item 0 waits
// for stage A of item `blocked` to have *started*, and stage A of item
// `blocked` waits for stage B of item 0. A scheduler with a stage
// barrier (all A's before any B) can never run B(0) while A(blocked) is
// parked, so the two waits deadlock and the suite timeout reports it.
// On the pipelined schedule the cycle resolves: the worker that owns
// item 0 flows A(0)→B(0) while another worker is parked inside
// A(blocked), proving B of one item ran strictly inside A of another.
func forcedOverlap(t *testing.T, n, blocked int) {
	t.Helper()
	aBlockedEntered := make(chan struct{})
	b0Done := make(chan struct{})
	var aBlockedFinished atomic.Bool
	var overlapSeen atomic.Bool
	New(2).PipelineScratch(n,
		func(i int, _ *Scratch) {
			if i == blocked {
				close(aBlockedEntered)
				<-b0Done
				aBlockedFinished.Store(true)
			}
		},
		func(i int, _ *Scratch) {
			if i == 0 {
				<-aBlockedEntered
				if !aBlockedFinished.Load() {
					overlapSeen.Store(true)
				}
				close(b0Done)
			}
		})
	if !overlapSeen.Load() {
		t.Fatalf("n=%d blocked=%d: stage B of item 0 never observed stage A of item %d in flight",
			n, blocked, blocked)
	}
}

// TestPipelineForcedOverlapCounter exercises the counter scheduler
// (n below the stealing threshold): worker 1 parks in A(1) until B(0)
// has run.
func TestPipelineForcedOverlapCounter(t *testing.T) { forcedOverlap(t, 2, 1) }

// TestPipelineForcedOverlapStealing exercises the range-stealing
// scheduler: item n/2 is the second worker's first pop, parked in its
// stage A until B(0) has run on the other worker.
func TestPipelineForcedOverlapStealing(t *testing.T) { forcedOverlap(t, 64, 32) }

// TestPipelineForcedStealAccounting: the forced-steal workload from
// TestForcedSteal, run through the pipeline entry point — the blocked
// worker's remaining range must be stolen (both stages of each stolen
// item run on the thief), and the pool's steal counter must have
// recorded the transfers.
func TestPipelineForcedStealAccounting(t *testing.T) {
	const n = 1024
	const workers = 2
	const half = n / workers
	stuck := chunkSize(half)
	started := make(chan struct{})
	release := make(chan struct{})
	var done atomic.Int64
	execA := make([]*Scratch, n)
	execB := make([]*Scratch, n)
	p := New(workers)
	p.PipelineScratch(n,
		func(i int, s *Scratch) {
			execA[i] = s
			switch {
			case i == 0:
				close(started)
				<-release
			case i >= half:
				<-started
			}
		},
		func(i int, s *Scratch) {
			execB[i] = s
			if i != 0 && i >= stuck && done.Add(1) == int64(n-stuck) {
				close(release)
			}
		})
	for i := stuck; i < half; i++ {
		if execA[i] == execA[0] || execB[i] == execB[0] {
			t.Fatalf("item %d ran on the blocked worker", i)
		}
		if execA[i] != execB[i] {
			t.Fatalf("item %d split its stages across workers (depth-first contract)", i)
		}
	}
	if p.Steals() == 0 {
		t.Fatal("forced-steal pipeline recorded no steals")
	}
}

// TestPipelineCtxPreCancelled: a dead context runs nothing in either
// stage on any scheduler.
func TestPipelineCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct{ workers, n int }{
		{1, 100},  // sequential
		{4, 8},    // counter
		{4, 1000}, // stealing
	} {
		var ran atomic.Int64
		err := New(tc.workers).PipelineScratchCtx(ctx, tc.n,
			func(i int, _ *Scratch) { ran.Add(1) },
			func(i int, _ *Scratch) { ran.Add(1) })
		if err != context.Canceled {
			t.Fatalf("workers=%d n=%d: err = %v, want context.Canceled", tc.workers, tc.n, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d n=%d: ran %d stages on a pre-cancelled context", tc.workers, tc.n, ran.Load())
		}
	}
}

// TestPipelineCtxCancelMidChunkStealing pins the cancellation bound on
// the stealing path: a worker drains an already-claimed chunk without
// the scheduler re-checking ctx, so the pipeline's per-item entry
// check is what stops the remaining chunk items from paying their
// stage A. After a cancel lands, at most one item per worker (the one
// in flight) may end A-only; every other claimed item must run
// neither stage.
func TestPipelineCtxCancelMidChunkStealing(t *testing.T) {
	const n, workers = 1024, 2 // n >= stealMinPerWorker*workers: stealing path
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	aRan := make([]atomic.Bool, n)
	bRan := make([]atomic.Bool, n)
	err := New(workers).PipelineScratchCtx(ctx, n,
		func(i int, _ *Scratch) {
			aRan[i].Store(true)
			if i == 0 {
				cancel() // mid-chunk: the first chunk holds ~64 items
			}
		},
		func(i int, _ *Scratch) { bRan[i].Store(true) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	aOnly := 0
	for i := range aRan {
		if aRan[i].Load() && !bRan[i].Load() {
			aOnly++
		}
	}
	if aOnly > workers {
		t.Fatalf("%d items ran only stage A after cancellation, want at most %d (one in flight per worker)",
			aOnly, workers)
	}
}

// TestPipelineCtxCancelBetweenStages: cancelling during an item's stage
// A skips that item's stage B (the stage boundary is a cancellation
// point) but never interrupts a stage in flight.
func TestPipelineCtxCancelBetweenStages(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var aRan, bRan atomic.Int64
	err := New(1).PipelineScratchCtx(ctx, 10,
		func(i int, _ *Scratch) {
			aRan.Add(1)
			if i == 3 {
				cancel()
			}
		},
		func(i int, _ *Scratch) { bRan.Add(1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Sequential schedule: items 0..3 ran stage A; B of item 3 was
	// skipped at the stage boundary; no later item started.
	if got := aRan.Load(); got != 4 {
		t.Fatalf("stage A ran %d times, want 4", got)
	}
	if got := bRan.Load(); got != 3 {
		t.Fatalf("stage B ran %d times, want 3 (item 3's B skipped after cancel)", got)
	}
}
