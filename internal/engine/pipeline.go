package engine

import "context"

// Cross-stage pipeline scheduling.
//
// The repository's multi-stage fan-outs (the MSRP solve's §8.1
// per-source builds followed by the §8.2.1 seed-shard enumeration) have
// a dependency structure stricter than "n independent items" but looser
// than "stage barrier": item i's stage B needs item i's stage A, and
// nothing else. Running the stages as two Run calls inserts a barrier
// the dependencies never asked for — every item's stage B waits for the
// *slowest* item's stage A, and per-item state produced by stage A for
// stage B (Θ(aux) per item) stays live for all n items at once.
//
// PipelineScratchCtx removes the barrier: items flow through both
// stages as one schedulable unit, executed depth-first (a worker
// finishing item i's stage A immediately runs item i's stage B), with
// whole pending items stealable through the same range-stealing
// scheduler as RunScratch. Depth-first is deliberate on both axes the
// barrier hurts:
//
//   - Memory: at most one item per worker sits in the "stage A done,
//     stage B pending" window, so state released at the end of stage B
//     peaks at Θ(P·aux) instead of Θ(n·aux).
//   - Locality: item i's stage-A output is still cache-hot when its
//     stage B consumes it.
//
// Deferring stage B to a separate queue could shave the schedule
// further only when per-item stage costs are anti-correlated AND
// claiming order is adversarial; it would cost the memory bound above
// (the A-done/B-pending window would grow without limit). The fused
// schedule keeps the bound and is makespan-optimal whenever any single
// item's A+B chain is the critical path.

// PipelineScratchCtx executes stageA(i) then stageB(i) for every i in
// [0, n), sharded across up to Workers() goroutines with NO barrier
// between the stages across items: stage B of item i may run while
// stage A of item j is still running (or still unclaimed — pending
// items, both stages, migrate between workers via the stealing
// scheduler, whose transfers Steals() counts). Within one item the
// stages run back-to-back on the same worker, each on a freshly Reset
// scratch — stage A hands state to stage B through the item's own
// storage (or scratch attachments), never through scratch carve-offs.
//
// Determinism: both stages touch only state owned by index i, so like
// RunScratch the schedule cannot change the output — callers whose
// cross-item reduction is commutative and idempotent (e.g. a MinPut
// merge) get bit-identical results at any worker count.
//
// Cancellation matches RunScratchCtx, with the boundary refined to
// stages: ctx is observed before each item's stage A and again between
// its stage A and stage B (on top of the scheduler's between-chunk
// checks — a stealing worker drains an already-claimed chunk without
// re-checking, so the per-item entry check here is what keeps a
// cancelled run from paying up to a chunk's worth of stage-A work).
// On a non-nil return some items ran both stages, at most one per
// worker ran only stage A (the item in flight when the cancel landed),
// and the rest ran neither. Stages in flight are never interrupted.
func (p *Pool) PipelineScratchCtx(ctx context.Context, n int, stageA, stageB func(i int, s *Scratch)) error {
	done := ctx.Done()
	p.runScratch(n, done, func(i int, s *Scratch) {
		if canceled(done) {
			return // claimed after cancellation: run neither stage
		}
		stageA(i, s)
		if canceled(done) {
			return
		}
		s.Reset()
		stageB(i, s)
	})
	return ctx.Err()
}

// PipelineScratch is PipelineScratchCtx without cancellation.
func (p *Pool) PipelineScratch(n int, stageA, stageB func(i int, s *Scratch)) {
	_ = p.PipelineScratchCtx(context.Background(), n, stageA, stageB)
}
