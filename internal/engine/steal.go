package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Work-stealing index scheduler. The item space [0, n) is split into
// one contiguous range per worker, held as a packed (lo, hi) pair in a
// single atomic word. Owners pop chunks from the front (lo side);
// thieves take the top half from the back (hi side) of a victim's
// range. Both transitions are CASes on the same word, so a range is
// always partitioned exactly — no item can be claimed twice or lost.
//
// Termination uses a global count of unclaimed items, decremented when
// a chunk is popped (not when it finishes): once it reaches zero every
// item is owned by some worker's in-flight chunk, so thieves can exit
// and the WaitGroup handles completion.

const (
	// stealMinPerWorker is the fallback threshold: below this many
	// items per worker the plain atomic counter is cheaper than range
	// bookkeeping (and with so few items there is nothing to steal).
	stealMinPerWorker = 4

	// maxStealChunk caps how many items an owner claims in one pop, so
	// the bulk of a large range stays stealable even when the owner is
	// about to stall on a heavy item.
	maxStealChunk = 64

	// maxStealItems is the packing limit: lo and hi live in 32 bits
	// each. Larger item counts (never seen in practice — the graphs
	// cap out far earlier) fall back to the counter.
	maxStealItems = 1<<31 - 1
)

// wsRange is one worker's index range, padded so the CAS-hot bounds
// words of different workers never share a cache line.
type wsRange struct {
	bounds atomic.Uint64 // hi<<32 | lo
	_      [56]byte
}

func packRange(lo, hi int) uint64 { return uint64(hi)<<32 | uint64(uint32(lo)) }

func unpackRange(b uint64) (lo, hi int) { return int(uint32(b)), int(b >> 32) }

// chunkSize balances CAS amortization against steal granularity: an
// owner takes an eighth of its remaining range per pop, capped at
// maxStealChunk and floored at one, so big ranges amortize the CAS
// while small (or nearly drained) ranges go item by item — maximum
// balance exactly when balance starts to matter.
func chunkSize(remaining int) int {
	c := remaining / 8
	if c < 1 {
		c = 1
	}
	if c > maxStealChunk {
		c = maxStealChunk
	}
	return c
}

// runStealing executes fn over [0, n) with the range-stealing
// scheduler. Requires 2 <= workers <= n <= maxStealItems. A close of
// done stops workers from claiming further chunks: the chunk in flight
// completes, everything still unclaimed never runs.
func (p *Pool) runStealing(n, workers int, done <-chan struct{}, fn func(i int, s *Scratch)) {
	ranges := make([]wsRange, workers)
	for w := 0; w < workers; w++ {
		ranges[w].bounds.Store(packRange(w*n/workers, (w+1)*n/workers))
	}
	var unclaimed atomic.Int64
	unclaimed.Store(int64(n))

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			s := p.grab()
			defer p.release(s)
			self := &ranges[w].bounds
			for {
				// Drain the owned range chunk by chunk.
				for {
					if canceled(done) {
						return
					}
					b := self.Load()
					lo, hi := unpackRange(b)
					if lo >= hi {
						break
					}
					c := chunkSize(hi - lo)
					if !self.CompareAndSwap(b, packRange(lo+c, hi)) {
						continue // a thief moved hi; reload
					}
					unclaimed.Add(-int64(c))
					for i := lo; i < lo+c; i++ {
						s.Reset()
						fn(i, s)
					}
				}
				if !p.stealRange(ranges, w, &unclaimed, done) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// stealRange moves the top half (rounded up, so even a single-item
// range is stealable) of some victim's range into worker w's slot,
// scanning victims round-robin from w+1. It returns false once every
// item has been claimed (nothing left to steal anywhere). Rounding up
// matters for liveness, not just balance: rounding down would leave
// the bottom item with the victim forever, so a worker stalled on one
// heavy item would strand the last item of its range while every
// other worker sat idle.
func (p *Pool) stealRange(ranges []wsRange, w int, unclaimed *atomic.Int64, done <-chan struct{}) bool {
	for unclaimed.Load() > 0 {
		if canceled(done) {
			return false
		}
		for off := 1; off < len(ranges); off++ {
			victim := &ranges[(w+off)%len(ranges)].bounds
			b := victim.Load()
			lo, hi := unpackRange(b)
			if hi <= lo {
				continue
			}
			mid := hi - (hi-lo+1)/2
			if !victim.CompareAndSwap(b, packRange(lo, mid)) {
				continue
			}
			// Only worker w writes its own slot while it is empty, and
			// no thief touches an empty range, so a plain store is safe.
			ranges[w].bounds.Store(packRange(mid, hi))
			p.steals.Add(1)
			return true
		}
		runtime.Gosched()
	}
	return false
}
