package engine

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestRunCtxCompletesWithoutCancel: an uncancelled context behaves
// exactly like Run — every index executes, nil error.
func TestRunCtxCompletesWithoutCancel(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, n := range []int{0, 1, 7, 64, 1000} {
			var count atomic.Int64
			err := New(workers).RunCtx(context.Background(), n, func(i int) {
				count.Add(1)
			})
			if err != nil {
				t.Fatalf("workers=%d n=%d: err = %v", workers, n, err)
			}
			if int(count.Load()) != n {
				t.Fatalf("workers=%d n=%d: ran %d items", workers, n, count.Load())
			}
		}
	}
}

// TestRunCtxPreCancelled: a context cancelled before the call runs
// nothing (sequential, counter, and stealing paths).
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct{ workers, n int }{
		{1, 100},  // sequential
		{4, 8},    // counter (n < stealMinPerWorker*workers)
		{4, 1000}, // stealing
	} {
		ran := int64(0)
		var count = &ran
		err := New(tc.workers).RunCtx(ctx, tc.n, func(i int) {
			atomic.AddInt64(count, 1)
		})
		if err != context.Canceled {
			t.Fatalf("workers=%d n=%d: err = %v, want context.Canceled", tc.workers, tc.n, err)
		}
		if got := atomic.LoadInt64(count); got != 0 {
			t.Fatalf("workers=%d n=%d: ran %d items on a pre-cancelled context", tc.workers, tc.n, got)
		}
	}
}

// TestRunCtxSequentialCancelMidRun is the deterministic promptness
// assertion: on the sequential path, cancellation is observed before
// every item, so cancelling inside fn(5) means exactly items 0..5 ran
// — the cancel() has returned (the Done channel is closed) before the
// item-6 check happens.
func TestRunCtxSequentialCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	executed := 0
	err := New(1).RunCtx(ctx, 100, func(i int) {
		executed++
		if i == 5 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if executed != 6 {
		t.Fatalf("executed %d items, want exactly 6 (cancel inside item 5)", executed)
	}
}

// TestRunCtxStealingCancelMidRun: on the work-stealing path a cancel
// fired by the very first item bounds the damage to the chunks already
// in flight — nowhere near the full index space.
func TestRunCtxStealingCancelMidRun(t *testing.T) {
	const n = 100_000
	const workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	var executed atomic.Int64
	err := New(workers).RunCtx(ctx, n, func(i int) {
		executed.Add(1)
		if i == 0 {
			// Item 0 is the front of worker 0's range and thieves take
			// from the back, so worker 0 always runs it as its first item.
			cancel()
			close(release)
			return
		}
		// Every other item parks until the cancel has landed, pinning
		// each worker inside its current chunk: once released, workers
		// finish that chunk and the canceled check stops further claims.
		<-release
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// At most one in-flight chunk per worker ran — bounded by chunks,
	// not by n.
	if got := executed.Load(); got > workers*maxStealChunk {
		t.Fatalf("executed %d of %d items after immediate cancel; want <= %d (one chunk per worker)",
			got, n, workers*maxStealChunk)
	}
}

// TestRunCtxCounterCancelMidRun: same bound on the counter path, where
// cancellation is observed between single items.
func TestRunCtxCounterCancelMidRun(t *testing.T) {
	const n = 12 // < stealMinPerWorker*workers => counter scheduler
	const workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	release := make(chan struct{})
	var executed atomic.Int64
	err := New(workers).RunCtx(ctx, n, func(i int) {
		executed.Add(1)
		if i == 0 {
			cancel()
			close(release)
			return
		}
		// Everyone else parks until the cancel has landed, so no worker
		// can claim a post-cancel item: at most `workers` items run.
		<-release
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := executed.Load(); got > workers {
		t.Fatalf("executed %d items, want <= %d (one in-flight item per worker)", got, workers)
	}
}

// TestScratchGrowthGeometric asserts the arena reallocates O(log)
// times across repeated carve-offs, not once per carve-off. Regression:
// growth to exactly used+n re-copied every live buffer on every
// subsequent carve-off (quadratic in total carved bytes).
func TestScratchGrowthGeometric(t *testing.T) {
	const carves = 4096
	const each = 8
	s := &Scratch{}
	reallocs := 0
	prevCap := len(s.i32)
	for i := 0; i < carves; i++ {
		s.Int32(each)
		if c := len(s.i32); c != prevCap {
			reallocs++
			prevCap = c
		}
	}
	// Geometric doubling from `each` to carves*each: log2(4096) + 1
	// steps, rounded generously.
	if reallocs > 16 {
		t.Fatalf("Int32 arena reallocated %d times across %d carve-offs; want O(log), <= 16", reallocs, carves)
	}

	s2 := &Scratch{}
	reallocs = 0
	prevCap64 := len(s2.i64)
	prevCapB := len(s2.bools)
	for i := 0; i < carves; i++ {
		s2.Int64(each)
		s2.Bool(each)
		if c := len(s2.i64); c != prevCap64 {
			reallocs++
			prevCap64 = c
		}
		if c := len(s2.bools); c != prevCapB {
			reallocs++
			prevCapB = c
		}
	}
	if reallocs > 32 {
		t.Fatalf("Int64+Bool arenas reallocated %d times across %d carve-offs; want O(log), <= 32", reallocs, carves)
	}
}

// TestScratchAllocsCountsFreshArenas: the pool-level counter moves only
// when the free list misses.
func TestScratchAllocsCountsFreshArenas(t *testing.T) {
	p := New(1)
	if got := p.ScratchAllocs(); got != 0 {
		t.Fatalf("fresh pool ScratchAllocs = %d", got)
	}
	p.Run(4, func(int) {})
	if got := p.ScratchAllocs(); got != 1 {
		t.Fatalf("after one sequential stage ScratchAllocs = %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		p.Run(4, func(int) {})
	}
	if got := p.ScratchAllocs(); got != 1 {
		t.Fatalf("steady state ScratchAllocs = %d, want 1 (free list must serve repeats)", got)
	}
}
