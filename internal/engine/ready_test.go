package engine

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestReadyPipelineCoversEveryItem: every A/B item runs both stages
// exactly once (B after its own A), and every marked C item runs
// exactly once, never before its Mark — across worker counts, shapes,
// and mark origins (pre-marked vs marked from stage B).
func TestReadyPipelineCoversEveryItem(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, shape := range []struct{ nAB, nC int }{
			{0, 5}, {5, 0}, {1, 1}, {7, 13}, {64, 64},
		} {
			aRan := make([]atomic.Int32, shape.nAB)
			bRan := make([]atomic.Int32, shape.nAB)
			cRan := make([]atomic.Int32, shape.nC)
			marked := make([]atomic.Bool, shape.nC)
			rq := NewReadyQueue(shape.nC)
			// Half the C items are dependency-free (pre-marked); the
			// rest become ready as A/B items retire. With no A/B stage
			// there is no marker, so everything is pre-marked.
			pre := shape.nC / 2
			if shape.nAB == 0 {
				pre = shape.nC
			}
			for j := 0; j < pre; j++ {
				marked[j].Store(true)
				rq.Mark(j)
			}
			err := New(workers).PipelineReadyScratchCtx(context.Background(), shape.nAB,
				func(i int, _ *Scratch) { aRan[i].Add(1) },
				func(i int, _ *Scratch) {
					if aRan[i].Load() != 1 {
						t.Errorf("workers=%d %+v: B(%d) before its A", workers, shape, i)
					}
					bRan[i].Add(1)
					// Item i marks the C items congruent to it beyond
					// the pre-marked half, spreading marks across the
					// whole A/B stage.
					for j := pre + i; j < shape.nC; j += shape.nAB {
						marked[j].Store(true)
						rq.Mark(j)
					}
				},
				rq,
				func(j int, _ *Scratch) {
					if !marked[j].Load() {
						t.Errorf("workers=%d %+v: C(%d) ran before its Mark", workers, shape, j)
					}
					cRan[j].Add(1)
				})
			if err != nil {
				t.Fatal(err)
			}
			for i := range aRan {
				if aRan[i].Load() != 1 || bRan[i].Load() != 1 {
					t.Fatalf("workers=%d %+v: item %d ran A=%d B=%d times",
						workers, shape, i, aRan[i].Load(), bRan[i].Load())
				}
			}
			for j := range cRan {
				if cRan[j].Load() != 1 {
					t.Fatalf("workers=%d %+v: C item %d ran %d times", workers, shape, j, cRan[j].Load())
				}
			}
		}
	}
}

// TestReadyPipelineABFirstSequential pins the A/B-first policy at the
// deterministic workers=1 point: even with C items ready from the
// start, the single worker drains every A/B item before touching the
// queue.
func TestReadyPipelineABFirstSequential(t *testing.T) {
	const nAB, nC = 4, 3
	rq := NewReadyQueue(nC)
	for j := 0; j < nC; j++ {
		rq.Mark(j)
	}
	var order []string
	err := New(1).PipelineReadyScratchCtx(context.Background(), nAB,
		func(i int, _ *Scratch) { order = append(order, "A") },
		func(i int, _ *Scratch) { order = append(order, "B") },
		rq,
		func(j int, _ *Scratch) { order = append(order, "C") })
	if err != nil {
		t.Fatal(err)
	}
	want := "ABABABABCCC"
	got := ""
	for _, s := range order {
		got += s
	}
	if got != want {
		t.Fatalf("sequential order = %q, want %q", got, want)
	}
}

// TestReadyPipelineForcedOverlap is the deadlocks-on-regression proof
// that stage C really overlaps the A/B stages: stage A of the only
// A/B item parks until C(0) has run, and C(0) is ready from the
// start. A scheduler that barriers stage C behind the A/B stages can
// never run C(0) while A(0) is parked, so the wait cycles and the
// suite timeout reports it. On the readiness schedule worker 2 runs
// dry of A/B items immediately, pops C(0), and unparks A(0) — proving
// a C item ran strictly inside an A item's lifetime.
func TestReadyPipelineForcedOverlap(t *testing.T) {
	c0Done := make(chan struct{})
	var overlapSeen atomic.Bool
	rq := NewReadyQueue(1)
	rq.Mark(0)
	err := New(2).PipelineReadyScratchCtx(context.Background(), 1,
		func(i int, _ *Scratch) {
			<-c0Done
			overlapSeen.Store(true)
		},
		func(i int, _ *Scratch) {},
		rq,
		func(j int, _ *Scratch) { close(c0Done) })
	if err != nil {
		t.Fatal(err)
	}
	if !overlapSeen.Load() {
		t.Fatal("stage C never ran while stage A was in flight")
	}
}

// TestReadyPipelineDeterminism: per-index outputs are identical for
// every worker count even though pop order is schedule-dependent.
func TestReadyPipelineDeterminism(t *testing.T) {
	const nAB, nC = 40, 60
	compute := func(workers int) ([]int64, []int64) {
		mid := make([]int64, nAB)
		out := make([]int64, nC)
		rq := NewReadyQueue(nC)
		err := New(workers).PipelineReadyScratchCtx(context.Background(), nAB,
			func(i int, s *Scratch) {
				buf := s.Int64(i%9 + 1)
				for j := range buf {
					buf[j] = int64(i+1) * int64(j+3)
				}
				var sum int64
				for _, v := range buf {
					sum += v
				}
				mid[i] = sum
			},
			func(i int, _ *Scratch) {
				for j := i; j < nC; j += nAB {
					rq.Mark(j)
				}
			},
			rq,
			func(j int, s *Scratch) {
				buf := s.Int32(j%5 + 1)
				for k := range buf {
					buf[k] = int32(k + j)
				}
				out[j] = mid[j%nAB]*3 + int64(buf[len(buf)-1])
			})
		if err != nil {
			t.Fatal(err)
		}
		return mid, out
	}
	wantMid, wantOut := compute(1)
	for _, workers := range []int{2, 8} {
		gotMid, gotOut := compute(workers)
		for i := range wantMid {
			if gotMid[i] != wantMid[i] {
				t.Fatalf("workers=%d: mid[%d] = %d, want %d", workers, i, gotMid[i], wantMid[i])
			}
		}
		for j := range wantOut {
			if gotOut[j] != wantOut[j] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, j, gotOut[j], wantOut[j])
			}
		}
	}
}

// TestReadyPipelineCtxPreCancelled: a dead context runs no stage and
// leaves no goroutine parked.
func TestReadyPipelineCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		rq := NewReadyQueue(10)
		err := New(workers).PipelineReadyScratchCtx(ctx, 10,
			func(i int, _ *Scratch) { ran.Add(1) },
			func(i int, _ *Scratch) { ran.Add(1) },
			rq,
			func(j int, _ *Scratch) { ran.Add(1) })
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: ran %d stages on a pre-cancelled context", workers, ran.Load())
		}
	}
}

// TestReadyPipelineCtxCancelWakesParkedWorkers is the §8.2.2
// cancellation-promptness contract at the engine layer: workers parked
// on a queue whose marks will never arrive (their producers were
// cancelled) must be woken and released instead of hanging the solve.
// Stage A of item 0 cancels the run and returns; no stage B ever
// marks; the other workers are parked in pop by then or park right
// after — if abort did not wake them, this test would hang.
func TestReadyPipelineCtxCancelWakesParkedWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var bRan, cRan atomic.Int64
	rq := NewReadyQueue(50)
	err := New(4).PipelineReadyScratchCtx(ctx, 1,
		func(i int, _ *Scratch) { cancel() },
		func(i int, _ *Scratch) { bRan.Add(1) },
		rq,
		func(j int, _ *Scratch) { cRan.Add(1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if bRan.Load() != 0 {
		t.Fatalf("stage B ran %d times after a cancel at the A/B boundary", bRan.Load())
	}
	if cRan.Load() != 0 {
		t.Fatalf("stage C ran %d unmarked items", cRan.Load())
	}
}

// TestReadyQueueContractPanics: marking out of range or twice is a
// dependency-analysis bug and must fail loudly.
func TestReadyQueueContractPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	q := NewReadyQueue(2)
	q.Mark(1)
	mustPanic("double mark", func() { q.Mark(1) })
	mustPanic("out of range", func() { q.Mark(2) })
	mustPanic("negative", func() { q.Mark(-1) })
}
