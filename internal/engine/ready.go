package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Readiness-gated pipeline scheduling.
//
// PipelineScratchCtx (pipeline.go) covers the dependency shape "item
// i's stage B needs item i's stage A". The MSRP solve's last barrier —
// §8.2.1 seed enumeration feeding the §8.2.2 per-center Dijkstras —
// has a shape one step looser: a stage-C item (a center) depends on a
// *subset* of the A/B items (the sources that can contribute seed
// entries to it), and that subset is known only as a conservative
// over-approximation. No index arithmetic can express that, so the
// dependency edge becomes explicit: the caller tracks when each C item
// becomes runnable and publishes it through a ReadyQueue; workers that
// run out of A/B work drain the queue while other A/B items are still
// in flight. The barrier between the stage families disappears without
// the engine knowing anything about centers or seed tables.

// ReadyQueue is the hand-off between a pipeline's A/B stages and its
// readiness-gated stage C: a FIFO of stage-C item indices that have
// become runnable. Mark is safe to call from any goroutine (stage-B
// callbacks, or the caller before the run for items with no
// dependencies at all); everything Marked before the run or during it
// is eventually executed exactly once.
//
// A ReadyQueue is single-use: it carries one PipelineReadyScratchCtx
// call's stage-C item space [0, Total()) and is not reset.
type ReadyQueue struct {
	mu      sync.Mutex
	cond    sync.Cond
	queue   []int
	head    int
	marked  []bool
	popped  int
	aborted bool
}

// NewReadyQueue returns a queue for stage-C item indices [0, total).
func NewReadyQueue(total int) *ReadyQueue {
	q := &ReadyQueue{marked: make([]bool, total)}
	q.cond.L = &q.mu
	return q
}

// Total returns the stage-C item count.
func (q *ReadyQueue) Total() int { return len(q.marked) }

// Mark publishes item i as runnable. Every index must be marked at
// most once; marking out of range or twice panics — readiness is a
// correctness protocol (an item marked early races its inputs, an item
// marked twice would run twice), so a protocol violation is a bug in
// the caller's dependency analysis, not a recoverable condition.
// Writes made before Mark(i) are visible to the worker that executes
// item i.
func (q *ReadyQueue) Mark(i int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if i < 0 || i >= len(q.marked) {
		panic(fmt.Sprintf("engine: ReadyQueue.Mark(%d) out of range [0,%d)", i, len(q.marked)))
	}
	if q.marked[i] {
		panic(fmt.Sprintf("engine: ReadyQueue item %d marked twice", i))
	}
	q.marked[i] = true
	q.queue = append(q.queue, i)
	q.cond.Signal()
}

// pop blocks until an item is runnable and returns it, or returns
// false when every item has been handed out (the queue is drained) or
// the run was aborted by cancellation.
func (q *ReadyQueue) pop() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.aborted {
			return 0, false
		}
		if q.head < len(q.queue) {
			i := q.queue[q.head]
			q.head++
			q.popped++
			if q.popped == len(q.marked) {
				// Last item handed out: release every parked worker.
				q.cond.Broadcast()
			}
			return i, true
		}
		if q.popped == len(q.marked) {
			return 0, false
		}
		q.cond.Wait()
	}
}

// abort wakes every parked worker on cancellation; pending items are
// abandoned.
func (q *ReadyQueue) abort() {
	q.mu.Lock()
	q.aborted = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// PipelineReadyScratchCtx executes a three-stage, dependency-aware
// schedule: stageA(i) then stageB(i) for every i in [0, nAB) — fused
// depth-first per item exactly as in PipelineScratchCtx — plus
// stageC(j) for every j the ReadyQueue marks runnable (all rq.Total()
// of them, unless cancelled). The call returns once every A/B item and
// every stage-C item has completed.
//
// Scheduling is A/B-first and work-conserving: a worker claims pending
// A/B items while any remain (they are what make C items runnable, so
// draining them first maximizes downstream readiness), and switches to
// the ready queue when the A/B space is exhausted — while other
// workers are still *inside* their A/B items. That tail is where the
// cross-family overlap happens, and it is exactly the window the old
// stop-the-world barrier wasted: the schedule's C work starts as soon
// as any worker runs dry, not when the slowest A/B item finishes.
// Workers parked on an empty queue are woken by Mark, by the final
// pop, or by cancellation.
//
// Liveness contract: unless ctx is cancelled, the caller must
// guarantee that every stage-C index is eventually Marked — by stage-B
// callbacks or up front. (The MSRP caller's invariant: every center's
// remaining-contributor count reaches zero once the last contributing
// source retires inside stage B.) A caller that under-marks deadlocks
// its drain — deliberately so; the forced-overlap regression tests
// rely on a mis-scheduled run hanging loudly rather than finishing
// with a silently narrowed stage.
//
// Determinism: all three stages touch only state owned by their index,
// so although pop order is schedule-dependent, outputs are not.
// Cancellation: ctx is observed before each A/B item, between its
// stages, and before each C item; parked workers are woken promptly.
// Stages in flight are never interrupted.
func (p *Pool) PipelineReadyScratchCtx(ctx context.Context, nAB int, stageA, stageB func(i int, s *Scratch), rq *ReadyQueue, stageC func(i int, s *Scratch)) error {
	done := ctx.Done()
	total := nAB + rq.Total()
	if total == 0 {
		return ctx.Err()
	}
	if done != nil {
		// Wake workers parked in rq.pop the moment ctx dies; the
		// watcher itself dies with the run.
		finished := make(chan struct{})
		defer close(finished)
		go func() {
			select {
			case <-done:
				rq.abort()
			case <-finished:
			}
		}()
	}
	workers := p.workers
	if workers > total {
		workers = total
	}
	var next atomic.Int64
	run := func(s *Scratch) {
		for {
			if canceled(done) {
				return
			}
			if i := int(next.Add(1)) - 1; i < nAB {
				s.Reset()
				stageA(i, s)
				if canceled(done) {
					return
				}
				s.Reset()
				stageB(i, s)
				continue
			}
			j, ok := rq.pop()
			if !ok || canceled(done) {
				return
			}
			s.Reset()
			stageC(j, s)
		}
	}
	if workers < 2 {
		s := p.grab()
		run(s)
		p.release(s)
		return ctx.Err()
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			s := p.grab()
			defer p.release(s)
			run(s)
		}()
	}
	wg.Wait()
	return ctx.Err()
}
