package engine

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			p := New(workers)
			hits := make([]int32, n)
			var mu sync.Mutex
			total := 0
			p.Run(n, func(i int) {
				hits[i]++
				mu.Lock()
				total++
				mu.Unlock()
			})
			if total != n {
				t.Fatalf("workers=%d n=%d: ran %d items", workers, n, total)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestNewClampsWorkers(t *testing.T) {
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("New(0).Workers() = %d", w)
	}
	if w := New(-3).Workers(); w < 1 {
		t.Fatalf("New(-3).Workers() = %d", w)
	}
	if w := New(7).Workers(); w != 7 {
		t.Fatalf("New(7).Workers() = %d", w)
	}
}

// TestDeterminism: the canonical engine contract — per-index outputs are
// identical for every worker count because fn(i) owns index i's state.
func TestDeterminism(t *testing.T) {
	const n = 500
	compute := func(workers int) []int64 {
		out := make([]int64, n)
		New(workers).RunScratch(n, func(i int, s *Scratch) {
			buf := s.Int64(i + 1)
			for j := range buf {
				buf[j] = int64(i) * int64(j+1)
			}
			var sum int64
			for _, v := range buf {
				sum += v
			}
			out[i] = sum
		})
		return out
	}
	want := compute(1)
	for _, workers := range []int{2, 4, 16} {
		got := compute(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestForcedSteal proves the stealing path actually transfers work:
// item 0 blocks worker 0 until every item outside worker 0's first
// chunk has completed, so the rest of worker 0's range can only finish
// if the other worker steals it — all of it, including the range's
// last item (the ceil-half rounding). If stealing is broken or a tail
// item gets stranded, the test deadlocks and the suite's timeout
// reports it loudly.
func TestForcedSteal(t *testing.T) {
	const n = 1024
	const workers = 2
	const half = n / workers
	// Worker 0's first pop claims exactly chunkSize(half) items, because
	// worker 1 cannot shrink worker 0's range before then: worker 1's
	// own first item waits for `started`, which closes inside fn(0) —
	// after worker 0's claiming CAS.
	stuck := chunkSize(half)
	started := make(chan struct{})
	release := make(chan struct{})
	var done atomic.Int64       // completions outside worker 0's first chunk
	exec := make([]*Scratch, n) // which worker's scratch ran each item
	New(workers).RunScratch(n, func(i int, s *Scratch) {
		exec[i] = s
		switch {
		case i == 0:
			close(started)
			<-release
		case i >= half:
			<-started
			fallthrough
		default:
			if i >= stuck && done.Add(1) == int64(n-stuck) {
				close(release)
			}
		}
	})
	// At release time every item outside [0, stuck) had completed, and
	// worker 0 was still parked inside fn(0) — so every item of its
	// remaining range [stuck, half) was stolen and ran on the other
	// worker's scratch. "Every", not "some".
	for i := stuck; i < half; i++ {
		if exec[i] == exec[0] {
			t.Fatalf("item %d ran on the blocked worker", i)
		}
	}
}

// TestStealingMatchesCounter runs the same workload through both
// scheduling strategies (small n forces the counter, large n the
// stealing path) and checks identical per-index output.
func TestStealingMatchesCounter(t *testing.T) {
	for _, n := range []int{8, 64, 1000, 4097} {
		for _, workers := range []int{2, 3, 8} {
			out := make([]int64, n)
			New(workers).Run(n, func(i int) {
				out[i] = int64(i)*3 + 1
			})
			for i := range out {
				if out[i] != int64(i)*3+1 {
					t.Fatalf("n=%d workers=%d: out[%d] = %d", n, workers, i, out[i])
				}
			}
		}
	}
}

func TestChunkSizeBounds(t *testing.T) {
	for _, remaining := range []int{1, 2, 7, 8, 100, 1 << 20} {
		c := chunkSize(remaining)
		if c < 1 || c > maxStealChunk || c > remaining {
			t.Fatalf("chunkSize(%d) = %d", remaining, c)
		}
	}
}

func TestRangePacking(t *testing.T) {
	cases := [][2]int{{0, 0}, {0, 1}, {5, 9}, {0, maxStealItems}, {maxStealItems - 1, maxStealItems}}
	for _, c := range cases {
		lo, hi := unpackRange(packRange(c[0], c[1]))
		if lo != c[0] || hi != c[1] {
			t.Fatalf("pack/unpack(%d,%d) = (%d,%d)", c[0], c[1], lo, hi)
		}
	}
}

func TestScratchBuffersDisjoint(t *testing.T) {
	s := &Scratch{}
	a := s.Int32(10)
	b := s.Int32(10)
	for i := range a {
		a[i] = 1
	}
	for i := range b {
		b[i] = 2
	}
	for i := range a {
		if a[i] != 1 {
			t.Fatal("second buffer clobbered the first")
		}
	}
	c := s.Bool(5)
	d := s.Bool(5)
	c[0], d[0] = true, false
	if !c[0] {
		t.Fatal("bool buffers overlap")
	}
	e := s.Int64(4)
	f := s.Int64(4)
	e[0], f[0] = 7, 9
	if e[0] != 7 {
		t.Fatal("int64 buffers overlap")
	}
}

func TestScratchReuseAfterReset(t *testing.T) {
	s := &Scratch{}
	a := s.Int32(100)
	first := &a[0]
	s.Reset()
	b := s.Int32(100)
	if &b[0] != first {
		t.Fatal("Reset did not recycle the backing array")
	}
}

func TestScratchAttachPersists(t *testing.T) {
	s := &Scratch{}
	made := 0
	mk := func() any { made++; return &made }
	v1 := s.Attach("k", mk)
	s.Reset()
	v2 := s.Attach("k", mk)
	if v1 != v2 || made != 1 {
		t.Fatalf("Attach did not persist across Reset (made=%d)", made)
	}
}

// TestPoolFreeListCarriesScratch: the same scratch (and thus its
// attachments) flows from one sequential stage to the next.
func TestPoolFreeListCarriesScratch(t *testing.T) {
	p := New(1)
	var seen any
	p.RunScratch(1, func(i int, s *Scratch) {
		seen = s.Attach("x", func() any { return new(int) })
	})
	p.RunScratch(1, func(i int, s *Scratch) {
		if got := s.Attach("x", func() any { return new(int) }); got != seen {
			t.Error("free list did not reuse the scratch between stages")
		}
	})
}

func TestRunScratchSteadyStateAllocs(t *testing.T) {
	p := New(1)
	work := func() {
		p.RunScratch(8, func(i int, s *Scratch) {
			buf := s.Int32(1 << 12)
			buf[0] = int32(i)
		})
	}
	work() // warm the arena
	allocs := testing.AllocsPerRun(20, work)
	if allocs > 2 { // the closure itself may allocate; buffers must not
		t.Fatalf("steady-state RunScratch allocates %.1f objects/run", allocs)
	}
}
