package pqueue

import (
	"sort"
	"testing"
	"testing/quick"

	"msrp/internal/xrand"
)

func TestPushPopSorted(t *testing.T) {
	var h Heap
	keys := []int64{5, 3, 8, 1, 9, 2, 7}
	for i, k := range keys {
		h.Push(k, int32(i))
	}
	want := append([]int64(nil), keys...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for _, w := range want {
		if got := h.Pop(); got.Key != w {
			t.Fatalf("popped %d, want %d", got.Key, w)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("len = %d after draining", h.Len())
	}
}

func TestTieBreakByValue(t *testing.T) {
	var h Heap
	h.Push(4, 30)
	h.Push(4, 10)
	h.Push(4, 20)
	if v := h.Pop().Value; v != 10 {
		t.Fatalf("first tie pop = %d", v)
	}
	if v := h.Pop().Value; v != 20 {
		t.Fatalf("second tie pop = %d", v)
	}
	if v := h.Pop().Value; v != 30 {
		t.Fatalf("third tie pop = %d", v)
	}
}

func TestReset(t *testing.T) {
	var h Heap
	h.Push(1, 1)
	h.Push(2, 2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset did not empty heap")
	}
	h.Push(9, 9)
	if got := h.Pop(); got.Key != 9 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestPeek(t *testing.T) {
	var h Heap
	h.Push(7, 1)
	h.Push(3, 2)
	if h.Peek().Key != 3 {
		t.Fatal("Peek wrong")
	}
	if h.Len() != 2 {
		t.Fatal("Peek must not remove")
	}
}

func TestGrow(t *testing.T) {
	var h Heap
	h.Grow(100)
	for i := 0; i < 100; i++ {
		h.Push(int64(100-i), int32(i))
	}
	if h.Len() != 100 {
		t.Fatal("push after Grow failed")
	}
	if h.Pop().Key != 1 {
		t.Fatal("min wrong after Grow")
	}
}

func TestQuickHeapOrder(t *testing.T) {
	f := func(raw []int16) bool {
		var h Heap
		for i, k := range raw {
			h.Push(int64(k), int32(i))
		}
		prev := int64(-1 << 62)
		for h.Len() > 0 {
			it := h.Pop()
			if it.Key < prev {
				return false
			}
			prev = it.Key
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInterleaving(t *testing.T) {
	rng := xrand.New(1)
	var h Heap
	var model []int64
	for op := 0; op < 5000; op++ {
		if h.Len() == 0 || rng.Intn(2) == 0 {
			k := int64(rng.Intn(1000))
			h.Push(k, int32(op))
			model = append(model, k)
		} else {
			it := h.Pop()
			// Find and remove the minimum from the model.
			minIdx := 0
			for i, k := range model {
				if k < model[minIdx] {
					minIdx = i
				}
			}
			if it.Key != model[minIdx] {
				t.Fatalf("op %d: popped %d, model min %d", op, it.Key, model[minIdx])
			}
			model[minIdx] = model[len(model)-1]
			model = model[:len(model)-1]
		}
	}
}

func BenchmarkPushPop(b *testing.B) {
	rng := xrand.New(1)
	var h Heap
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(int64(rng.Intn(1<<20)), int32(i))
		if h.Len() > 1024 {
			for h.Len() > 0 {
				h.Pop()
			}
		}
	}
}
