// Package pqueue provides a minimal 4-ary min-heap used by the
// Dijkstra runs over the paper's auxiliary graphs.
//
// The heap stores (key, value) pairs where key is an int64 priority
// (a path length) and value an int32 node id. It is deliberately not
// an indexed heap: Dijkstra uses lazy deletion (push duplicates, skip
// stale pops), which benchmarks faster than decrease-key for the sparse
// auxiliary graphs this repository builds, and keeps the structure
// trivially correct.
//
// The branching factor is 4 rather than 2: sift-down — the cost center
// of a pop-heavy Dijkstra workload — then does half the levels, and
// the four children of a node sit in one or two cache lines (a d=4
// node's children span 64 bytes of the 12-byte Item array), trading
// strictly local extra comparisons for fewer cache-missing level hops.
// Pop order is unaffected: the heap's total order on (Key, Value) has
// a unique minimum, so any arity pops the same sequence (the
// determinism contract the solvers rely on). BenchmarkHeapArity
// measures the switch against a reference binary heap on
// §8.1/§8.2.2-shaped auxiliary-graph workloads.
package pqueue

// Item is a heap entry: Key orders the heap, Value identifies the node.
type Item struct {
	Key   int64
	Value int32
}

// Heap is a 4-ary min-heap of Items ordered by Key (ties broken by
// Value for determinism). The zero value is an empty heap ready to use.
type Heap struct {
	items []Item
}

// arity is the heap branching factor. 4 halves the sift-down depth
// against binary at the cost of up to 3 extra (cache-local)
// comparisons per level — the winning trade for pop-heavy Dijkstra.
const arity = 4

// Len returns the number of entries.
func (h *Heap) Len() int { return len(h.items) }

// Reset empties the heap, retaining capacity.
func (h *Heap) Reset() { h.items = h.items[:0] }

// Grow reserves capacity for at least n additional entries.
func (h *Heap) Grow(n int) {
	if cap(h.items)-len(h.items) < n {
		next := make([]Item, len(h.items), len(h.items)+n)
		copy(next, h.items)
		h.items = next
	}
}

// Push inserts an entry.
func (h *Heap) Push(key int64, value int32) {
	h.items = append(h.items, Item{Key: key, Value: value})
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum entry. It panics on an empty
// heap; callers always guard with Len.
func (h *Heap) Pop() Item {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the minimum entry without removing it.
func (h *Heap) Peek() Item { return h.items[0] }

// lessItem is the heap order: by Key, ties broken by Value. The total
// order has a unique minimum, which is what makes pop order (and thus
// Dijkstra output) independent of the branching factor.
func lessItem(a, b Item) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Value < b.Value
}

// up and down sift with a moving hole: the displaced item rides in a
// register and is stored exactly once at its final slot, so each level
// costs one 12-byte move instead of a three-move swap.

func (h *Heap) up(i int) {
	items := h.items
	it := items[i]
	for i > 0 {
		parent := (i - 1) / arity
		pv := items[parent]
		if !lessItem(it, pv) {
			break
		}
		items[i] = pv
		i = parent
	}
	items[i] = it
}

func (h *Heap) down(i int) {
	items := h.items
	n := len(items)
	it := items[i]
	for {
		first := arity*i + 1
		if first >= n {
			break
		}
		last := first + arity
		if last > n {
			last = n
		}
		smallest := first
		sv := items[first]
		for c := first + 1; c < last; c++ {
			if cv := items[c]; lessItem(cv, sv) {
				smallest, sv = c, cv
			}
		}
		if !lessItem(sv, it) {
			break
		}
		items[i] = sv
		i = smallest
	}
	items[i] = it
}
