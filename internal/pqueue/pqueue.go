// Package pqueue provides a minimal binary min-heap used by the
// Dijkstra runs over the paper's auxiliary graphs.
//
// The heap stores (key, value) pairs where key is an int64 priority
// (a path length) and value an int32 node id. It is deliberately not
// an indexed heap: Dijkstra uses lazy deletion (push duplicates, skip
// stale pops), which benchmarks faster than decrease-key for the sparse
// auxiliary graphs this repository builds, and keeps the structure
// trivially correct.
package pqueue

// Item is a heap entry: Key orders the heap, Value identifies the node.
type Item struct {
	Key   int64
	Value int32
}

// Heap is a binary min-heap of Items ordered by Key (ties broken by
// Value for determinism). The zero value is an empty heap ready to use.
type Heap struct {
	items []Item
}

// Len returns the number of entries.
func (h *Heap) Len() int { return len(h.items) }

// Reset empties the heap, retaining capacity.
func (h *Heap) Reset() { h.items = h.items[:0] }

// Grow reserves capacity for at least n additional entries.
func (h *Heap) Grow(n int) {
	if cap(h.items)-len(h.items) < n {
		next := make([]Item, len(h.items), len(h.items)+n)
		copy(next, h.items)
		h.items = next
	}
}

// Push inserts an entry.
func (h *Heap) Push(key int64, value int32) {
	h.items = append(h.items, Item{Key: key, Value: value})
	h.up(len(h.items) - 1)
}

// Pop removes and returns the minimum entry. It panics on an empty
// heap; callers always guard with Len.
func (h *Heap) Pop() Item {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// Peek returns the minimum entry without removing it.
func (h *Heap) Peek() Item { return h.items[0] }

func (h *Heap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Value < b.Value
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
