package pqueue_test

// Binary-vs-4-ary micro-benchmark on the heap workload the §8.1 and
// §8.2.2 auxiliary-graph Dijkstras generate: a hub source fanning out
// to every node (the [s]→[c]/[c,e] arc layer) plus dense cross arcs
// between the block nodes (the [c']→[c,e] layer), driven with lazy
// deletion exactly like dijkstra.Graph.Run. The reference binary heap
// below is the pre-4-ary implementation, kept verbatim so the
// benchmark keeps measuring the actual switch.

import (
	"testing"

	"msrp/internal/pqueue"
	"msrp/internal/xrand"
)

// binHeap is the reference binary min-heap (the package's previous
// implementation, same Item layout and tie-breaking).
type binHeap struct {
	items []pqueue.Item
}

func (h *binHeap) Len() int { return len(h.items) }

func (h *binHeap) Push(key int64, value int32) {
	h.items = append(h.items, pqueue.Item{Key: key, Value: value})
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *binHeap) Pop() pqueue.Item {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	n := last
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

func (h *binHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Value < b.Value
}

// auxGraph is a compact CSR mimicking the §8.1/§8.2.2 auxiliary shape:
// node 0 is the source with an arc to every other node (compressed
// canonical prefixes, weights spread like path lengths), and every
// block node has `cross` arcs to pseudo-random other nodes (the
// landmark/center hop layer).
type auxGraph struct {
	off []int32
	to  []int32
	w   []int32
}

func buildAuxGraph(n, cross int, seed uint64) *auxGraph {
	rng := xrand.New(seed)
	type arc struct{ from, to, w int32 }
	arcs := make([]arc, 0, n-1+(n-1)*cross)
	for v := 1; v < n; v++ {
		arcs = append(arcs, arc{0, int32(v), int32(rng.Intn(n/2) + 1)})
		for c := 0; c < cross; c++ {
			t := int32(rng.Intn(n-1) + 1)
			arcs = append(arcs, arc{int32(v), t, int32(rng.Intn(16) + 1)})
		}
	}
	g := &auxGraph{
		off: make([]int32, n+1),
		to:  make([]int32, len(arcs)),
		w:   make([]int32, len(arcs)),
	}
	for _, a := range arcs {
		g.off[a.from+1]++
	}
	for v := 0; v < n; v++ {
		g.off[v+1] += g.off[v]
	}
	cursor := append([]int32(nil), g.off[:n]...)
	for _, a := range arcs {
		g.to[cursor[a.from]] = a.to
		g.w[cursor[a.from]] = a.w
		cursor[a.from]++
	}
	return g
}

// heapAPI is the minimal surface the Dijkstra driver needs; both heap
// implementations satisfy it.
type heapAPI interface {
	Len() int
	Push(key int64, value int32)
	Pop() pqueue.Item
}

// dijkstraOver runs the lazy-deletion Dijkstra loop of
// dijkstra.Graph.Run over g with the given heap, returning a distance
// checksum (so the work cannot be optimized away and the two heaps can
// be cross-checked).
func dijkstraOver(g *auxGraph, dist []int64, h heapAPI) int64 {
	for i := range dist {
		dist[i] = 1 << 62
	}
	dist[0] = 0
	h.Push(0, 0)
	for h.Len() > 0 {
		it := h.Pop()
		v := it.Value
		if it.Key != dist[v] {
			continue
		}
		for i := g.off[v]; i < g.off[v+1]; i++ {
			to, w := g.to[i], int64(g.w[i])
			if nd := it.Key + w; nd < dist[to] {
				dist[to] = nd
				h.Push(nd, to)
			}
		}
	}
	var sum int64
	for _, d := range dist {
		sum += d
	}
	return sum
}

// TestArityMatchesBinary: the 4-ary heap pops the same sequence as the
// binary reference (the (Key, Value) total order has a unique minimum,
// so arity cannot change pop order), hence identical Dijkstra output.
func TestArityMatchesBinary(t *testing.T) {
	g := buildAuxGraph(2000, 4, 7)
	distQ := make([]int64, 2000)
	distB := make([]int64, 2000)
	var quad pqueue.Heap
	qSum := dijkstraOver(g, distQ, &quad)
	bSum := dijkstraOver(g, distB, &binHeap{})
	for i := range distQ {
		if distQ[i] != distB[i] {
			t.Fatalf("dist[%d]: 4-ary %d, binary %d", i, distQ[i], distB[i])
		}
	}
	if qSum != bSum {
		t.Fatalf("checksums differ: %d vs %d", qSum, bSum)
	}
}

// BenchmarkHeapArity compares binary vs 4-ary sift behaviour on the
// auxiliary-graph workloads: "sc" approximates a §8.1 source–center
// graph (moderate nodes, denser cross arcs), "cl" a §8.2.2
// center–landmark graph (more nodes, sparser crossings).
func BenchmarkHeapArity(b *testing.B) {
	workloads := []struct {
		name     string
		n, cross int
	}{
		{"sc_n4k_x8", 4_000, 8},
		{"cl_n20k_x3", 20_000, 3},
	}
	for _, wl := range workloads {
		g := buildAuxGraph(wl.n, wl.cross, uint64(wl.n))
		dist := make([]int64, wl.n)
		b.Run(wl.name+"/4ary", func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				var h pqueue.Heap
				sink += dijkstraOver(g, dist, &h)
			}
			_ = sink
		})
		b.Run(wl.name+"/binary", func(b *testing.B) {
			var sink int64
			for i := 0; i < b.N; i++ {
				sink += dijkstraOver(g, dist, &binHeap{})
			}
			_ = sink
		})
	}
}
