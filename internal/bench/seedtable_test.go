package bench

import (
	"runtime"
	"testing"

	"msrp/internal/rp"
)

// TestSeedTablePreprocessSpeedup asserts the E13 acceptance criterion:
// ≥ 1.5× wall-clock preprocess speedup at Parallelism=8 over
// Parallelism=1 on the skewed seed-table-heavy instance — the number
// the sharded §8.2.1 build plus work stealing must clear over the
// fixed-chunk engine, which left workers idle on this family. Like
// TestSigmaSourceSpeedup, the wall-clock assertion needs ≥ 8 CPUs and
// an uninstrumented build; everywhere else the test still runs both
// configurations on the quick instance and checks bit-identical output
// and a rehash-free seed build.
func TestSeedTablePreprocessSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size skewed σ-source solves take seconds")
	}
	assertSpeedup := runtime.NumCPU() >= 8 && !raceEnabled
	inst := NewSeedTableInstance(!assertSpeedup) // quick when identity-only
	seqRes, seqStats, seqTime, err := inst.Preprocess(1)
	if err != nil {
		t.Fatal(err)
	}
	parRes, parStats, parTime, err := inst.Preprocess(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqRes {
		if d := rp.Diff(seqRes[i], parRes[i]); d != "" {
			t.Fatalf("parallel output differs from sequential for source %d: %s",
				inst.Sources[i], d)
		}
	}
	if seqStats.SeedCount == 0 {
		t.Fatal("instance fed nothing into the seed table — E13 is not measuring the §8.2.1 build")
	}
	for _, st := range []struct {
		name     string
		rehashes int
	}{{"sequential", seqStats.SeedRehashes}, {"parallel", parStats.SeedRehashes}} {
		if st.rehashes != 0 {
			t.Errorf("%s preprocess paid %d seed-table rehashes despite presizing", st.name, st.rehashes)
		}
	}
	if !assertSpeedup {
		t.Skipf("NumCPU=%d race=%v: skipping the wall-clock speedup assertion (needs >= 8 CPUs, no -race)",
			runtime.NumCPU(), raceEnabled)
	}
	speedup := float64(seqTime) / float64(parTime)
	t.Logf("n=%d m=%d σ=%d: sequential %v, parallel(8) %v, speedup %.2fx",
		inst.N, inst.M, inst.Sigma, seqTime, parTime, speedup)
	if speedup < 1.5 {
		t.Fatalf("speedup %.2fx < 1.5x at Parallelism=8 (sequential %v, parallel %v)",
			speedup, seqTime, parTime)
	}
}

// BenchmarkSeedTablePreprocess benchmarks the skewed preprocess across
// Parallelism values on the quick instance (go test -bench SeedTable).
func BenchmarkSeedTablePreprocess(b *testing.B) {
	inst := NewSeedTableInstance(true)
	for _, par := range []int{1, 2, 8} {
		b.Run(map[int]string{1: "p1", 2: "p2", 8: "p8"}[par], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := inst.Preprocess(par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
