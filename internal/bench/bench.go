// Package bench is the experiment harness that regenerates every
// "table and figure" of the reproduction (the paper is pure theory, so
// each experiment measures the empirical counterpart of a theorem or
// lemma; see DESIGN.md §5 and EXPERIMENTS.md for the mapping).
//
// Each experiment is a function that runs a workload sweep and prints
// an aligned table plus a machine-readable CSV block. The cmd/msrp-bench
// tool invokes them by id; bench_test.go exposes the hot loops to
// `go test -bench`.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table accumulates rows and prints them with aligned columns plus a
// trailing CSV block (prefixed "csv," for trivial grepping).
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", x)
		case time.Duration:
			row[i] = formatDuration(x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.rows = append(t.rows, row)
}

// Print writes the aligned table and CSV block to w.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	printRow(rule)
	for _, row := range t.rows {
		printRow(row)
	}
	// CSV block.
	fmt.Fprintf(w, "  csv,%s\n", strings.Join(t.Columns, ","))
	for _, row := range t.rows {
		fmt.Fprintf(w, "  csv,%s\n", strings.Join(row, ","))
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// timed runs fn once and returns the wall-clock duration.
func timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Config selects experiment sizes.
type Config struct {
	// Quick shrinks every sweep to test-suite sizes (seconds, not
	// minutes). The full sizes are used by cmd/msrp-bench.
	Quick bool
	// RecordPath, when non-empty, asks experiments that support
	// machine-readable records (E20) to write a bench.Envelope there —
	// the committed BENCH_*.json trajectory. Experiments without a
	// record shape ignore it.
	RecordPath string
}

// Experiment is a runnable experiment with an id matching DESIGN.md §5.
type Experiment struct {
	ID    string
	Name  string
	Claim string
	Run   func(w io.Writer, cfg Config) error
}

// All returns every experiment in id order.
func All() []Experiment {
	return []Experiment{
		{"E1", "SSRP scaling", "Theorem 14: Õ(m√n + n²) vs Õ(mn) baselines", RunE1},
		{"E2", "MSRP σ-scaling", "Theorem 1: Õ(m√(nσ) + σn²); beats σ independent SSRP runs", RunE2},
		{"E3", "Landmark set sizes", "Lemma 4: |L_k| = Õ(√(nσ)/2^k)", RunE3},
		{"E4", "Exactness at paper constants", "Lemmas 9/12/13: failure probability ≤ 1/n", RunE4},
		{"E5", "Exactness across families (boosted)", "end-to-end correctness vs brute force", RunE5},
		{"E6", "BMM reduction", "Theorem 28: C=A×B via √(n/σ) MSRP calls", RunE6},
		{"E7", "Scaling-trick ablation", "§3: leveled L_k vs flat landmark scans", RunE7},
		{"E8", "Crossover map", "fastest algorithm per (n, σ)", RunE8},
		{"E9", "Auxiliary graph sizes", "§7.1/§8 graph size formulas", RunE9},
		{"E10", "Assembly-mode ablation", "default sound assembly vs the paper's literal §8.3", RunE10},
		{"E11", "Preserver sizes", "fault-tolerant BFS subgraph vs the Parter–Peleg n^1.5 bound", RunE11},
		{"E12", "Engine parallel scaling", "σ-source solve and batched Oracle vs Parallelism (near-linear to GOMAXPROCS)", RunE12},
		{"E13", "Seed-table shard + work-stealing scaling", "sharded §8.2.1 build and steal-half scheduling on a skewed σ-source family", RunE13},
		{"E14", "Pipelined vs barrier solve", "cross-stage §8.1→§8.2.1 pipelining: wall time and peak path-state bytes", RunE14},
		{"E15", "Provenance plane overhead", "TrackPaths at σ=16: bit-identical lengths, retained ProvenanceBytes vs the transient PeakSeedPathBytes", RunE15},
		{"E20", "Streaming past the seed merge", "partitioned streaming merge + readiness-gated §8.2.2 overlap vs both barrier schedules: wall time, bit-identity, overlap counters", RunE20},
	}
}
