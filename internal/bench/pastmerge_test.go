package bench

import (
	"io"
	"runtime"
	"testing"

	"msrp/internal/rp"
)

// TestPastMergeSpeedup asserts the E20 acceptance criteria. Everywhere
// it checks, on the quick overlap instance, that all three schedules
// are bit-identical, that the streaming merge never rehashes (the
// per-partition folds are presized), and that the far island makes
// CentersReady positive — the hardware-independent proof that §8.2.2
// work was released before the sources finished. On hosts with ≥ 8
// CPUs and no race detector it additionally asserts the wall-clock
// criterion: the streaming schedule beats the merge-barrier schedule
// at Parallelism=8 on the full-size instance.
func TestPastMergeSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size skewed σ-source solves take seconds")
	}
	assertSpeedup := runtime.NumCPU() >= 8 && !raceEnabled

	quick := NewOverlapInstance(true)
	const p = 2
	bRes, bStats, _, err := quick.SolveSchedule(p, ScheduleBarrier)
	if err != nil {
		t.Fatal(err)
	}
	if bStats.SeedCount == 0 {
		t.Fatal("overlap instance fed nothing into the seed table")
	}
	for _, schedule := range []string{ScheduleMergeBarrier, ScheduleStream} {
		res, stats, _, err := quick.SolveSchedule(p, schedule)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if d := rp.Diff(bRes[i], res[i]); d != "" {
				t.Fatalf("%s differs from barrier for source %d: %s", schedule, quick.Sources[i], d)
			}
		}
		if stats.SeedCount != bStats.SeedCount || stats.SeedRehashes != 0 {
			t.Fatalf("%s seed table diverged: %d entries %d rehashes, barrier %d entries",
				schedule, stats.SeedCount, stats.SeedRehashes, bStats.SeedCount)
		}
		ready, overlapped := stats.CentersReady, stats.CentersOverlapped
		if schedule == ScheduleStream {
			if ready == 0 {
				t.Error("streaming schedule reported CentersReady=0; island centers were not released early")
			}
			// Overlapped (solves actually started early) is scheduling-
			// dependent — the work-conserving claim order prefers source
			// stages — so no relation to CentersReady is asserted.
			if overlapped < 0 {
				t.Errorf("CentersOverlapped %d negative", overlapped)
			}
		} else if ready != 0 || overlapped != 0 {
			t.Errorf("%s reported overlap counters (%d ready, %d overlapped)", schedule, ready, overlapped)
		}
	}

	// The full E20 harness must run end to end at quick size (it
	// re-asserts identity, rehashes, and readiness internally).
	if err := RunE20(io.Discard, Config{Quick: true}); err != nil {
		t.Fatal(err)
	}

	if !assertSpeedup {
		t.Skipf("NumCPU=%d race=%v: skipping the wall-clock speedup assertion (needs >= 8 CPUs, no -race)",
			runtime.NumCPU(), raceEnabled)
	}
	inst := NewOverlapInstance(false)
	_, _, mbTime, err := inst.SolveSchedule(8, ScheduleMergeBarrier)
	if err != nil {
		t.Fatal(err)
	}
	_, _, streamTime, err := inst.SolveSchedule(8, ScheduleStream)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(mbTime) / float64(streamTime)
	t.Logf("n=%d m=%d σ=%d: merge-barrier %v, streaming %v at P=8, speedup %.2fx",
		inst.N, inst.M, inst.Sigma, mbTime, streamTime, speedup)
	if speedup < 1.02 {
		t.Fatalf("streaming solve did not beat the merge-barrier schedule at P=8: %.2fx (merge-barrier %v, streaming %v)",
			speedup, mbTime, streamTime)
	}
}

// BenchmarkPastMergeSolve benchmarks the three schedules on the quick
// overlap instance (go test -bench PastMerge). CI's bench smoke runs
// one iteration of each, so the streaming path is exercised on an
// uninstrumented build every push.
func BenchmarkPastMergeSolve(b *testing.B) {
	inst := NewOverlapInstance(true)
	for _, cfg := range []struct {
		name     string
		par      int
		schedule string
	}{
		{"barrier_p1", 1, ScheduleBarrier},
		{"merge_barrier_p1", 1, ScheduleMergeBarrier},
		{"stream_p1", 1, ScheduleStream},
		{"merge_barrier_p8", 8, ScheduleMergeBarrier},
		{"stream_p8", 8, ScheduleStream},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := inst.SolveSchedule(cfg.par, cfg.schedule); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
