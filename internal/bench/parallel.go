package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	api "msrp"

	"msrp/internal/bfs"
	"msrp/internal/graph"
	"msrp/internal/msrp"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

// SigmaSourceInstance is the σ-source workload E12 (and the speedup
// acceptance test) measures: a sparse connected random graph with σ
// spread-out sources.
type SigmaSourceInstance struct {
	G       *graph.Graph
	Sources []int32
	N, M    int
	Sigma   int
}

// NewSigmaSourceInstance builds the standard instance. The full-size
// configuration (quick=false) is the "largest seed instance" of the
// parallel-speedup acceptance criterion.
func NewSigmaSourceInstance(quick bool) SigmaSourceInstance {
	n, m, sigma := 1200, 4800, 8
	if quick {
		n, m, sigma = 240, 960, 4
	}
	g := graph.RandomConnected(xrand.New(12), n, m)
	sources := make([]int32, sigma)
	for i := range sources {
		sources[i] = int32(i * (n / sigma))
	}
	return SigmaSourceInstance{G: g, Sources: sources, N: n, M: m, Sigma: sigma}
}

// Solve runs the MSRP pipeline on the instance at the given engine
// parallelism, returning the results and wall-clock time.
func (inst SigmaSourceInstance) Solve(parallelism int) ([]*rp.Result, time.Duration, error) {
	p := mild(7, inst.N, inst.Sigma)
	p.Parallelism = parallelism
	var results []*rp.Result
	var err error
	d := timed(func() {
		var sol *msrp.Solution
		if sol, err = msrp.Solve(inst.G, inst.Sources, p); err == nil {
			results = sol.Results
		}
	})
	return results, d, err
}

// RunE12 — engine parallel scaling. The σ-source MSRP solve at a sweep
// of Parallelism values: time, speedup over the sequential run, and a
// bit-identical check against the sequential output (the engine's
// determinism contract). A second table measures the public Oracle's
// batched serving throughput cold (lazy builds inside QueryBatch) and
// warm (cache hits only).
//
// Wall-clock speedup obviously needs hardware: on a single-core host
// every ratio sits near 1 and only the identity column is informative.
// The acceptance threshold (≥ 2× at Parallelism=4) is asserted by
// TestSigmaSourceSpeedup on hosts with ≥ 4 CPUs.
func RunE12(w io.Writer, cfg Config) error {
	inst := NewSigmaSourceInstance(cfg.Quick)
	fmt.Fprintf(w, "  host: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())

	t := NewTable("E12: engine parallel scaling (σ-source MSRP)",
		"n", "m", "sigma", "parallelism", "time", "speedup", "identical")
	var base []*rp.Result
	var baseTime time.Duration
	for _, par := range []int{1, 2, 4, 8} {
		results, d, err := inst.Solve(par)
		if err != nil {
			return err
		}
		identical := true
		if par == 1 {
			base, baseTime = results, d
		} else {
			for i := range results {
				if rp.Diff(base[i], results[i]) != "" {
					identical = false
				}
			}
		}
		t.Row(inst.N, inst.M, inst.Sigma, par, d,
			float64(baseTime)/float64(d), identical)
	}
	t.Print(w)

	return runOracleServing(w, cfg)
}

// runOracleServing measures the batched Oracle: one cold QueryBatch
// that materializes every source lazily, then the warm (cache-hit)
// batch throughput.
func runOracleServing(w io.Writer, cfg Config) error {
	inst := NewSigmaSourceInstance(cfg.Quick)
	queries := oracleQueries(inst)

	t := NewTable("E12b: Oracle batched serving",
		"sigma", "queries", "parallelism", "cold_batch", "warm_batch", "qps_warm")
	for _, par := range []int{1, 0} { // sequential, then GOMAXPROCS
		opts := api.DefaultOptions()
		opts.Seed = 7
		opts.SampleBoost = 4
		opts.Parallelism = par
		oracle, err := api.NewOracle(api.WrapGraph(inst.G), toInts(inst.Sources), opts)
		if err != nil {
			return err
		}
		var answers []api.Answer
		cold := timed(func() { answers = oracle.QueryBatch(queries) })
		for i, a := range answers {
			if a.Err != nil {
				return fmt.Errorf("query %d: %w", i, a.Err)
			}
		}
		warm := timed(func() { answers = oracle.QueryBatch(queries) })
		qps := float64(len(queries)) / warm.Seconds()
		t.Row(inst.Sigma, len(queries), par, cold, warm, qps)
	}
	t.Print(w)
	return nil
}

// oracleQueries enumerates queries over every path edge of a sampled
// target slice per source — a deterministic serving workload.
func oracleQueries(inst SigmaSourceInstance) []api.Query {
	var queries []api.Query
	for _, s := range inst.Sources {
		tree := bfs.New(inst.G, int(s))
		for t := 0; t < inst.N; t += 7 { // sample targets
			path := tree.PathTo(int32(t))
			for i := 0; i+1 < len(path); i++ {
				queries = append(queries, api.Query{
					Source: int(s), Target: t,
					U: int(path[i]), V: int(path[i+1]),
				})
			}
		}
	}
	return queries
}

func toInts(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}
