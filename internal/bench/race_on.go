//go:build race

package bench

// raceEnabled reports whether the race detector instruments this
// build. Wall-clock performance assertions are meaningless under its
// serialization overhead, so the speedup test skips them.
const raceEnabled = true
