package bench

import (
	"runtime"
	"testing"

	"msrp/internal/rp"
)

// TestSigmaSourceSpeedup asserts the acceptance criterion of the
// sharded engine: ≥ 2× wall-clock speedup at Parallelism=4 over
// Parallelism=1 on the largest seed σ-source instance. Wall-clock
// speedup needs parallel hardware and an uninstrumented build, so the
// assertion runs only on hosts with ≥ 4 CPUs and without -race (whose
// serialization overhead makes timing ratios meaningless and flaky);
// everywhere else the test still runs both configurations on the
// quick instance and checks bit-identical output.
func TestSigmaSourceSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size σ-source solves take seconds")
	}
	assertSpeedup := runtime.NumCPU() >= 4 && !raceEnabled
	inst := NewSigmaSourceInstance(!assertSpeedup) // quick when identity-only
	seqRes, seqTime, err := inst.Solve(1)
	if err != nil {
		t.Fatal(err)
	}
	parRes, parTime, err := inst.Solve(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seqRes {
		if d := rp.Diff(seqRes[i], parRes[i]); d != "" {
			t.Fatalf("parallel output differs from sequential for source %d: %s",
				inst.Sources[i], d)
		}
	}
	if !assertSpeedup {
		t.Skipf("NumCPU=%d race=%v: skipping the wall-clock speedup assertion (needs >= 4 CPUs, no -race)",
			runtime.NumCPU(), raceEnabled)
	}
	speedup := float64(seqTime) / float64(parTime)
	t.Logf("n=%d m=%d σ=%d: sequential %v, parallel(4) %v, speedup %.2fx",
		inst.N, inst.M, inst.Sigma, seqTime, parTime, speedup)
	if speedup < 2 {
		t.Fatalf("speedup %.2fx < 2x at Parallelism=4 (sequential %v, parallel %v)",
			speedup, seqTime, parTime)
	}
}

// BenchmarkSigmaSourceSolve benchmarks the σ-source pipeline across
// Parallelism values on the quick instance (go test -bench
// SigmaSource).
func BenchmarkSigmaSourceSolve(b *testing.B) {
	inst := NewSigmaSourceInstance(true)
	for _, par := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "p1", 2: "p2", 4: "p4"}[par], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := inst.Solve(par); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
