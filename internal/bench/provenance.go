package bench

import (
	"fmt"
	"io"
	"runtime"

	"msrp/internal/graph"
	"msrp/internal/msrp"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

// RunE15 — provenance-plane overhead. The σ=16 pipelined solve with
// TrackPaths on vs off: wall time, the bit-identity of lengths (the
// plane observes, never steers), the transient §7.1 path-state peak
// (PeakSeedPathBytes — unchanged by tracking, the snapshot is taken
// between seed enumeration and release), and the *retained*
// ProvenanceBytes the tracked solve pays for reconstruction (witness
// snapshots + answer provenance + §8.1/§8.2.2 parent chains + the seed
// table). The final column is the retained-to-peak ratio: what serving
// concrete paths costs relative to the memory the pipelined schedule
// worked to shed. A sample of reconstructed paths is machine-verified
// as part of the run.
func RunE15(w io.Writer, cfg Config) error {
	n, chords := 600, 120
	if cfg.Quick {
		n, chords = 200, 40
	}
	const sigma = 16
	g := graph.CycleWithChords(xrand.New(31), n, chords)
	sources := make([]int32, sigma)
	for i := range sources {
		sources[i] = int32(i * n / sigma)
	}
	fmt.Fprintf(w, "  host: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())

	t := NewTable("E15: provenance plane overhead (σ=16, pipelined solve)",
		"n", "m", "parallelism", "plain", "tracked", "overhead",
		"identical", "peak_seed_bytes", "provenance_bytes", "retained/peak")
	for _, par := range []int{1, 8} {
		p := mild(31, n, sigma)
		p.Parallelism = par

		var plain, tracked *msrp.Solution
		dPlain := timed(func() {
			var err error
			if plain, err = msrp.Solve(g, sources, p); err != nil {
				panic(err)
			}
		})
		p.TrackPaths = true
		dTracked := timed(func() {
			var err error
			if tracked, err = msrp.Solve(g, sources, p); err != nil {
				panic(err)
			}
		})

		identical := "yes"
		for i := range sources {
			if d := rp.Diff(plain.Results[i], tracked.Results[i]); d != "" {
				identical = "NO: " + d
				break
			}
		}
		// Machine-verify a sample of reconstructions (every 7th target).
		for i := range sources {
			if _, failures := rp.VerifyReconstructions(g, tracked.Results[i], 7,
				tracked.PerSource[i].ReconstructPath); len(failures) > 0 {
				return fmt.Errorf("E15 invalid reconstruction: %s", failures[0])
			}
		}

		stats := tracked.Stats
		t.Row(n, g.NumEdges(), par, dPlain, dTracked,
			fmt.Sprintf("%.2fx", float64(dTracked)/float64(dPlain)),
			identical, stats.PeakSeedPathBytes, stats.ProvenanceBytes,
			fmt.Sprintf("%.1fx", float64(stats.ProvenanceBytes)/float64(stats.PeakSeedPathBytes)))
	}
	t.Print(w)
	return nil
}
