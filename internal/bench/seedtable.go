package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"msrp/internal/graph"
	"msrp/internal/msrp"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

// SeedTableInstance is the E13 workload: a seed-table-heavy, maximally
// skewed σ-source family. The graph is a chorded path whose head also
// hubs a star; half the sources sit deep on the path (Θ(n)-long
// canonical paths, a full complement of §8.2.1 small paths), half on
// star leaves (depth-1 trees, almost no work). Suffix lengths per
// source therefore vary as wildly as the Chechik–Magen-style SSRP
// preprocessing the issue cites, which is exactly the shape that
// leaves fixed-chunk schedulers idle and rewards work stealing — and
// the long chorded path maximizes the seed-table share of the total.
type SeedTableInstance struct {
	G       *graph.Graph
	Sources []int32
	N, M    int
	Sigma   int
}

// NewSeedTableInstance builds the standard E13 instance.
func NewSeedTableInstance(quick bool) SeedTableInstance {
	pathN, chords, leaves := 900, 300, 120
	if quick {
		pathN, chords, leaves = 220, 70, 40
	}
	g := graph.PathStarMix(xrand.New(19), pathN, chords, leaves)
	// Interleave heavy path-tail sources with trivial leaf sources so
	// any contiguous split of the source list mixes both kinds.
	sources := []int32{
		int32(pathN - 1), int32(pathN), // deepest path vertex, first leaf
		int32(3 * pathN / 4), int32(pathN + 1),
		int32(pathN / 2), int32(pathN + 2),
		int32(pathN / 4), int32(pathN + 3),
	}
	return SeedTableInstance{
		G: g, Sources: sources,
		N: g.NumVertices(), M: g.NumEdges(), Sigma: len(sources),
	}
}

// Preprocess runs the full multi-source preprocessing pipeline (the
// paper's Theorem 1 solve — what Oracle.Warm executes) at the given
// engine parallelism.
func (inst SeedTableInstance) Preprocess(parallelism int) ([]*rp.Result, *msrp.Stats, time.Duration, error) {
	p := mild(19, inst.N, inst.Sigma)
	p.Parallelism = parallelism
	var results []*rp.Result
	var stats *msrp.Stats
	var err error
	d := timed(func() {
		var sol *msrp.Solution
		if sol, err = msrp.Solve(inst.G, inst.Sources, p); err == nil {
			results, stats = sol.Results, sol.Stats
		}
	})
	return results, stats, d, err
}

// RunE13 — sharded seed-table build + work-stealing scaling. Sweeps
// Parallelism over the skewed seed-heavy instance and reports the
// preprocess wall clock, speedup over sequential, the bit-identity
// check, and the seed table's size and rehash count (presizing keeps
// rehashes at zero — the E9 cascade, gone). Wall-clock speedup needs
// multicore hardware; on few-core hosts only the identity and rehash
// columns are informative, and the ≥ 1.5× acceptance threshold at
// Parallelism=8 is asserted by TestSeedTablePreprocessSpeedup on
// hosts with ≥ 8 CPUs.
func RunE13(w io.Writer, cfg Config) error {
	inst := NewSeedTableInstance(cfg.Quick)
	fmt.Fprintf(w, "  host: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())

	t := NewTable("E13: seed-table shard + work-stealing scaling (skewed σ-source preprocess)",
		"n", "m", "sigma", "parallelism", "preprocess", "speedup", "identical",
		"seed_len", "seed_rehashes")
	var base []*rp.Result
	var baseTime time.Duration
	for _, par := range []int{1, 2, 4, 8} {
		results, stats, d, err := inst.Preprocess(par)
		if err != nil {
			return err
		}
		identical := true
		if par == 1 {
			base, baseTime = results, d
		} else {
			for i := range results {
				if rp.Diff(base[i], results[i]) != "" {
					identical = false
				}
			}
		}
		t.Row(inst.N, inst.M, inst.Sigma, par, d,
			float64(baseTime)/float64(d), identical,
			stats.SeedCount, stats.SeedRehashes)
	}
	t.Print(w)
	return nil
}
