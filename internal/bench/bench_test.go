package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tb := NewTable("demo", "a", "bb", "ccc")
	tb.Row(1, 2.5, "x")
	tb.Row(100, 0.125, "yyyy")
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "csv,a,bb,ccc") {
		t.Fatal("missing csv header")
	}
	if !strings.Contains(out, "csv,100,0.125,yyyy") {
		t.Fatal("missing csv row")
	}
}

func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds-long even in quick mode")
	}
	cfg := Config{Quick: true}
	for _, ex := range All() {
		ex := ex
		t.Run(ex.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := ex.Run(&buf, cfg); err != nil {
				t.Fatalf("%s failed: %v", ex.ID, err)
			}
			out := buf.String()
			if !strings.Contains(out, "csv,") {
				t.Fatalf("%s produced no rows:\n%s", ex.ID, out)
			}
			// E6 carries a hard correctness claim: every "correct"
			// cell must be true. (E5's claim is asserted separately in
			// TestE5ReportsFullExactness.)
			if ex.ID == "E6" && strings.Contains(out, "false") {
				t.Fatalf("E6 reduction produced a wrong product:\n%s", out)
			}
		})
	}
}

func TestE5ReportsFullExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("quick experiments still run solvers")
	}
	var buf bytes.Buffer
	if err := RunE5(&buf, Config{Quick: true}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(strings.TrimSpace(line), "csv,") || strings.Contains(line, "exact%") {
			continue
		}
		if !strings.HasSuffix(strings.TrimSpace(line), ",100") {
			t.Fatalf("non-exact row: %q", line)
		}
	}
}
