package bench

import (
	"runtime"
	"testing"

	"msrp/internal/rp"
)

// TestPipelineSpeedup asserts the E14 acceptance criteria. Everywhere
// it checks, on the quick instance, that the pipelined schedule is
// bit-identical to the barrier schedule and that its peak live §7.1
// path-expansion state drops on a σ ≫ P workload (σ=16, P=2: the
// barrier holds all sixteen sources' state across its stage boundary,
// the pipeline at most the two in flight — we assert at least a 2×
// reduction, far inside the ~8× structural bound, to stay robust to
// scheduling jitter). On hosts with ≥ 8 CPUs and no race detector it
// additionally asserts the wall-clock criterion: the pipelined solve
// beats the barrier schedule at Parallelism=8 on the full-size skewed
// instance, where the dominant seed enumerations start as soon as
// their own builds finish instead of waiting for the build barrier.
func TestPipelineSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size skewed σ-source solves take seconds")
	}
	assertSpeedup := runtime.NumCPU() >= 8 && !raceEnabled

	// Identity + memory on the quick instance at σ ≫ P.
	quick := NewPipelineInstance(true)
	const memP = 2
	bRes, bStats, _, err := quick.Solve(memP, true)
	if err != nil {
		t.Fatal(err)
	}
	pRes, pStats, _, err := quick.Solve(memP, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bRes {
		if d := rp.Diff(bRes[i], pRes[i]); d != "" {
			t.Fatalf("pipelined output differs from barrier for source %d: %s",
				quick.Sources[i], d)
		}
	}
	if bStats.SeedCount == 0 {
		t.Fatal("instance fed nothing into the seed table — E14 is not measuring the §8.2.1 stage")
	}
	if bStats.SeedCount != pStats.SeedCount || bStats.SeedRehashes != pStats.SeedRehashes {
		t.Fatalf("seed table diverged: barrier (%d entries, %d rehashes), pipelined (%d, %d)",
			bStats.SeedCount, bStats.SeedRehashes, pStats.SeedCount, pStats.SeedRehashes)
	}
	t.Logf("σ=%d P=%d peak seed-path bytes: barrier %d, pipelined %d (%.1fx reduction)",
		quick.Sigma, memP, bStats.PeakSeedPathBytes, pStats.PeakSeedPathBytes,
		float64(bStats.PeakSeedPathBytes)/float64(pStats.PeakSeedPathBytes))
	if pStats.PeakSeedPathBytes*2 > bStats.PeakSeedPathBytes {
		t.Errorf("pipelined peak path-state %d is not ≤ half the barrier peak %d at σ=%d P=%d",
			pStats.PeakSeedPathBytes, bStats.PeakSeedPathBytes, quick.Sigma, memP)
	}

	if !assertSpeedup {
		t.Skipf("NumCPU=%d race=%v: skipping the wall-clock speedup assertion (needs >= 8 CPUs, no -race)",
			runtime.NumCPU(), raceEnabled)
	}
	inst := NewPipelineInstance(false)
	_, _, barrierTime, err := inst.Solve(8, true)
	if err != nil {
		t.Fatal(err)
	}
	_, _, pipeTime, err := inst.Solve(8, false)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(barrierTime) / float64(pipeTime)
	t.Logf("n=%d m=%d σ=%d: barrier %v, pipelined %v at P=8, speedup %.2fx",
		inst.N, inst.M, inst.Sigma, barrierTime, pipeTime, speedup)
	if speedup < 1.05 {
		t.Fatalf("pipelined solve did not beat the barrier schedule at P=8: %.2fx (barrier %v, pipelined %v)",
			speedup, barrierTime, pipeTime)
	}
}

// BenchmarkPipelinedSolve benchmarks both schedules across Parallelism
// on the quick instance (go test -bench Pipelined). CI's bench smoke
// runs one iteration of each, so the pipelined path is exercised on an
// uninstrumented build every push.
func BenchmarkPipelinedSolve(b *testing.B) {
	inst := NewPipelineInstance(true)
	for _, cfg := range []struct {
		name    string
		par     int
		barrier bool
	}{
		{"barrier_p1", 1, true},
		{"pipelined_p1", 1, false},
		{"barrier_p8", 8, true},
		{"pipelined_p8", 8, false},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := inst.Solve(cfg.par, cfg.barrier); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
