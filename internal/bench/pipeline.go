package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"msrp/internal/graph"
	"msrp/internal/msrp"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

// PipelineInstance is the E14 workload: the skewed PathStarMix family
// arranged to expose the cost of the barrier between the §8.1
// per-source builds and the §8.2.1 seed enumeration. Two deep
// path-tail sources dominate the seed-enumeration stage (Θ(n)-long
// canonical paths, the full complement of small paths); a crowd of
// star-leaf sources contributes build-stage work (the §8.1
// source–center graph is built per source regardless of depth) but
// almost no enumeration. Under the barrier schedule the dominant
// enumerations cannot start until every build has finished; the
// pipelined schedule starts them as soon as their own builds complete
// and hides the remaining builds underneath.
type PipelineInstance struct {
	G       *graph.Graph
	Sources []int32
	N, M    int
	Sigma   int
}

// NewPipelineInstance builds the standard E14 instance. The deep
// sources come first in the source list so the pipelined schedule
// claims them (and starts their dominant stage) earliest.
func NewPipelineInstance(quick bool) PipelineInstance {
	pathN, chords, leaves := 900, 300, 140
	lightSources := 30
	if quick {
		pathN, chords, leaves = 220, 70, 40
		lightSources = 14
	}
	g := graph.PathStarMix(xrand.New(23), pathN, chords, leaves)
	sources := []int32{int32(pathN - 1), int32(3 * pathN / 4)}
	for l := 0; l < lightSources; l++ {
		sources = append(sources, int32(pathN+l))
	}
	return PipelineInstance{
		G: g, Sources: sources,
		N: g.NumVertices(), M: g.NumEdges(), Sigma: len(sources),
	}
}

// Solve runs the full multi-source preprocessing at the given engine
// parallelism on either of E14's two schedules. barrier=false keeps
// its original meaning — the per-source pipeline that still stops the
// world at the seed merge — so E14's measurements stay comparable
// across records now that the solver's default schedule streams past
// the merge (E20 sweeps all three).
func (inst PipelineInstance) Solve(parallelism int, barrier bool) ([]*rp.Result, *msrp.Stats, time.Duration, error) {
	if barrier {
		return inst.SolveSchedule(parallelism, ScheduleBarrier)
	}
	return inst.SolveSchedule(parallelism, ScheduleMergeBarrier)
}

// Schedule names for SolveSchedule, in increasing overlap order.
const (
	// ScheduleBarrier: all builds, then all enumerations, then the
	// flat merge, then all §8.2.2 center solves.
	ScheduleBarrier = "barrier"
	// ScheduleMergeBarrier: per-source build→enumerate pipelining, but
	// the seed merge is still a stop-the-world fold and §8.2.2 waits
	// for it.
	ScheduleMergeBarrier = "merge-barrier"
	// ScheduleStream: the solver default — partitioned streaming merge
	// with readiness-gated §8.2.2 overlap.
	ScheduleStream = "stream"
)

// SolveSchedule runs the full multi-source preprocessing at the given
// engine parallelism under the named schedule.
func (inst PipelineInstance) SolveSchedule(parallelism int, schedule string) ([]*rp.Result, *msrp.Stats, time.Duration, error) {
	p := mild(23, inst.N, inst.Sigma)
	p.Parallelism = parallelism
	switch schedule {
	case ScheduleBarrier:
		p.BarrierPipeline = true
	case ScheduleMergeBarrier:
		p.SeedMergeBarrier = true
	case ScheduleStream:
	default:
		return nil, nil, 0, fmt.Errorf("bench: unknown schedule %q", schedule)
	}
	var results []*rp.Result
	var stats *msrp.Stats
	var err error
	d := timed(func() {
		var sol *msrp.Solution
		if sol, err = msrp.Solve(inst.G, inst.Sources, p); err == nil {
			results, stats = sol.Results, sol.Stats
		}
	})
	return results, stats, d, err
}

// RunE14 — pipelined vs barrier solve. The first table sweeps
// Parallelism over the skewed E14 instance on both schedules and
// reports wall time, the pipelined/barrier speedup at each P, the
// bit-identity check, and the peak live §7.1 path-expansion state
// (PeakSeedPathBytes: Θ(σ·aux) under the barrier, Θ(P·aux) pipelined —
// at P=1 exactly sum-over-sources versus max-single-source). Wall-
// clock gains need multicore hardware; on few-core hosts the identity
// and peak-bytes columns are the informative ones, and the speedup
// acceptance at P=8 is asserted by TestPipelineSpeedup on hosts with
// ≥ 8 CPUs. The second table isolates the memory claim on a σ ≫ P
// sweep.
func RunE14(w io.Writer, cfg Config) error {
	inst := NewPipelineInstance(cfg.Quick)
	fmt.Fprintf(w, "  host: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())

	t := NewTable("E14: pipelined vs barrier solve (skewed σ-source preprocess)",
		"n", "m", "sigma", "parallelism", "schedule", "solve", "pipeline_speedup",
		"identical", "peak_seed_path_bytes", "build", "enum")
	var base []*rp.Result
	// Peak bytes per (parallelism, schedule), reused by the E14b table
	// below — the sweep already solved every combination.
	type peakKey struct {
		par     int
		barrier bool
	}
	peaks := make(map[peakKey]int64)
	for _, par := range []int{1, 2, 4, 8} {
		var barrierTime time.Duration
		for _, barrier := range []bool{true, false} {
			results, stats, d, err := inst.Solve(par, barrier)
			if err != nil {
				return err
			}
			schedule := "pipelined"
			speedup := float64(barrierTime) / float64(d)
			if barrier {
				schedule, speedup = "barrier", 1.0
				barrierTime = d
			}
			identical := true
			if base == nil {
				base = results
			} else {
				for i := range results {
					if rp.Diff(base[i], results[i]) != "" {
						identical = false
					}
				}
			}
			peaks[peakKey{par, barrier}] = stats.PeakSeedPathBytes
			t.Row(inst.N, inst.M, inst.Sigma, par, schedule, d, speedup, identical,
				stats.PeakSeedPathBytes, stats.StagePerSourceBuild, stats.StageSeedEnumerate)
		}
	}
	t.Print(w)

	// Memory isolation: σ ≫ P. Path-expansion state is near-uniform per
	// source (it is Θ(n · nearCap) regardless of source depth), so the
	// barrier peak sits at ~σ× the per-source footprint while the
	// pipelined peak tracks the in-flight worker count.
	t2 := NewTable("E14b: peak §7.1 path-state bytes, σ >> P",
		"sigma", "parallelism", "barrier_peak", "pipelined_peak", "reduction")
	for _, par := range []int{1, 2, 8} {
		bPeak := peaks[peakKey{par, true}]
		pPeak := peaks[peakKey{par, false}]
		t2.Row(inst.Sigma, par, bPeak, pPeak, float64(bPeak)/float64(pPeak))
	}
	t2.Print(w)
	return nil
}
