package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"msrp/internal/bmm"
	"msrp/internal/classic"
	"msrp/internal/graph"
	"msrp/internal/msrp"
	"msrp/internal/naive"
	"msrp/internal/preserver"
	"msrp/internal/rp"
	"msrp/internal/sample"
	"msrp/internal/ssrp"
	"msrp/internal/xrand"
)

// boosted returns parameters with raised sampling constants so the
// w.h.p. guarantees are near-certain. Only used at small sizes (E5,
// E6): the boost saturates the landmark sets, which is exact but
// quadratically more expensive.
func boosted(seed uint64) ssrp.Params {
	p := ssrp.DefaultParams()
	p.Seed = seed
	p.SampleBoost = 8
	p.SuffixScale = 0.5
	return p
}

// mild returns parameters whose boost adapts to the instance so the
// level-0 sampling probability stays ≤ ~0.25 (landmark sets stay
// sublinear and the measured times reflect the algorithm's intended
// regime). The boost never drops below the paper's constant 1.
func mild(seed uint64, n, sigma int) ssrp.Params {
	p := ssrp.DefaultParams()
	p.Seed = seed
	boost := math.Sqrt(float64(n)/float64(sigma)) / 16
	if boost < 1 {
		boost = 1
	}
	if boost > 4 {
		boost = 4
	}
	p.SampleBoost = boost
	return p
}

// paperParams returns the paper-faithful constants.
func paperParams(seed uint64) ssrp.Params {
	p := ssrp.DefaultParams()
	p.Seed = seed
	return p
}

// RunE1 — SSRP runtime scaling (Theorem 14). Sweeps n at two edge
// densities and times the SSRP solver against the Õ(nm) delete-and-BFS
// brute force and the Õ(nm) per-pair classical baseline.
//
// Reproduction target (see EXPERIMENTS.md): at laptop sizes the
// baselines win on constants — the claim to validate is the *growth
// model*. The t/model columns divide each measured time by its
// predicted asymptotic count; the column that stays flat as n doubles
// identifies the matching model (m√n + n² for SSRP, nm for both
// baselines).
func RunE1(w io.Writer, cfg Config) error {
	type density struct {
		name string
		m    func(n int) int
	}
	densities := []density{
		{"m=2n", func(n int) int { return 2 * n }},
		{"m=8n", func(n int) int { return 8 * n }},
	}
	sizes := []int{400, 800, 1600, 3200}
	if cfg.Quick {
		sizes = []int{200, 400}
	}
	t := NewTable("E1: SSRP scaling (Theorem 14)",
		"family", "n", "m", "ssrp", "naive", "classicPairs",
		"ssrp/(m√n+n²)", "naive/nm")
	for _, d := range densities {
		for _, n := range sizes {
			m := d.m(n)
			g := graph.RandomConnected(xrand.New(uint64(n)), n, m)
			var res *rp.Result
			tSSRP := timed(func() {
				var err error
				res, _, err = ssrp.Solve(g, 0, mild(uint64(n)+1, n, 1))
				if err != nil {
					panic(err)
				}
			})
			var nv *rp.Result
			tNaive := timed(func() { nv = naive.SSRP(g, 0) })
			tClassic := time.Duration(0)
			if n <= 800 { // Õ(nm) with a log factor: brutal beyond this
				tClassic = timed(func() { _ = classic.SSRPByPairs(g, 0) })
			}
			if mism, total := rp.CountMismatches(nv, res); mism != 0 {
				fmt.Fprintf(w, "  note: %s n=%d: %d/%d entries inexact (sampling miss)\n",
					d.name, n, mism, total)
			}
			fm, fn := float64(m), float64(n)
			ssrpModel := fm*math.Sqrt(fn) + fn*fn
			naiveModel := fn * fm
			t.Row(d.name, n, m, tSSRP, tNaive, tClassic,
				float64(tSSRP.Nanoseconds())/ssrpModel,
				float64(tNaive.Nanoseconds())/naiveModel)
		}
	}
	t.Print(w)
	return nil
}

// RunE2 — MSRP σ-scaling (Theorem 1). Fixed graph, growing σ: MSRP in
// one shot vs σ independent SSRP runs vs the brute force. The t/model
// column (model m√(nσ) + σn², with the harness-size constant absorbed)
// should stay flat while the baselines grow linearly in σ.
func RunE2(w io.Writer, cfg Config) error {
	n, m := 600, 2400
	sigmas := []int{1, 2, 4, 8}
	if cfg.Quick {
		n, m = 240, 960
		sigmas = []int{1, 2, 4}
	}
	g := graph.RandomConnected(xrand.New(42), n, m)
	t := NewTable("E2: MSRP σ-scaling (Theorem 1)",
		"sigma", "msrp", "sigma_x_ssrp", "naive", "msrp/(m√(nσ)+σn²)", "exact")
	for _, sigma := range sigmas {
		sources := make([]int32, sigma)
		for i := range sources {
			sources[i] = int32(i * (n / sigma))
		}
		p := mild(7, n, sigma)
		var mres []*rp.Result
		tMSRP := timed(func() {
			var err error
			sol, err := msrp.Solve(g, sources, p)
			if err != nil {
				panic(err)
			}
			mres = sol.Results
		})
		tSSRP := timed(func() {
			for _, s := range sources {
				if _, _, err := ssrp.Solve(g, s, p); err != nil {
					panic(err)
				}
			}
		})
		tNaive := timed(func() { _ = naive.MSRP(g, sources) })
		exact := true
		for i, s := range sources {
			want := naive.SSRP(g, s)
			if mism, _ := rp.CountMismatches(want, mres[i]); mism != 0 {
				exact = false
			}
		}
		fm, fn, fs := float64(m), float64(n), float64(sigma)
		model := fm*math.Sqrt(fn*fs) + fs*fn*fn
		t.Row(sigma, tMSRP, tSSRP, tNaive,
			float64(tMSRP.Nanoseconds())/model, exact)
	}
	t.Print(w)
	return nil
}

// RunE3 — landmark family sizes (Lemma 4): measured |L_k| against the
// expectation 4√(nσ)/2^k and the (1+log n) Chernoff envelope.
func RunE3(w io.Writer, cfg Config) error {
	configs := [][2]int{{2000, 1}, {2000, 4}, {8000, 1}, {8000, 16}}
	trials := 20
	if cfg.Quick {
		configs = [][2]int{{1000, 1}, {1000, 4}}
		trials = 8
	}
	t := NewTable("E3: landmark level sizes (Lemma 4)",
		"n", "sigma", "k", "mean|L_k|", "E=4√(nσ)/2^k", "mean/E", "max_observed", "envelope")
	rng := xrand.New(99)
	for _, c := range configs {
		n, sigma := c[0], c[1]
		probe := sample.New(rng.Split(), n, sigma, 1, nil)
		for k := 0; k <= probe.MaxK; k++ {
			expected := 4 * math.Sqrt(float64(n)*float64(sigma)) / float64(int64(1)<<uint(k))
			if expected < 4 {
				continue // negligible tail levels
			}
			sum, maxSeen := 0, 0
			for tr := 0; tr < trials; tr++ {
				l := sample.New(rng.Split(), n, sigma, 1, nil)
				s := l.Size(k)
				sum += s
				if s > maxSeen {
					maxSeen = s
				}
			}
			mean := float64(sum) / float64(trials)
			envelope := (1 + math.Log2(float64(n))) * expected
			t.Row(n, sigma, k, mean, expected, mean/expected, maxSeen, envelope)
		}
	}
	t.Print(w)
	return nil
}

// RunE4 — exactness at paper constants (Lemmas 9/12/13): run the
// solvers with SampleBoost = 1 and report the per-entry mismatch rate
// against brute force (guarantee: failure probability ≤ 1/n). A
// deliberately *under-sampled* row (SuffixScale 0.3, so the suffix
// thresholds shrink but the sampling stays at the paper density — a
// weaker product than the lemmas require) shows the sampling is load-
// bearing: its failure rate may be visibly nonzero.
func RunE4(w io.Writer, cfg Config) error {
	n := 1200
	if cfg.Quick {
		n = 400
	}
	rng := xrand.New(5)
	type row struct {
		name  string
		g     *graph.Graph
		p     ssrp.Params
		multi bool
	}
	rows := []row{
		{"random m=4n", graph.RandomConnected(rng, n, 4*n), paperParams(uint64(n)), false},
		{"random m=4n σ=2", graph.RandomConnected(rng, n, 4*n), paperParams(uint64(n) + 1), true},
		{"grid 2xN", graph.Grid(2, n/2), paperParams(uint64(n) + 2), false},
		{"cycle", graph.Cycle(n), paperParams(uint64(n) + 3), false},
	}
	stressed := paperParams(uint64(n) + 4)
	stressed.SuffixScale = 0.3
	rows = append(rows, row{"cycle UNDER-SAMPLED (scale=0.3)", graph.Cycle(n), stressed, false})

	t := NewTable("E4: exactness at paper constants (boost=1)",
		"workload", "algo", "n", "entries", "mismatches", "rate", "bound_1/n")
	for _, r := range rows {
		nn := r.g.NumVertices()
		if r.multi {
			sources := []int32{0, int32(nn / 2)}
			sol, err := msrp.Solve(r.g, sources, r.p)
			if err != nil {
				return err
			}
			mres := sol.Results
			mism, total := 0, 0
			for i, s := range sources {
				want := naive.SSRP(r.g, s)
				mm, tt := rp.CountMismatches(want, mres[i])
				mism += mm
				total += tt
			}
			t.Row(r.name, "msrp σ=2", nn, total, mism,
				float64(mism)/math.Max(float64(total), 1), 1/float64(nn))
			continue
		}
		res, _, err := ssrp.Solve(r.g, 0, r.p)
		if err != nil {
			return err
		}
		want := naive.SSRP(r.g, 0)
		mism, total := rp.CountMismatches(want, res)
		t.Row(r.name, "ssrp", nn, total, mism,
			float64(mism)/math.Max(float64(total), 1), 1/float64(nn))
	}
	t.Print(w)
	return nil
}

// RunE5 — end-to-end exactness across graph families with boosted
// constants: the reproduction's headline correctness table. Every cell
// must read 100.
func RunE5(w io.Writer, cfg Config) error {
	scale := 1
	if cfg.Quick {
		scale = 2
	}
	rng := xrand.New(17)
	families := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(240 / scale)},
		{"grid", graph.Grid(12/scale, 20)},
		{"random sparse", graph.RandomConnected(rng, 240/scale, 480/scale)},
		{"random dense", graph.RandomConnected(rng, 160/scale, 1600/scale)},
		{"cycle+chords", graph.CycleWithChords(rng, 200/scale, 8)},
		{"barbell", graph.Barbell(20/scale, 30/scale)},
		{"pref-attach", graph.PreferentialAttachment(rng, 200/scale, 3)},
		{"caterpillar", graph.Caterpillar(40/scale, 3)},
	}
	t := NewTable("E5: exactness across families (boosted constants)",
		"family", "n", "m", "algo", "entries", "exact%")
	for fi, f := range families {
		n := f.g.NumVertices()
		res, _, err := ssrp.Solve(f.g, 0, boosted(uint64(fi)+100))
		if err != nil {
			return err
		}
		want := naive.SSRP(f.g, 0)
		mism, total := rp.CountMismatches(want, res)
		t.Row(f.name, n, f.g.NumEdges(), "ssrp",
			total, 100*float64(total-mism)/math.Max(float64(total), 1))

		sources := []int32{0, int32(n / 3), int32(2 * n / 3)}
		mres, err2 := solveMulti(f.g, sources, boosted(uint64(fi)+200))
		if err2 != nil {
			return err2
		}
		mismM, totalM := 0, 0
		for i, s := range sources {
			wantS := naive.SSRP(f.g, s)
			mm, tt := rp.CountMismatches(wantS, mres[i])
			mismM += mm
			totalM += tt
		}
		t.Row(f.name, n, f.g.NumEdges(), "msrp σ=3",
			totalM, 100*float64(totalM-mismM)/math.Max(float64(totalM), 1))
	}
	t.Print(w)
	return nil
}

func solveMulti(g *graph.Graph, sources []int32, p ssrp.Params) ([]*rp.Result, error) {
	sol, err := msrp.Solve(g, sources, p)
	if err != nil {
		return nil, err
	}
	return sol.Results, nil
}

// RunE6 — the BMM reduction (Theorem 28): correctness of C = A×B via
// MSRP, with the gadget dimensions and the timing split against the
// direct combinatorial product (which wins by orders of magnitude, as
// expected — the reduction's value is the equivalence, not speed).
func RunE6(w io.Writer, cfg Config) error {
	sizes := []int{24, 48}
	densities := []float64{0.05, 0.25}
	if cfg.Quick {
		sizes = []int{16, 24}
	}
	t := NewTable("E6: BMM via MSRP reduction (Theorem 28)",
		"n", "density", "sigma", "graphs", "gadget_verts", "correct", "t_reduction", "t_direct")
	rng := xrand.New(31)
	for _, n := range sizes {
		for _, d := range densities {
			a := bmm.Random(rng, n, d)
			b := bmm.Random(rng, n, d)
			var direct *bmm.Matrix
			tDirect := timed(func() {
				var err error
				direct, err = bmm.Multiply(a, b)
				if err != nil {
					panic(err)
				}
			})
			sigma := 2
			var got *bmm.Matrix
			var stats *bmm.ReductionStats
			tRed := timed(func() {
				var err error
				got, stats, err = bmm.MultiplyViaMSRP(a, b, sigma, boosted(uint64(n)))
				if err != nil {
					panic(err)
				}
			})
			t.Row(n, d, sigma, stats.NumGraphs, stats.GadgetVerts,
				bmm.Equal(got, direct), tRed, tDirect)
		}
	}
	t.Print(w)
	return nil
}

// RunE7 — ablation of the paper's scaling trick (§3): leveled L_k
// versus a flat landmark set for the far-edge stage, on a cycle whose
// diameter activates several far bands. FarScans counts candidate
// landmark probes: the leveled sets keep the per-target far work near
// Õ(n); the flat set pays |L_0| on every far edge.
func RunE7(w io.Writer, cfg Config) error {
	n := 1000
	if cfg.Quick {
		n = 400
	}
	g := graph.Cycle(n)
	p := paperParams(11)
	p.SampleBoost = 2
	p.SuffixScale = 0.1 // shrink X so several far bands exist at this n
	t := NewTable("E7: scaling-trick ablation (§3)",
		"mode", "n", "far_scans", "scan_ratio", "time", "exact")
	var baseline int64
	for _, flat := range []bool{false, true} {
		pp := p
		pp.FlatLandmarks = flat
		var stats *ssrp.Stats
		var res *rp.Result
		d := timed(func() {
			var err error
			res, stats, err = ssrp.Solve(g, 0, pp)
			if err != nil {
				panic(err)
			}
		})
		want := naive.SSRP(g, 0)
		mism, _ := rp.CountMismatches(want, res)
		mode := "leveled L_k"
		if flat {
			mode = "flat L_0"
		} else {
			baseline = stats.FarScans
		}
		ratio := 1.0
		if baseline > 0 {
			ratio = float64(stats.FarScans) / float64(baseline)
		}
		t.Row(mode, n, stats.FarScans, ratio, d, mism == 0)
	}
	t.Print(w)
	return nil
}

// RunE8 — crossover map: the fastest algorithm per (n, σ) cell among
// brute force, σ independent SSRP runs, and MSRP, on sparse random
// graphs. At these sizes the winner column is expected to favour the
// baselines (constants); the msrp/naive trend across σ is the signal.
func RunE8(w io.Writer, cfg Config) error {
	ns := []int{300, 600}
	sigmas := []int{1, 2, 4, 8}
	if cfg.Quick {
		ns = []int{200, 300}
		sigmas = []int{1, 2, 4}
	}
	t := NewTable("E8: fastest algorithm per (n, σ)",
		"n", "sigma", "naive", "sigma_x_ssrp", "msrp", "winner", "msrp/naive")
	for _, n := range ns {
		g := graph.RandomConnected(xrand.New(uint64(n)), n, 4*n)
		for _, sigma := range sigmas {
			sources := make([]int32, sigma)
			for i := range sources {
				sources[i] = int32(i * (n / sigma))
			}
			p := mild(5, n, sigma)
			tNaive := timed(func() { _ = naive.MSRP(g, sources) })
			tSSRP := timed(func() {
				for _, s := range sources {
					if _, _, err := ssrp.Solve(g, s, p); err != nil {
						panic(err)
					}
				}
			})
			tMSRP := timed(func() {
				if _, err := msrp.Solve(g, sources, p); err != nil {
					panic(err)
				}
			})
			winner := "naive"
			switch {
			case tMSRP <= tNaive && tMSRP <= tSSRP:
				winner = "msrp"
			case tSSRP <= tNaive:
				winner = "ssrp×σ"
			}
			t.Row(n, sigma, tNaive, tSSRP, tMSRP, winner,
				float64(tMSRP)/float64(tNaive))
		}
	}
	t.Print(w)
	return nil
}

// RunE9 — auxiliary graph sizes against the paper's formulas: §7.1
// arcs = Õ(m√(n/σ)) (capped by m·diam), §8.1 nodes = Õ(n) per source,
// §8.2 arcs = Õ(σn²) total.
func RunE9(w io.Writer, cfg Config) error {
	configs := [][2]int{{600, 1}, {600, 4}, {1200, 1}, {1200, 4}}
	if cfg.Quick {
		configs = [][2]int{{300, 1}, {300, 4}}
	}
	t := NewTable("E9: auxiliary graph sizes + seed-table behaviour",
		"n", "sigma", "small_nodes", "small_arcs", "sc_nodes", "sc_arcs",
		"cl_nodes", "cl_arcs", "σn²", "seed_len", "seed_rehashes")
	for _, c := range configs {
		n, sigma := c[0], c[1]
		g := graph.CycleWithChords(xrand.New(uint64(n)), n, n/20)
		sources := make([]int32, sigma)
		for i := range sources {
			sources[i] = int32(i * (n / sigma))
		}
		sol, err := msrp.Solve(g, sources, mild(uint64(n), n, sigma))
		if err != nil {
			return err
		}
		stats := sol.Stats
		// seed_rehashes is the cuckoo cascade indicator: the presized
		// sharded build keeps it at zero at every size.
		t.Row(n, sigma, stats.AuxNodes, stats.AuxArcs,
			stats.SCNodes, stats.SCArcs, stats.CLNodes, stats.CLArcs,
			int64(sigma)*int64(n)*int64(n), stats.SeedCount, stats.SeedRehashes)
	}
	t.Print(w)
	return nil
}

// RunE10 — assembly-mode ablation: the default sound assembly
// (interval avoidance + fixpoint sweeps) versus the paper's literal
// §8.3 bottleneck machinery. Both should be exact on these workloads;
// the table compares their time and auxiliary-graph footprints.
func RunE10(w io.Writer, cfg Config) error {
	n := 240
	if cfg.Quick {
		n = 120
	}
	rng := xrand.New(77)
	workloads := []struct {
		name string
		g    *graph.Graph
	}{
		{"random m=4n", graph.RandomConnected(rng, n, 4*n)},
		{"cycle+chords", graph.CycleWithChords(rng, n, n/25)},
		{"grid 2xN", graph.Grid(2, n/2)},
	}
	t := NewTable("E10: assembly-mode ablation (default vs paper §8.3)",
		"workload", "mode", "time", "aux_nodes", "aux_arcs", "mismatches")
	for _, wl := range workloads {
		nn := wl.g.NumVertices()
		sources := []int32{0, int32(nn / 2)}
		for _, paper := range []bool{false, true} {
			p := mild(uint64(nn), nn, len(sources))
			p.PaperBottleneck = paper
			var stats *msrp.Stats
			var results []*rp.Result
			d := timed(func() {
				var err error
				sol, err := msrp.Solve(wl.g, sources, p)
				if err != nil {
					panic(err)
				}
				results, stats = sol.Results, sol.Stats
			})
			mism := 0
			for i, s := range sources {
				want := naive.SSRP(wl.g, s)
				mm, _ := rp.CountMismatches(want, results[i])
				mism += mm
			}
			mode := "default"
			nodes, arcs := stats.SCNodes+stats.CLNodes, stats.SCArcs+stats.CLArcs
			if paper {
				mode = "paper §8.3"
				nodes += stats.BNNodes
				arcs += stats.BNArcs
			}
			t.Row(wl.name, mode, d, nodes, arcs, mism)
		}
	}
	t.Print(w)
	return nil
}

// RunE11 — fault-tolerant preserver sizes (related work §1.1,
// Parter–Peleg): edges of the replacement-path-derived single-source
// preserver against the Θ(n^{3/2}) bound, across densities.
func RunE11(w io.Writer, cfg Config) error {
	sizes := []int{100, 200, 400}
	if cfg.Quick {
		sizes = []int{60, 120}
	}
	t := NewTable("E11: fault-tolerant BFS preserver size (Parter–Peleg bound)",
		"family", "n", "m", "preserver_edges", "tree", "path", "n^1.5", "edges/n^1.5")
	for _, n := range sizes {
		rng := xrand.New(uint64(n))
		families := []struct {
			name string
			g    *graph.Graph
		}{
			{"random m=4n", graph.RandomConnected(rng, n, 4*n)},
			{"random dense m=n²/8", graph.RandomConnected(rng, n, n*n/8)},
			{"cycle+chords", graph.CycleWithChords(rng, n, n/20+2)},
		}
		for _, f := range families {
			p := boosted(uint64(n) + 7)
			r, err := preserver.Build(f.g, 0, p)
			if err != nil {
				return err
			}
			bound := math.Pow(float64(n), 1.5)
			t.Row(f.name, n, f.g.NumEdges(), len(r.Edges), r.TreeEdges, r.PathEdges,
				bound, float64(len(r.Edges))/bound)
		}
	}
	t.Print(w)
	return nil
}
