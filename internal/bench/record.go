package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"
)

// This file holds the shared machine-readable record types behind the
// repository's tracked perf trajectory: every committed BENCH_*.json is
// one Envelope, so tooling that plots or diffs the trajectory parses a
// single shape regardless of which harness (cmd/msrp-bench experiments,
// cmd/msrp-load scenario runs) produced it.

// Host describes the machine a record was taken on — enough to judge
// whether two records are comparable.
type Host struct {
	GoVersion string `json:"goVersion"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	NumCPU    int    `json:"numCPU"`
}

// CurrentHost snapshots the running machine.
func CurrentHost() Host {
	return Host{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Envelope is the committed BENCH_*.json shape: a stable header
// (experiment id, when, where) around harness-specific Data.
type Envelope struct {
	// Experiment is the EXPERIMENTS.md id ("E16").
	Experiment string `json:"experiment"`
	// Title is the experiment's one-line claim or scenario name.
	Title string `json:"title,omitempty"`
	// RecordedAt is when the run finished, RFC 3339.
	RecordedAt time.Time `json:"recordedAt"`
	Host       Host      `json:"host"`
	// Data is the harness-specific payload (e.g. load.Result).
	Data any `json:"data"`
}

// NewEnvelope stamps an envelope for data recorded now on this host.
func NewEnvelope(experiment, title string, data any) Envelope {
	return Envelope{
		Experiment: experiment,
		Title:      title,
		RecordedAt: time.Now().UTC().Truncate(time.Second),
		Host:       CurrentHost(),
		Data:       data,
	}
}

// WriteFile writes the envelope as indented JSON (trailing newline,
// diff-friendly for committed records).
func (e Envelope) WriteFile(path string) error {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: encode %s record: %w", e.Experiment, err)
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LatencyMillis is a latency distribution summary in fractional
// milliseconds — the wire/record shape shared by every harness that
// reports percentiles.
type LatencyMillis struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}
