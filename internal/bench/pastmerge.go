package bench

import (
	"fmt"
	"io"
	"runtime"

	"msrp/internal/graph"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

// NewOverlapInstance builds the E20 workload: the skewed E14 mix (two
// deep path-tail sources dominating seed enumeration, a crowd of
// star-leaf sources dominating builds) plus a disconnected far island
// at the top of the vertex-id space. No source can reach the island,
// so its centers have zero possible contributors and the readiness
// analysis must release their §8.2.2 solves at t=0 — which makes the
// CentersReady counter deterministically positive on any host,
// single-core included, while the connected mix exercises the
// partitioned streaming merge under real contention.
func NewOverlapInstance(quick bool) PipelineInstance {
	pathN, chords, leaves := 900, 300, 140
	lightSources := 30
	island := 96
	if quick {
		pathN, chords, leaves = 220, 70, 40
		lightSources = 14
		island = 48
	}
	mix := graph.PathStarMix(xrand.New(23), pathN, chords, leaves)
	b := graph.NewBuilder(mix.NumVertices() + island)
	for e := 0; e < mix.NumEdges(); e++ {
		u, v := mix.EdgeEndpoints(e)
		if err := b.AddEdge(int(u), int(v)); err != nil {
			panic(err)
		}
	}
	for v := mix.NumVertices(); v < mix.NumVertices()+island-1; v++ {
		if err := b.AddEdge(v, v+1); err != nil {
			panic(err)
		}
	}
	g := b.MustBuild()
	sources := []int32{int32(pathN - 1), int32(3 * pathN / 4)}
	for l := 0; l < lightSources; l++ {
		sources = append(sources, int32(pathN+l))
	}
	return PipelineInstance{
		G: g, Sources: sources,
		N: g.NumVertices(), M: g.NumEdges(), Sigma: len(sources),
	}
}

// E20Row is one (parallelism, schedule) measurement in the committed
// BENCH_E20.json record.
type E20Row struct {
	N                 int     `json:"n"`
	M                 int     `json:"m"`
	Sigma             int     `json:"sigma"`
	Parallelism       int     `json:"parallelism"`
	Schedule          string  `json:"schedule"`
	SolveMillis       float64 `json:"solveMillis"`
	Identical         bool    `json:"identical"`
	SeedCount         int     `json:"seedCount"`
	SeedRehashes      int     `json:"seedRehashes"`
	PeakSeedPathBytes int64   `json:"peakSeedPathBytes"`
	CentersReady      int     `json:"centersReady"`
	CentersOverlapped int     `json:"centersOverlapped"`
}

// RunE20 — streaming past the seed merge. Sweeps Parallelism over the
// overlap instance under all three schedules (E14's two barriers plus
// the readiness-gated streaming default) and reports wall time, the
// speedup over each barrier, bit-identity against the barrier
// baseline, the seed-table invariants, and the two overlap counters.
// Wall-clock gains need multicore hardware — on few-core hosts the
// identity, rehash, and counter columns are the informative ones, and
// the speedup acceptance at P≥4 is asserted by TestPastMergeSpeedup on
// hosts with ≥ 8 CPUs. CentersReady > 0 on the streaming rows is
// hardware-independent (the far island's centers are released before
// any source runs) and is asserted unconditionally.
func RunE20(w io.Writer, cfg Config) error {
	inst := NewOverlapInstance(cfg.Quick)
	fmt.Fprintf(w, "  host: GOMAXPROCS=%d NumCPU=%d\n", runtime.GOMAXPROCS(0), runtime.NumCPU())

	t := NewTable("E20: streaming past the seed merge (overlap instance)",
		"n", "m", "sigma", "parallelism", "schedule", "solve", "speedup_vs_barrier",
		"speedup_vs_merge_barrier", "identical", "seed_rehashes",
		"peak_seed_path_bytes", "centers_ready", "centers_overlapped")

	var rows []E20Row
	var base []*rp.Result
	for _, par := range []int{1, 2, 4, 8} {
		var barrierMs, mergeBarrierMs float64
		for _, schedule := range []string{ScheduleBarrier, ScheduleMergeBarrier, ScheduleStream} {
			results, stats, d, err := inst.SolveSchedule(par, schedule)
			if err != nil {
				return err
			}
			identical := true
			if base == nil {
				base = results
			} else {
				for i := range results {
					if rp.Diff(base[i], results[i]) != "" {
						identical = false
					}
				}
			}
			row := E20Row{
				N: inst.N, M: inst.M, Sigma: inst.Sigma,
				Parallelism: par, Schedule: schedule,
				SolveMillis:       float64(d.Microseconds()) / 1000,
				Identical:         identical,
				SeedCount:         stats.SeedCount,
				SeedRehashes:      stats.SeedRehashes,
				PeakSeedPathBytes: stats.PeakSeedPathBytes,
				CentersReady:      stats.CentersReady,
				CentersOverlapped: stats.CentersOverlapped,
			}
			rows = append(rows, row)
			speedupB, speedupMB := 1.0, 0.0
			switch schedule {
			case ScheduleBarrier:
				barrierMs = row.SolveMillis
			case ScheduleMergeBarrier:
				mergeBarrierMs = row.SolveMillis
				speedupB = barrierMs / row.SolveMillis
			case ScheduleStream:
				speedupB = barrierMs / row.SolveMillis
				speedupMB = mergeBarrierMs / row.SolveMillis
				if row.CentersReady == 0 {
					return fmt.Errorf("E20: streaming P=%d reported CentersReady=0; the far island's centers were not released early", par)
				}
			}
			if row.SeedRehashes != 0 {
				return fmt.Errorf("E20: %s P=%d reported %d seed rehashes; presizing regressed", schedule, par, row.SeedRehashes)
			}
			if !identical {
				return fmt.Errorf("E20: %s P=%d diverged from the barrier baseline", schedule, par)
			}
			t.Row(inst.N, inst.M, inst.Sigma, par, schedule, d, speedupB, speedupMB,
				identical, row.SeedRehashes, row.PeakSeedPathBytes,
				row.CentersReady, row.CentersOverlapped)
		}
	}
	t.Print(w)

	if cfg.RecordPath != "" {
		env := NewEnvelope("E20",
			"Streaming past the seed merge: barrier vs merge-barrier vs readiness-gated overlap",
			map[string]any{"rows": rows})
		if err := env.WriteFile(cfg.RecordPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "  record written to %s\n", cfg.RecordPath)
	}
	return nil
}
