package rp

import (
	"testing"

	"msrp/internal/bfs"
	"msrp/internal/graph"
	"msrp/internal/xrand"
)

func TestNewResultShapes(t *testing.T) {
	g := graph.Grid(3, 4)
	tree := bfs.New(g, 0)
	res := NewResult(tree)
	if res.Source != 0 || res.Tree != tree {
		t.Fatal("header wrong")
	}
	for v := 0; v < g.NumVertices(); v++ {
		want := int(tree.Dist[v])
		if v == 0 {
			want = 0
		}
		if len(res.Len[v]) != want {
			t.Fatalf("row %d: %d entries, want %d", v, len(res.Len[v]), want)
		}
		for i, x := range res.Len[v] {
			if x != Inf {
				t.Fatalf("row %d[%d] not initialized to Inf", v, i)
			}
		}
	}
}

func TestNewResultUnreachableRows(t *testing.T) {
	b := graph.NewBuilder(5)
	_ = b.AddEdge(0, 1)
	g := b.MustBuild()
	res := NewResult(bfs.New(g, 0))
	for _, v := range []int{2, 3, 4} {
		if len(res.Len[v]) != 0 {
			t.Fatalf("unreachable row %d not empty", v)
		}
	}
	if res.NumQueries() != 1 {
		t.Fatalf("NumQueries = %d, want 1", res.NumQueries())
	}
}

func TestRowsShareBackingButNotRanges(t *testing.T) {
	// Rows are carved from one backing slice; writing one row must not
	// leak into its neighbor (full-slice-expression capacity check).
	g := graph.Path(5)
	res := NewResult(bfs.New(g, 0))
	row1 := res.Len[1]
	row1 = append(row1, 99) // must reallocate, not clobber row 2
	_ = row1
	if res.Len[2][0] != Inf {
		t.Fatal("append to one row clobbered the next")
	}
}

func TestAvoidAccessor(t *testing.T) {
	g := graph.Path(4)
	res := NewResult(bfs.New(g, 0))
	res.Len[3][1] = 7
	if res.Avoid(3, 1) != 7 {
		t.Fatal("Avoid accessor wrong")
	}
}

func TestDiffMessages(t *testing.T) {
	g := graph.Cycle(6)
	a := NewResult(bfs.New(g, 0))
	b := NewResult(bfs.New(g, 0))
	if d := Diff(a, b); d != "" {
		t.Fatalf("fresh results differ: %s", d)
	}
	b.Len[2][0] = 5
	if d := Diff(a, b); d == "" {
		t.Fatal("difference not reported")
	}
	c := NewResult(bfs.New(g, 1))
	if d := Diff(a, c); d == "" {
		t.Fatal("source mismatch not reported")
	}
}

func TestCountMismatchesTotals(t *testing.T) {
	rng := xrand.New(1)
	g := graph.RandomConnected(rng, 30, 60)
	a := NewResult(bfs.New(g, 3))
	b := NewResult(bfs.New(g, 3))
	mis, total := CountMismatches(a, b)
	if mis != 0 || total != a.NumQueries() {
		t.Fatalf("mis=%d total=%d want 0,%d", mis, total, a.NumQueries())
	}
	flipped := 0
	for v := range b.Len {
		if len(b.Len[v]) > 0 {
			b.Len[v][0] = 1
			flipped++
		}
	}
	mis, _ = CountMismatches(a, b)
	if mis != flipped {
		t.Fatalf("mis=%d want %d", mis, flipped)
	}
}
