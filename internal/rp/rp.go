// Package rp defines the shared output representation for replacement
// path computations.
//
// Every solver in the repository (brute force, classical single-pair,
// SSRP, MSRP) produces the same shape of answer so tests and benchmarks
// can compare them directly: for a source s and every target t, the
// length of the shortest s→t path avoiding each edge of the canonical
// (BFS-tree) s→t path, in order from the source.
package rp

import (
	"fmt"
	"math"

	"msrp/internal/bfs"
)

// Inf is the length reported when no replacement path exists (the
// avoided edge is a bridge separating s from t).
const Inf int32 = math.MaxInt32

// Result holds all replacement path lengths from one source.
type Result struct {
	// Source is the source vertex s.
	Source int32

	// Tree is the canonical BFS tree of s; replacement paths are
	// defined against its tree paths.
	Tree *bfs.Tree

	// Len[t][i] is |st ⋄ e_i| where e_i is the i-th edge (0-based,
	// counted from s) of the canonical s→t path. len(Len[t]) equals
	// Tree.Dist[t] for reachable t and 0 otherwise. A value of Inf
	// means no replacement path exists.
	Len [][]int32
}

// NewResult allocates a Result for the given tree with every length
// initialized to Inf. The per-target rows are carved out of one backing
// slice to keep the allocation count independent of n.
func NewResult(tree *bfs.Tree) *Result {
	n := len(tree.Dist)
	total := 0
	for t := 0; t < n; t++ {
		if d := tree.Dist[t]; d > 0 {
			total += int(d)
		}
	}
	backing := make([]int32, total)
	for i := range backing {
		backing[i] = Inf
	}
	res := &Result{
		Source: tree.Root,
		Tree:   tree,
		Len:    make([][]int32, n),
	}
	cursor := 0
	for t := 0; t < n; t++ {
		d := int(tree.Dist[t])
		if d <= 0 {
			continue
		}
		res.Len[t] = backing[cursor : cursor+d : cursor+d]
		cursor += d
	}
	return res
}

// Avoid returns |s,t ⋄ e_i| for the i-th path edge toward t. It panics
// on out-of-range indices (always a caller bug in this repository).
func (r *Result) Avoid(t int32, i int) int32 {
	return r.Len[t][i]
}

// NumQueries returns the total number of (t, e) pairs answered, which
// is the paper's Ω(σn²)-style output-size term for this source.
func (r *Result) NumQueries() int {
	total := 0
	for _, row := range r.Len {
		total += len(row)
	}
	return total
}

// Diff compares two results for the same source and returns a
// description of the first mismatch, or "" if they agree. Used by the
// cross-validation tests and the msrp-verify CLI.
func Diff(a, b *Result) string {
	if a.Source != b.Source {
		return fmt.Sprintf("sources differ: %d vs %d", a.Source, b.Source)
	}
	if len(a.Len) != len(b.Len) {
		return fmt.Sprintf("vertex counts differ: %d vs %d", len(a.Len), len(b.Len))
	}
	for t := range a.Len {
		if len(a.Len[t]) != len(b.Len[t]) {
			return fmt.Sprintf("path length to %d differs: %d vs %d edges",
				t, len(a.Len[t]), len(b.Len[t]))
		}
		for i := range a.Len[t] {
			if a.Len[t][i] != b.Len[t][i] {
				return fmt.Sprintf("d(%d,%d,e_%d) differs: %s vs %s",
					a.Source, t, i, fmtLen(a.Len[t][i]), fmtLen(b.Len[t][i]))
			}
		}
	}
	return ""
}

// CountMismatches returns how many (t, i) entries differ between two
// results for the same tree — the exactness-rate metric of EXPERIMENTS
// E5 — along with the total number of entries compared.
func CountMismatches(a, b *Result) (mismatched, total int) {
	for t := range a.Len {
		for i := range a.Len[t] {
			total++
			if a.Len[t][i] != b.Len[t][i] {
				mismatched++
			}
		}
	}
	return mismatched, total
}

func fmtLen(v int32) string {
	if v == Inf {
		return "inf"
	}
	return fmt.Sprintf("%d", v)
}
