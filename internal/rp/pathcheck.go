package rp

import (
	"fmt"

	"msrp/internal/graph"
)

// CheckReplacementPath machine-verifies a reconstructed replacement
// path: it must be a real walk in G − e from s to t (every step an
// existing edge, none of them the avoided edge e) of exactly want
// edges. A path that passes is a certificate of the reported length's
// soundness; the exactness half is the caller's cross-check against a
// brute-force oracle. Returns nil on success.
func CheckReplacementPath(g *graph.Graph, path []int32, s, t, e int32, want int32) error {
	if len(path) == 0 {
		return fmt.Errorf("empty path")
	}
	if path[0] != s || path[len(path)-1] != t {
		return fmt.Errorf("endpoints %d…%d, want %d…%d", path[0], path[len(path)-1], s, t)
	}
	if int32(len(path)-1) != want {
		return fmt.Errorf("path has %d edges, reported length is %d", len(path)-1, want)
	}
	for j := 0; j+1 < len(path); j++ {
		id, ok := g.EdgeID(int(path[j]), int(path[j+1]))
		if !ok {
			return fmt.Errorf("step %d: {%d,%d} is not an edge", j, path[j], path[j+1])
		}
		if id == e {
			return fmt.Errorf("step %d: path uses the avoided edge {%d,%d}", j, path[j], path[j+1])
		}
	}
	return nil
}

// VerifyReconstructions machine-verifies a result's reconstructions:
// for every (target, path-edge) answer — targets advanced by stride
// (1 = all; larger strides sample for cost-bounded harnesses) —
// reconstruct must return a CheckReplacementPath-valid walk for finite
// answers and nil for NoPath ones. Returns the number of verified
// finite paths and a description per failure. One implementation
// shared by the crosscheck suite, cmd/msrp-verify, and experiment E15,
// so the iteration contract (PathEdgesTo indexing, the NoPath↔nil
// pairing) lives in exactly one place.
func VerifyReconstructions(g *graph.Graph, res *Result, stride int32,
	reconstruct func(t int32, i int) ([]int32, error)) (verified int, failures []string) {
	if stride < 1 {
		stride = 1
	}
	for t := int32(0); t < int32(g.NumVertices()); t += stride {
		if len(res.Len[t]) == 0 {
			continue
		}
		edges := res.Tree.PathEdgesTo(t)
		for i, want := range res.Len[t] {
			path, err := reconstruct(t, i)
			fail := func(e error) {
				failures = append(failures, fmt.Sprintf("s=%d t=%d i=%d: %v", res.Source, t, i, e))
			}
			switch {
			case err != nil:
				fail(err)
			case want == Inf:
				if path != nil {
					fail(fmt.Errorf("path returned for a NoPath answer"))
				}
			default:
				if err := CheckReplacementPath(g, path, res.Source, t, edges[i], want); err != nil {
					fail(err)
				} else {
					verified++
				}
			}
		}
	}
	return verified, failures
}
