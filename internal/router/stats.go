package router

import (
	"net/http"
	"sync"

	"msrp/internal/server"
)

// ReplicaStats is one fleet member's row in the aggregated stats view.
type ReplicaStats struct {
	Name            string                `json:"name"`
	State           string                `json:"state"`
	RoutedItems     int64                 `json:"routedItems"`
	FailedOverItems int64                 `json:"failedOverItems"`
	ProbeFailures   int64                 `json:"probeFailures"`
	CachedSources   int                   `json:"cachedSources"`
	Stats           *server.StatsResponse `json:"stats,omitempty"`
}

// RouterSection is the router's own counters, nested under "router" in
// the stats response so a scraper built for a single replica's
// StatsResponse keeps working (it ignores the extra key) while a
// router-aware one sees the fleet.
type RouterSection struct {
	Batches       int64          `json:"batches"`
	Items         int64          `json:"items"`
	SubBatches    int64          `json:"subBatches"`
	Retries       int64          `json:"retries"`
	Failovers     int64          `json:"failovers"`
	FailoverWarms int64          `json:"failoverWarms"`
	RouteErrors   int64          `json:"routeErrors"`
	Rejections    int64          `json:"rejections"`
	Handbacks     int64          `json:"handbacks"`
	ReplicasUp    int            `json:"replicasUp"`
	Replicas      []ReplicaStats `json:"replicas"`
}

// StatsResponse is the router's /v1/stats body: a fleet-aggregated
// server.StatsResponse at the top level plus the "router" section.
type StatsResponse struct {
	server.StatsResponse
	Router RouterSection `json:"router"`
}

// aggregate folds per-replica stats into one fleet view. Counters sum;
// capacity facts (sources, maxCachedSources) and high-water marks (the
// warm-stage latencies, peak bytes) take the max — summing a latency
// across replicas that warmed in parallel would report a wall time
// nobody experienced; rates are recomputed from the summed counters.
func aggregate(parts []*server.StatsResponse) server.StatsResponse {
	var agg server.StatsResponse
	for _, p := range parts {
		if p == nil {
			continue
		}
		agg.Hits += p.Hits
		agg.Misses += p.Misses
		agg.Builds += p.Builds
		agg.BuildTimeMillis += p.BuildTimeMillis
		agg.Evictions += p.Evictions
		agg.Batches += p.Batches
		agg.BatchQueries += p.BatchQueries
		agg.Warms += p.Warms
		agg.Rejections += p.Rejections
		agg.Cancellations += p.Cancellations
		agg.CachedSources += p.CachedSources
		agg.ProvenanceBytes += p.ProvenanceBytes
		agg.ProvenanceEvictions += p.ProvenanceEvictions
		agg.ProvenanceRebuilds += p.ProvenanceRebuilds
		// The raw/compacted pair sums too: each replica warms its own
		// slice, so the fleet's plane is the sum of the slices' planes.
		agg.ProvenanceRawBytes += p.ProvenanceRawBytes
		agg.ProvenanceCompactedBytes += p.ProvenanceCompactedBytes
		if p.Sources > agg.Sources {
			agg.Sources = p.Sources
		}
		if p.MaxCachedSources > agg.MaxCachedSources {
			agg.MaxCachedSources = p.MaxCachedSources
		}
		if p.WarmStageBuildMillis > agg.WarmStageBuildMillis {
			agg.WarmStageBuildMillis = p.WarmStageBuildMillis
		}
		if p.WarmStageSeedEnumerateMillis > agg.WarmStageSeedEnumerateMillis {
			agg.WarmStageSeedEnumerateMillis = p.WarmStageSeedEnumerateMillis
		}
		if p.WarmStageSeedMergeMillis > agg.WarmStageSeedMergeMillis {
			agg.WarmStageSeedMergeMillis = p.WarmStageSeedMergeMillis
		}
		if p.WarmStageCenterLandmarkMillis > agg.WarmStageCenterLandmarkMillis {
			agg.WarmStageCenterLandmarkMillis = p.WarmStageCenterLandmarkMillis
		}
		if p.WarmStageAssemblyMillis > agg.WarmStageAssemblyMillis {
			agg.WarmStageAssemblyMillis = p.WarmStageAssemblyMillis
		}
		if p.WarmPeakSeedPathBytes > agg.WarmPeakSeedPathBytes {
			agg.WarmPeakSeedPathBytes = p.WarmPeakSeedPathBytes
		}
	}
	if lookups := agg.Hits + agg.Misses; lookups > 0 {
		agg.HitRate = float64(agg.Hits) / float64(lookups)
	}
	if agg.Builds > 0 {
		agg.AvgBuildMillis = float64(agg.BuildTimeMillis) / float64(agg.Builds)
	}
	if agg.Batches > 0 {
		agg.AvgBatchSize = float64(agg.BatchQueries) / float64(agg.Batches)
	}
	return agg
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	// Scrape live replicas concurrently; a down replica contributes its
	// routing counters but no oracle stats (it is not there to ask).
	parts := make([]*server.StatsResponse, len(rt.reps))
	cachedCounts := make([]int, len(rt.reps))
	var wg sync.WaitGroup
	for i, rep := range rt.reps {
		if rep.State() == StateDown {
			continue
		}
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			var st server.StatsResponse
			if err := rt.getJSON(r.Context(), base+"/v1/stats", &st); err == nil {
				parts[i] = &st
				cachedCounts[i] = st.CachedSources
			}
		}(i, rep.name)
	}
	wg.Wait()

	sec := RouterSection{
		Batches:       rt.batches.Load(),
		Items:         rt.items.Load(),
		SubBatches:    rt.subBatches.Load(),
		Retries:       rt.retries.Load(),
		Failovers:     rt.failovers.Load(),
		FailoverWarms: rt.failoverWarms.Load(),
		RouteErrors:   rt.routeErrors.Load(),
		Rejections:    rt.rejections.Load(),
		Handbacks:     rt.health.handbacks.Load(),
		Replicas:      make([]ReplicaStats, len(rt.reps)),
	}
	for i, rep := range rt.reps {
		state := rep.State()
		if state == StateUp {
			sec.ReplicasUp++
		}
		sec.Replicas[i] = ReplicaStats{
			Name:            rep.name,
			State:           state.String(),
			RoutedItems:     rep.routedItems.Load(),
			FailedOverItems: rep.failedOverItems.Load(),
			ProbeFailures:   rep.probeFailures.Load(),
			CachedSources:   cachedCounts[i],
			Stats:           parts[i],
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		StatsResponse: aggregate(parts),
		Router:        sec,
	})
}
