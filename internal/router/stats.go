package router

import (
	"net/http"
	"sync"

	"msrp/internal/server"
)

// ReplicaStats is one fleet member's row in the aggregated stats view.
type ReplicaStats struct {
	Name            string                `json:"name"`
	State           string                `json:"state"`
	Member          bool                  `json:"member"`
	JoinEpoch       uint64                `json:"joinEpoch"`
	SliceWarmed     bool                  `json:"sliceWarmed"`
	RoutedItems     int64                 `json:"routedItems"`
	FailedOverItems int64                 `json:"failedOverItems"`
	ProbeFailures   int64                 `json:"probeFailures"`
	CachedSources   int                   `json:"cachedSources"`
	Stats           *server.StatsResponse `json:"stats,omitempty"`
}

// RouterSection is the router's own counters, nested under "router" in
// the stats response so a scraper built for a single replica's
// StatsResponse keeps working (it ignores the extra key) while a
// router-aware one sees the fleet.
type RouterSection struct {
	Batches         int64          `json:"batches"`
	Items           int64          `json:"items"`
	SubBatches      int64          `json:"subBatches"`
	Retries         int64          `json:"retries"`
	Failovers       int64          `json:"failovers"`
	FailoverWarms   int64          `json:"failoverWarms"`
	RouteErrors     int64          `json:"routeErrors"`
	Rejections      int64          `json:"rejections"`
	Handbacks       int64          `json:"handbacks"`
	Epoch           uint64         `json:"epoch"`
	Joins           int64          `json:"joins"`
	Drains          int64          `json:"drains"`
	Removes         int64          `json:"removes"`
	MembershipWarms int64          `json:"membershipWarms"`
	StaleReplicas   int            `json:"staleReplicas"`
	Members         []int          `json:"members"`
	ReplicasUp      int            `json:"replicasUp"`
	Replicas        []ReplicaStats `json:"replicas"`
}

// StatsResponse is the router's /v1/stats body: a fleet-aggregated
// server.StatsResponse at the top level plus the "router" section.
type StatsResponse struct {
	server.StatsResponse
	Router RouterSection `json:"router"`
}

// aggregate folds per-replica stats into one fleet view. Counters sum;
// capacity facts (sources, maxCachedSources) and high-water marks (the
// warm-stage latencies, peak bytes) take the max — summing a latency
// across replicas that warmed in parallel would report a wall time
// nobody experienced; rates are recomputed from the summed counters.
func aggregate(parts []*server.StatsResponse) server.StatsResponse {
	var agg server.StatsResponse
	for _, p := range parts {
		if p == nil {
			continue
		}
		agg.Hits += p.Hits
		agg.Misses += p.Misses
		agg.Builds += p.Builds
		agg.BuildTimeMillis += p.BuildTimeMillis
		agg.Evictions += p.Evictions
		agg.Batches += p.Batches
		agg.BatchQueries += p.BatchQueries
		agg.Warms += p.Warms
		agg.Rejections += p.Rejections
		agg.Cancellations += p.Cancellations
		agg.CachedSources += p.CachedSources
		agg.ProvenanceBytes += p.ProvenanceBytes
		agg.ProvenanceEvictions += p.ProvenanceEvictions
		agg.ProvenanceRebuilds += p.ProvenanceRebuilds
		agg.ProvenanceRebuildRejects += p.ProvenanceRebuildRejects
		// The raw/compacted pair sums too: each replica warms its own
		// slice, so the fleet's plane is the sum of the slices' planes.
		agg.ProvenanceRawBytes += p.ProvenanceRawBytes
		agg.ProvenanceCompactedBytes += p.ProvenanceCompactedBytes
		if p.Sources > agg.Sources {
			agg.Sources = p.Sources
		}
		if p.MaxCachedSources > agg.MaxCachedSources {
			agg.MaxCachedSources = p.MaxCachedSources
		}
		if p.WarmStageBuildMillis > agg.WarmStageBuildMillis {
			agg.WarmStageBuildMillis = p.WarmStageBuildMillis
		}
		if p.WarmStageSeedEnumerateMillis > agg.WarmStageSeedEnumerateMillis {
			agg.WarmStageSeedEnumerateMillis = p.WarmStageSeedEnumerateMillis
		}
		if p.WarmStageSeedMergeMillis > agg.WarmStageSeedMergeMillis {
			agg.WarmStageSeedMergeMillis = p.WarmStageSeedMergeMillis
		}
		if p.WarmStageCenterLandmarkMillis > agg.WarmStageCenterLandmarkMillis {
			agg.WarmStageCenterLandmarkMillis = p.WarmStageCenterLandmarkMillis
		}
		if p.WarmStageAssemblyMillis > agg.WarmStageAssemblyMillis {
			agg.WarmStageAssemblyMillis = p.WarmStageAssemblyMillis
		}
		if p.WarmPeakSeedPathBytes > agg.WarmPeakSeedPathBytes {
			agg.WarmPeakSeedPathBytes = p.WarmPeakSeedPathBytes
		}
		// Overlap counters are work counts, not latencies: each replica's
		// slice warm released its own centers early, so the fleet total is
		// the sum, like the other counters.
		agg.WarmCentersReady += p.WarmCentersReady
		agg.WarmCentersOverlapped += p.WarmCentersOverlapped
	}
	if lookups := agg.Hits + agg.Misses; lookups > 0 {
		agg.HitRate = float64(agg.Hits) / float64(lookups)
	}
	if agg.Builds > 0 {
		agg.AvgBuildMillis = float64(agg.BuildTimeMillis) / float64(agg.Builds)
	}
	if agg.Batches > 0 {
		agg.AvgBatchSize = float64(agg.BatchQueries) / float64(agg.Batches)
	}
	return agg
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	// Snapshot the replica table and the ring once: rows added by a
	// concurrent join simply don't appear in this scrape.
	reps := rt.health.snapshot()
	ring := rt.ring.Load()

	// Scrape live replicas concurrently; a replica that is down (or
	// removed, or dies mid-scrape) contributes its routing counters but
	// no oracle stats — it is not there to ask. Serving members whose
	// scrape fails are reported as stale rather than silently absorbed
	// into a too-small aggregate.
	parts := make([]*server.StatsResponse, len(reps))
	cachedCounts := make([]int, len(reps))
	scraped := make([]bool, len(reps))
	var wg sync.WaitGroup
	for i, rep := range reps {
		if rep.removed.Load() || rep.State() == StateDown {
			continue
		}
		scraped[i] = true
		wg.Add(1)
		go func(i int, base string) {
			defer wg.Done()
			var st server.StatsResponse
			if err := rt.getJSON(r.Context(), base+"/v1/stats", &st); err == nil {
				parts[i] = &st
				cachedCounts[i] = st.CachedSources
			}
		}(i, rep.name)
	}
	wg.Wait()

	stale := 0
	for i := range reps {
		if ring.Contains(i) && (!scraped[i] || parts[i] == nil) {
			stale++
		}
	}

	sec := RouterSection{
		Batches:         rt.batches.Load(),
		Items:           rt.items.Load(),
		SubBatches:      rt.subBatches.Load(),
		Retries:         rt.retries.Load(),
		Failovers:       rt.failovers.Load(),
		FailoverWarms:   rt.failoverWarms.Load(),
		RouteErrors:     rt.routeErrors.Load(),
		Rejections:      rt.rejections.Load(),
		Handbacks:       rt.health.handbacks.Load(),
		Epoch:           ring.Epoch(),
		Joins:           rt.joins.Load(),
		Drains:          rt.drains.Load(),
		Removes:         rt.removes.Load(),
		MembershipWarms: rt.membershipWarms.Load(),
		StaleReplicas:   stale,
		Members:         ring.Members(),
		Replicas:        make([]ReplicaStats, len(reps)),
	}
	for i, rep := range reps {
		state := rep.State()
		stateStr := state.String()
		if rep.removed.Load() {
			stateStr = "removed"
		} else if state == StateUp && ring.Contains(i) {
			sec.ReplicasUp++
		}
		sec.Replicas[i] = ReplicaStats{
			Name:            rep.name,
			State:           stateStr,
			Member:          ring.Contains(i),
			JoinEpoch:       rep.joinEpoch.Load(),
			SliceWarmed:     rep.sliceWarmed.Load(),
			RoutedItems:     rep.routedItems.Load(),
			FailedOverItems: rep.failedOverItems.Load(),
			ProbeFailures:   rep.probeFailures.Load(),
			CachedSources:   cachedCounts[i],
			Stats:           parts[i],
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		StatsResponse: aggregate(parts),
		Router:        sec,
	})
}
