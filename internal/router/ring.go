// Package router is the replica-sharded serving tier over a fleet of
// msrp-serve replicas: a thin coordinator that consistent-hashes source
// ids across N replicas (so each replica warms and caches only its
// slice of the σ·n² oracle state), splits mixed-source /v1/query
// batches into per-replica sub-batches, scatter-gathers them
// concurrently, and reassembles the answers in request order. It
// exposes the same /v1/query, /v1/warm, /v1/stats, /healthz surface as
// a single msrp-serve, so clients (including cmd/msrp-load) work
// unmodified against a fleet.
//
// Robustness contract:
//
//   - Per-item deadlines: every item gets Config.ItemDeadline of budget
//     from batch arrival. A replica that blows it fails only that
//     item's sub-batch — the item reports a routeError field while its
//     siblings from healthy replicas answer normally. The router never
//     turns a replica failure into a whole-batch 5xx.
//   - Bounded retries with full-jitter exponential backoff. 429s from a
//     replica's admission control are retried on the same replica (the
//     capacity will free; rerouting would just thrash another cache)
//     after obeying its Retry-After hint; transport errors, 5xx, and
//     replica deadline verdicts (504) re-route to the next candidate on
//     the ring.
//   - Active health checking: a /healthz probe loop drives each replica
//     through an up/down/draining state machine, with data-path
//     failures reported into the same machine so a crash is detected at
//     the next query, not the next probe.
//   - Failover and hand-back: a down replica's hash range fails over to
//     the next live candidates on the ring, which lazily warm the
//     orphaned sources through the oracle's existing single-flight
//     build path. When the replica rejoins, its slice routes back to it
//     (the ring epoch never changed) and the router re-warms the slice
//     on the rejoined replica in the background.
//   - Dynamic membership: the ring is an epoch-versioned immutable
//     snapshot swapped atomically. POST /v1/members joins, drains, and
//     removes replicas at runtime; a joiner is warm-before-serve (its
//     would-be slice is pre-built on it while the old epoch keeps
//     serving, and only then is the new epoch published), a drain
//     warms the departing slice onto its successors before the epoch
//     flips. In-flight batches pin the epoch they started on, so no
//     query ever lands on a cold owner and answers stay bit-identical
//     across the swap.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"

	"msrp/internal/xrand"
)

// ringPoint is one virtual node: a position on the 2^64 ring owned by a
// replica slot.
type ringPoint struct {
	hash    uint64
	replica int
}

// Ring is one immutable epoch of fleet membership: a consistent-hash
// placement of source ids over the member slots. Membership changes
// never mutate a Ring — they build the next epoch's Ring and swap it in
// atomically, so a batch that captured a snapshot keeps routing on the
// membership it started with. Slot ids are stable for the router's
// lifetime (a removed slot's id is never reused), and each slot's vnode
// sequence is seeded from its id alone, so adding or removing a member
// moves only the hash ranges adjacent to that member's points — the
// consistent-hashing property that keeps a join or drain from
// reshuffling every slice.
type Ring struct {
	epoch   uint64
	members []int // sorted member slot ids
	points  []ringPoint
	maxSlot int // 1 + max member slot, for dense seen-sets
}

// NewRing places vnodes virtual nodes per replica (0 = 64) on the ring
// for the boot fleet: epoch 1, member slots 0..replicas-1.
func NewRing(replicas, vnodes int) (*Ring, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("router: ring needs at least one replica, got %d", replicas)
	}
	members := make([]int, replicas)
	for i := range members {
		members[i] = i
	}
	return NewMemberRing(1, members, vnodes)
}

// NewMemberRing builds the ring for an arbitrary member set at the
// given epoch. The layout depends only on (members, vnodes) — epoch is
// carried, not hashed — so every router that agrees on the member set
// agrees on placement.
func NewMemberRing(epoch uint64, members []int, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("router: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	sorted := append([]int(nil), members...)
	sort.Ints(sorted)
	for i, m := range sorted {
		if m < 0 {
			return nil, fmt.Errorf("router: negative member slot %d", m)
		}
		if i > 0 && sorted[i-1] == m {
			return nil, fmt.Errorf("router: duplicate member slot %d", m)
		}
	}
	r := &Ring{
		epoch:   epoch,
		members: sorted,
		maxSlot: sorted[len(sorted)-1] + 1,
	}
	r.points = make([]ringPoint, 0, len(sorted)*vnodes)
	for _, slot := range sorted {
		// Seed each slot's vnode sequence from a hash of its id so the
		// point sets of different slots are decorrelated — and stable
		// across membership changes.
		h := fnv.New64a()
		fmt.Fprintf(h, "replica-%d", slot)
		seed := h.Sum64()
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    xrand.Mix(seed ^ xrand.Mix(uint64(v)+1)),
				replica: slot,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on slot id so the order is total and deterministic
		// even in the (astronomically unlikely) collision.
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// Epoch is this snapshot's membership version. Epochs only ever grow.
func (r *Ring) Epoch() uint64 { return r.epoch }

// Members returns the member slot ids, sorted.
func (r *Ring) Members() []int { return append([]int(nil), r.members...) }

// Replicas returns the member count.
func (r *Ring) Replicas() int { return len(r.members) }

// Contains reports whether slot is a serving member of this epoch.
func (r *Ring) Contains(slot int) bool {
	i := sort.SearchInts(r.members, slot)
	return i < len(r.members) && r.members[i] == slot
}

// hashSource maps a source id onto the ring.
func hashSource(source int) uint64 {
	return xrand.Mix(uint64(int64(source)) ^ 0x5851f42d4c957f2d)
}

// Owner returns the member slot that owns source — the first point at
// or after the source's hash, wrapping.
func (r *Ring) Owner(source int) int {
	h := hashSource(source)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].replica
}

// Candidates returns every member slot in ring order starting at the
// source's owner: Candidates(s)[0] is Owner(s), and the rest is the
// deterministic failover order — the same walk every router instance
// would take, so failed-over sources concentrate on the same fallback
// replica (one orphaned rebuild, not one per router).
func (r *Ring) Candidates(source int) []int {
	h := hashSource(source)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, len(r.members))
	seen := make([]bool, r.maxSlot)
	for k := 0; k < len(r.points) && len(out) < len(r.members); k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	// Vnode placement makes missing a member possible only if it has
	// zero points, which NewMemberRing rules out; keep the invariant
	// anyway.
	for _, m := range r.members {
		if !seen[m] {
			out = append(out, m)
		}
	}
	return out
}

// Owned returns the subset of sources whose owner under this ring is
// slot — the slice a joiner must warm before the epoch publishes, and
// the slice a drain must hand to successors before it flips.
func (r *Ring) Owned(sources []int, slot int) []int {
	var slice []int
	for _, s := range sources {
		if r.Owner(s) == slot {
			slice = append(slice, s)
		}
	}
	return slice
}
