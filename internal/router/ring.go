// Package router is the replica-sharded serving tier over a fleet of
// msrp-serve replicas: a thin coordinator that consistent-hashes source
// ids across N replicas (so each replica warms and caches only its
// slice of the σ·n² oracle state), splits mixed-source /v1/query
// batches into per-replica sub-batches, scatter-gathers them
// concurrently, and reassembles the answers in request order. It
// exposes the same /v1/query, /v1/warm, /v1/stats, /healthz surface as
// a single msrp-serve, so clients (including cmd/msrp-load) work
// unmodified against a fleet.
//
// Robustness contract:
//
//   - Per-item deadlines: every item gets Config.ItemDeadline of budget
//     from batch arrival. A replica that blows it fails only that
//     item's sub-batch — the item reports a routeError field while its
//     siblings from healthy replicas answer normally. The router never
//     turns a replica failure into a whole-batch 5xx.
//   - Bounded retries with full-jitter exponential backoff. 429s from a
//     replica's admission control are retried on the same replica (the
//     capacity will free; rerouting would just thrash another cache)
//     after obeying its Retry-After hint; transport errors, 5xx, and
//     replica deadline verdicts (504) re-route to the next candidate on
//     the ring.
//   - Active health checking: a /healthz probe loop drives each replica
//     through an up/down/draining state machine, with data-path
//     failures reported into the same machine so a crash is detected at
//     the next query, not the next probe.
//   - Failover and hand-back: a down replica's hash range fails over to
//     the next live candidates on the ring, which lazily warm the
//     orphaned sources through the oracle's existing single-flight
//     build path. When the replica rejoins, its slice routes back to it
//     (the ring never changed) and the router re-warms the slice on the
//     rejoined replica in the background.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"

	"msrp/internal/xrand"
)

// ringPoint is one virtual node: a position on the 2^64 ring owned by a
// replica.
type ringPoint struct {
	hash    uint64
	replica int
}

// Ring consistent-hashes source ids over a fixed replica set. The
// replica set is construction-time fixed — membership changes are a
// health concern, not a ring concern — which is what makes hand-back
// automatic: a source's owner never moves, so when the owner comes back
// up, routing returns to it without any state migration.
type Ring struct {
	points   []ringPoint
	replicas int
}

// NewRing places vnodes virtual nodes per replica (0 = 64) on the ring.
// Replicas are identified by index; the layout depends only on
// (replicas, vnodes), so every router over the same fleet agrees.
func NewRing(replicas, vnodes int) (*Ring, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("router: ring needs at least one replica, got %d", replicas)
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{replicas: replicas}
	r.points = make([]ringPoint, 0, replicas*vnodes)
	for i := 0; i < replicas; i++ {
		// Seed each replica's vnode sequence from a hash of its index so
		// the point sets of different replicas are decorrelated.
		h := fnv.New64a()
		fmt.Fprintf(h, "replica-%d", i)
		seed := h.Sum64()
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    xrand.Mix(seed ^ xrand.Mix(uint64(v)+1)),
				replica: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Tie-break on replica index so the order is total and
		// deterministic even in the (astronomically unlikely) collision.
		return r.points[a].replica < r.points[b].replica
	})
	return r, nil
}

// Replicas returns the fleet size the ring was built for.
func (r *Ring) Replicas() int { return r.replicas }

// hashSource maps a source id onto the ring.
func hashSource(source int) uint64 {
	return xrand.Mix(uint64(int64(source)) ^ 0x5851f42d4c957f2d)
}

// Owner returns the replica that owns source — the first point at or
// after the source's hash, wrapping.
func (r *Ring) Owner(source int) int {
	h := hashSource(source)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].replica
}

// Candidates returns every replica in ring order starting at the
// source's owner: Candidates(s)[0] is Owner(s), and the rest is the
// deterministic failover order — the same walk every router instance
// would take, so failed-over sources concentrate on the same fallback
// replica (one orphaned rebuild, not one per router).
func (r *Ring) Candidates(source int) []int {
	h := hashSource(source)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.replicas)
	seen := make([]bool, r.replicas)
	for k := 0; k < len(r.points) && len(out) < r.replicas; k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	// Vnode placement makes missing a replica possible only if it has
	// zero points, which NewRing rules out; keep the invariant anyway.
	for i := 0; i < r.replicas; i++ {
		if !seen[i] {
			out = append(out, i)
		}
	}
	return out
}
