package router

// Dynamic fleet membership: join, drain, and remove replicas at
// runtime, each publishing a new ring epoch only after the hand-off
// warm has completed. The serving invariant is warm-before-serve: a
// source's owner under epoch E has always finished building that
// source's plane before any batch pinned to E can route it there —
// joiners warm their incoming slice before their epoch publishes,
// drains warm the departing slice onto its successors before the epoch
// flips, and in-flight batches keep routing on the epoch they pinned
// at arrival.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// MemberInfo is one replica slot's membership row.
type MemberInfo struct {
	Replica     int    `json:"replica"`
	URL         string `json:"url"`
	State       string `json:"state"`
	Member      bool   `json:"member"`
	JoinEpoch   uint64 `json:"joinEpoch"`
	SliceWarmed bool   `json:"sliceWarmed"`
}

// MembersResponse is the GET /v1/members body.
type MembersResponse struct {
	Epoch    uint64       `json:"epoch"`
	Members  []int        `json:"members"`
	Replicas []MemberInfo `json:"replicas"`
}

// MemberOpResponse is the POST /v1/members body.
type MemberOpResponse struct {
	Epoch   uint64 `json:"epoch"`
	Replica int    `json:"replica"`
	Warmed  int    `json:"warmed,omitempty"`
	Error   string `json:"error,omitempty"`
}

// memberRequest is the POST /v1/members request.
type memberRequest struct {
	Op      string `json:"op"`                // join | drain | remove
	URL     string `json:"url,omitempty"`     // join: the replica's base URL
	Replica *int   `json:"replica,omitempty"` // drain/remove: the slot id
}

// Join adds a replica to the fleet, warm-before-serve: the slice the
// next ring would assign it is built on it via /v1/warm while the
// current epoch keeps serving, and only on success does the new epoch
// publish. Returns the new slot id and the warmed slice size.
func (rt *Router) Join(ctx context.Context, url string) (int, int, error) {
	url = strings.TrimRight(url, "/")
	if url == "" {
		return -1, 0, fmt.Errorf("router: join needs a replica URL")
	}
	rt.memberMu.Lock()
	defer rt.memberMu.Unlock()
	cur := rt.ring.Load()
	for _, slot := range cur.Members() {
		if rt.rep(slot).name == url {
			return -1, 0, fmt.Errorf("router: %s is already member slot %d", url, slot)
		}
	}
	// The joiner must answer /healthz before we spend a σ/N warm on it.
	if err := rt.checkHealthz(ctx, url); err != nil {
		return -1, 0, fmt.Errorf("router: joiner %s not healthy: %w", url, err)
	}
	// sourceSet needs a live member; resolve it before allocating the
	// slot so a dead fleet fails the join cleanly.
	sources, err := rt.sourceSet(ctx)
	if err != nil {
		return -1, 0, fmt.Errorf("router: join %s: %w", url, err)
	}
	// Allocate the slot. The replica is in the health table (probed,
	// optimistically up) but not in any published ring, so no traffic
	// routes to it yet.
	r := &replica{name: url}
	slot := rt.health.add(r)
	next, err := NewMemberRing(cur.Epoch()+1, append(cur.Members(), slot), rt.cfg.VNodes)
	if err != nil {
		r.removed.Store(true)
		return -1, 0, err
	}
	slice := next.Owned(sources, slot)
	if len(slice) > 0 {
		if err := rt.postWarm(ctx, url, slice); err != nil {
			r.removed.Store(true)
			return -1, 0, fmt.Errorf("router: join %s: warm-before-serve failed: %w", url, err)
		}
		rt.membershipWarms.Add(int64(len(slice)))
	}
	r.sliceWarmed.Store(true)
	r.joinEpoch.Store(next.Epoch())
	rt.ring.Store(next)
	rt.joins.Add(1)
	rt.logf("membership: epoch %d: replica %d (%s) joined, %d sources warmed before serving", next.Epoch(), slot, url, len(slice))
	return slot, len(slice), nil
}

// Drain removes a replica from the ring gracefully: its successors
// under the next ring warm the departing slice first, then the epoch
// flips. The replica itself is untouched — batches pinned to older
// epochs finish against it; call Remove (and then stop the process)
// once they have. Returns how many sources moved to successors.
func (rt *Router) Drain(ctx context.Context, slot int) (int, error) {
	rt.memberMu.Lock()
	defer rt.memberMu.Unlock()
	cur := rt.ring.Load()
	if !cur.Contains(slot) {
		return 0, fmt.Errorf("router: replica %d is not a member of epoch %d", slot, cur.Epoch())
	}
	if cur.Replicas() == 1 {
		return 0, fmt.Errorf("router: cannot drain the last member")
	}
	var kept []int
	for _, m := range cur.Members() {
		if m != slot {
			kept = append(kept, m)
		}
	}
	next, err := NewMemberRing(cur.Epoch()+1, kept, rt.cfg.VNodes)
	if err != nil {
		return 0, err
	}
	sources, err := rt.sourceSet(ctx)
	if err != nil {
		return 0, fmt.Errorf("router: drain %d: %w", slot, err)
	}
	// Everything the departing slot owns today moves to its owner under
	// the next ring; consistent hashing keeps the rest in place.
	slices := make(map[int][]int)
	moved := 0
	for _, s := range sources {
		if cur.Owner(s) != slot {
			continue
		}
		succ := next.Owner(s)
		slices[succ] = append(slices[succ], s)
		moved++
	}
	type warmOut struct {
		succ int
		n    int
		err  error
	}
	out := make(chan warmOut, len(slices))
	launched := 0
	for succ, slice := range slices {
		rep := rt.rep(succ)
		if rep.removed.Load() || rep.State() != StateUp {
			// A down successor will lazily warm through failover (and
			// hand-back re-warms it on rejoin); do not block the drain.
			rt.logf("membership: drain %d: successor %d is %s, skipping its %d-source warm", slot, succ, rep.State(), len(slice))
			continue
		}
		launched++
		go func(succ int, slice []int) {
			out <- warmOut{succ, len(slice), rt.postWarm(ctx, rep.name, slice)}
		}(succ, slice)
	}
	for i := 0; i < launched; i++ {
		o := <-out
		if o.err != nil {
			// An up successor that cannot warm fails the drain: flipping
			// the epoch now would route its inherited slice cold.
			return 0, fmt.Errorf("router: drain %d: successor %d warm failed: %w", slot, o.succ, o.err)
		}
		rt.membershipWarms.Add(int64(o.n))
	}
	rt.ring.Store(next)
	rt.drains.Add(1)
	rt.logf("membership: epoch %d: replica %d drained, %d sources handed to %d successors", next.Epoch(), slot, moved, len(slices))
	return moved, nil
}

// Remove retires a replica slot for good: its probe loop exits and it
// is never routed to again. If the slot is somehow still a ring member
// (crash-remove without a prior Drain), the epoch flips without a
// hand-off warm — successors lazily warm the orphaned sources through
// the oracle's single-flight build, exactly as failover does.
func (rt *Router) Remove(slot int) error {
	rt.memberMu.Lock()
	defer rt.memberMu.Unlock()
	if slot < 0 || slot >= rt.health.count() {
		return fmt.Errorf("router: no replica slot %d", slot)
	}
	cur := rt.ring.Load()
	if cur.Contains(slot) {
		if cur.Replicas() == 1 {
			return fmt.Errorf("router: cannot remove the last member")
		}
		var kept []int
		for _, m := range cur.Members() {
			if m != slot {
				kept = append(kept, m)
			}
		}
		next, err := NewMemberRing(cur.Epoch()+1, kept, rt.cfg.VNodes)
		if err != nil {
			return err
		}
		rt.ring.Store(next)
		rt.logf("membership: epoch %d: replica %d removed while still a member; successors warm lazily", next.Epoch(), slot)
	}
	rt.rep(slot).removed.Store(true)
	rt.removes.Add(1)
	return nil
}

// checkHealthz does one direct health check against a base URL (used
// before spending a warm on a joiner that might not exist).
func (rt *Router) checkHealthz(ctx context.Context, base string) error {
	hctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(hctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

func (rt *Router) handleMembersGet(w http.ResponseWriter, r *http.Request) {
	ring := rt.ring.Load()
	reps := rt.health.snapshot()
	resp := MembersResponse{
		Epoch:    ring.Epoch(),
		Members:  ring.Members(),
		Replicas: make([]MemberInfo, len(reps)),
	}
	for i, rep := range reps {
		st := rep.State().String()
		if rep.removed.Load() {
			st = "removed"
		}
		resp.Replicas[i] = MemberInfo{
			Replica:     i,
			URL:         rep.name,
			State:       st,
			Member:      ring.Contains(i),
			JoinEpoch:   rep.joinEpoch.Load(),
			SliceWarmed: rep.sliceWarmed.Load(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleMembersPost(w http.ResponseWriter, r *http.Request) {
	var req memberRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, MemberOpResponse{Replica: -1, Error: "bad request body: " + err.Error()})
		return
	}
	switch req.Op {
	case "join":
		if req.URL == "" {
			writeJSON(w, http.StatusBadRequest, MemberOpResponse{Replica: -1, Error: `join needs "url"`})
			return
		}
		slot, warmed, err := rt.Join(r.Context(), req.URL)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, MemberOpResponse{Epoch: rt.ring.Load().Epoch(), Replica: slot, Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, MemberOpResponse{Epoch: rt.ring.Load().Epoch(), Replica: slot, Warmed: warmed})
	case "drain":
		if req.Replica == nil {
			writeJSON(w, http.StatusBadRequest, MemberOpResponse{Replica: -1, Error: `drain needs "replica"`})
			return
		}
		moved, err := rt.Drain(r.Context(), *req.Replica)
		if err != nil {
			writeJSON(w, http.StatusBadGateway, MemberOpResponse{Epoch: rt.ring.Load().Epoch(), Replica: *req.Replica, Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, MemberOpResponse{Epoch: rt.ring.Load().Epoch(), Replica: *req.Replica, Warmed: moved})
	case "remove":
		if req.Replica == nil {
			writeJSON(w, http.StatusBadRequest, MemberOpResponse{Replica: -1, Error: `remove needs "replica"`})
			return
		}
		if err := rt.Remove(*req.Replica); err != nil {
			writeJSON(w, http.StatusBadGateway, MemberOpResponse{Epoch: rt.ring.Load().Epoch(), Replica: *req.Replica, Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, MemberOpResponse{Epoch: rt.ring.Load().Epoch(), Replica: *req.Replica})
	default:
		writeJSON(w, http.StatusBadRequest, MemberOpResponse{Replica: -1, Error: fmt.Sprintf("unknown op %q (want join, drain, or remove)", req.Op)})
	}
}
