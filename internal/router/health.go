package router

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// State is a replica's routability as seen by the health checker.
type State int32

const (
	// StateUp: routable. Replicas start up optimistically so traffic
	// flows before the first probe lands; a dead replica is demoted by
	// the probe loop or by the first data-path failure, whichever comes
	// first.
	StateUp State = iota
	// StateDown: not routable; its hash range fails over. Rejoins after
	// Config.UpAfter consecutive probe successes.
	StateDown
	// StateDraining: the replica answered /healthz 503 "draining" — it
	// is finishing in-flight work before exiting. Not routable for new
	// sub-batches, but not a failure either: no failure counters move.
	StateDraining
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	case StateDraining:
		return "draining"
	default:
		return "unknown"
	}
}

// replica is one fleet member's health record plus routing counters.
type replica struct {
	name  string // base URL
	state atomic.Int32

	mu    sync.Mutex
	fails int // consecutive probe/data-path failures
	oks   int // consecutive probe successes

	// Counters for the aggregated stats view.
	routedItems     atomic.Int64 // items answered by this replica
	failedOverItems atomic.Int64 // …of which it was not the owner
	probeFailures   atomic.Int64
}

func (r *replica) State() State { return State(r.state.Load()) }

// health drives the per-replica state machines: an active /healthz
// probe loop per replica, plus passive failure reports from the data
// path (a scatter that hits a dead TCP socket should not wait for the
// next probe tick to stop routing there).
type health struct {
	replicas           []*replica
	client             *http.Client
	interval           time.Duration
	timeout            time.Duration
	failAfter, upAfter int

	logf func(format string, args ...any)

	// onRejoin fires on a down→up transition (hand-back): the router
	// re-warms the rejoined replica's hash slice in the background.
	onRejoin func(replica int)

	handbacks atomic.Int64

	stop    chan struct{}
	stopped sync.WaitGroup
}

// markSuccess advances the state machine on a healthy probe.
func (h *health) markSuccess(i int) {
	r := h.replicas[i]
	r.mu.Lock()
	r.fails = 0
	r.oks++
	st := r.State()
	promote := st != StateUp && r.oks >= h.upAfter
	if promote {
		r.state.Store(int32(StateUp))
	}
	r.mu.Unlock()
	if promote {
		if h.logf != nil {
			h.logf("replica %d (%s): %s -> up", i, r.name, st)
		}
		if st == StateDown {
			// Rejoin after an outage is the hand-back moment: the ring
			// never moved the slice, so routing snaps back by itself;
			// the callback re-warms the slice so the first queries back
			// home don't pay a rebuild.
			h.handbacks.Add(1)
			if h.onRejoin != nil {
				h.onRejoin(i)
			}
		}
	}
}

// markFailure advances the state machine on a probe or data-path
// failure. Draining replicas are left in draining: a drain is not an
// outage, and flapping it to down would trigger a spurious hand-back
// warm when it exits.
func (h *health) markFailure(i int, probe bool) {
	r := h.replicas[i]
	if probe {
		r.probeFailures.Add(1)
	}
	r.mu.Lock()
	r.oks = 0
	r.fails++
	st := r.State()
	demote := st == StateUp && r.fails >= h.failAfter
	if demote {
		r.state.Store(int32(StateDown))
	}
	r.mu.Unlock()
	if demote && h.logf != nil {
		h.logf("replica %d (%s): up -> down after %d consecutive failures", i, r.name, h.failAfter)
	}
}

// markDraining moves an up replica to draining (no counters reset: a
// draining replica that starts failing outright still becomes down).
func (h *health) markDraining(i int) {
	r := h.replicas[i]
	if State(r.state.Swap(int32(StateDraining))) != StateDraining && h.logf != nil {
		h.logf("replica %d (%s): -> draining", i, r.name)
	}
}

// probe runs one health check against replica i and feeds the outcome
// into the state machine.
func (h *health) probe(i int) {
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, h.replicas[i].name+"/healthz", nil)
	if err != nil {
		h.markFailure(i, true)
		return
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.markFailure(i, true)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		h.markSuccess(i)
	case resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body), "draining"):
		h.markDraining(i)
	default:
		h.markFailure(i, true)
	}
}

// start launches one probe loop per replica, beginning with a
// synchronous round so the router's first routing decisions see real
// states rather than the optimistic default.
func (h *health) start() {
	var first sync.WaitGroup
	for i := range h.replicas {
		first.Add(1)
		go func(i int) { h.probe(i); first.Done() }(i)
	}
	first.Wait()
	for i := range h.replicas {
		h.stopped.Add(1)
		go func(i int) {
			defer h.stopped.Done()
			t := time.NewTicker(h.interval)
			defer t.Stop()
			for {
				select {
				case <-h.stop:
					return
				case <-t.C:
					h.probe(i)
				}
			}
		}(i)
	}
}

func (h *health) close() {
	close(h.stop)
	h.stopped.Wait()
}
