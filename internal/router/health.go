package router

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// State is a replica's routability as seen by the health checker.
type State int32

const (
	// StateUp: routable. Replicas start up optimistically so traffic
	// flows before the first probe lands; a dead replica is demoted by
	// the probe loop or by the first data-path failure, whichever comes
	// first.
	StateUp State = iota
	// StateDown: not routable; its hash range fails over. Rejoins after
	// Config.UpAfter consecutive probe successes.
	StateDown
	// StateDraining: the replica answered /healthz 503 "draining" — it
	// is finishing in-flight work before exiting. Not routable for new
	// sub-batches, but not a failure either: no failure counters move.
	StateDraining
)

func (s State) String() string {
	switch s {
	case StateUp:
		return "up"
	case StateDown:
		return "down"
	case StateDraining:
		return "draining"
	default:
		return "unknown"
	}
}

// replica is one fleet member's health record plus routing counters.
// Slots are append-only for the router's lifetime: a removed replica's
// record stays in the table (its probe loop exits, its state freezes)
// so in-flight batches pinned to an older ring epoch can still read it,
// and its slot id is never reused.
type replica struct {
	name  string // base URL
	state atomic.Int32

	mu    sync.Mutex
	fails int // consecutive probe/data-path failures
	oks   int // consecutive probe successes

	// Membership lifecycle. joinEpoch is the ring epoch at which this
	// slot first served; sliceWarmed flips once its hash slice has been
	// pre-built on it (boot replicas warm via /v1/warm, joiners before
	// their epoch publishes); removed marks a slot that has left the
	// fleet for good.
	joinEpoch   atomic.Uint64
	sliceWarmed atomic.Bool
	removed     atomic.Bool

	// Counters for the aggregated stats view.
	routedItems     atomic.Int64 // items answered by this replica
	failedOverItems atomic.Int64 // …of which it was not the owner
	probeFailures   atomic.Int64
}

func (r *replica) State() State { return State(r.state.Load()) }

// health drives the per-replica state machines: an active /healthz
// probe loop per replica, plus passive failure reports from the data
// path (a scatter that hits a dead TCP socket should not wait for the
// next probe tick to stop routing there). It owns the replica table —
// membership changes add slots through it so probe loops start exactly
// once per slot.
type health struct {
	tabMu    sync.Mutex
	replicas []*replica
	started  bool

	client             *http.Client
	interval           time.Duration
	timeout            time.Duration
	failAfter, upAfter int

	logf func(format string, args ...any)

	// onRejoin fires on a down→up transition (hand-back): the router
	// re-warms the rejoined replica's hash slice in the background.
	onRejoin func(replica int)

	handbacks atomic.Int64

	stop    chan struct{}
	stopped sync.WaitGroup
}

// rep returns the record for a slot id.
func (h *health) rep(i int) *replica {
	h.tabMu.Lock()
	defer h.tabMu.Unlock()
	return h.replicas[i]
}

// snapshot returns the replica table as of now. The table is
// append-only, so the returned slice stays valid (rows for slots added
// later are simply absent).
func (h *health) snapshot() []*replica {
	h.tabMu.Lock()
	defer h.tabMu.Unlock()
	return append([]*replica(nil), h.replicas...)
}

// count returns the number of slots ever allocated.
func (h *health) count() int {
	h.tabMu.Lock()
	defer h.tabMu.Unlock()
	return len(h.replicas)
}

// add appends a new slot for r and returns its id. If the probe loops
// are already running, the new slot gets one immediately (after a
// synchronous first probe, so the caller sees a real state).
func (h *health) add(r *replica) int {
	h.tabMu.Lock()
	slot := len(h.replicas)
	h.replicas = append(h.replicas, r)
	started := h.started
	h.tabMu.Unlock()
	if started {
		h.probe(slot)
		h.watch(slot)
	}
	return slot
}

// markSuccess advances the state machine on a healthy probe.
func (h *health) markSuccess(i int) {
	r := h.rep(i)
	r.mu.Lock()
	r.fails = 0
	r.oks++
	st := r.State()
	promote := st != StateUp && r.oks >= h.upAfter
	if promote {
		r.state.Store(int32(StateUp))
	}
	r.mu.Unlock()
	if promote {
		if h.logf != nil {
			h.logf("replica %d (%s): %s -> up", i, r.name, st)
		}
		if st == StateDown {
			// Rejoin after an outage is the hand-back moment: the ring
			// never moved the slice, so routing snaps back by itself;
			// the callback re-warms the slice so the first queries back
			// home don't pay a rebuild.
			h.handbacks.Add(1)
			if h.onRejoin != nil {
				h.onRejoin(i)
			}
		}
	}
}

// markFailure advances the state machine on a probe or data-path
// failure. Draining replicas are left in draining: a drain is not an
// outage, and flapping it to down would trigger a spurious hand-back
// warm when it exits.
func (h *health) markFailure(i int, probe bool) {
	r := h.rep(i)
	if probe {
		r.probeFailures.Add(1)
	}
	r.mu.Lock()
	r.oks = 0
	r.fails++
	st := r.State()
	demote := st == StateUp && r.fails >= h.failAfter
	if demote {
		r.state.Store(int32(StateDown))
	}
	r.mu.Unlock()
	if demote && h.logf != nil {
		h.logf("replica %d (%s): up -> down after %d consecutive failures", i, r.name, h.failAfter)
	}
}

// markDraining moves an up replica to draining (no counters reset: a
// draining replica that starts failing outright still becomes down).
func (h *health) markDraining(i int) {
	r := h.rep(i)
	if State(r.state.Swap(int32(StateDraining))) != StateDraining && h.logf != nil {
		h.logf("replica %d (%s): -> draining", i, r.name)
	}
}

// probe runs one health check against replica i and feeds the outcome
// into the state machine.
func (h *health) probe(i int) {
	r := h.rep(i)
	if r.removed.Load() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), h.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.name+"/healthz", nil)
	if err != nil {
		h.markFailure(i, true)
		return
	}
	resp, err := h.client.Do(req)
	if err != nil {
		h.markFailure(i, true)
		return
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		h.markSuccess(i)
	case resp.StatusCode == http.StatusServiceUnavailable && strings.Contains(string(body), "draining"):
		h.markDraining(i)
	default:
		h.markFailure(i, true)
	}
}

// watch launches the probe loop for slot i. The loop exits when the
// health checker closes or the slot is removed from the fleet.
func (h *health) watch(i int) {
	h.stopped.Add(1)
	go func() {
		defer h.stopped.Done()
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-t.C:
				if h.rep(i).removed.Load() {
					return
				}
				h.probe(i)
			}
		}
	}()
}

// start launches one probe loop per replica, beginning with a
// synchronous round so the router's first routing decisions see real
// states rather than the optimistic default.
func (h *health) start() {
	h.tabMu.Lock()
	h.started = true
	n := len(h.replicas)
	h.tabMu.Unlock()
	var first sync.WaitGroup
	for i := 0; i < n; i++ {
		first.Add(1)
		go func(i int) { h.probe(i); first.Done() }(i)
	}
	first.Wait()
	for i := 0; i < n; i++ {
		h.watch(i)
	}
}

func (h *health) close() {
	close(h.stop)
	h.stopped.Wait()
}
