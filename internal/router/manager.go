package router

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// ManagerConfig describes a local msrp-serve fleet to spawn and manage.
type ManagerConfig struct {
	// ServeBin is the msrp-serve binary path.
	ServeBin string
	// GraphPath is passed to every replica as -graph. Every replica gets
	// the full graph and source set: the shard lives in the routing, not
	// in the replica configuration, which is what lets any replica serve
	// any source during failover.
	GraphPath string
	// Replicas is the fleet size (must be ≥ 1).
	Replicas int
	// ExtraArgs is appended to each replica's command line after -graph
	// and -addr (e.g. -auto-sources, -track-paths, -max-cached).
	ExtraArgs []string
	// HealthyTimeout bounds the wait for a spawned replica's first
	// healthy /healthz (0 = 30s).
	HealthyTimeout time.Duration
	// Logf receives lifecycle events (nil = silent).
	Logf func(format string, args ...any)
}

// managedProc is one live replica process.
type managedProc struct {
	cmd  *exec.Cmd
	done chan struct{} // closed once Wait returns (process reaped)
}

// Manager spawns and supervises a local replica fleet, and doubles as
// the chaos harness: it can crash (SIGKILL), terminate (SIGTERM), stall
// (SIGSTOP), resume (SIGCONT), and restart replicas mid-run. A restart
// respawns on the same port, so the router's replica URL set — and
// therefore the ring — is untouched; only health state moves. Add
// spawns a brand-new replica on a fresh port for a membership join; the
// manager's index space is append-only, in lockstep with the router's
// slot ids.
type Manager struct {
	cfg    ManagerConfig
	client *http.Client

	mu    sync.Mutex
	ports []int
	urls  []string
	procs []*managedProc // procs[i] == nil while replica i is down
}

// NewManager reserves a port per replica and spawns the fleet, waiting
// for every replica to turn healthy. On error, anything already
// spawned is torn down.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Replicas < 1 {
		return nil, fmt.Errorf("router: manager needs at least 1 replica, got %d", cfg.Replicas)
	}
	if cfg.HealthyTimeout <= 0 {
		cfg.HealthyTimeout = 30 * time.Second
	}
	m := &Manager{
		cfg:    cfg,
		client: &http.Client{Timeout: 2 * time.Second},
		ports:  make([]int, cfg.Replicas),
		urls:   make([]string, cfg.Replicas),
		procs:  make([]*managedProc, cfg.Replicas),
	}
	for i := 0; i < cfg.Replicas; i++ {
		port, err := freePort()
		if err != nil {
			return nil, err
		}
		m.ports[i] = port
		m.urls[i] = fmt.Sprintf("http://127.0.0.1:%d", port)
	}
	for i := 0; i < cfg.Replicas; i++ {
		if err := m.spawn(i); err != nil {
			m.StopAll()
			return nil, err
		}
	}
	for i := 0; i < cfg.Replicas; i++ {
		if err := m.waitHealthy(i); err != nil {
			m.StopAll()
			return nil, err
		}
	}
	return m, nil
}

// URLs returns the fleet's base URLs (stable across restarts).
func (m *Manager) URLs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.urls))
	copy(out, m.urls)
	return out
}

// url returns replica i's base URL.
func (m *Manager) url(i int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.urls[i]
}

// count returns the number of replica slots ever allocated.
func (m *Manager) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.procs)
}

// Add reserves a fresh port, spawns a new replica on it, and waits for
// it to turn healthy — the process half of a membership join (the
// routing half is Router.Join with the returned URL). Returns the new
// replica's index, which stays in lockstep with the router's slot ids
// as long as every join goes through both.
func (m *Manager) Add() (int, string, error) {
	port, err := freePort()
	if err != nil {
		return -1, "", err
	}
	url := fmt.Sprintf("http://127.0.0.1:%d", port)
	m.mu.Lock()
	i := len(m.procs)
	m.ports = append(m.ports, port)
	m.urls = append(m.urls, url)
	m.procs = append(m.procs, nil)
	m.mu.Unlock()
	if err := m.spawn(i); err != nil {
		return -1, "", err
	}
	if err := m.waitHealthy(i); err != nil {
		_ = m.Kill(i)
		return -1, "", err
	}
	m.logf("replica %d: added on %s", i, url)
	return i, url, nil
}

// Pids returns the live replicas' pids (0 for a down replica).
func (m *Manager) Pids() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, len(m.procs))
	for i, p := range m.procs {
		if p != nil && p.cmd.Process != nil {
			out[i] = p.cmd.Process.Pid
		}
	}
	return out
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

func (m *Manager) spawn(i int) error {
	m.mu.Lock()
	port := m.ports[i]
	url := m.urls[i]
	m.mu.Unlock()
	args := append([]string{
		"-graph", m.cfg.GraphPath,
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
	}, m.cfg.ExtraArgs...)
	cmd := exec.Command(m.cfg.ServeBin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("router: spawn replica %d: %w", i, err)
	}
	p := &managedProc{cmd: cmd, done: make(chan struct{})}
	go func() {
		_ = cmd.Wait()
		close(p.done)
	}()
	m.mu.Lock()
	m.procs[i] = p
	m.mu.Unlock()
	m.logf("replica %d: spawned pid %d on %s", i, cmd.Process.Pid, url)
	return nil
}

func (m *Manager) waitHealthy(i int) error {
	base := m.url(i)
	deadline := time.Now().Add(m.cfg.HealthyTimeout)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		resp, err := m.client.Do(req)
		cancel()
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("router: replica %d (%s) not healthy within %s", i, base, m.cfg.HealthyTimeout)
}

func (m *Manager) proc(i int) (*managedProc, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if i < 0 || i >= len(m.procs) {
		return nil, fmt.Errorf("router: no replica %d", i)
	}
	if m.procs[i] == nil {
		return nil, fmt.Errorf("router: replica %d is not running", i)
	}
	return m.procs[i], nil
}

func (m *Manager) signal(i int, sig syscall.Signal) error {
	p, err := m.proc(i)
	if err != nil {
		return err
	}
	return p.cmd.Process.Signal(sig)
}

// Kill crashes replica i (SIGKILL) and reaps it. The port stays
// reserved for Restart.
func (m *Manager) Kill(i int) error {
	p, err := m.proc(i)
	if err != nil {
		return err
	}
	// CONT first: a stalled (SIGSTOP) process still dies to SIGKILL, but
	// resuming keeps the kernel from holding it in the stopped state
	// with pending signals on some configurations.
	_ = p.cmd.Process.Signal(syscall.SIGCONT)
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	<-p.done
	m.mu.Lock()
	m.procs[i] = nil
	m.mu.Unlock()
	m.logf("replica %d: killed", i)
	return nil
}

// Term asks replica i to shut down gracefully (SIGTERM: lame-duck
// drain, then exit) and reaps it.
func (m *Manager) Term(i int) error {
	p, err := m.proc(i)
	if err != nil {
		return err
	}
	_ = p.cmd.Process.Signal(syscall.SIGCONT)
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-p.done:
	case <-time.After(30 * time.Second):
		_ = p.cmd.Process.Kill()
		<-p.done
	}
	m.mu.Lock()
	m.procs[i] = nil
	m.mu.Unlock()
	m.logf("replica %d: terminated", i)
	return nil
}

// Stall freezes replica i (SIGSTOP): the process stays alive and its
// listener keeps accepting into the kernel backlog, but nothing
// answers — the "healthy-looking but wedged" failure mode that only
// deadlines catch.
func (m *Manager) Stall(i int) error {
	if err := m.signal(i, syscall.SIGSTOP); err != nil {
		return err
	}
	m.logf("replica %d: stalled (SIGSTOP)", i)
	return nil
}

// Resume un-freezes a stalled replica (SIGCONT).
func (m *Manager) Resume(i int) error {
	if err := m.signal(i, syscall.SIGCONT); err != nil {
		return err
	}
	m.logf("replica %d: resumed (SIGCONT)", i)
	return nil
}

// Restart respawns replica i on its original port (killing it first if
// still running) and waits for it to turn healthy. Same URL → the
// router's ring and health slots are unchanged; the rejoin shows up as
// probe successes.
func (m *Manager) Restart(i int) error {
	if _, err := m.proc(i); err == nil {
		if err := m.Kill(i); err != nil {
			return err
		}
	}
	if err := m.spawn(i); err != nil {
		return err
	}
	return m.waitHealthy(i)
}

// Apply dispatches a chaos op by name: kill, term, stall, resume,
// restart. This is the /v1/chaos and load-plan surface.
func (m *Manager) Apply(op string, i int) error {
	switch op {
	case "kill":
		return m.Kill(i)
	case "term":
		return m.Term(i)
	case "stall":
		return m.Stall(i)
	case "resume":
		return m.Resume(i)
	case "restart":
		return m.Restart(i)
	default:
		return fmt.Errorf("router: unknown chaos op %q (want kill|term|stall|resume|restart)", op)
	}
}

// TermAll sends SIGTERM to every live replica concurrently and waits —
// the graceful fleet shutdown.
func (m *Manager) TermAll() {
	var wg sync.WaitGroup
	for i := 0; i < m.count(); i++ {
		if _, err := m.proc(i); err != nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = m.Term(i)
		}(i)
	}
	wg.Wait()
}

// StopAll force-stops the fleet (CONT then KILL — a stopped process
// never sees a TERM, so unconditional KILL is the only reliable
// teardown) and reaps everything.
func (m *Manager) StopAll() {
	for i := 0; i < m.count(); i++ {
		p, err := m.proc(i)
		if err != nil {
			continue
		}
		_ = p.cmd.Process.Signal(syscall.SIGCONT)
		_ = p.cmd.Process.Kill()
		<-p.done
		m.mu.Lock()
		m.procs[i] = nil
		m.mu.Unlock()
	}
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}
