package router

// End-to-end tests of the routing tier over real msrp-serve handlers:
// every replica is a genuine server.Server over its own Oracle on the
// same graph, wrapped in a fault-injection layer that can play dead
// (connection drops, as after SIGKILL) or stall (accepts but never
// answers queries while /healthz keeps passing — the failure mode only
// per-item deadlines catch).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msrp"
	"msrp/internal/server"
)

// faulty wraps a replica handler with switchable fault injection.
type faulty struct {
	h    http.Handler
	mode atomic.Value // "" | "dead" | "stall"

	mu      sync.Mutex
	stallCh chan struct{} // closed on un-stall, releasing wedged handlers
}

func (f *faulty) set(mode string) {
	f.mu.Lock()
	if mode == "stall" {
		f.stallCh = make(chan struct{})
	} else if f.stallCh != nil {
		close(f.stallCh)
		f.stallCh = nil
	}
	f.mu.Unlock()
	f.mode.Store(mode)
}

func (f *faulty) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch f.mode.Load() {
	case "dead":
		// Sever the connection without a response — what a probe or
		// sub-batch sees after a replica crash.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic("faulty: response writer is not hijackable")
	case "stall":
		// Wedged, not dead: queries hang until the caller gives up, but
		// health checks stay green. The body must be drained or net/http
		// never notices the caller hanging up (the disconnect watch only
		// runs once the request body is consumed).
		if r.URL.Path == "/v1/query" {
			io.Copy(io.Discard, r.Body)
			f.mu.Lock()
			ch := f.stallCh
			f.mu.Unlock()
			if ch != nil {
				select {
				case <-r.Context().Done():
				case <-ch:
				}
				return
			}
		}
	}
	f.h.ServeHTTP(w, r)
}

// fleet is N real replicas plus a reference oracle for ground truth.
type fleet struct {
	ref     *msrp.Oracle
	sources []int
	faults  []*faulty
	urls    []string
}

func newFleet(t *testing.T, n int) *fleet {
	t.Helper()
	g := msrp.GenerateRandomConnected(7, 60, 160)
	sources := []int{0, 10, 20, 30, 40, 50}
	opts := msrp.DefaultOptions()
	opts.SampleBoost = 8
	opts.Parallelism = 2
	fl := &fleet{sources: sources}
	ref, err := msrp.NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	fl.ref = ref
	for i := 0; i < n; i++ {
		oracle, err := msrp.NewOracle(g, sources, opts)
		if err != nil {
			t.Fatal(err)
		}
		f := &faulty{h: server.New(oracle, server.Config{})}
		f.set("")
		ts := httptest.NewServer(f)
		t.Cleanup(ts.Close)
		fl.faults = append(fl.faults, f)
		fl.urls = append(fl.urls, ts.URL)
	}
	return fl
}

// batch synthesizes one valid query per source (edge on the canonical
// path) with the reference oracle's answer attached.
func (fl *fleet) batch(t *testing.T) ([]server.QueryItem, []int32) {
	t.Helper()
	var items []server.QueryItem
	var want []int32
	for _, s := range fl.sources {
		res := fl.ref.Result(s)
		for tgt := 0; tgt < 60; tgt++ {
			path := res.PathTo(tgt)
			if len(path) < 2 {
				continue
			}
			it := server.QueryItem{Source: s, Target: tgt, U: int(path[0]), V: int(path[1])}
			w, err := fl.ref.Query(it.Source, it.Target, it.U, it.V)
			if err != nil {
				t.Fatal(err)
			}
			items = append(items, it)
			want = append(want, w)
			break
		}
	}
	if len(items) != len(fl.sources) {
		t.Fatalf("synthesized %d items, want one per source", len(items))
	}
	return items, want
}

func newTestRouter(t *testing.T, fl *fleet, tweak func(*Config)) *Router {
	t.Helper()
	cfg := Config{
		Replicas:      fl.urls,
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  300 * time.Millisecond,
		FailAfter:     2,
		UpAfter:       2,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	return rt
}

func postQuery(t *testing.T, rt *Router, req server.QueryRequest) (*httptest.ResponseRecorder, *server.QueryResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, r)
	var resp server.QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode query response (status %d): %v (body %s)", rec.Code, err, rec.Body)
	}
	return rec, &resp
}

func routerStats(t *testing.T, rt *Router) *StatsResponse {
	t.Helper()
	r := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/stats = %d", rec.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return &st
}

func waitForState(t *testing.T, rt *Router, i int, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if rt.ReplicaStates()[i] == want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica %d never reached state %v (now %v)", i, want, rt.ReplicaStates()[i])
}

// TestRouterCrosscheck: answers through the router over a slice-warmed
// 3-replica fleet are bit-identical to the reference oracle, and the
// warm scatter shards the cache (each replica holds only its slice).
func TestRouterCrosscheck(t *testing.T) {
	fl := newFleet(t, 3)
	rt := newTestRouter(t, fl, nil)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/warm", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("router warm = %d, body %s", rec.Code, rec.Body)
	}
	var wresp server.WarmResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &wresp); err != nil {
		t.Fatal(err)
	}
	if wresp.Warmed != len(fl.sources) {
		t.Fatalf("warmed = %d, want %d", wresp.Warmed, len(fl.sources))
	}
	// The shard property: the fleet collectively caches each source
	// exactly once (slice warms, not σ copies everywhere).
	if wresp.CachedSources != len(fl.sources) {
		t.Fatalf("fleet-wide cached = %d, want %d (one slice per replica)", wresp.CachedSources, len(fl.sources))
	}

	items, want := fl.batch(t)
	qrec, resp := postQuery(t, rt, server.QueryRequest{Queries: items})
	if qrec.Code != http.StatusOK {
		t.Fatalf("routed query = %d, body %s", qrec.Code, qrec.Body)
	}
	if len(resp.Answers) != len(items) {
		t.Fatalf("got %d answers for %d items", len(resp.Answers), len(items))
	}
	for i, a := range resp.Answers {
		if a.RouteError != "" || a.Error != "" {
			t.Fatalf("item %d failed: routeError=%q error=%q", i, a.RouteError, a.Error)
		}
		if a.Length != want[i] {
			t.Fatalf("item %d (source %d): routed answer %d != reference %d", i, items[i].Source, a.Length, want[i])
		}
	}

	st := routerStats(t, rt)
	if st.Router.Batches != 1 || st.Router.Items != int64(len(items)) {
		t.Fatalf("router counters: batches=%d items=%d", st.Router.Batches, st.Router.Items)
	}
	if st.Router.Failovers != 0 {
		t.Fatalf("healthy fleet saw %d failovers", st.Router.Failovers)
	}
	// Sub-batches: the mixed batch split across however many replicas
	// own a slice — more than one, at most the fleet.
	if st.Router.SubBatches < 2 || st.Router.SubBatches > 3 {
		t.Fatalf("subBatches = %d, want 2..3 for a 6-source batch over 3 replicas", st.Router.SubBatches)
	}
	if st.CachedSources != len(fl.sources) {
		t.Fatalf("aggregated cachedSources = %d, want %d", st.CachedSources, len(fl.sources))
	}
}

// TestRouterFailoverAndHandback kills a replica mid-sequence: its slice
// must fail over (zero 5xx, zero routeErrors — siblings rebuild the
// orphans lazily), and its rejoin must be observed as a hand-back.
func TestRouterFailoverAndHandback(t *testing.T) {
	fl := newFleet(t, 3)
	rt := newTestRouter(t, fl, nil)

	items, want := fl.batch(t)
	if rec, _ := postQuery(t, rt, server.QueryRequest{Queries: items}); rec.Code != http.StatusOK {
		t.Fatalf("pre-crash query = %d", rec.Code)
	}

	// Crash the replica that owns the most sources so the failover is
	// guaranteed to have work to do.
	owned := make([]int, 3)
	for _, s := range fl.sources {
		owned[rt.Ring().Owner(s)]++
	}
	victim := 0
	for i, c := range owned {
		if c > owned[victim] {
			victim = i
		}
	}
	if owned[victim] == 0 {
		t.Fatalf("ring gave victim no sources: %v", owned)
	}
	fl.faults[victim].set("dead")
	waitForState(t, rt, victim, StateDown)

	rec, resp := postQuery(t, rt, server.QueryRequest{Queries: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("mid-crash query = %d, want 200 (never a whole-batch 5xx), body %s", rec.Code, rec.Body)
	}
	for i, a := range resp.Answers {
		if a.RouteError != "" {
			t.Fatalf("item %d not failed over: %s", i, a.RouteError)
		}
		if a.Length != want[i] {
			t.Fatalf("item %d: failover answer %d != reference %d", i, a.Length, want[i])
		}
	}
	st := routerStats(t, rt)
	if st.Router.Failovers == 0 {
		t.Fatal("replica down but zero failovers recorded")
	}
	if st.Router.FailoverWarms == 0 {
		t.Fatal("failover should have lazily warmed orphaned sources on a sibling")
	}
	if st.Router.ReplicasUp != 2 {
		t.Fatalf("replicasUp = %d, want 2", st.Router.ReplicasUp)
	}

	// Revive: rejoin must fire a hand-back and routing must snap home.
	fl.faults[victim].set("")
	waitForState(t, rt, victim, StateUp)
	if rt.Handbacks() == 0 {
		t.Fatal("rejoin did not count as a hand-back")
	}
	rec, resp = postQuery(t, rt, server.QueryRequest{Queries: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-rejoin query = %d", rec.Code)
	}
	for i, a := range resp.Answers {
		if a.RouteError != "" || a.Length != want[i] {
			t.Fatalf("post-rejoin item %d: %+v, want length %d", i, a, want[i])
		}
	}
	st = routerStats(t, rt)
	var victimRouted int64
	for i, rs := range st.Router.Replicas {
		if i == victim {
			victimRouted = rs.RoutedItems
		}
	}
	if victimRouted == 0 {
		t.Fatal("rejoined replica served nothing; hand-back routing did not snap home")
	}
}

// TestPerItemDeadline stalls one replica (healthz green, queries hang):
// only its items blow the per-item deadline; siblings answer normally
// and the batch returns well inside the batch deadline.
func TestPerItemDeadline(t *testing.T) {
	fl := newFleet(t, 2)
	rt := newTestRouter(t, fl, func(c *Config) {
		c.ItemDeadline = 300 * time.Millisecond
		c.BatchDeadline = 10 * time.Second
		c.MaxAttempts = 3
	})

	// Pre-warm so the healthy replica's answers are cache hits, then
	// stall.
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/warm", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("warm = %d", rec.Code)
	}
	items, want := fl.batch(t)
	byOwner := make([]int, 2)
	for _, it := range items {
		byOwner[rt.Ring().Owner(it.Source)]++
	}
	if byOwner[0] == 0 || byOwner[1] == 0 {
		t.Fatalf("sources all landed on one replica (%v); the test needs both", byOwner)
	}
	const stalled = 0
	fl.faults[stalled].set("stall")
	t.Cleanup(func() { fl.faults[stalled].set("") })

	start := time.Now()
	qrec, resp := postQuery(t, rt, server.QueryRequest{Queries: items})
	elapsed := time.Since(start)
	if qrec.Code != http.StatusOK {
		t.Fatalf("query with stalled replica = %d, want 200 with per-item verdicts, body %s", qrec.Code, qrec.Body)
	}
	if elapsed > 3*time.Second {
		t.Fatalf("batch took %v; the per-item deadline (300ms) did not bound it", elapsed)
	}
	var failed, ok int
	for i, a := range resp.Answers {
		owner := rt.Ring().Owner(items[i].Source)
		if owner == stalled {
			// The stalled replica passes health checks, so its items had
			// no live failover target within the deadline.
			if a.RouteError == "" {
				t.Fatalf("item %d (owned by stalled replica) should carry a routeError, got %+v", i, a)
			}
			failed++
		} else {
			if a.RouteError != "" {
				t.Fatalf("item %d on the healthy replica failed: %s", i, a.RouteError)
			}
			if a.Length != want[i] {
				t.Fatalf("item %d: answer %d != reference %d", i, a.Length, want[i])
			}
			ok++
		}
	}
	if failed != byOwner[stalled] || ok != byOwner[1-stalled] {
		t.Fatalf("failed=%d ok=%d, want %d/%d", failed, ok, byOwner[stalled], byOwner[1-stalled])
	}
	st := routerStats(t, rt)
	if st.Router.RouteErrors != int64(failed) {
		t.Fatalf("routeErrors counter = %d, want %d", st.Router.RouteErrors, failed)
	}
	fl.faults[stalled].set("")
}

// TestRetryAfterAggregation: when every replica rejects, the router
// surfaces one 429 whose Retry-After is the max hint — the client must
// outwait the slowest replica, never the sum.
func TestRetryAfterAggregation(t *testing.T) {
	hints := []string{"2", "7"}
	var urls []string
	for _, h := range hints {
		h := h
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/healthz" {
				fmt.Fprintln(w, "ok")
				return
			}
			w.Header().Set("Retry-After", h)
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"no capacity"}`)
		}))
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
	}
	rt, err := New(Config{
		Replicas:      urls,
		MaxAttempts:   1, // terminal rejection, no backoff sleeps
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)

	// Enough sources that both replicas certainly own some.
	var queries []server.QueryItem
	for s := 0; s < 16; s++ {
		queries = append(queries, server.QueryItem{Source: s, Target: 1, U: 0, V: 1})
	}
	seen := make(map[int]bool)
	for _, q := range queries {
		seen[rt.Ring().Owner(q.Source)] = true
	}
	if len(seen) != 2 {
		t.Fatalf("queries landed on %d replicas, need both", len(seen))
	}

	rec, resp := postQuery(t, rt, server.QueryRequest{Queries: queries})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("all-rejected batch = %d, want 429, body %s", rec.Code, rec.Body)
	}
	got := rec.Header().Get("Retry-After")
	if got != "7" {
		t.Fatalf("aggregated Retry-After = %q, want the max hint \"7\" (summing would give 9)", got)
	}
	if secs, err := strconv.Atoi(got); err != nil || secs > 7 {
		t.Fatalf("Retry-After %q not a sane aggregate", got)
	}
	for i, a := range resp.Answers {
		if a.RouteError == "" {
			t.Fatalf("item %d lacks a routeError in an all-rejected batch", i)
		}
	}
}

// TestDerivedRetryAfterPropagatesE2E saturates a real replica
// (MaxInFlight 1, no pinned Retry-After, so the 429 carries
// server.DeriveRetryAfter's measured-latency hint) and checks the
// router surfaces the replica's own derived hint, sane and in range.
func TestDerivedRetryAfterPropagatesE2E(t *testing.T) {
	g := msrp.GenerateRandomConnected(13, 2000, 8000)
	var sources []int
	for s := 0; s < 2000; s += 250 {
		sources = append(sources, s)
	}
	opts := msrp.DefaultOptions()
	opts.Parallelism = 2
	opts.MaxCachedSources = 1 // every fresh source is a slow rebuild
	oracle, err := msrp.NewOracle(g, sources, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(server.New(oracle, server.Config{MaxInFlight: 1}))
	t.Cleanup(ts.Close)

	rt, err := New(Config{
		Replicas:      []string{ts.URL},
		MaxAttempts:   1, // terminal rejection: surface the hint, don't outwait it
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)

	client := ts.Client()
	for attempt := 0; attempt < len(sources)-1; attempt++ {
		// Occupy the replica's only admission slot with a fresh-source
		// build sent directly, then route a batch while it computes.
		occupier := sources[attempt]
		done := make(chan struct{})
		go func() {
			defer close(done)
			body, _ := json.Marshal(server.QueryRequest{
				Queries: []server.QueryItem{{Source: occupier, Target: 1, U: 0, V: 1}},
			})
			resp, err := client.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
		time.Sleep(5 * time.Millisecond)
		rec, _ := postQuery(t, rt, server.QueryRequest{
			Queries: []server.QueryItem{{Source: sources[attempt+1], Target: 1, U: 0, V: 1}},
		})
		<-done
		if rec.Code != http.StatusTooManyRequests {
			continue // lost the race with the occupier; try the next source
		}
		h := rec.Header().Get("Retry-After")
		secs, err := strconv.Atoi(h)
		if err != nil {
			t.Fatalf("routed 429 Retry-After %q is not an integer", h)
		}
		// DeriveRetryAfter clamps to [1s, 30s]; the router must pass the
		// replica's hint through, not invent or inflate one.
		if secs < 1 || secs > 30 {
			t.Fatalf("propagated Retry-After = %ds, outside the replica's derived range [1,30]", secs)
		}
		return
	}
	t.Fatal("never observed a replica 429; the occupier kept losing the admission race")
}

// TestRouterNeverWholeBatch5xxOnPartialFailure: a batch mixing a
// healthy slice with a dead replica's slice comes back 200 — the dead
// slice fails over instead of failing the batch.
func TestRouterPartialDeadIsStill200(t *testing.T) {
	fl := newFleet(t, 3)
	rt := newTestRouter(t, fl, func(c *Config) {
		// No probes have run failure rounds yet: the dead replica still
		// looks up, so the data path discovers the crash itself.
		c.FailAfter = 1000
	})
	items, want := fl.batch(t)
	fl.faults[1].set("dead")

	rec, resp := postQuery(t, rt, server.QueryRequest{Queries: items})
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d, want 200 via data-path failover, body %s", rec.Code, rec.Body)
	}
	for i, a := range resp.Answers {
		if a.RouteError != "" {
			t.Fatalf("item %d: %s", i, a.RouteError)
		}
		if a.Length != want[i] {
			t.Fatalf("item %d: %d != %d", i, a.Length, want[i])
		}
	}
}
