package router

import (
	"testing"
)

func TestRingDeterministicAndComplete(t *testing.T) {
	a, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2000; s++ {
		if a.Owner(s) != b.Owner(s) {
			t.Fatalf("rings over the same fleet disagree on source %d: %d vs %d", s, a.Owner(s), b.Owner(s))
		}
		cands := a.Candidates(s)
		if len(cands) != 5 {
			t.Fatalf("Candidates(%d) = %v, want all 5 replicas", s, cands)
		}
		if cands[0] != a.Owner(s) {
			t.Fatalf("Candidates(%d)[0] = %d, Owner = %d", s, cands[0], a.Owner(s))
		}
		seen := make(map[int]bool)
		for _, c := range cands {
			if c < 0 || c >= 5 || seen[c] {
				t.Fatalf("Candidates(%d) = %v is not a permutation of replicas", s, cands)
			}
			seen[c] = true
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	const n = 4000
	for s := 0; s < n; s++ {
		counts[r.Owner(s)]++
	}
	// With 64 vnodes per replica, no replica should own less than half
	// or more than double its fair share.
	fair := n / 4
	for i, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("replica %d owns %d of %d sources (fair share %d): %v", i, c, n, fair, counts)
		}
	}
}

func TestRingRejectsEmptyFleet(t *testing.T) {
	if _, err := NewRing(0, 64); err == nil {
		t.Fatal("NewRing(0) should fail")
	}
}

// TestHealthStateMachine drives the up/down/draining transitions
// directly, without HTTP.
func TestHealthStateMachine(t *testing.T) {
	rejoined := make(chan int, 1)
	h := &health{
		replicas:  []*replica{{name: "r0"}},
		failAfter: 2,
		upAfter:   2,
		onRejoin:  func(i int) { rejoined <- i },
	}
	r := h.replicas[0]

	if r.State() != StateUp {
		t.Fatalf("initial state = %v, want up (optimistic)", r.State())
	}
	h.markFailure(0, true)
	if r.State() != StateUp {
		t.Fatalf("state after 1 failure = %v, want up (failAfter=2)", r.State())
	}
	h.markFailure(0, false)
	if r.State() != StateDown {
		t.Fatalf("state after 2 consecutive failures = %v, want down", r.State())
	}
	if got := r.probeFailures.Load(); got != 1 {
		t.Fatalf("probeFailures = %d, want 1 (only probe failures count)", got)
	}

	// One success does not rejoin; two do, and that fires hand-back.
	h.markSuccess(0)
	if r.State() != StateDown {
		t.Fatalf("state after 1 success = %v, want down (upAfter=2)", r.State())
	}
	h.markSuccess(0)
	if r.State() != StateUp {
		t.Fatalf("state after 2 successes = %v, want up", r.State())
	}
	select {
	case i := <-rejoined:
		if i != 0 {
			t.Fatalf("rejoin fired for replica %d, want 0", i)
		}
	default:
		t.Fatal("down -> up transition did not fire onRejoin")
	}
	if h.handbacks.Load() != 1 {
		t.Fatalf("handbacks = %d, want 1", h.handbacks.Load())
	}

	// A success streak broken by a failure starts over.
	h.markFailure(0, false)
	h.markFailure(0, false)
	h.markSuccess(0)
	h.markFailure(0, false)
	h.markSuccess(0)
	if r.State() != StateDown {
		t.Fatalf("interleaved successes should not rejoin; state = %v", r.State())
	}

	// Draining is sticky against failures (a drain is not an outage) and
	// promotes back to up on sustained successes.
	h.markSuccess(0)
	h.markSuccess(0) // back up, fires another hand-back
	<-rejoined
	h.markDraining(0)
	if r.State() != StateDraining {
		t.Fatalf("state = %v, want draining", r.State())
	}
	h.markFailure(0, false)
	h.markFailure(0, false)
	if r.State() != StateDraining {
		t.Fatalf("failures while draining flipped state to %v", r.State())
	}
	h.markSuccess(0)
	h.markSuccess(0)
	if r.State() != StateUp {
		t.Fatalf("draining replica answering healthy again = %v, want up", r.State())
	}
	// draining -> up is not a hand-back (it was never down).
	select {
	case <-rejoined:
		t.Fatal("draining -> up must not fire onRejoin")
	default:
	}
}
