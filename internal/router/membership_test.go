package router

// Tests of dynamic fleet membership: warm-before-serve joins, drain
// hand-offs, epoch pinning for in-flight batches, and the health
// machine's hysteresis under probe flapping.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"msrp/internal/server"
)

// postMembers drives POST /v1/members and decodes the response.
func postMembers(t *testing.T, rt *Router, req map[string]any) (int, *MemberOpResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest(http.MethodPost, "/v1/members", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, r)
	var resp MemberOpResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode members response (status %d): %v (body %s)", rec.Code, err, rec.Body)
	}
	return rec.Code, &resp
}

func getMembers(t *testing.T, rt *Router) *MembersResponse {
	t.Helper()
	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/members", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/members = %d", rec.Code)
	}
	var resp MembersResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return &resp
}

// replicaSources fetches one replica's materialized source ids directly.
func replicaSources(t *testing.T, url string) map[int]bool {
	t.Helper()
	resp, err := http.Get(url + "/v1/sources")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr server.SourcesResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	out := make(map[int]bool, len(sr.Cached))
	for _, s := range sr.Cached {
		out[s] = true
	}
	return out
}

// TestMembershipJoinWarmBeforeServe boots a 2-member router over a
// 3-replica fleet, joins the third at runtime, and checks the
// warm-before-serve contract: by the time the new epoch is visible,
// the joiner already holds every source the new ring assigns it, and
// answers through the grown fleet stay bit-identical.
func TestMembershipJoinWarmBeforeServe(t *testing.T) {
	fl := newFleet(t, 3)
	cfg := Config{
		Replicas:      fl.urls[:2],
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  300 * time.Millisecond,
		FailAfter:     2,
		UpAfter:       2,
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/warm", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("warm = %d", rec.Code)
	}
	items, want := fl.batch(t)
	if qrec, _ := postQuery(t, rt, server.QueryRequest{Queries: items}); qrec.Code != http.StatusOK {
		t.Fatalf("pre-join query = %d", qrec.Code)
	}
	if got := rt.Ring().Epoch(); got != 1 {
		t.Fatalf("boot epoch = %d, want 1", got)
	}

	code, resp := postMembers(t, rt, map[string]any{"op": "join", "url": fl.urls[2]})
	if code != http.StatusOK {
		t.Fatalf("join = %d: %s", code, resp.Error)
	}
	if resp.Epoch != 2 {
		t.Fatalf("post-join epoch = %d, want 2", resp.Epoch)
	}
	if resp.Replica != 2 {
		t.Fatalf("joiner slot = %d, want 2 (append-only slots)", resp.Replica)
	}

	// Warm-before-serve: everything the published ring assigns the
	// joiner must already be materialized on it.
	ring := rt.Ring()
	owned := ring.Owned(fl.sources, 2)
	if resp.Warmed != len(owned) {
		t.Fatalf("join warmed %d sources, ring assigns %d", resp.Warmed, len(owned))
	}
	cached := replicaSources(t, fl.urls[2])
	for _, s := range owned {
		if !cached[s] {
			t.Fatalf("joiner serves source %d under epoch %d but has not warmed it", s, ring.Epoch())
		}
	}

	mem := getMembers(t, rt)
	if mem.Epoch != 2 || len(mem.Members) != 3 {
		t.Fatalf("members view: epoch %d members %v", mem.Epoch, mem.Members)
	}
	joiner := mem.Replicas[2]
	if !joiner.Member || !joiner.SliceWarmed || joiner.JoinEpoch != 2 {
		t.Fatalf("joiner row: %+v", joiner)
	}

	// Answers through the grown fleet stay bit-identical, with zero
	// route errors.
	qrec, qresp := postQuery(t, rt, server.QueryRequest{Queries: items})
	if qrec.Code != http.StatusOK {
		t.Fatalf("post-join query = %d", qrec.Code)
	}
	for i, a := range qresp.Answers {
		if a.RouteError != "" || a.Error != "" {
			t.Fatalf("post-join item %d: routeError=%q error=%q", i, a.RouteError, a.Error)
		}
		if a.Length != want[i] {
			t.Fatalf("post-join item %d: %d != reference %d", i, a.Length, want[i])
		}
	}
	st := routerStats(t, rt)
	if st.Router.Joins != 1 || st.Router.Epoch != 2 {
		t.Fatalf("stats: joins=%d epoch=%d", st.Router.Joins, st.Router.Epoch)
	}
	if st.Router.MembershipWarms != int64(len(owned)) {
		t.Fatalf("membershipWarms = %d, want %d", st.Router.MembershipWarms, len(owned))
	}

	// Duplicate joins are rejected without burning an epoch.
	if code, dup := postMembers(t, rt, map[string]any{"op": "join", "url": fl.urls[2]}); code == http.StatusOK {
		t.Fatalf("duplicate join accepted: %+v", dup)
	}
	if got := rt.Ring().Epoch(); got != 2 {
		t.Fatalf("epoch moved to %d on a rejected join", got)
	}
}

// TestMembershipDrainAndRemove drains the busiest member of a 3-replica
// fleet: its successors must hold the departing slice before the epoch
// flips, the drained slot takes no new traffic, and after remove the
// fleet keeps answering bit-identically with zero route errors.
func TestMembershipDrainAndRemove(t *testing.T) {
	fl := newFleet(t, 3)
	rt := newTestRouter(t, fl, nil)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/warm", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("warm = %d", rec.Code)
	}
	items, want := fl.batch(t)

	// Drain the member owning the most sources so the hand-off provably
	// moves work.
	cur := rt.Ring()
	owned := make([]int, 3)
	for _, s := range fl.sources {
		owned[cur.Owner(s)]++
	}
	victim := 0
	for i, c := range owned {
		if c > owned[victim] {
			victim = i
		}
	}
	if owned[victim] == 0 {
		t.Fatalf("ring gave the victim nothing: %v", owned)
	}

	code, resp := postMembers(t, rt, map[string]any{"op": "drain", "replica": victim})
	if code != http.StatusOK {
		t.Fatalf("drain = %d: %s", code, resp.Error)
	}
	if resp.Epoch != 2 {
		t.Fatalf("post-drain epoch = %d, want 2", resp.Epoch)
	}
	if resp.Warmed != owned[victim] {
		t.Fatalf("drain moved %d sources, victim owned %d", resp.Warmed, owned[victim])
	}

	// Hand-off warm landed before the flip: every departed source is
	// materialized on its new owner.
	next := rt.Ring()
	for _, s := range fl.sources {
		if cur.Owner(s) != victim {
			continue
		}
		succ := next.Owner(s)
		if succ == victim {
			t.Fatalf("source %d still owned by the drained replica under epoch %d", s, next.Epoch())
		}
		if !replicaSources(t, fl.urls[succ])[s] {
			t.Fatalf("successor %d serves source %d but has not warmed it", succ, s)
		}
	}

	if code, rresp := postMembers(t, rt, map[string]any{"op": "remove", "replica": victim}); code != http.StatusOK {
		t.Fatalf("remove = %d: %s", code, rresp.Error)
	}
	mem := getMembers(t, rt)
	if len(mem.Members) != 2 || mem.Replicas[victim].Member || mem.Replicas[victim].State != "removed" {
		t.Fatalf("post-remove members view: %+v", mem)
	}

	before := routerStats(t, rt).Router.Replicas[victim].RoutedItems
	qrec, qresp := postQuery(t, rt, server.QueryRequest{Queries: items})
	if qrec.Code != http.StatusOK {
		t.Fatalf("post-drain query = %d", qrec.Code)
	}
	for i, a := range qresp.Answers {
		if a.RouteError != "" || a.Error != "" {
			t.Fatalf("post-drain item %d: routeError=%q error=%q", i, a.RouteError, a.Error)
		}
		if a.Length != want[i] {
			t.Fatalf("post-drain item %d: %d != reference %d", i, a.Length, want[i])
		}
	}
	st := routerStats(t, rt)
	// Remove after a clean drain does not burn an epoch: the slot
	// already left the ring when the drain flipped to 2.
	if st.Router.Drains != 1 || st.Router.Removes != 1 || st.Router.Epoch != 2 {
		t.Fatalf("stats: drains=%d removes=%d epoch=%d", st.Router.Drains, st.Router.Removes, st.Router.Epoch)
	}
	if got := st.Router.Replicas[victim].RoutedItems; got != before {
		t.Fatalf("drained replica took %d new items after the flip", got-before)
	}
	if st.Router.RouteErrors != 0 {
		t.Fatalf("membership churn produced %d route errors", st.Router.RouteErrors)
	}

	// The last member can never be drained away.
	last := rt.Ring().Members()[0]
	if code, _ := postMembers(t, rt, map[string]any{"op": "drain", "replica": rt.Ring().Members()[1]}); code != http.StatusOK {
		t.Fatalf("second drain rejected")
	}
	if code, lresp := postMembers(t, rt, map[string]any{"op": "drain", "replica": last}); code == http.StatusOK {
		t.Fatalf("drained the last member: %+v", lresp)
	}
}

// gated wraps a replica handler so a test can park the first query
// mid-flight and release it later — the window in which a membership
// change races an in-flight batch.
type gated struct {
	h       http.Handler
	armed   atomic.Bool
	entered chan struct{}
	hold    chan struct{}
	once    sync.Once
}

func (g *gated) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.armed.Load() && r.URL.Path == "/v1/query" {
		g.once.Do(func() { close(g.entered) })
		<-g.hold
	}
	g.h.ServeHTTP(w, r)
}

// TestMembershipEpochPinning parks a batch mid-dispatch on the sole
// member, joins a second replica while the batch is in flight, and
// releases it: the batch must finish on the epoch it pinned at arrival
// — every item answered by the original member, none rerouted to the
// joiner, zero route errors.
func TestMembershipEpochPinning(t *testing.T) {
	fl := newFleet(t, 2)

	// Re-wrap replica 0 in a gate (the fleet's own servers stay up; the
	// gate fronts a fresh listener so the router only sees the gated
	// one).
	gate := &gated{h: fl.faults[0].h, entered: make(chan struct{}), hold: make(chan struct{})}
	gts := httptest.NewServer(gate)
	t.Cleanup(gts.Close)

	rt, err := New(Config{
		Replicas:      []string{gts.URL},
		ProbeInterval: 20 * time.Millisecond,
		ProbeTimeout:  300 * time.Millisecond,
		ItemDeadline:  10 * time.Second,
		BatchDeadline: 20 * time.Second,
		FailAfter:     1000, // the parked query must not demote the member
		UpAfter:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/warm", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("warm = %d", rec.Code)
	}
	items, want := fl.batch(t)

	gate.armed.Store(true)
	type result struct {
		code int
		resp server.QueryResponse
	}
	done := make(chan result, 1)
	go func() {
		body, _ := json.Marshal(server.QueryRequest{Queries: items})
		r := httptest.NewRequest(http.MethodPost, "/v1/query", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		rt.ServeHTTP(rec, r)
		var resp server.QueryResponse
		_ = json.Unmarshal(rec.Body.Bytes(), &resp)
		done <- result{rec.Code, resp}
	}()

	<-gate.entered
	// The batch is parked inside the epoch-1 member. Join replica 1:
	// epoch 2 publishes while the batch is still in flight.
	slot, warmed, err := rt.Join(t.Context(), fl.urls[1])
	if err != nil {
		t.Fatalf("mid-batch join: %v", err)
	}
	if rt.Ring().Epoch() != 2 {
		t.Fatalf("epoch = %d after join", rt.Ring().Epoch())
	}
	gate.armed.Store(false)
	close(gate.hold)

	res := <-done
	if res.code != http.StatusOK {
		t.Fatalf("pinned batch = %d", res.code)
	}
	for i, a := range res.resp.Answers {
		if a.RouteError != "" || a.Length != want[i] {
			t.Fatalf("pinned item %d: %+v, want length %d", i, a, want[i])
		}
	}
	// The pinned batch never touched the joiner: it routed on epoch 1,
	// where the original member owned everything.
	if got := rt.rep(slot).routedItems.Load(); got != 0 {
		t.Fatalf("joiner served %d items from a batch pinned to the pre-join epoch", got)
	}
	t.Logf("pinned batch finished on epoch 1 while epoch 2 (joiner slot %d, %d warmed) was live", slot, warmed)
}

// TestHealthFlappingHysteresis drives the state machine directly with
// an alternating fail/ok probe pattern that never reaches failAfter
// consecutive failures: the replica must stay up and no hand-back
// (re-warm) may fire.
func TestHealthFlappingHysteresis(t *testing.T) {
	var rejoins atomic.Int64
	h := &health{
		replicas:  []*replica{{name: "flappy"}},
		failAfter: 2,
		upAfter:   2,
		onRejoin:  func(int) { rejoins.Add(1) },
	}
	for i := 0; i < 50; i++ {
		h.markFailure(0, true)
		h.markSuccess(0)
	}
	if st := h.rep(0).State(); st != StateUp {
		t.Fatalf("flapping below failAfter demoted the replica to %v", st)
	}
	if got := h.handbacks.Load(); got != 0 {
		t.Fatalf("flapping produced %d hand-backs, want 0", got)
	}
	if got := rejoins.Load(); got != 0 {
		t.Fatalf("flapping fired onRejoin %d times, want 0", got)
	}
	if got := h.rep(0).probeFailures.Load(); got != 50 {
		t.Fatalf("probeFailures = %d, want 50 (failures counted, state unmoved)", got)
	}

	// A genuine outage still demotes…
	h.markFailure(0, true)
	h.markFailure(0, true)
	if st := h.rep(0).State(); st != StateDown {
		t.Fatalf("2 consecutive failures left state %v", st)
	}
	// …and single successes during the outage must not flap it back up.
	h.markSuccess(0)
	h.markFailure(0, true)
	if st := h.rep(0).State(); st != StateDown {
		t.Fatalf("one success below upAfter promoted the replica to %v", st)
	}
	h.markSuccess(0)
	h.markSuccess(0)
	if st := h.rep(0).State(); st != StateUp {
		t.Fatalf("upAfter successes did not promote: %v", st)
	}
	if got := h.handbacks.Load(); got != 1 {
		t.Fatalf("one real outage+rejoin produced %d hand-backs", got)
	}
}

// flakyHealthz fronts a real replica but fails every other /healthz —
// the worst probe flap that still never reaches failAfter=2
// consecutive failures. Queries pass through untouched.
type flakyHealthz struct {
	h    http.Handler
	seen atomic.Int64
}

func (f *flakyHealthz) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		if f.seen.Add(1)%2 == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
	}
	f.h.ServeHTTP(w, r)
}

// TestProbeFlappingNoFailoverStorm runs traffic over a fleet whose
// second member fails every other probe: hysteresis must hold it up —
// zero failovers, zero hand-backs, zero failover warms (the re-warm
// storm the hysteresis exists to prevent) — and every answer stays
// correct.
func TestProbeFlappingNoFailoverStorm(t *testing.T) {
	fl := newFleet(t, 2)
	flaky := &flakyHealthz{h: fl.faults[1].h}
	fts := httptest.NewServer(flaky)
	t.Cleanup(fts.Close)

	rt, err := New(Config{
		Replicas:      []string{fl.urls[0], fts.URL},
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  300 * time.Millisecond,
		FailAfter:     2,
		UpAfter:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)

	rec := httptest.NewRecorder()
	rt.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/warm", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("warm = %d", rec.Code)
	}
	items, want := fl.batch(t)

	deadline := time.Now().Add(500 * time.Millisecond)
	rounds := 0
	for time.Now().Before(deadline) {
		qrec, resp := postQuery(t, rt, server.QueryRequest{Queries: items})
		if qrec.Code != http.StatusOK {
			t.Fatalf("round %d: query = %d", rounds, qrec.Code)
		}
		for i, a := range resp.Answers {
			if a.RouteError != "" || a.Length != want[i] {
				t.Fatalf("round %d item %d: %+v, want %d", rounds, i, a, want[i])
			}
		}
		rounds++
		time.Sleep(5 * time.Millisecond)
	}
	if flaky.seen.Load() < 10 {
		t.Fatalf("only %d probes hit the flaky replica; the flap was not exercised", flaky.seen.Load())
	}
	st := routerStats(t, rt)
	if st.Router.Replicas[1].State != "up" {
		t.Fatalf("flapping replica state = %s, want up (hysteresis)", st.Router.Replicas[1].State)
	}
	if st.Router.Failovers != 0 || st.Router.Handbacks != 0 || st.Router.FailoverWarms != 0 {
		t.Fatalf("flap storm leaked into routing: failovers=%d handbacks=%d failoverWarms=%d",
			st.Router.Failovers, st.Router.Handbacks, st.Router.FailoverWarms)
	}
	if st.Router.Replicas[1].ProbeFailures == 0 {
		t.Fatal("flaky replica recorded no probe failures; the flap never happened")
	}
	t.Logf("flap held: %d rounds, %d probe failures, 0 failovers/hand-backs", rounds, st.Router.Replicas[1].ProbeFailures)
}
