package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"msrp/internal/server"
	"msrp/internal/xrand"
)

// Config tunes the routing tier. The zero value of every field derives
// a sensible default; only Replicas is required.
type Config struct {
	// Replicas is the boot fleet: msrp-serve base URLs, slot-identified
	// by index. Membership is dynamic after boot — POST /v1/members
	// joins, drains, and removes replicas at runtime; the boot set only
	// determines epoch 1 of the ring.
	Replicas []string

	// VNodes is the virtual nodes per replica on the hash ring (0 = 64).
	VNodes int

	// ItemDeadline is each query item's total budget from batch arrival,
	// spanning every retry and failover attempt (0 = 5s). When it
	// expires, the item fails with a routeError; its siblings are
	// untouched.
	ItemDeadline time.Duration
	// BatchDeadline bounds the whole batch (0 = 30s). Item deadlines
	// fire first by construction (ItemDeadline is clamped to it), so a
	// batch always returns inside it with per-item verdicts.
	BatchDeadline time.Duration

	// MaxAttempts bounds HTTP attempts per item across all replicas
	// (0 = 3).
	MaxAttempts int
	// RetryBase and RetryCap shape the full-jitter exponential backoff
	// between attempts: sleep ~ U(0, min(RetryCap, RetryBase·2^attempt)),
	// and at least the replica's Retry-After hint after a 429
	// (0 = 25ms / 2s).
	RetryBase time.Duration
	RetryCap  time.Duration

	// Health probing: ProbeInterval between /healthz probes per replica
	// (0 = 250ms), ProbeTimeout per probe (0 = 1s), FailAfter
	// consecutive failures demote up → down (0 = 2), UpAfter consecutive
	// successes promote back (0 = 2).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	FailAfter     int
	UpAfter       int

	// MaxInFlight bounds concurrently routed /v1/query batches
	// (0 = 16 × boot replicas; negative = unbounded). Excess gets 429,
	// mirroring the replica admission stance: never queued.
	MaxInFlight int
	// MaxBodyBytes caps the /v1/query request body (0 = 8 MiB,
	// negative = uncapped).
	MaxBodyBytes int64

	// WarmTimeout bounds one slice warm POST (0 = 10 min; σn² builds
	// are legitimately slow).
	WarmTimeout time.Duration

	// Client overrides the HTTP client used for sub-batches, probes, and
	// scrapes (nil = a keep-alive pooled default).
	Client *http.Client

	// Logf receives routing events (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.VNodes <= 0 {
		d.VNodes = 64
	}
	if d.ItemDeadline <= 0 {
		d.ItemDeadline = 5 * time.Second
	}
	if d.BatchDeadline <= 0 {
		d.BatchDeadline = 30 * time.Second
	}
	if d.ItemDeadline > d.BatchDeadline {
		d.ItemDeadline = d.BatchDeadline
	}
	if d.MaxAttempts <= 0 {
		d.MaxAttempts = 3
	}
	if d.RetryBase <= 0 {
		d.RetryBase = 25 * time.Millisecond
	}
	if d.RetryCap <= 0 {
		d.RetryCap = 2 * time.Second
	}
	if d.ProbeInterval <= 0 {
		d.ProbeInterval = 250 * time.Millisecond
	}
	if d.ProbeTimeout <= 0 {
		d.ProbeTimeout = time.Second
	}
	if d.FailAfter <= 0 {
		d.FailAfter = 2
	}
	if d.UpAfter <= 0 {
		d.UpAfter = 2
	}
	if d.MaxInFlight == 0 {
		d.MaxInFlight = 16 * len(d.Replicas)
	}
	if d.MaxBodyBytes == 0 {
		d.MaxBodyBytes = 8 << 20
	} else if d.MaxBodyBytes < 0 {
		d.MaxBodyBytes = 0
	}
	if d.WarmTimeout <= 0 {
		d.WarmTimeout = 10 * time.Minute
	}
	return d
}

// Router is the scatter-gather coordinator. Construct with New, call
// Start to launch the health loops, and Close to stop them.
type Router struct {
	cfg    Config
	ring   atomic.Pointer[Ring] // current membership epoch; swapped whole
	health *health              // owns the append-only replica table
	client *http.Client
	mux    *http.ServeMux

	// memberMu serializes membership operations: each builds the next
	// ring from the current one, so two concurrent joins would race the
	// epoch. Queries never take it — they just Load the ring pointer.
	memberMu sync.Mutex

	queries  chan struct{} // admission slots (nil = unbounded)
	draining atomic.Bool

	// Routed-traffic counters for the aggregated stats view.
	batches     atomic.Int64
	items       atomic.Int64
	subBatches  atomic.Int64
	retries     atomic.Int64 // re-dispatches past the first attempt
	failovers   atomic.Int64 // items answered by a non-owner
	routeErrors atomic.Int64 // items that failed all attempts
	rejections  atomic.Int64 // batches 429'd by router admission

	// Membership counters.
	joins           atomic.Int64 // replicas joined via /v1/members
	drains          atomic.Int64 // replicas drained via /v1/members
	removes         atomic.Int64 // replicas removed via /v1/members
	membershipWarms atomic.Int64 // sources warmed by join/drain hand-offs

	// failoverWarms counts distinct (source, replica) failover
	// placements — each is a source some non-owner replica had to warm
	// (through the oracle's lazy single-flight build) because the owner
	// was down. The e2e "failover actually re-warmed the orphans" check
	// reads this.
	failoverWarms atomic.Int64
	fwMu          sync.Mutex
	fwSeen        map[uint64]struct{}

	// σ source set, fetched lazily from the first replica that answers
	// /v1/sources (replicas are all configured with the full set).
	srcMu   sync.Mutex
	sources []int

	rngMu sync.Mutex
	rng   *xrand.RNG
}

// New builds a router over the given boot fleet. Call Start before
// serving.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("router: need at least one replica URL")
	}
	d := cfg.withDefaults()
	ring, err := NewRing(len(d.Replicas), d.VNodes)
	if err != nil {
		return nil, err
	}
	client := d.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 64,
		}}
	}
	rt := &Router{
		cfg:    d,
		client: client,
		mux:    http.NewServeMux(),
		fwSeen: make(map[uint64]struct{}),
		rng:    xrand.New(uint64(time.Now().UnixNano())),
	}
	rt.ring.Store(ring)
	reps := make([]*replica, len(d.Replicas))
	for i, name := range d.Replicas {
		r := &replica{name: name}
		r.joinEpoch.Store(ring.Epoch())
		// Boot replicas warm through the fleet-level /v1/warm before
		// traffic arrives; only runtime joiners gate serving on their
		// membership warm.
		r.sliceWarmed.Store(true)
		reps[i] = r
	}
	rt.health = &health{
		replicas:  reps,
		client:    client,
		interval:  d.ProbeInterval,
		timeout:   d.ProbeTimeout,
		failAfter: d.FailAfter,
		upAfter:   d.UpAfter,
		logf:      d.Logf,
		onRejoin:  rt.handBack,
		stop:      make(chan struct{}),
	}
	if d.MaxInFlight > 0 {
		rt.queries = make(chan struct{}, d.MaxInFlight)
	}
	rt.mux.HandleFunc("POST /v1/query", rt.handleQuery)
	rt.mux.HandleFunc("POST /v1/warm", rt.handleWarm)
	rt.mux.HandleFunc("GET /v1/sources", rt.handleSources)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	rt.mux.HandleFunc("GET /v1/members", rt.handleMembersGet)
	rt.mux.HandleFunc("POST /v1/members", rt.handleMembersPost)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	return rt, nil
}

// Start runs one synchronous probe round (so the first routing
// decisions see real replica states) and launches the probe loops.
func (rt *Router) Start() { rt.health.start() }

// Close stops the probe loops.
func (rt *Router) Close() { rt.health.close() }

// SetDraining flips the router's own /healthz to 503, the same
// load-balancer drain signal a replica exposes.
func (rt *Router) SetDraining(v bool) { rt.draining.Store(v) }

// Ring exposes the current membership epoch's placement function (for
// tests and introspection). The snapshot is immutable; reload after a
// membership change.
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// rep returns the health record for a replica slot.
func (rt *Router) rep(i int) *replica { return rt.health.rep(i) }

// ReplicaStates snapshots each replica slot's health state.
func (rt *Router) ReplicaStates() []State {
	reps := rt.health.snapshot()
	out := make([]State, len(reps))
	for i, r := range reps {
		out[i] = r.State()
	}
	return out
}

// Handbacks returns how many down→up rejoins the health loop observed.
func (rt *Router) Handbacks() int64 { return rt.health.handbacks.Load() }

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// jitter draws from U(0, d) — full jitter, so retry storms decorrelate.
func (rt *Router) jitter(d time.Duration) time.Duration {
	rt.rngMu.Lock()
	f := rt.rng.Float64()
	rt.rngMu.Unlock()
	return time.Duration(f * float64(d))
}

// expBackoff is the attempt'th full-jitter exponential backoff.
func (rt *Router) expBackoff(attempt int) time.Duration {
	base := rt.cfg.RetryBase << uint(attempt)
	if base > rt.cfg.RetryCap || base <= 0 {
		base = rt.cfg.RetryCap
	}
	return rt.jitter(base)
}

// ---------------------------------------------------------------------
// Query scatter-gather.

// routeItem is one query item's routing state: its candidate walk over
// the ring and how much retry budget it has consumed.
type routeItem struct {
	idx      int // index in the original batch
	q        server.QueryItem
	cands    []int // ring candidates; cands[0] is the owner
	pos      int   // current candidate
	attempts int
}

// scatterState is the shared state of one batch's scatter.
type scatterState struct {
	wg       sync.WaitGroup
	itemCtx  context.Context // expires at batch start + ItemDeadline
	deadline time.Time       // itemCtx's deadline, for budget arithmetic

	answers  []server.AnswerItem
	rejected []bool // failure kind per failed item (true = replica 429)

	answered atomic.Int64 // items that got a replica answer
	hintSecs atomic.Int64 // max Retry-After hint observed

	badMu  sync.Mutex
	badMsg string // first replica-400 top-level error, passed through
}

func (st *scatterState) setBadRequest(msg string) {
	st.badMu.Lock()
	if st.badMsg == "" {
		st.badMsg = msg
	}
	st.badMu.Unlock()
}

// noteHint keeps the maximum Retry-After across rejected sub-batches —
// the aggregated (not summed) backoff the router advertises when the
// whole batch was rejected: the client must outwait the slowest
// replica, not the sum of all of them.
func (st *scatterState) noteHint(secs int64) {
	for {
		cur := st.hintSecs.Load()
		if secs <= cur || st.hintSecs.CompareAndSwap(cur, secs) {
			return
		}
	}
}

// fail records a terminal routeError for every item in grp.
func (st *scatterState) fail(grp []*routeItem, msg string, rejected bool) {
	for _, it := range grp {
		st.fail1(it, msg, rejected)
	}
}

func (st *scatterState) fail1(it *routeItem, msg string, rejected bool) {
	st.answers[it.idx] = server.AnswerItem{RouteError: msg}
	st.rejected[it.idx] = rejected
}

func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	if rt.cfg.MaxBodyBytes > 0 {
		r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	}
	var req server.QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, struct {
				Error        string `json:"error"`
				MaxBodyBytes int64  `json:"maxBodyBytes"`
			}{
				Error:        fmt.Sprintf("request body exceeds the %d-byte cap; split the batch", rt.cfg.MaxBodyBytes),
				MaxBodyBytes: rt.cfg.MaxBodyBytes,
			})
			return
		}
		writeJSON(w, http.StatusBadRequest, server.QueryResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, server.QueryResponse{Error: `empty batch: "queries" must contain at least one item`})
		return
	}
	if req.DeadlineMillis < 0 {
		writeJSON(w, http.StatusBadRequest, server.QueryResponse{Error: "deadlineMillis must be non-negative"})
		return
	}
	release, ok := rt.acquire()
	if !ok {
		rt.rejections.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "router capacity exhausted; retry later",
		})
		return
	}
	defer release()
	rt.batches.Add(1)
	rt.items.Add(int64(len(req.Queries)))

	// Pin this batch to the membership epoch current at arrival: every
	// candidate walk below routes on the same immutable snapshot, so a
	// concurrent join or drain (which swaps the pointer to the next
	// epoch) cannot send any of this batch's items to a replica that
	// was not warm under the epoch the batch started on.
	ring := rt.ring.Load()

	// Deadline hierarchy: the client's declared budget (if any) caps the
	// batch deadline; the per-item deadline is clamped inside the batch;
	// each sub-batch attempt carries the remaining item budget down to
	// the replica as its own compute deadline.
	start := time.Now()
	batchBudget := rt.cfg.BatchDeadline
	if req.DeadlineMillis > 0 {
		if d := time.Duration(req.DeadlineMillis) * time.Millisecond; d < batchBudget {
			batchBudget = d
		}
	}
	itemBudget := rt.cfg.ItemDeadline
	if itemBudget > batchBudget {
		itemBudget = batchBudget
	}
	batchCtx, cancelBatch := context.WithDeadline(r.Context(), start.Add(batchBudget))
	defer cancelBatch()
	itemCtx, cancelItem := context.WithDeadline(batchCtx, start.Add(itemBudget))
	defer cancelItem()

	st := &scatterState{
		itemCtx:  itemCtx,
		deadline: start.Add(itemBudget),
		answers:  make([]server.AnswerItem, len(req.Queries)),
		rejected: make([]bool, len(req.Queries)),
	}

	// Group items by their first live candidate and scatter.
	groups := make(map[int][]*routeItem)
	for i, q := range req.Queries {
		it := &routeItem{idx: i, q: q, cands: ring.Candidates(q.Source)}
		if !rt.seekLive(it) {
			st.fail1(it, "no live replica for this source's hash range", false)
			continue
		}
		groups[it.cands[it.pos]] = append(groups[it.cands[it.pos]], it)
	}
	for rep, grp := range groups {
		st.wg.Add(1)
		go rt.dispatch(st, rep, grp)
	}
	st.wg.Wait()

	// The client vanishing is the only whole-batch failure left: there
	// is nobody to read a partial result.
	if r.Context().Err() != nil {
		writeJSON(w, http.StatusServiceUnavailable, server.QueryResponse{Error: "batch cancelled: " + r.Context().Err().Error()})
		return
	}

	failed, allRejected := 0, true
	for i := range st.answers {
		if st.answers[i].RouteError != "" {
			failed++
			if !st.rejected[i] {
				allRejected = false
			}
		}
	}
	rt.routeErrors.Add(int64(failed))

	// Every item was turned away by replica admission control and
	// nothing was answered: surface it as the 429 it is, with the
	// aggregated Retry-After (the max hint — outwait the slowest
	// replica, never the sum).
	if failed == len(st.answers) && allRejected && st.answered.Load() == 0 {
		hint := st.hintSecs.Load()
		if hint < 1 {
			hint = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(hint, 10))
		writeJSON(w, http.StatusTooManyRequests, server.QueryResponse{
			Answers: st.answers,
			Error:   "all replicas rejected the batch; retry later",
		})
		return
	}

	status := http.StatusOK
	resp := server.QueryResponse{Answers: st.answers}
	st.badMu.Lock()
	if st.badMsg != "" {
		// Mirror a single replica's contract: a malformed item (unknown
		// source, paths from an untracked fleet) makes the batch a 400
		// with per-item detail.
		status = http.StatusBadRequest
		resp.Error = st.badMsg
	}
	st.badMu.Unlock()
	writeJSON(w, status, resp)
}

func (rt *Router) acquire() (func(), bool) {
	if rt.queries == nil {
		return func() {}, true
	}
	select {
	case rt.queries <- struct{}{}:
		return func() { <-rt.queries }, true
	default:
		return nil, false
	}
}

// seekLive advances it.pos to the first routable candidate at or after
// the current position. Draining, down, and removed replicas are
// skipped (a batch pinned to an old epoch may still walk candidates
// that have since left the fleet).
func (rt *Router) seekLive(it *routeItem) bool {
	for ; it.pos < len(it.cands); it.pos++ {
		r := rt.rep(it.cands[it.pos])
		if !r.removed.Load() && r.State() == StateUp {
			return true
		}
	}
	return false
}

// subResult is one sub-batch attempt's outcome.
type subResult int

const (
	subOK       subResult = iota // got answers (status 200 or passthrough 400)
	subRejected                  // replica 429
	subFailed                    // transport error, 5xx, or malformed reply
)

// dispatch drives one sub-batch group against replica rep until every
// item is answered or terminally failed. Failing items re-route to
// their next ring candidate; the group forks when items' failover
// targets diverge.
func (rt *Router) dispatch(st *scatterState, rep int, grp []*routeItem) {
	defer st.wg.Done()
	for {
		if st.itemCtx.Err() != nil {
			st.fail(grp, "per-item deadline exceeded", false)
			return
		}
		res, parsed, status, hint := rt.sendSubBatch(st, rep, grp)
		for _, it := range grp {
			it.attempts++
		}
		switch res {
		case subOK:
			rr := rt.rep(rep)
			for k, it := range grp {
				st.answers[it.idx] = parsed.Answers[k]
				st.answered.Add(1)
				rr.routedItems.Add(1)
				if owner := it.cands[0]; owner != rep {
					rt.failovers.Add(1)
					rr.failedOverItems.Add(1)
					rt.noteFailoverWarm(it.q.Source, rep)
				}
			}
			if status == http.StatusBadRequest && parsed.Error != "" {
				st.setBadRequest(parsed.Error)
			}
			return

		case subRejected:
			st.noteHint(hint)
			if grp[0].attempts >= rt.cfg.MaxAttempts {
				st.fail(grp, fmt.Sprintf("rejected by replica admission control; retry after %ds", hint), true)
				return
			}
			// Obey the hint, decorrelate with full jitter, and never
			// sleep past the item budget — a backoff that cannot fit is
			// a terminal rejection now, not a deadline miss later.
			backoff := rt.expBackoff(grp[0].attempts)
			if h := time.Duration(hint) * time.Second; h > backoff {
				backoff = h
			}
			if time.Now().Add(backoff).After(st.deadline) {
				st.fail(grp, fmt.Sprintf("rejected by replica admission control; retry after %ds", hint), true)
				return
			}
			rt.retries.Add(1)
			select {
			case <-time.After(backoff):
			case <-st.itemCtx.Done():
				st.fail(grp, "per-item deadline exceeded", false)
				return
			}
			// Retry the same replica: its admission slot will free; a
			// reroute would force another replica to rebuild the slice.
			continue

		case subFailed:
			rt.health.markFailure(rep, false)
			if st.itemCtx.Err() != nil {
				st.fail(grp, "per-item deadline exceeded", false)
				return
			}
			regroup := make(map[int][]*routeItem)
			for _, it := range grp {
				if it.attempts >= rt.cfg.MaxAttempts {
					st.fail1(it, fmt.Sprintf("no answer after %d attempts", it.attempts), false)
					continue
				}
				it.pos++
				if !rt.seekLive(it) {
					st.fail1(it, "no live replica for this source's hash range", false)
					continue
				}
				regroup[it.cands[it.pos]] = append(regroup[it.cands[it.pos]], it)
			}
			if len(regroup) == 0 {
				return
			}
			rt.retries.Add(int64(len(regroup)))
			// Tail-call the common single-target case; fork otherwise.
			if len(regroup) == 1 {
				for rep2, g2 := range regroup {
					rep, grp = rep2, g2
				}
				continue
			}
			first := true
			for rep2, g2 := range regroup {
				if first {
					rep, grp = rep2, g2
					first = false
					continue
				}
				st.wg.Add(1)
				go rt.dispatch(st, rep2, g2)
			}
			continue
		}
	}
}

// sendSubBatch posts one sub-batch to rep with the remaining item
// budget declared as the replica-side deadline.
func (rt *Router) sendSubBatch(st *scatterState, rep int, grp []*routeItem) (subResult, *server.QueryResponse, int, int64) {
	rt.subBatches.Add(1)
	queries := make([]server.QueryItem, len(grp))
	for k, it := range grp {
		queries[k] = it.q
	}
	remaining := time.Until(st.deadline)
	if remaining <= 0 {
		return subFailed, nil, 0, 0
	}
	deadlineMillis := int64(remaining / time.Millisecond)
	if deadlineMillis < 1 {
		deadlineMillis = 1
	}
	body, err := json.Marshal(server.QueryRequest{Queries: queries, DeadlineMillis: deadlineMillis})
	if err != nil {
		panic("router: marshal sub-batch: " + err.Error()) // wire-shaped data; cannot fail
	}
	req, err := http.NewRequestWithContext(st.itemCtx, http.MethodPost,
		rt.rep(rep).name+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return subFailed, nil, 0, 0
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return subFailed, nil, 0, 0
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusBadRequest:
		var parsed server.QueryResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&parsed); err != nil {
			return subFailed, nil, 0, 0
		}
		if len(parsed.Answers) != len(grp) {
			return subFailed, nil, 0, 0
		}
		return subOK, &parsed, resp.StatusCode, 0
	case resp.StatusCode == http.StatusTooManyRequests:
		var hint int64 = 1
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.ParseInt(s, 10, 64); err == nil && secs >= 0 {
				hint = secs
			}
		}
		return subRejected, nil, 0, hint
	default:
		return subFailed, nil, 0, 0
	}
}

// noteFailoverWarm counts the first time each (source, replica)
// failover placement is served — the moment the non-owner replica has
// lazily warmed an orphaned source.
func (rt *Router) noteFailoverWarm(source, rep int) {
	key := uint64(int64(source))<<16 | uint64(rep)
	rt.fwMu.Lock()
	if _, ok := rt.fwSeen[key]; !ok {
		rt.fwSeen[key] = struct{}{}
		rt.failoverWarms.Add(1)
	}
	rt.fwMu.Unlock()
}

// ---------------------------------------------------------------------
// Warm scatter, hand-back, sources.

// sourceSet returns the fleet's σ source ids, fetching them from the
// first replica that answers /v1/sources (every replica is configured
// with the full set; only the cache slices differ).
func (rt *Router) sourceSet(ctx context.Context) ([]int, error) {
	rt.srcMu.Lock()
	defer rt.srcMu.Unlock()
	if rt.sources != nil {
		return rt.sources, nil
	}
	var lastErr error = errors.New("router: no replica answered /v1/sources")
	for i, rep := range rt.health.snapshot() {
		if rep.removed.Load() || rep.State() != StateUp {
			continue
		}
		var sr server.SourcesResponse
		if err := rt.getJSON(ctx, rep.name+"/v1/sources", &sr); err != nil {
			lastErr = err
			continue
		}
		if len(sr.Sources) == 0 {
			lastErr = fmt.Errorf("router: replica %d reports no sources", i)
			continue
		}
		rt.sources = sr.Sources
		return rt.sources, nil
	}
	return nil, lastErr
}

// handBack is the down→up rejoin hook: re-warm the rejoined replica's
// hash slice in the background so queries routing home again hit a warm
// cache instead of σ/N rebuilds.
func (rt *Router) handBack(i int) {
	go func() {
		ring := rt.ring.Load()
		if !ring.Contains(i) {
			// A joiner flapping during its membership warm, or a slot
			// already drained out: no slice to hand back.
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.WarmTimeout)
		defer cancel()
		sources, err := rt.sourceSet(ctx)
		if err != nil {
			rt.logf("hand-back warm for replica %d: %v", i, err)
			return
		}
		slice := ring.Owned(sources, i)
		if len(slice) == 0 {
			return
		}
		if err := rt.postWarm(ctx, rt.rep(i).name, slice); err != nil {
			rt.logf("hand-back warm for replica %d (%d sources): %v", i, len(slice), err)
			return
		}
		rt.logf("hand-back: replica %d re-warmed its %d-source slice", i, len(slice))
	}()
}

func (rt *Router) postWarm(ctx context.Context, base string, slice []int) error {
	body, _ := json.Marshal(server.WarmRequest{Sources: slice})
	wctx, cancel := context.WithTimeout(ctx, rt.cfg.WarmTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(wctx, http.MethodPost, base+"/v1/warm", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("warm %s: status %d: %s", base, resp.StatusCode, bytes.TrimSpace(b))
	}
	return nil
}

func (rt *Router) getJSON(ctx context.Context, url string, out any) error {
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// handleWarm scatters slice warms: each live replica pre-builds exactly
// the sources it owns (never all σ — that is the point of the shard).
// Slices whose owner is unroutable are warmed on the failover candidate
// that will actually serve them.
func (rt *Router) handleWarm(w http.ResponseWriter, r *http.Request) {
	sources, err := rt.sourceSet(r.Context())
	if err != nil {
		writeJSON(w, http.StatusBadGateway, server.WarmResponse{Error: err.Error()})
		return
	}
	ring := rt.ring.Load()

	// Group every source by the replica that currently serves it.
	slices := make(map[int][]int)
	var unroutable []int
	for _, s := range sources {
		it := &routeItem{q: server.QueryItem{Source: s}, cands: ring.Candidates(s)}
		if !rt.seekLive(it) {
			unroutable = append(unroutable, s)
			continue
		}
		rep := it.cands[it.pos]
		slices[rep] = append(slices[rep], s)
	}

	type warmOut struct {
		rep int
		err error
	}
	out := make(chan warmOut, len(slices))
	for rep, slice := range slices {
		go func(rep int, slice []int) {
			out <- warmOut{rep, rt.postWarm(r.Context(), rt.rep(rep).name, slice)}
		}(rep, slice)
	}
	var errs []string
	for range slices {
		o := <-out
		if o.err != nil {
			rt.health.markFailure(o.rep, false)
			errs = append(errs, o.err.Error())
			continue
		}
		rt.rep(o.rep).sliceWarmed.Store(true)
	}
	if len(unroutable) > 0 {
		errs = append(errs, fmt.Sprintf("%d sources have no live replica", len(unroutable)))
	}

	cached, stale := rt.sumCachedSources(r.Context())
	if len(errs) > 0 {
		writeJSON(w, http.StatusBadGateway, server.WarmResponse{
			CachedSources: cached,
			StaleReplicas: stale,
			Error:         "warm incomplete: " + errs[0],
		})
		return
	}
	writeJSON(w, http.StatusOK, server.WarmResponse{
		CachedSources: cached,
		StaleReplicas: stale,
		Warmed:        len(sources),
	})
}

// sumCachedSources totals the cached-source counts of the current
// epoch's serving members. A replica that goes down mid-scrape (or was
// already down) contributes nothing to the sum and increments stale —
// a partial sum with an honest staleness count, never an error.
func (rt *Router) sumCachedSources(ctx context.Context) (total, stale int) {
	ring := rt.ring.Load()
	for _, slot := range ring.Members() {
		rep := rt.rep(slot)
		if rep.removed.Load() || rep.State() == StateDown {
			stale++
			continue
		}
		var sr server.SourcesResponse
		if err := rt.getJSON(ctx, rep.name+"/v1/sources", &sr); err != nil {
			stale++
			continue
		}
		total += len(sr.Cached)
	}
	return total, stale
}

func (rt *Router) handleSources(w http.ResponseWriter, r *http.Request) {
	sources, err := rt.sourceSet(r.Context())
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	ring := rt.ring.Load()
	cachedSet := make(map[int]struct{})
	for _, slot := range ring.Members() {
		rep := rt.rep(slot)
		if rep.removed.Load() || rep.State() == StateDown {
			continue
		}
		var sr server.SourcesResponse
		if err := rt.getJSON(ctx0(r), rep.name+"/v1/sources", &sr); err == nil {
			for _, s := range sr.Cached {
				cachedSet[s] = struct{}{}
			}
		}
	}
	cached := make([]int, 0, len(cachedSet))
	for s := range cachedSet {
		cached = append(cached, s)
	}
	sort.Ints(cached)
	writeJSON(w, http.StatusOK, server.SourcesResponse{Sources: sources, Cached: cached})
}

func ctx0(r *http.Request) context.Context { return r.Context() }

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if rt.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	ring := rt.ring.Load()
	up := 0
	for _, slot := range ring.Members() {
		if rt.rep(slot).State() == StateUp {
			up++
		}
	}
	if up == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no live replicas")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "ok (%d/%d replicas up)\n", up, ring.Replicas())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
