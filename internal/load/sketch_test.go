package load

import (
	"math"
	"testing"
	"time"
)

func TestSketchQuantiles(t *testing.T) {
	var s Sketch
	// 1..1000 ms uniform: p50 ≈ 500ms, p99 ≈ 990ms within the sketch's
	// ~8% relative error.
	for i := 1; i <= 1000; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	if s.Count() != 1000 {
		t.Fatalf("count = %d", s.Count())
	}
	check := func(q, wantMs float64) {
		got := float64(s.Quantile(q)) / float64(time.Millisecond)
		if math.Abs(got-wantMs)/wantMs > 0.10 {
			t.Fatalf("q%.2f = %.1fms, want %.0fms ±10%%", q, got, wantMs)
		}
	}
	check(0.50, 500)
	check(0.95, 950)
	check(0.99, 990)
	if got := s.Quantile(1); got != time.Second {
		t.Fatalf("q1 = %v, want the exact max 1s", got)
	}
	// Monotonicity.
	if !(s.Quantile(0.5) <= s.Quantile(0.95) && s.Quantile(0.95) <= s.Quantile(0.99) &&
		s.Quantile(0.99) <= s.Quantile(1)) {
		t.Fatal("quantiles not monotone")
	}
}

func TestSketchMergeMatchesCombined(t *testing.T) {
	var a, b, all Sketch
	for i := 1; i <= 500; i++ {
		d := time.Duration(i) * 37 * time.Microsecond
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
		all.Add(d)
	}
	a.Merge(&b)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Fatalf("merged q%.2f = %v, combined = %v", q, a.Quantile(q), all.Quantile(q))
		}
	}
	if a.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), all.Count())
	}
}

func TestSketchEmpty(t *testing.T) {
	var s Sketch
	if s.Quantile(0.5) != 0 || s.Count() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	sum := s.Summary()
	if sum.Count != 0 || sum.P99 != 0 || sum.Mean != 0 {
		t.Fatalf("empty summary = %+v", sum)
	}
}
