package load

import (
	"encoding/json"
	"fmt"
	"os"

	"msrp/internal/bench"
)

// Tolerance is the band a fresh run may move within before Compare
// calls it a regression. Load numbers on shared CI hosts are noisy and
// the micro plan's waves are short, so the defaults are deliberately
// wide: the gate exists to catch the 5× cliff a bad refactor causes,
// not 10% jitter.
type Tolerance struct {
	// LatencyFactor bounds each latency percentile: fresh must be at
	// most base*LatencyFactor + LatencyFloorMillis.
	LatencyFactor float64
	// LatencyFloorMillis absorbs absolute noise on tiny baselines (a
	// 0.4ms p50 doubling is scheduler jitter, not a regression).
	LatencyFloorMillis float64
	// RejectionBand bounds the 429 rate as an absolute delta: a wave
	// designed to saturate must keep rejecting, one designed to fit
	// must keep fitting.
	RejectionBand float64
	// WarmFactor and WarmFloorMillis band the run-level warm-up wall
	// clock (Result.WarmMillis) the same way LatencyFactor bands the
	// per-wave percentiles. The warm-up runs the full §8 batch
	// pipeline, so this is the committed record's guard on the solve
	// schedule itself: a refactor that quietly reintroduces a
	// stop-the-world barrier shows up here even when the serving waves
	// (all cache hits) stay fast. Zero WarmFactor disables the check,
	// as does a baseline without a warm-up phase.
	WarmFactor      float64
	WarmFloorMillis float64
}

// DefaultTolerance is the band the CI gate runs with.
func DefaultTolerance() Tolerance {
	return Tolerance{
		LatencyFactor: 3, LatencyFloorMillis: 100, RejectionBand: 0.2,
		WarmFactor: 3, WarmFloorMillis: 500,
	}
}

// LoadBaseline reads a committed BENCH_*.json envelope and decodes its
// Data payload back into a load Result.
func LoadBaseline(path string) (*Result, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var env struct {
		bench.Envelope
		Data Result `json:"data"`
	}
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("load: parse baseline %s: %w", path, err)
	}
	if len(env.Data.Waves) == 0 {
		return nil, fmt.Errorf("load: baseline %s has no waves", path)
	}
	return &env.Data, nil
}

// Compare diffs a fresh run against a committed baseline, wave by wave
// (matched by name), and returns the violations — empty means the run
// is inside the tolerance band. Waves present only in the fresh run
// are ignored (a grown plan is not a regression); waves missing from
// the fresh run are violations (the scenario shrank).
func Compare(fresh, base *Result, tol Tolerance) []string {
	var violations []string
	if tol.WarmFactor > 0 && base.WarmMillis > 0 {
		if bound := base.WarmMillis*tol.WarmFactor + tol.WarmFloorMillis; fresh.WarmMillis > bound {
			violations = append(violations, fmt.Sprintf(
				"warm-up %.0fms exceeds %.0fms (baseline %.0fms × %.1f + %.0fms)",
				fresh.WarmMillis, bound, base.WarmMillis, tol.WarmFactor, tol.WarmFloorMillis))
		}
	}
	freshByName := make(map[string]*WaveResult, len(fresh.Waves))
	for i := range fresh.Waves {
		freshByName[fresh.Waves[i].Name] = &fresh.Waves[i]
	}
	for i := range base.Waves {
		bw := &base.Waves[i]
		fw, ok := freshByName[bw.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("wave %q: in baseline but not in this run", bw.Name))
			continue
		}
		checkLat := func(metric string, freshV, baseV float64) {
			if bound := baseV*tol.LatencyFactor + tol.LatencyFloorMillis; freshV > bound {
				violations = append(violations, fmt.Sprintf(
					"wave %q: %s %.2fms exceeds %.2fms (baseline %.2fms × %.1f + %.0fms)",
					bw.Name, metric, freshV, bound, baseV, tol.LatencyFactor, tol.LatencyFloorMillis))
			}
		}
		checkLat("p50", fw.Latency.P50, bw.Latency.P50)
		checkLat("p95", fw.Latency.P95, bw.Latency.P95)
		checkLat("p99", fw.Latency.P99, bw.Latency.P99)
		if d := fw.RejectionRate - bw.RejectionRate; d > tol.RejectionBand || d < -tol.RejectionBand {
			violations = append(violations, fmt.Sprintf(
				"wave %q: rejection rate %.1f%% is outside ±%.0f%% of baseline %.1f%%",
				bw.Name, 100*fw.RejectionRate, 100*tol.RejectionBand, 100*bw.RejectionRate))
		}
		if fw.ServerErrors > 0 && bw.ServerErrors == 0 {
			violations = append(violations, fmt.Sprintf(
				"wave %q: %d server errors, baseline had none", bw.Name, fw.ServerErrors))
		}
	}
	return violations
}
