package load

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"msrp/internal/bench"
	"msrp/internal/graph"
	"msrp/internal/server"
	"msrp/internal/xrand"
)

// Target is the endpoint a plan runs against.
type Target struct {
	// BaseURL is the msrp-serve endpoint ("http://127.0.0.1:8080").
	BaseURL string
	// Client overrides the HTTP client (nil = a keep-alive pooled
	// default sized for the plan's largest wave).
	Client *http.Client
	// Pid, when positive, is the serving process: its peak RSS is
	// sampled from /proc, and a drain wave SIGTERMs it unless DrainFn
	// is set.
	Pid int
	// DrainFn, when set, triggers the graceful drain instead of a
	// signal — the in-process hook (server.Server.SetDraining) tests
	// use.
	DrainFn func() error
	// ChaosFn applies a replica fault (kill|term|stall|resume|restart on
	// fleet index i). Required when the plan has chaos waves; wired to
	// router.Manager.Apply by cmd/msrp-load's router mode.
	ChaosFn func(op string, replica int) error
}

func (t *Target) drain() error {
	if t.DrainFn != nil {
		return t.DrainFn()
	}
	if t.Pid > 0 {
		p, err := os.FindProcess(t.Pid)
		if err != nil {
			return err
		}
		return p.Signal(syscall.SIGTERM)
	}
	return fmt.Errorf("load: drain wave needs a target pid or drain hook")
}

// Options tunes a run.
type Options struct {
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// StatsDelta is the change in the server's /v1/stats counters across
// one wave — the server's own account of what the wave did to it.
type StatsDelta struct {
	Batches       int64 `json:"batches"`
	BatchQueries  int64 `json:"batchQueries"`
	Builds        int64 `json:"builds"`
	Rejections    int64 `json:"rejections"`
	Cancellations int64 `json:"cancellations"`
	Evictions     int64 `json:"evictions"`
	// The provenance tier under a MaxProvenanceBytes budget: sources
	// whose provenance the budget stripped, and on-demand tracked
	// rebuilds triggered by path queries against stripped sources.
	ProvenanceEvictions int64 `json:"provenanceEvictions,omitempty"`
	ProvenanceRebuilds  int64 `json:"provenanceRebuilds,omitempty"`
}

// StatsGauges is the point-in-time server state recorded with a run:
// the /v1/stats gauges the ROADMAP tracks at serving scale.
type StatsGauges struct {
	CachedSources   int   `json:"cachedSources"`
	ProvenanceBytes int64 `json:"provenanceBytes"`
	// PeakProvenanceBytes is the largest ProvenanceBytes any stats
	// scrape of this run observed — the record that the gauge stayed
	// under the plan's maxProvenanceBytes budget throughout.
	PeakProvenanceBytes int64 `json:"peakProvenanceBytes,omitempty"`
	// The most recent warm's provenance plane before and after
	// post-solve compaction (zero on untracked or warm-less runs).
	ProvenanceRawBytes            int64   `json:"provenanceRawBytes,omitempty"`
	ProvenanceCompactedBytes      int64   `json:"provenanceCompactedBytes,omitempty"`
	WarmStageBuildMillis          float64 `json:"warmStageBuildMillis"`
	WarmStageSeedEnumerateMillis  float64 `json:"warmStageSeedEnumerateMillis"`
	WarmStageSeedMergeMillis      float64 `json:"warmStageSeedMergeMillis"`
	WarmStageCenterLandmarkMillis float64 `json:"warmStageCenterLandmarkMillis"`
	WarmStageAssemblyMillis       float64 `json:"warmStageAssemblyMillis"`
	// Streaming-overlap counters of the most recent warm: §8.2.2
	// center solves released before every source finished. Zero when
	// the server warms under a barrier schedule.
	WarmCentersReady      int64 `json:"warmCentersReady,omitempty"`
	WarmCentersOverlapped int64 `json:"warmCentersOverlapped,omitempty"`
}

// DrainResult records the graceful-drain observation of a drain wave.
type DrainResult struct {
	// TriggeredAtMillis is the drain trigger's offset into the wave.
	TriggeredAtMillis float64 `json:"triggeredAtMillis"`
	// Healthz503Observed reports whether /healthz flipped to 503 after
	// the trigger (the load-balancer signal the drain exists for).
	Healthz503Observed bool `json:"healthz503Observed"`
	// Healthz503Millis is the trigger→first-503 latency.
	Healthz503Millis float64 `json:"healthz503Millis"`
	// CompletedAfterDrain counts 2xx answers that landed after the
	// trigger — in-flight and still-routed work completing, not being
	// dropped.
	CompletedAfterDrain int64 `json:"completedAfterDrain"`
	// ServerErrorsAfterDrain counts 5xx after the trigger (graceful
	// degradation means zero).
	ServerErrorsAfterDrain int64 `json:"serverErrorsAfterDrain"`
}

// ChaosResult records a chaos wave's fault injection timeline.
type ChaosResult struct {
	Action  string `json:"action"`
	Replica int    `json:"replica"`
	// TriggeredAtMillis is the fault's offset into the wave.
	TriggeredAtMillis float64 `json:"triggeredAtMillis"`
	// Recovered reports that the recovery op (resume/restart) was
	// applied; RecoveredAtMillis is its offset into the wave.
	Recovered         bool    `json:"recovered,omitempty"`
	RecoveredAtMillis float64 `json:"recoveredAtMillis,omitempty"`
	// Error records a failed injection (the run continues; the caller
	// decides what is fatal).
	Error string `json:"error,omitempty"`
}

// RouterDelta is the change in the router's own /v1/stats counters
// across one wave, plus the membership gauges at wave end — the routing
// tier's account of the failover and membership-churn story.
type RouterDelta struct {
	Batches       int64 `json:"batches"`
	Items         int64 `json:"items"`
	SubBatches    int64 `json:"subBatches"`
	Retries       int64 `json:"retries"`
	Failovers     int64 `json:"failovers"`
	FailoverWarms int64 `json:"failoverWarms"`
	RouteErrors   int64 `json:"routeErrors"`
	Rejections    int64 `json:"rejections"`
	Handbacks     int64 `json:"handbacks"`
	ReplicasUp    int   `json:"replicasUp"`
	// Membership churn across the wave: joins/drains/removes/warm counts
	// are deltas, Epoch is the ring epoch at wave end (monotone across
	// waves), StaleReplicas the members whose stats scrape failed at wave
	// end.
	Epoch           uint64 `json:"epoch,omitempty"`
	Joins           int64  `json:"joins,omitempty"`
	Drains          int64  `json:"drains,omitempty"`
	Removes         int64  `json:"removes,omitempty"`
	MembershipWarms int64  `json:"membershipWarms,omitempty"`
	StaleReplicas   int    `json:"staleReplicas,omitempty"`
	// WarmBeforeServeViolations counts replicas that served items without
	// their slice ever having been warmed — the invariant the membership
	// hand-off exists to keep; must stay zero.
	WarmBeforeServeViolations int `json:"warmBeforeServeViolations"`
}

// WaveResult is the recorded outcome of one wave.
type WaveResult struct {
	Name           string  `json:"name"`
	Clients        int     `json:"clients"`
	Arrival        string  `json:"arrival"`
	Rate           float64 `json:"rate,omitempty"`
	DurationMillis float64 `json:"durationMillis"`

	// OfferedBatches counts batch requests actually sent (including
	// retries); OfferedQueries the individual queries inside them.
	OfferedBatches int64 `json:"offeredBatches"`
	OfferedQueries int64 `json:"offeredQueries"`
	// Completed counts 2xx batch responses; CompletedQueries their
	// individual answers.
	Completed        int64 `json:"completed"`
	CompletedQueries int64 `json:"completedQueries"`
	// Rejected counts 429s (admission control working as designed);
	// ClientErrors other 4xx; ServerErrors 5xx (must stay zero);
	// TransportErrors requests that never got an HTTP response.
	Rejected        int64 `json:"rejected"`
	ClientErrors    int64 `json:"clientErrors"`
	ServerErrors    int64 `json:"serverErrors"`
	TransportErrors int64 `json:"transportErrors"`
	// Overflowed counts poisson arrivals dropped because every client
	// slot was busy (offered load the harness itself had to shed).
	Overflowed int64 `json:"overflowed,omitempty"`

	// Retry-After obedience: Retries counts batches re-sent after
	// honoring the advertised backoff, RetryWaitMillis the total time
	// spent honoring it, RetryAfterMeanSecs the mean advertised value.
	Retries            int64   `json:"retries"`
	RetryWaitMillis    float64 `json:"retryWaitMillis"`
	RetryAfterMeanSecs float64 `json:"retryAfterMeanSecs"`

	// ThroughputRPS is completed batches per second; QueryRPS completed
	// queries per second; RejectionRate rejected over offered batches.
	ThroughputRPS float64 `json:"throughputRPS"`
	QueryRPS      float64 `json:"queryRPS"`
	RejectionRate float64 `json:"rejectionRate"`

	// Latency summarizes accepted (2xx) batch latencies only — the
	// experience of admitted traffic, which must stay bounded while
	// rejected traffic rises.
	Latency bench.LatencyMillis `json:"latency"`

	// RouteErrors counts individual items that came back with a
	// routeError (the router failed them within their budget instead of
	// 5xx-ing the batch); PartialBatches counts 2xx batches containing
	// at least one. Only populated for router plans (the response body
	// is not decoded otherwise).
	RouteErrors    int64 `json:"routeErrors,omitempty"`
	PartialBatches int64 `json:"partialBatches,omitempty"`

	// Served-path validation: every path returned to a "paths": true
	// query is machine-checked client-side against the regenerated
	// graph (a real walk in G−e from source to target of exactly
	// Length edges). PathsValidated counts paths that passed,
	// PathInvalid paths that failed (must stay zero),
	// PathBudgetErrors answers whose per-response path-vertex budget
	// ran out (pathError — length still served).
	PathsValidated   int64  `json:"pathsValidated,omitempty"`
	PathInvalid      int64  `json:"pathInvalid,omitempty"`
	PathInvalidFirst string `json:"pathInvalidFirst,omitempty"`
	PathBudgetErrors int64  `json:"pathBudgetErrors,omitempty"`

	Drain  *DrainResult `json:"drain,omitempty"`
	Chaos  *ChaosResult `json:"chaos,omitempty"`
	Stats  *StatsDelta  `json:"stats,omitempty"`
	Router *RouterDelta `json:"router,omitempty"`
}

// Result is a full run, the Data payload of a BENCH_*.json envelope.
type Result struct {
	Plan       *Plan        `json:"plan"`
	Target     string       `json:"target"`
	StartedAt  time.Time    `json:"startedAt"`
	WarmMillis float64      `json:"warmMillis,omitempty"`
	Waves      []WaveResult `json:"waves"`
	// Server is the last successful /v1/stats gauge scrape.
	Server *StatsGauges `json:"server,omitempty"`
	// PeakRSSBytes is the serving process's VmHWM high-water mark (0
	// when no pid was attached or /proc is unavailable).
	PeakRSSBytes int64 `json:"peakRSSBytes,omitempty"`
	// ServerErrors totals 5xx across all waves; a healthy run records 0.
	ServerErrors int64 `json:"serverErrors"`
}

// Run executes the plan against the target. The returned Result is
// complete even when the run observed failures (5xx, missing drain
// flip); the caller decides what is fatal. The error is reserved for
// the harness itself failing (bad plan graph, no sources, warm-up
// never admitted).
func Run(ctx context.Context, plan *Plan, tgt *Target, opt Options) (*Result, error) {
	gen, g, err := NewQueryGen(plan)
	if err != nil {
		return nil, err
	}
	client := tgt.Client
	if client == nil {
		maxClients := 0
		for _, w := range plan.Waves {
			if w.Clients > maxClients {
				maxClients = w.Clients
			}
		}
		client = &http.Client{Transport: &http.Transport{
			MaxIdleConns:        maxClients + 16,
			MaxIdleConnsPerHost: maxClients + 16,
		}}
	}
	r := &runner{
		plan:   plan,
		tgt:    tgt,
		gen:    gen,
		graph:  g,
		client: client,
		opt:    opt,
	}

	res := &Result{Plan: plan, Target: tgt.BaseURL, StartedAt: time.Now().UTC().Truncate(time.Millisecond)}

	// Peak-RSS sampler: poll the serving process's high-water mark for
	// the whole run (VmHWM is kernel-maintained, so sampling cadence
	// only matters for catching it before the process exits).
	var peakRSS atomic.Int64
	rssDone := make(chan struct{})
	rssStopped := make(chan struct{})
	go func() {
		defer close(rssStopped)
		for {
			if v := peakRSSBytes(tgt.Pid); v > peakRSS.Load() {
				peakRSS.Store(v)
			}
			select {
			case <-rssDone:
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
	}()
	defer func() {
		close(rssDone)
		<-rssStopped
		res.PeakRSSBytes = peakRSS.Load()
	}()

	// Warm-up phase: run the §8 batch pipeline once before offering
	// load, so waves measure serving, not first-touch builds.
	if plan.Warm {
		opt.logf("warm-up: POST /v1/warm")
		start := time.Now()
		if err := r.warm(ctx); err != nil {
			return nil, fmt.Errorf("load: warm-up: %w", err)
		}
		res.WarmMillis = millisOf(time.Since(start))
		opt.logf("warm-up done in %.0fms", res.WarmMillis)
	}

	var peakProv int64
	for i := range plan.Waves {
		wave := &plan.Waves[i]
		before, beforeOK := r.scrapeStats(ctx)
		if beforeOK && before.ProvenanceBytes > peakProv {
			peakProv = before.ProvenanceBytes
		}
		opt.logf("wave %q: %d clients, %s arrival, %v", wave.Name, wave.Clients, arrivalOf(wave), time.Duration(wave.Duration))
		wr, err := r.runWave(ctx, wave)
		if err != nil {
			return nil, err
		}
		if after, ok := r.scrapeStats(ctx); ok {
			if beforeOK {
				wr.Stats = &StatsDelta{
					Batches:             after.Batches - before.Batches,
					BatchQueries:        after.BatchQueries - before.BatchQueries,
					Builds:              after.Builds - before.Builds,
					Rejections:          after.Rejections - before.Rejections,
					Cancellations:       after.Cancellations - before.Cancellations,
					Evictions:           after.Evictions - before.Evictions,
					ProvenanceEvictions: after.ProvenanceEvictions - before.ProvenanceEvictions,
					ProvenanceRebuilds:  after.ProvenanceRebuilds - before.ProvenanceRebuilds,
				}
				if after.Router != nil && before.Router != nil {
					violations := 0
					for _, rep := range after.Router.Replicas {
						if rep.RoutedItems > 0 && !rep.SliceWarmed {
							violations++
						}
					}
					wr.Router = &RouterDelta{
						Batches:                   after.Router.Batches - before.Router.Batches,
						Items:                     after.Router.Items - before.Router.Items,
						SubBatches:                after.Router.SubBatches - before.Router.SubBatches,
						Retries:                   after.Router.Retries - before.Router.Retries,
						Failovers:                 after.Router.Failovers - before.Router.Failovers,
						FailoverWarms:             after.Router.FailoverWarms - before.Router.FailoverWarms,
						RouteErrors:               after.Router.RouteErrors - before.Router.RouteErrors,
						Rejections:                after.Router.Rejections - before.Router.Rejections,
						Handbacks:                 after.Router.Handbacks - before.Router.Handbacks,
						ReplicasUp:                after.Router.ReplicasUp,
						Epoch:                     after.Router.Epoch,
						Joins:                     after.Router.Joins - before.Router.Joins,
						Drains:                    after.Router.Drains - before.Router.Drains,
						Removes:                   after.Router.Removes - before.Router.Removes,
						MembershipWarms:           after.Router.MembershipWarms - before.Router.MembershipWarms,
						StaleReplicas:             after.Router.StaleReplicas,
						WarmBeforeServeViolations: violations,
					}
				}
			}
			if after.ProvenanceBytes > peakProv {
				peakProv = after.ProvenanceBytes
			}
			res.Server = &StatsGauges{
				CachedSources:                 after.CachedSources,
				ProvenanceBytes:               after.ProvenanceBytes,
				PeakProvenanceBytes:           peakProv,
				ProvenanceRawBytes:            after.ProvenanceRawBytes,
				ProvenanceCompactedBytes:      after.ProvenanceCompactedBytes,
				WarmStageBuildMillis:          after.WarmStageBuildMillis,
				WarmStageSeedEnumerateMillis:  after.WarmStageSeedEnumerateMillis,
				WarmStageSeedMergeMillis:      after.WarmStageSeedMergeMillis,
				WarmStageCenterLandmarkMillis: after.WarmStageCenterLandmarkMillis,
				WarmStageAssemblyMillis:       after.WarmStageAssemblyMillis,
				WarmCentersReady:              after.WarmCentersReady,
				WarmCentersOverlapped:         after.WarmCentersOverlapped,
			}
		}
		res.ServerErrors += wr.ServerErrors
		res.Waves = append(res.Waves, *wr)
		opt.logf("wave %q: offered=%d completed=%d rejected=%d (%.1f%%) 5xx=%d p99=%.2fms",
			wave.Name, wr.OfferedBatches, wr.Completed, wr.Rejected, 100*wr.RejectionRate,
			wr.ServerErrors, wr.Latency.P99)
	}
	return res, nil
}

func arrivalOf(w *Wave) string {
	if w.Arrival == "" {
		return ArrivalClosed
	}
	return w.Arrival
}

type runner struct {
	plan   *Plan
	tgt    *Target
	gen    *QueryGen
	graph  *graph.Graph
	client *http.Client
	opt    Options
}

// warm posts /v1/warm, honoring Retry-After if another warm is in
// flight. A σn² pipeline can legitimately take minutes, so the request
// runs on a generous timeout independent of the per-query one.
func (r *runner) warm(ctx context.Context) error {
	for attempt := 0; attempt < 10; attempt++ {
		wctx, cancel := context.WithTimeout(ctx, 15*time.Minute)
		req, err := http.NewRequestWithContext(wctx, http.MethodPost, r.tgt.BaseURL+"/v1/warm", nil)
		if err != nil {
			cancel()
			return err
		}
		resp, err := r.client.Do(req)
		if err != nil {
			cancel()
			return err
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		cancel()
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests:
			backoff := retryAfterOf(resp, time.Second)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
		default:
			return fmt.Errorf("warm: status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		}
	}
	return fmt.Errorf("warm: still rejected after 10 attempts")
}

func retryAfterOf(resp *http.Response, fallback time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}

// scrapedStats is /v1/stats as the harness reads it: a single server's
// StatsResponse, plus — when the target is a router — the "router"
// section (absent on a plain msrp-serve, so the same scrape works for
// both).
type scrapedStats struct {
	server.StatsResponse
	Router *routerScrape `json:"router,omitempty"`
}

// routerScrape mirrors internal/router's RouterSection counters (by
// JSON field name — the load harness deliberately doesn't import the
// router package, the wire format is the contract).
type routerScrape struct {
	Batches         int64  `json:"batches"`
	Items           int64  `json:"items"`
	SubBatches      int64  `json:"subBatches"`
	Retries         int64  `json:"retries"`
	Failovers       int64  `json:"failovers"`
	FailoverWarms   int64  `json:"failoverWarms"`
	RouteErrors     int64  `json:"routeErrors"`
	Rejections      int64  `json:"rejections"`
	Handbacks       int64  `json:"handbacks"`
	ReplicasUp      int    `json:"replicasUp"`
	Epoch           uint64 `json:"epoch"`
	Joins           int64  `json:"joins"`
	Drains          int64  `json:"drains"`
	Removes         int64  `json:"removes"`
	MembershipWarms int64  `json:"membershipWarms"`
	StaleReplicas   int    `json:"staleReplicas"`
	Replicas        []struct {
		State       string `json:"state"`
		Member      bool   `json:"member"`
		SliceWarmed bool   `json:"sliceWarmed"`
		RoutedItems int64  `json:"routedItems"`
	} `json:"replicas"`
}

func (r *runner) scrapeStats(ctx context.Context) (*scrapedStats, bool) {
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, r.tgt.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	var st scrapedStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, false
	}
	return &st, true
}

// worker is one client slot's private state; merged at wave end so the
// hot path takes no locks.
type worker struct {
	stream *Stream
	sketch Sketch

	offeredBatches, offeredQueries int64
	completed, completedQueries    int64
	rejected                       int64
	clientErrors                   int64
	serverErrors                   int64
	transportErrors                int64
	retries                        int64
	retryWait                      time.Duration
	retryAfterSecs                 int64
	lastRetryAfterSecs             int64

	routeErrors    int64
	partialBatches int64

	pathsValidated   int64
	pathInvalid      int64
	pathInvalidFirst string
	pathBudgetErrors int64

	completedAfterDrain    int64
	serverErrorsAfterDrain int64
}

// waveClock shares the wave's deadline and drain instant with every
// worker.
type waveClock struct {
	deadline time.Time
	drainAt  atomic.Int64 // unixnano; 0 = not triggered
}

func (c *waveClock) afterDrain(t time.Time) bool {
	at := c.drainAt.Load()
	return at != 0 && t.UnixNano() >= at
}

func (r *runner) runWave(ctx context.Context, wave *Wave) (*WaveResult, error) {
	dur := time.Duration(wave.Duration)
	clock := &waveClock{deadline: time.Now().Add(dur)}
	wr := &WaveResult{
		Name:           wave.Name,
		Clients:        wave.Clients,
		Arrival:        arrivalOf(wave),
		Rate:           wave.Rate,
		DurationMillis: millisOf(dur),
	}

	// Mid-wave chaos: inject the fault at its trigger point, and for the
	// recoverable actions apply the recovery op after its window — all
	// inside the wave, so the wave's metrics span fault and recovery.
	var chaosTimer *time.Timer
	var chaosDone chan struct{}
	if wave.Chaos != nil {
		c := wave.Chaos
		wr.Chaos = &ChaosResult{Action: c.Action, Replica: c.Replica}
		chaosDone = make(chan struct{})
		waveStart := time.Now()
		at := c.At
		if at == 0 {
			at = 0.5
		}
		chaosTimer = time.AfterFunc(time.Duration(at*float64(dur)), func() {
			defer close(chaosDone)
			if r.tgt.ChaosFn == nil {
				wr.Chaos.Error = "no chaos hook on the target"
				r.opt.logf("wave %q: chaos %s replica %d skipped: no hook", wave.Name, c.Action, c.Replica)
				return
			}
			// stall/restart inject one op now and its recovery later;
			// kill/term are one-shot.
			injectOp := c.Action
			if c.Action == ChaosRestart {
				injectOp = ChaosKill
			}
			wr.Chaos.TriggeredAtMillis = millisOf(time.Since(waveStart))
			r.opt.logf("wave %q: chaos %s replica %d at +%.0fms", wave.Name, injectOp, c.Replica, wr.Chaos.TriggeredAtMillis)
			if err := r.tgt.ChaosFn(injectOp, c.Replica); err != nil {
				wr.Chaos.Error = err.Error()
				r.opt.logf("wave %q: chaos injection failed: %v", wave.Name, err)
				return
			}
			if rec := time.Duration(c.Recover); rec > 0 {
				time.Sleep(rec)
				recoverOp := ChaosRestart
				if c.Action == ChaosStall {
					recoverOp = "resume"
				}
				if err := r.tgt.ChaosFn(recoverOp, c.Replica); err != nil {
					wr.Chaos.Error = err.Error()
					r.opt.logf("wave %q: chaos recovery failed: %v", wave.Name, err)
					return
				}
				wr.Chaos.Recovered = true
				wr.Chaos.RecoveredAtMillis = millisOf(time.Since(waveStart))
				r.opt.logf("wave %q: chaos %s replica %d at +%.0fms", wave.Name, recoverOp, c.Replica, wr.Chaos.RecoveredAtMillis)
			}
		})
	}

	// Mid-wave drain: trigger at the midpoint, then watch /healthz for
	// the 503 flip from a poller that never counts into the traffic
	// metrics.
	var drainTimer *time.Timer
	var drainDone chan struct{}
	if wave.Drain {
		wr.Drain = &DrainResult{}
		drainDone = make(chan struct{})
		waveStart := time.Now()
		drainTimer = time.AfterFunc(dur/2, func() {
			defer close(drainDone)
			now := time.Now()
			clock.drainAt.Store(now.UnixNano())
			wr.Drain.TriggeredAtMillis = millisOf(now.Sub(waveStart))
			r.opt.logf("wave %q: triggering drain at +%.0fms", wave.Name, wr.Drain.TriggeredAtMillis)
			if err := r.tgt.drain(); err != nil {
				r.opt.logf("wave %q: drain trigger failed: %v", wave.Name, err)
				return
			}
			// Poll until the flip or the wave's end.
			for time.Now().Before(clock.deadline) {
				code, ok := r.getHealthz()
				if ok && code == http.StatusServiceUnavailable {
					wr.Drain.Healthz503Observed = true
					wr.Drain.Healthz503Millis = millisOf(time.Since(now))
					r.opt.logf("wave %q: /healthz flipped to 503 after %.0fms", wave.Name, wr.Drain.Healthz503Millis)
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	}

	workers := make([]*worker, wave.Clients)
	for i := range workers {
		workers[i] = &worker{stream: r.gen.Stream(r.plan.Seed, i)}
	}

	var overflowed atomic.Int64
	switch arrivalOf(wave) {
	case ArrivalClosed:
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *worker) {
				defer wg.Done()
				r.closedLoop(ctx, w, wave, clock)
			}(w)
		}
		wg.Wait()
	case ArrivalPoisson:
		// Open arrivals: a dispatcher paces exponential inter-arrival
		// gaps; each arrival grabs a free client slot or is shed
		// client-side (overflowed) — never queued, mirroring the
		// server's own never-queue admission stance.
		pool := make(chan *worker, len(workers))
		for _, w := range workers {
			pool <- w
		}
		pace := r.gen.Stream(r.plan.Seed, -1) // rng for inter-arrival gaps
		var wg sync.WaitGroup
		next := time.Now()
		for {
			now := time.Now()
			if !now.Before(clock.deadline) || ctx.Err() != nil {
				break
			}
			if now.Before(next) {
				time.Sleep(time.Until(next))
			}
			// Exponential gap at rate arrivals/sec.
			u := pace.rng.Float64()
			for u == 0 {
				u = pace.rng.Float64()
			}
			gap := time.Duration(-1e9 * math.Log(u) / wave.Rate)
			next = next.Add(gap)
			select {
			case w := <-pool:
				wg.Add(1)
				go func(w *worker) {
					defer wg.Done()
					r.doBatch(ctx, w, w.stream.Batch(), wave, clock)
					pool <- w
				}(w)
			default:
				overflowed.Add(1)
			}
		}
		wg.Wait() // in-flight arrivals complete past the deadline
	}
	if drainTimer != nil {
		if !drainTimer.Stop() {
			<-drainDone // fired: wait for the poller before reading wr.Drain
		}
	}
	if chaosTimer != nil {
		if !chaosTimer.Stop() {
			<-chaosDone // fired: wait for the recovery before reading wr.Chaos
		}
	}

	// Merge worker-private metrics.
	for _, w := range workers {
		wr.OfferedBatches += w.offeredBatches
		wr.OfferedQueries += w.offeredQueries
		wr.Completed += w.completed
		wr.CompletedQueries += w.completedQueries
		wr.Rejected += w.rejected
		wr.ClientErrors += w.clientErrors
		wr.ServerErrors += w.serverErrors
		wr.TransportErrors += w.transportErrors
		wr.Retries += w.retries
		wr.RetryWaitMillis += millisOf(w.retryWait)
		wr.RetryAfterMeanSecs += float64(w.retryAfterSecs)
		wr.RouteErrors += w.routeErrors
		wr.PartialBatches += w.partialBatches
		wr.PathsValidated += w.pathsValidated
		wr.PathInvalid += w.pathInvalid
		if wr.PathInvalidFirst == "" {
			wr.PathInvalidFirst = w.pathInvalidFirst
		}
		wr.PathBudgetErrors += w.pathBudgetErrors
		if wr.Drain != nil {
			wr.Drain.CompletedAfterDrain += w.completedAfterDrain
			wr.Drain.ServerErrorsAfterDrain += w.serverErrorsAfterDrain
		}
	}
	var merged Sketch
	for _, w := range workers {
		merged.Merge(&w.sketch)
	}
	wr.Latency = merged.Summary()
	wr.Overflowed = overflowed.Load()
	if wr.Rejected > 0 {
		wr.RetryAfterMeanSecs /= float64(wr.Rejected)
	} else {
		wr.RetryAfterMeanSecs = 0
	}
	secs := dur.Seconds()
	wr.ThroughputRPS = float64(wr.Completed) / secs
	wr.QueryRPS = float64(wr.CompletedQueries) / secs
	if wr.OfferedBatches > 0 {
		wr.RejectionRate = float64(wr.Rejected) / float64(wr.OfferedBatches)
	}
	return wr, ctx.Err()
}

// closedLoop drives one closed-loop client until the wave deadline:
// send, wait, repeat — honoring Retry-After on 429 (and retrying the
// same batch) unless the wave opts out.
func (r *runner) closedLoop(ctx context.Context, w *worker, wave *Wave, clock *waveClock) {
	obey := wave.Obey()
	for time.Now().Before(clock.deadline) && ctx.Err() == nil {
		req := w.stream.Batch()
		for {
			outcome := r.doBatch(ctx, w, req, wave, clock)
			if outcome != outcomeRejected || !obey {
				break
			}
			// Honor Retry-After with full jitter, then retry the same
			// batch; give up on the retry if the backoff crosses the wave
			// deadline.
			backoff := fullJitter(w.stream.rng, time.Duration(w.lastRetryAfterSecs)*time.Second)
			remain := time.Until(clock.deadline)
			if backoff > remain {
				w.retryWait += remain
				time.Sleep(remain)
				return
			}
			w.retryWait += backoff
			time.Sleep(backoff)
			w.retries++
		}
	}
}

// fullJitter spreads a Retry-After hint over U(0, hint). A closed-loop
// pool rejected en masse advertises every client the same hint; clients
// that sleep exactly that long all come back in the same instant — a
// synchronized stampede that gets re-rejected wholesale and repeats.
// The hint is the server's estimate of how long it needs, not a
// rendezvous time: drawing uniformly under it decorrelates the pool
// while keeping the mean wait at half the hint.
func fullJitter(rng *xrand.RNG, hint time.Duration) time.Duration {
	if hint <= 0 {
		return 0
	}
	return time.Duration(rng.Float64() * float64(hint))
}

type outcome int

const (
	outcomeCompleted outcome = iota
	outcomeRejected
	outcomeClientError
	outcomeServerError
	outcomeTransportError
)

// doBatch sends one batch and records its fate on the worker.
func (r *runner) doBatch(ctx context.Context, w *worker, req server.QueryRequest, wave *Wave, clock *waveClock) outcome {
	body, err := json.Marshal(req)
	if err != nil {
		panic("load: marshal query batch: " + err.Error()) // plan-shaped data; cannot fail
	}
	w.offeredBatches++
	w.offeredQueries += int64(len(req.Queries))

	qctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(qctx, http.MethodPost, r.tgt.BaseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		w.transportErrors++
		return outcomeTransportError
	}
	httpReq.Header.Set("Content-Type", "application/json")
	start := time.Now()
	resp, err := r.client.Do(httpReq)
	if err != nil {
		w.transportErrors++
		// After a drain closes the listener every send fails instantly;
		// don't spin the CPU on connection-refused.
		time.Sleep(20 * time.Millisecond)
		return outcomeTransportError
	}
	// The answers are read back out when the harness needs them:
	// router plans for per-item routeErrors (the router's failure
	// currency — a single server never sets them), and any batch that
	// requested paths, so each served path can be machine-validated
	// against the regenerated graph. Otherwise the decode is skipped
	// and the body discarded unread.
	wantPaths := false
	for i := range req.Queries {
		if req.Queries[i].Paths {
			wantPaths = true
			break
		}
	}
	var respBody []byte
	if (r.plan.Router != nil || wantPaths) && resp.StatusCode >= 200 && resp.StatusCode < 300 {
		respBody, _ = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	end := time.Now()

	switch {
	case resp.StatusCode >= 200 && resp.StatusCode < 300:
		w.completed++
		w.completedQueries += int64(len(req.Queries))
		w.sketch.Add(lat)
		if clock.afterDrain(end) {
			w.completedAfterDrain++
		}
		if respBody != nil {
			var qr server.QueryResponse
			if json.Unmarshal(respBody, &qr) == nil {
				failed := int64(0)
				for _, a := range qr.Answers {
					if a.RouteError != "" {
						failed++
					}
				}
				if failed > 0 {
					w.routeErrors += failed
					w.partialBatches++
					w.completedQueries -= failed
				}
				if wantPaths {
					r.validatePaths(w, req.Queries, qr.Answers)
				}
			}
		}
		return outcomeCompleted
	case resp.StatusCode == http.StatusTooManyRequests:
		w.rejected++
		secs := int64(retryAfterOf(resp, time.Second) / time.Second)
		w.retryAfterSecs += secs
		w.lastRetryAfterSecs = secs
		return outcomeRejected
	case resp.StatusCode >= 500:
		w.serverErrors++
		if clock.afterDrain(end) {
			w.serverErrorsAfterDrain++
		}
		return outcomeServerError
	default:
		w.clientErrors++
		return outcomeClientError
	}
}

// validatePaths machine-checks every served path in a batch's answers
// against the regenerated graph and tallies the verdicts on the worker.
// Answers that carry no path by design — noPath (bridge), per-item
// error, routeError, or a pathError from the response's path-vertex
// budget — are not validation failures.
func (r *runner) validatePaths(w *worker, queries []server.QueryItem, answers []server.AnswerItem) {
	for i := range queries {
		q := &queries[i]
		if !q.Paths || i >= len(answers) {
			continue
		}
		a := &answers[i]
		switch {
		case a.RouteError != "" || a.Error != "" || a.NoPath:
		case a.PathError != "":
			w.pathBudgetErrors++
		default:
			if err := validatePath(r.graph, q, a); err != nil {
				w.pathInvalid++
				if w.pathInvalidFirst == "" {
					w.pathInvalidFirst = err.Error()
				}
			} else {
				w.pathsValidated++
			}
		}
	}
}

// validatePath checks one served path certificate: a real walk in G−e
// from source to target of exactly Length edges, never crossing the
// avoided edge.
func validatePath(g *graph.Graph, q *server.QueryItem, a *server.AnswerItem) error {
	p := a.Path
	if len(p) == 0 {
		return fmt.Errorf("source %d target %d: answer has no path", q.Source, q.Target)
	}
	if int32(len(p)-1) != a.Length {
		return fmt.Errorf("source %d target %d: path has %d edges, answer length %d", q.Source, q.Target, len(p)-1, a.Length)
	}
	if int(p[0]) != q.Source || int(p[len(p)-1]) != q.Target {
		return fmt.Errorf("path runs %d→%d, want %d→%d", p[0], p[len(p)-1], q.Source, q.Target)
	}
	for i := 0; i+1 < len(p); i++ {
		u, v := int(p[i]), int(p[i+1])
		if !g.HasEdge(u, v) {
			return fmt.Errorf("source %d target %d: step %d–%d is not an edge", q.Source, q.Target, u, v)
		}
		if (u == q.U && v == q.V) || (u == q.V && v == q.U) {
			return fmt.Errorf("source %d target %d: path crosses the avoided edge %d–%d", q.Source, q.Target, q.U, q.V)
		}
	}
	return nil
}

func (r *runner) getHealthz() (int, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.tgt.BaseURL+"/healthz", nil)
	if err != nil {
		return 0, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, true
}

// peakRSSBytes reads the process's VmHWM (peak resident set) from
// /proc; 0 when unavailable (non-linux, process gone, no pid).
func peakRSSBytes(pid int) int64 {
	if pid <= 0 {
		return 0
	}
	b, err := os.ReadFile(fmt.Sprintf("/proc/%d/status", pid))
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
