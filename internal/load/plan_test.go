package load

import (
	"strings"
	"testing"
	"time"
)

// validPlanJSON is a minimal plan every mutation below starts from.
const validPlanJSON = `{
  "name": "t",
  "graph": {"family": "chords", "n": 60, "chords": 6, "seed": 3},
  "sources": 4,
  "waves": [
    {"name": "w1", "clients": 1, "duration": "50ms"},
    {"name": "w2", "clients": 2, "arrival": "poisson", "rate": 100, "duration": "50ms"}
  ]
}`

func TestParsePlanValid(t *testing.T) {
	p, err := ParsePlan(strings.NewReader(validPlanJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "t" || len(p.Waves) != 2 {
		t.Fatalf("plan misparsed: %+v", p)
	}
	if got := time.Duration(p.Waves[0].Duration); got != 50*time.Millisecond {
		t.Fatalf("duration = %v, want 50ms", got)
	}
	if !p.Waves[0].Obey() {
		t.Fatal("ObeyRetryAfter must default to true")
	}
}

func TestParsePlanRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{
			name: "unknown top-level field",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,"bogus":1,
			        "waves":[{"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "unknown field",
		},
		{
			name: "unknown wave field",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"name":"w","clients":1,"duration":"10ms","turbo":true}]}`,
			want: "unknown field",
		},
		{
			name: "unknown graph field",
			json: `{"name":"t","graph":{"family":"cycle","n":10,"density":2},"sources":2,
			        "waves":[{"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "unknown field",
		},
		{
			name: "zero-client wave",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"name":"w","clients":0,"duration":"10ms"}]}`,
			want: "clients must be positive",
		},
		{
			name: "unnamed stage",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"clients":1,"duration":"10ms"}]}`,
			want: "unnamed",
		},
		{
			name: "duplicate stage name",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"name":"w","clients":1,"duration":"10ms"},
			                 {"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "duplicate wave name",
		},
		{
			name: "unnamed plan",
			json: `{"graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "needs a name",
		},
		{
			name: "no waves",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,"waves":[]}`,
			want: "at least one wave",
		},
		{
			name: "unknown family",
			json: `{"name":"t","graph":{"family":"hypercube","n":10},"sources":2,
			        "waves":[{"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "unknown graph family",
		},
		{
			name: "poisson without rate",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"name":"w","clients":1,"arrival":"poisson","duration":"10ms"}]}`,
			want: "positive rate",
		},
		{
			name: "rate on closed wave",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"name":"w","clients":1,"rate":5,"duration":"10ms"}]}`,
			want: "only meaningful",
		},
		{
			name: "unknown arrival",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"name":"w","clients":1,"arrival":"burst","duration":"10ms"}]}`,
			want: "unknown arrival",
		},
		{
			name: "zero duration",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"name":"w","clients":1}]}`,
			want: "duration must be positive",
		},
		{
			name: "drain before the last wave",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "waves":[{"name":"w1","clients":1,"duration":"10ms","drain":true},
			                 {"name":"w2","clients":1,"duration":"10ms"}]}`,
			want: "only the last wave may drain",
		},
		{
			name: "more sources than vertices",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":11,
			        "waves":[{"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "exceeds",
		},
		{
			name: "zero sources",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":0,
			        "waves":[{"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "sources must be positive",
		},
		{
			name: "bad batch mix size",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "batchMix":[{"size":0,"weight":1}],
			        "waves":[{"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "size must be positive",
		},
		{
			name: "paths without trackPaths",
			json: `{"name":"t","graph":{"family":"cycle","n":10},"sources":2,
			        "batchMix":[{"size":1,"weight":1,"paths":true}],
			        "waves":[{"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "trackPaths",
		},
		{
			name: "grid without dims",
			json: `{"name":"t","graph":{"family":"grid"},"sources":2,
			        "waves":[{"name":"w","clients":1,"duration":"10ms"}]}`,
			want: "rows and cols",
		},
		{
			name: "trailing data",
			json: validPlanJSON + `{"second": "doc"}`,
			want: "trailing data",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePlan(strings.NewReader(tc.json))
			if err == nil {
				t.Fatalf("plan accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestDurationRoundTrip(t *testing.T) {
	var d Duration
	if err := d.UnmarshalJSON([]byte(`"1.5s"`)); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 1500*time.Millisecond {
		t.Fatalf("parsed %v, want 1.5s", time.Duration(d))
	}
	if err := d.UnmarshalJSON([]byte(`250`)); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 250*time.Millisecond {
		t.Fatalf("numeric duration = %v, want 250ms (milliseconds)", time.Duration(d))
	}
	b, err := Duration(2 * time.Second).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"2s"` {
		t.Fatalf("marshal = %s, want \"2s\"", b)
	}
}
