package load

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"msrp/internal/bench"
)

func mkResult(waves ...WaveResult) *Result {
	return &Result{Plan: &Plan{Name: "t"}, Waves: waves}
}

func wave(name string, p50, p95, p99, rej float64) WaveResult {
	return WaveResult{
		Name:          name,
		Latency:       bench.LatencyMillis{P50: p50, P95: p95, P99: p99},
		RejectionRate: rej,
	}
}

func TestCompareInsideBand(t *testing.T) {
	base := mkResult(wave("a", 10, 50, 80, 0), wave("b", 20, 90, 120, 0.4))
	fresh := mkResult(wave("a", 25, 110, 150, 0.05), wave("b", 55, 200, 300, 0.55))
	if v := Compare(fresh, base, DefaultTolerance()); len(v) != 0 {
		t.Fatalf("expected no violations, got %v", v)
	}
}

func TestCompareCatchesRegressions(t *testing.T) {
	base := mkResult(wave("a", 10, 50, 80, 0))
	fresh := mkResult(wave("a", 10, 50, 80*3+101, 0.5))
	v := Compare(fresh, base, DefaultTolerance())
	if len(v) != 2 {
		t.Fatalf("expected p99 + rejection violations, got %v", v)
	}
	if !strings.Contains(v[0], "p99") || !strings.Contains(v[1], "rejection rate") {
		t.Fatalf("unexpected violations %v", v)
	}
}

func TestCompareMissingWaveAndNewWave(t *testing.T) {
	base := mkResult(wave("a", 10, 50, 80, 0), wave("gone", 10, 50, 80, 0))
	fresh := mkResult(wave("a", 10, 50, 80, 0), wave("extra", 1e6, 1e6, 1e6, 1))
	v := Compare(fresh, base, DefaultTolerance())
	if len(v) != 1 || !strings.Contains(v[0], `"gone"`) {
		t.Fatalf("expected only the missing-wave violation, got %v", v)
	}
}

func TestCompareNewServerErrors(t *testing.T) {
	base := mkResult(wave("a", 10, 50, 80, 0))
	fresh := mkResult(wave("a", 10, 50, 80, 0))
	fresh.Waves[0].ServerErrors = 3
	v := Compare(fresh, base, DefaultTolerance())
	if len(v) != 1 || !strings.Contains(v[0], "server errors") {
		t.Fatalf("expected the server-error violation, got %v", v)
	}
}

func TestCompareWarmMillisBand(t *testing.T) {
	base := mkResult(wave("a", 10, 50, 80, 0))
	base.WarmMillis = 1000
	fresh := mkResult(wave("a", 10, 50, 80, 0))

	fresh.WarmMillis = 3400 // inside 1000×3 + 500
	if v := Compare(fresh, base, DefaultTolerance()); len(v) != 0 {
		t.Fatalf("expected no violations inside the warm band, got %v", v)
	}
	fresh.WarmMillis = 3501
	v := Compare(fresh, base, DefaultTolerance())
	if len(v) != 1 || !strings.Contains(v[0], "warm-up") {
		t.Fatalf("expected the warm-up violation, got %v", v)
	}

	// A baseline without a warm-up phase (or a disabled factor) never
	// flags, whatever the fresh run took.
	base.WarmMillis = 0
	if v := Compare(fresh, base, DefaultTolerance()); len(v) != 0 {
		t.Fatalf("warm-less baseline flagged: %v", v)
	}
	base.WarmMillis = 1000
	tol := DefaultTolerance()
	tol.WarmFactor = 0
	if v := Compare(fresh, base, tol); len(v) != 0 {
		t.Fatalf("disabled warm factor flagged: %v", v)
	}
}

func TestLoadBaselineRoundTrip(t *testing.T) {
	res := mkResult(wave("a", 10, 50, 80, 0.1))
	env := bench.NewEnvelope("E16", "t", res)
	path := filepath.Join(t.TempDir(), "BENCH_T.json")
	if err := env.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Waves) != 1 || got.Waves[0].Name != "a" || got.Waves[0].Latency.P99 != 80 {
		t.Fatalf("round trip mangled the result: %+v", got)
	}
	if _, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.json")); !os.IsNotExist(err) {
		t.Fatalf("expected not-exist error, got %v", err)
	}
}
