package load

import (
	"net/http/httptest"
	"os"
	"time"

	"msrp"
	"msrp/internal/server"
)

// InProcess is a plan's server stack booted inside this process over an
// httptest listener — the CI path: the full HTTP serving surface
// (admission control, drain flag, stats) without spawning a binary.
type InProcess struct {
	Oracle  *msrp.Oracle
	Handler *server.Server
	HTTP    *httptest.Server
}

// NewInProcess builds the plan's graph, oracle (same auto-source rule
// as msrp-serve), and serving front-end, and starts a real listener.
// The returned Target drains by flipping the handler's drain flag —
// the in-process analogue of msrp-serve's SIGTERM lameduck — and
// samples this process's RSS.
func NewInProcess(plan *Plan) (*InProcess, *Target, error) {
	ig, err := BuildGraph(plan.Graph)
	if err != nil {
		return nil, nil, err
	}
	g := msrp.WrapGraph(ig)
	opts := msrp.DefaultOptions()
	opts.Seed = 1
	opts.TrackPaths = plan.TrackPaths
	if s := plan.Server; s != nil {
		opts.MaxCachedSources = s.MaxCached
		opts.MaxProvenanceBytes = s.MaxProvenanceBytes
		opts.Parallelism = s.Parallelism
	}
	oracle, err := msrp.NewOracle(g, AutoSources(g.NumVertices(), plan.Sources), opts)
	if err != nil {
		return nil, nil, err
	}
	cfg := server.Config{}
	if s := plan.Server; s != nil {
		cfg.MaxInFlight = s.MaxInFlight
	}
	handler := server.New(oracle, cfg)
	ts := httptest.NewServer(handler)
	ip := &InProcess{Oracle: oracle, Handler: handler, HTTP: ts}
	tgt := &Target{
		BaseURL: ts.URL,
		Pid:     os.Getpid(),
		DrainFn: func() error { handler.SetDraining(true); return nil },
	}
	return ip, tgt, nil
}

// Close shuts the listener down, allowing in-flight requests a short
// window first (httptest.Server.Close waits for outstanding requests).
func (ip *InProcess) Close() {
	done := make(chan struct{})
	go func() { ip.HTTP.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
	}
}
