package load

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"msrp"
)

// microPlan is the shape CI runs: two Poisson waves of rising arrival
// rate over a small warm graph. Open arrivals make the offered load a
// plan knob rather than a function of host speed, so the monotonicity
// assertion below holds on any machine (a closed loop on a saturated
// single-CPU host offers the same load at any client count).
func microPlan() *Plan {
	return &Plan{
		Name:    "micro-test",
		Graph:   GraphSpec{Family: "chords", N: 60, Chords: 8, Seed: 3},
		Sources: 4,
		Seed:    11,
		Warm:    true,
		BatchMix: []BatchMix{
			{Size: 1, Weight: 3},
			{Size: 8, Weight: 1},
		},
		Server: &ServerSpec{MaxInFlight: 8, MaxCached: 4, Parallelism: 2},
		Waves: []Wave{
			{Name: "trickle", Clients: 2, Arrival: ArrivalPoisson, Rate: 150, Duration: Duration(250 * time.Millisecond)},
			{Name: "stream", Clients: 8, Arrival: ArrivalPoisson, Rate: 600, Duration: Duration(250 * time.Millisecond)},
		},
	}
}

// TestQueryGenProducesValidQueries: every synthesized query must
// resolve against a real oracle without an item error — the avoided
// edge really lies on the server's canonical path, as the deterministic
// BFS argument promises.
func TestQueryGenProducesValidQueries(t *testing.T) {
	plan := microPlan()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	gen, ig, err := NewQueryGen(plan)
	if err != nil {
		t.Fatal(err)
	}
	g := msrp.WrapGraph(ig)
	opts := msrp.DefaultOptions()
	opts.Parallelism = 2
	oracle, err := msrp.NewOracle(g, gen.Sources(), opts)
	if err != nil {
		t.Fatal(err)
	}
	stream := gen.Stream(plan.Seed, 0)
	sizes := make(map[int]int)
	for b := 0; b < 50; b++ {
		req := stream.Batch()
		sizes[len(req.Queries)]++
		queries := make([]msrp.Query, len(req.Queries))
		for i, q := range req.Queries {
			queries[i] = msrp.Query{Source: q.Source, Target: q.Target, U: q.U, V: q.V}
		}
		for i, a := range oracle.QueryBatch(queries) {
			if a.Err != nil {
				t.Fatalf("batch %d query %d (%+v): %v", b, i, queries[i], a.Err)
			}
		}
	}
	if len(sizes) != 2 || sizes[1] == 0 || sizes[8] == 0 {
		t.Fatalf("batch mix not exercised: sizes %v", sizes)
	}
}

// TestRunMicroPlanEndToEnd drives the committed micro-plan shape
// against an in-process server: the recorded result must be well-formed
// JSON, monotonic in offered load across the rising waves, and free of
// 5xx.
func TestRunMicroPlanEndToEnd(t *testing.T) {
	plan := microPlan()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	ip, tgt, err := NewInProcess(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	res, err := Run(context.Background(), plan, tgt, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}

	// Well-formed machine-readable record: survives a JSON round trip.
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("recorded JSON does not round-trip: %v", err)
	}
	if len(back.Waves) != len(plan.Waves) {
		t.Fatalf("recorded %d waves, want %d", len(back.Waves), len(plan.Waves))
	}

	for i, w := range res.Waves {
		if w.Name != plan.Waves[i].Name {
			t.Fatalf("wave %d name = %q, want %q", i, w.Name, plan.Waves[i].Name)
		}
		if w.ServerErrors != 0 {
			t.Fatalf("wave %q observed %d server errors", w.Name, w.ServerErrors)
		}
		if w.TransportErrors != 0 {
			t.Fatalf("wave %q observed %d transport errors", w.Name, w.TransportErrors)
		}
		if w.Completed == 0 {
			t.Fatalf("wave %q completed nothing", w.Name)
		}
		if w.Latency.Count != w.Completed {
			t.Fatalf("wave %q latency count %d != completed %d", w.Name, w.Latency.Count, w.Completed)
		}
		if !(w.Latency.P50 <= w.Latency.P95 && w.Latency.P95 <= w.Latency.P99 && w.Latency.P99 <= w.Latency.Max) {
			t.Fatalf("wave %q percentiles not monotone: %+v", w.Name, w.Latency)
		}
		if w.Stats == nil || w.Stats.Batches < w.Completed {
			t.Fatalf("wave %q stats delta implausible: %+v (completed %d)", w.Name, w.Stats, w.Completed)
		}
	}
	// Monotonic in offered load: the second wave's arrival rate is 4×
	// the first's, and open arrivals offer it regardless of host speed.
	if res.Waves[1].OfferedBatches+res.Waves[1].Overflowed <=
		res.Waves[0].OfferedBatches+res.Waves[0].Overflowed {
		t.Fatalf("offered load not monotonic: %d then %d",
			res.Waves[0].OfferedBatches, res.Waves[1].OfferedBatches)
	}
	if res.ServerErrors != 0 {
		t.Fatalf("run observed %d server errors", res.ServerErrors)
	}
	if res.WarmMillis <= 0 {
		t.Fatal("warm-up phase not recorded")
	}
	if res.Server == nil || res.Server.WarmStageBuildMillis <= 0 {
		t.Fatalf("server gauges not scraped: %+v", res.Server)
	}
	if res.PeakRSSBytes <= 0 {
		t.Fatalf("peak RSS not sampled: %d", res.PeakRSSBytes)
	}
}

// TestRunSaturationRejectsGracefully: a single admission slot under 8
// impatient closed-loop clients must produce 429s (rejection rate > 0)
// while every admitted query still succeeds — the graceful-degradation
// property the committed saturation plan asserts at scale. MaxCached 1
// under σ = 4 makes every batch a cache-thrashing rebuild, and the
// graph is sized so a rebuild holds the admission slot well past the
// scheduler's preemption tick: even on one CPU, competing handlers get
// scheduled mid-hold and observe the full gate. (A sub-millisecond
// service time convoys instead — each handler's admission check runs
// right after the previous release — and never rejects.)
func TestRunSaturationRejectsGracefully(t *testing.T) {
	impatient := false
	plan := &Plan{
		Name:    "saturation-test",
		Graph:   GraphSpec{Family: "chords", N: 200, Chords: 8, Seed: 3},
		Sources: 4,
		Seed:    7,
		BatchMix: []BatchMix{
			{Size: 2, Weight: 1},
		},
		Server: &ServerSpec{MaxInFlight: 1, MaxCached: 1, Parallelism: 2},
		Waves: []Wave{
			{Name: "flood", Clients: 8, Duration: Duration(600 * time.Millisecond), ObeyRetryAfter: &impatient},
		},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	ip, tgt, err := NewInProcess(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	res, err := Run(context.Background(), plan, tgt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waves[0]
	if w.Rejected == 0 {
		t.Fatalf("8 clients on 1 slot produced no 429s: %+v", w)
	}
	if w.ServerErrors != 0 {
		t.Fatalf("saturation produced %d server errors", w.ServerErrors)
	}
	if w.Completed == 0 {
		t.Fatal("saturation admitted nothing")
	}
	if w.Stats == nil || w.Stats.Rejections != w.Rejected {
		t.Fatalf("server-side rejections %+v disagree with client-side %d", w.Stats, w.Rejected)
	}
	if w.RetryAfterMeanSecs < 1 {
		t.Fatalf("Retry-After mean = %.2fs, want >= 1s (the derive floor)", w.RetryAfterMeanSecs)
	}
}

// TestRunDrainWave: a mid-wave drain must flip /healthz to 503 while
// queries keep completing and no 5xx appears.
func TestRunDrainWave(t *testing.T) {
	if testing.Short() {
		t.Skip("drain smoke skipped in -short")
	}
	plan := &Plan{
		Name:    "drain-test",
		Graph:   GraphSpec{Family: "chords", N: 60, Chords: 8, Seed: 3},
		Sources: 4,
		Seed:    5,
		Warm:    true,
		Server:  &ServerSpec{MaxInFlight: 8, MaxCached: 4, Parallelism: 2},
		Waves: []Wave{
			{Name: "drain", Clients: 4, Duration: Duration(600 * time.Millisecond), Drain: true},
		},
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	ip, tgt, err := NewInProcess(plan)
	if err != nil {
		t.Fatal(err)
	}
	defer ip.Close()

	res, err := Run(context.Background(), plan, tgt, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waves[0]
	if w.Drain == nil {
		t.Fatal("drain wave recorded no drain result")
	}
	if !w.Drain.Healthz503Observed {
		t.Fatalf("healthz never flipped to 503: %+v", w.Drain)
	}
	if w.Drain.ServerErrorsAfterDrain != 0 || w.ServerErrors != 0 {
		t.Fatalf("drain produced server errors: %+v", w.Drain)
	}
	if w.Drain.CompletedAfterDrain == 0 {
		t.Fatal("no queries completed during the drain window")
	}
	if !ip.Handler.Draining() {
		t.Fatal("drain hook did not reach the handler")
	}
}
