package load

import (
	"math"
	"time"

	"msrp/internal/bench"
)

// Sketch is a streaming latency-percentile sketch: a geometric
// histogram with ~8% relative bucket width, constant memory, O(1)
// insert, and mergeable across clients — so a wave of thousands of
// concurrent clients records percentiles without retaining a sample
// per request. Not safe for concurrent use; give each client its own
// and Merge at wave end.
type Sketch struct {
	counts [sketchBuckets]int64
	count  int64
	sum    time.Duration
	max    time.Duration
}

const (
	// sketchBase is the resolution floor: everything at or below 1µs
	// lands in bucket 0.
	sketchBase = time.Microsecond
	// sketchGamma is the bucket growth factor; quantiles are accurate
	// to ±(gamma-1)/2 relative error.
	sketchGamma = 1.08
	// sketchBuckets covers 1µs·1.08^254 ≈ 3.2e8 µs ≈ 5 minutes; the
	// last bucket absorbs anything slower.
	sketchBuckets = 256
)

var logGamma = math.Log(sketchGamma)

// bucketOf maps a latency to its bucket index.
func bucketOf(d time.Duration) int {
	if d <= sketchBase {
		return 0
	}
	i := int(math.Log(float64(d)/float64(sketchBase))/logGamma) + 1
	if i >= sketchBuckets {
		return sketchBuckets - 1
	}
	return i
}

// valueOf returns the representative latency of a bucket (its
// geometric midpoint).
func valueOf(i int) time.Duration {
	if i == 0 {
		return sketchBase
	}
	return time.Duration(float64(sketchBase) * math.Pow(sketchGamma, float64(i)-0.5))
}

// Add records one latency.
func (s *Sketch) Add(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.counts[bucketOf(d)]++
	s.count++
	s.sum += d
	if d > s.max {
		s.max = d
	}
}

// Merge folds other into s.
func (s *Sketch) Merge(other *Sketch) {
	for i, c := range other.counts {
		s.counts[i] += c
	}
	s.count += other.count
	s.sum += other.sum
	if other.max > s.max {
		s.max = other.max
	}
}

// Count returns how many latencies were recorded.
func (s *Sketch) Count() int64 { return s.count }

// Quantile returns the latency at quantile q in [0, 1], or 0 when
// empty. The exact observed maximum is returned for q == 1.
func (s *Sketch) Quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	if q >= 1 {
		return s.max
	}
	if q < 0 {
		q = 0
	}
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.counts {
		seen += c
		if seen >= rank {
			v := valueOf(i)
			if v > s.max {
				return s.max
			}
			return v
		}
	}
	return s.max
}

// Summary renders the sketch as the shared wire shape.
func (s *Sketch) Summary() bench.LatencyMillis {
	mean := 0.0
	if s.count > 0 {
		mean = millisOf(s.sum) / float64(s.count)
	}
	return bench.LatencyMillis{
		Count: s.count,
		Mean:  mean,
		P50:   millisOf(s.Quantile(0.50)),
		P95:   millisOf(s.Quantile(0.95)),
		P99:   millisOf(s.Quantile(0.99)),
		Max:   millisOf(s.max),
	}
}

func millisOf(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}
