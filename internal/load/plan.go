// Package load is the scenario harness behind cmd/msrp-load: it
// executes declarative, validated load plans against a live msrp-serve
// endpoint (or an in-process internal/server.Server for CI) and records
// machine-readable results that seed the repository's tracked perf
// trajectory (BENCH_*.json via internal/bench.Envelope).
//
// A plan names a graph workload (family, size, seed — regenerated
// deterministically on the client so valid canonical-path queries can
// be synthesized without asking the server), a batch-size mix, and a
// sequence of staged waves, each a closed-loop client pool or an open
// Poisson arrival process. One wave may additionally trigger a
// mid-wave graceful drain (SIGTERM on a spawned server, or a callback
// in process) to measure that /healthz flips to 503 while in-flight
// queries complete. The shape follows the testground notion of a
// validated composition: every knob is explicit, unknown fields are
// rejected, and a plan that validates runs the same way everywhere.
package load

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Duration is a time.Duration that marshals as a Go duration string
// ("250ms", "3s") in plan JSON.
type Duration time.Duration

// UnmarshalJSON accepts a duration string or a bare number of
// milliseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		parsed, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("load: bad duration %q: %w", s, err)
		}
		*d = Duration(parsed)
		return nil
	}
	var ms float64
	if err := json.Unmarshal(b, &ms); err != nil {
		return fmt.Errorf("load: duration must be a string like \"250ms\" or a number of milliseconds, got %s", b)
	}
	*d = Duration(time.Duration(ms * float64(time.Millisecond)))
	return nil
}

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// GraphSpec names the workload graph. The harness regenerates it
// deterministically (same generator code and seed as msrp-gen), both to
// synthesize queries whose avoided edge provably lies on the server's
// canonical path — the BFS trees are deterministic, so client and
// server agree — and, in spawn mode, to write the graph file the
// spawned msrp-serve loads.
type GraphSpec struct {
	// Family is one of random|grid|cycle|path|chords|pa|barbell
	// (msrp-gen's families).
	Family string `json:"family"`
	// N is the vertex count (families other than grid).
	N int `json:"n,omitempty"`
	// M is the edge count (random family; 0 = 4n).
	M int `json:"m,omitempty"`
	// Rows and Cols size the grid family.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Chords counts chords (chords family; 0 = 10).
	Chords int `json:"chords,omitempty"`
	// K is edges per arrival (pa family; 0 = 3).
	K int `json:"k,omitempty"`
	// Bridge is the bridge length (barbell family; 0 = 3).
	Bridge int `json:"bridge,omitempty"`
	// Seed feeds the generator RNG.
	Seed uint64 `json:"seed,omitempty"`
}

// ServerSpec tunes the msrp-serve instance cmd/msrp-load spawns (and
// validates expectations against when targeting a live endpoint).
type ServerSpec struct {
	// MaxInFlight is the /v1/query admission budget (0 = server
	// default, negative = unbounded).
	MaxInFlight int `json:"maxInFlight,omitempty"`
	// MaxCached bounds the oracle's per-source LRU (0 = unlimited).
	MaxCached int `json:"maxCached,omitempty"`
	// MaxProvenanceBytes is the byte budget for retained path
	// provenance (0 = unlimited): over-budget sources keep serving
	// lengths and rebuild provenance on demand when a path query
	// lands on them.
	MaxProvenanceBytes int64 `json:"maxProvenanceBytes,omitempty"`
	// Parallelism is the engine worker count (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// Lameduck is how long the spawned server keeps its listener open
	// (with /healthz at 503) after SIGTERM before closing it.
	Lameduck Duration `json:"lameduck,omitempty"`
	// Grace is the spawned server's in-flight drain window after the
	// lameduck ends.
	Grace Duration `json:"grace,omitempty"`
}

// RouterSpec asks cmd/msrp-load to put the replica-sharded routing tier
// (internal/router) in front of the fleet: it spawns Replicas msrp-serve
// processes and an in-process router, and the plan's waves run against
// the router — same wire surface, so the harness is otherwise unchanged.
type RouterSpec struct {
	// Replicas is the fleet size (must be ≥ 2 — a one-replica "fleet"
	// measures nothing the single-server path doesn't).
	Replicas int `json:"replicas"`
	// ItemDeadline is each query item's budget across all retries and
	// failovers (0 = router default).
	ItemDeadline Duration `json:"itemDeadline,omitempty"`
	// BatchDeadline bounds the whole batch (0 = router default).
	BatchDeadline Duration `json:"batchDeadline,omitempty"`
	// MaxAttempts bounds HTTP attempts per item (0 = router default).
	MaxAttempts int `json:"maxAttempts,omitempty"`
	// ProbeInterval is the /healthz probe period (0 = router default).
	ProbeInterval Duration `json:"probeInterval,omitempty"`
	// FailAfter / UpAfter tune the health state machine (0 = defaults).
	FailAfter int `json:"failAfter,omitempty"`
	UpAfter   int `json:"upAfter,omitempty"`
}

// Chaos actions.
const (
	// ChaosKill crashes the replica (SIGKILL) and leaves it dead: the
	// failover steady state.
	ChaosKill = "kill"
	// ChaosTerm terminates it gracefully (SIGTERM) and leaves it gone:
	// drain-then-failover.
	ChaosTerm = "term"
	// ChaosStall freezes it (SIGSTOP) and resumes it (SIGCONT) after
	// Recover: the wedged-but-probe-green failure only deadlines catch.
	ChaosStall = "stall"
	// ChaosRestart crashes it (SIGKILL) and respawns it on the same port
	// after Recover: crash, failover, rejoin, hand-back — the full E17
	// cycle.
	ChaosRestart = "restart"
	// ChaosAddReplica spawns a brand-new replica mid-wave and joins it to
	// the ring warm-before-serve: the membership grow path (the replica
	// index field is ignored — the fleet allocates the next slot).
	ChaosAddReplica = "addReplica"
	// ChaosDrainReplica drains the replica out of the ring mid-wave
	// (successors warm its slice first, then the epoch flips, then the
	// process terminates and the slot is removed): the membership shrink
	// path.
	ChaosDrainReplica = "drainReplica"
)

var knownChaosActions = map[string]bool{
	ChaosKill: true, ChaosTerm: true, ChaosStall: true, ChaosRestart: true,
	ChaosAddReplica: true, ChaosDrainReplica: true,
}

// ChaosSpec injects one replica fault or membership change mid-wave.
// Requires the plan to run a router fleet (Plan.Router) under a
// harness that controls the replica processes.
type ChaosSpec struct {
	// Action is one of kill|term|stall|restart|addReplica|drainReplica.
	Action string `json:"action"`
	// Replica is the fleet index to hit.
	Replica int `json:"replica"`
	// At is the trigger point as a fraction of the wave duration
	// (0 = 0.5).
	At float64 `json:"at,omitempty"`
	// Recover is the fault duration for the recoverable actions: a
	// stalled replica is resumed, a restarted one respawned, this long
	// after the trigger. Required for stall/restart, forbidden for
	// kill/term (those stay down — that is the scenario).
	Recover Duration `json:"recover,omitempty"`
}

// BatchMix is one entry of the batch-size mix: batches of Size queries
// drawn with probability proportional to Weight; Paths asks for
// concrete replacement paths on every query of the batch.
type BatchMix struct {
	Size   int     `json:"size"`
	Weight float64 `json:"weight"`
	Paths  bool    `json:"paths,omitempty"`
}

// Arrival processes.
const (
	// ArrivalClosed is a closed loop: each client sends, waits for the
	// response (honoring Retry-After on 429 unless the wave opts out),
	// then immediately sends again. Offered load tracks capacity.
	ArrivalClosed = "closed"
	// ArrivalPoisson is an open process: batches arrive at Rate per
	// second with exponential inter-arrival times, regardless of how
	// the server is keeping up — the process that pushes a server past
	// its admission budget.
	ArrivalPoisson = "poisson"
)

// Wave is one stage of the plan, run after the previous wave finished.
type Wave struct {
	// Name labels the wave in results; required.
	Name string `json:"name"`
	// Clients is the client pool size: the concurrency of a closed
	// wave, the in-flight cap of a poisson wave (arrivals past the cap
	// are counted as overflowed, not sent). Must be positive.
	Clients int `json:"clients"`
	// Arrival is ArrivalClosed (default) or ArrivalPoisson.
	Arrival string `json:"arrival,omitempty"`
	// Rate is the poisson arrival rate in batches per second.
	Rate float64 `json:"rate,omitempty"`
	// Duration is how long the wave offers load.
	Duration Duration `json:"duration"`
	// ObeyRetryAfter controls whether a client that got a 429 sleeps
	// the advertised Retry-After before retrying the same batch.
	// Default true; a saturation wave sets false to keep the offered
	// load up.
	ObeyRetryAfter *bool `json:"obeyRetryAfter,omitempty"`
	// Drain triggers a graceful drain at the wave's midpoint (SIGTERM
	// to the spawned/attached server, or the in-process drain
	// callback). Only the last wave may drain.
	Drain bool `json:"drain,omitempty"`
	// Chaos injects a replica fault mid-wave (router plans only).
	Chaos *ChaosSpec `json:"chaos,omitempty"`
}

// Obey reports whether this wave honors Retry-After (the default).
func (w *Wave) Obey() bool { return w.ObeyRetryAfter == nil || *w.ObeyRetryAfter }

// Plan is a complete declarative load scenario.
type Plan struct {
	// Name labels the scenario; required.
	Name  string    `json:"name"`
	Graph GraphSpec `json:"graph"`
	// Sources is σ: how many evenly spread sources the server was (or
	// is spawned) configured with via -auto-sources.
	Sources int `json:"sources"`
	// Seed feeds the query-synthesis RNG (distinct from Graph.Seed).
	Seed uint64 `json:"seed,omitempty"`
	// TrackPaths marks the deployment as path-tracking; required for
	// any BatchMix entry with Paths.
	TrackPaths bool `json:"trackPaths,omitempty"`
	// Warm runs POST /v1/warm as the warm-up phase before the first
	// wave (recorded, not counted into any wave).
	Warm bool `json:"warm,omitempty"`
	// BatchMix is the batch-size mix; empty means single-query batches.
	BatchMix []BatchMix  `json:"batchMix,omitempty"`
	Server   *ServerSpec `json:"server,omitempty"`
	// Router runs the waves through a replica-sharded routing tier
	// instead of a single server.
	Router *RouterSpec `json:"router,omitempty"`
	Waves  []Wave      `json:"waves"`
}

// knownFamilies mirrors cmd/msrp-gen.
var knownFamilies = map[string]bool{
	"random": true, "grid": true, "cycle": true, "path": true,
	"chords": true, "pa": true, "barbell": true,
}

// Validate checks the plan strictly; a plan that validates runs the
// same way on every host. (Unknown JSON fields are rejected earlier, by
// ParsePlan's DisallowUnknownFields.)
func (p *Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("load: plan needs a name")
	}
	g := p.Graph
	if !knownFamilies[g.Family] {
		return fmt.Errorf("load: unknown graph family %q", g.Family)
	}
	if g.Family == "grid" {
		if g.Rows <= 0 || g.Cols <= 0 {
			return fmt.Errorf("load: grid family needs positive rows and cols")
		}
	} else if g.N <= 1 {
		return fmt.Errorf("load: graph family %q needs n > 1, got %d", g.Family, g.N)
	}
	n := g.N
	if g.Family == "grid" {
		n = g.Rows * g.Cols
	}
	if p.Sources <= 0 {
		return fmt.Errorf("load: sources must be positive, got %d", p.Sources)
	}
	if p.Sources > n {
		return fmt.Errorf("load: sources = %d exceeds the graph's %d vertices", p.Sources, n)
	}
	for i, m := range p.BatchMix {
		if m.Size <= 0 {
			return fmt.Errorf("load: batchMix[%d]: size must be positive, got %d", i, m.Size)
		}
		if m.Weight <= 0 {
			return fmt.Errorf("load: batchMix[%d]: weight must be positive, got %g", i, m.Weight)
		}
		if m.Paths && !p.TrackPaths {
			return fmt.Errorf("load: batchMix[%d] requests paths but the plan does not set trackPaths", i)
		}
	}
	if p.Router != nil && p.Router.Replicas < 2 {
		return fmt.Errorf("load: router.replicas must be at least 2, got %d (a one-replica fleet measures nothing the single-server path doesn't)", p.Router.Replicas)
	}
	if len(p.Waves) == 0 {
		return fmt.Errorf("load: plan needs at least one wave")
	}
	// Track the fleet across waves: membership chaos changes it, and a
	// later wave's replica index must be valid for the fleet as it will
	// exist by then. Slot ids are append-only and never reused.
	slots, members := 0, 0
	if p.Router != nil {
		slots, members = p.Router.Replicas, p.Router.Replicas
	}
	drained := make(map[int]bool)
	seen := make(map[string]bool, len(p.Waves))
	for i := range p.Waves {
		w := &p.Waves[i]
		if w.Name == "" {
			return fmt.Errorf("load: wave %d is unnamed; every stage needs a name", i)
		}
		if seen[w.Name] {
			return fmt.Errorf("load: duplicate wave name %q", w.Name)
		}
		seen[w.Name] = true
		if w.Clients <= 0 {
			return fmt.Errorf("load: wave %q: clients must be positive, got %d", w.Name, w.Clients)
		}
		switch w.Arrival {
		case "", ArrivalClosed:
			if w.Rate != 0 {
				return fmt.Errorf("load: wave %q: rate is only meaningful with arrival %q", w.Name, ArrivalPoisson)
			}
		case ArrivalPoisson:
			if w.Rate <= 0 {
				return fmt.Errorf("load: wave %q: poisson arrival needs a positive rate", w.Name)
			}
		default:
			return fmt.Errorf("load: wave %q: unknown arrival %q (want %q or %q)",
				w.Name, w.Arrival, ArrivalClosed, ArrivalPoisson)
		}
		if time.Duration(w.Duration) <= 0 {
			return fmt.Errorf("load: wave %q: duration must be positive", w.Name)
		}
		if w.Drain && i != len(p.Waves)-1 {
			return fmt.Errorf("load: wave %q: only the last wave may drain (the server is gone afterwards)", w.Name)
		}
		if c := w.Chaos; c != nil {
			if p.Router == nil {
				return fmt.Errorf("load: wave %q: chaos needs a router fleet (set plan.router)", w.Name)
			}
			if !knownChaosActions[c.Action] {
				return fmt.Errorf("load: wave %q: unknown chaos action %q (want kill|term|stall|restart|addReplica|drainReplica)", w.Name, c.Action)
			}
			switch c.Action {
			case ChaosAddReplica:
				if c.Replica != 0 {
					return fmt.Errorf("load: wave %q: addReplica allocates the next slot itself; leave replica unset", w.Name)
				}
			case ChaosDrainReplica:
				if c.Replica < 0 || c.Replica >= slots {
					return fmt.Errorf("load: wave %q: chaos replica %d out of range [0,%d) (fleet slots at this wave)", w.Name, c.Replica, slots)
				}
				if drained[c.Replica] {
					return fmt.Errorf("load: wave %q: replica %d was already drained by an earlier wave", w.Name, c.Replica)
				}
				if members <= 2 {
					return fmt.Errorf("load: wave %q: drainReplica would shrink the fleet below 2 members", w.Name)
				}
			default:
				if c.Replica < 0 || c.Replica >= slots {
					return fmt.Errorf("load: wave %q: chaos replica %d out of range [0,%d)", w.Name, c.Replica, slots)
				}
				if drained[c.Replica] {
					return fmt.Errorf("load: wave %q: replica %d was drained by an earlier wave; its slot is gone", w.Name, c.Replica)
				}
			}
			if c.At < 0 || c.At >= 1 {
				return fmt.Errorf("load: wave %q: chaos at = %g must be a fraction in [0,1)", w.Name, c.At)
			}
			at := c.At
			if at == 0 {
				at = 0.5
			}
			switch c.Action {
			case ChaosStall, ChaosRestart:
				if time.Duration(c.Recover) <= 0 {
					return fmt.Errorf("load: wave %q: chaos action %q needs a positive recover (how long the fault lasts)", w.Name, c.Action)
				}
				// Recovery must land inside the wave, or the result can't
				// observe it.
				if trigger := time.Duration(at * float64(time.Duration(w.Duration))); trigger+time.Duration(c.Recover) >= time.Duration(w.Duration) {
					return fmt.Errorf("load: wave %q: chaos recover %v does not fit between the trigger (+%v) and the wave end (%v)",
						w.Name, time.Duration(c.Recover), trigger, time.Duration(w.Duration))
				}
			case ChaosAddReplica, ChaosDrainReplica:
				if time.Duration(c.Recover) != 0 {
					return fmt.Errorf("load: wave %q: membership changes are permanent; recover is only meaningful for stall|restart", w.Name)
				}
			default:
				if time.Duration(c.Recover) != 0 {
					return fmt.Errorf("load: wave %q: chaos action %q leaves the replica down; recover is only meaningful for stall|restart", w.Name, c.Action)
				}
			}
			switch c.Action {
			case ChaosAddReplica:
				slots, members = slots+1, members+1
			case ChaosDrainReplica:
				drained[c.Replica] = true
				members--
			}
		}
	}
	return nil
}

// ParsePlan decodes and validates a plan. Unknown fields are an error:
// a typoed knob must fail loudly, not silently run a different
// scenario.
func ParsePlan(r io.Reader) (*Plan, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("load: parse plan: %w", err)
	}
	// A second document in the stream is a malformed plan file.
	if dec.More() {
		return nil, fmt.Errorf("load: plan file contains trailing data after the plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads a plan file.
func LoadPlan(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParsePlan(f)
}
