package load

import (
	"fmt"

	"msrp/internal/bfs"
	"msrp/internal/graph"
	"msrp/internal/server"
	"msrp/internal/xrand"
)

// BuildGraph materializes a plan's graph spec with the same generators
// (and therefore bit-identical output) as cmd/msrp-gen.
func BuildGraph(spec GraphSpec) (*graph.Graph, error) {
	rng := xrand.New(spec.Seed)
	switch spec.Family {
	case "random":
		m := spec.M
		if m == 0 {
			m = 4 * spec.N
		}
		return graph.RandomConnected(rng, spec.N, m), nil
	case "grid":
		return graph.Grid(spec.Rows, spec.Cols), nil
	case "cycle":
		return graph.Cycle(spec.N), nil
	case "path":
		return graph.Path(spec.N), nil
	case "chords":
		chords := spec.Chords
		if chords == 0 {
			chords = 10
		}
		return graph.CycleWithChords(rng, spec.N, chords), nil
	case "pa":
		k := spec.K
		if k == 0 {
			k = 3
		}
		return graph.PreferentialAttachment(rng, spec.N, k), nil
	case "barbell":
		bridge := spec.Bridge
		if bridge == 0 {
			bridge = 3
		}
		return graph.Barbell(spec.N, bridge), nil
	default:
		return nil, fmt.Errorf("load: unknown graph family %q", spec.Family)
	}
}

// AutoSources picks k evenly spread sources exactly the way
// cmd/msrp-serve's -auto-sources does, so a plan's client and the
// server it drives agree on the source set without talking about it.
func AutoSources(n, k int) []int {
	if k > n {
		k = n
	}
	srcs := make([]int, k)
	for i := range srcs {
		srcs[i] = i * n / k
	}
	return srcs
}

// QueryGen synthesizes valid replacement-path queries for a plan's
// graph: the avoided edge of every query provably lies on the server's
// canonical source→target path, because the canonical trees are
// deterministic BFS trees (internal/bfs: first-discoverer parents,
// ascending neighbor scan) of the regenerated graph — the same code the
// server runs. Shared read-only state; obtain a per-client Stream for
// the RNG.
type QueryGen struct {
	sources []int
	trees   []*bfs.Tree
	targets [][]int32 // per source: vertices at distance >= 1
	mix     []BatchMix
	weight  float64 // total mix weight
}

// NewQueryGen builds the generator (σ BFS trees, O(σ·(n+m))) plus the
// graph it ran on, for callers that also need to serve or save it.
func NewQueryGen(plan *Plan) (*QueryGen, *graph.Graph, error) {
	g, err := BuildGraph(plan.Graph)
	if err != nil {
		return nil, nil, err
	}
	qg := &QueryGen{
		sources: AutoSources(g.NumVertices(), plan.Sources),
		mix:     plan.BatchMix,
	}
	if len(qg.mix) == 0 {
		qg.mix = []BatchMix{{Size: 1, Weight: 1}}
	}
	for _, m := range qg.mix {
		qg.weight += m.Weight
	}
	for _, s := range qg.sources {
		t := bfs.New(g, s)
		var targets []int32
		for v := 0; v < g.NumVertices(); v++ {
			if t.Dist[v] >= 1 {
				targets = append(targets, int32(v))
			}
		}
		if len(targets) == 0 {
			return nil, nil, fmt.Errorf("load: source %d has no reachable targets", s)
		}
		qg.trees = append(qg.trees, t)
		qg.targets = append(qg.targets, targets)
	}
	return qg, g, nil
}

// Sources returns the derived source set (for spawn-mode wiring).
func (qg *QueryGen) Sources() []int { return append([]int(nil), qg.sources...) }

// Stream is a per-client deterministic query stream.
type Stream struct {
	qg  *QueryGen
	rng *xrand.RNG
}

// Stream derives an independent per-client stream; (seed, client) pairs
// are decorrelated, so runs are reproducible at any concurrency.
func (qg *QueryGen) Stream(seed uint64, client int) *Stream {
	return &Stream{qg: qg, rng: xrand.New(xrand.Mix(seed ^ xrand.Mix(uint64(client)+1)))}
}

// Batch draws the next batch from the mix: a size, whether paths are
// requested, and that many valid queries.
func (s *Stream) Batch() server.QueryRequest {
	qg := s.qg
	// Pick the mix entry by weight.
	entry := qg.mix[len(qg.mix)-1]
	w := s.rng.Float64() * qg.weight
	for _, m := range qg.mix {
		if w < m.Weight {
			entry = m
			break
		}
		w -= m.Weight
	}
	items := make([]server.QueryItem, entry.Size)
	for i := range items {
		items[i] = s.query(entry.Paths)
	}
	return server.QueryRequest{Queries: items}
}

// query synthesizes one valid query: a random source, a random
// reachable target, and a uniformly random edge of the canonical path
// between them.
func (s *Stream) query(paths bool) server.QueryItem {
	qg := s.qg
	si := s.rng.Intn(len(qg.sources))
	tree := qg.trees[si]
	t := qg.targets[si][s.rng.Intn(len(qg.targets[si]))]
	// The canonical path has Dist[t] edges; walk k steps up from t to
	// the child endpoint of the avoided edge.
	k := s.rng.Intn(int(tree.Dist[t]))
	child := t
	for ; k > 0; k-- {
		child = tree.Parent[child]
	}
	return server.QueryItem{
		Source: qg.sources[si],
		Target: int(t),
		U:      int(tree.Parent[child]),
		V:      int(child),
		Paths:  paths,
	}
}
