package load

// Tests for the router-fleet plan surface (RouterSpec/ChaosSpec
// validation) and the full-jitter Retry-After backoff.

import (
	"strings"
	"testing"
	"time"

	"msrp/internal/xrand"
)

const validRouterPlanJSON = `{
  "name": "rt",
  "graph": {"family": "chords", "n": 60, "chords": 6, "seed": 3},
  "sources": 4,
  "router": {"replicas": 3, "itemDeadline": "2s", "maxAttempts": 3},
  "waves": [
    {"name": "steady", "clients": 2, "duration": "100ms"},
    {"name": "crash", "clients": 2, "duration": "3s",
     "chaos": {"action": "restart", "replica": 1, "at": 0.33, "recover": "1s"}}
  ]
}`

func TestParseRouterChaosPlan(t *testing.T) {
	p, err := ParsePlan(strings.NewReader(validRouterPlanJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.Router == nil || p.Router.Replicas != 3 {
		t.Fatalf("router spec misparsed: %+v", p.Router)
	}
	if got := time.Duration(p.Router.ItemDeadline); got != 2*time.Second {
		t.Fatalf("itemDeadline = %v, want 2s", got)
	}
	c := p.Waves[1].Chaos
	if c == nil || c.Action != ChaosRestart || c.Replica != 1 || c.At != 0.33 {
		t.Fatalf("chaos spec misparsed: %+v", c)
	}
	if got := time.Duration(c.Recover); got != time.Second {
		t.Fatalf("recover = %v, want 1s", got)
	}
}

func TestRouterChaosPlanRejects(t *testing.T) {
	// Each case mutates the valid plan by a substring rewrite.
	cases := []struct {
		name string
		from string
		to   string
		want string
	}{
		{
			name: "chaos without a router fleet",
			from: `"router": {"replicas": 3, "itemDeadline": "2s", "maxAttempts": 3},`,
			to:   ``,
			want: "chaos needs a router fleet",
		},
		{
			name: "single-replica fleet",
			from: `"replicas": 3`,
			to:   `"replicas": 1`,
			want: "router.replicas must be at least 2",
		},
		{
			name: "unknown action",
			from: `"action": "restart"`,
			to:   `"action": "explode"`,
			want: "unknown chaos action",
		},
		{
			name: "replica out of range",
			from: `"replica": 1`,
			to:   `"replica": 3`,
			want: "out of range",
		},
		{
			name: "trigger fraction at or past the wave end",
			from: `"at": 0.33`,
			to:   `"at": 1.0`,
			want: "fraction in [0,1)",
		},
		{
			name: "restart without a recover window",
			from: `"at": 0.33, "recover": "1s"`,
			to:   `"at": 0.33`,
			want: "needs a positive recover",
		},
		{
			name: "recovery that cannot land inside the wave",
			from: `"recover": "1s"`,
			to:   `"recover": "2500ms"`,
			want: "does not fit",
		},
		{
			name: "kill keeps the replica down; recover is meaningless",
			from: `"action": "restart", "replica": 1, "at": 0.33, "recover": "1s"`,
			to:   `"action": "kill", "replica": 1, "at": 0.33, "recover": "1s"`,
			want: "recover is only meaningful",
		},
		{
			name: "unknown router field",
			from: `"maxAttempts": 3`,
			to:   `"maxAttempt": 3`,
			want: "unknown field",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mutated := strings.Replace(validRouterPlanJSON, c.from, c.to, 1)
			if mutated == validRouterPlanJSON {
				t.Fatalf("mutation %q -> %q did not apply", c.from, c.to)
			}
			_, err := ParsePlan(strings.NewReader(mutated))
			if err == nil {
				t.Fatalf("plan validated; want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

// TestFullJitterSpreadsTheStampede: a pool of closed-loop clients all
// rejected with the same Retry-After must NOT retry in lockstep — the
// jittered backoffs have to spread over [0, hint), not cluster at the
// boundary.
func TestFullJitterSpreadsTheStampede(t *testing.T) {
	hint := 4 * time.Second
	const clients = 64
	backoffs := make([]time.Duration, clients)
	for i := range backoffs {
		// Each client draws from its own deterministic stream, exactly
		// like the workers in a wave.
		rng := xrand.New(xrand.Mix(99 ^ xrand.Mix(uint64(i)+1)))
		backoffs[i] = fullJitter(rng, hint)
	}
	var sum time.Duration
	buckets := make([]int, 4) // quarters of the hint window
	for i, b := range backoffs {
		if b < 0 || b >= hint {
			t.Fatalf("client %d backoff %v outside [0, %v)", i, b, hint)
		}
		sum += b
		buckets[int(4*float64(b)/float64(hint))]++
	}
	// The old behavior put all 64 clients in the same instant (the top
	// boundary). Uniform draws must populate every quarter of the
	// window; P(an empty quarter) < 64·(3/4)^64 ≈ 1e-6 — a failure here
	// means the jitter is broken, not unlucky.
	for q, n := range buckets {
		if n == 0 {
			t.Fatalf("no client landed in quarter %d of the backoff window: %v (lockstep not broken)", q, buckets)
		}
	}
	mean := sum / clients
	if mean < hint/4 || mean > 3*hint/4 {
		t.Fatalf("mean backoff %v is far from hint/2 = %v for uniform jitter", mean, hint/2)
	}
	if fullJitter(xrand.New(1), 0) != 0 {
		t.Fatal("zero hint must mean zero backoff")
	}
}
