// Package dijkstra runs Dijkstra's algorithm over the weighted directed
// auxiliary graphs the paper constructs in §7.1, §8.1, §8.2.2 and
// §8.3.2.
//
// Auxiliary graphs are built once, run once, and discarded, so the
// representation is a freshly compacted CSR of arcs with int64
// distances (auxiliary arc weights are compressed path lengths, so
// int32 sums could in principle overflow on adversarial chains; int64
// removes the concern entirely). Parent pointers are recorded so the
// §8.2.1 machinery can expand the winning paths.
package dijkstra

import (
	"fmt"
	"math"

	"msrp/internal/engine"
	"msrp/internal/pqueue"
)

// Inf is the distance reported for unreachable nodes.
const Inf = int64(math.MaxInt64)

// Builder accumulates arcs of a directed weighted graph with n nodes.
type Builder struct {
	n    int
	from []int32
	to   []int32
	w    []int32
}

// NewBuilder returns a builder for a graph on n nodes. The arcs slice
// capacity hint avoids regrowth for the large §8 auxiliary graphs.
func NewBuilder(n, arcHint int) *Builder {
	return &Builder{
		n:    n,
		from: make([]int32, 0, arcHint),
		to:   make([]int32, 0, arcHint),
		w:    make([]int32, 0, arcHint),
	}
}

// Reset reinitializes the builder for a graph on n nodes, keeping the
// arc arrays' capacity. Workers that build one auxiliary graph per item
// (internal/msrp's §8.1/§8.2.2 stages) reset a per-worker builder
// instead of allocating a new one per item.
func (b *Builder) Reset(n int) {
	b.n = n
	b.from = b.from[:0]
	b.to = b.to[:0]
	b.w = b.w[:0]
}

// NumNodes returns the node count.
func (b *Builder) NumNodes() int { return b.n }

// NumArcs returns the number of arcs added so far.
func (b *Builder) NumArcs() int { return len(b.from) }

// AddArc records the directed arc from→to with weight w. Negative
// weights are a programming error (Dijkstra requires non-negative) and
// panic immediately rather than corrupting distances downstream.
func (b *Builder) AddArc(from, to int32, w int32) {
	if w < 0 {
		panic(fmt.Sprintf("dijkstra: negative arc weight %d", w))
	}
	if from < 0 || to < 0 || int(from) >= b.n || int(to) >= b.n {
		panic(fmt.Sprintf("dijkstra: arc (%d,%d) out of range n=%d", from, to, b.n))
	}
	b.from = append(b.from, from)
	b.to = append(b.to, to)
	b.w = append(b.w, w)
}

// Graph is the finalized CSR arc structure.
type Graph struct {
	n   int
	off []int32
	to  []int32
	w   []int32
}

// Finalize compacts the builder into a Graph. The builder can be
// discarded afterwards.
func (b *Builder) Finalize() *Graph {
	g := &Graph{
		n:   b.n,
		off: make([]int32, b.n+1),
		to:  make([]int32, len(b.to)),
		w:   make([]int32, len(b.w)),
	}
	return b.finalizeInto(g, make([]int32, b.n))
}

// finalizeInto runs the counting-sort CSR construction into g's
// (presized) arrays, with cursor as the length-n scatter cursor.
// g.off must be zeroed; shared by Finalize and FinalizeScratch so the
// two allocation strategies cannot drift.
func (b *Builder) finalizeInto(g *Graph, cursor []int32) *Graph {
	for _, f := range b.from {
		g.off[f+1]++
	}
	for v := 0; v < b.n; v++ {
		g.off[v+1] += g.off[v]
	}
	copy(cursor, g.off[:b.n])
	for i, f := range b.from {
		g.to[cursor[f]] = b.to[i]
		g.w[cursor[f]] = b.w[i]
		cursor[f]++
	}
	return g
}

// FinalizeScratch is Finalize with the CSR arrays carved from an
// engine scratch, valid only until the scratch's next Reset. It serves
// the build-run-discard pattern of the §8.1/§8.2.2 auxiliary stages,
// which otherwise heap-allocate Θ(nodes + arcs) per item just to throw
// the graph away after one Run. A nil scratch falls back to Finalize.
func (b *Builder) FinalizeScratch(sc *engine.Scratch) *Graph {
	if sc == nil {
		return b.Finalize()
	}
	g := &Graph{
		n:   b.n,
		off: sc.Int32(b.n + 1),
		to:  sc.Int32(len(b.to)),
		w:   sc.Int32(len(b.w)),
	}
	for i := range g.off {
		g.off[i] = 0 // scratch carve-offs are not zeroed
	}
	return b.finalizeInto(g, sc.Int32(b.n))
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// NumArcs returns the arc count.
func (g *Graph) NumArcs() int { return len(g.to) }

// Result holds the output of one Dijkstra run.
type Result struct {
	// Dist[v] is the shortest distance from the source, or Inf.
	Dist []int64
	// Parent[v] is the predecessor node on a shortest path, or -1.
	Parent []int32
}

// Run executes Dijkstra from src and returns distances and parents.
func (g *Graph) Run(src int32) *Result {
	return g.run(src, &Result{
		Dist:   make([]int64, g.n),
		Parent: make([]int32, g.n),
	})
}

// RunScratch is Run with the Dist/Parent arrays carved from an engine
// scratch — for callers that copy what they need out of the Result
// before the scratch's next Reset (the §8.1/§8.2.2 stages, which
// extract a handful of rows from a Θ(nodes) result). A nil scratch
// falls back to Run.
func (g *Graph) RunScratch(src int32, sc *engine.Scratch) *Result {
	if sc == nil {
		return g.Run(src)
	}
	return g.run(src, &Result{
		Dist:   sc.Int64(g.n),
		Parent: sc.Int32(g.n),
	})
}

func (g *Graph) run(src int32, res *Result) *Result {
	for i := range res.Dist {
		res.Dist[i] = Inf
		res.Parent[i] = -1
	}
	res.Dist[src] = 0
	var h pqueue.Heap
	h.Grow(g.n / 4)
	h.Push(0, src)
	for h.Len() > 0 {
		it := h.Pop()
		v := it.Value
		if it.Key != res.Dist[v] {
			continue // stale entry (lazy deletion)
		}
		lo, hi := g.off[v], g.off[v+1]
		for i := lo; i < hi; i++ {
			to, w := g.to[i], int64(g.w[i])
			if nd := it.Key + w; nd < res.Dist[to] {
				res.Dist[to] = nd
				res.Parent[to] = v
				h.Push(nd, to)
			}
		}
	}
	return res
}

// PathTo reconstructs the node sequence of a shortest path from the
// source to v (source first), or nil if v is unreachable.
func (r *Result) PathTo(v int32) []int32 {
	if r.Dist[v] == Inf {
		return nil
	}
	var rev []int32
	for x := v; x >= 0; x = r.Parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
