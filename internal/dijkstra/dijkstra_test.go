package dijkstra

import (
	"testing"

	"msrp/internal/graph"
	"msrp/internal/xrand"
)

func TestLineGraph(t *testing.T) {
	b := NewBuilder(4, 3)
	b.AddArc(0, 1, 5)
	b.AddArc(1, 2, 3)
	b.AddArc(2, 3, 2)
	g := b.Finalize()
	res := g.Run(0)
	want := []int64{0, 5, 8, 10}
	for v, w := range want {
		if res.Dist[v] != w {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], w)
		}
	}
	path := res.PathTo(3)
	if len(path) != 4 || path[0] != 0 || path[3] != 3 {
		t.Fatalf("path = %v", path)
	}
}

func TestUnreachable(t *testing.T) {
	b := NewBuilder(3, 1)
	b.AddArc(0, 1, 1)
	g := b.Finalize()
	res := g.Run(0)
	if res.Dist[2] != Inf {
		t.Fatalf("dist[2] = %d, want Inf", res.Dist[2])
	}
	if res.PathTo(2) != nil {
		t.Fatal("path to unreachable should be nil")
	}
}

func TestDirectedness(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddArc(0, 1, 1)
	g := b.Finalize()
	if res := g.Run(1); res.Dist[0] != Inf {
		t.Fatal("arc should be one-directional")
	}
}

func TestShorterAlternative(t *testing.T) {
	// 0->2 direct cost 10, or 0->1->2 cost 3.
	b := NewBuilder(3, 3)
	b.AddArc(0, 2, 10)
	b.AddArc(0, 1, 1)
	b.AddArc(1, 2, 2)
	g := b.Finalize()
	res := g.Run(0)
	if res.Dist[2] != 3 {
		t.Fatalf("dist[2] = %d, want 3", res.Dist[2])
	}
	p := res.PathTo(2)
	if len(p) != 3 || p[1] != 1 {
		t.Fatalf("path = %v", p)
	}
}

func TestZeroWeightArcs(t *testing.T) {
	b := NewBuilder(3, 2)
	b.AddArc(0, 1, 0)
	b.AddArc(1, 2, 0)
	g := b.Finalize()
	res := g.Run(0)
	if res.Dist[2] != 0 {
		t.Fatalf("dist[2] = %d, want 0", res.Dist[2])
	}
}

func TestNegativeWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2, 1).AddArc(0, 1, -1)
}

func TestAgainstBFSOnUnitWeights(t *testing.T) {
	// With all weights 1, Dijkstra must agree with BFS on the same graph.
	rng := xrand.New(1)
	for trial := 0; trial < 10; trial++ {
		ug := graph.RandomConnected(rng, 60, 150)
		b := NewBuilder(60, 300)
		for e := 0; e < ug.NumEdges(); e++ {
			u, v := ug.EdgeEndpoints(e)
			b.AddArc(u, v, 1)
			b.AddArc(v, u, 1)
		}
		g := b.Finalize()
		res := g.Run(0)
		// Reference BFS.
		dist := make([]int64, 60)
		for i := range dist {
			dist[i] = -1
		}
		dist[0] = 0
		queue := []int32{0}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			vtx, _ := ug.Neighbors(int(v))
			for _, w := range vtx {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		for v := 0; v < 60; v++ {
			if res.Dist[v] != dist[v] {
				t.Fatalf("trial %d vertex %d: dijkstra %d, bfs %d", trial, v, res.Dist[v], dist[v])
			}
		}
	}
}

func TestRelaxationFixedPoint(t *testing.T) {
	// Property: after Run, no arc can relax any distance further, and
	// every finite distance is witnessed by a parent arc.
	rng := xrand.New(2)
	b := NewBuilder(100, 400)
	type arc struct {
		from, to int32
		w        int64
	}
	var arcs []arc
	for i := 0; i < 400; i++ {
		f, to := int32(rng.Intn(100)), int32(rng.Intn(100))
		w := int32(rng.Intn(20))
		b.AddArc(f, to, w)
		arcs = append(arcs, arc{f, to, int64(w)})
	}
	g := b.Finalize()
	res := g.Run(0)
	for _, a := range arcs {
		if res.Dist[a.from] != Inf && res.Dist[a.from]+a.w < res.Dist[a.to] {
			t.Fatalf("arc (%d,%d,%d) can still relax: %d + %d < %d",
				a.from, a.to, a.w, res.Dist[a.from], a.w, res.Dist[a.to])
		}
	}
	for v := int32(1); v < 100; v++ {
		if res.Dist[v] == Inf {
			continue
		}
		p := res.Parent[v]
		if p < 0 {
			t.Fatalf("finite dist[%d]=%d with no parent", v, res.Dist[v])
		}
		// Parent must witness the distance through some arc.
		witnessed := false
		for _, a := range arcs {
			if a.from == p && a.to == v && res.Dist[p]+a.w == res.Dist[v] {
				witnessed = true
				break
			}
		}
		if !witnessed {
			t.Fatalf("dist[%d]=%d not witnessed by parent %d", v, res.Dist[v], p)
		}
	}
}

func BenchmarkDijkstraSparse(b *testing.B) {
	rng := xrand.New(1)
	ug := graph.RandomConnected(rng, 5000, 20000)
	bd := NewBuilder(5000, 40000)
	for e := 0; e < ug.NumEdges(); e++ {
		u, v := ug.EdgeEndpoints(e)
		w := int32(rng.Intn(10) + 1)
		bd.AddArc(u, v, w)
		bd.AddArc(v, u, w)
	}
	g := bd.Finalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Run(int32(i % 5000))
	}
}
