package bfs

import (
	"msrp/internal/engine"
	"testing"
	"testing/quick"

	"msrp/internal/graph"
	"msrp/internal/xrand"
)

func TestPathGraphDistances(t *testing.T) {
	g := graph.Path(6)
	tr := New(g, 0)
	for v := 0; v < 6; v++ {
		if tr.Dist[v] != int32(v) {
			t.Fatalf("dist[%d] = %d", v, tr.Dist[v])
		}
	}
	p := tr.PathTo(5)
	want := []int32{0, 1, 2, 3, 4, 5}
	if len(p) != len(want) {
		t.Fatalf("path %v", p)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path %v", p)
		}
	}
}

func TestUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	_ = b.AddEdge(0, 1)
	g := b.MustBuild()
	tr := New(g, 0)
	if tr.Reachable(2) || tr.Reachable(3) {
		t.Fatal("2,3 should be unreachable")
	}
	if tr.PathTo(2) != nil || tr.PathEdgesTo(3) != nil {
		t.Fatal("paths to unreachable vertices should be nil")
	}
	if !tr.Reachable(1) || tr.Dist[1] != 1 {
		t.Fatal("vertex 1 should be at distance 1")
	}
}

func TestTreeStructure(t *testing.T) {
	rng := xrand.New(1)
	g := graph.RandomConnected(rng, 60, 140)
	tr := New(g, 7)
	if tr.Dist[7] != 0 || tr.Parent[7] != -1 || tr.ParentEdge[7] != -1 {
		t.Fatal("root labelling wrong")
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if v == 7 {
			continue
		}
		p := tr.Parent[v]
		if p < 0 {
			t.Fatalf("vertex %d unreachable in connected graph", v)
		}
		if tr.Dist[v] != tr.Dist[p]+1 {
			t.Fatalf("dist[%d]=%d but dist[parent=%d]=%d", v, tr.Dist[v], p, tr.Dist[p])
		}
		e := tr.ParentEdge[v]
		a, b := g.EdgeEndpoints(int(e))
		if !(a == v && b == p) && !(a == p && b == v) {
			t.Fatalf("ParentEdge[%d]=%d does not connect %d and %d", v, e, v, p)
		}
		child, ok := tr.ChildEndpoint(g, e)
		if !ok || child != v {
			t.Fatalf("ChildEndpoint(edge %d) = %d,%v want %d", e, child, ok, v)
		}
	}
}

func TestDistancesAreShortest(t *testing.T) {
	// BFS distance must satisfy |d(u) - d(v)| <= 1 across every edge and
	// equal the true metric (checked by edge relaxation fixed point).
	rng := xrand.New(2)
	g := graph.GNM(rng, 50, 120)
	tr := New(g, 0)
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.EdgeEndpoints(e)
		du, dv := tr.Dist[u], tr.Dist[v]
		if du == Unreachable || dv == Unreachable {
			if du != dv {
				t.Fatalf("edge {%d,%d} spans reachable/unreachable", u, v)
			}
			continue
		}
		diff := du - dv
		if diff < -1 || diff > 1 {
			t.Fatalf("edge {%d,%d}: dist gap %d", u, v, diff)
		}
	}
}

func TestOrderIsByDistance(t *testing.T) {
	rng := xrand.New(3)
	g := graph.RandomConnected(rng, 80, 200)
	tr := New(g, 5)
	for i := 1; i < len(tr.Order); i++ {
		if tr.Dist[tr.Order[i]] < tr.Dist[tr.Order[i-1]] {
			t.Fatal("Order not sorted by distance")
		}
	}
	if len(tr.Order) != g.NumVertices() {
		t.Fatalf("Order covers %d of %d vertices", len(tr.Order), g.NumVertices())
	}
}

func TestPathEdgesMatchPath(t *testing.T) {
	rng := xrand.New(4)
	g := graph.RandomConnected(rng, 40, 90)
	tr := New(g, 0)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		p := tr.PathTo(v)
		es := tr.PathEdgesTo(v)
		if len(es) != len(p)-1 {
			t.Fatalf("vertex %d: %d edges for %d vertices", v, len(es), len(p))
		}
		for i, e := range es {
			a, b := g.EdgeEndpoints(int(e))
			if !(a == p[i] && b == p[i+1]) && !(a == p[i+1] && b == p[i]) {
				t.Fatalf("edge %d of path to %d mismatched", i, v)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := xrand.New(5)
	g := graph.GNM(rng, 70, 180)
	a := New(g, 3)
	b := New(g, 3)
	for v := 0; v < g.NumVertices(); v++ {
		if a.Parent[v] != b.Parent[v] || a.Dist[v] != b.Dist[v] {
			t.Fatal("BFS not deterministic")
		}
	}
}

func TestForestSequentialVsParallel(t *testing.T) {
	rng := xrand.New(6)
	g := graph.RandomConnected(rng, 100, 300)
	roots := []int32{0, 5, 9, 5, 33, 0} // duplicates on purpose
	seq := NewForest(g, roots, engine.New(1))
	par := NewForest(g, roots, engine.New(4))
	if len(seq.Roots) != 4 || len(par.Roots) != 4 {
		t.Fatalf("dedup failed: %d, %d", len(seq.Roots), len(par.Roots))
	}
	for _, r := range seq.Roots {
		ts, tp := seq.Tree(r), par.Tree(r)
		if ts == nil || tp == nil {
			t.Fatalf("missing tree for root %d", r)
		}
		for v := 0; v < g.NumVertices(); v++ {
			if ts.Dist[v] != tp.Dist[v] || ts.Parent[v] != tp.Parent[v] {
				t.Fatalf("root %d: parallel and sequential trees differ at %d", r, v)
			}
		}
	}
	if seq.Tree(77) != nil {
		t.Fatal("Tree of non-root should be nil")
	}
}

func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed uint32) bool {
		rng := xrand.New(uint64(seed))
		g := graph.RandomConnected(rng, 30, 60)
		t0 := New(g, 0)
		t1 := New(g, 1)
		// d(0,v) <= d(0,1) + d(1,v) for all v.
		for v := 0; v < 30; v++ {
			if t0.Dist[v] > t0.Dist[1]+t1.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBFS(b *testing.B) {
	g := graph.RandomConnected(xrand.New(1), 5000, 20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = New(g, i%5000)
	}
}

// TestPathIntoMatchesPathTo: the Into variants must agree with the
// allocating ones on every vertex and reuse the caller's buffer when it
// is large enough (the seed-table hot loop depends on both properties).
func TestPathIntoMatchesPathTo(t *testing.T) {
	g := graph.RandomConnected(xrand.New(5), 40, 90)
	tr := New(g, 3)
	pathBuf := make([]int32, g.NumVertices()+1)
	edgeBuf := make([]int32, g.NumVertices())
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		wantP, wantE := tr.PathTo(v), tr.PathEdgesTo(v)
		gotP := tr.PathInto(pathBuf, v)
		gotE := tr.PathEdgesInto(edgeBuf, v)
		if len(gotP) != len(wantP) || len(gotE) != len(wantE) {
			t.Fatalf("v=%d: lengths (%d,%d) want (%d,%d)", v, len(gotP), len(gotE), len(wantP), len(wantE))
		}
		for i := range wantP {
			if gotP[i] != wantP[i] {
				t.Fatalf("v=%d: PathInto[%d] = %d, want %d", v, i, gotP[i], wantP[i])
			}
		}
		for i := range wantE {
			if gotE[i] != wantE[i] {
				t.Fatalf("v=%d: PathEdgesInto[%d] = %d, want %d", v, i, gotE[i], wantE[i])
			}
		}
		if len(gotP) > 0 && &gotP[0] != &pathBuf[0] {
			t.Fatalf("v=%d: PathInto allocated despite sufficient capacity", v)
		}
		if len(gotE) > 0 && &gotE[0] != &edgeBuf[0] {
			t.Fatalf("v=%d: PathEdgesInto allocated despite sufficient capacity", v)
		}
	}
	// Undersized buffers must still produce correct (freshly allocated)
	// results rather than truncating.
	deep := tr.Order[len(tr.Order)-1]
	if got := tr.PathInto(make([]int32, 1), deep); len(got) != int(tr.Dist[deep])+1 {
		t.Fatalf("undersized PathInto returned %d vertices", len(got))
	}
}
