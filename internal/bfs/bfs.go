// Package bfs computes breadth-first-search shortest-path trees.
//
// Every algorithm in the paper is phrased in terms of the trees T_v
// (paper §4): the canonical shortest path between x and y "is" the tree
// path in T_x, distances d(x, ·) come from the BFS labelling, and
// "does edge e lie on the xy path" is an ancestry test in T_x
// (implemented in internal/lca). Trees built by this package are
// deterministic: the parent of a vertex is its first discoverer, and
// neighbors are scanned in ascending order, so for a fixed graph the
// canonical paths are fixed. Determinism is what makes the replacement-
// path outputs of independent algorithm implementations comparable in
// tests.
package bfs

import (
	"fmt"

	"msrp/internal/engine"
	"msrp/internal/graph"
)

// Unreachable marks vertices with no path from the root.
const Unreachable = int32(-1)

// Tree is the BFS shortest-path tree of a root vertex. All slice fields
// are indexed by vertex id and must be treated as read-only.
type Tree struct {
	Root int32

	// Dist[v] is d(root, v), or Unreachable.
	Dist []int32

	// Parent[v] is the tree parent of v; -1 for the root and for
	// unreachable vertices.
	Parent []int32

	// ParentEdge[v] is the graph edge id connecting v to Parent[v];
	// -1 for the root and unreachable vertices.
	ParentEdge []int32

	// Order lists reachable vertices in dequeue order (root first).
	// Vertices at distance d form a contiguous run.
	Order []int32
}

// New computes the BFS tree of root in g.
func New(g *graph.Graph, root int) *Tree {
	n := g.NumVertices()
	if root < 0 || root >= n {
		panic(fmt.Sprintf("bfs: root %d out of range [0,%d)", root, n))
	}
	t := &Tree{
		Root:       int32(root),
		Dist:       make([]int32, n),
		Parent:     make([]int32, n),
		ParentEdge: make([]int32, n),
		Order:      make([]int32, 0, n),
	}
	for i := 0; i < n; i++ {
		t.Dist[i] = Unreachable
		t.Parent[i] = -1
		t.ParentEdge[i] = -1
	}
	t.Dist[root] = 0
	t.Order = append(t.Order, int32(root))
	for head := 0; head < len(t.Order); head++ {
		v := t.Order[head]
		vtx, ids := g.Neighbors(int(v))
		for i, w := range vtx {
			if t.Dist[w] == Unreachable {
				t.Dist[w] = t.Dist[v] + 1
				t.Parent[w] = v
				t.ParentEdge[w] = ids[i]
				t.Order = append(t.Order, w)
			}
		}
	}
	return t
}

// Reachable reports whether v has a path from the root.
func (t *Tree) Reachable(v int32) bool { return t.Dist[v] != Unreachable }

// Bytes returns the tree's array footprint — the unit the provenance
// plane's memory accounting uses for the retained center forests.
func (t *Tree) Bytes() int64 {
	return 4 * int64(len(t.Dist)+len(t.Parent)+len(t.ParentEdge)+len(t.Order))
}

// PathTo returns the canonical root→v tree path as a vertex sequence
// (root first, v last), or nil if v is unreachable.
func (t *Tree) PathTo(v int32) []int32 {
	if !t.Reachable(v) {
		return nil
	}
	path := make([]int32, t.Dist[v]+1)
	for i, x := len(path)-1, v; i >= 0; i-- {
		path[i] = x
		x = t.Parent[x]
	}
	return path
}

// PathEdgesTo returns the edge ids along the canonical root→v path in
// root-to-v order (edge i connects path[i] and path[i+1]), or nil if v
// is unreachable. len(PathEdgesTo(v)) == Dist[v].
func (t *Tree) PathEdgesTo(v int32) []int32 {
	if !t.Reachable(v) {
		return nil
	}
	edges := make([]int32, t.Dist[v])
	for i, x := len(edges)-1, v; i >= 0; i-- {
		edges[i] = t.ParentEdge[x]
		x = t.Parent[x]
	}
	return edges
}

// PathInto is PathTo writing into dst's backing array when it has the
// capacity (allocating only when it does not). Hot loops that expand
// Θ(σn) paths pass an engine Scratch buffer sized to the graph so the
// whole sweep allocates nothing. Returns nil if v is unreachable.
func (t *Tree) PathInto(dst []int32, v int32) []int32 {
	if !t.Reachable(v) {
		return nil
	}
	k := int(t.Dist[v]) + 1
	if cap(dst) < k {
		dst = make([]int32, k)
	} else {
		dst = dst[:k]
	}
	for i, x := k-1, v; i >= 0; i-- {
		dst[i] = x
		x = t.Parent[x]
	}
	return dst
}

// PathEdgesInto is PathEdgesTo writing into dst's backing array when it
// has the capacity (allocating only when it does not). Returns nil if v
// is unreachable.
func (t *Tree) PathEdgesInto(dst []int32, v int32) []int32 {
	if !t.Reachable(v) {
		return nil
	}
	k := int(t.Dist[v])
	if cap(dst) < k {
		dst = make([]int32, k)
	} else {
		dst = dst[:k]
	}
	for i, x := k-1, v; i >= 0; i-- {
		dst[i] = t.ParentEdge[x]
		x = t.Parent[x]
	}
	return dst
}

// ChildEndpoint returns the endpoint of tree edge e that is farther from
// the root (the "child" side), given the tree and the graph, along with
// true if e is a tree edge of t. A graph edge e=(u,v) is a tree edge iff
// one endpoint's ParentEdge is e.
func (t *Tree) ChildEndpoint(g *graph.Graph, e int32) (int32, bool) {
	u, v := g.EdgeEndpoints(int(e))
	if t.ParentEdge[v] == e {
		return v, true
	}
	if t.ParentEdge[u] == e {
		return u, true
	}
	return -1, false
}

// Forest bundles BFS trees from a set of roots. It exists because the
// algorithm builds trees from all sources, all landmarks and all centers
// and wants a single lookup point with optional parallel construction.
type Forest struct {
	Roots []int32
	Trees map[int32]*Tree
}

// NewForest builds trees from every root, sharding the builds across
// the given engine pool (nil means sequential). Duplicated roots are
// built once. The result is deterministic regardless of the pool's
// worker count because each tree depends only on (g, root).
func NewForest(g *graph.Graph, roots []int32, pool *engine.Pool) *Forest {
	uniq := make([]int32, 0, len(roots))
	seen := make(map[int32]struct{}, len(roots))
	for _, r := range roots {
		if _, dup := seen[r]; !dup {
			seen[r] = struct{}{}
			uniq = append(uniq, r)
		}
	}
	f := &Forest{
		Roots: uniq,
		Trees: make(map[int32]*Tree, len(uniq)),
	}
	if pool == nil {
		pool = engine.New(1)
	}
	built := make([]*Tree, len(uniq))
	pool.Run(len(uniq), func(i int) {
		built[i] = New(g, int(uniq[i]))
	})
	for i, r := range uniq {
		f.Trees[r] = built[i]
	}
	return f
}

// Tree returns the tree rooted at r, or nil if r was not a root.
func (f *Forest) Tree(r int32) *Tree { return f.Trees[r] }
