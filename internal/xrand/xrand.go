// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// All randomness in the MSRP implementation (landmark sampling, center
// sampling, workload generation) flows from a single user-provided seed
// through this package, so every run is reproducible bit-for-bit across
// machines and Go versions. The core generator is splitmix64 (Steele,
// Lea, Flood; used as the seeding generator of xoshiro), which passes
// BigCrush and has a guaranteed full 2^64 period.
package xrand

import (
	"math"
	"math/bits"
)

// golden is the 64-bit golden-ratio increment used by splitmix64.
const golden = 0x9e3779b97f4a7c15

// RNG is a deterministic pseudo-random number generator based on
// splitmix64. The zero value is a valid generator seeded with 0.
//
// RNG is intentionally not safe for concurrent use; callers that need
// per-goroutine randomness should Split the generator instead of sharing
// it, which also keeps parallel runs deterministic regardless of
// scheduling order.
type RNG struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += golden
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split derives an independent generator from r in a deterministic way.
// The derived stream is decorrelated from the parent by hashing the
// parent's next output with a distinct multiplier.
func (r *RNG) Split() *RNG {
	return &RNG{state: Mix(r.Uint64() ^ 0x6a09e667f3bcc909)}
}

// Intn returns a uniform value in [0, n). It panics if n <= 0, matching
// the contract of math/rand.Intn; callers always pass positive bounds.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and avoids the
	// modulo. https://arxiv.org/abs/1805.10941
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n) using a
// Fisher-Yates shuffle.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1)
// using the Box-Muller transform. Used only by workload generators.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Mix applies the splitmix64 finalizer to x. It is a high-quality 64-bit
// hash usable for hash tables (see internal/cuckoo).
func Mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
