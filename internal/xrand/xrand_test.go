package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("step %d: %d != %d", i, got, want)
		}
	}
}

func TestKnownSplitMixVectors(t *testing.T) {
	// Reference outputs of splitmix64 seeded with 1234567, from the
	// public-domain C implementation by Sebastiano Vigna.
	r := New(1234567)
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("vector %d: got %d want %d", i, got, w)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between independent seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	// Chi-squared check over 10 buckets; threshold is the 99.9th
	// percentile of chi2 with 9 degrees of freedom (27.88).
	r := New(99)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(trials) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Fatalf("chi2 = %f too large; counts = %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(3)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(11)
	const trials = 200000
	for _, p := range []float64{0.1, 0.5, 0.9} {
		hits := 0
		for i := 0; i < trials; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		rate := float64(hits) / trials
		if math.Abs(rate-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) rate %v", p, rate)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitDecorrelated(t *testing.T) {
	parent := New(77)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between parent and split child", same)
	}
}

func TestMixInjectiveOnSample(t *testing.T) {
	// Mix is a bijection on uint64; check no collisions on a sample and
	// that it differs from identity.
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 10000; i++ {
		h := Mix(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix collision: Mix(%d) == Mix(%d)", i, prev)
		}
		seen[h] = i
	}
	if Mix(12345) == 12345 {
		t.Fatal("Mix looks like identity")
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(1)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(8)
	const trials = 100000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("variance %v too far from 1", variance)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = r.Intn(1000003)
	}
	_ = sink
}
