package bmm

import (
	"fmt"

	"msrp/internal/graph"
	"msrp/internal/lca"
	"msrp/internal/msrp"
	"msrp/internal/rp"
)

// This file implements the paper's Theorem 28 gadget reduction: Boolean
// matrix multiplication via ⌈√(n/σ)⌉ invocations of the MSRP algorithm
// on graphs with O(n) vertices and O(m) edges.
//
// # Gadget (one graph G_i per batch of σ·q rows, q = ⌈√(n/σ)⌉)
//
//	a-layer: a(0..n-1)        — edge a(x)–b(y) iff A[x][y] = 1
//	b-layer: b(0..n-1)        — edge b(x)–c(y) iff B[x][y] = 1
//	c-layer: c(0..n-1)
//	σ chains of q vertices v(1..q); the *last* vertex of each chain is
//	a source. Chain slot t (1-based) handles one matrix row via a
//	connector path of 2(t−1)+1 intermediate vertices to that row's
//	a-vertex.
//
// A source therefore reaches c(ℓ) through its slot-t row at distance
// exactly
//
//	signal(t) = (q − t) + 2t + 2 = q + t + 2
//
// (chain walk + connector + a–b + b–c). Failing the chain edge
// e_t = (v(t), v(t+1)) removes slots ≤ t from the source's reach.
//
// # Decoding, and a fix to the paper's text
//
// The paper decodes with equality tests on the distances (and its
// worked example contains an off-by-one: the slot-2 signal is q+4, not
// q+5). Equality decoding is fragile in an *undirected* gadget: a walk
// may re-cross the a–b boundary (a→b→a'→b'→c), arriving at
// q + t'' + 4 — indistinguishable from the genuine slot-(t''+2) signal.
// Threshold decoding is immune: every bounce walk costs at least
// q + t + 5 against a slot-t threshold of q + t + 2, and every genuine
// slot-t path costs exactly q + t + 2, so
//
//	C[row(t)][ℓ] = 1  ⟺  d(source, c(ℓ), e_{t−1}) ≤ q + t + 2,
//
// with the unfailed distance standing in when e_{t−1} is not on the
// canonical path (deleting an off-path edge cannot change the
// distance). DESIGN.md §3 records this deviation.

// ReductionStats reports the gadget dimensions for the E6 experiment.
type ReductionStats struct {
	NumGraphs    int
	ChainLen     int // q
	RowsPerGraph int // σ·q
	GadgetVerts  int
	GadgetEdges  int
	MSRPQueries  int64
	DecodedRows  int
}

// MultiplyViaMSRP computes C = A×B by running the MSRP solver on
// ⌈n/(σq)⌉ gadget graphs with σ sources each. The params control the
// inner MSRP runs; exactness of the product needs the solver's w.h.p.
// guarantees, so callers at toy sizes should boost sampling as the
// tests do.
func MultiplyViaMSRP(a, b *Matrix, sigma int, p msrp.Params) (*Matrix, *ReductionStats, error) {
	if a.n != b.n {
		return nil, nil, fmt.Errorf("bmm: size mismatch %d vs %d", a.n, b.n)
	}
	n := a.n
	if n == 0 {
		return NewMatrix(0), &ReductionStats{}, nil
	}
	if sigma < 1 {
		sigma = 1
	}
	q := 1
	for q*q < (n+sigma-1)/sigma {
		q++
	}
	rowsPerGraph := sigma * q
	numGraphs := (n + rowsPerGraph - 1) / rowsPerGraph

	c := NewMatrix(n)
	stats := &ReductionStats{
		NumGraphs:    numGraphs,
		ChainLen:     q,
		RowsPerGraph: rowsPerGraph,
	}
	for gi := 0; gi < numGraphs; gi++ {
		if err := solveGadget(a, b, c, gi, sigma, q, p, stats); err != nil {
			return nil, nil, err
		}
	}
	return c, stats, nil
}

// solveGadget builds gadget graph gi, runs MSRP, and decodes the rows
// it covers into c.
func solveGadget(a, b, c *Matrix, gi, sigma, q int, p msrp.Params, stats *ReductionStats) error {
	n := a.n
	rowBase := gi * sigma * q

	// Vertex ids: a-layer 0..n-1, b-layer n..2n-1, c-layer 2n..3n-1,
	// then σ chains of q vertices, then connector intermediates.
	aID := func(x int) int { return x }
	bID := func(y int) int { return n + y }
	cID := func(z int) int { return 2*n + z }
	vID := func(chain, t int) int { return 3*n + chain*q + (t - 1) } // t is 1-based

	// Count connector intermediates: slot t uses 2(t−1)+1 of them, for
	// every chain slot that maps to a real row (< n).
	intermediates := 0
	for chain := 0; chain < sigma; chain++ {
		for t := 1; t <= q; t++ {
			if row := rowBase + chain*q + (t - 1); row < n {
				intermediates += 2*(t-1) + 1
			}
		}
	}
	total := 3*n + sigma*q + intermediates
	bld := graph.NewBuilder(total)

	add := func(u, v int) error { return bld.AddEdge(u, v) }
	// Matrix edges.
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if a.Get(x, y) {
				if err := add(aID(x), bID(y)); err != nil {
					return err
				}
			}
			if b.Get(x, y) {
				if err := add(bID(x), cID(y)); err != nil {
					return err
				}
			}
		}
	}
	// Chains and connectors.
	next := 3*n + sigma*q // first intermediate id
	sources := make([]int32, sigma)
	for chain := 0; chain < sigma; chain++ {
		for t := 1; t < q; t++ {
			if err := add(vID(chain, t), vID(chain, t+1)); err != nil {
				return err
			}
		}
		sources[chain] = int32(vID(chain, q))
		for t := 1; t <= q; t++ {
			row := rowBase + chain*q + (t - 1)
			if row >= n {
				continue
			}
			// Path v(chain,t) — w_1 — … — w_k — a(row), k = 2(t−1)+1.
			prev := vID(chain, t)
			for k := 0; k < 2*(t-1)+1; k++ {
				if err := add(prev, next); err != nil {
					return err
				}
				prev = next
				next++
			}
			if err := add(prev, aID(row)); err != nil {
				return err
			}
		}
	}
	g, err := bld.Build()
	if err != nil {
		return err
	}
	stats.GadgetVerts += g.NumVertices()
	stats.GadgetEdges += g.NumEdges()

	sol, err := msrp.Solve(g, sources, p)
	if err != nil {
		return err
	}
	results := sol.Results
	stats.MSRPQueries += sol.Stats.Queries

	// Decode.
	for chain := 0; chain < sigma; chain++ {
		res := results[chain]
		tree := res.Tree
		anc := lca.NewAncestry(g, tree)
		for t := 1; t <= q; t++ {
			row := rowBase + chain*q + (t - 1)
			if row >= n {
				continue
			}
			stats.DecodedRows++
			threshold := int32(q + t + 2)
			// Failure edge e_{t-1} = (v(t-1), v(t)) selects slots >= t.
			var failEdge, failChild int32 = -1, -1
			if t >= 2 {
				e, ok := g.EdgeID(vID(chain, t-1), vID(chain, t))
				if !ok {
					return fmt.Errorf("bmm: missing chain edge (chain %d, t %d)", chain, t)
				}
				failEdge = e
				failChild, _ = tree.ChildEndpoint(g, e)
			}
			for z := 0; z < n; z++ {
				target := int32(cID(z))
				base := tree.Dist[target]
				if base < 0 {
					continue // unreachable: the whole column stays 0
				}
				d := base
				if failEdge >= 0 && failChild >= 0 && anc.IsAncestor(failChild, target) {
					// e_{t-1} lies on the canonical path: use the
					// replacement length. (An off-path deletion leaves
					// the distance unchanged, so `base` stands.)
					d = res.Avoid(target, int(tree.Dist[failChild])-1)
				}
				if d != rp.Inf && d <= threshold {
					c.Set(row, z, true)
				}
			}
		}
	}
	return nil
}
