package bmm

import (
	"testing"

	"msrp/internal/msrp"
	"msrp/internal/xrand"
)

func testParams(seed uint64) msrp.Params {
	p := msrp.DefaultParams()
	p.Seed = seed
	p.SampleBoost = 12
	p.SuffixScale = 0.25
	return p
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(70) // crosses a word boundary
	if m.Ones() != 0 {
		t.Fatal("fresh matrix not empty")
	}
	m.Set(0, 0, true)
	m.Set(69, 69, true)
	m.Set(3, 65, true)
	if !m.Get(0, 0) || !m.Get(69, 69) || !m.Get(3, 65) {
		t.Fatal("set bits not readable")
	}
	if m.Get(1, 1) {
		t.Fatal("unset bit reads true")
	}
	if m.Ones() != 3 {
		t.Fatalf("Ones = %d", m.Ones())
	}
	m.Set(0, 0, false)
	if m.Get(0, 0) || m.Ones() != 2 {
		t.Fatal("clear failed")
	}
}

func TestMultiplyAgainstNaive(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(60)
		a := Random(rng, n, 0.2)
		b := Random(rng, n, 0.2)
		fast, err := Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := MultiplyNaive(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(fast, slow) {
			t.Fatalf("trial %d: fast and naive products differ", trial)
		}
	}
}

func TestMultiplyIdentity(t *testing.T) {
	rng := xrand.New(2)
	a := Random(rng, 40, 0.3)
	id := Identity(40)
	left, _ := Multiply(id, a)
	right, _ := Multiply(a, id)
	if !Equal(left, a) || !Equal(right, a) {
		t.Fatal("identity multiplication changed the matrix")
	}
}

func TestMultiplySizeMismatch(t *testing.T) {
	if _, err := Multiply(NewMatrix(3), NewMatrix(4)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestReductionTiny(t *testing.T) {
	// Hand-checkable 3x3 instance.
	a := NewMatrix(3)
	b := NewMatrix(3)
	a.Set(0, 1, true)
	a.Set(2, 0, true)
	b.Set(1, 2, true)
	b.Set(0, 0, true)
	want, _ := Multiply(a, b) // C[0][2]=1, C[2][0]=1
	got, stats, err := MultiplyViaMSRP(a, b, 1, testParams(3))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Fatalf("reduction wrong on tiny instance: got %d ones want %d", got.Ones(), want.Ones())
	}
	if stats.NumGraphs == 0 || stats.DecodedRows != 3 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestReductionRandomSweep(t *testing.T) {
	rng := xrand.New(4)
	for trial := 0; trial < 6; trial++ {
		n := 6 + rng.Intn(18)
		density := 0.1 + 0.3*rng.Float64()
		a := Random(rng, n, density)
		b := Random(rng, n, density)
		sigma := 1 + rng.Intn(3)
		want, _ := Multiply(a, b)
		got, _, err := MultiplyViaMSRP(a, b, sigma, testParams(uint64(trial)+10))
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want) {
			diff := 0
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if got.Get(i, j) != want.Get(i, j) {
						diff++
					}
				}
			}
			t.Fatalf("trial %d (n=%d σ=%d dens=%.2f): %d wrong entries",
				trial, n, sigma, density, diff)
		}
	}
}

func TestReductionDenseAndSparse(t *testing.T) {
	rng := xrand.New(5)
	for _, density := range []float64{0, 0.05, 0.9, 1} {
		n := 10
		a := Random(rng, n, density)
		b := Random(rng, n, density)
		want, _ := Multiply(a, b)
		got, _, err := MultiplyViaMSRP(a, b, 2, testParams(uint64(density*100)+20))
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want) {
			t.Fatalf("density %v: reduction wrong", density)
		}
	}
}

func TestReductionSigmaInvariance(t *testing.T) {
	// The product must not depend on the σ chosen for the reduction.
	rng := xrand.New(6)
	a := Random(rng, 15, 0.25)
	b := Random(rng, 15, 0.25)
	want, _ := Multiply(a, b)
	for sigma := 1; sigma <= 4; sigma++ {
		got, _, err := MultiplyViaMSRP(a, b, sigma, testParams(uint64(sigma)+30))
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(got, want) {
			t.Fatalf("sigma=%d: reduction wrong", sigma)
		}
	}
}

func TestReductionEmptyMatrix(t *testing.T) {
	got, _, err := MultiplyViaMSRP(NewMatrix(0), NewMatrix(0), 1, testParams(7))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 0 {
		t.Fatal("empty product wrong")
	}
}

func BenchmarkMultiply(b *testing.B) {
	rng := xrand.New(1)
	x := Random(rng, 256, 0.1)
	y := Random(rng, 256, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multiply(x, y); err != nil {
			b.Fatal(err)
		}
	}
}
