// Package bmm implements Boolean matrix multiplication and the paper's
// §9 reduction from BMM to the Multiple Source Replacement Path
// problem (Theorem 28), which underlies the conditional lower bound
// Ω(m√(nσ)) of Theorem 2.
package bmm

import (
	"fmt"

	"msrp/internal/xrand"
)

// Matrix is a dense square Boolean matrix backed by 64-bit words.
type Matrix struct {
	n     int
	words int      // words per row
	bits  []uint64 // n * words
}

// NewMatrix returns an all-zero n×n Boolean matrix.
func NewMatrix(n int) *Matrix {
	words := (n + 63) / 64
	return &Matrix{n: n, words: words, bits: make([]uint64, n*words)}
}

// Size returns n.
func (m *Matrix) Size() int { return m.n }

// Set assigns m[i][j] = v.
func (m *Matrix) Set(i, j int, v bool) {
	w, b := m.words*i+j/64, uint(j%64)
	if v {
		m.bits[w] |= 1 << b
	} else {
		m.bits[w] &^= 1 << b
	}
}

// Get returns m[i][j].
func (m *Matrix) Get(i, j int) bool {
	return m.bits[m.words*i+j/64]&(1<<uint(j%64)) != 0
}

// Ones returns the number of set entries.
func (m *Matrix) Ones() int {
	total := 0
	for _, w := range m.bits {
		total += popcount(w)
	}
	return total
}

func popcount(x uint64) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

// Random returns an n×n matrix where each entry is 1 with the given
// probability.
func Random(rng *xrand.RNG, n int, density float64) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Bernoulli(density) {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// Equal reports whether two matrices are identical.
func Equal(a, b *Matrix) bool {
	if a.n != b.n {
		return false
	}
	for i := range a.bits {
		if a.bits[i] != b.bits[i] {
			return false
		}
	}
	return true
}

// Multiply returns C = A×B (Boolean) with the word-packed combinatorial
// algorithm: for every set A[i][k], OR row k of B into row i of C.
// O(n²·n/64) word operations — the standard "four Russians"-free
// combinatorial baseline the conjecture is stated against.
func Multiply(a, b *Matrix) (*Matrix, error) {
	if a.n != b.n {
		return nil, fmt.Errorf("bmm: size mismatch %d vs %d", a.n, b.n)
	}
	c := NewMatrix(a.n)
	for i := 0; i < a.n; i++ {
		ci := c.bits[i*c.words : (i+1)*c.words]
		for k := 0; k < a.n; k++ {
			if a.Get(i, k) {
				bk := b.bits[k*b.words : (k+1)*b.words]
				for w := range ci {
					ci[w] |= bk[w]
				}
			}
		}
	}
	return c, nil
}

// MultiplyNaive is the cubic reference used to validate Multiply.
func MultiplyNaive(a, b *Matrix) (*Matrix, error) {
	if a.n != b.n {
		return nil, fmt.Errorf("bmm: size mismatch %d vs %d", a.n, b.n)
	}
	c := NewMatrix(a.n)
	for i := 0; i < a.n; i++ {
		for j := 0; j < a.n; j++ {
			for k := 0; k < a.n; k++ {
				if a.Get(i, k) && b.Get(k, j) {
					c.Set(i, j, true)
					break
				}
			}
		}
	}
	return c, nil
}
