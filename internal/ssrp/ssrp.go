// Package ssrp implements the paper's Single Source Replacement Path
// algorithm (Gupta–Jain–Modi 2020, §6–7; Theorem 14): all replacement
// path lengths from one source in Õ(m√n + n²) time.
//
// # Pipeline
//
//  1. Preliminaries (§5): BFS tree T_s, leveled landmark family
//     L_0 … L_K with L ∋ s, a BFS tree and ancestry index per landmark
//     (internal/sample, internal/bfs, internal/lca).
//  2. d(s, r, e) for every landmark r and edge e on the canonical s→r
//     path, via the classical single-pair algorithm (internal/classic) —
//     Õ(m+n) each, Õ(m√n) total.
//  3. The §7.1 auxiliary graph + one Dijkstra run: small replacement
//     paths that avoid near edges (exact by Lemma 10's induction, with
//     no dependence on sampling).
//  4. Per-target combination: Algorithm 3 for far edges (scan L_k for
//     a landmark within 2^k·X of t), Algorithm 4 for near edges with
//     large replacement paths (scan L_0), both adding the candidate
//     d(s,r,e) + d(r,t).
//
// Every candidate any stage produces is the length of a concrete
// e-avoiding walk (soundness is unconditional); the sampling lemmas
// (9, 12, 13) make the minimum exact with probability ≥ 1 − 1/n.
package ssrp

import (
	"msrp/internal/graph"
	"msrp/internal/rp"
)

// Solve computes all replacement path lengths from the given source.
// It returns the result, observability counters, and an error only for
// invalid inputs (empty graph, source out of range, bad Params).
func Solve(g *graph.Graph, source int32, p Params) (*rp.Result, *Stats, error) {
	res, _, stats, err := solve(g, source, p, false)
	return res, stats, err
}

// SolvePaths is Solve with provenance tracking: the returned PerSource
// can expand any answer into a concrete replacement path via
// ReconstructPath. Tracking costs one provenance entry per answer.
func SolvePaths(g *graph.Graph, source int32, p Params) (*rp.Result, *PerSource, *Stats, error) {
	return solve(g, source, p, true)
}

func solve(g *graph.Graph, source int32, p Params, trackPaths bool) (*rp.Result, *PerSource, *Stats, error) {
	sh, err := NewShared(g, []int32{source}, p)
	if err != nil {
		return nil, nil, nil, err
	}
	stats := sh.newStats()
	ps := sh.NewPerSource(source)
	ps.TrackPaths = trackPaths || p.TrackPaths
	ps.BuildSmallNear()
	if ps.TrackPaths {
		// Reconstruction runs off the immutable witness snapshot, the
		// same plane the MSRP pipeline retains past ReleasePathState.
		ps.Snap = ps.Small.SnapshotProvenance()
	}
	stats.AuxNodes += int64(ps.Small.NumNodes)
	stats.AuxArcs += int64(ps.Small.NumArcs)
	ps.ComputeLenSRClassic()
	res := ps.Combine(stats)
	return res, ps, stats, nil
}
