package ssrp

import (
	"fmt"

	"msrp/internal/bfs"
	"msrp/internal/engine"
	"msrp/internal/graph"
	"msrp/internal/lca"
	"msrp/internal/rp"
	"msrp/internal/sample"
	"msrp/internal/xrand"
)

// Shared holds the preprocessing common to every source: the landmark
// family, one BFS tree and ancestry index per landmark, and the derived
// distance thresholds. It corresponds to the paper's §5 preliminaries.
type Shared struct {
	G       *graph.Graph
	Sources []int32
	Params  Params

	// X is the suffix unit √(n/σ)·log n (scaled); NearLimit = 2X.
	X         float64
	NearLimit float64
	// nearEdgeCap is the number of path positions with distance-from-
	// target strictly below NearLimit (i.e. max near edges per target).
	nearEdgeCap int

	// Landmarks is the leveled family L_0 … L_K; List its sorted union.
	Landmarks *sample.Levels
	List      []int32

	// Tree and Anc index landmark BFS trees/ancestries by vertex id.
	Tree map[int32]*bfs.Tree
	Anc  map[int32]*lca.Ancestry

	// Pool is the engine worker pool shared by every parallel stage of
	// this instance, sized by Params.Parallelism. Its scratch free list
	// carries per-worker buffers from stage to stage.
	Pool *engine.Pool

	rng *xrand.RNG
	// derived is the frozen split handed out by DeriveRNG; a stored
	// value (not the live rng) so DeriveRNG is idempotent — repeated
	// solves over one Shared sample identical center families.
	derived xrand.RNG
}

// NewShared runs the source-independent preprocessing for a σ-source
// instance: samples the landmark family with the paper's probabilities
// and builds a BFS tree plus ancestry index for every landmark.
// Cost: Õ(m√(nσ)).
func NewShared(g *graph.Graph, sources []int32, p Params) (*Shared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("%w: empty graph", ErrBadParams)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("%w: no sources", ErrBadParams)
	}
	seen := make(map[int32]struct{}, len(sources))
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("%w: source %d out of range [0,%d)", ErrBadParams, s, n)
		}
		if _, dup := seen[s]; dup {
			return nil, fmt.Errorf("%w: duplicate source %d", ErrBadParams, s)
		}
		seen[s] = struct{}{}
	}
	sigma := len(sources)

	sh := &Shared{
		G:       g,
		Sources: append([]int32(nil), sources...),
		Params:  p,
		Pool:    engine.New(p.Parallelism),
		rng:     xrand.New(p.Seed),
	}
	sh.X = p.suffixUnit(n, sigma)
	sh.NearLimit = 2 * sh.X
	if p.ExhaustiveNear {
		// Every edge near, every replacement path "small".
		sh.NearLimit = float64(n + 1)
		sh.X = sh.NearLimit / 2
	}
	sh.nearEdgeCap = intCeil(sh.NearLimit) - 1
	if sh.nearEdgeCap < 1 {
		sh.nearEdgeCap = 1
	}

	sh.Landmarks = sample.New(sh.rng.Split(), n, sigma, p.SampleBoost, sh.Sources)
	sh.derived = *sh.rng.Split()
	sh.List = sh.Landmarks.Union()

	forest := bfs.NewForest(g, sh.List, sh.Pool)
	sh.Tree = forest.Trees
	sh.Anc = BuildAncestries(g, sh.List, sh.Tree, sh.Pool)
	return sh, nil
}

// BuildAncestries constructs one ancestry index per root, sharded
// across the pool (roots are independent, each O(n)). Shared here and
// by the §8 center family.
func BuildAncestries(g *graph.Graph, roots []int32, trees map[int32]*bfs.Tree, pool *engine.Pool) map[int32]*lca.Ancestry {
	built := make([]*lca.Ancestry, len(roots))
	pool.Run(len(roots), func(i int) {
		built[i] = lca.NewAncestry(g, trees[roots[i]])
	})
	anc := make(map[int32]*lca.Ancestry, len(roots))
	for i, r := range roots {
		anc[r] = built[i]
	}
	return anc
}

// Sigma returns the number of sources σ.
func (sh *Shared) Sigma() int { return len(sh.Sources) }

// NearEdgeCap exposes the near-edge count bound (the number of path
// positions within NearLimit of a target). The MSRP readiness analysis
// uses it to bound how far from its source a §8.2.1 small-path walk can
// stray: every walk vertex sits within max landmark distance plus this
// cap (+1 for the prefix endpoint's adjacency hop).
func (sh *Shared) NearEdgeCap() int { return sh.nearEdgeCap }

// DeriveRNG returns a fresh deterministic generator derived from the
// instance seed; the MSRP layer uses it to sample its center family
// independently of the landmark draws. Every call returns a copy of
// the same frozen stream, so repeated solves over one Shared (the
// Oracle's Warm path) stay bit-identical.
func (sh *Shared) DeriveRNG() *xrand.RNG {
	c := sh.derived
	return &c
}

// NewStats exposes the landmark-size snapshot for callers outside the
// package (the MSRP solver shares the Stats shape).
func (sh *Shared) NewStats() *Stats { return sh.newStats() }

// FarBand exposes the near/far classification: the band k for a path
// edge at the given distance from the target, or -1 when near.
func (sh *Shared) FarBand(distFromT int32) int { return sh.farBand(distFromT) }

// farBand classifies a path edge at the given distance-from-target into
// a far band k (distance ∈ [2^{k+1}X, 2^{k+2}X)), or returns -1 when
// the edge is near (distance < 2X). Bands are clamped to the sampled
// level range.
func (sh *Shared) farBand(distFromT int32) int {
	d := float64(distFromT)
	if d < sh.NearLimit {
		return -1
	}
	k := 0
	threshold := sh.NearLimit * 2 // upper edge of band 0
	for d >= threshold && k < sh.Landmarks.MaxK {
		k++
		threshold *= 2
	}
	return k
}

// farThreshold returns the Algorithm 3 landmark-distance cutoff
// 2^k · X for band k.
func (sh *Shared) farThreshold(k int) float64 {
	return sh.X * float64(int64(1)<<uint(k))
}

// landmarksForBand returns the landmark set scanned for far band k:
// L_k normally, the dense L_0 under the FlatLandmarks ablation.
func (sh *Shared) landmarksForBand(k int) []int32 {
	if sh.Params.FlatLandmarks {
		return sh.Landmarks.Level(0)
	}
	return sh.Landmarks.Level(k)
}

func intCeil(x float64) int {
	i := int(x)
	if float64(i) < x {
		i++
	}
	return i
}

// Stats aggregates observability counters for the experiment harness
// (E3 landmark sizes, E9 auxiliary graph sizes).
type Stats struct {
	// Landmark family.
	LevelSizes []int
	UnionSize  int

	// §7.1 auxiliary graph (per source, summed over sources).
	AuxNodes int64
	AuxArcs  int64

	// Combine-stage work counters (candidate scans).
	FarScans       int64
	NearLargeScans int64

	// Output volume.
	Queries int64
}

// newStats snapshots the landmark sizes.
func (sh *Shared) newStats() *Stats {
	st := &Stats{UnionSize: len(sh.List)}
	for k := 0; k <= sh.Landmarks.MaxK; k++ {
		st.LevelSizes = append(st.LevelSizes, sh.Landmarks.Size(k))
	}
	return st
}

// inf is a local alias to keep expressions short.
const inf = rp.Inf
