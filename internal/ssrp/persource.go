package ssrp

import (
	"msrp/internal/bfs"
	"msrp/internal/classic"
	"msrp/internal/engine"
	"msrp/internal/lca"
	"msrp/internal/rp"
)

// PerSource carries the per-source state of the solver: the canonical
// tree T_s, the §7.1 small-near solution, and the replacement-path
// lengths from s to every landmark (filled by the classical algorithm
// in the single-source case, or by the §8 machinery in the multi-source
// case).
type PerSource struct {
	Sh   *Shared
	S    int32
	Ts   *bfs.Tree
	AncS *lca.Ancestry

	// Small answers the §7.1 queries; built by BuildSmallNear.
	Small *SmallNear

	// LenSR[r][i] = d(s, r, e_i) for the i-th edge of the canonical s→r
	// path. nil rows mean r is unreachable from s (or r == s).
	LenSR map[int32][]int32

	// TrackPaths enables provenance recording so ReconstructPath can
	// expand answers into concrete paths. The single-source pipeline
	// pairs it with classic crossing-edge witnesses; the multi-source
	// pipeline installs its §8 provenance plane via SetLandmarkPath.
	TrackPaths bool

	// Snap is the immutable §7.1 witness snapshot ReconstructPath
	// expands small answers from. It is taken before the heavyweight
	// path state is released (SnapshotProvenance), so reconstruction
	// keeps working under the MSRP pipeline's memory discipline.
	Snap *ProvSnapshot

	witness map[int32][]classic.Witness

	// landmarkPath, when set, expands the replacement path realizing
	// LenSR[r][i] — an s→r walk avoiding e_i of exactly that length.
	// The single-source solver leaves it nil (the classic witnesses in
	// `witness` serve that role); the MSRP solver installs its §8
	// provenance explain here.
	landmarkPath func(r int32, i int) ([]int32, error)

	prov [][]provEntry
}

// SetLandmarkPath installs the landmark-prefix expander ReconstructPath
// uses for answers won through a landmark (the multi-source provenance
// plane).
func (ps *PerSource) SetLandmarkPath(fn func(r int32, i int) ([]int32, error)) {
	ps.landmarkPath = fn
}

// ProvenanceBytes returns the per-source footprint of the retained
// provenance state — everything a tracked result keeps alive that an
// untracked result would have dropped: the §7.1 witness snapshot and
// the Value-lookup plane it reads, the per-answer provenance entries,
// the LenSR rows the explain machinery re-walks, and (single-source
// mode) the classic witnesses. Shared preprocessing (the landmark
// forest in Shared) is not charged: it outlives the result either way.
func (ps *PerSource) ProvenanceBytes() int64 {
	if !ps.TrackPaths {
		return 0
	}
	var b int64
	if ps.Snap != nil {
		b += ps.Snap.Bytes()
	}
	if ps.Small != nil {
		b += ps.Small.LookupStateBytes()
	}
	for _, row := range ps.prov {
		b += int64(len(row)) * 8 // kind + landmark id, padded
	}
	for _, ws := range ps.witness {
		b += int64(len(ws)) * 8 // two int32 endpoints
	}
	for _, row := range ps.LenSR {
		b += 4*int64(len(row)) + 16 // row + map-entry overhead
	}
	return b
}

// NewPerSource prepares per-source state. The source must be one of the
// sources given to NewShared (sources are forced landmarks, so their
// trees and ancestries are already built).
func (sh *Shared) NewPerSource(s int32) *PerSource {
	ts := sh.Tree[s]
	if ts == nil {
		panic("ssrp: source was not preprocessed; pass it to NewShared")
	}
	return &PerSource{
		Sh:   sh,
		S:    s,
		Ts:   ts,
		AncS: sh.Anc[s],
	}
}

// BuildSmallNear constructs and solves the §7.1 auxiliary graph.
func (ps *PerSource) BuildSmallNear() {
	ps.Small = buildSmallNear(ps, nil)
}

// BuildSmallNearScratch is BuildSmallNear reusing a per-worker scratch
// for the transient arc-builder arrays (the MSRP per-source fan-out).
func (ps *PerSource) BuildSmallNearScratch(sc *engine.Scratch) {
	ps.Small = buildSmallNear(ps, sc)
}

// ComputeLenSRClassic fills LenSR by running the classical single-pair
// replacement path algorithm from s to every landmark — the paper's
// single-source strategy (§3): Õ(m+n) per landmark, Õ(m√n) total.
// Landmarks are independent, so the runs shard across the instance
// pool, each worker reusing one scratch for the per-landmark O(n+m)
// working state. With TrackPaths set each run also stores the
// crossing-edge witnesses (same lengths, same sharding).
func (ps *PerSource) ComputeLenSRClassic() {
	ps.ComputeLenSRClassicPool(ps.Sh.Pool)
}

// ComputeLenSRClassicPool is ComputeLenSRClassic on an explicit engine
// pool. Callers that already fan out one level up — the Oracle's batch
// builder runs whole sources in parallel — pass a sequential pool here
// to keep the parallelism single-level.
func (ps *PerSource) ComputeLenSRClassicPool(pool *engine.Pool) {
	sh := ps.Sh
	rows := make([][]int32, len(sh.List))
	var wits [][]classic.Witness
	if ps.TrackPaths {
		wits = make([][]classic.Witness, len(sh.List))
	}
	pool.RunScratch(len(sh.List), func(i int, sc *engine.Scratch) {
		r := sh.List[i]
		if r == ps.S || !ps.Ts.Reachable(r) {
			return
		}
		if ps.TrackPaths {
			rows[i], wits[i] = classic.PairWitnessScratch(sh.G, ps.Ts, sh.Tree[r], r, sc)
		} else {
			rows[i] = classic.PairScratch(sh.G, ps.Ts, sh.Tree[r], r, sc)
		}
	})
	ps.LenSR = make(map[int32][]int32, len(sh.List))
	if ps.TrackPaths {
		ps.witness = make(map[int32][]classic.Witness, len(sh.List))
	}
	for i, r := range sh.List {
		if rows[i] != nil {
			ps.LenSR[r] = rows[i]
			if wits != nil {
				ps.witness[r] = wits[i]
			}
		}
	}
}

// SetLenSR installs externally computed landmark replacement lengths
// (the MSRP §8 pipeline). Rows follow the same convention as
// ComputeLenSRClassic.
func (ps *PerSource) SetLenSR(lenSR map[int32][]int32) {
	ps.LenSR = lenSR
}

// dSR returns d(s, r, e) where e is the path edge with index i on any
// canonical path through it. Three cases:
//   - r == s: the empty path avoids everything — 0.
//   - e not on the canonical s→r path: the canonical path itself avoids
//     e — |sr|.
//   - otherwise the precomputed replacement length (index identity: e's
//     index on the s→r path is also i).
func (ps *PerSource) dSR(r int32, i int, e int32) int32 {
	if r == ps.S {
		return 0
	}
	if !ps.Ts.Reachable(r) {
		return inf
	}
	if !ps.AncS.EdgeOnRootPath(ps.Sh.G, e, r) {
		return ps.Ts.Dist[r]
	}
	row := ps.LenSR[r]
	if row == nil || i >= len(row) {
		return inf
	}
	return row[i]
}

// DSR exposes dSR for the multi-source provenance plane, which re-walks
// the candidate space to explain a winning value.
func (ps *PerSource) DSR(r int32, i int, e int32) int32 { return ps.dSR(r, i, e) }

// Combine runs the per-target assembly (§6 far edges via Algorithm 3,
// §7.2 near-large via Algorithm 4, §7.1 small-near lookups, plus the
// free direct fill for landmark targets) and returns the full result.
func (ps *PerSource) Combine(stats *Stats) *rp.Result {
	sh := ps.Sh
	g := sh.G
	res := rp.NewResult(ps.Ts)
	if ps.TrackPaths {
		ps.prov = make([][]provEntry, g.NumVertices())
	}

	for t := int32(0); t < int32(g.NumVertices()); t++ {
		l := ps.Ts.Dist[t]
		if t == ps.S || l <= 0 {
			continue
		}
		row := res.Len[t]
		if stats != nil {
			stats.Queries += int64(l)
		}
		var provRow []provEntry
		if ps.TrackPaths {
			provRow = make([]provEntry, l)
			ps.prov[t] = provRow
		}

		// Landmark targets come for free: LenSR already holds every
		// edge of their canonical path (exactly, in the σ=1 case).
		if direct := ps.LenSR[t]; direct != nil {
			for i := range row {
				if direct[i] < row[i] {
					row[i] = direct[i]
					if provRow != nil {
						provRow[i] = provEntry{kind: provDirect, r: t}
					}
				}
			}
		}
		ps.combineTarget(t, row, provRow, stats)
	}
	return res
}

// CombineTarget lowers row[i] (the current bound on d(s,t,e_i)) using
// the per-edge candidate machinery: §7.1 small values and Algorithm 4
// for near edges, Algorithm 3 for far edges. The row must have
// Ts.Dist[t] entries. Exposed separately because the MSRP pipeline
// applies it to landmark targets as a fixpoint sweep over LenSR.
func (ps *PerSource) CombineTarget(t int32, row []int32, stats *Stats) {
	ps.combineTarget(t, row, nil, stats)
}

func (ps *PerSource) combineTarget(t int32, row []int32, provRow []provEntry, stats *Stats) {
	sh := ps.Sh
	level0 := sh.Landmarks.Level(0)
	l := ps.Ts.Dist[t]
	x := t // x = x_{i+1}: child endpoint of e_i during the walk
	for i := l - 1; i >= 0; i-- {
		e := ps.Ts.ParentEdge[x]
		distFromT := l - i
		if k := sh.farBand(distFromT); k < 0 {
			ps.combineNear(t, int(i), e, row, provRow, level0, stats)
		} else {
			ps.combineFar(t, int(i), e, k, row, provRow, stats)
		}
		x = ps.Ts.Parent[x]
	}
}

// combineNear handles a near edge: the §7.1 small value plus
// Algorithm 4's scan of L_0 for large replacement paths.
func (ps *PerSource) combineNear(t int32, i int, e int32, row []int32, provRow []provEntry, level0 []int32, stats *Stats) {
	if v := ps.Small.Value(t, i); v < row[i] {
		row[i] = v
		if provRow != nil {
			provRow[i] = provEntry{kind: provSmall}
		}
	}
	sh := ps.Sh
	for _, r := range level0 {
		if stats != nil {
			stats.NearLargeScans++
		}
		tr := sh.Tree[r]
		dt := tr.Dist[t]
		if dt < 0 {
			continue
		}
		// Lemma 13 guarantees a useful r has e off its canonical path;
		// checking it also keeps the candidate sound unconditionally.
		if sh.Anc[r].EdgeOnRootPath(sh.G, e, t) {
			continue
		}
		d := ps.dSR(r, i, e)
		if d >= inf {
			continue
		}
		if cand := d + dt; cand < row[i] {
			row[i] = cand
			if provRow != nil {
				provRow[i] = provEntry{kind: provVia, r: r}
			}
		}
	}
}

// combineFar handles a k-far edge via Algorithm 3: scan L_k for
// landmarks within the band's distance threshold of t.
func (ps *PerSource) combineFar(t int32, i int, e int32, k int, row []int32, provRow []provEntry, stats *Stats) {
	sh := ps.Sh
	thr := sh.farThreshold(k)
	for _, r := range sh.landmarksForBand(k) {
		if stats != nil {
			stats.FarScans++
		}
		tr := sh.Tree[r]
		dt := tr.Dist[t]
		if dt < 0 || float64(dt) > thr {
			continue
		}
		// The distance argument (d(e,t) ≥ 2·thr) already implies no
		// shortest r→t path uses e; the explicit check makes soundness
		// independent of the floating-point band arithmetic.
		if sh.Anc[r].EdgeOnRootPath(sh.G, e, t) {
			continue
		}
		d := ps.dSR(r, i, e)
		if d >= inf {
			continue
		}
		if cand := d + dt; cand < row[i] {
			row[i] = cand
			if provRow != nil {
				provRow[i] = provEntry{kind: provVia, r: r}
			}
		}
	}
}
