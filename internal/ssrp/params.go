package ssrp

import (
	"errors"
	"fmt"
	"math"
)

// Params controls the randomized machinery shared by the SSRP and MSRP
// solvers. The zero value is not valid; start from DefaultParams.
type Params struct {
	// Seed drives all sampling. Fixed seed ⇒ bit-identical runs.
	Seed uint64

	// SampleBoost multiplies every landmark/center sampling probability
	// p_k = min(1, Boost · 4/2^k · √(σ/n)). The paper's analysis uses
	// Boost = 1; tests raise it so the "with high probability" lemmas
	// hold at toy sizes.
	SampleBoost float64

	// SuffixScale multiplies the suffix-length unit
	// X = Scale · √(n/σ) · log₂(n). Near edges lie at distance < 2X
	// from the target; k-far edges at [2^{k+1}X, 2^{k+2}X). Lemma 9's
	// failure probability is n^(−4·Boost·Scale), so keep
	// Boost·Scale ≥ 1.
	SuffixScale float64

	// Parallelism bounds the worker goroutines of the execution engine
	// (internal/engine) across every parallel stage: landmark/center BFS
	// forests, the per-landmark classical runs, and the per-source and
	// per-center MSRP pipeline stages. 1 means sequential; values <= 0
	// select GOMAXPROCS. Output is identical for every value (the engine
	// only shards index-owned work).
	Parallelism int

	// ExhaustiveNear forces every edge to be "near" and every
	// replacement path "small", so the §7.1 auxiliary graph alone
	// answers everything. This mode needs no sampling lemmas at all —
	// it is deterministically exact (Lemma 10's induction is
	// unconditional) — at the cost of a Θ(m·diam)-arc auxiliary graph.
	// Used as a self-check oracle and in ablations.
	ExhaustiveNear bool

	// FlatLandmarks is the E7 ablation: disable the paper's scaling
	// trick and use the dense level-0 landmark set for every far band
	// instead of the geometrically thinned L_k. Output is unchanged
	// (level 0 dominates every L_k in hit probability); the far-edge
	// stage slows from Õ(n) to Õ(n√(nσ)) per target.
	FlatLandmarks bool

	// BarrierPipeline disables the cross-stage pipelining of the MSRP
	// solve's per-source stages: the §7.1/§8.1 builds of every source
	// run to completion before the first §8.2.1 seed shard is
	// enumerated (the pre-pipeline schedule), instead of each source
	// flowing build → enumerate with no barrier until the shard merge.
	// Output is bit-identical either way (the merge is commutative and
	// idempotent); the flag exists for the E14 comparison and the
	// pipeline regression tests. The barrier schedule also holds every
	// source's §7.1 path-expansion state live at once — Θ(σ·aux) versus
	// the pipelined Θ(P·aux) — which Stats.PeakSeedPathBytes measures.
	BarrierPipeline bool

	// SeedMergeBarrier keeps the per-source pipelining (build → seed
	// enumeration flows without a barrier) but retains the stop-the-world
	// seed-shard merge and the barriered §8.2.2 stage that follow it —
	// the schedule the pipelined solve shipped with before the
	// readiness-gated streaming merge. The default (both this and
	// BarrierPipeline false) streams instead: shard entries scatter into
	// per-center-partition merge targets as each source retires, frozen
	// partitions release their centers' §8.2.2 builds while other
	// sources are still building or merging. Output is bit-identical in
	// all three schedules (the merge is commutative and idempotent, and
	// every partition is read only after its freeze); the flag exists for
	// the E20 comparison and the schedule-equivalence regression tests.
	// BarrierPipeline=true supersedes this flag.
	SeedMergeBarrier bool

	// TrackPaths records provenance during the solve — one entry per
	// answer plus the compact per-source witness snapshots — so
	// PerSource.ReconstructPath can expand any finite answer into a
	// concrete replacement path. Supported by both the single-source
	// pipeline (classic crossing-edge witnesses) and the multi-source §8
	// pipeline (the provenance plane in internal/msrp). Lengths are
	// bit-identical with tracking on or off: tracking only observes the
	// solve, it never steers it.
	TrackPaths bool

	// PaperBottleneck selects the paper's literal §8.3 assembly in the
	// multi-source solver (bottleneck edges + the §8.3.2 auxiliary
	// graph, no fixpoint sweeps) instead of the default sound
	// interval-avoidance assembly. Compared by experiment E10; see
	// DESIGN.md §3 for the terminal-interval caveat.
	PaperBottleneck bool
}

// DefaultParams returns the paper-faithful parameter set.
func DefaultParams() Params {
	return Params{
		Seed:        1,
		SampleBoost: 1,
		SuffixScale: 1,
		Parallelism: 1,
	}
}

// ErrBadParams wraps parameter validation failures.
var ErrBadParams = errors.New("ssrp: invalid parameters")

// Validate checks the parameter combination.
func (p Params) Validate() error {
	if p.SampleBoost <= 0 {
		return fmt.Errorf("%w: SampleBoost = %v", ErrBadParams, p.SampleBoost)
	}
	if p.SuffixScale <= 0 {
		return fmt.Errorf("%w: SuffixScale = %v", ErrBadParams, p.SuffixScale)
	}
	// TrackPaths + PaperBottleneck is accepted: the §8.3 bottleneck
	// assembly has no provenance plane (its sr ⋄ B values come from the
	// §8.3.2 graph, which is build-run-discard), so the multi-source
	// solver downgrades tracking per source — lengths are served, path
	// queries fail per query (ErrPathsNotTracked at the public layer)
	// instead of the whole solve being rejected here.
	return nil
}

// suffixUnit computes X for the given graph/source-set size.
func (p Params) suffixUnit(n, sigma int) float64 {
	logn := math.Log2(float64(n))
	if logn < 1 {
		logn = 1
	}
	return p.SuffixScale * math.Sqrt(float64(n)/float64(sigma)) * logn
}
