package ssrp

import (
	"testing"

	"msrp/internal/graph"
	"msrp/internal/naive"
	"msrp/internal/rp"
	"msrp/internal/xrand"
)

// verifyReconstruction checks that every answer with a finite length
// expands into a genuine replacement path: right endpoints, adjacent
// steps, avoided edge absent, and length exactly equal to both the
// reported and the true replacement length.
func verifyReconstruction(t *testing.T, g *graph.Graph, s int32, p Params) {
	t.Helper()
	res, ps, _, err := SolvePaths(g, s, p)
	if err != nil {
		t.Fatal(err)
	}
	want := naive.SSRP(g, s)
	if d := rp.Diff(want, res); d != "" {
		t.Fatalf("lengths wrong before reconstruction: %s", d)
	}
	checked := 0
	for tt := int32(0); tt < int32(g.NumVertices()); tt++ {
		edges := res.Tree.PathEdgesTo(tt)
		for i := range res.Len[tt] {
			path, err := ps.ReconstructPath(tt, i)
			if err != nil {
				t.Fatalf("t=%d i=%d: %v", tt, i, err)
			}
			if res.Len[tt][i] == rp.Inf {
				if path != nil {
					t.Fatalf("t=%d i=%d: path returned for Inf answer", tt, i)
				}
				continue
			}
			if path == nil {
				t.Fatalf("t=%d i=%d: nil path for finite answer %d", tt, i, res.Len[tt][i])
			}
			if path[0] != s || path[len(path)-1] != tt {
				t.Fatalf("t=%d i=%d: endpoints %d..%d", tt, i, path[0], path[len(path)-1])
			}
			if int32(len(path)-1) != res.Len[tt][i] {
				t.Fatalf("t=%d i=%d: path length %d != reported %d",
					tt, i, len(path)-1, res.Len[tt][i])
			}
			for j := 0; j+1 < len(path); j++ {
				id, ok := g.EdgeID(int(path[j]), int(path[j+1]))
				if !ok {
					t.Fatalf("t=%d i=%d: non-adjacent step %d-%d", tt, i, path[j], path[j+1])
				}
				if id == edges[i] {
					t.Fatalf("t=%d i=%d: path uses the avoided edge", tt, i)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("nothing reconstructed")
	}
}

func TestReconstructCycle(t *testing.T) {
	verifyReconstruction(t, graph.Cycle(40), 0, testParams(1))
}

func TestReconstructGrid(t *testing.T) {
	verifyReconstruction(t, graph.Grid(5, 8), 0, testParams(2))
	verifyReconstruction(t, graph.Grid(2, 25), 10, testParams(3))
}

func TestReconstructRandom(t *testing.T) {
	rng := xrand.New(4)
	for trial := 0; trial < 8; trial++ {
		n := 25 + rng.Intn(40)
		g := graph.RandomConnected(rng, n, n+rng.Intn(2*n))
		verifyReconstruction(t, g, int32(rng.Intn(n)), testParams(uint64(trial)+10))
	}
}

func TestReconstructCycleChords(t *testing.T) {
	rng := xrand.New(5)
	g := graph.CycleWithChords(rng, 60, 5)
	verifyReconstruction(t, g, 0, testParams(6))
}

func TestReconstructBarbell(t *testing.T) {
	// Mixes Inf (bridges) and finite answers.
	verifyReconstruction(t, graph.Barbell(5, 4), 0, testParams(7))
}

func TestReconstructWithoutTrackingFails(t *testing.T) {
	g := graph.Cycle(10)
	_, _, err := Solve(g, 0, testParams(8))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := NewShared(g, []int32{0}, testParams(8))
	if err != nil {
		t.Fatal(err)
	}
	ps := sh.NewPerSource(0)
	if _, err := ps.ReconstructPath(3, 0); err == nil {
		t.Fatal("expected error without TrackPaths")
	}
}

// TestPathVerticesIntoMatches: the scratch-backed variant must agree
// with PathVertices on every (target, near-edge) pair and reuse the
// caller's buffer when it has the capacity — the §8.2.1 seed-table
// enumeration relies on both.
func TestPathVerticesIntoMatches(t *testing.T) {
	g := graph.CycleWithChords(xrand.New(8), 40, 10)
	sh, err := NewShared(g, []int32{0}, testParams(9))
	if err != nil {
		t.Fatal(err)
	}
	ps := sh.NewPerSource(0)
	ps.BuildSmallNear()
	// Roomy: a small replacement walk can be longer than n−1 (it is a
	// walk, not necessarily a simple path), just never 2n at this size.
	buf := make([]int32, 2*g.NumVertices())
	pairs, reused := 0, 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		l := ps.Ts.Dist[v]
		for i := ps.Small.NearStart(v); i < l; i++ {
			want := ps.Small.PathVertices(v, int(i))
			got := ps.Small.PathVerticesInto(buf, v, int(i))
			if (want == nil) != (got == nil) || len(want) != len(got) {
				t.Fatalf("t=%d i=%d: len %d vs %d", v, i, len(got), len(want))
			}
			if want == nil {
				continue
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("t=%d i=%d: vertex %d = %d, want %d", v, i, j, got[j], want[j])
				}
			}
			pairs++
			if &got[0] == &buf[0] {
				reused++
			}
		}
	}
	if pairs == 0 {
		t.Fatal("no small paths found — instance too sparse for the test")
	}
	if reused != pairs {
		t.Fatalf("buffer reused on %d of %d paths", reused, pairs)
	}
}

// TestSnapshotMatchesLiveAndSurvivesRelease pins the ProvSnapshot
// contract: its expansions are identical to the live SmallNear's for
// every (target, near-edge) pair, and they keep working after
// ReleasePathState frees the heavy state (the MSRP pipeline's memory
// discipline), while the live expansion is then a programming error.
func TestSnapshotMatchesLiveAndSurvivesRelease(t *testing.T) {
	g := graph.CycleWithChords(xrand.New(12), 48, 8)
	sh, err := NewShared(g, []int32{0}, testParams(12))
	if err != nil {
		t.Fatal(err)
	}
	ps := sh.NewPerSource(0)
	ps.BuildSmallNear()
	snap := ps.Small.SnapshotProvenance()
	if snap.Bytes() <= 0 {
		t.Fatal("snapshot reports no bytes")
	}

	type key struct {
		t int32
		i int
	}
	want := make(map[key][]int32)
	for tt := int32(0); tt < int32(g.NumVertices()); tt++ {
		for i := ps.Small.NearStart(tt); i < ps.Ts.Dist[tt]; i++ {
			live := ps.Small.PathVertices(tt, int(i))
			got := snap.PathVertices(tt, int(i))
			if (live == nil) != (got == nil) {
				t.Fatalf("t=%d i=%d: live %v, snapshot %v", tt, i, live, got)
			}
			if live == nil {
				continue
			}
			if len(live) != len(got) {
				t.Fatalf("t=%d i=%d: live len %d, snapshot len %d", tt, i, len(live), len(got))
			}
			for j := range live {
				if live[j] != got[j] {
					t.Fatalf("t=%d i=%d: vertex %d differs (%d vs %d)", tt, i, j, live[j], got[j])
				}
			}
			want[key{tt, int(i)}] = got
		}
	}
	if len(want) == 0 {
		t.Fatal("no small paths found")
	}

	ps.Small.ReleasePathState()
	for k, w := range want {
		got := snap.PathVertices(k.t, k.i)
		if len(got) != len(w) {
			t.Fatalf("after release t=%d i=%d: len %d, want %d", k.t, k.i, len(got), len(w))
		}
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("after release t=%d i=%d: vertex %d differs", k.t, k.i, j)
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("live PathVertices after release did not panic")
			}
		}()
		for k := range want {
			ps.Small.PathVertices(k.t, k.i)
			break
		}
	}()
}

// TestTrackPathsAcceptsPaperBottleneck: the §8.3 assembly has no
// provenance plane of its own, but the combination validates — the
// multi-source solver downgrades tracking per source (lengths served,
// path queries fail per query with ErrPathsNotTracked) instead of
// rejecting the whole solve.
func TestTrackPathsAcceptsPaperBottleneck(t *testing.T) {
	p := testParams(1)
	p.TrackPaths = true
	p.PaperBottleneck = true
	if err := p.Validate(); err != nil {
		t.Fatalf("TrackPaths + PaperBottleneck rejected: %v", err)
	}
}
