package ssrp

import "msrp/internal/rp"

// The provenance snapshot: the compact, immutable witness state that
// lets a small replacement path (§7.1) be expanded long after the
// heavyweight solver state is gone.
//
// The §7.1 Dijkstra's full path-expansion state is Θ(aux) per source:
// a parent pointer for every auxiliary node — the n vertex-layer nodes
// *and* the [t,e] lattice — plus the [t,e]→target map. The MSRP
// pipeline releases it per source right after the §8.2.1 seed shard is
// enumerated (SmallNear.ReleasePathState), which is what keeps the
// pipelined solve's pre-merge peak at Θ(P·aux). Path tracking therefore
// cannot lean on that state: it snapshots the part that actually
// witnesses paths — the [t,e] lattice only — into a ProvSnapshot before
// the release.
//
// Two observations make the snapshot both sufficient and compact:
//
//   - A vertex-layer node's parent is always the root (the only arcs
//     into [v] are [s] → [v]), so the n vertex-layer parents carry no
//     information: the canonical tree T_s already expands that prefix.
//   - A [t,e] node's parent chain (its witness structure: which
//     neighbour-hop lattice arcs won, and which detour anchor [v] the
//     chain enters the vertex layer at) is exactly res.Parent[n:], and
//     each chain node appends exactly one graph vertex, teVertex.
//
// So the snapshot is two int32 arrays over the [t,e] lattice — 8 bytes
// per lattice node, byte-accounted by Bytes() — and nothing else.
type ProvSnapshot struct {
	sn *SmallNear // retained lookup state: teBase/startIdx/Dist stay live

	// teParent[node−n] is the Dijkstra parent of [t,e] node `node`:
	// another lattice node (≥ n) or the detour-anchor vertex node (< n).
	teParent []int32
	// teVertex[node−n] is the graph vertex the lattice node appends —
	// adopted (not copied) from the SmallNear just before release.
	teVertex []int32
}

// SnapshotProvenance extracts the compact path-witness state of the
// §7.1 solution. It must be called before ReleasePathState (the MSRP
// pipeline snapshots between a source's seed-shard enumeration and the
// release; the single-source solver right after the build). The
// returned snapshot is immutable and safe for concurrent readers.
func (sn *SmallNear) SnapshotProvenance() *ProvSnapshot {
	if sn.released {
		panic("ssrp: SnapshotProvenance must run before ReleasePathState")
	}
	snap := &ProvSnapshot{
		sn:       sn,
		teParent: append([]int32(nil), sn.res.Parent[sn.n:]...),
		teVertex: sn.teVertex,
	}
	return snap
}

// Bytes returns the snapshot's retained footprint (the provenance-plane
// accounting unit rolled up into OracleStats.ProvenanceBytes).
func (snap *ProvSnapshot) Bytes() int64 {
	return 4*int64(len(snap.teParent)) + 4*int64(len(snap.teVertex))
}

// PathVertices expands the winning small replacement path for (t, i)
// into its graph-vertex sequence (source first, t last), or nil when no
// small path was found. Semantically identical to
// SmallNear.PathVertices, but reads only the snapshot — it keeps
// working after ReleasePathState.
func (snap *ProvSnapshot) PathVertices(t int32, i int) []int32 {
	return snap.PathVerticesInto(nil, t, i)
}

// PathVerticesInto is PathVertices writing into dst's backing array
// when it has the capacity.
func (snap *ProvSnapshot) PathVerticesInto(dst []int32, t int32, i int) []int32 {
	sn := snap.sn
	n := int32(sn.n)
	base := sn.teBase[t]
	if base < 0 || int32(i) < sn.startIdx[t] || int32(i) >= sn.ps.Ts.Dist[t] {
		return nil
	}
	node := base + (int32(i) - sn.startIdx[t])
	if sn.res.Dist[node] >= int64(rp.Inf) {
		return nil
	}
	// The witness chain is a run of [t',e] lattice nodes ending at the
	// detour-anchor vertex node whose canonical prefix completes the
	// walk. First pass: count the tail and find the anchor; second
	// pass: fill in place.
	tailLen := 0
	v := node
	for v >= n {
		tailLen++
		v = snap.teParent[v-n]
	}
	prefixLen := int(sn.ps.Ts.Dist[v]) + 1
	total := prefixLen + tailLen
	if cap(dst) < total {
		dst = make([]int32, total)
	} else {
		dst = dst[:total]
	}
	for j, x := prefixLen-1, v; j >= 0; j-- {
		dst[j] = x
		x = sn.ps.Ts.Parent[x]
	}
	for j, x := total-1, node; x >= n; j-- {
		dst[j] = snap.teVertex[x-n]
		x = snap.teParent[x-n]
	}
	return dst
}
