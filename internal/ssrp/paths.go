package ssrp

import (
	"fmt"
)

// Path reconstruction: when Params.TrackPaths is set, the solvers
// record, for every (target, path-edge) answer, *which* candidate won —
// enough to expand the actual replacement path on demand. The paper
// computes lengths only; reconstruction is this implementation's
// extension, and it powers the fault-tolerant preserver
// (internal/preserver), the serving layer's path queries, and a second
// layer of validation (an expanded path whose length matches the
// reported length *is* a certificate of soundness).
//
// Provenance kinds mirror the candidate sources in Combine:
//
//	provSmall  — the §7.1 auxiliary-graph value; expanded from the
//	             immutable witness snapshot (ProvSnapshot), so it keeps
//	             working after the heavy path state is released.
//	provVia    — d(s,r,e) + d(r,t) through landmark r (Algorithm 3 or
//	             4); expands to a d(s,r,e)-realizing path (a classic
//	             crossing-edge witness in the single-source pipeline,
//	             the §8 provenance plane in the multi-source one, or the
//	             canonical s→r path when e is off it) followed by the
//	             canonical r→t path.
//	provDirect — a landmark target served by its own LenSR row.
const (
	provNone int8 = iota
	provSmall
	provVia
	provDirect
)

type provEntry struct {
	kind int8
	r    int32 // the landmark for provVia
}

// ReconstructPath expands the replacement path for target t avoiding
// the i-th edge of its canonical path. It returns nil when no
// replacement path exists, and an error when path tracking was not
// enabled or no provenance was recorded (which would be a bug).
func (ps *PerSource) ReconstructPath(t int32, i int) ([]int32, error) {
	if !ps.TrackPaths {
		return nil, fmt.Errorf("ssrp: Params.TrackPaths was not enabled")
	}
	if ps.prov == nil || t < 0 || int(t) >= len(ps.prov) || i < 0 || i >= len(ps.prov[t]) {
		return nil, fmt.Errorf("ssrp: no provenance for t=%d i=%d", t, i)
	}
	entry := ps.prov[t][i]
	switch entry.kind {
	case provNone:
		return nil, nil // Inf: no replacement path
	case provSmall:
		if ps.Snap == nil {
			return nil, fmt.Errorf("ssrp: provenance snapshot missing for t=%d i=%d (bug: solver did not SnapshotProvenance)", t, i)
		}
		return ps.Snap.PathVertices(t, i), nil
	case provDirect:
		return ps.landmarkPrefix(t, i)
	case provVia:
		return ps.reconstructVia(entry.r, t, i)
	}
	return nil, fmt.Errorf("ssrp: unknown provenance kind %d", entry.kind)
}

// landmarkPrefix expands a d(s,r,e_i)-realizing path (the LenSR[r][i]
// value): through the installed multi-source provenance plane when one
// is set, else through the classic crossing-edge witnesses the
// single-source pipeline records.
func (ps *PerSource) landmarkPrefix(r int32, i int) ([]int32, error) {
	if ps.landmarkPath != nil {
		return ps.landmarkPath(r, i)
	}
	ws := ps.witness[r]
	if ws == nil || i >= len(ws) {
		return nil, fmt.Errorf("ssrp: missing witness for landmark %d index %d", r, i)
	}
	p := ws[i].BuildPath(ps.Ts, ps.Sh.Tree[r])
	if p == nil {
		return nil, fmt.Errorf("ssrp: provenance via landmark %d but witness is no-path", r)
	}
	return p, nil
}

// reconstructVia expands d(s,r,e) + canonical(r→t).
func (ps *PerSource) reconstructVia(r, t int32, i int) ([]int32, error) {
	e := ps.EdgeAt(t, i)
	var prefix []int32
	switch {
	case r == ps.S:
		prefix = []int32{ps.S}
	case !ps.AncS.EdgeOnRootPath(ps.Sh.G, e, r):
		prefix = ps.Ts.PathTo(r) // canonical s→r avoids e outright
	default:
		var err error
		if prefix, err = ps.landmarkPrefix(r, i); err != nil {
			return nil, err
		}
	}
	suffix := ps.Sh.Tree[r].PathTo(t) // r … t
	out := make([]int32, 0, len(prefix)+len(suffix)-1)
	out = append(out, prefix...)
	out = append(out, suffix[1:]...)
	return out, nil
}

// EdgeAt returns the edge id at position i of the canonical path to t
// (O(depth) walk; reconstruction is an on-demand operation). Exposed
// for the multi-source provenance plane, which shares the indexing.
func (ps *PerSource) EdgeAt(t int32, i int) int32 {
	x := t
	for d := int(ps.Ts.Dist[t]) - 1; d > i; d-- {
		x = ps.Ts.Parent[x]
	}
	return ps.Ts.ParentEdge[x]
}
