package ssrp

import (
	"fmt"

	"msrp/internal/classic"
)

// Path reconstruction: when Params.TrackPaths is set, the single-source
// solver records, for every (target, path-edge) answer, *which*
// candidate won — enough to expand the actual replacement path on
// demand. The paper computes lengths only; reconstruction is this
// implementation's extension, and it powers the fault-tolerant
// preserver (internal/preserver) and a second layer of validation
// (an expanded path whose length matches the reported length *is* a
// certificate of soundness).
//
// Provenance kinds mirror the candidate sources in Combine:
//
//	provSmall  — the §7.1 auxiliary-graph value; the Dijkstra
//	             predecessor chain expands it.
//	provVia    — d(s,r,e) + d(r,t) through landmark r (Algorithm 3 or
//	             4); expands to the (s,r,e) replacement path (a classic
//	             crossing-edge witness, or the canonical s→r path when
//	             e is off it) followed by the canonical r→t path.
//	provDirect — a landmark target served by its own classic row.
const (
	provNone int8 = iota
	provSmall
	provVia
	provDirect
)

type provEntry struct {
	kind int8
	r    int32 // the landmark for provVia
}

// ReconstructPath expands the replacement path for target t avoiding
// the i-th edge of its canonical path. It returns nil when no
// replacement path exists, and an error when path tracking was not
// enabled or no provenance was recorded (which would be a bug).
func (ps *PerSource) ReconstructPath(t int32, i int) ([]int32, error) {
	if !ps.TrackPaths {
		return nil, fmt.Errorf("ssrp: Params.TrackPaths was not enabled")
	}
	if ps.prov == nil || int(t) >= len(ps.prov) || i >= len(ps.prov[t]) {
		return nil, fmt.Errorf("ssrp: no provenance for t=%d i=%d", t, i)
	}
	entry := ps.prov[t][i]
	switch entry.kind {
	case provNone:
		return nil, nil // Inf: no replacement path
	case provSmall:
		return ps.Small.PathVertices(t, i), nil
	case provDirect:
		w := ps.witness[t][i]
		return w.BuildPath(ps.Ts, ps.Sh.Tree[t]), nil
	case provVia:
		return ps.reconstructVia(entry.r, t, i)
	}
	return nil, fmt.Errorf("ssrp: unknown provenance kind %d", entry.kind)
}

// reconstructVia expands d(s,r,e) + canonical(r→t).
func (ps *PerSource) reconstructVia(r, t int32, i int) ([]int32, error) {
	e := ps.edgeAtIndex(t, i)
	var prefix []int32
	switch {
	case r == ps.S:
		prefix = []int32{ps.S}
	case !ps.AncS.EdgeOnRootPath(ps.Sh.G, e, r):
		prefix = ps.Ts.PathTo(r) // canonical s→r avoids e outright
	default:
		ws := ps.witness[r]
		if ws == nil || i >= len(ws) {
			return nil, fmt.Errorf("ssrp: missing witness for landmark %d edge %d", r, i)
		}
		prefix = ws[i].BuildPath(ps.Ts, ps.Sh.Tree[r])
		if prefix == nil {
			return nil, fmt.Errorf("ssrp: provenance via landmark %d but witness is no-path", r)
		}
	}
	suffix := ps.Sh.Tree[r].PathTo(t) // r … t
	out := make([]int32, 0, len(prefix)+len(suffix)-1)
	out = append(out, prefix...)
	out = append(out, suffix[1:]...)
	return out, nil
}

// edgeAtIndex returns the edge id at position i of the canonical path
// to t (O(depth) walk; reconstruction is an on-demand operation).
func (ps *PerSource) edgeAtIndex(t int32, i int) int32 {
	x := t
	for d := int(ps.Ts.Dist[t]) - 1; d > i; d-- {
		x = ps.Ts.Parent[x]
	}
	return ps.Ts.ParentEdge[x]
}

// computeWitnesses fills the per-landmark classic witnesses (TrackPaths
// mode of ComputeLenSRClassic).
func (ps *PerSource) computeWitnesses() {
	sh := ps.Sh
	ps.LenSR = make(map[int32][]int32, len(sh.List))
	ps.witness = make(map[int32][]classic.Witness, len(sh.List))
	for _, r := range sh.List {
		if r == ps.S || !ps.Ts.Reachable(r) {
			continue
		}
		lens, wits := classic.PairWitness(sh.G, ps.Ts, sh.Tree[r], r)
		ps.LenSR[r] = lens
		ps.witness[r] = wits
	}
}
